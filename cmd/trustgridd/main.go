// Command trustgridd is the online trusted-scheduling daemon: a
// long-running HTTP service that accepts job submissions, buffers them
// into batch intervals, schedules each batch with any of the paper's
// algorithms (the STGA carries its similarity-indexed history across
// rounds), and streams placement/completion events back.
//
// Usage:
//
//	trustgridd [-addr :8421] [-workload psa|nas] [-algo minmin|...|stga]
//	           [-mode secure|risky|frisky] [-f 0.5] [-seed 1]
//	           [-batch SECONDS] [-tick 100ms] [-manual] [-scale small|paper]
//	           [-trace-out FILE] [-max-wall DURATION]
//
// Every tick of wall-clock time the virtual clock advances by one batch
// interval and a scheduling round fires; -manual disables the ticker so
// clients drive the clock through /v1/advance and /v1/drain (the
// deterministic trace-replay mode). -trace-out records the accepted
// arrival trace; replaying it reproduces every placement byte-for-byte
// (DESIGN.md §6). SIGINT/SIGTERM (or -max-wall expiring) shuts down
// gracefully: accepted jobs are drained in virtual time and the final
// summary is printed.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"trustgrid/internal/experiments"
	"trustgrid/internal/server"
	"trustgrid/internal/stats"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("trustgridd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8421", "HTTP listen address")
	workload := fs.String("workload", "psa", "platform family: psa (20 sites) or nas (12 sites)")
	algo := fs.String("algo", "minmin", "scheduler: minmin, sufferage, mct, met, olb, random, stga, coldga")
	mode := fs.String("mode", "frisky", "heuristic admission mode: secure, risky, frisky")
	f := fs.Float64("f", 0.5, "f-risky threshold")
	seed := fs.Uint64("seed", 1, "root seed for every stochastic decision")
	batch := fs.Float64("batch", 0, "virtual seconds per scheduling round (0 = workload default)")
	tick := fs.Duration("tick", 100*time.Millisecond, "wall-clock duration of one batch interval (live mode)")
	manual := fs.Bool("manual", false, "manual clock: clients drive /v1/advance and /v1/drain")
	scale := fs.String("scale", "small", "GA sizing: small (service defaults) or paper (Table 1)")
	train := fs.Bool("train", true, "warm the STGA history table before serving")
	traceOut := fs.String("trace-out", "", "record the accepted arrival trace (JSONL) to FILE")
	maxWall := fs.Duration("max-wall", 0, "exit cleanly after this wall-clock duration (0 = until signalled)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	setup := experiments.DefaultSetup()
	if *scale == "small" {
		setup = experiments.TestSetup()
	} else if *scale != "paper" {
		fmt.Fprintf(stderr, "trustgridd: unknown scale %q\n", *scale)
		return 2
	}
	setup.Seed = *seed
	setup.F = *f

	var w *experiments.Workload
	var err error
	switch *workload {
	case "psa":
		w, err = setup.PSAWorkload(*seed, 1)
	case "nas":
		setup.NASJobs = 1 // the service only needs the platform + training set
		w, err = setup.NASWorkload(*seed)
	default:
		fmt.Fprintf(stderr, "trustgridd: unknown workload %q\n", *workload)
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "trustgridd:", err)
		return 1
	}
	if *batch <= 0 {
		*batch = w.Batch
	}
	training := w.Training
	if !*train {
		training = nil
	}

	var traceW *bufio.Writer
	if *traceOut != "" {
		fh, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(stderr, "trustgridd:", err)
			return 1
		}
		defer fh.Close()
		traceW = bufio.NewWriter(fh)
		// Flush on every exit path: a crashed daemon's trace must stay
		// replayable (§6.5). The success path flushes again, reporting
		// errors; this one is the safety net for early returns.
		defer func() { _ = traceW.Flush() }()
	}

	cfg := server.Config{
		Sites: w.Sites, Training: training,
		Algo: *algo, Mode: *mode, BatchInterval: *batch,
		Seed: *seed, Setup: setup, Tick: *tick, Manual: *manual,
	}
	if traceW != nil {
		cfg.TraceWriter = traceW
	}
	srv, err := server.New(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "trustgridd:", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "trustgridd:", err)
		return 1
	}
	clock := fmt.Sprintf("tick %s", *tick)
	if *manual {
		clock = "manual clock"
	}
	fmt.Fprintf(stdout, "trustgridd: serving on http://%s (%s sites, algo %s/%s, Δ=%gs, %s, seed %d)\n",
		ln.Addr(), w.Name, *algo, *mode, *batch, clock, *seed)

	// BaseContext flows into every request context: cancelling it on
	// shutdown releases /v1/events followers, which would otherwise hold
	// open connections for the whole Shutdown timeout.
	baseCtx, baseCancel := context.WithCancel(context.Background())
	defer baseCancel()
	hs := &http.Server{
		Handler:     srv.Handler(),
		BaseContext: func(net.Listener) context.Context { return baseCtx },
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	var wallC <-chan time.Time
	if *maxWall > 0 {
		wallC = time.After(*maxWall)
	}
	loopFailed := false
	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(stderr, "trustgridd:", err)
			return 1
		}
	case s := <-sig:
		fmt.Fprintf(stdout, "trustgridd: received %s, draining\n", s)
	case <-wallC:
		fmt.Fprintln(stdout, "trustgridd: max-wall reached, draining")
	case <-srv.Done():
		// The scheduling loop died on its own; don't linger as a zombie
		// serving 503s. Stop below surfaces the cause.
		loopFailed = true
		fmt.Fprintln(stderr, "trustgridd: scheduling loop exited, shutting down")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	baseCancel()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintln(stderr, "trustgridd: http shutdown:", err)
	}
	res, err := srv.Stop(!loopFailed)
	if err != nil {
		fmt.Fprintln(stderr, "trustgridd: drain:", err)
		return 1
	}
	if loopFailed {
		return 1
	}
	if traceW != nil {
		if err := traceW.Flush(); err != nil {
			fmt.Fprintln(stderr, "trustgridd: trace flush:", err)
			return 1
		}
	}
	s := res.Summary
	fmt.Fprintf(stdout, "trustgridd: done — %d jobs in %d batches, makespan %s, avg response %s, %d risk-takers, %d failures\n",
		s.Jobs, res.Batches, stats.HumanSeconds(s.Makespan), stats.HumanSeconds(s.AvgResponse), s.NRisk, s.NFail)
	return 0
}
