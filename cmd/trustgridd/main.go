// Command trustgridd is the online trusted-scheduling daemon: a
// long-running HTTP service that accepts job submissions, buffers them
// into batch intervals, schedules each batch with any of the paper's
// algorithms (the STGA carries its similarity-indexed history across
// rounds), and streams placement/completion events back.
//
// Usage:
//
//	trustgridd [-config FILE]
//	           [-addr :8421] [-workload psa|nas] [-algo minmin|...|stga]
//	           [-mode secure|risky|frisky] [-f 0.5] [-seed 1]
//	           [-batch SECONDS] [-tick 100ms] [-manual] [-shards N]
//	           [-workers ADDR1,ADDR2,...] [-scale small|paper]
//	           [-round-budget N] [-trace-out FILE] [-max-wall DURATION]
//	           [-pprof-addr ADDR]
//	           [-churn-mtbf SECONDS] [-churn-outage SECONDS]
//	           [-churn-horizon SECONDS] [-churn-trace FILE]
//	           [-reputation] [-deceptive-frac F] [-deceptive-gap G]
//	           [-wal-dir DIR] [-snapshot-every N] [-wal-keep N]
//
// Every tick of wall-clock time the virtual clock advances by one batch
// interval and a scheduling round fires; -manual disables the ticker so
// clients drive the clock through /v1/advance and /v1/drain (the
// deterministic trace-replay mode). -trace-out records the accepted
// arrival trace; replaying it reproduces every placement byte-for-byte
// (DESIGN.md §6). SIGINT/SIGTERM (or -max-wall expiring) shuts down
// gracefully: accepted jobs are drained in virtual time and the final
// summary is printed.
//
// The dynamic-grid flags (DESIGN.md §7) put the daemon on a churning
// platform: -churn-mtbf enables a generated join/leave/degrade schedule
// (or load one with -churn-trace, e.g. from tracegen -churn),
// -reputation re-derives the scheduler-visible trust vector online from
// observed job outcomes, and -deceptive-frac/-deceptive-gap make a
// fraction of sites truly run below what they declare. Live site state
// streams at /v1/sites and through site_* events on /v1/events.
//
// Every flag can also come from a flat YAML config file (-config, or
// the TRUSTGRIDD_CONFIG environment variable; keys are flag names) or
// from TRUSTGRIDD_* environment overrides, with fixed precedence:
// flag > environment > file > default (internal/config).
//
// -wal-dir makes the daemon durable (DESIGN.md §10): accepted
// submissions, tenant registrations and the churn trace are written to
// a write-ahead log (committed before the request is acknowledged) and
// the full scheduling state is snapshotted every -snapshot-every
// records. On boot the daemon recovers from the latest snapshot plus
// the WAL tail — in manual mode, placements after recovery are
// byte-identical to a run that never crashed.
//
// -shards N splits the engine into N shards behind an in-process
// coordinator (DESIGN.md §11): sites are partitioned round-robin,
// tenants are routed to shards by a stable hash of their id, and every
// clock advance fans out to all shards as a shared Δ-round barrier
// whose merged event stream carries one total order (time, then shard
// index). Per-shard gauges appear under /v2/metrics and /metrics.prom;
// a durable sharded daemon keeps one WAL segment stream per shard
// under -wal-dir, and recovery refuses a directory written under a
// different shard count.
//
// -workers moves the shards out of process (DESIGN.md §12): each
// address is one trustgrid-worker hosting one shard behind a framed
// TCP protocol, attached in list order (worker i is shard i). The
// fleet is byte-identical to -shards N. Durability becomes
// worker-owned — run each worker with -wal and restart it in place; a
// down worker's tenants get 503s until it reattaches at the next
// barrier, while the rest of the fleet keeps scheduling. -workers is
// mutually exclusive with -wal-dir and overrides -shards.
//
// The daemon serves the multi-tenant /v2 API alongside the /v1 shim
// (DESIGN.md §9): tenants register over POST /v2/tenants (their own
// weight, queue quota, SD defaults and risk policy), submit to
// /v2/tenants/{id}/jobs, and -round-budget caps each Δ-round's batch —
// under backlog, jobs enter rounds in weighted deficit-round-robin
// order by tenant. Prometheus counters are at /metrics.prom.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"trustgrid/internal/config"
	"trustgrid/internal/experiments"
	"trustgrid/internal/fuzzy"
	"trustgrid/internal/grid"
	"trustgrid/internal/rng"
	"trustgrid/internal/sched"
	"trustgrid/internal/server"
	"trustgrid/internal/stats"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("trustgridd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	configPath := fs.String("config", "", "flat YAML config file; keys are flag names (precedence: flag > TRUSTGRIDD_* env > file > default)")
	addr := fs.String("addr", ":8421", "HTTP listen address")
	pprofAddr := fs.String("pprof-addr", "", "serve net/http/pprof on this address for production profiling of the scheduling kernel (empty = disabled)")
	workload := fs.String("workload", "psa", "platform family: psa (20 sites) or nas (12 sites)")
	algo := fs.String("algo", "minmin", "scheduler: minmin, sufferage, mct, met, olb, random, stga, coldga")
	mode := fs.String("mode", "frisky", "heuristic admission mode: secure, risky, frisky")
	f := fs.Float64("f", 0.5, "f-risky threshold")
	seed := fs.Uint64("seed", 1, "root seed for every stochastic decision")
	batch := fs.Float64("batch", 0, "virtual seconds per scheduling round (0 = workload default)")
	tick := fs.Duration("tick", 100*time.Millisecond, "wall-clock duration of one batch interval (live mode)")
	manual := fs.Bool("manual", false, "manual clock: clients drive /v1/advance and /v1/drain")
	shards := fs.Int("shards", 1, "engine shards behind the in-process coordinator: sites are partitioned, tenants are hash-routed, and every Δ-round is a shared clock barrier (1 = the single unsharded engine)")
	workers := fs.String("workers", "", "comma-separated trustgrid-worker addresses; each hosts one out-of-process shard (worker i is shard i — keep the order stable across restarts). Mutually exclusive with -wal-dir; byte-identical to -shards N")
	roundBudget := fs.Int("round-budget", 0, "max jobs admitted per Δ-round; excess backlog is rationed by weighted deficit-round-robin across tenants (0 = unlimited)")
	scale := fs.String("scale", "small", "GA sizing: small (service defaults) or paper (Table 1)")
	rngVersion := fs.Int("rng-version", 1, "GA draw contract: 1 = original serial sequence, 2 = batched per-phase lanes (faster; different schedules). Part of the durable-state and fleet fingerprints: every fleet member and every restart must agree")
	train := fs.Bool("train", true, "warm the STGA history table before serving")
	traceOut := fs.String("trace-out", "", "record the accepted arrival trace (JSONL) to FILE")
	maxWall := fs.Duration("max-wall", 0, "exit cleanly after this wall-clock duration (0 = until signalled)")
	churnMTBF := fs.Float64("churn-mtbf", 0, "enable generated site churn with this mean up-time between incidents, virtual seconds (0 = no churn)")
	churnOutage := fs.Float64("churn-outage", 0, "mean crash/drain down-time, virtual seconds (0 = horizon/20)")
	churnHorizon := fs.Float64("churn-horizon", 500000, "virtual seconds of generated churn")
	churnTrace := fs.String("churn-trace", "", "load a churn trace (JSONL, e.g. from tracegen -churn) instead of generating one")
	reputation := fs.Bool("reputation", false, "re-derive the trust vector online from observed job outcomes")
	deceptiveFrac := fs.Float64("deceptive-frac", 0, "fraction of sites whose true security level sits below their declaration")
	deceptiveGap := fs.Float64("deceptive-gap", 0.4, "how far below declaration a deceptive site truly runs")
	walDir := fs.String("wal-dir", "", "durable-state directory (WAL + snapshots); on boot the daemon recovers queues, tenants and scheduler state from it (empty = stateless)")
	snapshotEvery := fs.Int("snapshot-every", 0, "write a state snapshot every N WAL records (0 = server default)")
	walKeep := fs.Int("wal-keep", 0, "snapshots to retain; older snapshots and fully-covered WAL segments are removed (0 = server default, -1 = keep everything)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	// Layer config-file values and TRUSTGRIDD_* environment overrides
	// under the explicit flags. TRUSTGRIDD_CONFIG can name the file when
	// -config is absent (the one env override Apply leaves to us).
	path := *configPath
	if path == "" {
		path = os.Getenv("TRUSTGRIDD_CONFIG")
	}
	var fileVals map[string]string
	if path != "" {
		var err error
		if fileVals, err = config.Load(path); err != nil {
			fmt.Fprintln(stderr, "trustgridd:", err)
			return 2
		}
	}
	if err := config.Apply(fs, "TRUSTGRIDD", fileVals); err != nil {
		fmt.Fprintln(stderr, "trustgridd:", err)
		return 2
	}
	// Reject dependent flags whose primary is absent: a dynamics knob
	// that silently does nothing would make the operator measure the
	// wrong scenario. Visit runs after Apply, so file- and env-set knobs
	// are held to the same rule as command-line ones.
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if (explicit["churn-outage"] || explicit["churn-horizon"]) && *churnMTBF == 0 {
		fmt.Fprintln(stderr, "trustgridd: -churn-outage/-churn-horizon only shape generated churn; set -churn-mtbf (a -churn-trace carries its own schedule)")
		return 2
	}
	if explicit["deceptive-gap"] && *deceptiveFrac == 0 {
		fmt.Fprintln(stderr, "trustgridd: -deceptive-gap requires -deceptive-frac > 0")
		return 2
	}

	setup := experiments.DefaultSetup()
	if *scale == "small" {
		setup = experiments.TestSetup()
	} else if *scale != "paper" {
		fmt.Fprintf(stderr, "trustgridd: unknown scale %q\n", *scale)
		return 2
	}
	setup.Seed = *seed
	setup.F = *f
	if _, err := rng.ParseVersion(*rngVersion); err != nil {
		fmt.Fprintln(stderr, "trustgridd:", err)
		return 2
	}
	setup.RNGVersion = *rngVersion

	var w *experiments.Workload
	var err error
	switch *workload {
	case "psa":
		w, err = setup.PSAWorkload(*seed, 1)
	case "nas":
		setup.NASJobs = 1 // the service only needs the platform + training set
		w, err = setup.NASWorkload(*seed)
	default:
		fmt.Fprintf(stderr, "trustgridd: unknown workload %q\n", *workload)
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "trustgridd:", err)
		return 1
	}
	if *batch <= 0 {
		*batch = w.Batch
	}
	training := w.Training
	if !*train {
		training = nil
	}

	var traceW *bufio.Writer
	if *traceOut != "" {
		fh, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(stderr, "trustgridd:", err)
			return 1
		}
		defer fh.Close()
		traceW = bufio.NewWriter(fh)
		// Flush on every exit path: a crashed daemon's trace must stay
		// replayable (§6.5). The success path flushes again, reporting
		// errors; this one is the safety net for early returns.
		defer func() { _ = traceW.Flush() }()
	}

	var dyn *sched.DynamicsConfig
	if *churnTrace != "" || *churnMTBF > 0 || *reputation || *deceptiveFrac > 0 {
		dyn = &sched.DynamicsConfig{}
		switch {
		case *churnTrace != "":
			fh, err := os.Open(*churnTrace)
			if err != nil {
				fmt.Fprintln(stderr, "trustgridd:", err)
				return 1
			}
			dyn.Churn, err = grid.ReadChurnTrace(fh)
			fh.Close()
			if err != nil {
				fmt.Fprintln(stderr, "trustgridd:", err)
				return 1
			}
		case *churnMTBF > 0:
			ccfg := grid.DefaultChurnConfig(*churnHorizon)
			ccfg.MTBF = *churnMTBF
			if *churnOutage > 0 {
				ccfg.Outage = *churnOutage
			}
			var err error
			dyn.Churn, err = ccfg.Generate(rng.New(*seed).Derive("churn"), len(w.Sites))
			if err != nil {
				fmt.Fprintln(stderr, "trustgridd:", err)
				return 1
			}
		}
		if *reputation {
			repCfg := fuzzy.DefaultReputationConfig()
			dyn.Reputation = &repCfg
		}
		if *deceptiveFrac > 0 {
			dyn.TrueLevels = grid.DeceptiveLevels(w.Sites, *deceptiveFrac, *deceptiveGap,
				rng.New(*seed).Derive("deceptive"))
		}
	}

	cfg := server.Config{
		Sites: w.Sites, Training: training,
		Algo: *algo, Mode: *mode, BatchInterval: *batch,
		Seed: *seed, Setup: setup, Tick: *tick, Manual: *manual,
		Shards: *shards, Dynamics: dyn, RoundBudget: *roundBudget,
		WALDir: *walDir, SnapshotEvery: *snapshotEvery, WALKeep: *walKeep,
	}
	if *workers != "" {
		for _, addr := range strings.Split(*workers, ",") {
			if addr = strings.TrimSpace(addr); addr != "" {
				cfg.Workers = append(cfg.Workers, addr)
			}
		}
	}
	if traceW != nil {
		cfg.TraceWriter = traceW
	}
	srv, err := server.New(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "trustgridd:", err)
		return 1
	}
	if *walDir != "" {
		fmt.Fprintf(stdout, "trustgridd: durable state in %s\n", *walDir)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "trustgridd:", err)
		return 1
	}
	if *pprofAddr != "" {
		// A dedicated mux on a dedicated listener: the profiling surface
		// stays off the public API port and off by default.
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintln(stderr, "trustgridd:", err)
			return 1
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		psrv := &http.Server{Handler: pmux}
		go func() { _ = psrv.Serve(pln) }()
		defer psrv.Close()
		fmt.Fprintf(stdout, "trustgridd: pprof on http://%s/debug/pprof/\n", pln.Addr())
	}
	clock := fmt.Sprintf("tick %s", *tick)
	if *manual {
		clock = "manual clock"
	}
	fmt.Fprintf(stdout, "trustgridd: serving on http://%s (%s sites, algo %s/%s, Δ=%gs, %s, seed %d)\n",
		ln.Addr(), w.Name, *algo, *mode, *batch, clock, *seed)

	// BaseContext flows into every request context: cancelling it on
	// shutdown releases /v1/events followers, which would otherwise hold
	// open connections for the whole Shutdown timeout.
	baseCtx, baseCancel := context.WithCancel(context.Background())
	defer baseCancel()
	hs := &http.Server{
		Handler:     srv.Handler(),
		BaseContext: func(net.Listener) context.Context { return baseCtx },
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	var wallC <-chan time.Time
	if *maxWall > 0 {
		wallC = time.After(*maxWall)
	}
	loopFailed := false
	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(stderr, "trustgridd:", err)
			return 1
		}
	case s := <-sig:
		fmt.Fprintf(stdout, "trustgridd: received %s, draining\n", s)
	case <-wallC:
		fmt.Fprintln(stdout, "trustgridd: max-wall reached, draining")
	case <-srv.Done():
		// The scheduling loop died on its own; don't linger as a zombie
		// serving 503s. Stop below surfaces the cause.
		loopFailed = true
		fmt.Fprintln(stderr, "trustgridd: scheduling loop exited, shutting down")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	baseCancel()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintln(stderr, "trustgridd: http shutdown:", err)
	}
	res, err := srv.Stop(!loopFailed)
	if err != nil {
		fmt.Fprintln(stderr, "trustgridd: drain:", err)
		return 1
	}
	if loopFailed {
		return 1
	}
	if traceW != nil {
		if err := traceW.Flush(); err != nil {
			fmt.Fprintln(stderr, "trustgridd: trace flush:", err)
			return 1
		}
	}
	s := res.Summary
	fmt.Fprintf(stdout, "trustgridd: done — %d jobs in %d batches, makespan %s, avg response %s, %d risk-takers, %d failures\n",
		s.Jobs, res.Batches, stats.HumanSeconds(s.Makespan), stats.HumanSeconds(s.AvgResponse), s.NRisk, s.NFail)
	return 0
}
