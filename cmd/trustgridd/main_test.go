package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestRealMainLiveRun boots the daemon on an ephemeral port, lets the
// wall clock run briefly, and checks the clean-shutdown path.
func TestRealMainLiveRun(t *testing.T) {
	var out, errb bytes.Buffer
	code := realMain([]string{
		"-addr", "127.0.0.1:0", "-algo", "minmin",
		"-tick", "10ms", "-max-wall", "200ms",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"serving on", "max-wall reached", "done —"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s\n%s", want, out.String(), errb.String())
		}
	}
}

// TestRealMainTraceOut checks the arrival-trace file is created and
// flushed even when no jobs arrive.
func TestRealMainTraceOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "arrivals.jsonl")
	var out, errb bytes.Buffer
	code := realMain([]string{
		"-addr", "127.0.0.1:0", "-max-wall", "50ms", "-tick", "10ms",
		"-trace-out", path,
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func TestRealMainBadAlgo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-algo", "bogus", "-max-wall", "10ms"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "unknown scheduler") {
		t.Fatalf("stderr: %s", errb.String())
	}
}

func TestRealMainBadWorkload(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-workload", "lunar"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestRealMainBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestRealMainBadAddr(t *testing.T) {
	var out, errb bytes.Buffer
	done := make(chan int, 1)
	go func() { done <- realMain([]string{"-addr", "256.0.0.1:99999"}, &out, &errb) }()
	select {
	case code := <-done:
		if code != 1 {
			t.Fatalf("exit %d, want 1", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("realMain hung on bad address")
	}
}
