package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRealMainLiveRun boots the daemon on an ephemeral port, lets the
// wall clock run briefly, and checks the clean-shutdown path.
func TestRealMainLiveRun(t *testing.T) {
	var out, errb bytes.Buffer
	code := realMain([]string{
		"-addr", "127.0.0.1:0", "-algo", "minmin",
		"-tick", "10ms", "-max-wall", "200ms",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"serving on", "max-wall reached", "done —"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s\n%s", want, out.String(), errb.String())
		}
	}
}

// TestRealMainTraceOut checks the arrival-trace file is created and
// flushed even when no jobs arrive.
func TestRealMainTraceOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "arrivals.jsonl")
	var out, errb bytes.Buffer
	code := realMain([]string{
		"-addr", "127.0.0.1:0", "-max-wall", "50ms", "-tick", "10ms",
		"-trace-out", path,
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

// TestRealMainRoundBudget boots the daemon with fair-share admission on
// and checks the clean-shutdown path; a negative budget must be
// rejected at construction.
func TestRealMainRoundBudget(t *testing.T) {
	var out, errb bytes.Buffer
	code := realMain([]string{
		"-addr", "127.0.0.1:0", "-algo", "minmin",
		"-tick", "10ms", "-max-wall", "150ms", "-round-budget", "16",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if code := realMain([]string{"-round-budget", "-3", "-max-wall", "10ms"}, &out, &errb); code != 1 {
		t.Fatalf("negative budget: exit %d, want 1 (stderr: %s)", code, errb.String())
	}
}

func TestRealMainBadAlgo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-algo", "bogus", "-max-wall", "10ms"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "unknown scheduler") {
		t.Fatalf("stderr: %s", errb.String())
	}
}

func TestRealMainBadWorkload(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-workload", "lunar"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestRealMainBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestRealMainBadAddr(t *testing.T) {
	var out, errb bytes.Buffer
	done := make(chan int, 1)
	go func() { done <- realMain([]string{"-addr", "256.0.0.1:99999"}, &out, &errb) }()
	select {
	case code := <-done:
		if code != 1 {
			t.Fatalf("exit %d, want 1", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("realMain hung on bad address")
	}
}

// TestRealMainDynamicGrid boots the daemon with generated churn,
// reputation feedback and deceptive sites, and checks the clean
// drain-and-summary path still holds.
func TestRealMainDynamicGrid(t *testing.T) {
	var out, errb bytes.Buffer
	code := realMain([]string{
		"-addr", "127.0.0.1:0", "-algo", "minmin",
		"-tick", "10ms", "-max-wall", "150ms",
		"-churn-mtbf", "100000", "-churn-outage", "20000",
		"-reputation", "-deceptive-frac", "0.4",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "done —") {
		t.Fatalf("missing summary:\n%s\n%s", out.String(), errb.String())
	}
}

// TestRealMainChurnTraceFile loads an explicit churn trace.
func TestRealMainChurnTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "churn.jsonl")
	if err := os.WriteFile(path, []byte(
		`{"t":100,"site":0,"kind":"crash"}`+"\n"+
			`{"t":200,"site":0,"kind":"join"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	code := realMain([]string{
		"-addr", "127.0.0.1:0", "-tick", "10ms", "-max-wall", "100ms",
		"-churn-trace", path,
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
}

// TestRealMainChurnTraceMissing rejects an unreadable churn trace.
func TestRealMainChurnTraceMissing(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-churn-trace", "/nonexistent/churn.jsonl"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, errb.String())
	}
}

// TestRealMainRejectsOrphanDynamicsFlags: a dynamics knob whose
// primary flag is absent must fail loudly, not run a static daemon.
func TestRealMainRejectsOrphanDynamicsFlags(t *testing.T) {
	cases := [][]string{
		{"-churn-outage", "30000"},
		{"-churn-horizon", "100000"},
		{"-churn-trace", "x.jsonl", "-churn-outage", "30000"},
		{"-deceptive-gap", "0.3"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := realMain(args, &out, &errb); code != 2 {
			t.Errorf("%v: exit %d, want 2 (stderr: %s)", args, code, errb.String())
		}
	}
}

// syncWriter is a goroutine-safe buffer: the pprof smoke test polls it
// while realMain is still writing.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestRealMainPprof boots the daemon with -pprof-addr on an ephemeral
// port and requires the pprof index to actually serve while the daemon
// runs — the smoke test for production profiling of the scheduling
// kernel.
func TestRealMainPprof(t *testing.T) {
	var out syncWriter
	var errb bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- realMain([]string{
			"-addr", "127.0.0.1:0", "-pprof-addr", "127.0.0.1:0",
			"-tick", "10ms", "-max-wall", "2s",
		}, &out, &errb)
	}()
	// Wait for the pprof line, then hit the endpoint.
	var pprofURL string
	deadline := time.Now().Add(5 * time.Second)
	for pprofURL == "" {
		if time.Now().After(deadline) {
			t.Fatalf("pprof address never announced; output:\n%s\n%s", out.String(), errb.String())
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "trustgridd: pprof on "); ok {
				pprofURL = strings.TrimSpace(rest)
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, err := http.Get(pprofURL)
	if err != nil {
		t.Fatalf("pprof endpoint: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index: status %d body %.200s", resp.StatusCode, body)
	}
	if code := <-done; code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
}

// TestRealMainPprofBadAddr: an unusable pprof address must fail fast,
// not silently serve nothing.
func TestRealMainPprofBadAddr(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{
		"-addr", "127.0.0.1:0", "-pprof-addr", "256.0.0.1:99999", "-max-wall", "10ms",
	}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, errb.String())
	}
}

// TestRealMainConfigFile: flags come from a flat YAML file, and an
// explicit command-line flag still beats a file value.
func TestRealMainConfigFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "daemon.yaml")
	if err := os.WriteFile(path, []byte(`# daemon config
algo: bogus          # overridden by the explicit -algo below
mode: risky
tick: 10ms
max-wall: 150ms
`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	code := realMain([]string{
		"-addr", "127.0.0.1:0", "-config", path, "-algo", "sufferage",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "algo sufferage/risky") {
		t.Fatalf("flag should beat file, file should beat default:\n%s", out.String())
	}
}

// TestRealMainEnvOverride: TRUSTGRIDD_* beats the file, the file's
// other keys still apply, and TRUSTGRIDD_CONFIG can name the file.
func TestRealMainEnvOverride(t *testing.T) {
	path := filepath.Join(t.TempDir(), "daemon.yaml")
	if err := os.WriteFile(path, []byte("algo: bogus\nmode: secure\ntick: 10ms\nmax-wall: 150ms\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Setenv("TRUSTGRIDD_CONFIG", path)
	t.Setenv("TRUSTGRIDD_ALGO", "mct")
	var out, errb bytes.Buffer
	code := realMain([]string{"-addr", "127.0.0.1:0"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "algo mct/secure") {
		t.Fatalf("env should beat file:\n%s", out.String())
	}
}

// TestRealMainConfigErrors: unknown keys, unreadable files and
// structured YAML are usage errors, not silent boots.
func TestRealMainConfigErrors(t *testing.T) {
	dir := t.TempDir()
	unknown := filepath.Join(dir, "unknown.yaml")
	if err := os.WriteFile(unknown, []byte("allgo: stga\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	nested := filepath.Join(dir, "nested.yaml")
	if err := os.WriteFile(nested, []byte("server:\n  addr: :8421\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{unknown, nested, filepath.Join(dir, "missing.yaml")} {
		var out, errb bytes.Buffer
		if code := realMain([]string{"-config", path}, &out, &errb); code != 2 {
			t.Errorf("%s: exit %d, want 2 (stderr: %s)", path, code, errb.String())
		}
	}
	// A file-set dynamics knob without its primary is the same usage
	// error as the flag form.
	orphan := filepath.Join(dir, "orphan.yaml")
	if err := os.WriteFile(orphan, []byte("churn-outage: 30000\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := realMain([]string{"-config", orphan}, &out, &errb); code != 2 {
		t.Errorf("orphan dynamics key via file: exit %d, want 2 (stderr: %s)", code, errb.String())
	}
}

// TestRealMainWALRecovery: two live runs over the same -wal-dir — the
// first leaves a snapshot behind, the second recovers from it.
func TestRealMainWALRecovery(t *testing.T) {
	dir := t.TempDir()
	for run := 0; run < 2; run++ {
		var out, errb bytes.Buffer
		code := realMain([]string{
			"-addr", "127.0.0.1:0", "-tick", "10ms", "-max-wall", "150ms",
			"-wal-dir", dir, "-snapshot-every", "64", "-wal-keep", "2",
		}, &out, &errb)
		if code != 0 {
			t.Fatalf("run %d: exit %d, stderr: %s", run, code, errb.String())
		}
		if !strings.Contains(out.String(), "durable state in "+dir) {
			t.Fatalf("run %d: missing durable-state line:\n%s", run, out.String())
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var haveSnap, haveSeg bool
	for _, e := range entries {
		haveSnap = haveSnap || strings.HasPrefix(e.Name(), "snap-")
		haveSeg = haveSeg || strings.HasPrefix(e.Name(), "wal-")
	}
	if !haveSnap || !haveSeg {
		t.Fatalf("wal dir after two runs: snap=%v seg=%v (%v)", haveSnap, haveSeg, entries)
	}
}
