// Command benchsuite regenerates every table and figure of the paper.
//
// Usage:
//
//	benchsuite [-exp all|fig5|fig7a|fig7b|fig8|fig9|fig10|table2|ablations]
//	           [-seed N] [-reps N] [-out DIR] [-scale small|paper]
//	           [-workers N] [-gaworkers N]
//
// -workers fans independent sweep points out across goroutines and
// -gaworkers parallelizes GA fitness evaluation inside each point; both
// default to all cores and neither changes any reported number (every
// point derives its seeds from the point index alone).
//
// Results are printed to stdout and, when -out is given, written as CSV
// files to the directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"trustgrid/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, fig5, fig7a, fig7b, fig8, fig9, fig10, table2, clusterext, ablations)")
	seed := flag.Uint64("seed", 1, "base random seed")
	reps := flag.Int("reps", 1, "replications per configuration")
	out := flag.String("out", "", "directory for CSV output (optional)")
	scale := flag.String("scale", "paper", "paper (Table 1 sizes) or small (quick smoke)")
	workers := flag.Int("workers", 0, "concurrent sweep points per experiment (0 = all cores, 1 = serial)")
	gaWorkers := flag.Int("gaworkers", 0, "GA fitness-evaluation goroutines per sweep point (0 = auto: cores not already used by -workers; 1 = serial); results are identical at any setting")
	flag.Parse()

	setup := experiments.DefaultSetup()
	if *scale == "small" {
		setup = experiments.TestSetup()
	}
	setup.Seed = *seed
	setup.Reps = *reps
	setup.Workers = *workers
	setup.GAWorkers = *gaWorkers

	run := func(name string, fn func() (render string, csv string, err error)) {
		if *exp != "all" && *exp != name {
			return
		}
		start := time.Now()
		render, csv, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s (%.1fs) ===\n%s\n", name, time.Since(start).Seconds(), render)
		if *out != "" && csv != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			path := filepath.Join(*out, name+".csv")
			if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}

	var nasCache *experiments.NASResult
	nas := func() (*experiments.NASResult, error) {
		if nasCache != nil {
			return nasCache, nil
		}
		r, err := experiments.RunNAS(setup)
		nasCache = r
		return r, err
	}

	run("fig7a", func() (string, string, error) {
		r, err := experiments.RunFig7a(setup)
		if err != nil {
			return "", "", err
		}
		return r.Render(), r.CSV(), nil
	})
	run("fig7b", func() (string, string, error) {
		r, err := experiments.RunFig7b(setup, nil)
		if err != nil {
			return "", "", err
		}
		return r.Render(), r.CSV(), nil
	})
	run("fig5", func() (string, string, error) {
		r, err := experiments.RunFig5(setup)
		if err != nil {
			return "", "", err
		}
		return r.Render(), "", nil
	})
	run("fig8", func() (string, string, error) {
		r, err := nas()
		if err != nil {
			return "", "", err
		}
		return r.Render(), r.CSV(), nil
	})
	run("fig9", func() (string, string, error) {
		r, err := nas()
		if err != nil {
			return "", "", err
		}
		return r.RenderFig9(), "", nil
	})
	run("table2", func() (string, string, error) {
		r, err := nas()
		if err != nil {
			return "", "", err
		}
		return r.RenderTable2(), "", nil
	})
	run("fig10", func() (string, string, error) {
		r, err := experiments.RunFig10(setup, nil)
		if err != nil {
			return "", "", err
		}
		return r.Render(), r.CSV(), nil
	})
	run("overhead", func() (string, string, error) {
		r, err := experiments.RunOverhead(setup)
		if err != nil {
			return "", "", err
		}
		return r.Render(), "", nil
	})
	run("clusterext", func() (string, string, error) {
		r, err := experiments.RunClusterExtension(setup)
		if err != nil {
			return "", "", err
		}
		return r.Render(), "", nil
	})
	run("ablations", func() (string, string, error) {
		var b strings.Builder
		for _, ab := range experiments.AllAblations {
			r, err := ab.Run(setup)
			if err != nil {
				return "", "", err
			}
			b.WriteString(r.Render())
			b.WriteByte('\n')
		}
		return b.String(), "", nil
	})
}
