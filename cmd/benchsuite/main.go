// Command benchsuite regenerates every table and figure of the paper,
// and doubles as the benchmark-trajectory harness.
//
// Usage:
//
//	benchsuite [-exp all|fig5|fig7a|fig7b|fig8|fig9|fig10|table2|ablations]
//	           [-seed N] [-reps N] [-out DIR] [-scale small|paper]
//	           [-workers N] [-gaworkers N]
//	benchsuite -bench-json FILE [-bench-smoke]
//	           [-bench-compare BASELINE] [-bench-threshold 1.5]
//	           [-bench-ns-threshold 0]
//
// -workers fans independent sweep points out across goroutines and
// -gaworkers parallelizes GA fitness evaluation inside each point; both
// default to all cores and neither changes any reported number (every
// point derives its seeds from the point index alone).
//
// Results are printed to stdout and, when -out is given, written as CSV
// files to the directory.
//
// -bench-json switches to the kernel-path benchmark suite
// (internal/benchkit): it runs the cases under testing.Benchmark,
// writes ns/op + allocs/op as JSON to FILE (the repository's
// BENCH_<date>.json trajectory format), and — when -bench-compare
// names a committed baseline — fails with exit 1 on gated regressions.
// allocs/op is gated at -bench-threshold (default 1.5x, generous on
// purpose; allocation counts are hardware-independent so this cannot
// flake across machines). ns/op is advisory by default and only gates
// when -bench-ns-threshold > 0, for same-hardware comparisons.
// -bench-smoke restricts to the quick subset CI runs per PR.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"trustgrid/internal/benchkit"
	"trustgrid/internal/experiments"
)

// knownExps guards -exp: a typo must fail loudly, not silently run
// nothing.
var knownExps = map[string]bool{
	"all": true, "fig5": true, "fig7a": true, "fig7b": true, "fig8": true,
	"fig9": true, "fig10": true, "table2": true, "overhead": true,
	"clusterext": true, "ablations": true, "churn": true, "dagstudy": true,
}

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchsuite", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "all", "experiment to run (all, fig5, fig7a, fig7b, fig8, fig9, fig10, table2, overhead, clusterext, ablations, churn, dagstudy)")
	seed := fs.Uint64("seed", 1, "base random seed")
	reps := fs.Int("reps", 1, "replications per configuration")
	out := fs.String("out", "", "directory for CSV output (optional)")
	scale := fs.String("scale", "paper", "paper (Table 1 sizes) or small (quick smoke)")
	workers := fs.Int("workers", 0, "concurrent sweep points per experiment (0 = all cores, 1 = serial)")
	gaWorkers := fs.Int("gaworkers", 0, "GA fitness-evaluation goroutines per sweep point (0 = auto: cores not already used by -workers; 1 = serial); results are identical at any setting")
	benchJSON := fs.String("bench-json", "", "run the kernel-path benchmark suite and write ns/op + allocs/op JSON to FILE (skips the experiments)")
	benchSmoke := fs.Bool("bench-smoke", false, "restrict -bench-json to the quick smoke subset CI runs per PR")
	benchCompare := fs.String("bench-compare", "", "baseline BENCH_<date>.json to compare the -bench-json run against; regressions past the thresholds exit 1")
	benchThreshold := fs.Float64("bench-threshold", 1.5, "multiplicative allocs/op regression threshold for -bench-compare (hardware-independent, so safe to gate on)")
	benchNsThreshold := fs.Float64("bench-ns-threshold", 0, "multiplicative ns/op regression threshold for -bench-compare; 0 (default) makes wall-time differences advisory-only, since committed baselines usually come from different hardware")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *benchCompare != "" && *benchJSON == "" {
		fmt.Fprintln(stderr, "benchsuite: -bench-compare requires -bench-json")
		return 2
	}
	if *benchJSON != "" {
		return runBenchJSON(stdout, stderr, *benchJSON, *benchSmoke, *benchCompare, *benchNsThreshold, *benchThreshold)
	}
	if !knownExps[*exp] {
		fmt.Fprintf(stderr, "benchsuite: unknown experiment %q\n", *exp)
		return 2
	}

	setup := experiments.DefaultSetup()
	switch *scale {
	case "paper":
	case "small":
		setup = experiments.TestSetup()
	default:
		fmt.Fprintf(stderr, "benchsuite: unknown scale %q\n", *scale)
		return 2
	}
	setup.Seed = *seed
	setup.Reps = *reps
	setup.Workers = *workers
	setup.GAWorkers = *gaWorkers

	failed := false
	run := func(name string, fn func() (render string, csv string, err error)) {
		if failed || (*exp != "all" && *exp != name) {
			return
		}
		start := time.Now()
		render, csv, err := fn()
		if err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", name, err)
			failed = true
			return
		}
		fmt.Fprintf(stdout, "=== %s (%.1fs) ===\n%s\n", name, time.Since(start).Seconds(), render)
		if *out != "" && csv != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fmt.Fprintln(stderr, err)
				failed = true
				return
			}
			path := filepath.Join(*out, name+".csv")
			if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
				fmt.Fprintln(stderr, err)
				failed = true
				return
			}
		}
	}

	var nasCache *experiments.NASResult
	nas := func() (*experiments.NASResult, error) {
		if nasCache != nil {
			return nasCache, nil
		}
		r, err := experiments.RunNAS(setup)
		nasCache = r
		return r, err
	}

	run("fig7a", func() (string, string, error) {
		r, err := experiments.RunFig7a(setup)
		if err != nil {
			return "", "", err
		}
		return r.Render(), r.CSV(), nil
	})
	run("fig7b", func() (string, string, error) {
		r, err := experiments.RunFig7b(setup, nil)
		if err != nil {
			return "", "", err
		}
		return r.Render(), r.CSV(), nil
	})
	run("fig5", func() (string, string, error) {
		r, err := experiments.RunFig5(setup)
		if err != nil {
			return "", "", err
		}
		return r.Render(), "", nil
	})
	run("fig8", func() (string, string, error) {
		r, err := nas()
		if err != nil {
			return "", "", err
		}
		return r.Render(), r.CSV(), nil
	})
	run("fig9", func() (string, string, error) {
		r, err := nas()
		if err != nil {
			return "", "", err
		}
		return r.RenderFig9(), "", nil
	})
	run("table2", func() (string, string, error) {
		r, err := nas()
		if err != nil {
			return "", "", err
		}
		return r.RenderTable2(), "", nil
	})
	run("fig10", func() (string, string, error) {
		r, err := experiments.RunFig10(setup, nil)
		if err != nil {
			return "", "", err
		}
		return r.Render(), r.CSV(), nil
	})
	run("overhead", func() (string, string, error) {
		r, err := experiments.RunOverhead(setup)
		if err != nil {
			return "", "", err
		}
		return r.Render(), "", nil
	})
	run("churn", func() (string, string, error) {
		r, err := experiments.RunChurnStudy(setup)
		if err != nil {
			return "", "", err
		}
		return r.Render(), r.CSV(), nil
	})
	run("dagstudy", func() (string, string, error) {
		r, err := experiments.RunDAGStudy(setup)
		if err != nil {
			return "", "", err
		}
		return r.Render(), r.CSV(), nil
	})
	run("clusterext", func() (string, string, error) {
		r, err := experiments.RunClusterExtension(setup)
		if err != nil {
			return "", "", err
		}
		return r.Render(), "", nil
	})
	run("ablations", func() (string, string, error) {
		var b strings.Builder
		for _, ab := range experiments.AllAblations {
			r, err := ab.Run(setup)
			if err != nil {
				return "", "", err
			}
			b.WriteString(r.Render())
			b.WriteByte('\n')
		}
		return b.String(), "", nil
	})
	if failed {
		return 1
	}
	return 0
}

// runBenchJSON runs the benchkit suite, writes the trajectory point,
// and optionally gates against a committed baseline.
func runBenchJSON(stdout, stderr io.Writer, path string, smoke bool, comparePath string, nsThreshold, allocThreshold float64) int {
	var baseline benchkit.File
	if comparePath != "" {
		// Read the baseline before burning minutes on the suite: a bad
		// path should fail immediately.
		var err error
		baseline, err = benchkit.ReadFile(comparePath)
		if err != nil {
			fmt.Fprintln(stderr, "benchsuite:", err)
			return 1
		}
	}
	f := benchkit.Run(smoke, time.Now())
	for _, r := range f.Records {
		fmt.Fprintf(stdout, "%-36s %14.0f ns/op %10d B/op %8d allocs/op\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	if err := f.Write(path); err != nil {
		fmt.Fprintln(stderr, "benchsuite:", err)
		return 1
	}
	fmt.Fprintf(stdout, "benchsuite: wrote %d benchmark records to %s\n", len(f.Records), path)
	if comparePath == "" {
		return 0
	}
	problems, advisories := benchkit.Compare(baseline, f, nsThreshold, allocThreshold)
	for _, a := range advisories {
		fmt.Fprintln(stdout, "benchsuite:", a)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(stderr, "benchsuite: regression:", p)
		}
		return 1
	}
	fmt.Fprintf(stdout, "benchsuite: no gated regressions vs %s\n", comparePath)
	return 0
}
