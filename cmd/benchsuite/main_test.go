package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRealMainSmallFig5(t *testing.T) {
	var out, errb bytes.Buffer
	code := realMain([]string{"-scale", "small", "-exp", "fig5"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "=== fig5") {
		t.Fatalf("output missing fig5 header:\n%s", out.String())
	}
}

func TestRealMainCSVOutput(t *testing.T) {
	dir := t.TempDir()
	var out, errb bytes.Buffer
	code := realMain([]string{"-scale", "small", "-exp", "fig7b", "-out", dir}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	csv, err := os.ReadFile(filepath.Join(dir, "fig7b.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(csv) == 0 {
		t.Fatal("empty CSV")
	}
}

func TestRealMainUnknownExp(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-exp", "fig99"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "unknown experiment") {
		t.Fatalf("stderr: %s", errb.String())
	}
}

func TestRealMainUnknownScale(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-scale", "huge"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestRealMainBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestRealMainBenchCompareRequiresJSON(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-bench-compare", "BENCH_x.json"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "-bench-compare requires -bench-json") {
		t.Fatalf("stderr: %s", errb.String())
	}
}

func TestRealMainBenchBadBaseline(t *testing.T) {
	// The baseline is read before the suite runs, so a bad path fails
	// fast instead of after minutes of benchmarking.
	var out, errb bytes.Buffer
	code := realMain([]string{
		"-bench-json", filepath.Join(t.TempDir(), "out.json"),
		"-bench-compare", filepath.Join(t.TempDir(), "missing.json"),
	}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, errb.String())
	}
}
