package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRealMainSmoke(t *testing.T) {
	var out, errb bytes.Buffer
	code := realMain([]string{"-workload", "psa", "-jobs", "60", "-algo", "minmin", "-seed", "3"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"algorithm:", "makespan:", "risk-taking jobs:"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRealMainBadAlgo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-algo", "bogus", "-jobs", "10"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "unknown algorithm") {
		t.Fatalf("stderr: %s", errb.String())
	}
}

func TestRealMainBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestRealMainBadMode(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-mode", "yolo", "-jobs", "10"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "unknown mode") {
		t.Fatalf("stderr: %s", errb.String())
	}
}
