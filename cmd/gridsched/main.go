// Command gridsched runs one trusted-grid scheduling simulation and
// prints the paper's metrics.
//
// Usage:
//
//	gridsched [-workload nas|psa] [-jobs N] [-algo NAME] [-f 0.5]
//	          [-seed N] [-batch SECONDS] [-lambda 3] [-swf FILE] [-v]
//
// Algorithms: minmin, sufferage, mct, met, olb, random, stga, coldga.
// Modes are chosen via -mode secure|risky|frisky (with -f for frisky).
// With -swf, jobs are read from a Standard Workload Format trace instead
// of the synthetic NAS generator (the 12-site NAS platform is kept).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"trustgrid/internal/experiments"
	"trustgrid/internal/grid"
	"trustgrid/internal/rng"
	"trustgrid/internal/sched"
	"trustgrid/internal/stats"
	"trustgrid/internal/trace"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gridsched", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workload := fs.String("workload", "psa", "workload family: nas or psa")
	jobs := fs.Int("jobs", 1000, "number of jobs (psa) or NAS trace size")
	algo := fs.String("algo", "stga", "minmin, sufferage, mct, met, olb, random, stga, coldga")
	mode := fs.String("mode", "frisky", "risk mode for heuristics: secure, risky, frisky")
	f := fs.Float64("f", 0.5, "f-risky threshold")
	seed := fs.Uint64("seed", 1, "random seed")
	batch := fs.Float64("batch", 0, "scheduling period Δ seconds (0 = workload default)")
	lambda := fs.Float64("lambda", grid.DefaultLambda, "failure-law coefficient λ")
	swf := fs.String("swf", "", "replay an SWF trace file on the NAS platform")
	verbose := fs.Bool("v", false, "print per-site utilization")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if err := run(stdout, *workload, *jobs, *algo, *mode, *f, *seed, *batch, *lambda, *swf, *verbose); err != nil {
		fmt.Fprintln(stderr, "gridsched:", err)
		return 1
	}
	return 0
}

func run(stdout io.Writer, workload string, jobs int, algo, mode string, f float64,
	seed uint64, batch, lambda float64, swf string, verbose bool) error {

	setup := experiments.DefaultSetup()
	setup.Seed = seed
	setup.Lambda = lambda
	setup.F = f

	var w *experiments.Workload
	var err error
	switch workload {
	case "nas":
		setup.NASJobs = jobs
		w, err = setup.NASWorkload(seed)
	case "psa":
		w, err = setup.PSAWorkload(seed, jobs)
	default:
		return fmt.Errorf("unknown workload %q", workload)
	}
	if err != nil {
		return err
	}
	if swf != "" {
		fh, err := os.Open(swf)
		if err != nil {
			return err
		}
		defer fh.Close()
		recs, err := trace.ParseSWF(fh)
		if err != nil {
			return err
		}
		sdRng := rng.New(seed).Derive("swf/sd")
		w.Jobs = trace.JobsFromSWF(recs, 0.5, func(int) float64 { return sdRng.Uniform(0.6, 0.9) })
		fmt.Fprintf(stdout, "replaying %d jobs from %s\n", len(w.Jobs), swf)
	}
	if batch > 0 {
		w.Batch = batch
	}

	var policy grid.Policy
	switch mode {
	case "secure":
		policy = setup.Policy(grid.Secure, 0)
	case "risky":
		policy = setup.Policy(grid.Risky, 0)
	case "frisky":
		policy = setup.Policy(grid.FRisky, f)
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}

	r := rng.New(seed ^ 0xfeedface)
	scheduler, err := setup.SchedulerByName(algo, policy, r, w.Training, w.Sites)
	if err != nil {
		return fmt.Errorf("unknown algorithm %q", algo)
	}

	res, err := sched.Run(sched.RunConfig{
		Jobs: w.Jobs, Sites: w.Sites, Scheduler: scheduler,
		BatchInterval: w.Batch, Security: setup.Model(),
		Rand: r.Derive("engine"),
	})
	if err != nil {
		return err
	}

	s := res.Summary
	fmt.Fprintf(stdout, "algorithm:        %s\n", scheduler.Name())
	fmt.Fprintf(stdout, "workload:         %s (%d jobs, %d sites, Δ=%.0fs)\n",
		w.Name, len(w.Jobs), len(w.Sites), w.Batch)
	fmt.Fprintf(stdout, "makespan:         %s\n", stats.HumanSeconds(s.Makespan))
	fmt.Fprintf(stdout, "avg response:     %s\n", stats.HumanSeconds(s.AvgResponse))
	fmt.Fprintf(stdout, "slowdown ratio:   %.2f\n", s.Slowdown)
	fmt.Fprintf(stdout, "risk-taking jobs: %d\n", s.NRisk)
	fmt.Fprintf(stdout, "failed jobs:      %d\n", s.NFail)
	fmt.Fprintf(stdout, "mean utilization: %.1f%% (%d idle sites)\n", 100*s.MeanUtilization, s.IdleSites)
	fmt.Fprintf(stdout, "batches:          %d, simulated events: %d\n", res.Batches, res.Events)
	if verbose {
		for i, u := range s.SiteUtilization {
			fmt.Fprintf(stdout, "  site %2d (speed %3.0f, SL %.2f): %5.1f%%\n",
				i+1, w.Sites[i].Speed, w.Sites[i].SecurityLevel, 100*u)
		}
	}
	return nil
}
