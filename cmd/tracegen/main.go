// Command tracegen emits a synthetic NAS-like workload trace in
// Standard Workload Format, for inspection or use with external tools,
// or — with -churn — a deterministic site-churn trace (JSONL) for the
// dynamic-grid mode of trustgridd and the batch simulator.
//
// Usage:
//
//	tracegen [-jobs 16000] [-days 46] [-load 1.15] [-seed 1] [-o FILE]
//	tracegen -churn [-churn-sites 20] [-churn-horizon 500000]
//	         [-churn-mtbf SECONDS] [-churn-outage SECONDS] [-seed 1] [-o FILE]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"trustgrid/internal/grid"
	"trustgrid/internal/rng"
	"trustgrid/internal/trace"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jobs := fs.Int("jobs", 16000, "number of jobs")
	days := fs.Float64("days", 46, "trace span in days")
	load := fs.Float64("load", 1.15, "offered load vs the 128-node machine")
	seed := fs.Uint64("seed", 1, "random seed")
	out := fs.String("o", "", "output file (default stdout)")
	churn := fs.Bool("churn", false, "emit a site-churn trace (JSONL) instead of a workload trace")
	churnSites := fs.Int("churn-sites", 20, "platform size the churn trace targets")
	churnHorizon := fs.Float64("churn-horizon", 500000, "virtual seconds of churn to generate")
	churnMTBF := fs.Float64("churn-mtbf", 0, "mean up-time between incidents per site (0 = horizon/2)")
	churnOutage := fs.Float64("churn-outage", 0, "mean crash/drain down-time (0 = horizon/20)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *churn {
		return churnMain(*churnSites, *churnHorizon, *churnMTBF, *churnOutage, *seed, *out, stdout, stderr)
	}

	cfg := trace.DefaultNASConfig()
	cfg.Jobs = *jobs
	cfg.Span = *days * 24 * 3600
	cfg.LoadFactor = *load
	gjobs, err := cfg.Generate(rng.New(*seed))
	if err != nil {
		fmt.Fprintln(stderr, "tracegen:", err)
		return 1
	}

	w := stdout
	if *out != "" {
		fh, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "tracegen:", err)
			return 1
		}
		defer fh.Close()
		w = fh
	}
	header := fmt.Sprintf("Synthetic NAS iPSC/860-like trace (trustgrid)\n"+
		"Jobs: %d  SpanDays: %.1f  LoadFactor: %.2f  Seed: %d\n"+
		"MaxNodes: 128", *jobs, *days, *load, *seed)
	if err := trace.WriteSWF(w, header, trace.ToSWF(gjobs)); err != nil {
		fmt.Fprintln(stderr, "tracegen:", err)
		return 1
	}
	st := trace.Summarize(gjobs)
	fmt.Fprintf(stderr, "wrote %d jobs; span %.1f days; mean work %.0f node-s; max nodes %d\n",
		st.Jobs, st.Span/86400, st.MeanWork, st.MaxNodes)
	return 0
}

// churnMain generates and writes a deterministic churn trace. The same
// (seed, sites, horizon) always yields the same JSONL bytes, so a trace
// checked into an experiment repo pins the whole dynamic scenario.
func churnMain(sites int, horizon, mtbf, outage float64, seed uint64, out string, stdout, stderr io.Writer) int {
	cfg := grid.DefaultChurnConfig(horizon)
	if mtbf > 0 {
		cfg.MTBF = mtbf
	}
	if outage > 0 {
		cfg.Outage = outage
	}
	events, err := cfg.Generate(rng.New(seed).Derive("churn"), sites)
	if err != nil {
		fmt.Fprintln(stderr, "tracegen:", err)
		return 1
	}
	w := stdout
	if out != "" {
		fh, err := os.Create(out)
		if err != nil {
			fmt.Fprintln(stderr, "tracegen:", err)
			return 1
		}
		defer fh.Close()
		w = fh
	}
	if err := grid.WriteChurnTrace(w, events); err != nil {
		fmt.Fprintln(stderr, "tracegen:", err)
		return 1
	}
	fmt.Fprintf(stderr, "wrote %d churn events for %d sites over %.0f virtual seconds\n",
		len(events), sites, horizon)
	return 0
}
