// Command tracegen emits a synthetic NAS-like workload trace in
// Standard Workload Format, for inspection or use with external tools.
//
// Usage:
//
//	tracegen [-jobs 16000] [-days 46] [-load 1.15] [-seed 1] [-o FILE]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"trustgrid/internal/rng"
	"trustgrid/internal/trace"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jobs := fs.Int("jobs", 16000, "number of jobs")
	days := fs.Float64("days", 46, "trace span in days")
	load := fs.Float64("load", 1.15, "offered load vs the 128-node machine")
	seed := fs.Uint64("seed", 1, "random seed")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := trace.DefaultNASConfig()
	cfg.Jobs = *jobs
	cfg.Span = *days * 24 * 3600
	cfg.LoadFactor = *load
	gjobs, err := cfg.Generate(rng.New(*seed))
	if err != nil {
		fmt.Fprintln(stderr, "tracegen:", err)
		return 1
	}

	w := stdout
	if *out != "" {
		fh, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "tracegen:", err)
			return 1
		}
		defer fh.Close()
		w = fh
	}
	header := fmt.Sprintf("Synthetic NAS iPSC/860-like trace (trustgrid)\n"+
		"Jobs: %d  SpanDays: %.1f  LoadFactor: %.2f  Seed: %d\n"+
		"MaxNodes: 128", *jobs, *days, *load, *seed)
	if err := trace.WriteSWF(w, header, trace.ToSWF(gjobs)); err != nil {
		fmt.Fprintln(stderr, "tracegen:", err)
		return 1
	}
	st := trace.Summarize(gjobs)
	fmt.Fprintf(stderr, "wrote %d jobs; span %.1f days; mean work %.0f node-s; max nodes %d\n",
		st.Jobs, st.Span/86400, st.MeanWork, st.MaxNodes)
	return 0
}
