// Command tracegen emits a synthetic NAS-like workload trace in
// Standard Workload Format, for inspection or use with external tools.
//
// Usage:
//
//	tracegen [-jobs 16000] [-days 46] [-load 1.15] [-seed 1] [-o FILE]
package main

import (
	"flag"
	"fmt"
	"os"

	"trustgrid/internal/rng"
	"trustgrid/internal/trace"
)

func main() {
	jobs := flag.Int("jobs", 16000, "number of jobs")
	days := flag.Float64("days", 46, "trace span in days")
	load := flag.Float64("load", 1.15, "offered load vs the 128-node machine")
	seed := flag.Uint64("seed", 1, "random seed")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	cfg := trace.DefaultNASConfig()
	cfg.Jobs = *jobs
	cfg.Span = *days * 24 * 3600
	cfg.LoadFactor = *load
	gjobs, err := cfg.Generate(rng.New(*seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		fh, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		defer fh.Close()
		w = fh
	}
	header := fmt.Sprintf("Synthetic NAS iPSC/860-like trace (trustgrid)\n"+
		"Jobs: %d  SpanDays: %.1f  LoadFactor: %.2f  Seed: %d\n"+
		"MaxNodes: 128", *jobs, *days, *load, *seed)
	if err := trace.WriteSWF(w, header, trace.ToSWF(gjobs)); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	st := trace.Summarize(gjobs)
	fmt.Fprintf(os.Stderr, "wrote %d jobs; span %.1f days; mean work %.0f node-s; max nodes %d\n",
		st.Jobs, st.Span/86400, st.MeanWork, st.MaxNodes)
}
