// Command tracegen emits a synthetic NAS-like workload trace in
// Standard Workload Format, for inspection or use with external tools;
// with -churn, a deterministic site-churn trace (JSONL) for the
// dynamic-grid mode of trustgridd and the batch simulator; or, with
// -arrivals, a multi-tenant arrival trace (JSONL, the daemon's
// -trace-out format with its v2 tenant column) replayable through the
// manual-mode daemon or the batch simulator.
//
// Usage:
//
//	tracegen [-jobs 16000] [-days 46] [-load 1.15] [-seed 1] [-o FILE]
//	tracegen -churn [-churn-sites 20] [-churn-horizon 500000]
//	         [-churn-mtbf SECONDS] [-churn-outage SECONDS] [-seed 1] [-o FILE]
//	tracegen -arrivals [-jobs 1000] [-arrival-rate 0.008]
//	         [-tenants gold,silver,bronze] [-levels 20]
//	         [-max-workload 300000] [-seed 1] [-o FILE]
//	tracegen -dag [-jobs 800] [-dag-width 48] [-dag-edge-prob 0.3]
//	         [-dag-slack 2] [-dag-mean-speed 55] [-arrival-rate 0.05]
//	         [-levels 20] [-max-workload 300000] [-seed 1] [-o FILE]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"trustgrid/internal/api"
	"trustgrid/internal/dag"
	"trustgrid/internal/grid"
	"trustgrid/internal/rng"
	"trustgrid/internal/trace"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jobs := fs.Int("jobs", 16000, "number of jobs")
	days := fs.Float64("days", 46, "trace span in days")
	load := fs.Float64("load", 1.15, "offered load vs the 128-node machine")
	seed := fs.Uint64("seed", 1, "random seed")
	out := fs.String("o", "", "output file (default stdout)")
	churn := fs.Bool("churn", false, "emit a site-churn trace (JSONL) instead of a workload trace")
	churnSites := fs.Int("churn-sites", 20, "platform size the churn trace targets")
	churnHorizon := fs.Float64("churn-horizon", 500000, "virtual seconds of churn to generate")
	churnMTBF := fs.Float64("churn-mtbf", 0, "mean up-time between incidents per site (0 = horizon/2)")
	churnOutage := fs.Float64("churn-outage", 0, "mean crash/drain down-time (0 = horizon/20)")
	arrivals := fs.Bool("arrivals", false, "emit a (multi-tenant) arrival trace (JSONL) instead of a workload trace")
	arrivalRate := fs.Float64("arrival-rate", 0.008, "arrivals: mean arrival rate, jobs per virtual second")
	tenants := fs.String("tenants", "", "arrivals: comma-separated tenant ids assigned round-robin (empty = single-tenant)")
	levels := fs.Int("levels", 20, "arrivals: discrete workload levels (PSA-style)")
	maxWorkload := fs.Float64("max-workload", 300000, "arrivals: workload of the top level")
	dagMode := fs.Bool("dag", false, "emit a layered dependent-job trace (JSONL with depends_on) instead of a workload trace")
	dagWidth := fs.Int("dag-width", 48, "dag: layer width (depth = jobs/width)")
	dagEdgeProb := fs.Float64("dag-edge-prob", 0.3, "dag: per-pair edge probability between adjacent layers")
	dagSlack := fs.Float64("dag-slack", 2, "dag: deadline slack multiplier on the critical path (0 = no deadlines)")
	dagMeanSpeed := fs.Float64("dag-mean-speed", 55, "dag: mean site speed used to stamp deadlines")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	modes := 0
	for _, m := range []bool{*churn, *arrivals, *dagMode} {
		if m {
			modes++
		}
	}
	if modes > 1 {
		fmt.Fprintln(stderr, "tracegen: -churn, -arrivals and -dag are mutually exclusive")
		return 2
	}

	if *churn {
		return churnMain(*churnSites, *churnHorizon, *churnMTBF, *churnOutage, *seed, *out, stdout, stderr)
	}
	if *arrivals {
		return arrivalsMain(*jobs, *arrivalRate, *tenants, *levels, *maxWorkload, *seed, *out, stdout, stderr)
	}
	if *dagMode {
		// The default -arrival-rate (0.008) suits the independent PSA
		// trace; DAG traces want a dense backlog, so the usage line
		// suggests 0.05. Either works — the edges stay backward-pointing
		// regardless of rate.
		return dagMain(*jobs, *dagWidth, *dagEdgeProb, *arrivalRate, *levels, *maxWorkload,
			*dagSlack, *dagMeanSpeed, *seed, *out, stdout, stderr)
	}

	cfg := trace.DefaultNASConfig()
	cfg.Jobs = *jobs
	cfg.Span = *days * 24 * 3600
	cfg.LoadFactor = *load
	gjobs, err := cfg.Generate(rng.New(*seed))
	if err != nil {
		fmt.Fprintln(stderr, "tracegen:", err)
		return 1
	}

	w := stdout
	if *out != "" {
		fh, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "tracegen:", err)
			return 1
		}
		defer fh.Close()
		w = fh
	}
	header := fmt.Sprintf("Synthetic NAS iPSC/860-like trace (trustgrid)\n"+
		"Jobs: %d  SpanDays: %.1f  LoadFactor: %.2f  Seed: %d\n"+
		"MaxNodes: 128", *jobs, *days, *load, *seed)
	if err := trace.WriteSWF(w, header, trace.ToSWF(gjobs)); err != nil {
		fmt.Fprintln(stderr, "tracegen:", err)
		return 1
	}
	st := trace.Summarize(gjobs)
	fmt.Fprintf(stderr, "wrote %d jobs; span %.1f days; mean work %.0f node-s; max nodes %d\n",
		st.Jobs, st.Span/86400, st.MeanWork, st.MaxNodes)
	return 0
}

// arrivalsMain generates and writes a deterministic multi-tenant
// arrival trace: Poisson arrivals at the given rate, PSA-style leveled
// workloads, SD uniform on [0.6, 0.9] (Table 1), tenants assigned
// round-robin. The same flags always yield the same JSONL bytes, so a
// generated trace pins a whole replay scenario — feed it to the
// manual-mode daemon or materialize it with api.JobsFromTrace for the
// batch simulator.
func arrivalsMain(jobs int, rate float64, tenantList string, levels int, maxWorkload float64,
	seed uint64, out string, stdout, stderr io.Writer) int {
	if jobs <= 0 || rate <= 0 || levels <= 0 || maxWorkload <= 0 {
		fmt.Fprintln(stderr, "tracegen: -jobs, -arrival-rate, -levels and -max-workload must be positive")
		return 2
	}
	var tenants []string
	if tenantList != "" {
		for _, t := range strings.Split(tenantList, ",") {
			t = strings.TrimSpace(t)
			if err := (&api.TenantSpec{ID: t}).Validate(); err != nil {
				fmt.Fprintln(stderr, "tracegen:", err)
				return 2
			}
			tenants = append(tenants, t)
		}
	}
	r := rng.New(seed).Derive("arrivals")
	step := maxWorkload / float64(levels)
	w := stdout
	if out != "" {
		fh, err := os.Create(out)
		if err != nil {
			fmt.Fprintln(stderr, "tracegen:", err)
			return 1
		}
		defer fh.Close()
		w = fh
	}
	now := 0.0
	for i := 1; i <= jobs; i++ {
		now += r.Exp(rate)
		rec := api.TraceRecord{
			ID:       i,
			Arrival:  now,
			Workload: step * float64(r.Level(levels)),
			Nodes:    1,
			SD:       r.Uniform(0.6, 0.9),
		}
		if len(tenants) > 0 {
			rec.Tenant = tenants[(i-1)%len(tenants)]
		}
		if err := api.WriteTraceRecord(w, rec); err != nil {
			fmt.Fprintln(stderr, "tracegen:", err)
			return 1
		}
	}
	fmt.Fprintf(stderr, "wrote %d arrivals over %.0f virtual seconds for %d tenant(s)\n",
		jobs, now, max(len(tenants), 1))
	return 0
}

// dagMain generates and writes a deterministic layered DAG trace: the
// dag.Generate workload serialized as arrival-trace JSONL with the
// depends_on/deadline columns. Every edge points to an earlier line, so
// the trace passes api.ValidateDAG and replays through the manual-mode
// daemon (parents are accepted before children reference them) as well
// as the batch simulator.
func dagMain(jobs, width int, edgeProb, rate float64, levels int, maxWorkload, slack, meanSpeed float64,
	seed uint64, out string, stdout, stderr io.Writer) int {
	gjobs, err := dag.Generate(rng.New(seed), dag.GenConfig{
		Jobs: jobs, Width: width, EdgeProb: edgeProb, Rate: rate,
		WorkloadStep: maxWorkload / float64(max(levels, 1)), Levels: levels,
		Slack: slack, MeanSpeed: meanSpeed, FirstID: 1,
	})
	if err != nil {
		// Generate only fails on out-of-range parameters — a usage error.
		fmt.Fprintln(stderr, "tracegen:", err)
		return 2
	}
	w := stdout
	if out != "" {
		fh, err := os.Create(out)
		if err != nil {
			fmt.Fprintln(stderr, "tracegen:", err)
			return 1
		}
		defer fh.Close()
		w = fh
	}
	edges := 0
	for _, j := range gjobs {
		edges += len(j.DependsOn)
		rec := api.TraceRecord{
			ID: j.ID, Arrival: j.Arrival, Workload: j.Workload,
			Nodes: j.Nodes, SD: j.SecurityDemand,
			DependsOn: j.DependsOn, Deadline: j.Deadline,
		}
		if err := api.WriteTraceRecord(w, rec); err != nil {
			fmt.Fprintln(stderr, "tracegen:", err)
			return 1
		}
	}
	fmt.Fprintf(stderr, "wrote %d dag jobs (%d edges, depth %d) over %.0f virtual seconds\n",
		len(gjobs), edges, (len(gjobs)+width-1)/width, gjobs[len(gjobs)-1].Arrival)
	return 0
}

// churnMain generates and writes a deterministic churn trace. The same
// (seed, sites, horizon) always yields the same JSONL bytes, so a trace
// checked into an experiment repo pins the whole dynamic scenario.
func churnMain(sites int, horizon, mtbf, outage float64, seed uint64, out string, stdout, stderr io.Writer) int {
	cfg := grid.DefaultChurnConfig(horizon)
	if mtbf > 0 {
		cfg.MTBF = mtbf
	}
	if outage > 0 {
		cfg.Outage = outage
	}
	events, err := cfg.Generate(rng.New(seed).Derive("churn"), sites)
	if err != nil {
		fmt.Fprintln(stderr, "tracegen:", err)
		return 1
	}
	w := stdout
	if out != "" {
		fh, err := os.Create(out)
		if err != nil {
			fmt.Fprintln(stderr, "tracegen:", err)
			return 1
		}
		defer fh.Close()
		w = fh
	}
	if err := grid.WriteChurnTrace(w, events); err != nil {
		fmt.Fprintln(stderr, "tracegen:", err)
		return 1
	}
	fmt.Fprintf(stderr, "wrote %d churn events for %d sites over %.0f virtual seconds\n",
		len(events), sites, horizon)
	return 0
}
