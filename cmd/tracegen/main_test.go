package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"trustgrid/internal/grid"
)

func TestRealMainWritesSWF(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.swf")
	var out, errb bytes.Buffer
	code := realMain([]string{"-jobs", "50", "-days", "2", "-o", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "MaxNodes: 128") {
		t.Fatalf("SWF header missing:\n%.200s", data)
	}
	if !strings.Contains(errb.String(), "wrote 50 jobs") {
		t.Fatalf("summary missing: %s", errb.String())
	}
}

func TestRealMainStdout(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-jobs", "10", "-days", "1"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if out.Len() == 0 {
		t.Fatal("no SWF on stdout")
	}
}

func TestRealMainBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// TestRealMainChurnTrace checks the -churn mode emits a valid,
// deterministic JSONL churn trace.
func TestRealMainChurnTrace(t *testing.T) {
	run := func() []byte {
		path := filepath.Join(t.TempDir(), "churn.jsonl")
		var out, errb bytes.Buffer
		code := realMain([]string{
			"-churn", "-churn-sites", "6", "-churn-horizon", "100000", "-o", path,
		}, &out, &errb)
		if code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, errb.String())
		}
		if !strings.Contains(errb.String(), "churn events for 6 sites") {
			t.Fatalf("summary missing: %s", errb.String())
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("churn trace not deterministic across runs")
	}
	events, err := grid.ReadChurnTrace(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("empty churn trace")
	}
	if err := grid.ValidateChurn(events, 6); err != nil {
		t.Fatal(err)
	}
}
