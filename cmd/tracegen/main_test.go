package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"trustgrid/internal/api"
	"trustgrid/internal/grid"
)

func TestRealMainWritesSWF(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.swf")
	var out, errb bytes.Buffer
	code := realMain([]string{"-jobs", "50", "-days", "2", "-o", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "MaxNodes: 128") {
		t.Fatalf("SWF header missing:\n%.200s", data)
	}
	if !strings.Contains(errb.String(), "wrote 50 jobs") {
		t.Fatalf("summary missing: %s", errb.String())
	}
}

func TestRealMainStdout(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-jobs", "10", "-days", "1"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if out.Len() == 0 {
		t.Fatal("no SWF on stdout")
	}
}

func TestRealMainBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// TestRealMainArrivalsTrace checks the -arrivals mode emits a
// deterministic multi-tenant arrival trace that round-trips through the
// shared trace reader with tenants assigned and arrivals monotone.
func TestRealMainArrivalsTrace(t *testing.T) {
	run := func() []byte {
		path := filepath.Join(t.TempDir(), "arrivals.jsonl")
		var out, errb bytes.Buffer
		code := realMain([]string{
			"-arrivals", "-jobs", "30", "-arrival-rate", "0.01",
			"-tenants", "gold,silver,bronze", "-o", path,
		}, &out, &errb)
		if code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, errb.String())
		}
		if !strings.Contains(errb.String(), "wrote 30 arrivals") ||
			!strings.Contains(errb.String(), "3 tenant(s)") {
			t.Fatalf("summary missing: %s", errb.String())
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("arrival trace not deterministic across runs")
	}
	recs, err := api.ReadTrace(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 30 {
		t.Fatalf("got %d records, want 30", len(recs))
	}
	tenants := map[string]bool{}
	for i, r := range recs {
		if i > 0 && r.Arrival < recs[i-1].Arrival {
			t.Fatalf("arrivals not monotone at %d", i)
		}
		if r.SD < 0.6 || r.SD > 0.9 || r.Workload <= 0 {
			t.Fatalf("record %d out of range: %+v", i, r)
		}
		tenants[r.Tenant] = true
	}
	if len(tenants) != 3 {
		t.Fatalf("tenant column: %v", tenants)
	}
	for _, j := range api.JobsFromTrace(recs) {
		if err := j.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRealMainDAGTrace checks the -dag mode emits a deterministic
// dependent-job trace whose edges pass the shared DAG validator and
// survive materialization.
func TestRealMainDAGTrace(t *testing.T) {
	run := func() []byte {
		path := filepath.Join(t.TempDir(), "dag.jsonl")
		var out, errb bytes.Buffer
		code := realMain([]string{
			"-dag", "-jobs", "40", "-dag-width", "8", "-dag-edge-prob", "0.5",
			"-arrival-rate", "0.05", "-o", path,
		}, &out, &errb)
		if code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, errb.String())
		}
		if !strings.Contains(errb.String(), "wrote 40 dag jobs") ||
			!strings.Contains(errb.String(), "depth 5") {
			t.Fatalf("summary missing: %s", errb.String())
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("dag trace not deterministic across runs")
	}
	recs, err := api.ReadTrace(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 40 {
		t.Fatalf("got %d records, want 40", len(recs))
	}
	if err := api.ValidateDAG(recs); err != nil {
		t.Fatal(err)
	}
	edges, deadlines := 0, 0
	for _, r := range recs {
		edges += len(r.DependsOn)
		if r.Deadline > 0 {
			deadlines++
		}
	}
	if edges == 0 {
		t.Fatal("dag trace has no edges")
	}
	if deadlines != len(recs) {
		t.Fatalf("%d/%d records carry deadlines, want all", deadlines, len(recs))
	}
	for _, j := range api.JobsFromTrace(recs) {
		if err := j.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRealMainArrivalsRejectsBadSpec pins -arrivals flag validation.
func TestRealMainArrivalsRejectsBadSpec(t *testing.T) {
	for _, args := range [][]string{
		{"-arrivals", "-jobs", "0"},
		{"-arrivals", "-tenants", "bad id!"},
		{"-arrivals", "-churn"},
		{"-arrivals", "-dag"},
		{"-dag", "-churn"},
		{"-dag", "-dag-width", "0"},
	} {
		var out, errb bytes.Buffer
		if code := realMain(args, &out, &errb); code != 2 {
			t.Errorf("%v: exit %d, want 2", args, code)
		}
	}
}

// TestRealMainChurnTrace checks the -churn mode emits a valid,
// deterministic JSONL churn trace.
func TestRealMainChurnTrace(t *testing.T) {
	run := func() []byte {
		path := filepath.Join(t.TempDir(), "churn.jsonl")
		var out, errb bytes.Buffer
		code := realMain([]string{
			"-churn", "-churn-sites", "6", "-churn-horizon", "100000", "-o", path,
		}, &out, &errb)
		if code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, errb.String())
		}
		if !strings.Contains(errb.String(), "churn events for 6 sites") {
			t.Fatalf("summary missing: %s", errb.String())
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("churn trace not deterministic across runs")
	}
	events, err := grid.ReadChurnTrace(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("empty churn trace")
	}
	if err := grid.ValidateChurn(events, 6); err != nil {
		t.Fatal(err)
	}
}
