// Command trustgrid-worker hosts one engine shard of a trustgridd
// fleet (DESIGN.md §12). It boots blank: the first coordinator attach
// ships the run's fleet.Spec and the worker builds its shard's engine
// from it — same partition, same labelled RNG streams the daemon would
// use in process, so the fleet's merged event stream is byte-identical
// to -shards N.
//
// Usage:
//
//	trustgrid-worker [-config FILE]
//	                 [-listen 127.0.0.1:7601] [-wal DIR]
//	                 [-event-buffer N] [-heartbeat 1s]
//
// -wal makes the shard durable: every input the coordinator sends
// (arrivals, tenant weights, clock barriers, the shard's churn prefix)
// is write-ahead-logged and committed before it is acknowledged, and
// the configuring spec is persisted alongside. A killed worker
// restarted on the same -wal directory replays the log — re-deriving
// its exact engine state and event sequence — and reattaches where it
// left off; the coordinator's next barrier backfills whatever the
// daemon missed. Without -wal the shard is in-memory only and a
// restart comes back blank.
//
// All run configuration (sites, algorithm, seed, churn, admission)
// lives at the coordinator and arrives in the attach frame; the worker
// refuses attaches whose spec fingerprint or shard index differ from
// what it was configured (or recovered) with. Every flag can also come
// from a flat YAML config file (-config or TRUSTGRID_WORKER_CONFIG;
// keys are flag names) or TRUSTGRID_WORKER_* environment overrides,
// with fixed precedence: flag > environment > file > default.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"

	"trustgrid/internal/config"
	"trustgrid/internal/fleet"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("trustgrid-worker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	configPath := fs.String("config", "", "flat YAML config file; keys are flag names (precedence: flag > TRUSTGRID_WORKER_* env > file > default)")
	listen := fs.String("listen", "127.0.0.1:7601", "address to serve the fleet protocol on")
	walDir := fs.String("wal", "", "durable-state directory (WAL + persisted spec); a restart replays it and reattaches (empty = in-memory shard)")
	eventBuffer := fs.Int("event-buffer", 0, "engine events retained for reconnect backfill (0 = 65536)")
	heartbeat := fs.Duration("heartbeat", 0, "status heartbeat cadence; must stay well under the coordinator's 5s liveness TTL (0 = 1s)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	path := *configPath
	if path == "" {
		path = os.Getenv("TRUSTGRID_WORKER_CONFIG")
	}
	var fileVals map[string]string
	if path != "" {
		var err error
		if fileVals, err = config.Load(path); err != nil {
			fmt.Fprintln(stderr, "trustgrid-worker:", err)
			return 2
		}
	}
	if err := config.Apply(fs, "TRUSTGRID_WORKER", fileVals); err != nil {
		fmt.Fprintln(stderr, "trustgrid-worker:", err)
		return 2
	}

	w, err := fleet.NewWorker(fleet.WorkerConfig{
		WALDir:      *walDir,
		EventBuffer: *eventBuffer,
		Heartbeat:   *heartbeat,
	})
	if err != nil {
		fmt.Fprintln(stderr, "trustgrid-worker:", err)
		return 1
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(stderr, "trustgrid-worker:", err)
		return 1
	}
	switch {
	case *walDir == "":
		fmt.Fprintf(stdout, "trustgrid-worker: serving on %s (in-memory shard, awaiting attach)\n", ln.Addr())
	case w.Fingerprint() != "":
		fmt.Fprintf(stdout, "trustgrid-worker: serving on %s (recovered from %s, spec %.12s)\n",
			ln.Addr(), *walDir, w.Fingerprint())
	default:
		fmt.Fprintf(stdout, "trustgrid-worker: serving on %s (durable in %s, awaiting attach)\n", ln.Addr(), *walDir)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- w.Serve(ln) }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		if err != nil {
			fmt.Fprintln(stderr, "trustgrid-worker:", err)
			w.Close()
			return 1
		}
	case s := <-sig:
		fmt.Fprintf(stdout, "trustgrid-worker: received %s, shutting down\n", s)
	}
	// Close commits nothing new — every acknowledged input is already on
	// disk (commit-before-ack) — it just releases the WAL cleanly. A
	// kill -9 instead of a signal loses nothing either; that's the test.
	if err := w.Close(); err != nil {
		fmt.Fprintln(stderr, "trustgrid-worker:", err)
		return 1
	}
	return 0
}
