package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"trustgrid/internal/experiments"
	"trustgrid/internal/server"
)

// TestRealMainAgainstService runs a short open-loop burst against an
// in-process daemon and checks the report and exit code.
func TestRealMainAgainstService(t *testing.T) {
	setup := experiments.TestSetup()
	w, err := setup.PSAWorkload(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Sites: w.Sites, Algo: "minmin", Seed: 1, Setup: setup,
		BatchInterval: 5000, Tick: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop(false)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var out, errb bytes.Buffer
	code := realMain([]string{
		"-addr", ts.URL, "-rate", "400", "-duration", "400ms",
		"-flush", "2ms", "-wait", "5s",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errb.String(), out.String())
	}
	for _, want := range []string{"loadgen report", "sched latency:", "p99"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, out.String())
		}
	}
}

// TestRealMainDAGSmoke runs the -dag-smoke mode against an in-process
// ticking daemon: the three-layer DAG must complete with precedence
// honored in the event log and the mid-log cursor splice seamless.
func TestRealMainDAGSmoke(t *testing.T) {
	setup := experiments.TestSetup()
	w, err := setup.PSAWorkload(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Sites: w.Sites, Algo: "minmin", Seed: 1, Setup: setup,
		BatchInterval: 5000, Tick: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop(false)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var out, errb bytes.Buffer
	code := realMain([]string{"-addr", ts.URL, "-dag-smoke", "-wait", "10s"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errb.String(), out.String())
	}
	if !strings.Contains(out.String(), "dag-smoke ok: 7 jobs (12 edges)") {
		t.Fatalf("summary missing:\n%s", out.String())
	}
}

// TestRealMainMinRateGate checks the CI throughput gate trips when the
// achieved rate is below -min-rate.
func TestRealMainMinRateGate(t *testing.T) {
	setup := experiments.TestSetup()
	w, err := setup.PSAWorkload(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Sites: w.Sites, Algo: "minmin", Seed: 1, Setup: setup,
		BatchInterval: 5000, Tick: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop(false)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var out, errb bytes.Buffer
	code := realMain([]string{
		"-addr", ts.URL, "-rate", "50", "-duration", "200ms",
		"-flush", "2ms", "-wait", "5s", "-min-rate", "100000",
	}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "below -min-rate") {
		t.Fatalf("stderr: %s", errb.String())
	}
}

// TestRealMainMultiTenant429 drives three tenants of unequal weight,
// one with a tiny queue quota, against a live in-process daemon: every
// tenant must see placements, and the capped tenant must observe at
// least one 429 that a Retry-After retry then recovers — the same gates
// the CI daemon-smoke job runs over real processes.
func TestRealMainMultiTenant429(t *testing.T) {
	setup := experiments.TestSetup()
	w, err := setup.PSAWorkload(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Sites: w.Sites, Algo: "minmin", Seed: 1, Setup: setup,
		BatchInterval: 5000, Tick: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop(false)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var out, errb bytes.Buffer
	code := realMain([]string{
		"-addr", ts.URL, "-rate", "400", "-duration", "1200ms",
		"-flush", "2ms", "-wait", "8s",
		"-tenants", "gold:4,silver:2,bronze:1:1",
		"-require-tenant-placements", "-require-429",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errb.String(), out.String())
	}
	for _, want := range []string{"tenant gold", "tenant silver", "tenant bronze", "429s"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, out.String())
		}
	}
}

// TestRealMainBadTenantSpec pins -tenants parsing errors to exit 2.
func TestRealMainBadTenantSpec(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-tenants", "nocolon"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2 (stderr: %s)", code, errb.String())
	}
	if code := realMain([]string{"-require-429"}, &out, &errb); code != 2 {
		t.Fatalf("gates without -tenants: exit should be 2")
	}
}

func TestRealMainUnreachable(t *testing.T) {
	var out, errb bytes.Buffer
	code := realMain([]string{"-addr", "127.0.0.1:1", "-duration", "10ms"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "unreachable") {
		t.Fatalf("stderr: %s", errb.String())
	}
}

func TestRealMainBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
