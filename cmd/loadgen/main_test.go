package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"trustgrid/internal/experiments"
	"trustgrid/internal/server"
)

// TestRealMainAgainstService runs a short open-loop burst against an
// in-process daemon and checks the report and exit code.
func TestRealMainAgainstService(t *testing.T) {
	setup := experiments.TestSetup()
	w, err := setup.PSAWorkload(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Sites: w.Sites, Algo: "minmin", Seed: 1, Setup: setup,
		BatchInterval: 5000, Tick: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop(false)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var out, errb bytes.Buffer
	code := realMain([]string{
		"-addr", ts.URL, "-rate", "400", "-duration", "400ms",
		"-flush", "2ms", "-wait", "5s",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errb.String(), out.String())
	}
	for _, want := range []string{"loadgen report", "sched latency:", "p99"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, out.String())
		}
	}
}

// TestRealMainMinRateGate checks the CI throughput gate trips when the
// achieved rate is below -min-rate.
func TestRealMainMinRateGate(t *testing.T) {
	setup := experiments.TestSetup()
	w, err := setup.PSAWorkload(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Sites: w.Sites, Algo: "minmin", Seed: 1, Setup: setup,
		BatchInterval: 5000, Tick: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop(false)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var out, errb bytes.Buffer
	code := realMain([]string{
		"-addr", ts.URL, "-rate", "50", "-duration", "200ms",
		"-flush", "2ms", "-wait", "5s", "-min-rate", "100000",
	}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "below -min-rate") {
		t.Fatalf("stderr: %s", errb.String())
	}
}

func TestRealMainUnreachable(t *testing.T) {
	var out, errb bytes.Buffer
	code := realMain([]string{"-addr", "127.0.0.1:1", "-duration", "10ms"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "unreachable") {
		t.Fatalf("stderr: %s", errb.String())
	}
}

func TestRealMainBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
