// Command loadgen drives a running trustgridd with a seeded open-loop
// arrival stream and reports achieved throughput and scheduling-latency
// percentiles. "Open loop" means submission timing never waits for the
// server: every flush interval it submits however many jobs the target
// rate says are due, so server slowdown shows up as latency, not as a
// reduced offered load. All traffic goes through the typed client
// package (internal/client) — loadgen is also the client's field test.
//
// Usage:
//
//	loadgen [-addr http://127.0.0.1:8421] [-rate 1000] [-duration 5s]
//	        [-seed 1] [-flush 5ms] [-wait 10s] [-min-rate 0]
//	        [-tenants gold:4,silver:2,bronze:1:40]
//	        [-require-tenant-placements] [-require-429]
//	loadgen -dag-smoke [-addr ...] [-seed 1] [-wait 10s]
//
// With -dag-smoke, loadgen instead runs the dependent-job end-to-end
// check: it submits a three-layer DAG through the typed client (each
// layer's depends_on naming the server-assigned IDs of the previous
// layer), waits for all jobs to complete, and fails unless (a) every
// blocked job's job_ready and placed events follow the completion of
// all of its parents in the event log, and (b) re-reading the log from
// a mid-stream ?since= cursor yields exactly the remaining suffix. It
// expects a dedicated daemon instance.
//
// With -tenants (comma-separated id:weight[:maxqueue] entries) loadgen
// registers the tenants on the daemon and spreads the offered load
// round-robin across them; the daemon's weighted fair-share admission
// then shapes per-tenant throughput. A submission rejected with 429
// (queue quota) is retried after the server's Retry-After hint and
// counted; -require-429 makes a run fail unless at least one 429 was
// observed AND successfully retried (the CI admission-control gate),
// and -require-tenant-placements fails unless every registered tenant
// saw at least one placement (the CI fair-share gate).
//
// Latency is measured client-side: the wall-clock time from a flush's
// submission instant to the job's placement event observed on the
// event stream. Exit status is non-zero if the daemon is unreachable,
// no placements are observed, the achieved submission rate falls below
// -min-rate, or a -require-* gate trips. The achieved rate counts only
// first-attempt acceptances against the submission window — batches
// recovered by a post-429 retry land after sleeping on Retry-After and
// are reported separately, so quota throttling cannot inflate the rate
// gate.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"trustgrid/internal/api"
	"trustgrid/internal/client"
	"trustgrid/internal/rng"
	"trustgrid/internal/stats"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

type tracker struct {
	mu        sync.Mutex
	submit    map[int]time.Time
	unmatched map[int]time.Time // placements seen before their submit response
	resolved  map[int]bool      // jobs whose first placement was sampled
	samples   []float64         // ms; one per first placement of a job we submitted
	placed    int               // placement events seen, retries included
	byTenant  map[string]int    // first placements per tenant
}

func (tr *tracker) submitted(ids []int, at time.Time) {
	tr.mu.Lock()
	for _, id := range ids {
		// A fast server can place a job before its submit response is
		// processed here; match such placements immediately.
		if t1, ok := tr.unmatched[id]; ok {
			delete(tr.unmatched, id)
			tr.resolved[id] = true
			tr.samples = append(tr.samples, float64(t1.Sub(at))/float64(time.Millisecond))
			continue
		}
		tr.submit[id] = at
	}
	tr.mu.Unlock()
}

func (tr *tracker) placedEvent(id int, tenant string, at time.Time) {
	tr.mu.Lock()
	tr.placed++
	switch {
	case tr.resolved[id]:
		// A retry of an already-sampled job; only the event count moves.
	case tr.submit[id] != (time.Time{}):
		tr.samples = append(tr.samples, float64(at.Sub(tr.submit[id]))/float64(time.Millisecond))
		delete(tr.submit, id)
		tr.resolved[id] = true
		tr.byTenant[tenant]++
	default:
		if _, seen := tr.unmatched[id]; !seen {
			tr.unmatched[id] = at
			tr.byTenant[tenant]++
		}
	}
	tr.mu.Unlock()
}

// tenantLoad is one target tenant's spec and rolling counters.
type tenantLoad struct {
	spec      api.TenantSpec
	submitted int64 // accepted jobs
	rejected  int64 // 429 responses observed
	recovered int64 // 429'd batches that eventually got accepted
}

// parseTenants parses "id:weight[:maxqueue]" entries.
func parseTenants(spec string) ([]*tenantLoad, error) {
	if spec == "" {
		return nil, nil
	}
	var out []*tenantLoad
	for _, entry := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(entry), ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("bad tenant entry %q (want id:weight[:maxqueue])", entry)
		}
		w, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("bad tenant weight in %q", entry)
		}
		t := &tenantLoad{spec: api.TenantSpec{ID: parts[0], Weight: w}}
		if len(parts) == 3 {
			q, err := strconv.Atoi(parts[2])
			if err != nil || q < 0 {
				return nil, fmt.Errorf("bad tenant maxqueue in %q", entry)
			}
			t.spec.MaxQueue = q
		}
		out = append(out, t)
	}
	return out, nil
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "http://127.0.0.1:8421", "trustgridd base URL")
	rate := fs.Float64("rate", 1000, "target submission rate, jobs per second")
	duration := fs.Duration("duration", 5*time.Second, "submission phase length")
	seed := fs.Uint64("seed", 1, "workload seed")
	flush := fs.Duration("flush", 5*time.Millisecond, "submission flush interval")
	wait := fs.Duration("wait", 10*time.Second, "max wait for outstanding placements after the run")
	minRate := fs.Float64("min-rate", 0, "fail (exit 1) if the achieved rate is below this")
	levels := fs.Int("levels", 20, "discrete workload levels (PSA-style)")
	maxWorkload := fs.Float64("max-workload", 300000, "workload of the top level")
	tenantsSpec := fs.String("tenants", "", "register and drive these tenants (id:weight[:maxqueue],...); empty = default tenant via /v1")
	requireTenantPlacements := fs.Bool("require-tenant-placements", false, "fail unless every tenant saw >= 1 placement")
	require429 := fs.Bool("require-429", false, "fail unless >= 1 submission was rejected 429 and then successfully retried")
	dagSmokeMode := fs.Bool("dag-smoke", false, "run the dependent-job end-to-end check instead of a load run")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *dagSmokeMode {
		return dagSmoke(*addr, *seed, *wait, stdout, stderr)
	}
	tenants, err := parseTenants(*tenantsSpec)
	if err != nil {
		fmt.Fprintln(stderr, "loadgen:", err)
		return 2
	}
	if (*requireTenantPlacements || *require429) && len(tenants) == 0 {
		fmt.Fprintln(stderr, "loadgen: -require-tenant-placements/-require-429 need -tenants")
		return 2
	}

	c := client.New(*addr)
	ctx := context.Background()
	if err := c.Healthz(ctx); err != nil {
		fmt.Fprintln(stderr, "loadgen: daemon unreachable:", err)
		return 1
	}
	for _, t := range tenants {
		if _, err := c.CreateTenant(ctx, t.spec); err != nil && !errors.Is(err, client.ErrConflict) {
			fmt.Fprintln(stderr, "loadgen: register tenant:", err)
			return 1
		}
	}

	tr := &tracker{
		submit:    make(map[int]time.Time),
		unmatched: make(map[int]time.Time),
		resolved:  make(map[int]bool),
		byTenant:  make(map[string]int),
	}

	// Placement watcher: follow the event stream for the whole run.
	watchCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	watcherDone := make(chan error, 1)
	go func() { watcherDone <- watchPlacements(watchCtx, c, tr) }()

	// Open-loop submission phase. Jobs are assigned to tenants
	// round-robin; the server's fair-share admission does the shaping.
	r := rng.New(*seed).Derive("loadgen")
	step := *maxWorkload / float64(*levels)
	tenantIDs := []string{""}
	if len(tenants) > 0 {
		tenantIDs = tenantIDs[:0]
		for _, t := range tenants {
			tenantIDs = append(tenantIDs, t.spec.ID)
		}
	}
	byID := make(map[string]*tenantLoad, len(tenants))
	for _, t := range tenants {
		byID[t.spec.ID] = t
	}
	var mu sync.Mutex // guards tenantLoad counters and the acceptance tallies
	accepted := 0     // first-attempt acceptances: the -min-rate numerator
	recovered := 0    // jobs accepted on a post-429 retry (may land after the window)
	offered := 0
	retryDeadline := time.Now().Add(*duration + *wait)
	var submitWG sync.WaitGroup
	var errOnce sync.Once
	var submitErr error
	nextTenant := 0
	start := time.Now()
	ticker := time.NewTicker(*flush)
	for now := range ticker.C {
		elapsed := now.Sub(start)
		if elapsed >= *duration {
			break
		}
		due := int(*rate*elapsed.Seconds()) - offered
		if due <= 0 {
			continue
		}
		// Split the due jobs across tenants, rotating the start so no
		// tenant systematically gets the remainder.
		perTenant := make(map[string][]api.JobSpec, len(tenantIDs))
		for i := 0; i < due; i++ {
			id := tenantIDs[nextTenant%len(tenantIDs)]
			nextTenant++
			perTenant[id] = append(perTenant[id], api.JobSpec{
				Workload: step * float64(r.Level(*levels)),
				SD:       r.Uniform(0.6, 0.9),
			})
		}
		offered += due
		flushAt := time.Now()
		for id, specs := range perTenant {
			submitWG.Add(1)
			go func(tenant string, specs []api.JobSpec) {
				defer submitWG.Done()
				retried := false
				for {
					ids, err := c.Submit(ctx, tenant, specs)
					switch {
					case err == nil:
						tr.submitted(ids, flushAt)
						mu.Lock()
						// Retried batches can be accepted long after the
						// submission window closed (they slept on
						// Retry-After), so they do not count toward the
						// achieved-rate gate — only toward the placement
						// tail and the per-tenant report.
						if retried {
							recovered += len(ids)
						} else {
							accepted += len(ids)
						}
						if t := byID[tenant]; t != nil {
							t.submitted += int64(len(ids))
							if retried {
								t.recovered++
							}
						}
						mu.Unlock()
						return
					case errors.Is(err, client.ErrOverQuota):
						// Admission control said "come back later": honor
						// the Retry-After hint, bounded so a hard-capped
						// tenant cannot stall the report forever.
						mu.Lock()
						if t := byID[tenant]; t != nil {
							t.rejected++
						}
						mu.Unlock()
						retried = true
						backoff := client.RetryAfter(err)
						if backoff <= 0 {
							backoff = 100 * time.Millisecond
						}
						if time.Now().Add(backoff).After(retryDeadline) {
							return // give up; the rejection stays counted
						}
						time.Sleep(backoff)
					default:
						errOnce.Do(func() { submitErr = err })
						return
					}
				}
			}(id, specs)
		}
	}
	ticker.Stop()
	elapsed := time.Since(start)
	submitWG.Wait()
	if submitErr != nil {
		fmt.Fprintln(stderr, "loadgen: submit failed:", submitErr)
		return 1
	}
	mu.Lock()
	submitted := accepted + recovered // total in the daemon, for the placement tail
	achieved := float64(accepted) / elapsed.Seconds()
	recoveredJobs := recovered
	mu.Unlock()

	// Wait for the tail: every accepted job placed at least once. A
	// dead event stream ends the wait immediately — nothing more is
	// coming.
	deadline := time.Now().Add(*wait)
	var watchErr error
	watcherEnded := false
	for !watcherEnded {
		tr.mu.Lock()
		firstPlaced := len(tr.samples) + len(tr.unmatched)
		tr.mu.Unlock()
		if firstPlaced >= submitted || time.Now().After(deadline) {
			break
		}
		select {
		case watchErr = <-watcherDone:
			watcherEnded = true
		case <-time.After(10 * time.Millisecond):
		}
	}
	cancel()
	if !watcherEnded {
		watchErr = <-watcherDone
	}

	tr.mu.Lock()
	placed := tr.placed
	samples := append([]float64(nil), tr.samples...)
	perTenantPlaced := make(map[string]int, len(tr.byTenant))
	for k, v := range tr.byTenant {
		perTenantPlaced[k] = v
	}
	tr.mu.Unlock()

	fmt.Fprintf(stdout, "loadgen report (%s)\n", c.BaseURL())
	fmt.Fprintf(stdout, "  target rate:     %.1f jobs/s for %s\n", *rate, *duration)
	fmt.Fprintf(stdout, "  submitted:       %d in %.2fs (achieved %.1f jobs/s first-attempt, %d offered, %d recovered via retry)\n",
		submitted, elapsed.Seconds(), achieved, offered, recoveredJobs)
	fmt.Fprintf(stdout, "  jobs placed:     %d/%d (%.1f%%); %d placement events incl. retries\n",
		len(samples), submitted, 100*float64(len(samples))/float64(max(submitted, 1)), placed)
	if len(samples) > 0 {
		fmt.Fprintf(stdout, "  sched latency:   p50 %.1fms  p90 %.1fms  p99 %.1fms  max %.1fms  (n=%d)\n",
			stats.Percentile(samples, 50), stats.Percentile(samples, 90),
			stats.Percentile(samples, 99), stats.Max(samples), len(samples))
	}
	var total429, totalRecovered int64
	for _, t := range tenants {
		mu.Lock()
		sub, rej, rec := t.submitted, t.rejected, t.recovered
		mu.Unlock()
		total429 += rej
		totalRecovered += rec
		fmt.Fprintf(stdout, "  tenant %-12s weight %g: accepted %d, placed %d, 429s %d (recovered %d)\n",
			t.spec.ID, t.spec.Weight, sub, perTenantPlaced[t.spec.ID], rej, rec)
	}
	if rep, err := c.Metrics(ctx, ""); err == nil {
		fmt.Fprintf(stdout, "  server:          arrived %d, placed %d, completed %d, batches %d, virtual now %.0fs\n",
			rep.Arrived, rep.Placed, rep.Completed, rep.Batches, rep.VirtualNow)
		fmt.Fprintf(stdout, "  server latency:  p50 %.1fms  p99 %.1fms  (n=%d)\n",
			rep.Latency.P50, rep.Latency.P99, rep.Latency.Count)
	}

	if len(samples) == 0 {
		fmt.Fprintln(stderr, "loadgen: no placements observed")
		if watchErr != nil {
			fmt.Fprintln(stderr, "loadgen: event stream:", watchErr)
		}
		return 1
	}
	if *minRate > 0 && achieved < *minRate {
		fmt.Fprintf(stderr, "loadgen: achieved %.1f jobs/s below -min-rate %.1f\n", achieved, *minRate)
		return 1
	}
	if *requireTenantPlacements {
		for _, t := range tenants {
			if perTenantPlaced[t.spec.ID] == 0 {
				fmt.Fprintf(stderr, "loadgen: tenant %s saw no placements\n", t.spec.ID)
				return 1
			}
		}
	}
	if *require429 {
		if total429 == 0 {
			fmt.Fprintln(stderr, "loadgen: -require-429 but no 429 was observed")
			return 1
		}
		if totalRecovered == 0 {
			fmt.Fprintln(stderr, "loadgen: -require-429 but no 429'd batch was successfully retried")
			return 1
		}
	}
	return 0
}

// watchPlacements follows the event stream through the typed client
// (cursor-resuming across drops) and feeds the tracker until ctx is
// cancelled.
func watchPlacements(ctx context.Context, c *client.Client, tr *tracker) error {
	es := c.Events(ctx, client.EventsOptions{Follow: true, Kinds: []string{"placed"}})
	defer es.Close()
	for {
		ev, err := es.Next()
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, io.EOF) {
				return nil // stream ends on cancel or server shutdown
			}
			return err
		}
		tr.placedEvent(ev.Job, ev.Tenant, time.Now())
	}
}
