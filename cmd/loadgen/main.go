// Command loadgen drives a running trustgridd with a seeded open-loop
// arrival stream and reports achieved throughput and scheduling-latency
// percentiles. "Open loop" means submission timing never waits for the
// server: every flush interval it submits however many jobs the target
// rate says are due, so server slowdown shows up as latency, not as a
// reduced offered load.
//
// Usage:
//
//	loadgen [-addr http://127.0.0.1:8421] [-rate 1000] [-duration 5s]
//	        [-seed 1] [-flush 5ms] [-wait 10s] [-min-rate 0]
//
// Latency is measured client-side: the wall-clock time from a flush's
// submission instant to the job's placement event observed on the
// /v1/events stream. Exit status is non-zero if the daemon is
// unreachable, no placements are observed, or the achieved submission
// rate falls below -min-rate (the CI smoke gate).
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"trustgrid/internal/rng"
	"trustgrid/internal/server"
	"trustgrid/internal/stats"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

type tracker struct {
	mu        sync.Mutex
	submit    map[int]time.Time
	unmatched map[int]time.Time // placements seen before their submit response
	resolved  map[int]bool      // jobs whose first placement was sampled
	samples   []float64         // ms; one per first placement of a job we submitted
	placed    int               // placement events seen, retries included
}

func (tr *tracker) submitted(ids []int, at time.Time) {
	tr.mu.Lock()
	for _, id := range ids {
		// A fast server can place a job before its submit response is
		// processed here; match such placements immediately.
		if t1, ok := tr.unmatched[id]; ok {
			delete(tr.unmatched, id)
			tr.resolved[id] = true
			tr.samples = append(tr.samples, float64(t1.Sub(at))/float64(time.Millisecond))
			continue
		}
		tr.submit[id] = at
	}
	tr.mu.Unlock()
}

func (tr *tracker) placedEvent(id int, at time.Time) {
	tr.mu.Lock()
	tr.placed++
	switch {
	case tr.resolved[id]:
		// A retry of an already-sampled job; only the event count moves.
	case tr.submit[id] != (time.Time{}):
		tr.samples = append(tr.samples, float64(at.Sub(tr.submit[id]))/float64(time.Millisecond))
		delete(tr.submit, id)
		tr.resolved[id] = true
	default:
		if _, seen := tr.unmatched[id]; !seen {
			tr.unmatched[id] = at
		}
	}
	tr.mu.Unlock()
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "http://127.0.0.1:8421", "trustgridd base URL")
	rate := fs.Float64("rate", 1000, "target submission rate, jobs per second")
	duration := fs.Duration("duration", 5*time.Second, "submission phase length")
	seed := fs.Uint64("seed", 1, "workload seed")
	flush := fs.Duration("flush", 5*time.Millisecond, "submission flush interval")
	wait := fs.Duration("wait", 10*time.Second, "max wait for outstanding placements after the run")
	minRate := fs.Float64("min-rate", 0, "fail (exit 1) if the achieved rate is below this")
	levels := fs.Int("levels", 20, "discrete workload levels (PSA-style)")
	maxWorkload := fs.Float64("max-workload", 300000, "workload of the top level")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	base := strings.TrimRight(*addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}

	client := &http.Client{Timeout: 10 * time.Second}
	hz, err := client.Get(base + "/v1/healthz")
	if err != nil {
		fmt.Fprintln(stderr, "loadgen: daemon unreachable:", err)
		return 1
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		fmt.Fprintf(stderr, "loadgen: daemon unhealthy: %s\n", hz.Status)
		return 1
	}

	tr := &tracker{
		submit:    make(map[int]time.Time),
		unmatched: make(map[int]time.Time),
		resolved:  make(map[int]bool),
	}

	// Placement watcher: follow the event stream for the whole run.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	watcherDone := make(chan error, 1)
	go func() { watcherDone <- watchPlacements(ctx, base, tr) }()

	// Open-loop submission phase.
	r := rng.New(*seed).Derive("loadgen")
	step := *maxWorkload / float64(*levels)
	submitted := 0
	var submitWG sync.WaitGroup
	var errOnce sync.Once
	var submitErr error
	start := time.Now()
	ticker := time.NewTicker(*flush)
	for now := range ticker.C {
		elapsed := now.Sub(start)
		if elapsed >= *duration {
			break
		}
		due := int(*rate*elapsed.Seconds()) - submitted
		if due <= 0 {
			continue
		}
		specs := make([]server.JobSpec, due)
		for i := range specs {
			specs[i] = server.JobSpec{
				Workload: step * float64(r.Level(*levels)),
				SD:       r.Uniform(0.6, 0.9),
			}
		}
		submitted += due
		flushAt := time.Now()
		submitWG.Add(1)
		go func(specs []server.JobSpec) {
			defer submitWG.Done()
			ids, err := postJobs(client, base, specs)
			if err != nil {
				errOnce.Do(func() { submitErr = err })
				return
			}
			tr.submitted(ids, flushAt)
		}(specs)
	}
	ticker.Stop()
	elapsed := time.Since(start)
	submitWG.Wait()
	if submitErr != nil {
		fmt.Fprintln(stderr, "loadgen: submit failed:", submitErr)
		return 1
	}
	achieved := float64(submitted) / elapsed.Seconds()

	// Wait for the tail: every submitted job placed at least once. A
	// dead event stream ends the wait immediately — nothing more is
	// coming.
	deadline := time.Now().Add(*wait)
	var watchErr error
	watcherEnded := false
	for !watcherEnded {
		tr.mu.Lock()
		firstPlaced := len(tr.samples)
		tr.mu.Unlock()
		if firstPlaced >= submitted || time.Now().After(deadline) {
			break
		}
		select {
		case watchErr = <-watcherDone:
			watcherEnded = true
		case <-time.After(10 * time.Millisecond):
		}
	}
	cancel()
	if !watcherEnded {
		watchErr = <-watcherDone
	}

	tr.mu.Lock()
	placed := tr.placed
	samples := append([]float64(nil), tr.samples...)
	tr.mu.Unlock()

	fmt.Fprintf(stdout, "loadgen report (%s)\n", base)
	fmt.Fprintf(stdout, "  target rate:     %.1f jobs/s for %s\n", *rate, *duration)
	fmt.Fprintf(stdout, "  submitted:       %d in %.2fs (achieved %.1f jobs/s)\n",
		submitted, elapsed.Seconds(), achieved)
	fmt.Fprintf(stdout, "  jobs placed:     %d/%d (%.1f%%); %d placement events incl. retries\n",
		len(samples), submitted, 100*float64(len(samples))/float64(max(submitted, 1)), placed)
	if len(samples) > 0 {
		fmt.Fprintf(stdout, "  sched latency:   p50 %.1fms  p90 %.1fms  p99 %.1fms  max %.1fms  (n=%d)\n",
			stats.Percentile(samples, 50), stats.Percentile(samples, 90),
			stats.Percentile(samples, 99), stats.Max(samples), len(samples))
	}
	if rep, err := fetchMetrics(client, base); err == nil {
		fmt.Fprintf(stdout, "  server:          arrived %d, placed %d, completed %d, batches %d, virtual now %.0fs\n",
			rep.Arrived, rep.Placed, rep.Completed, rep.Batches, rep.VirtualNow)
		fmt.Fprintf(stdout, "  server latency:  p50 %.1fms  p99 %.1fms  (n=%d)\n",
			rep.Latency.P50, rep.Latency.P99, rep.Latency.Count)
	}

	if len(samples) == 0 {
		fmt.Fprintln(stderr, "loadgen: no placements observed")
		if watchErr != nil {
			fmt.Fprintln(stderr, "loadgen: event stream:", watchErr)
		}
		return 1
	}
	if *minRate > 0 && achieved < *minRate {
		fmt.Fprintf(stderr, "loadgen: achieved %.1f jobs/s below -min-rate %.1f\n", achieved, *minRate)
		return 1
	}
	return 0
}

func postJobs(client *http.Client, base string, specs []server.JobSpec) ([]int, error) {
	body, err := json.Marshal(map[string]any{"jobs": specs})
	if err != nil {
		return nil, err
	}
	resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("submit: %s: %s", resp.Status, msg)
	}
	var out struct {
		IDs []int `json:"ids"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.IDs, nil
}

// watchPlacements follows /v1/events and feeds the tracker until ctx is
// cancelled.
func watchPlacements(ctx context.Context, base string, tr *tracker) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		base+"/v1/events?follow=1&kinds=placed", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("event stream: %s: %s", resp.Status, msg)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev server.WireEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue
		}
		tr.placedEvent(ev.Job, time.Now())
	}
	return nil // stream ends on cancel or server shutdown
}

func fetchMetrics(client *http.Client, base string) (*server.MetricsReport, error) {
	resp, err := client.Get(base + "/v1/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var rep server.MetricsReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return nil, err
	}
	return &rep, nil
}
