package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"trustgrid/internal/api"
	"trustgrid/internal/client"
	"trustgrid/internal/rng"
)

// dagSmoke drives the dependent-job path end to end against a live
// daemon: three layers submitted through the typed client with each
// layer's depends_on naming the server-assigned IDs of the layer
// before, completion of all jobs within the wait budget, precedence
// honored in the event log, and cursor resume intact mid-log.
func dagSmoke(addr string, seed uint64, wait time.Duration, stdout, stderr io.Writer) int {
	fail := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "loadgen: dag-smoke: "+format+"\n", args...)
		return 1
	}
	c := client.New(addr)
	ctx := context.Background()
	if err := c.Healthz(ctx); err != nil {
		return fail("daemon unreachable: %v", err)
	}
	before, err := c.Metrics(ctx, "")
	if err != nil {
		return fail("metrics: %v", err)
	}

	// Three layers: 3 sources, 3 middles each depending on every source,
	// one sink depending on every middle. Workloads are small enough to
	// complete in a handful of batch rounds.
	r := rng.New(seed).Derive("dag-smoke")
	specs := func(n int, deps []int) []api.JobSpec {
		out := make([]api.JobSpec, n)
		for i := range out {
			out[i] = api.JobSpec{
				Workload:  1000 * float64(r.Level(5)),
				SD:        r.Uniform(0.6, 0.9),
				DependsOn: deps,
			}
		}
		return out
	}
	sources, err := c.Submit(ctx, "", specs(3, nil))
	if err != nil {
		return fail("submit sources: %v", err)
	}
	middles, err := c.Submit(ctx, "", specs(3, sources))
	if err != nil {
		return fail("submit middles (deps %v): %v", sources, err)
	}
	sink, err := c.Submit(ctx, "", specs(1, middles))
	if err != nil {
		return fail("submit sink (deps %v): %v", middles, err)
	}
	deps := map[int][]int{sink[0]: middles}
	for _, id := range middles {
		deps[id] = sources
	}
	total := len(sources) + len(middles) + len(sink)

	// The daemon ticks on its own; poll until the whole DAG completed.
	deadline := time.Now().Add(wait)
	for {
		rep, err := c.Metrics(ctx, "")
		if err != nil {
			return fail("metrics: %v", err)
		}
		if rep.Completed >= before.Completed+int64(total) {
			break
		}
		if time.Now().After(deadline) {
			return fail("only %d/%d jobs completed within %s (blocked release stuck?)",
				rep.Completed-before.Completed, total, wait)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Read the whole log in two pages, splicing at an arbitrary cursor:
	// the second read must start exactly where the first stopped.
	events, cut, err := readSpliced(ctx, c, total)
	if err != nil {
		return fail("%v", err)
	}

	// Precedence: a blocked job's job_ready and placed events must
	// follow the completion of every parent; job_ready fires exactly
	// once per blocked job and never for a source.
	completedSeq := map[int]int64{}
	readyCount := map[int]int{}
	lastSeq := int64(-1)
	for _, ev := range events {
		if ev.Seq <= lastSeq {
			return fail("event log not strictly ordered: seq %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		switch ev.Kind {
		case "job_ready", "placed":
			if ev.Kind == "job_ready" {
				readyCount[ev.Job]++
			}
			for _, p := range deps[ev.Job] {
				if seq, done := completedSeq[p]; !done || seq > ev.Seq {
					return fail("%s for job %d (seq %d) precedes completion of parent %d",
						ev.Kind, ev.Job, ev.Seq, p)
				}
			}
		case "completed":
			completedSeq[ev.Job] = ev.Seq
		}
	}
	for id := range deps {
		if readyCount[id] != 1 {
			return fail("job %d emitted %d job_ready events, want 1", id, readyCount[id])
		}
	}
	for _, id := range sources {
		if readyCount[id] != 0 {
			return fail("dependency-free job %d emitted job_ready", id)
		}
	}

	edges := 0
	for _, ps := range deps {
		edges += len(ps)
	}
	fmt.Fprintf(stdout, "dag-smoke ok: %d jobs (%d edges) completed in order; "+
		"%d events verified, cursor splice at seq %d\n",
		total, edges, len(events), cut)
	return 0
}

// readSpliced reads the daemon's full event log as two non-follow pages
// split at an arbitrary cursor and verifies the splice is seamless: the
// second page starts exactly one past the first page's cursor.
func readSpliced(ctx context.Context, c *client.Client, firstPage int) ([]api.Event, int64, error) {
	head := c.Events(ctx, client.EventsOptions{Max: firstPage})
	events, err := drainStream(head)
	if err != nil {
		return nil, 0, fmt.Errorf("event page 1: %w", err)
	}
	cut := head.Cursor()
	head.Close()
	if len(events) > 0 && events[len(events)-1].Seq != cut-1 {
		return nil, 0, fmt.Errorf("cursor %d does not follow last delivered seq %d", cut, events[len(events)-1].Seq)
	}
	tail := c.Events(ctx, client.EventsOptions{Since: cut})
	rest, err := drainStream(tail)
	if err != nil {
		return nil, 0, fmt.Errorf("event page 2 (since %d): %w", cut, err)
	}
	tail.Close()
	if len(rest) == 0 {
		return nil, 0, fmt.Errorf("resume from cursor %d yielded nothing", cut)
	}
	if rest[0].Seq < cut {
		return nil, 0, fmt.Errorf("resume from cursor %d replayed seq %d", cut, rest[0].Seq)
	}
	return append(events, rest...), cut, nil
}

func drainStream(es *client.EventStream) ([]api.Event, error) {
	var out []api.Event
	for {
		ev, err := es.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
}
