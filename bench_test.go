// Benchmarks regenerating every table and figure of the paper (scaled
// down so the suite completes in minutes; `cmd/benchsuite -scale paper`
// runs the full Table 1 sizes). One benchmark per artifact:
//
//	BenchmarkFig7a   — makespan vs f-risky threshold (Fig. 7a)
//	BenchmarkFig7b   — STGA makespan vs iteration budget (Fig. 7b)
//	BenchmarkFig5    — warm vs cold GA convergence (Fig. 5)
//	BenchmarkFig8    — NAS seven-algorithm comparison (Fig. 8)
//	BenchmarkFig9    — per-site utilization view of the same run (Fig. 9)
//	BenchmarkTable2  — α/β ratios and ranking (Table 2)
//	BenchmarkFig10   — PSA scaling in N (Fig. 10)
//	BenchmarkClusterExt — A5 space-shared substrate validation
//
// plus micro-benchmarks of the scheduling kernels, the
// parallel-vs-serial comparisons (BenchmarkGAParallel,
// BenchmarkFig7bFanOut) that quantify the worker-pool evaluator and the
// experiment fan-out, and the service-layer throughput axis
// (BenchmarkOnlineEngine, BenchmarkServiceSubmit): the incremental
// arrival-channel engine alone and the full trustgridd HTTP submission
// path, both reporting jobs/s.
package trustgrid_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"

	"trustgrid/internal/experiments"
	"trustgrid/internal/grid"
	"trustgrid/internal/heuristics"
	"trustgrid/internal/rng"
	"trustgrid/internal/sched"
	"trustgrid/internal/sched/kernel"
	"trustgrid/internal/server"
	"trustgrid/internal/stga"
)

// benchSetup is the scaled-down configuration shared by the figure
// benchmarks.
func benchSetup() experiments.Setup {
	s := experiments.TestSetup()
	s.NASJobs = 1000
	s.NASSpan = 4 * 24 * 3600
	s.Population = 50
	s.Generations = 30
	s.TrainingJobs = 120
	return s
}

func BenchmarkFig7a(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig7a(s)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.F) != 11 {
			b.Fatalf("expected 11 sweep points, got %d", len(res.F))
		}
	}
}

func BenchmarkFig7b(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig7b(s, []int{5, 25, 50, 100})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Makespan) != 4 {
			b.Fatal("sweep incomplete")
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig5(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunNAS(s)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Algorithms) != 7 {
			b.Fatal("missing algorithms")
		}
	}
}

func BenchmarkFig9(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunNAS(s)
		if err != nil {
			b.Fatal(err)
		}
		if res.RenderFig9() == "" {
			b.Fatal("empty Fig. 9 view")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunNAS(s)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Table2()) != 7 {
			b.Fatal("incomplete Table 2")
		}
	}
}

func BenchmarkFig10(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig10(s, []int{250, 500, 1000})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Sizes) != 3 {
			b.Fatal("sweep incomplete")
		}
	}
}

func BenchmarkClusterExt(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunClusterExtension(s); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks of the scheduling kernels ---

func benchBatch(n int) ([]*grid.Job, *sched.State) {
	r := rng.New(1)
	sites, err := grid.PSAPlatform().Generate(r.Derive("sites"))
	if err != nil {
		panic(err)
	}
	jobs := make([]*grid.Job, n)
	for i := range jobs {
		jobs[i] = &grid.Job{
			ID: i, Workload: 1000 + r.Float64()*200000, Nodes: 1,
			SecurityDemand: r.Uniform(0.6, 0.9),
		}
	}
	return jobs, &sched.State{Sites: sites, Ready: make([]float64, len(sites))}
}

// freshBenchState rebuilds the state each iteration the way the engine
// does per round: a fresh State carrying a Builder-rebuilt columnar
// snapshot (reused arenas), so the benchmark includes the per-round
// snapshot cost at its production price rather than hiding it behind
// the per-State cache or inflating it with one-shot allocation.
func freshBenchState(kb *kernel.Builder, st *sched.State, jobs []*grid.Job) *sched.State {
	out := &sched.State{Now: st.Now, Sites: st.Sites, Ready: st.Ready, Alive: st.Alive}
	out.Kern = kb.Build(out.Now, out.Sites, out.Ready, out.Alive, jobs)
	return out
}

func BenchmarkMinMinBatch50(b *testing.B) {
	jobs, st := benchBatch(50)
	s := heuristics.NewMinMin(grid.FRiskyPolicy(0.5))
	var kb kernel.Builder
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(jobs, freshBenchState(&kb, st, jobs))
	}
}

func BenchmarkSufferageBatch50(b *testing.B) {
	jobs, st := benchBatch(50)
	s := heuristics.NewSufferage(grid.FRiskyPolicy(0.5))
	var kb kernel.Builder
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(jobs, freshBenchState(&kb, st, jobs))
	}
}

func BenchmarkKernelBuild(b *testing.B) {
	jobs, st := benchBatch(50)
	var kb kernel.Builder
	p := grid.FRiskyPolicy(0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := kb.Build(st.Now, st.Sites, st.Ready, st.Alive, jobs)
		for j := range jobs {
			_ = s.Eligible(p, j)
		}
	}
}

func BenchmarkSTGABatch50(b *testing.B) {
	jobs, st := benchBatch(50)
	cfg := stga.DefaultConfig() // full Table 1 GA: pop 200 × 100 gens
	s := stga.New(cfg, rng.New(2))
	var kb kernel.Builder
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(jobs, freshBenchState(&kb, st, jobs))
	}
}

// BenchmarkSTGASchedule is the canonical end-to-end STGA benchmark of
// the columnar-kernel refactor: one Schedule call on the full Table 1
// GA, at the small and large batch sizes the paper's workloads produce.
// The GA's rng draw sequence is pinned by the determinism suite (about
// one Bool per gene per individual per generation), which bounds how
// far this end-to-end number can drop; BenchmarkFitnessPath in
// internal/stga isolates the fitness path itself.
func BenchmarkSTGASchedule(b *testing.B) {
	for _, n := range []int{50, 200} {
		b.Run(fmt.Sprintf("batch=%d", n), func(b *testing.B) {
			jobs, st := benchBatch(n)
			s := stga.New(stga.DefaultConfig(), rng.New(2))
			var kb kernel.Builder
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Schedule(jobs, freshBenchState(&kb, st, jobs))
			}
		})
	}
}

// BenchmarkGAParallel pits the serial fitness path against the worker
// pool on the full Table 1 GA (population 200 × 100 generations over a
// 200-job batch). Both produce bit-identical schedules; the ratio of
// the two timings is the evaluator speedup.
func BenchmarkGAParallel(b *testing.B) {
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			jobs, st := benchBatch(200)
			cfg := stga.DefaultConfig()
			cfg.GA.Workers = w
			s := stga.New(cfg, rng.New(2))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Schedule(jobs, st)
			}
		})
	}
}

// BenchmarkFig7bFanOut measures the experiment-level fan-out: the same
// iteration sweep run serially and with every sweep point concurrent.
func BenchmarkFig7bFanOut(b *testing.B) {
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			s := benchSetup()
			s.Workers = w
			s.GAWorkers = 1 // isolate the sweep-level parallelism
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunFig7b(s, []int{5, 25, 50, 100})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Makespan) != 4 {
					b.Fatal("sweep incomplete")
				}
			}
		})
	}
}

func BenchmarkEngineThroughput(b *testing.B) {
	// End-to-end simulation throughput with a cheap scheduler: measures
	// the event engine + dispatch path, ~1000 jobs per iteration.
	s := benchSetup()
	w, err := s.PSAWorkload(3, 1000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sched.Run(sched.RunConfig{
			Jobs: w.Jobs, Sites: w.Sites,
			Scheduler:     heuristics.NewMCT(grid.FRiskyPolicy(0.5)),
			BatchInterval: 5000,
			Rand:          rng.New(uint64(i)),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Summary.Jobs != 1000 {
			b.Fatal("incomplete run")
		}
	}
}

// BenchmarkOnlineEngine measures the incremental engine on the same
// workload BenchmarkEngineThroughput runs closed-world: jobs submitted
// one by one through the arrival channel, then drained. The jobs/s
// metric is the service layer's scheduling-throughput ceiling before
// any HTTP overhead.
func BenchmarkOnlineEngine(b *testing.B) {
	s := benchSetup()
	w, err := s.PSAWorkload(3, 1000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o, err := sched.NewOnline(sched.RunConfig{
			Sites:         w.Sites,
			Scheduler:     heuristics.NewMCT(grid.FRiskyPolicy(0.5)),
			BatchInterval: 5000,
			Rand:          rng.New(uint64(i)),
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, j := range w.Jobs {
			if err := o.Submit(j); err != nil {
				b.Fatal(err)
			}
		}
		res, err := o.Drain()
		if err != nil {
			b.Fatal(err)
		}
		if res.Summary.Jobs != 1000 {
			b.Fatal("incomplete run")
		}
	}
	b.ReportMetric(float64(b.N)*1000/b.Elapsed().Seconds(), "jobs/s")
}

// BenchmarkServiceSubmit measures the full daemon path — HTTP JSON
// submission through the arrival channel into a scheduled drain — in
// manual-clock mode so wall-clock ticks don't gate throughput.
func BenchmarkServiceSubmit(b *testing.B) {
	s := benchSetup()
	w, err := s.PSAWorkload(1, 10)
	if err != nil {
		b.Fatal(err)
	}
	const jobs, chunk = 1000, 100
	specs := make([]server.JobSpec, chunk)
	r := rng.New(11)
	for i := range specs {
		specs[i] = server.JobSpec{Workload: 15000 * float64(r.Level(20)), SD: r.Uniform(0.6, 0.9)}
	}
	body, err := json.Marshal(map[string]any{"jobs": specs})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv, err := server.New(server.Config{
			Sites: w.Sites, Algo: "minmin", Seed: uint64(i), Setup: s,
			BatchInterval: 5000, Manual: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		for k := 0; k < jobs/chunk; k++ {
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("submit: %s", resp.Status)
			}
		}
		resp, err := http.Post(ts.URL+"/v1/drain", "application/json", bytes.NewReader([]byte("{}")))
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		ts.Close()
		if _, err := srv.Stop(false); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)*jobs/b.Elapsed().Seconds(), "jobs/s")
}
