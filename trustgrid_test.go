package trustgrid_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"

	"trustgrid"
)

// TestFacadeQuickstart exercises the documented public-API path
// end-to-end: generate a workload, build schedulers, simulate, compare.
func TestFacadeQuickstart(t *testing.T) {
	w, err := trustgrid.PSAWorkload(1, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Jobs) != 200 || len(w.Sites) != 20 {
		t.Fatalf("workload shape: %d jobs, %d sites", len(w.Jobs), len(w.Sites))
	}

	run := func(s trustgrid.Scheduler) trustgrid.Summary {
		res, err := trustgrid.Simulate(trustgrid.SimConfig{
			Jobs: w.Jobs, Sites: w.Sites, Scheduler: s,
			BatchInterval: 5000, Rand: trustgrid.NewRand(2),
		})
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		return res.Summary
	}

	secure := run(trustgrid.NewMinMin(trustgrid.SecurePolicy()))
	risky := run(trustgrid.NewMinMin(trustgrid.RiskyPolicy()))
	fr := run(trustgrid.NewSufferage(trustgrid.FRiskyPolicy(0.5)))

	cfg := trustgrid.STGAConfig()
	cfg.GA.PopulationSize = 40
	cfg.GA.Generations = 20
	stgaSched := trustgrid.NewSTGA(cfg, trustgrid.NewRand(3))
	stgaSched.Train(w.Training, w.Sites, 25)
	stgaRes := run(stgaSched)

	// The paper's qualitative orderings on any workload:
	if secure.NFail != 0 {
		t.Fatalf("secure mode failed %d jobs", secure.NFail)
	}
	if risky.NRisk == 0 {
		t.Fatal("risky mode took no risks on a mixed-SL platform")
	}
	if fr.NFail > fr.NRisk {
		t.Fatal("NFail must be bounded by NRisk")
	}
	if secure.Makespan <= risky.Makespan {
		t.Fatalf("secure (%v) should trail risky (%v) under load", secure.Makespan, risky.Makespan)
	}
	if stgaRes.Jobs != 200 {
		t.Fatalf("STGA completed %d/200 jobs", stgaRes.Jobs)
	}
}

func TestFacadeNASWorkload(t *testing.T) {
	w, err := trustgrid.NASWorkload(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Sites) != 12 {
		t.Fatalf("NAS platform has %d sites, want 12", len(w.Sites))
	}
	if len(w.Jobs) != 16000 {
		t.Fatalf("NAS workload has %d jobs, want Table 1's 16000", len(w.Jobs))
	}
}

func TestFacadeMCT(t *testing.T) {
	w, err := trustgrid.PSAWorkload(2, 50)
	if err != nil {
		t.Fatal(err)
	}
	res, err := trustgrid.Simulate(trustgrid.SimConfig{
		Jobs: w.Jobs, Sites: w.Sites,
		Scheduler:     trustgrid.NewMCT(trustgrid.FRiskyPolicy(0.5)),
		BatchInterval: 5000, Rand: trustgrid.NewRand(4),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Jobs != 50 {
		t.Fatalf("MCT completed %d/50", res.Summary.Jobs)
	}
}

// TestFacadeOnline exercises the streaming-arrival API: an Online
// engine fed job by job must reproduce the batch Simulate result.
func TestFacadeOnline(t *testing.T) {
	w, err := trustgrid.PSAWorkload(3, 80)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := trustgrid.Simulate(trustgrid.SimConfig{
		Jobs: w.Jobs, Sites: w.Sites,
		Scheduler:     trustgrid.NewMinMin(trustgrid.FRiskyPolicy(0.5)),
		BatchInterval: 5000, Rand: trustgrid.NewRand(5),
	})
	if err != nil {
		t.Fatal(err)
	}

	var placed int
	o, err := trustgrid.NewOnline(trustgrid.SimConfig{
		Sites:         w.Sites,
		Scheduler:     trustgrid.NewMinMin(trustgrid.FRiskyPolicy(0.5)),
		BatchInterval: 5000, Rand: trustgrid.NewRand(5),
		OnEvent: func(ev trustgrid.EngineEvent) {
			if ev.Kind == trustgrid.EventPlaced {
				placed++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range w.Jobs {
		if err := o.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	res, err := o.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Makespan != batch.Summary.Makespan ||
		res.Summary.AvgResponse != batch.Summary.AvgResponse ||
		res.Summary.NRisk != batch.Summary.NRisk {
		t.Fatalf("online summary %+v != batch %+v", res.Summary, batch.Summary)
	}
	if placed < 80 {
		t.Fatalf("saw %d placements for 80 jobs", placed)
	}
}

// TestFacadeMultiTenantService runs the README's multi-tenant quick
// start through the facade only: an embedded service, the typed
// client, tenant registration, fair-share config, quota errors and the
// event iterator.
func TestFacadeMultiTenantService(t *testing.T) {
	w, err := trustgrid.PSAWorkload(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	setup := trustgrid.DefaultSetup()
	setup.Population, setup.Generations = 8, 4
	svc, err := trustgrid.NewService(trustgrid.ServiceConfig{
		Sites: w.Sites, Algo: "minmin", Seed: 1, Setup: setup,
		BatchInterval: 1000, Manual: true, RoundBudget: 4,
		Tenants: []trustgrid.TenantSpec{{ID: "gold", Weight: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Stop(false)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	c := trustgrid.NewClient(ts.URL)
	ctx := context.Background()
	if _, err := c.CreateTenant(ctx, trustgrid.TenantSpec{ID: "bronze", Weight: 1, MaxQueue: 1}); err != nil {
		t.Fatal(err)
	}
	arr := 0.0
	if _, err := c.Submit(ctx, "gold", []trustgrid.JobSpec{{Arrival: &arr, Workload: 1000, SD: 0.7}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(ctx, "bronze", []trustgrid.JobSpec{{Arrival: &arr, Workload: 1000, SD: 0.7}}); err != nil {
		t.Fatal(err)
	}
	_, err = c.Submit(ctx, "bronze", []trustgrid.JobSpec{{Arrival: &arr, Workload: 1000, SD: 0.7}})
	if !errors.Is(err, trustgrid.ErrOverQuota) {
		t.Fatalf("want ErrOverQuota, got %v", err)
	}
	if trustgrid.ClientRetryAfter(err) <= 0 {
		t.Fatal("Retry-After hint missing")
	}
	if _, err := c.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	es := c.Events(ctx, trustgrid.ClientEventsOptions{Kinds: []string{"placed"}})
	defer es.Close()
	placed := 0
	for {
		if _, err := es.Next(); err != nil {
			break
		}
		placed++
	}
	if placed < 2 {
		t.Fatalf("placed %d events, want >= 2 (one per job, retries extra)", placed)
	}
	rep, err := c.Metrics(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if rep.RoundBudget != 4 || rep.Tenants["gold"].Weight != 4 {
		t.Fatalf("report: budget %d tenants %+v", rep.RoundBudget, rep.Tenants)
	}
}
