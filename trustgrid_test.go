package trustgrid_test

import (
	"testing"

	"trustgrid"
)

// TestFacadeQuickstart exercises the documented public-API path
// end-to-end: generate a workload, build schedulers, simulate, compare.
func TestFacadeQuickstart(t *testing.T) {
	w, err := trustgrid.PSAWorkload(1, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Jobs) != 200 || len(w.Sites) != 20 {
		t.Fatalf("workload shape: %d jobs, %d sites", len(w.Jobs), len(w.Sites))
	}

	run := func(s trustgrid.Scheduler) trustgrid.Summary {
		res, err := trustgrid.Simulate(trustgrid.SimConfig{
			Jobs: w.Jobs, Sites: w.Sites, Scheduler: s,
			BatchInterval: 5000, Rand: trustgrid.NewRand(2),
		})
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		return res.Summary
	}

	secure := run(trustgrid.NewMinMin(trustgrid.SecurePolicy()))
	risky := run(trustgrid.NewMinMin(trustgrid.RiskyPolicy()))
	fr := run(trustgrid.NewSufferage(trustgrid.FRiskyPolicy(0.5)))

	cfg := trustgrid.STGAConfig()
	cfg.GA.PopulationSize = 40
	cfg.GA.Generations = 20
	stgaSched := trustgrid.NewSTGA(cfg, trustgrid.NewRand(3))
	stgaSched.Train(w.Training, w.Sites, 25)
	stgaRes := run(stgaSched)

	// The paper's qualitative orderings on any workload:
	if secure.NFail != 0 {
		t.Fatalf("secure mode failed %d jobs", secure.NFail)
	}
	if risky.NRisk == 0 {
		t.Fatal("risky mode took no risks on a mixed-SL platform")
	}
	if fr.NFail > fr.NRisk {
		t.Fatal("NFail must be bounded by NRisk")
	}
	if secure.Makespan <= risky.Makespan {
		t.Fatalf("secure (%v) should trail risky (%v) under load", secure.Makespan, risky.Makespan)
	}
	if stgaRes.Jobs != 200 {
		t.Fatalf("STGA completed %d/200 jobs", stgaRes.Jobs)
	}
}

func TestFacadeNASWorkload(t *testing.T) {
	w, err := trustgrid.NASWorkload(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Sites) != 12 {
		t.Fatalf("NAS platform has %d sites, want 12", len(w.Sites))
	}
	if len(w.Jobs) != 16000 {
		t.Fatalf("NAS workload has %d jobs, want Table 1's 16000", len(w.Jobs))
	}
}

func TestFacadeMCT(t *testing.T) {
	w, err := trustgrid.PSAWorkload(2, 50)
	if err != nil {
		t.Fatal(err)
	}
	res, err := trustgrid.Simulate(trustgrid.SimConfig{
		Jobs: w.Jobs, Sites: w.Sites,
		Scheduler:     trustgrid.NewMCT(trustgrid.FRiskyPolicy(0.5)),
		BatchInterval: 5000, Rand: trustgrid.NewRand(4),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Jobs != 50 {
		t.Fatalf("MCT completed %d/50", res.Summary.Jobs)
	}
}

// TestFacadeOnline exercises the streaming-arrival API: an Online
// engine fed job by job must reproduce the batch Simulate result.
func TestFacadeOnline(t *testing.T) {
	w, err := trustgrid.PSAWorkload(3, 80)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := trustgrid.Simulate(trustgrid.SimConfig{
		Jobs: w.Jobs, Sites: w.Sites,
		Scheduler:     trustgrid.NewMinMin(trustgrid.FRiskyPolicy(0.5)),
		BatchInterval: 5000, Rand: trustgrid.NewRand(5),
	})
	if err != nil {
		t.Fatal(err)
	}

	var placed int
	o, err := trustgrid.NewOnline(trustgrid.SimConfig{
		Sites:         w.Sites,
		Scheduler:     trustgrid.NewMinMin(trustgrid.FRiskyPolicy(0.5)),
		BatchInterval: 5000, Rand: trustgrid.NewRand(5),
		OnEvent: func(ev trustgrid.EngineEvent) {
			if ev.Kind == trustgrid.EventPlaced {
				placed++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range w.Jobs {
		if err := o.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	res, err := o.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Makespan != batch.Summary.Makespan ||
		res.Summary.AvgResponse != batch.Summary.AvgResponse ||
		res.Summary.NRisk != batch.Summary.NRisk {
		t.Fatalf("online summary %+v != batch %+v", res.Summary, batch.Summary)
	}
	if placed < 80 {
		t.Fatalf("saw %d placements for 80 jobs", placed)
	}
}
