// Package trustgrid is a from-scratch Go reproduction of
//
//	S. Song, Y.-K. Kwok, K. Hwang, "Security-Driven Heuristics and A Fast
//	Genetic Algorithm for Trusted Grid Job Scheduling", IPDPS 2005.
//
// It provides a discrete-event grid simulator with the paper's security
// model (site security levels vs job security demands, exponential
// failure law), the security-driven Min-Min and Sufferage heuristics
// under secure / risky / f-risky modes, and the Space-Time Genetic
// Algorithm (STGA) — a batch scheduler that warm-starts its population
// from a similarity-indexed history of previous scheduling rounds.
//
// Beyond the paper's closed-world experiments, the package exposes the
// online serving layer behind the trustgridd daemon: an incremental
// engine fed by streaming job arrivals (NewOnline) and an embeddable
// HTTP service around it (NewService), with a recorded arrival trace
// replaying byte-identically through Simulate (DESIGN.md §6).
//
// This root package is a facade re-exporting the pieces a downstream
// user needs; the implementation lives in the internal packages (see
// DESIGN.md for the system inventory).
//
// Quick start:
//
//	w, _ := trustgrid.PSAWorkload(1, 1000)            // Table 1 PSA setup
//	sched := trustgrid.NewSTGA(trustgrid.STGAConfig(), trustgrid.NewRand(1))
//	res, _ := trustgrid.Simulate(trustgrid.SimConfig{
//	    Jobs: w.Jobs, Sites: w.Sites, Scheduler: sched,
//	    BatchInterval: 5000, Rand: trustgrid.NewRand(2),
//	})
//	fmt.Println(res.Summary.Makespan)
package trustgrid

import (
	"time"

	"trustgrid/internal/api"
	"trustgrid/internal/client"
	"trustgrid/internal/experiments"
	"trustgrid/internal/fuzzy"
	"trustgrid/internal/ga"
	"trustgrid/internal/grid"
	"trustgrid/internal/heuristics"
	"trustgrid/internal/metrics"
	"trustgrid/internal/rng"
	"trustgrid/internal/sched"
	"trustgrid/internal/server"
	"trustgrid/internal/stga"
)

// Core model types.
type (
	// Job is an independent, non-malleable grid job.
	Job = grid.Job
	// Site is a grid resource site with a security level.
	Site = grid.Site
	// Policy is a risk-mode admission rule (secure / risky / f-risky).
	Policy = grid.Policy
	// SecurityModel is the Eq. 1 exponential failure law.
	SecurityModel = grid.SecurityModel
	// Scheduler maps job batches onto sites.
	Scheduler = sched.Scheduler
	// Assignment is one job→site dispatch decision.
	Assignment = sched.Assignment
	// State is the scheduler-visible grid state.
	State = sched.State
	// Summary aggregates the paper's performance metrics (§4.1).
	Summary = metrics.Summary
	// JobRecord is one job's simulated lifecycle.
	JobRecord = metrics.JobRecord
	// SimConfig configures a full simulation run.
	SimConfig = sched.RunConfig
	// SimResult is a completed simulation.
	SimResult = sched.Result
	// Rand is a deterministic random stream.
	Rand = rng.Stream
	// Workload bundles generated jobs, sites and STGA training jobs.
	Workload = experiments.Workload
	// Setup carries every experiment knob (Table 1 defaults), including
	// Workers (concurrent sweep points) and GAWorkers (parallel fitness
	// evaluation) — both 0 = all cores, 1 = serial, and both
	// result-preserving at any setting.
	Setup = experiments.Setup
	// GAConfig holds the evolutionary hyper-parameters, including the
	// Workers knob that parallelizes fitness evaluation across
	// goroutines (0 = all cores, 1 = serial) while keeping evolution
	// bit-identical to the serial path. Reachable as STGAConfig().GA.
	GAConfig = ga.Config
	// Online is the incremental simulation engine: the batch loop of
	// Simulate promoted to an open-world API where jobs stream in
	// (Submit, safe from any goroutine) while the owner advances the
	// virtual clock (AdvanceTo/Drain). Simulate is a thin wrapper over
	// it, so recorded online traffic replays byte-identically through
	// the batch path (DESIGN.md §6).
	Online = sched.Online
	// EngineEvent is one job lifecycle notification (arrival, placement,
	// failure, completion) delivered through SimConfig.OnEvent.
	EngineEvent = sched.EngineEvent
	// EventKind labels an EngineEvent.
	EventKind = sched.EventKind
	// DynamicsConfig turns a simulation into a dynamic grid: site churn,
	// ground-truth security divergence and online reputation feedback
	// (DESIGN.md §7). Attach via SimConfig.Dynamics.
	DynamicsConfig = sched.DynamicsConfig
	// ChurnEvent is one timed site transition (crash, drain, join,
	// degrade, restore) of a churn trace.
	ChurnEvent = grid.ChurnEvent
	// ChurnConfig generates seeded churn traces (grid.ChurnConfig).
	ChurnConfig = grid.ChurnConfig
	// ReputationConfig parameterizes the online per-site trust model:
	// EWMA evidence per security-demand band feeding the fuzzy
	// inference.
	ReputationConfig = fuzzy.ReputationConfig
	// Reputation is one site's online trust state.
	Reputation = fuzzy.Reputation
	// SiteStatus is a site's live dynamic-grid state, as reported by
	// Online.SiteStatuses and the daemon's /v1/sites endpoint.
	SiteStatus = sched.SiteStatus
	// ServiceConfig configures the embeddable trustgridd HTTP service.
	ServiceConfig = server.Config
	// Service is a running trusted-scheduling HTTP service instance:
	// mount Handler() on any mux, Stop(drain) to shut down. The
	// cmd/trustgridd daemon is a thin wrapper around it.
	Service = server.Server
	// AdmissionConfig bounds each Δ-round's batch and shares the budget
	// between tenants by weighted deficit-round-robin (DESIGN.md §9.2).
	// Attach via SimConfig.Admission; the service layer builds it from
	// ServiceConfig.RoundBudget and the tenant registry.
	AdmissionConfig = sched.AdmissionConfig
	// TenantSpec registers or describes a tenant of the v2 API: weight,
	// queue quota, SD defaults and risk policy.
	TenantSpec = api.TenantSpec
	// JobSpec is the v1/v2 job submission wire format.
	JobSpec = api.JobSpec
	// TraceRecord is one accepted arrival of the replayable trace
	// format (with the v2 tenant column).
	TraceRecord = api.TraceRecord
	// Client is the typed Go client for a trustgridd instance; see
	// NewClient. Tooling in this repo (loadgen, the parity tests) talks
	// to the daemon exclusively through it.
	Client = client.Client
	// ClientEventsOptions filters and positions a client event stream.
	ClientEventsOptions = client.EventsOptions
	// MetricsReport is the daemon's metrics document (global and
	// per-tenant counters, latency percentiles).
	MetricsReport = api.MetricsReport
)

// DefaultTenant is the tenant the /v1 compatibility shim submits to.
const DefaultTenant = api.DefaultTenant

// Client error classes, matched with errors.Is against any error a
// Client method returns. ErrOverQuota (429) carries a Retry-After
// hint, surfaced by ClientRetryAfter.
var (
	ErrBadRequest  = client.ErrBadRequest
	ErrNotFound    = client.ErrNotFound
	ErrConflict    = client.ErrConflict
	ErrOverQuota   = client.ErrOverQuota
	ErrUnavailable = client.ErrUnavailable
)

// ClientRetryAfter extracts the server's backoff hint from a client
// error chain (zero if the error carries none).
func ClientRetryAfter(err error) time.Duration { return client.RetryAfter(err) }

// Job lifecycle transitions reported through SimConfig.OnEvent. The
// Interrupted and Site* kinds fire only on dynamic grids.
const (
	EventArrived     = sched.EventArrived
	EventPlaced      = sched.EventPlaced
	EventFailed      = sched.EventFailed
	EventCompleted   = sched.EventCompleted
	EventInterrupted = sched.EventInterrupted
	EventSiteDown    = sched.EventSiteDown
	EventSiteUp      = sched.EventSiteUp
	EventSiteSpeed   = sched.EventSiteSpeed
)

// Site churn transition kinds.
const (
	ChurnCrash   = grid.ChurnCrash
	ChurnDrain   = grid.ChurnDrain
	ChurnJoin    = grid.ChurnJoin
	ChurnDegrade = grid.ChurnDegrade
	ChurnRestore = grid.ChurnRestore
)

// Risk modes (paper §2).
const (
	Secure = grid.Secure
	Risky  = grid.Risky
	FRisky = grid.FRisky
)

// NewRand returns a deterministic random stream for the given seed.
func NewRand(seed uint64) *Rand { return rng.New(seed) }

// DefaultChurnConfig returns a moderate churn regime over the horizon.
func DefaultChurnConfig(horizon float64) ChurnConfig { return grid.DefaultChurnConfig(horizon) }

// DefaultReputationConfig returns the reference online-trust model.
func DefaultReputationConfig() ReputationConfig { return fuzzy.DefaultReputationConfig() }

// NewReputation builds the cold-start reputation of one site with the
// given declared security level.
func NewReputation(cfg ReputationConfig, declaredSL float64) (*Reputation, error) {
	return fuzzy.NewReputation(cfg, declaredSL)
}

// DeceptiveLevels builds a ground-truth security vector where a
// fraction of sites truly run gap below their declaration, for
// DynamicsConfig.TrueLevels.
func DeceptiveLevels(sites []*Site, frac, gap float64, r *Rand) []float64 {
	return grid.DeceptiveLevels(sites, frac, gap, r)
}

// SecurePolicy admits only sites with SL >= SD.
func SecurePolicy() Policy { return grid.SecurePolicy() }

// RiskyPolicy admits every site.
func RiskyPolicy() Policy { return grid.RiskyPolicy() }

// FRiskyPolicy admits sites whose failure probability is at most f.
func FRiskyPolicy(f float64) Policy { return grid.FRiskyPolicy(f) }

// NewMinMin builds the security-driven Min-Min heuristic.
func NewMinMin(p Policy) Scheduler { return heuristics.NewMinMin(p) }

// NewSufferage builds the security-driven Sufferage heuristic.
func NewSufferage(p Policy) Scheduler { return heuristics.NewSufferage(p) }

// NewMCT builds the minimum-completion-time baseline.
func NewMCT(p Policy) Scheduler { return heuristics.NewMCT(p) }

// STGAConfig returns the paper's Table 1 STGA configuration.
func STGAConfig() stga.Config { return stga.DefaultConfig() }

// NewSTGA builds the Space-Time Genetic Algorithm scheduler. Call Train
// on the result to pre-populate its history table.
func NewSTGA(cfg stga.Config, r *Rand) *stga.Scheduler { return stga.New(cfg, r) }

// Simulate runs a complete online-scheduling simulation (Fig. 1 model)
// and returns the aggregated metrics.
func Simulate(cfg SimConfig) (*SimResult, error) { return sched.Run(cfg) }

// NewOnline builds the incremental engine behind Simulate: cfg.Jobs may
// be empty, with jobs streamed in later via Submit while the caller
// drives the virtual clock (AdvanceTo / Drain).
func NewOnline(cfg SimConfig) (*Online, error) { return sched.NewOnline(cfg) }

// NewService builds an embeddable trusted-scheduling HTTP service (the
// engine behind cmd/trustgridd) and starts its scheduling loop.
func NewService(cfg ServiceConfig) (*Service, error) { return server.New(cfg) }

// NewClient returns a typed client for the trustgridd instance at base
// (scheme optional). Errors map onto the client package's classes
// (client.ErrOverQuota etc.); the event iterator resumes its cursor
// across dropped connections.
func NewClient(base string) *Client { return client.New(base) }

// DefaultSetup returns the paper's Table 1 experiment configuration.
func DefaultSetup() Setup { return experiments.DefaultSetup() }

// NASWorkload generates the Table 1 NAS configuration: a 12-site grid
// mapped from the 128-node iPSC/860 and a synthetic 46-day trace.
func NASWorkload(seed uint64) (*Workload, error) {
	return experiments.DefaultSetup().NASWorkload(seed)
}

// PSAWorkload generates the Table 1 parameter-sweep configuration with
// n jobs on a 20-site grid.
func PSAWorkload(seed uint64, n int) (*Workload, error) {
	return experiments.DefaultSetup().PSAWorkload(seed, n)
}
