// Fuzzy trust: derive site security levels from observable security
// attributes with the fuzzy-logic trust index (the paper's ref [23]
// substrate) instead of sampling SL uniformly, then schedule a workload
// on the resulting platform. Run with:
//
//	go run ./examples/fuzzytrust
package main

import (
	"fmt"
	"log"

	"trustgrid"
	"trustgrid/internal/fuzzy"
	"trustgrid/internal/rng"
)

func main() {
	// Four site archetypes, from a hardened supercomputing center to a
	// loosely administered campus cluster.
	profiles := []struct {
		name  string
		attrs fuzzy.Attributes
	}{
		{"national-lab", fuzzy.Attributes{IntrusionDetection: 0.95, Firewall: 0.95, Authentication: 0.9, SuccessHistory: 0.98}},
		{"university-hpc", fuzzy.Attributes{IntrusionDetection: 0.7, Firewall: 0.8, Authentication: 0.7, SuccessHistory: 0.85}},
		{"department-cluster", fuzzy.Attributes{IntrusionDetection: 0.4, Firewall: 0.6, Authentication: 0.5, SuccessHistory: 0.6}},
		{"campus-lab", fuzzy.Attributes{IntrusionDetection: 0.15, Firewall: 0.3, Authentication: 0.3, SuccessHistory: 0.35}},
	}

	r := rng.New(11)
	var sites []*trustgrid.Site
	fmt.Printf("%-20s %-8s %-6s\n", "profile", "trust", "SL")
	for i := 0; i < 20; i++ {
		p := profiles[i%len(profiles)]
		trust, err := fuzzy.TrustIndex(p.attrs)
		if err != nil {
			log.Fatal(err)
		}
		sl, err := fuzzy.SecurityLevel(p.attrs)
		if err != nil {
			log.Fatal(err)
		}
		if i < len(profiles) {
			fmt.Printf("%-20s %-8.2f %-6.2f\n", p.name, trust, sl)
		}
		sites = append(sites, &trustgrid.Site{
			ID:            i,
			Speed:         float64(10 * (i%10 + 1)),
			Nodes:         1,
			SecurityLevel: sl,
		})
	}

	// Generate PSA jobs and schedule on the fuzzy-rated platform.
	w, err := trustgrid.PSAWorkload(11, 1000)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range []trustgrid.Scheduler{
		trustgrid.NewMinMin(trustgrid.SecurePolicy()),
		trustgrid.NewMinMin(trustgrid.FRiskyPolicy(0.5)),
	} {
		res, err := trustgrid.Simulate(trustgrid.SimConfig{
			Jobs: w.Jobs, Sites: sites, Scheduler: s,
			BatchInterval: 5000, Rand: r.Derive("engine"),
		})
		if err != nil {
			log.Fatal(err)
		}
		m := res.Summary
		fmt.Printf("\n%-22s makespan %.3e s  response %.3e s  Nrisk %d  Nfail %d  idle sites %d\n",
			s.Name(), m.Makespan, m.AvgResponse, m.NRisk, m.NFail, m.IdleSites)
	}
	fmt.Println("\nThe fuzzy index concentrates trust: hardened sites clear the")
	fmt.Println("secure threshold for every demand, campus labs for none — so the")
	fmt.Println("secure mode idles the low-trust half of the grid.")
}
