// PSA scaling study (the paper's Fig. 10 scenario): sweep the number of
// jobs N and compare Min-Min f-risky, Sufferage f-risky and the STGA.
// Run with:
//
//	go run ./examples/psasweep [-sizes 500,1000,2000]
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"trustgrid/internal/experiments"
)

func main() {
	sizesArg := flag.String("sizes", "500,1000,2000", "comma-separated job counts")
	flag.Parse()

	var sizes []int
	for _, s := range strings.Split(*sizesArg, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			log.Fatalf("bad size %q", s)
		}
		sizes = append(sizes, n)
	}

	setup := experiments.DefaultSetup()
	res, err := experiments.RunFig10(setup, sizes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Render())
}
