// NAS trace comparison (the paper's Fig. 8 scenario): run all seven
// algorithms on the synthetic NASA Ames iPSC/860 workload mapped onto a
// 12-site grid, and print the metric table plus per-site utilizations.
// Run with:
//
//	go run ./examples/nastrace [-jobs 4000]
package main

import (
	"flag"
	"fmt"
	"log"

	"trustgrid/internal/experiments"
)

func main() {
	jobs := flag.Int("jobs", 4000, "trace size (paper: 16000; smaller is faster)")
	reps := flag.Int("reps", 1, "replications")
	flag.Parse()

	setup := experiments.DefaultSetup()
	setup.NASJobs = *jobs
	setup.Reps = *reps
	// Keep the offered load comparable when shrinking the job count.
	setup.NASSpan = setup.NASSpan * float64(*jobs) / 16000

	res, err := experiments.RunNAS(setup)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Render())
	fmt.Println(res.RenderFig9())
	fmt.Println(res.RenderTable2())
}
