// Risk-threshold sweep (the paper's Fig. 7(a) scenario): vary the
// f-risky admission threshold from 0 (secure) to 1 (risky) and watch the
// makespan trace out the concave curve whose minimum motivates the
// paper's choice of f = 0.5. Run with:
//
//	go run ./examples/riskmodes
package main

import (
	"fmt"
	"log"

	"trustgrid/internal/experiments"
)

func main() {
	setup := experiments.DefaultSetup()
	setup.Reps = 3 // makespan is a max-statistic; average a few seeds

	res, err := experiments.RunFig7a(setup)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Render())

	fmt.Println("Reading the curve: f = 0 restricts every job to sites that")
	fmt.Println("meet its demand outright (few, so queues build); f = 1 admits")
	fmt.Println("near-certain failures whose rework clogs the safe sites. The")
	fmt.Println("sweet spot in between is the paper's operating point.")
}
