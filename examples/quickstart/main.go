// Quickstart: schedule a parameter-sweep workload on a 20-site grid with
// the security-driven Min-Min heuristic and the STGA, and compare the
// paper's metrics. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"trustgrid"
)

func main() {
	// A Table 1 PSA workload: 1000 independent jobs, Poisson arrivals,
	// 20 sites with security levels in [0.4, 1.0].
	w, err := trustgrid.PSAWorkload(42, 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d jobs on %d sites\n\n", len(w.Jobs), len(w.Sites))

	simulate := func(s trustgrid.Scheduler) trustgrid.Summary {
		res, err := trustgrid.Simulate(trustgrid.SimConfig{
			Jobs:          w.Jobs,
			Sites:         w.Sites,
			Scheduler:     s,
			BatchInterval: 5000, // schedule queued jobs every 5000 s
			Rand:          trustgrid.NewRand(7),
		})
		if err != nil {
			log.Fatal(err)
		}
		return res.Summary
	}

	// The three risk modes of the Min-Min heuristic.
	fmt.Printf("%-22s %12s %12s %9s %7s %7s\n",
		"algorithm", "makespan(s)", "response(s)", "slowdown", "Nrisk", "Nfail")
	for _, s := range []trustgrid.Scheduler{
		trustgrid.NewMinMin(trustgrid.SecurePolicy()),
		trustgrid.NewMinMin(trustgrid.FRiskyPolicy(0.5)),
		trustgrid.NewMinMin(trustgrid.RiskyPolicy()),
	} {
		m := simulate(s)
		fmt.Printf("%-22s %12.3e %12.3e %9.2f %7d %7d\n",
			s.Name(), m.Makespan, m.AvgResponse, m.Slowdown, m.NRisk, m.NFail)
	}

	// The STGA: train its history table on 500 jobs first (Table 1).
	cfg := trustgrid.STGAConfig()
	stgaSched := trustgrid.NewSTGA(cfg, trustgrid.NewRand(8))
	stgaSched.Train(w.Training, w.Sites, 40)
	m := simulate(stgaSched)
	fmt.Printf("%-22s %12.3e %12.3e %9.2f %7d %7d\n",
		stgaSched.Name(), m.Makespan, m.AvgResponse, m.Slowdown, m.NRisk, m.NFail)
	fmt.Printf("\nSTGA history hit rate: %.0f%%\n", 100*stgaSched.Table().HitRate())
}
