package experiments

import (
	"fmt"

	"trustgrid/internal/grid"
	"trustgrid/internal/rng"
	"trustgrid/internal/sched"
	"trustgrid/internal/stga"
)

// AblationResult is a generic rendered table for the design-choice
// ablations listed in DESIGN.md §3 (A1–A4).
type AblationResult struct {
	Name   string
	Header []string
	Rows   [][]string
	Notes  string
}

// Render formats the ablation as an ASCII table.
func (r *AblationResult) Render() string {
	out := fmt.Sprintf("Ablation %s\n%s", r.Name, table(r.Header, r.Rows))
	if r.Notes != "" {
		out += r.Notes + "\n"
	}
	return out
}

// Ablation names a runnable ablation experiment.
type Ablation struct {
	Name string
	Run  func(Setup) (*AblationResult, error)
}

// AllAblations lists every ablation the benchsuite runs.
var AllAblations = []Ablation{
	{Name: "lambda", Run: RunAblationLambda},
	{Name: "history", Run: RunAblationHistory},
	{Name: "similarity", Run: RunAblationSimilarity},
	{Name: "failmodel", Run: RunAblationFailModel},
}

// runSTGAConfigured runs one PSA simulation with a customized STGA and
// returns both the result and the scheduler (for table statistics).
func runSTGAConfigured(s Setup, n int, mutate func(*stga.Config)) (*sched.Result, *stga.Scheduler, error) {
	w, err := s.PSAWorkload(s.Seed, n)
	if err != nil {
		return nil, nil, err
	}
	cfg := stga.DefaultConfig()
	cfg.GA.PopulationSize = s.Population
	cfg.GA.Generations = s.Generations
	cfg.HistorySize = s.HistorySize
	cfg.SimilarityThreshold = s.SimThreshold
	cfg.Policy = s.Policy(grid.FRisky, s.F)
	cfg.Security = s.Model()
	if mutate != nil {
		mutate(&cfg)
	}
	r := rng.New(s.Seed ^ 0x5ca1ab1e)
	sc := stga.New(cfg, r.Derive("stga"))
	if !cfg.DisableHistory {
		sc.Train(w.Training, w.Sites, s.TrainBatchSize)
	}
	res, err := sched.Run(sched.RunConfig{
		Jobs: w.Jobs, Sites: w.Sites, Scheduler: sc,
		BatchInterval: w.Batch, Security: s.Model(),
		FailureTiming: s.FailTiming, Rand: r.Derive("engine"),
	})
	if err != nil {
		return nil, nil, err
	}
	return res, sc, nil
}

// RunAblationLambda (A1) sweeps the unstated failure-law coefficient λ
// and reports how the risky and 0.5-risky Min-Min and the STGA respond.
// Expected shape: larger λ punishes risk-taking (more failures), so the
// risky makespan grows with λ while the secure-ish modes are flat.
func RunAblationLambda(s Setup) (*AblationResult, error) {
	res := &AblationResult{
		Name:   "A1: failure-law λ sweep (PSA, N=1000)",
		Header: []string{"lambda", "algorithm", "makespan (s)", "Nfail", "Nrisk"},
		Notes:  "λ is unstated in the paper; 3.0 is the repo default (DESIGN.md §2.1).",
	}
	for _, lambda := range []float64{1, 2, 3, 5, 8} {
		sweep := s
		sweep.Lambda = lambda
		for _, a := range []Algorithm{MinMinRisky, MinMinFRisky, AlgSTGA} {
			agg, err := sweep.runAgg(func(seed uint64) (*Workload, error) {
				return sweep.PSAWorkload(seed, 1000)
			}, a)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, []string{
				f2(lambda), a.String(), e3(agg.Makespan.Mean()),
				i0(agg.NFail.Mean()), i0(agg.NRisk.Mean()),
			})
		}
	}
	return res, nil
}

// RunAblationHistory (A2) sweeps the history-table capacity and the
// similarity threshold, reporting makespan and lookup hit rate.
func RunAblationHistory(s Setup) (*AblationResult, error) {
	res := &AblationResult{
		Name:   "A2: history size / similarity threshold (PSA, N=1000)",
		Header: []string{"history", "threshold", "makespan (s)", "hit rate"},
	}
	for _, size := range []int{0, 25, 150, 600} {
		for _, thr := range []float64{0.5, 0.8, 0.95} {
			if size == 0 && thr != 0.8 {
				continue // cold start: threshold is irrelevant
			}
			r, sc, err := runSTGAConfigured(s, 1000, func(c *stga.Config) {
				c.DisableHistory = size == 0
				if size > 0 {
					c.HistorySize = size
				}
				c.SimilarityThreshold = thr
			})
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, []string{
				fmt.Sprint(size), f2(thr), e3(r.Summary.Makespan),
				f2(sc.Table().HitRate()),
			})
		}
	}
	return res, nil
}

// RunAblationSimilarity (A3) compares the literal Eq. 2 similarity with
// the normalized default (DESIGN.md §2.3).
func RunAblationSimilarity(s Setup) (*AblationResult, error) {
	res := &AblationResult{
		Name:   "A3: Eq. 2 literal vs normalized similarity (PSA, N=1000)",
		Header: []string{"similarity", "makespan (s)", "hit rate"},
		Notes: "The literal Eq. 2 is not length-normalized, so the 0.8 threshold\n" +
			"rarely fires and the STGA degrades toward the cold-start GA.",
	}
	for _, literal := range []bool{false, true} {
		name := "normalized"
		if literal {
			name = "Eq. 2 literal"
		}
		r, sc, err := runSTGAConfigured(s, 1000, func(c *stga.Config) {
			c.UseEq2Literal = literal
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			name, e3(r.Summary.Makespan), f2(sc.Table().HitRate()),
		})
	}
	return res, nil
}

// RunAblationFailModel (A4) compares failure-detection timings: uniform
// fraction of the attempt vs only at the very end.
func RunAblationFailModel(s Setup) (*AblationResult, error) {
	res := &AblationResult{
		Name:   "A4: failure-detection timing (PSA, N=1000)",
		Header: []string{"timing", "algorithm", "makespan (s)", "Nfail"},
		Notes:  "FailAtEnd wastes the full attempt, so risky modes suffer more.",
	}
	for _, timing := range []sched.FailureTiming{sched.FailUniform, sched.FailAtEnd} {
		name := "uniform-fraction"
		if timing == sched.FailAtEnd {
			name = "at-end"
		}
		sweep := s
		sweep.FailTiming = timing
		for _, a := range []Algorithm{MinMinRisky, AlgSTGA} {
			agg, err := sweep.runAgg(func(seed uint64) (*Workload, error) {
				return sweep.PSAWorkload(seed, 1000)
			}, a)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, []string{
				name, a.String(), e3(agg.Makespan.Mean()), i0(agg.NFail.Mean()),
			})
		}
	}
	return res, nil
}
