package experiments

import (
	"fmt"
	"time"
)

// OverheadRow reports one algorithm's scheduling cost.
type OverheadRow struct {
	Algorithm    Algorithm
	Total        time.Duration
	PerBatch     time.Duration
	PerJob       time.Duration
	Batches      int
	LargestBatch int
}

// OverheadResult quantifies the paper's central feasibility claim: that
// the STGA is "very fast and easy to implement" and suitable for online
// scheduling. It measures real wall-clock time spent inside
// Scheduler.Schedule over a full PSA run for every paper algorithm.
type OverheadResult struct {
	Jobs int
	Rows []OverheadRow
}

// RunOverhead measures per-batch scheduling cost on PSA (N = 1000).
func RunOverhead(s Setup) (*OverheadResult, error) {
	w, err := s.PSAWorkload(s.Seed, 1000)
	if err != nil {
		return nil, err
	}
	out := &OverheadResult{Jobs: len(w.Jobs)}
	for _, a := range PaperAlgorithms {
		res, err := s.runOnce(w, a, s.Seed^0xbeefcafe)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", a, err)
		}
		row := OverheadRow{
			Algorithm:    a,
			Total:        res.SchedulerTime,
			Batches:      res.Batches,
			LargestBatch: res.LargestBatch,
		}
		if res.Batches > 0 {
			row.PerBatch = res.SchedulerTime / time.Duration(res.Batches)
		}
		row.PerJob = res.SchedulerTime / time.Duration(len(w.Jobs))
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render formats the overhead comparison.
func (r *OverheadResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Algorithm.String(),
			row.Total.Round(time.Microsecond).String(),
			row.PerBatch.Round(time.Microsecond).String(),
			row.PerJob.Round(time.Microsecond).String(),
			fmt.Sprint(row.Batches),
			fmt.Sprint(row.LargestBatch),
		})
	}
	return fmt.Sprintf("Scheduling overhead on PSA (N=%d): wall-clock cost of Scheduler.Schedule\n%s"+
		"The STGA's per-batch cost must sit far below the scheduling period Δ for\n"+
		"online use (the paper's feasibility argument for the 100-iteration GA).\n",
		r.Jobs, table([]string{"algorithm", "total", "per batch", "per job", "batches", "largest batch"}, rows))
}
