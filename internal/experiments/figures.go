package experiments

import (
	"fmt"

	"trustgrid/internal/grid"
	"trustgrid/internal/metrics"
	"trustgrid/internal/rng"
	"trustgrid/internal/sched"
	"trustgrid/internal/stats"
	"trustgrid/internal/stga"
)

// Agg aggregates the paper's metrics over replicated runs of one
// (algorithm, workload) pair.
type Agg struct {
	Algorithm Algorithm
	Makespan  stats.Sample
	Response  stats.Sample
	Slowdown  stats.Sample
	NRisk     stats.Sample
	NFail     stats.Sample
	MeanUtil  stats.Sample
	IdleSites stats.Sample
	// SiteUtil[i] is the mean utilization of site i across reps.
	SiteUtil []float64
}

func (a *Agg) add(s metrics.Summary) {
	a.Makespan.Add(s.Makespan)
	a.Response.Add(s.AvgResponse)
	a.Slowdown.Add(s.Slowdown)
	a.NRisk.Add(float64(s.NRisk))
	a.NFail.Add(float64(s.NFail))
	a.MeanUtil.Add(s.MeanUtilization)
	a.IdleSites.Add(float64(s.IdleSites))
	if a.SiteUtil == nil {
		a.SiteUtil = make([]float64, len(s.SiteUtilization))
	}
	for i, u := range s.SiteUtilization {
		a.SiteUtil[i] += u
	}
}

func (a *Agg) finish(reps int) {
	for i := range a.SiteUtil {
		a.SiteUtil[i] /= float64(reps)
	}
}

// runAgg replicates one (workload family, algorithm) pair. The workload
// itself is regenerated per rep with a derived seed, so replication
// captures workload, platform and failure variability together.
func (s Setup) runAgg(mkWorkload func(seed uint64) (*Workload, error), a Algorithm) (*Agg, error) {
	agg := &Agg{Algorithm: a}
	for rep := 0; rep < s.reps(); rep++ {
		seed := s.Seed + uint64(rep)*1000003
		w, err := mkWorkload(seed)
		if err != nil {
			return nil, err
		}
		res, err := s.runOnce(w, a, seed^0x9e3779b97f4a7c15)
		if err != nil {
			return nil, fmt.Errorf("%s rep %d: %w", a, rep, err)
		}
		agg.add(res.Summary)
	}
	agg.finish(s.reps())
	return agg, nil
}

// ---------------------------------------------------------------------
// Fig. 7(a): makespan of the f-risky heuristics as f sweeps 0 → 1.
// ---------------------------------------------------------------------

// Fig7aResult holds the two makespan curves of Fig. 7(a).
type Fig7aResult struct {
	F         []float64
	MinMin    []float64
	Sufferage []float64
	// BestF are the argmin positions (the paper reports 0.5 and 0.6).
	BestFMinMin, BestFSufferage float64
}

// RunFig7a sweeps the f-risky threshold on the PSA workload (N = 1000).
func RunFig7a(s Setup) (*Fig7aResult, error) {
	res := &Fig7aResult{}
	for f := 0.0; f <= 1.0001; f += 0.1 {
		sweep := s
		sweep.F = f
		mkW := func(seed uint64) (*Workload, error) { return sweep.PSAWorkload(seed, 1000) }
		mm, err := sweep.runAgg(mkW, MinMinFRisky)
		if err != nil {
			return nil, err
		}
		sf, err := sweep.runAgg(mkW, SufferageFRisky)
		if err != nil {
			return nil, err
		}
		res.F = append(res.F, f)
		res.MinMin = append(res.MinMin, mm.Makespan.Mean())
		res.Sufferage = append(res.Sufferage, sf.Makespan.Mean())
	}
	res.BestFMinMin = res.F[stats.ArgMin(res.MinMin)]
	res.BestFSufferage = res.F[stats.ArgMin(res.Sufferage)]
	return res, nil
}

// ---------------------------------------------------------------------
// Fig. 7(b): makespan of the STGA as the iteration budget grows.
// ---------------------------------------------------------------------

// Fig7bResult holds the STGA makespan-vs-iterations curve.
type Fig7bResult struct {
	Iterations []int
	Makespan   []float64
}

// DefaultIterationSweep is the generation grid for Fig. 7(b).
var DefaultIterationSweep = []int{5, 10, 25, 40, 50, 75, 100, 150, 200}

// RunFig7b sweeps the STGA generation budget on the PSA workload
// (N = 1000), reproducing the convergence-by-50-iterations observation.
// Heuristic seeding is disabled: the figure measures how many
// generations the evolutionary search itself needs.
func RunFig7b(s Setup, iterations []int) (*Fig7bResult, error) {
	if len(iterations) == 0 {
		iterations = DefaultIterationSweep
	}
	res := &Fig7bResult{}
	for _, g := range iterations {
		sweep := s
		sweep.Generations = g
		sweep.NoHeuristicSeeds = true
		agg, err := sweep.runAgg(func(seed uint64) (*Workload, error) {
			return sweep.PSAWorkload(seed, 1000)
		}, AlgSTGA)
		if err != nil {
			return nil, err
		}
		res.Iterations = append(res.Iterations, g)
		res.Makespan = append(res.Makespan, agg.Makespan.Mean())
	}
	return res, nil
}

// ---------------------------------------------------------------------
// Fig. 5 (conceptual): warm-start vs cold-start GA convergence.
// ---------------------------------------------------------------------

// Fig5Result compares the per-generation best fitness of the STGA
// (history-seeded) against the conventional cold-start GA, averaged over
// all scheduling batches and normalized by each batch's final fitness
// (1.0 = converged value; higher = worse-than-final).
type Fig5Result struct {
	Generations []int
	STGA        []float64
	ColdGA      []float64
	// Gen0Gap is ColdGA[0]/STGA[0]: how much worse the cold start begins.
	Gen0Gap float64
	// HistoryHitRate is the STGA lookup hit rate over the run.
	HistoryHitRate float64
}

// RunFig5 measures convergence trajectories on the *recurrent* PSA
// workload (trace.RecurrentPSAConfig): the history table can only
// shortcut the search when job specifications actually recur, which is
// the paper's §3 premise for the space-time design. Heuristic seeding is
// off for both runs so the curves isolate the table's contribution.
func RunFig5(s Setup) (*Fig5Result, error) {
	w, err := s.RecurrentPSAWorkload(s.Seed, 1000)
	if err != nil {
		return nil, err
	}
	collect := func(cold bool) (curve []float64, hit float64, err error) {
		cfg := stga.DefaultConfig()
		cfg.GA.PopulationSize = s.Population
		cfg.GA.Generations = s.Generations
		cfg.HistorySize = s.HistorySize
		cfg.SimilarityThreshold = s.SimThreshold
		cfg.Policy = s.Policy(grid.FRisky, s.F)
		cfg.Security = s.Model()
		cfg.DisableHistory = cold
		// Isolate the history table's contribution: neither run may
		// start from current-batch heuristic schedules.
		cfg.SeedHeuristics = false
		cfg.RecordTrajectories = true
		r := rng.New(s.Seed ^ 0xabcdef)
		sc := stga.New(cfg, r.Derive("stga"))
		if !cold {
			sc.Train(w.Training, w.Sites, s.TrainBatchSize)
		}
		_, err = sched.Run(sched.RunConfig{
			Jobs: w.Jobs, Sites: w.Sites, Scheduler: sc,
			BatchInterval: w.Batch, Security: s.Model(),
			FailureTiming: s.FailTiming, Rand: r.Derive("engine"),
		})
		if err != nil {
			return nil, 0, err
		}
		// Average normalized trajectories across batches.
		curve = make([]float64, s.Generations+1)
		counts := make([]int, s.Generations+1)
		for _, tr := range sc.AllTrajectories {
			final := tr[len(tr)-1]
			if final <= 0 {
				continue
			}
			for g, v := range tr {
				if g < len(curve) {
					curve[g] += v / final
					counts[g]++
				}
			}
		}
		for g := range curve {
			if counts[g] > 0 {
				curve[g] /= float64(counts[g])
			}
		}
		return curve, sc.Table().HitRate(), nil
	}

	warm, hit, err := collect(false)
	if err != nil {
		return nil, err
	}
	cold, _, err := collect(true)
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{HistoryHitRate: hit}
	for g := 0; g <= s.Generations; g++ {
		res.Generations = append(res.Generations, g)
		res.STGA = append(res.STGA, warm[g])
		res.ColdGA = append(res.ColdGA, cold[g])
	}
	if warm[0] > 0 {
		res.Gen0Gap = cold[0] / warm[0]
	}
	return res, nil
}

// ---------------------------------------------------------------------
// Fig. 8 + Fig. 9 + Table 2: the NAS comparison of all seven algorithms.
// ---------------------------------------------------------------------

// NASResult bundles the aggregated metrics of every paper algorithm on
// the NAS trace workload; Figs. 8, 9 and Table 2 are all views of it.
type NASResult struct {
	Algorithms []*Agg
}

// ByAlgorithm returns the aggregate for a specific algorithm.
func (r *NASResult) ByAlgorithm(a Algorithm) *Agg {
	for _, agg := range r.Algorithms {
		if agg.Algorithm == a {
			return agg
		}
	}
	return nil
}

// RunNAS runs the full seven-algorithm NAS comparison.
func RunNAS(s Setup) (*NASResult, error) {
	res := &NASResult{}
	for _, a := range PaperAlgorithms {
		agg, err := s.runAgg(s.NASWorkload, a)
		if err != nil {
			return nil, err
		}
		res.Algorithms = append(res.Algorithms, agg)
	}
	return res, nil
}

// Table2Row is one row of the paper's Table 2.
type Table2Row struct {
	Algorithm Algorithm
	Alpha     float64 // makespan ratio vs STGA
	Beta      float64 // response-time ratio vs STGA
	Rank      int
}

// Table2 derives the α/β ratios and ranking from a NAS run.
func (r *NASResult) Table2() []Table2Row {
	ref := r.ByAlgorithm(AlgSTGA)
	if ref == nil {
		return nil
	}
	refMk, refRsp := ref.Makespan.Mean(), ref.Response.Mean()
	rows := make([]Table2Row, 0, len(r.Algorithms))
	for _, agg := range r.Algorithms {
		rows = append(rows, Table2Row{
			Algorithm: agg.Algorithm,
			Alpha:     agg.Makespan.Mean() / refMk,
			Beta:      agg.Response.Mean() / refRsp,
		})
	}
	// Rank holistically by α+β ascending (STGA = 1+1 is minimal when it
	// wins both metrics, matching the paper's ordering).
	order := make([]int, len(rows))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for k := i; k > 0; k-- {
			a, b := rows[order[k]], rows[order[k-1]]
			if a.Alpha+a.Beta < b.Alpha+b.Beta {
				order[k], order[k-1] = order[k-1], order[k]
			}
		}
	}
	rank := 0
	var prev float64 = -1
	for pos, idx := range order {
		score := rows[idx].Alpha + rows[idx].Beta
		if pos == 0 || score > prev+1e-3 {
			rank = pos + 1
		}
		rows[idx].Rank = rank
		prev = score
	}
	return rows
}

// ---------------------------------------------------------------------
// Fig. 10: PSA scaling in the number of jobs N.
// ---------------------------------------------------------------------

// Fig10Algorithms is the three-algorithm roster of the scaling study.
var Fig10Algorithms = []Algorithm{MinMinFRisky, SufferageFRisky, AlgSTGA}

// Fig10Result holds the scaling curves: Series[algorithm][i] corresponds
// to N = Sizes[i].
type Fig10Result struct {
	Sizes      []int
	Algorithms []Algorithm
	// Indexed [algo][size].
	Makespan [][]float64
	Response [][]float64
	Slowdown [][]float64
	NRisk    [][]float64
	NFail    [][]float64
}

// DefaultFig10Sizes is the paper's N sweep.
var DefaultFig10Sizes = []int{1000, 2000, 5000, 10000}

// RunFig10 runs the PSA scaling study.
func RunFig10(s Setup, sizes []int) (*Fig10Result, error) {
	if len(sizes) == 0 {
		sizes = DefaultFig10Sizes
	}
	res := &Fig10Result{Sizes: sizes, Algorithms: Fig10Algorithms}
	for range Fig10Algorithms {
		res.Makespan = append(res.Makespan, make([]float64, len(sizes)))
		res.Response = append(res.Response, make([]float64, len(sizes)))
		res.Slowdown = append(res.Slowdown, make([]float64, len(sizes)))
		res.NRisk = append(res.NRisk, make([]float64, len(sizes)))
		res.NFail = append(res.NFail, make([]float64, len(sizes)))
	}
	for si, n := range sizes {
		for ai, a := range Fig10Algorithms {
			agg, err := s.runAgg(func(seed uint64) (*Workload, error) {
				return s.PSAWorkload(seed, n)
			}, a)
			if err != nil {
				return nil, err
			}
			res.Makespan[ai][si] = agg.Makespan.Mean()
			res.Response[ai][si] = agg.Response.Mean()
			res.Slowdown[ai][si] = agg.Slowdown.Mean()
			res.NRisk[ai][si] = agg.NRisk.Mean()
			res.NFail[ai][si] = agg.NFail.Mean()
		}
	}
	return res, nil
}
