package experiments

import (
	"fmt"

	"trustgrid/internal/metrics"
	"trustgrid/internal/rng"
	"trustgrid/internal/sched"
	"trustgrid/internal/stats"
	"trustgrid/internal/stga"
)

// Agg aggregates the paper's metrics over replicated runs of one
// (algorithm, workload) pair.
type Agg struct {
	Algorithm Algorithm
	Makespan  stats.Sample
	Response  stats.Sample
	Slowdown  stats.Sample
	NRisk     stats.Sample
	NFail     stats.Sample
	MeanUtil  stats.Sample
	IdleSites stats.Sample
	// SiteUtil[i] is the mean utilization of site i across reps.
	SiteUtil []float64
}

func (a *Agg) add(s metrics.Summary) {
	a.Makespan.Add(s.Makespan)
	a.Response.Add(s.AvgResponse)
	a.Slowdown.Add(s.Slowdown)
	a.NRisk.Add(float64(s.NRisk))
	a.NFail.Add(float64(s.NFail))
	a.MeanUtil.Add(s.MeanUtilization)
	a.IdleSites.Add(float64(s.IdleSites))
	if a.SiteUtil == nil {
		a.SiteUtil = make([]float64, len(s.SiteUtilization))
	}
	for i, u := range s.SiteUtilization {
		a.SiteUtil[i] += u
	}
}

func (a *Agg) finish(reps int) {
	for i := range a.SiteUtil {
		a.SiteUtil[i] /= float64(reps)
	}
}

// runAgg replicates one (workload family, algorithm) pair. The workload
// itself is regenerated per rep with a derived seed, so replication
// captures workload, platform and failure variability together.
func (s Setup) runAgg(mkWorkload func(seed uint64) (*Workload, error), a Algorithm) (*Agg, error) {
	agg := &Agg{Algorithm: a}
	for rep := 0; rep < s.reps(); rep++ {
		seed := s.Seed + uint64(rep)*1000003
		w, err := mkWorkload(seed)
		if err != nil {
			return nil, err
		}
		res, err := s.runOnce(w, a, seed^0x9e3779b97f4a7c15)
		if err != nil {
			return nil, fmt.Errorf("%s rep %d: %w", a, rep, err)
		}
		agg.add(res.Summary)
	}
	agg.finish(s.reps())
	return agg, nil
}

// ---------------------------------------------------------------------
// Fig. 7(a): makespan of the f-risky heuristics as f sweeps 0 → 1.
// ---------------------------------------------------------------------

// Fig7aResult holds the two makespan curves of Fig. 7(a).
type Fig7aResult struct {
	F         []float64
	MinMin    []float64
	Sufferage []float64
	// BestF are the argmin positions (the paper reports 0.5 and 0.6).
	BestFMinMin, BestFSufferage float64
}

// RunFig7a sweeps the f-risky threshold on the PSA workload (N = 1000).
// The 11 thresholds × 2 heuristics form 22 independent points that fan
// out across Setup.Workers goroutines.
func RunFig7a(s Setup) (*Fig7aResult, error) {
	// Accumulate the grid exactly as the serial loop did so the float64
	// thresholds (which feed the admission policy) are bit-identical.
	var fs []float64
	for f := 0.0; f <= 1.0001; f += 0.1 {
		fs = append(fs, f)
	}
	algos := []Algorithm{MinMinFRisky, SufferageFRisky}
	pt := s.forPoint(len(fs) * len(algos))
	mk := make([][]float64, len(algos))
	for i := range mk {
		mk[i] = make([]float64, len(fs))
	}
	err := fanOut(s.workers(), len(fs)*len(algos), func(i int) error {
		fi, ai := i/len(algos), i%len(algos)
		sweep := pt
		sweep.F = fs[fi]
		agg, err := sweep.runAgg(func(seed uint64) (*Workload, error) {
			return sweep.PSAWorkload(seed, 1000)
		}, algos[ai])
		if err != nil {
			return err
		}
		mk[ai][fi] = agg.Makespan.Mean()
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig7aResult{F: fs, MinMin: mk[0], Sufferage: mk[1]}
	res.BestFMinMin = res.F[stats.ArgMin(res.MinMin)]
	res.BestFSufferage = res.F[stats.ArgMin(res.Sufferage)]
	return res, nil
}

// ---------------------------------------------------------------------
// Fig. 7(b): makespan of the STGA as the iteration budget grows.
// ---------------------------------------------------------------------

// Fig7bResult holds the STGA makespan-vs-iterations curve.
type Fig7bResult struct {
	Iterations []int
	Makespan   []float64
}

// DefaultIterationSweep is the generation grid for Fig. 7(b).
var DefaultIterationSweep = []int{5, 10, 25, 40, 50, 75, 100, 150, 200}

// RunFig7b sweeps the STGA generation budget on the PSA workload
// (N = 1000), reproducing the convergence-by-50-iterations observation.
// Heuristic seeding is disabled: the figure measures how many
// generations the evolutionary search itself needs.
func RunFig7b(s Setup, iterations []int) (*Fig7bResult, error) {
	if len(iterations) == 0 {
		iterations = DefaultIterationSweep
	}
	pt := s.forPoint(len(iterations))
	res := &Fig7bResult{
		Iterations: append([]int(nil), iterations...),
		Makespan:   make([]float64, len(iterations)),
	}
	err := fanOut(s.workers(), len(iterations), func(i int) error {
		sweep := pt
		sweep.Generations = iterations[i]
		sweep.NoHeuristicSeeds = true
		agg, err := sweep.runAgg(func(seed uint64) (*Workload, error) {
			return sweep.PSAWorkload(seed, 1000)
		}, AlgSTGA)
		if err != nil {
			return err
		}
		res.Makespan[i] = agg.Makespan.Mean()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// ---------------------------------------------------------------------
// Fig. 5 (conceptual): warm-start vs cold-start GA convergence.
// ---------------------------------------------------------------------

// Fig5Result compares the per-generation best fitness of the STGA
// (history-seeded) against the conventional cold-start GA, averaged over
// all scheduling batches and normalized by each batch's final fitness
// (1.0 = converged value; higher = worse-than-final).
type Fig5Result struct {
	Generations []int
	STGA        []float64
	ColdGA      []float64
	// Gen0Gap is ColdGA[0]/STGA[0]: how much worse the cold start begins.
	Gen0Gap float64
	// HistoryHitRate is the STGA lookup hit rate over the run.
	HistoryHitRate float64
}

// RunFig5 measures convergence trajectories on the *recurrent* PSA
// workload (trace.RecurrentPSAConfig): the history table can only
// shortcut the search when job specifications actually recur, which is
// the paper's §3 premise for the space-time design. Heuristic seeding is
// off for both runs so the curves isolate the table's contribution.
func RunFig5(s Setup) (*Fig5Result, error) {
	w, err := s.RecurrentPSAWorkload(s.Seed, 1000)
	if err != nil {
		return nil, err
	}
	pt := s.forPoint(2)
	collect := func(cold bool) (curve []float64, hit float64, err error) {
		cfg := pt.stgaConfig()
		cfg.DisableHistory = cold
		// Isolate the history table's contribution: neither run may
		// start from current-batch heuristic schedules.
		cfg.SeedHeuristics = false
		cfg.RecordTrajectories = true
		r := rng.New(s.Seed ^ 0xabcdef)
		sc := stga.New(cfg, r.Derive("stga"))
		if !cold {
			sc.Train(w.Training, w.Sites, s.TrainBatchSize)
		}
		_, err = sched.Run(sched.RunConfig{
			Jobs: w.Jobs, Sites: w.Sites, Scheduler: sc,
			BatchInterval: w.Batch, Security: s.Model(),
			FailureTiming: s.FailTiming, Rand: r.Derive("engine"),
		})
		if err != nil {
			return nil, 0, err
		}
		// Average normalized trajectories across batches.
		curve = make([]float64, s.Generations+1)
		counts := make([]int, s.Generations+1)
		for _, tr := range sc.AllTrajectories {
			final := tr[len(tr)-1]
			if final <= 0 {
				continue
			}
			for g, v := range tr {
				if g < len(curve) {
					curve[g] += v / final
					counts[g]++
				}
			}
		}
		for g := range curve {
			if counts[g] > 0 {
				curve[g] /= float64(counts[g])
			}
		}
		return curve, sc.Table().HitRate(), nil
	}

	// The warm and cold runs are independent (the engine clones the
	// shared workload's jobs), so they fan out as two points.
	var warm, cold []float64
	var hit float64
	err = fanOut(s.workers(), 2, func(i int) error {
		if i == 0 {
			var err error
			warm, hit, err = collect(false)
			return err
		}
		var err error
		cold, _, err = collect(true)
		return err
	})
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{HistoryHitRate: hit}
	for g := 0; g <= s.Generations; g++ {
		res.Generations = append(res.Generations, g)
		res.STGA = append(res.STGA, warm[g])
		res.ColdGA = append(res.ColdGA, cold[g])
	}
	if warm[0] > 0 {
		res.Gen0Gap = cold[0] / warm[0]
	}
	return res, nil
}

// ---------------------------------------------------------------------
// Fig. 8 + Fig. 9 + Table 2: the NAS comparison of all seven algorithms.
// ---------------------------------------------------------------------

// NASResult bundles the aggregated metrics of every paper algorithm on
// the NAS trace workload; Figs. 8, 9 and Table 2 are all views of it.
type NASResult struct {
	Algorithms []*Agg
}

// ByAlgorithm returns the aggregate for a specific algorithm.
func (r *NASResult) ByAlgorithm(a Algorithm) *Agg {
	for _, agg := range r.Algorithms {
		if agg.Algorithm == a {
			return agg
		}
	}
	return nil
}

// RunNAS runs the full seven-algorithm NAS comparison, one fan-out
// point per algorithm.
func RunNAS(s Setup) (*NASResult, error) {
	pt := s.forPoint(len(PaperAlgorithms))
	res := &NASResult{Algorithms: make([]*Agg, len(PaperAlgorithms))}
	err := fanOut(s.workers(), len(PaperAlgorithms), func(i int) error {
		agg, err := pt.runAgg(pt.NASWorkload, PaperAlgorithms[i])
		if err != nil {
			return err
		}
		res.Algorithms[i] = agg
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Table2Row is one row of the paper's Table 2.
type Table2Row struct {
	Algorithm Algorithm
	Alpha     float64 // makespan ratio vs STGA
	Beta      float64 // response-time ratio vs STGA
	Rank      int
}

// Table2 derives the α/β ratios and ranking from a NAS run.
func (r *NASResult) Table2() []Table2Row {
	ref := r.ByAlgorithm(AlgSTGA)
	if ref == nil {
		return nil
	}
	refMk, refRsp := ref.Makespan.Mean(), ref.Response.Mean()
	rows := make([]Table2Row, 0, len(r.Algorithms))
	for _, agg := range r.Algorithms {
		rows = append(rows, Table2Row{
			Algorithm: agg.Algorithm,
			Alpha:     agg.Makespan.Mean() / refMk,
			Beta:      agg.Response.Mean() / refRsp,
		})
	}
	// Rank holistically by α+β ascending (STGA = 1+1 is minimal when it
	// wins both metrics, matching the paper's ordering).
	order := make([]int, len(rows))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for k := i; k > 0; k-- {
			a, b := rows[order[k]], rows[order[k-1]]
			if a.Alpha+a.Beta < b.Alpha+b.Beta {
				order[k], order[k-1] = order[k-1], order[k]
			}
		}
	}
	rank := 0
	var prev float64 = -1
	for pos, idx := range order {
		score := rows[idx].Alpha + rows[idx].Beta
		if pos == 0 || score > prev+1e-3 {
			rank = pos + 1
		}
		rows[idx].Rank = rank
		prev = score
	}
	return rows
}

// ---------------------------------------------------------------------
// Fig. 10: PSA scaling in the number of jobs N.
// ---------------------------------------------------------------------

// Fig10Algorithms is the three-algorithm roster of the scaling study.
var Fig10Algorithms = []Algorithm{MinMinFRisky, SufferageFRisky, AlgSTGA}

// Fig10Result holds the scaling curves: Series[algorithm][i] corresponds
// to N = Sizes[i].
type Fig10Result struct {
	Sizes      []int
	Algorithms []Algorithm
	// Indexed [algo][size].
	Makespan [][]float64
	Response [][]float64
	Slowdown [][]float64
	NRisk    [][]float64
	NFail    [][]float64
}

// DefaultFig10Sizes is the paper's N sweep.
var DefaultFig10Sizes = []int{1000, 2000, 5000, 10000}

// RunFig10 runs the PSA scaling study.
func RunFig10(s Setup, sizes []int) (*Fig10Result, error) {
	if len(sizes) == 0 {
		sizes = DefaultFig10Sizes
	}
	res := &Fig10Result{Sizes: sizes, Algorithms: Fig10Algorithms}
	for range Fig10Algorithms {
		res.Makespan = append(res.Makespan, make([]float64, len(sizes)))
		res.Response = append(res.Response, make([]float64, len(sizes)))
		res.Slowdown = append(res.Slowdown, make([]float64, len(sizes)))
		res.NRisk = append(res.NRisk, make([]float64, len(sizes)))
		res.NFail = append(res.NFail, make([]float64, len(sizes)))
	}
	pt := s.forPoint(len(sizes) * len(Fig10Algorithms))
	err := fanOut(s.workers(), len(sizes)*len(Fig10Algorithms), func(i int) error {
		si, ai := i/len(Fig10Algorithms), i%len(Fig10Algorithms)
		n := sizes[si]
		agg, err := pt.runAgg(func(seed uint64) (*Workload, error) {
			return pt.PSAWorkload(seed, n)
		}, Fig10Algorithms[ai])
		if err != nil {
			return err
		}
		res.Makespan[ai][si] = agg.Makespan.Mean()
		res.Response[ai][si] = agg.Response.Mean()
		res.Slowdown[ai][si] = agg.Slowdown.Mean()
		res.NRisk[ai][si] = agg.NRisk.Mean()
		res.NFail[ai][si] = agg.NFail.Mean()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
