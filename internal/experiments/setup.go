package experiments

import (
	"fmt"

	"trustgrid/internal/grid"
	"trustgrid/internal/rng"
	"trustgrid/internal/sched"
	"trustgrid/internal/stga"
	"trustgrid/internal/trace"

	"trustgrid/internal/heuristics"
)

// Setup collects every knob an experiment depends on. DefaultSetup is the
// paper's Table 1; tests and benchmarks shrink the sizes.
type Setup struct {
	Seed uint64
	// Reps replicates each simulation with derived seeds and averages.
	Reps int

	// NAS workload (Table 1: 16000 jobs, 12 sites, 46-day squeezed trace).
	NASJobs  int
	NASSpan  float64 // seconds
	NASLoad  float64 // offered load vs capacity (DESIGN.md §4)
	NASBatch float64 // scheduling period Δ, seconds

	// PSA workload (Table 1: 20 sites, rate 0.008/s, 20 levels).
	PSABatch float64 // scheduling period Δ, seconds

	// GA / STGA (Table 1: population 200, 100 generations, table 150,
	// threshold 0.8, 500 training jobs).
	Population     int
	Generations    int
	HistorySize    int
	SimThreshold   float64
	TrainingJobs   int
	TrainBatchSize int

	// Security model.
	Lambda     float64
	F          float64 // f-risky threshold (paper: 0.5 after Fig. 7a)
	FailTiming sched.FailureTiming

	// NoHeuristicSeeds disables the STGA's current-batch Min-Min and
	// Sufferage seeding. The convergence experiments (Figs. 5 and 7b)
	// set it so the measured curves expose the GA's own evolution rather
	// than starting at heuristic quality.
	NoHeuristicSeeds bool

	// Dynamic-grid study (DESIGN.md §7): PSA jobs per run, the fraction
	// of sites whose true security level sits DeceptiveGap below their
	// declaration, and the churn regime (see RunChurnStudy).
	ChurnJobs     int
	DeceptiveFrac float64
	DeceptiveGap  float64

	// DAG study (DESIGN.md §14): layered dependent workload shape —
	// jobs per run, layer width (wider than the 20-site platform so
	// batch order matters), edge probability between adjacent layers,
	// and the deadline slack multiplier on each job's critical path.
	DAGJobs     int
	DAGWidth    int
	DAGEdgeProb float64
	DAGSlack    float64

	// Workers bounds how many independent sweep points the figure and
	// table runners execute concurrently (0 = runtime.GOMAXPROCS, 1 =
	// serial). Every point seeds its own rng streams from (Seed, point
	// index), so results are identical at any worker count.
	Workers int

	// GAWorkers is forwarded to ga.Config.Workers for every GA-backed
	// scheduler the setup builds (0 = runtime.GOMAXPROCS, 1 = serial).
	GAWorkers int

	// RNGVersion selects the GA draw contract (rng.ParseVersion): 0 or 1
	// is the original serial sequence every committed golden pins, 2 is
	// the batched DrawsV2 layout. The zero value marshals away
	// (omitempty), so fleet spec fingerprints and persisted WAL headers
	// from before the knob existed stay valid — and a non-zero version
	// lands in the fingerprint, which is what lets workers and snapshot
	// recovery refuse to mix draw contracts within one run.
	RNGVersion int `json:",omitempty"`
}

// DefaultSetup returns the paper's configuration.
func DefaultSetup() Setup {
	return Setup{
		Seed:           1,
		Reps:           1,
		NASJobs:        16000,
		NASSpan:        46 * 24 * 3600,
		NASLoad:        1.15,
		NASBatch:       3600,
		PSABatch:       5000,
		Population:     200,
		Generations:    100,
		HistorySize:    150,
		SimThreshold:   0.8,
		TrainingJobs:   500,
		TrainBatchSize: 40,
		Lambda:         grid.DefaultLambda,
		F:              0.5,
		ChurnJobs:      1000,
		DeceptiveFrac:  0.4,
		DeceptiveGap:   0.4,
		DAGJobs:        800,
		DAGWidth:       48,
		DAGEdgeProb:    0.3,
		DAGSlack:       2,
	}
}

// TestSetup returns a heavily scaled-down configuration for fast unit
// tests and benchmarks: hundreds of jobs, small GA.
func TestSetup() Setup {
	s := DefaultSetup()
	s.NASJobs = 400
	s.NASSpan = 2 * 24 * 3600
	s.Population = 40
	s.Generations = 25
	s.TrainingJobs = 100
	s.TrainBatchSize = 20
	s.ChurnJobs = 300
	s.DAGJobs = 240
	return s
}

// Model returns the Eq. 1 failure law with the setup's λ.
func (s Setup) Model() grid.SecurityModel { return grid.SecurityModel{Lambda: s.Lambda} }

// Policy builds an admission policy consistent with the setup's λ.
func (s Setup) Policy(mode grid.RiskMode, f float64) grid.Policy {
	return grid.Policy{Mode: mode, F: f, Model: s.Model()}
}

// Algorithm enumerates the seven paper algorithms plus the cold-start GA
// baseline used in the Fig. 5 comparison.
type Algorithm int

// The paper's algorithm roster (Fig. 8 order) plus ColdGA.
const (
	MinMinSecure Algorithm = iota
	MinMinFRisky
	MinMinRisky
	SufferageSecure
	SufferageFRisky
	SufferageRisky
	AlgSTGA
	AlgColdGA
	// AlgRankMinMin is the HEFT-style list scheduler for dependent
	// workloads (DESIGN.md §14); appended after the paper roster so the
	// enum values every recorded config pins stay stable.
	AlgRankMinMin
)

// PaperAlgorithms is the roster of Fig. 8 / Table 2.
var PaperAlgorithms = []Algorithm{
	MinMinSecure, MinMinFRisky, MinMinRisky,
	SufferageSecure, SufferageFRisky, SufferageRisky,
	AlgSTGA,
}

// String returns the paper's label for the algorithm.
func (a Algorithm) String() string {
	switch a {
	case MinMinSecure:
		return "Min-Min Secure"
	case MinMinFRisky:
		return "Min-Min f-Risky"
	case MinMinRisky:
		return "Min-Min Risky"
	case SufferageSecure:
		return "Sufferage Secure"
	case SufferageFRisky:
		return "Sufferage f-Risky"
	case SufferageRisky:
		return "Sufferage Risky"
	case AlgSTGA:
		return "STGA"
	case AlgColdGA:
		return "GA (cold start)"
	case AlgRankMinMin:
		return "Rank-Min-Min"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// stgaConfig translates the setup's GA/STGA knobs into an stga.Config;
// every runner that builds an STGA starts from it so a new knob is
// wired in exactly one place.
func (s Setup) stgaConfig() stga.Config {
	cfg := stga.DefaultConfig()
	cfg.GA.PopulationSize = s.Population
	cfg.GA.Generations = s.Generations
	cfg.GA.Workers = s.GAWorkers
	cfg.HistorySize = s.HistorySize
	cfg.SimilarityThreshold = s.SimThreshold
	cfg.Policy = s.Policy(grid.FRisky, s.F)
	cfg.Security = s.Model()
	cfg.SeedHeuristics = !s.NoHeuristicSeeds
	// Forward raw: ga.Config.Validate rejects unknown versions with a
	// proper error at Run time, where one can actually be returned.
	cfg.GA.RNG = rng.Version(s.RNGVersion)
	return cfg
}

// buildScheduler constructs the scheduler for one simulation run.
// trainJobs seed the STGA history table (nil disables training).
func (s Setup) buildScheduler(a Algorithm, r *rng.Stream,
	trainJobs []*grid.Job, sites []*grid.Site) sched.Scheduler {

	switch a {
	case MinMinSecure:
		return heuristics.NewMinMin(s.Policy(grid.Secure, 0))
	case MinMinFRisky:
		return heuristics.NewMinMin(s.Policy(grid.FRisky, s.F))
	case MinMinRisky:
		return heuristics.NewMinMin(s.Policy(grid.Risky, 0))
	case SufferageSecure:
		return heuristics.NewSufferage(s.Policy(grid.Secure, 0))
	case SufferageFRisky:
		return heuristics.NewSufferage(s.Policy(grid.FRisky, s.F))
	case SufferageRisky:
		return heuristics.NewSufferage(s.Policy(grid.Risky, 0))
	case AlgRankMinMin:
		// The STGA's operating point, so the DAG study compares the two
		// precedence-aware schedulers under one admission rule.
		return heuristics.NewRankMinMin(s.Policy(grid.FRisky, s.F))
	case AlgSTGA, AlgColdGA:
		cfg := s.stgaConfig()
		cfg.DisableHistory = a == AlgColdGA
		sc := stga.New(cfg, r.Derive("stga"))
		if trainJobs != nil {
			sc.Train(trainJobs, sites, s.TrainBatchSize)
		}
		return sc
	default:
		panic(fmt.Sprintf("experiments: unknown algorithm %d", int(a)))
	}
}

// Workload bundles a generated platform and job list plus the training
// set used to warm the STGA.
type Workload struct {
	Name     string
	Jobs     []*grid.Job
	Sites    []*grid.Site
	Training []*grid.Job
	Batch    float64 // scheduling period Δ
}

// NASWorkload generates the Table 1 NAS configuration (12 sites, 16000
// jobs by default) with a disjoint 500-job training prefix for the STGA.
func (s Setup) NASWorkload(seed uint64) (*Workload, error) {
	r := rng.New(seed)
	sites, err := grid.NASPlatform().Generate(r.Derive("sites"))
	if err != nil {
		return nil, err
	}
	cfg := trace.DefaultNASConfig()
	cfg.Jobs = s.NASJobs
	cfg.Span = s.NASSpan
	cfg.LoadFactor = s.NASLoad
	jobs, err := cfg.Generate(r.Derive("jobs"))
	if err != nil {
		return nil, err
	}
	trainCfg := cfg
	trainCfg.Jobs = s.TrainingJobs
	training, err := trainCfg.Generate(r.Derive("training"))
	if err != nil {
		return nil, err
	}
	return &Workload{Name: "NAS", Jobs: jobs, Sites: sites, Training: training, Batch: s.NASBatch}, nil
}

// PSAWorkload generates the Table 1 PSA configuration with n jobs.
func (s Setup) PSAWorkload(seed uint64, n int) (*Workload, error) {
	r := rng.New(seed)
	sites, err := grid.PSAPlatform().Generate(r.Derive("sites"))
	if err != nil {
		return nil, err
	}
	jobs, err := trace.DefaultPSAConfig(n).Generate(r.Derive("jobs"))
	if err != nil {
		return nil, err
	}
	training, err := trace.DefaultPSAConfig(s.TrainingJobs).Generate(r.Derive("training"))
	if err != nil {
		return nil, err
	}
	return &Workload{Name: "PSA", Jobs: jobs, Sites: sites, Training: training, Batch: s.PSABatch}, nil
}

// RecurrentPSAWorkload generates the temporally local PSA variant used
// by the Fig. 5 convergence experiment: a fixed campaign of job specs is
// resubmitted repeatedly, so the STGA's history lookups find genuinely
// transferable schedules. The training set replays the same campaign.
func (s Setup) RecurrentPSAWorkload(seed uint64, n int) (*Workload, error) {
	r := rng.New(seed)
	sites, err := grid.PSAPlatform().Generate(r.Derive("sites"))
	if err != nil {
		return nil, err
	}
	cfg := trace.DefaultRecurrentPSAConfig(n)
	jobs, err := cfg.Generate(r.Derive("jobs"))
	if err != nil {
		return nil, err
	}
	trainCfg := cfg
	trainCfg.Jobs = s.TrainingJobs
	// Same derivation label: the campaign specs must match the main
	// workload for the history to transfer, exactly as in the paper's
	// training procedure on "similar" jobs.
	training, err := trainCfg.Generate(r.Derive("jobs"))
	if err != nil {
		return nil, err
	}
	return &Workload{Name: "PSA-recurrent", Jobs: jobs, Sites: sites, Training: training, Batch: s.PSABatch}, nil
}

// runOnce simulates one (workload, algorithm) pair.
func (s Setup) runOnce(w *Workload, a Algorithm, seed uint64) (*sched.Result, error) {
	r := rng.New(seed)
	scheduler := s.buildScheduler(a, r.Derive("scheduler"), w.Training, w.Sites)
	return sched.Run(sched.RunConfig{
		Jobs:          w.Jobs,
		Sites:         w.Sites,
		Scheduler:     scheduler,
		BatchInterval: w.Batch,
		Security:      s.Model(),
		FailureTiming: s.FailTiming,
		Rand:          r.Derive("engine"),
	})
}

// reps returns the effective replication count.
func (s Setup) reps() int {
	if s.Reps <= 0 {
		return 1
	}
	return s.Reps
}
