package experiments

import (
	"fmt"
	"strings"

	"trustgrid/internal/fuzzy"
	"trustgrid/internal/grid"
	"trustgrid/internal/rng"
	"trustgrid/internal/sched"
	"trustgrid/internal/stats"
)

// The dynamic-grid study (DESIGN.md §7.4): the PSA workload run on a
// churning platform where a fraction of sites overstate their declared
// security level, comparing static trust (the paper's model: the
// scheduler believes declarations forever) against online reputation
// feedback (trust re-derived from observed outcomes). The axes the
// dynamic-scheduling literature cares about — resources joining,
// leaving and degrading mid-run, and trust earned rather than declared
// — are exactly what the closed-world figures cannot show.

// ChurnAlgorithms is the three-algorithm roster of the study. The
// heuristics run in Secure mode — the admission rule that takes the
// trust vector at face value, which is exactly where a wrong declaration
// hurts most and where feedback pays; the STGA keeps its paper
// operating point (f-risky at Setup.F).
var ChurnAlgorithms = []Algorithm{MinMinSecure, SufferageSecure, AlgSTGA}

// ChurnCell aggregates one (algorithm, trust mode) pair over reps.
type ChurnCell struct {
	Algorithm    Algorithm
	Feedback     bool // reputation feedback on?
	Makespan     stats.Sample
	Response     stats.Sample
	MeanUtil     stats.Sample
	NRisk        stats.Sample
	NFail        stats.Sample
	NInterrupted stats.Sample
}

// ChurnStudyResult holds both trust modes for every algorithm, plus the
// shape of the churn the runs endured.
type ChurnStudyResult struct {
	Algorithms []Algorithm
	// Static[i] and Feedback[i] correspond to Algorithms[i].
	Static, Feedback []*ChurnCell
	// ChurnEvents is the event count of the rep-0 churn trace.
	ChurnEvents int
	// DeceptiveSites is the number of overstating sites (rep 0).
	DeceptiveSites int
}

// churnDynamics builds the deterministic dynamic-grid input for one rep:
// the churn trace spans the workload's expected arrival span, and
// DeceptiveFrac of the sites truly run DeceptiveGap below declaration.
func (s Setup) churnDynamics(seed uint64, w *Workload, reputation bool) *sched.DynamicsConfig {
	r := rng.New(seed)
	horizon := float64(s.ChurnJobs) / 0.008 // PSA arrival span (Table 1 rate)
	churn, err := grid.DefaultChurnConfig(horizon).Generate(r.Derive("churn"), len(w.Sites))
	if err != nil {
		// DefaultChurnConfig is valid by construction.
		panic("experiments: churn generation failed: " + err.Error())
	}
	dyn := &sched.DynamicsConfig{
		Churn:      churn,
		TrueLevels: grid.DeceptiveLevels(w.Sites, s.DeceptiveFrac, s.DeceptiveGap, r.Derive("deceptive")),
	}
	if reputation {
		cfg := fuzzy.DefaultReputationConfig()
		dyn.Reputation = &cfg
	}
	return dyn
}

// runOnceDynamic is runOnce with the dynamic-grid extension attached.
func (s Setup) runOnceDynamic(w *Workload, a Algorithm, seed uint64, dyn *sched.DynamicsConfig) (*sched.Result, error) {
	r := rng.New(seed)
	scheduler := s.buildScheduler(a, r.Derive("scheduler"), w.Training, w.Sites)
	return sched.Run(sched.RunConfig{
		Jobs:          w.Jobs,
		Sites:         w.Sites,
		Scheduler:     scheduler,
		BatchInterval: w.Batch,
		Security:      s.Model(),
		FailureTiming: s.FailTiming,
		Rand:          r.Derive("engine"),
		Dynamics:      dyn,
	})
}

// RunChurnStudy runs the static-trust vs reputation-feedback comparison
// under churn for Min-Min, Sufferage and the STGA. Every (algorithm,
// mode) pair is an independent fan-out point; within a rep, both modes
// see the identical workload, churn trace and ground-truth security, so
// the measured difference is attributable to the feedback loop alone.
func RunChurnStudy(s Setup) (*ChurnStudyResult, error) {
	res := &ChurnStudyResult{
		Algorithms: ChurnAlgorithms,
		Static:     make([]*ChurnCell, len(ChurnAlgorithms)),
		Feedback:   make([]*ChurnCell, len(ChurnAlgorithms)),
	}
	pt := s.forPoint(2 * len(ChurnAlgorithms))
	err := fanOut(s.workers(), 2*len(ChurnAlgorithms), func(i int) error {
		ai, feedback := i/2, i%2 == 1
		cell := &ChurnCell{Algorithm: ChurnAlgorithms[ai], Feedback: feedback}
		for rep := 0; rep < pt.reps(); rep++ {
			seed := pt.Seed + uint64(rep)*1000003
			w, err := pt.PSAWorkload(seed, pt.ChurnJobs)
			if err != nil {
				return err
			}
			dyn := pt.churnDynamics(seed, w, feedback)
			r, err := pt.runOnceDynamic(w, cell.Algorithm, seed^0x9e3779b97f4a7c15, dyn)
			if err != nil {
				return fmt.Errorf("%s (feedback=%v) rep %d: %w", cell.Algorithm, feedback, rep, err)
			}
			cell.Makespan.Add(r.Summary.Makespan)
			cell.Response.Add(r.Summary.AvgResponse)
			cell.MeanUtil.Add(r.Summary.MeanUtilization)
			cell.NRisk.Add(float64(r.Summary.NRisk))
			cell.NFail.Add(float64(r.Summary.NFail))
			cell.NInterrupted.Add(float64(r.Summary.NInterrupted))
		}
		if feedback {
			res.Feedback[ai] = cell
		} else {
			res.Static[ai] = cell
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Describe the rep-0 churn the runs endured (identical across modes).
	w, err := s.PSAWorkload(s.Seed, s.ChurnJobs)
	if err != nil {
		return nil, err
	}
	dyn := s.churnDynamics(s.Seed, w, false)
	res.ChurnEvents = len(dyn.Churn)
	for i, l := range dyn.TrueLevels {
		if l != w.Sites[i].SecurityLevel {
			res.DeceptiveSites++
		}
	}
	return res, nil
}

// Render formats the study as the paper-style comparison table plus the
// headline feedback-vs-static deltas.
func (r *ChurnStudyResult) Render() string {
	rows := make([][]string, 0, 2*len(r.Algorithms))
	for i, a := range r.Algorithms {
		for _, cell := range []*ChurnCell{r.Static[i], r.Feedback[i]} {
			mode := "static"
			if cell.Feedback {
				mode = "feedback"
			}
			rows = append(rows, []string{
				a.String(), mode,
				e3(cell.Makespan.Mean()),
				e3(cell.Response.Mean()),
				f3(cell.MeanUtil.Mean()),
				i0(cell.NRisk.Mean()),
				i0(cell.NFail.Mean()),
				i0(cell.NInterrupted.Mean()),
			})
		}
	}
	t := table([]string{"algorithm", "trust", "makespan (s)", "avg response (s)",
		"mean util", "Nrisk", "Nfail", "Ninterrupted"}, rows)
	var b strings.Builder
	fmt.Fprintf(&b, "Dynamic grid: static trust vs reputation feedback under churn "+
		"(%d churn events, %d deceptive sites)\n%s", r.ChurnEvents, r.DeceptiveSites, t)
	for i, a := range r.Algorithms {
		st, fb := r.Static[i], r.Feedback[i]
		fmt.Fprintf(&b, "%s: feedback makespan %+.1f%%, Nfail %+.0f, response %+.1f%%\n",
			a,
			100*(fb.Makespan.Mean()-st.Makespan.Mean())/st.Makespan.Mean(),
			fb.NFail.Mean()-st.NFail.Mean(),
			100*(fb.Response.Mean()-st.Response.Mean())/st.Response.Mean())
	}
	return b.String()
}

// CSV formats the study as CSV.
func (r *ChurnStudyResult) CSV() string {
	rows := make([][]string, 0, 2*len(r.Algorithms))
	for i, a := range r.Algorithms {
		for _, cell := range []*ChurnCell{r.Static[i], r.Feedback[i]} {
			mode := "static"
			if cell.Feedback {
				mode = "feedback"
			}
			rows = append(rows, []string{
				a.String(), mode,
				e3(cell.Makespan.Mean()),
				e3(cell.Response.Mean()),
				f3(cell.MeanUtil.Mean()),
				i0(cell.NRisk.Mean()),
				i0(cell.NFail.Mean()),
				i0(cell.NInterrupted.Mean()),
			})
		}
	}
	return csvJoin([]string{"algorithm", "trust", "makespan_s", "avg_response_s",
		"mean_utilization", "nrisk", "nfail", "ninterrupted"}, rows)
}
