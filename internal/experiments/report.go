package experiments

import (
	"fmt"
	"strings"
)

// table renders rows as an aligned ASCII table.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// csvJoin renders rows as CSV (no quoting needed: numeric content).
func csvJoin(header []string, rows [][]string) string {
	var b strings.Builder
	b.WriteString(strings.Join(header, ","))
	b.WriteByte('\n')
	for _, row := range rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func e3(v float64) string { return fmt.Sprintf("%.3e", v) }
func i0(v float64) string { return fmt.Sprintf("%.0f", v) }

// Render formats the Fig. 7(a) sweep.
func (r *Fig7aResult) Render() string {
	rows := make([][]string, len(r.F))
	for i := range r.F {
		rows[i] = []string{f2(r.F[i]), e3(r.MinMin[i]), e3(r.Sufferage[i])}
	}
	t := table([]string{"f", "Min-Min f-Risky makespan (s)", "Sufferage f-Risky makespan (s)"}, rows)
	return fmt.Sprintf("Fig. 7(a): makespan vs risk threshold f (PSA, N=1000)\n%s\nargmin: Min-Min f=%.1f, Sufferage f=%.1f\n",
		t, r.BestFMinMin, r.BestFSufferage)
}

// CSV formats the Fig. 7(a) sweep as CSV.
func (r *Fig7aResult) CSV() string {
	rows := make([][]string, len(r.F))
	for i := range r.F {
		rows[i] = []string{f2(r.F[i]), e3(r.MinMin[i]), e3(r.Sufferage[i])}
	}
	return csvJoin([]string{"f", "minmin_makespan_s", "sufferage_makespan_s"}, rows)
}

// Render formats the Fig. 7(b) sweep.
func (r *Fig7bResult) Render() string {
	rows := make([][]string, len(r.Iterations))
	for i := range r.Iterations {
		rows[i] = []string{fmt.Sprint(r.Iterations[i]), e3(r.Makespan[i])}
	}
	return "Fig. 7(b): STGA makespan vs iteration budget (PSA, N=1000)\n" +
		table([]string{"iterations", "makespan (s)"}, rows)
}

// CSV formats the Fig. 7(b) sweep as CSV.
func (r *Fig7bResult) CSV() string {
	rows := make([][]string, len(r.Iterations))
	for i := range r.Iterations {
		rows[i] = []string{fmt.Sprint(r.Iterations[i]), e3(r.Makespan[i])}
	}
	return csvJoin([]string{"iterations", "makespan_s"}, rows)
}

// Render formats the Fig. 5 convergence comparison (sampled rows).
func (r *Fig5Result) Render() string {
	var rows [][]string
	for i, g := range r.Generations {
		if g%10 == 0 || i == len(r.Generations)-1 {
			rows = append(rows, []string{fmt.Sprint(g), f3(r.STGA[i]), f3(r.ColdGA[i])})
		}
	}
	t := table([]string{"generation", "STGA rel. fitness", "cold GA rel. fitness"}, rows)
	return fmt.Sprintf("Fig. 5: warm vs cold GA convergence (1.0 = converged)\n%s\n"+
		"generation-0 gap (cold/warm): %.3f; STGA history hit rate: %.2f\n",
		t, r.Gen0Gap, r.HistoryHitRate)
}

// Render formats the Fig. 8 bar groups.
func (r *NASResult) Render() string {
	rows := make([][]string, 0, len(r.Algorithms))
	for _, a := range r.Algorithms {
		rows = append(rows, []string{
			a.Algorithm.String(),
			e3(a.Makespan.Mean()),
			i0(a.NFail.Mean()),
			i0(a.NRisk.Mean()),
			f2(a.Slowdown.Mean()),
			e3(a.Response.Mean()),
			f3(a.MeanUtil.Mean()),
		})
	}
	return "Fig. 8: NAS trace results (a: makespan, b: Nfail/Nrisk, c: slowdown, d: response)\n" +
		table([]string{"algorithm", "makespan (s)", "Nfail", "Nrisk", "slowdown", "avg response (s)", "mean util"}, rows)
}

// CSV formats the NAS comparison as CSV.
func (r *NASResult) CSV() string {
	rows := make([][]string, 0, len(r.Algorithms))
	for _, a := range r.Algorithms {
		rows = append(rows, []string{
			a.Algorithm.String(), e3(a.Makespan.Mean()), i0(a.NFail.Mean()),
			i0(a.NRisk.Mean()), f3(a.Slowdown.Mean()), e3(a.Response.Mean()),
			f3(a.MeanUtil.Mean()),
		})
	}
	return csvJoin([]string{"algorithm", "makespan_s", "nfail", "nrisk",
		"slowdown", "avg_response_s", "mean_utilization"}, rows)
}

// RenderFig9 formats per-site utilizations (Fig. 9 a/b/c) as one table
// with a column per algorithm.
func (r *NASResult) RenderFig9() string {
	if len(r.Algorithms) == 0 || len(r.Algorithms[0].SiteUtil) == 0 {
		return "Fig. 9: no site data\n"
	}
	nSites := len(r.Algorithms[0].SiteUtil)
	header := []string{"site"}
	for _, a := range r.Algorithms {
		header = append(header, a.Algorithm.String())
	}
	rows := make([][]string, nSites)
	for site := 0; site < nSites; site++ {
		row := []string{fmt.Sprint(site + 1)}
		for _, a := range r.Algorithms {
			row = append(row, fmt.Sprintf("%.1f%%", 100*a.SiteUtil[site]))
		}
		rows[site] = row
	}
	return "Fig. 9: per-site utilization on the NAS trace\n" + table(header, rows)
}

// RenderTable2 formats the paper's Table 2.
func (r *NASResult) RenderTable2() string {
	rows2 := r.Table2()
	rows := make([][]string, 0, len(rows2))
	for _, row := range rows2 {
		rows = append(rows, []string{
			row.Algorithm.String(), f3(row.Alpha), f3(row.Beta), ordinal(row.Rank),
		})
	}
	return "Table 2: performance ratios vs STGA on NAS trace\n" +
		table([]string{"heuristic", "alpha (makespan)", "beta (response)", "rank"}, rows)
}

func ordinal(n int) string {
	switch n {
	case 1:
		return "1st"
	case 2:
		return "2nd"
	case 3:
		return "3rd"
	default:
		return fmt.Sprintf("%dth", n)
	}
}

// Render formats the Fig. 10 scaling study.
func (r *Fig10Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 10: PSA scaling with number of jobs N\n")
	sections := []struct {
		name string
		data [][]float64
		fmt  func(float64) string
	}{
		{"(a) makespan (s)", r.Makespan, e3},
		{"(b) Nfail", r.NFail, i0},
		{"(b) Nrisk", r.NRisk, i0},
		{"(c) slowdown ratio", r.Slowdown, f2},
		{"(d) avg response (s)", r.Response, e3},
	}
	for _, sec := range sections {
		header := []string{"N"}
		for _, a := range r.Algorithms {
			header = append(header, a.String())
		}
		rows := make([][]string, len(r.Sizes))
		for si, n := range r.Sizes {
			row := []string{fmt.Sprint(n)}
			for ai := range r.Algorithms {
				row = append(row, sec.fmt(sec.data[ai][si]))
			}
			rows[si] = row
		}
		b.WriteString(sec.name + "\n")
		b.WriteString(table(header, rows))
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV formats the Fig. 10 scaling study as CSV.
func (r *Fig10Result) CSV() string {
	header := []string{"n", "algorithm", "makespan_s", "nfail", "nrisk", "slowdown", "avg_response_s"}
	var rows [][]string
	for si, n := range r.Sizes {
		for ai, a := range r.Algorithms {
			rows = append(rows, []string{
				fmt.Sprint(n), a.String(), e3(r.Makespan[ai][si]), i0(r.NFail[ai][si]),
				i0(r.NRisk[ai][si]), f3(r.Slowdown[ai][si]), e3(r.Response[ai][si]),
			})
		}
	}
	return csvJoin(header, rows)
}
