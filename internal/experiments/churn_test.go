package experiments

import (
	"testing"
)

// TestChurnStudyFeedbackBeatsStatic is the acceptance gate of the
// dynamic-grid experiment: under churn with deceptive sites, reputation
// feedback must measurably beat static trust — fewer Eq. 1 failures for
// every algorithm, and a visible makespan gap overall.
func TestChurnStudyFeedbackBeatsStatic(t *testing.T) {
	s := TestSetup()
	s.Seed = 3
	res, err := RunChurnStudy(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.ChurnEvents == 0 {
		t.Fatal("churn trace is empty; the study is not exercising dynamics")
	}
	if res.DeceptiveSites == 0 {
		t.Fatal("no deceptive sites; the trust gap cannot open")
	}
	betterMakespan := 0
	for i, a := range res.Algorithms {
		st, fb := res.Static[i], res.Feedback[i]
		if st.NFail.Mean() == 0 {
			t.Errorf("%s: static trust saw no failures; deception is not biting", a)
		}
		if fb.NFail.Mean() >= st.NFail.Mean() {
			t.Errorf("%s: feedback Nfail %.0f >= static %.0f",
				a, fb.NFail.Mean(), st.NFail.Mean())
		}
		if st.NInterrupted.Mean() == 0 {
			t.Errorf("%s: churn interrupted no jobs; crashes are not landing", a)
		}
		if fb.Makespan.Mean() < st.Makespan.Mean() {
			betterMakespan++
		}
	}
	if betterMakespan == 0 {
		t.Error("feedback improved makespan for no algorithm")
	}
}

// TestChurnStudyDeterministic pins the study's reproducibility: two runs
// from the same seed agree exactly, a different seed does not.
func TestChurnStudyDeterministic(t *testing.T) {
	s := TestSetup()
	s.Seed = 3
	s.ChurnJobs = 150
	a, err := RunChurnStudy(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChurnStudy(s)
	if err != nil {
		t.Fatal(err)
	}
	if a.CSV() != b.CSV() {
		t.Fatalf("same seed, different results:\n%s\nvs\n%s", a.CSV(), b.CSV())
	}
	s.Seed = 4
	c, err := RunChurnStudy(s)
	if err != nil {
		t.Fatal(err)
	}
	if a.CSV() == c.CSV() {
		t.Fatal("different seeds produced identical study results")
	}
}

// TestChurnStudyWorkerInvariance: the fan-out must not change results.
func TestChurnStudyWorkerInvariance(t *testing.T) {
	s := TestSetup()
	s.Seed = 5
	s.ChurnJobs = 120
	s.Workers = 1
	serial, err := RunChurnStudy(s)
	if err != nil {
		t.Fatal(err)
	}
	s.Workers = 4
	parallel, err := RunChurnStudy(s)
	if err != nil {
		t.Fatal(err)
	}
	if serial.CSV() != parallel.CSV() {
		t.Fatal("worker count changed churn study results")
	}
}
