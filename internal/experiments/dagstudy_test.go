package experiments

import "testing"

// TestDAGStudyRankBeatsBaseline is the headline gate for the dependency
// subsystem: on the layered DAG workload, at least one rank-aware
// scheduler (Rank-Min-Min or the STGA) must finish the campaign sooner
// than precedence-oblivious Min-Min. The layer width exceeds the site
// count, so Min-Min's smallest-first order defers exactly the chain
// heads whose completions gate the next Δ-grid round.
func TestDAGStudyRankBeatsBaseline(t *testing.T) {
	s := TestSetup()
	s.Seed = 11
	r, err := RunDAGStudy(s)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r.Render())

	base := r.DAG[0]
	if base.Algorithm != MinMinFRisky {
		t.Fatalf("baseline cell is %s, want %s", base.Algorithm, MinMinFRisky)
	}
	best, bestName := base.Makespan.Mean(), base.Algorithm.String()
	for _, cell := range r.DAG[1:] {
		if m := cell.Makespan.Mean(); m < best {
			best, bestName = m, cell.Algorithm.String()
		}
	}
	if bestName == base.Algorithm.String() {
		t.Fatalf("no rank-aware scheduler beat %s on the DAG workload (baseline makespan %.0f s)",
			base.Algorithm, base.Makespan.Mean())
	}
	t.Logf("%s beats %s: %.0f s vs %.0f s", bestName, base.Algorithm, best, base.Makespan.Mean())

	// The edge-free transform of the same jobs must not be slower than
	// the DAG run for the baseline — precedence only removes freedom.
	if ind, dag := r.Independent[0].Makespan.Mean(), base.Makespan.Mean(); ind > dag*1.001 {
		t.Fatalf("independent baseline makespan %.0f s exceeds DAG makespan %.0f s", ind, dag)
	}
}
