package experiments

import (
	"errors"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestFanOutRunsEveryTask(t *testing.T) {
	for _, w := range []int{1, 3, 8} {
		got := make([]int, 20)
		err := fanOut(w, len(got), func(i int) error {
			got[i] = i + 1
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i+1 {
				t.Fatalf("w=%d: task %d not run", w, i)
			}
		}
	}
}

func TestFanOutReturnsLowestIndexedError(t *testing.T) {
	first := errors.New("first")
	later := errors.New("later")
	err := fanOut(4, 10, func(i int) error {
		switch i {
		case 2:
			return first
		case 7:
			return later
		default:
			return nil
		}
	})
	if err != first {
		t.Fatalf("got %v, want the lowest-indexed error", err)
	}
}

func TestFanOutSerialStopsAtError(t *testing.T) {
	var ran int32
	boom := errors.New("boom")
	err := fanOut(1, 10, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("got %v", err)
	}
	if ran != 4 {
		t.Fatalf("serial fan-out ran %d tasks after the error, want stop at 4", ran)
	}
}

func TestFanOutZeroTasks(t *testing.T) {
	if err := fanOut(4, 0, func(int) error { t.Fatal("task ran"); return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestFanOutDeterminism is the experiment-level replay contract: every
// figure runner must report identical numbers at any worker count.
func TestFanOutDeterminism(t *testing.T) {
	s := microSetup()
	s.NASJobs = 120
	s.TrainingJobs = 40

	serial, parallel := s, s
	serial.Workers = 1
	serial.GAWorkers = 1
	parallel.Workers = 4

	t.Run("fig7b", func(t *testing.T) {
		a, err := RunFig7b(serial, []int{2, 5, 8})
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunFig7b(parallel, []int{2, 5, 8})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("Fig. 7(b) diverged: serial %+v parallel %+v", a, b)
		}
	})
	t.Run("nas", func(t *testing.T) {
		a, err := RunNAS(serial)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunNAS(parallel)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatal("NAS comparison diverged between serial and fan-out runs")
		}
	})
	t.Run("fig10", func(t *testing.T) {
		a, err := RunFig10(serial, []int{80, 160})
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunFig10(parallel, []int{80, 160})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatal("Fig. 10 diverged between serial and fan-out runs")
		}
	})
}

func TestWorkersResolution(t *testing.T) {
	if w := (Setup{Workers: 1}).workers(); w != 1 {
		t.Fatalf("Workers=1 resolved to %d", w)
	}
	if w := (Setup{Workers: 5}).workers(); w != 5 {
		t.Fatalf("Workers=5 resolved to %d", w)
	}
	if w := (Setup{}).workers(); w < 1 {
		t.Fatalf("Workers=0 resolved to %d", w)
	}
}

func TestForPointSplitsCores(t *testing.T) {
	share := func(points int) int {
		w := runtime.GOMAXPROCS(0) / points
		if w < 1 {
			w = 1
		}
		return w
	}
	// Wide sweep: many concurrent points → each gets GOMAXPROCS/points
	// GA goroutines (serial once points ≥ cores).
	s := Setup{Workers: 8}
	if got := s.forPoint(100).GAWorkers; got != share(8) {
		t.Fatalf("auto GAWorkers under 8-way fan-out resolved to %d, want %d", got, share(8))
	}
	// Narrow sweep (Fig. 5): two points split the machine.
	if got := s.forPoint(2).GAWorkers; got != share(2) {
		t.Fatalf("auto GAWorkers under 2-point fan-out resolved to %d, want %d", got, share(2))
	}
	// Explicit GAWorkers is honoured unchanged.
	s = Setup{Workers: 4, GAWorkers: 3}
	if got := s.forPoint(100).GAWorkers; got != 3 {
		t.Fatalf("explicit GAWorkers overridden to %d", got)
	}
	// Serial sweep leaves the GA on auto (full machine).
	s = Setup{Workers: 1}
	if got := s.forPoint(10).GAWorkers; got != 0 {
		t.Fatalf("serial sweep should leave GAWorkers on auto, got %d", got)
	}
}
