package experiments

import (
	"fmt"

	"trustgrid/internal/ga"
	"trustgrid/internal/grid"
	"trustgrid/internal/heuristics"
	"trustgrid/internal/rng"
	"trustgrid/internal/sched"
	"trustgrid/internal/stga"
)

func init() {
	AllAblations = append(AllAblations,
		Ablation{Name: "operators", Run: RunAblationOperators},
		Ablation{Name: "baselines", Run: RunAblationBaselines},
	)
}

// RunAblationOperators (A6) swaps the GA's selection and crossover
// operators and reports the full-simulation makespan, validating that
// the paper's roulette + single-point choice is competitive.
func RunAblationOperators(s Setup) (*AblationResult, error) {
	res := &AblationResult{
		Name:   "A6: GA selection/crossover operators (PSA, N=1000)",
		Header: []string{"selection", "crossover", "makespan (s)", "response (s)"},
	}
	combos := []struct {
		sel ga.SelectionMethod
		cx  ga.CrossoverMethod
	}{
		{ga.RouletteSelection, ga.SinglePointCrossover}, // the paper's choice
		{ga.RouletteSelection, ga.UniformCrossover},
		{ga.TournamentSelection, ga.SinglePointCrossover},
		{ga.TournamentSelection, ga.TwoPointCrossover},
		{ga.RankSelection, ga.SinglePointCrossover},
	}
	for _, combo := range combos {
		r, _, err := runSTGAConfigured(s, 1000, func(c *stga.Config) {
			c.GA.Selection = combo.sel
			c.GA.Crossover = combo.cx
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			combo.sel.String(), combo.cx.String(),
			e3(r.Summary.Makespan), e3(r.Summary.AvgResponse),
		})
	}
	return res, nil
}

// RunAblationBaselines (A7) positions the paper's roster against the
// wider Braun et al. heuristic family (Max-Min, KPB, MCT, MET, OLB,
// Random) under the 0.5-risky policy on the PSA workload.
func RunAblationBaselines(s Setup) (*AblationResult, error) {
	res := &AblationResult{
		Name:   "A7: extended heuristic baselines, 0.5-risky (PSA, N=1000)",
		Header: []string{"heuristic", "makespan (s)", "response (s)", "slowdown", "Nfail"},
	}
	pol := s.Policy(grid.FRisky, s.F)
	builders := []func(r *rng.Stream) sched.Scheduler{
		func(*rng.Stream) sched.Scheduler { return heuristics.NewMinMin(pol) },
		func(*rng.Stream) sched.Scheduler { return heuristics.NewMaxMin(pol) },
		func(*rng.Stream) sched.Scheduler { return heuristics.NewSufferage(pol) },
		func(*rng.Stream) sched.Scheduler { return heuristics.NewKPB(pol, 20) },
		func(*rng.Stream) sched.Scheduler { return heuristics.NewMCT(pol) },
		func(*rng.Stream) sched.Scheduler { return heuristics.NewMET(pol) },
		func(*rng.Stream) sched.Scheduler { return heuristics.NewOLB(pol) },
		func(r *rng.Stream) sched.Scheduler { return heuristics.NewRandom(pol, r.Derive("sched")) },
	}
	w, err := s.PSAWorkload(s.Seed, 1000)
	if err != nil {
		return nil, err
	}
	for _, build := range builders {
		r := rng.New(s.Seed ^ 0x0ddba11)
		scheduler := build(r)
		run, err := sched.Run(sched.RunConfig{
			Jobs: w.Jobs, Sites: w.Sites, Scheduler: scheduler,
			BatchInterval: w.Batch, Security: s.Model(),
			FailureTiming: s.FailTiming, Rand: r.Derive("engine"),
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", scheduler.Name(), err)
		}
		sum := run.Summary
		res.Rows = append(res.Rows, []string{
			scheduler.Name(), e3(sum.Makespan), e3(sum.AvgResponse),
			f2(sum.Slowdown), fmt.Sprint(sum.NFail),
		})
	}
	return res, nil
}
