package experiments

import (
	"fmt"

	"trustgrid/internal/cluster"
	"trustgrid/internal/rng"
	"trustgrid/internal/trace"
)

// ClusterExtResult reports the A5 substrate-validation experiment: the
// synthetic NAS trace replayed on a space-shared 128-node machine (the
// source iPSC/860) under FCFS and EASY backfilling, next to the
// aggregate-speed abstraction the paper (and our main simulator) uses.
type ClusterExtResult struct {
	Jobs          int
	FCFS, EASY    cluster.Metrics
	AggregateSpan float64 // lower bound: total work / machine speed
}

// RunClusterExtension generates the NAS trace and replays it through the
// space-shared model.
func RunClusterExtension(s Setup) (*ClusterExtResult, error) {
	cfg := trace.DefaultNASConfig()
	cfg.Jobs = s.NASJobs
	cfg.Span = s.NASSpan
	cfg.LoadFactor = s.NASLoad
	jobs, err := cfg.Generate(rng.New(s.Seed).Derive("cluster-ext"))
	if err != nil {
		return nil, err
	}
	const nodes = 128
	cjobs := cluster.FromTrace(jobs, nodes)

	fcfs, err := cluster.SimulateFCFS(nodes, cjobs)
	if err != nil {
		return nil, err
	}
	easy, err := cluster.SimulateEASY(nodes, cjobs)
	if err != nil {
		return nil, err
	}
	var totalWork float64
	for _, j := range jobs {
		totalWork += j.Workload
	}
	return &ClusterExtResult{
		Jobs:          len(jobs),
		FCFS:          cluster.Summarize(nodes, cjobs, fcfs),
		EASY:          cluster.Summarize(nodes, cjobs, easy),
		AggregateSpan: totalWork / nodes,
	}, nil
}

// Render formats the comparison.
func (r *ClusterExtResult) Render() string {
	rows := [][]string{
		{"FCFS", e3(r.FCFS.Makespan), e3(r.FCFS.AvgWait), f3(r.FCFS.Utilization)},
		{"EASY backfill", e3(r.EASY.Makespan), e3(r.EASY.AvgWait), f3(r.EASY.Utilization)},
	}
	return fmt.Sprintf(
		"A5: space-shared replay of the synthetic NAS trace (128-node machine, %d jobs)\n%s"+
			"aggregate-speed lower bound on busy time: %.3e s\n",
		r.Jobs, table([]string{"discipline", "makespan (s)", "avg wait (s)", "utilization"}, rows),
		r.AggregateSpan)
}
