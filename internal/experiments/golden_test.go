package experiments

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The golden-figure regression suite: canonical benchsuite outputs at a
// small fixed scale, committed under testdata/golden/ and compared
// byte-for-byte. A refactor that changes any paper number — a reordered
// rng draw, a float reassociation, an altered tie-break — fails here
// before it silently rewrites the figures. Regenerate intentionally
// with:
//
//	go test ./internal/experiments -run TestGolden -update
var updateGolden = flag.Bool("update", false, "rewrite the golden experiment outputs under testdata/golden/")

// goldenRNGVersion selects the draw contract the suite pins. The
// default (v1) compares against the original goldens under
// testdata/golden/; -rng-version=2 switches every run to the batched
// DrawsV2 layout and compares against testdata/golden/v2/, so each
// contract has its own frozen figures and neither can silently drift
// into the other. Regenerate the v2 set with:
//
//	go test ./internal/experiments -run TestGolden -update -rng-version=2
var goldenRNGVersion = flag.Int("rng-version", 1, "draw contract for the golden suite: 1 = original serial sequence, 2 = batched DrawsV2 (goldens under testdata/golden/v2/)")

// goldenSetup pins the scale and seed of every golden run. Workers is
// left on auto: the fan-out layer is result-invariant, and the suite
// doubles as a regression test of that claim.
func goldenSetup() Setup {
	s := TestSetup()
	s.Seed = 11
	s.RNGVersion = *goldenRNGVersion
	return s
}

// goldenPath maps a figure name to its on-disk golden file for the
// selected draw contract. v1 keeps the historical flat layout.
func goldenPath(name string) string {
	if *goldenRNGVersion == 1 {
		return filepath.Join("testdata", "golden", name)
	}
	return filepath.Join("testdata", "golden", fmt.Sprintf("v%d", *goldenRNGVersion), name)
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	if got == "" {
		t.Fatal("experiment produced empty output")
	}
	path := goldenPath(name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (regenerate with -update): %v", path, err)
	}
	if got != string(want) {
		t.Fatalf("%s drifted from its golden output.\nIf the change is intentional, rerun with -update and review the diff.\n%s",
			name, firstDiff(string(want), got))
	}
}

// firstDiff renders the first differing line for a readable failure.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("first difference at line %d:\n  golden: %s\n  got:    %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line counts differ: golden %d vs got %d", len(wl), len(gl))
}

func TestGoldenFig7a(t *testing.T) {
	r, err := RunFig7a(goldenSetup())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig7a.csv", r.CSV())
}

func TestGoldenFig10(t *testing.T) {
	r, err := RunFig10(goldenSetup(), []int{250, 500})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig10.csv", r.CSV())
}

func TestGoldenChurn(t *testing.T) {
	r, err := RunChurnStudy(goldenSetup())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "churn.csv", r.CSV())
}

func TestGoldenDAGStudy(t *testing.T) {
	r, err := RunDAGStudy(goldenSetup())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "dagstudy.csv", r.CSV())
}

func TestGoldenFig7b(t *testing.T) {
	r, err := RunFig7b(goldenSetup(), []int{5, 15, 30})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig7b.csv", r.CSV())
}
