// Package experiments reproduces every table and figure of the paper's
// evaluation (§4): Fig. 7(a) f-sweep, Fig. 7(b) STGA iteration sweep,
// Fig. 8 NAS metric comparison, Fig. 9 site utilization, Table 2
// performance ratios, Fig. 10 PSA scaling — plus the Fig. 5 warm-vs-cold
// GA convergence comparison and the ablations listed in DESIGN.md §3.
//
// DESIGN.md §1.1 inventory row: every figure/table runner (Figs. 5, 7-10, Table 2), ablations A1-A7, overhead study, and the experiment fan-out (§5.3).
package experiments
