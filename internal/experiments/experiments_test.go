package experiments

import (
	"strings"
	"testing"

	"trustgrid/internal/grid"
)

// microSetup is even smaller than TestSetup: integration tests must stay
// inside a second or two.
func microSetup() Setup {
	s := TestSetup()
	s.NASJobs = 200
	s.NASSpan = 1 * 24 * 3600
	s.Population = 24
	s.Generations = 12
	s.TrainingJobs = 60
	s.TrainBatchSize = 15
	return s
}

func TestNASWorkloadShape(t *testing.T) {
	s := microSetup()
	w, err := s.NASWorkload(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Jobs) != s.NASJobs || len(w.Sites) != 12 {
		t.Fatalf("NAS workload: %d jobs, %d sites", len(w.Jobs), len(w.Sites))
	}
	if len(w.Training) != s.TrainingJobs {
		t.Fatalf("training jobs %d, want %d", len(w.Training), s.TrainingJobs)
	}
}

func TestPSAWorkloadShape(t *testing.T) {
	s := microSetup()
	w, err := s.PSAWorkload(7, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Jobs) != 300 || len(w.Sites) != 20 {
		t.Fatalf("PSA workload: %d jobs, %d sites", len(w.Jobs), len(w.Sites))
	}
}

func TestRunOnceAllAlgorithms(t *testing.T) {
	s := microSetup()
	w, err := s.NASWorkload(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range append(append([]Algorithm{}, PaperAlgorithms...), AlgColdGA) {
		res, err := s.runOnce(w, a, 99)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if res.Summary.Jobs != len(w.Jobs) {
			t.Fatalf("%s completed %d/%d jobs", a, res.Summary.Jobs, len(w.Jobs))
		}
		if res.Summary.Slowdown < 1 {
			t.Fatalf("%s slowdown %v < 1", a, res.Summary.Slowdown)
		}
	}
}

func TestSecureModesNeverFail(t *testing.T) {
	s := microSetup()
	w, err := s.NASWorkload(5)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []Algorithm{MinMinSecure, SufferageSecure} {
		res, err := s.runOnce(w, a, 11)
		if err != nil {
			t.Fatal(err)
		}
		if res.Summary.NFail != 0 || res.Summary.NRisk != 0 {
			t.Fatalf("%s: NFail=%d NRisk=%d, want 0/0", a, res.Summary.NFail, res.Summary.NRisk)
		}
	}
}

func TestRiskOrderingAcrossModes(t *testing.T) {
	// NRisk(secure) = 0 <= NRisk(f-risky) <= NRisk(risky) must hold for
	// the same workload.
	s := microSetup()
	w, err := s.NASWorkload(13)
	if err != nil {
		t.Fatal(err)
	}
	var nRisk [3]int
	for i, a := range []Algorithm{MinMinSecure, MinMinFRisky, MinMinRisky} {
		res, err := s.runOnce(w, a, 17)
		if err != nil {
			t.Fatal(err)
		}
		nRisk[i] = res.Summary.NRisk
	}
	if !(nRisk[0] == 0 && nRisk[0] <= nRisk[1] && nRisk[1] <= nRisk[2]) {
		t.Fatalf("risk ordering violated: secure=%d f-risky=%d risky=%d",
			nRisk[0], nRisk[1], nRisk[2])
	}
}

func TestFig7aSmall(t *testing.T) {
	s := microSetup()
	// Only three f points to keep the test quick; the CLI runs the full
	// sweep. Reuse RunFig7a by monkey-scaling: direct call but with the
	// micro PSA size is not exposed, so call the pieces.
	for _, f := range []float64{0, 0.5, 1} {
		sweep := s
		sweep.F = f
		agg, err := sweep.runAgg(func(seed uint64) (*Workload, error) {
			return sweep.PSAWorkload(seed, 150)
		}, MinMinFRisky)
		if err != nil {
			t.Fatal(err)
		}
		if agg.Makespan.Mean() <= 0 {
			t.Fatalf("f=%v produced non-positive makespan", f)
		}
		if f == 0 && agg.NFail.Mean() != 0 {
			t.Fatalf("f=0 must be secure, NFail=%v", agg.NFail.Mean())
		}
	}
}

func TestFig7bSmall(t *testing.T) {
	s := microSetup()
	res, err := RunFig7b(s, []int{2, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Makespan) != 2 {
		t.Fatalf("expected 2 points, got %d", len(res.Makespan))
	}
	if !strings.Contains(res.Render(), "Fig. 7(b)") {
		t.Fatal("render missing title")
	}
	if res.CSV() == "" {
		t.Fatal("CSV empty")
	}
}

func TestFig5Small(t *testing.T) {
	s := microSetup()
	res, err := RunFig5(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.STGA) != s.Generations+1 || len(res.ColdGA) != s.Generations+1 {
		t.Fatalf("curve lengths %d/%d, want %d", len(res.STGA), len(res.ColdGA), s.Generations+1)
	}
	// Both normalized curves end at 1.0 by construction.
	last := len(res.STGA) - 1
	if res.STGA[last] < 0.99 || res.STGA[last] > 1.01 {
		t.Fatalf("warm curve should end at ~1, got %v", res.STGA[last])
	}
	// The defining Fig. 5 property: warm start begins no worse than cold.
	if res.STGA[0] > res.ColdGA[0]*1.05 {
		t.Fatalf("STGA gen-0 (%v) should not start worse than cold GA (%v)",
			res.STGA[0], res.ColdGA[0])
	}
	if !strings.Contains(res.Render(), "Fig. 5") {
		t.Fatal("render missing title")
	}
}

func TestNASResultViews(t *testing.T) {
	s := microSetup()
	s.NASJobs = 150
	res, err := RunNAS(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Algorithms) != 7 {
		t.Fatalf("expected 7 algorithms, got %d", len(res.Algorithms))
	}
	if res.ByAlgorithm(AlgSTGA) == nil {
		t.Fatal("STGA aggregate missing")
	}
	rows := res.Table2()
	if len(rows) != 7 {
		t.Fatalf("Table 2 rows %d", len(rows))
	}
	var stgaRow *Table2Row
	for i := range rows {
		if rows[i].Algorithm == AlgSTGA {
			stgaRow = &rows[i]
		}
		if rows[i].Alpha <= 0 || rows[i].Beta <= 0 {
			t.Fatalf("non-positive ratio in %+v", rows[i])
		}
	}
	if stgaRow == nil {
		t.Fatal("STGA missing from Table 2")
	}
	if stgaRow.Alpha != 1 || stgaRow.Beta != 1 {
		t.Fatalf("STGA must be the reference: α=%v β=%v", stgaRow.Alpha, stgaRow.Beta)
	}
	for _, render := range []string{res.Render(), res.RenderFig9(), res.RenderTable2()} {
		if render == "" {
			t.Fatal("empty render")
		}
	}
	if !strings.Contains(res.CSV(), "algorithm") {
		t.Fatal("CSV missing header")
	}
}

func TestFig10Small(t *testing.T) {
	s := microSetup()
	res, err := RunFig10(s, []int{100, 200})
	if err != nil {
		t.Fatal(err)
	}
	// Monotone growth in N for every algorithm's makespan.
	for ai := range res.Algorithms {
		if res.Makespan[ai][1] <= res.Makespan[ai][0] {
			t.Fatalf("%s makespan not increasing with N: %v",
				res.Algorithms[ai], res.Makespan[ai])
		}
	}
	if !strings.Contains(res.Render(), "Fig. 10") || res.CSV() == "" {
		t.Fatal("bad render/CSV")
	}
}

func TestAblationsSmall(t *testing.T) {
	s := microSetup()
	s.Generations = 6
	s.Population = 16
	// Shrink further: ablations iterate many configurations.
	for _, ab := range AllAblations {
		ab := ab
		t.Run(ab.Name, func(t *testing.T) {
			// Substitute tiny PSA sizes by reducing Setup knobs only;
			// the ablation functions use N=1000 internally, which stays
			// tractable with the micro GA settings.
			if testing.Short() {
				t.Skip("ablation sweep skipped in -short")
			}
			res, err := ab.Run(s)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) == 0 {
				t.Fatal("ablation produced no rows")
			}
			if !strings.Contains(res.Render(), "Ablation") {
				t.Fatal("render missing title")
			}
		})
	}
}

func TestAlgorithmStrings(t *testing.T) {
	want := map[Algorithm]string{
		MinMinSecure:    "Min-Min Secure",
		MinMinFRisky:    "Min-Min f-Risky",
		MinMinRisky:     "Min-Min Risky",
		SufferageSecure: "Sufferage Secure",
		SufferageFRisky: "Sufferage f-Risky",
		SufferageRisky:  "Sufferage Risky",
		AlgSTGA:         "STGA",
		AlgColdGA:       "GA (cold start)",
	}
	for a, s := range want {
		if a.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(a), a.String(), s)
		}
	}
}

func TestSetupPolicyUsesLambda(t *testing.T) {
	s := DefaultSetup()
	s.Lambda = 10
	p := s.Policy(grid.FRisky, 0.5)
	if p.Model.Lambda != 10 {
		t.Fatal("policy must inherit the setup's λ")
	}
}

func TestOverheadSmall(t *testing.T) {
	s := microSetup()
	res, err := RunOverhead(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("overhead rows %d, want 7", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Batches <= 0 || row.LargestBatch <= 0 {
			t.Fatalf("%s: missing batch statistics: %+v", row.Algorithm, row)
		}
		if row.Total < 0 || row.PerBatch < 0 {
			t.Fatalf("%s: negative durations", row.Algorithm)
		}
	}
	if !strings.Contains(res.Render(), "Scheduling overhead") {
		t.Fatal("render missing title")
	}
}

func TestClusterExtensionSmall(t *testing.T) {
	s := microSetup()
	res, err := RunClusterExtension(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs != s.NASJobs {
		t.Fatalf("replayed %d jobs, want %d", res.Jobs, s.NASJobs)
	}
	// EASY must not lose to FCFS on utilization for this workload family.
	if res.EASY.Utilization < res.FCFS.Utilization*0.95 {
		t.Fatalf("EASY utilization %v trails FCFS %v", res.EASY.Utilization, res.FCFS.Utilization)
	}
	// The space-shared makespan cannot beat the divisible-load bound.
	if res.EASY.Makespan < res.AggregateSpan*0.999 {
		t.Fatalf("EASY makespan %v below the work lower bound %v", res.EASY.Makespan, res.AggregateSpan)
	}
	if !strings.Contains(res.Render(), "A5") {
		t.Fatal("render missing title")
	}
}
