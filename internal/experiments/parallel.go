// Experiment fan-out.
//
// Every figure and table in the paper is a sweep over independent
// points — Fig. 7(a)'s eleven f-thresholds, Fig. 7(b)'s iteration
// budgets, Fig. 10's (algorithm × N) grid, the NAS algorithm roster of
// Figs. 8/9 and Table 2. Each point regenerates its workload and
// schedulers from seeds derived solely from (Setup.Seed, point index),
// shares no mutable state with its siblings, and writes its results
// into its own slot of a pre-sized slice. That makes the sweep loop
// embarrassingly parallel: fanOut below runs the points across
// Setup.Workers goroutines with results identical to the serial loop.
package experiments

import (
	"runtime"
	"sync"
)

// workers resolves Setup.Workers: 0 → GOMAXPROCS, else the value.
func (s Setup) workers() int {
	if s.Workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if s.Workers < 1 {
		return 1
	}
	return s.Workers
}

// forPoint returns the setup a single point of an n-point sweep should
// run with. When the sweep itself fans out and the caller left
// GAWorkers on auto, the cores are divided between the layers: each of
// the min(workers, n) concurrent points gets GOMAXPROCS/points GA
// evaluation goroutines (at least one, i.e. serial) — wide sweeps pin
// the GA serial because the points already saturate the cores, while a
// two-point sweep like Fig. 5 still engages the evaluator on half the
// machine each. An explicit GAWorkers is honoured unchanged. The
// returned setup yields bit-identical results either way; this only
// picks which layer gets the cores.
func (s Setup) forPoint(n int) Setup {
	concurrent := s.workers()
	if concurrent > n {
		concurrent = n
	}
	if concurrent > 1 && s.GAWorkers == 0 {
		s.GAWorkers = runtime.GOMAXPROCS(0) / concurrent
		if s.GAWorkers < 1 {
			s.GAWorkers = 1
		}
	}
	return s
}

// fanOut runs task(0) … task(n-1) across at most w goroutines and
// returns the lowest-indexed error (so failures are reported as
// deterministically as the serial loop would). Tasks must be mutually
// independent; each communicates its result by writing to its own index
// of a caller-owned slice.
func fanOut(w, n int, task func(i int) error) error {
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := task(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = task(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
