package experiments

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	out := table([]string{"a", "long-header"}, [][]string{
		{"xxxxxx", "1"},
		{"y", "2"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected header+separator+2 rows, got %d lines", len(lines))
	}
	// All lines equal width (trailing spaces aside, columns align).
	if !strings.HasPrefix(lines[1], "------") {
		t.Fatalf("separator missing: %q", lines[1])
	}
	if !strings.Contains(lines[2], "xxxxxx") || !strings.Contains(lines[3], "y") {
		t.Fatal("rows missing")
	}
}

func TestCSVJoin(t *testing.T) {
	out := csvJoin([]string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}})
	want := "a,b\n1,2\n3,4\n"
	if out != want {
		t.Fatalf("csv = %q, want %q", out, want)
	}
}

func TestOrdinal(t *testing.T) {
	cases := map[int]string{1: "1st", 2: "2nd", 3: "3rd", 4: "4th", 11: "11th"}
	for n, want := range cases {
		if got := ordinal(n); got != want {
			t.Errorf("ordinal(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestFormatters(t *testing.T) {
	if f2(1.234) != "1.23" || f3(1.2345) != "1.234" {
		t.Fatal("fixed formatters wrong")
	}
	if e3(123456) != "1.235e+05" {
		t.Fatalf("e3 = %q", e3(123456))
	}
	if i0(3.7) != "4" {
		t.Fatalf("i0 = %q", i0(3.7))
	}
}

func TestFig7aRender(t *testing.T) {
	r := &Fig7aResult{
		F:           []float64{0, 0.5, 1},
		MinMin:      []float64{3e5, 2e5, 2.2e5},
		Sufferage:   []float64{3.1e5, 1.9e5, 2.3e5},
		BestFMinMin: 0.5, BestFSufferage: 0.5,
	}
	out := r.Render()
	if !strings.Contains(out, "argmin: Min-Min f=0.5") {
		t.Fatalf("render missing argmin: %s", out)
	}
	if !strings.Contains(r.CSV(), "minmin_makespan_s") {
		t.Fatal("CSV header missing")
	}
}

func TestTable2RankTieHandling(t *testing.T) {
	// Construct a NASResult with two identical algorithms: they must
	// share a rank.
	mk := func(a Algorithm, makespan, resp float64) *Agg {
		agg := &Agg{Algorithm: a}
		agg.Makespan.Add(makespan)
		agg.Response.Add(resp)
		return agg
	}
	res := &NASResult{Algorithms: []*Agg{
		mk(MinMinSecure, 200, 200),
		mk(MinMinRisky, 100, 100),
		mk(AlgSTGA, 100, 100),
	}}
	rows := res.Table2()
	var stgaRank, riskyRank, secureRank int
	for _, row := range rows {
		switch row.Algorithm {
		case AlgSTGA:
			stgaRank = row.Rank
		case MinMinRisky:
			riskyRank = row.Rank
		case MinMinSecure:
			secureRank = row.Rank
		}
	}
	if stgaRank != 1 || riskyRank != 1 {
		t.Fatalf("tied algorithms should share rank 1: stga=%d risky=%d", stgaRank, riskyRank)
	}
	if secureRank <= 1 {
		t.Fatalf("dominated algorithm must rank below: %d", secureRank)
	}
}

func TestTable2WithoutSTGA(t *testing.T) {
	res := &NASResult{Algorithms: []*Agg{{Algorithm: MinMinSecure}}}
	if rows := res.Table2(); rows != nil {
		t.Fatal("Table2 without an STGA reference must return nil")
	}
}

func TestFig9RenderEmpty(t *testing.T) {
	res := &NASResult{}
	if !strings.Contains(res.RenderFig9(), "no site data") {
		t.Fatal("empty Fig. 9 should say so")
	}
}
