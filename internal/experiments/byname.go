package experiments

import (
	"fmt"
	"strings"

	"trustgrid/internal/grid"
	"trustgrid/internal/heuristics"
	"trustgrid/internal/rng"
	"trustgrid/internal/sched"
	"trustgrid/internal/stga"
)

// SchedulerNames lists the algorithm names SchedulerByName accepts, in
// display order: the heuristics (whose admission policy the caller
// chooses), the STGA (always f-risky at Setup.F, as in the paper), and
// the cold-start GA baseline.
var SchedulerNames = []string{
	"minmin", "rankminmin", "sufferage", "mct", "met", "olb", "random", "stga", "coldga",
}

// SchedulerByName builds one scheduler from its CLI/API name. policy is
// the admission rule for the heuristics (the STGA variants always use
// the setup's f-risky policy, matching the paper's operating point); r
// feeds stochastic schedulers and the GA; training warms the STGA
// history table (nil skips training).
func (s Setup) SchedulerByName(name string, policy grid.Policy, r *rng.Stream,
	training []*grid.Job, sites []*grid.Site) (sched.Scheduler, error) {

	switch strings.ToLower(name) {
	case "minmin":
		return heuristics.NewMinMin(policy), nil
	case "rankminmin":
		return heuristics.NewRankMinMin(policy), nil
	case "sufferage":
		return heuristics.NewSufferage(policy), nil
	case "mct":
		return heuristics.NewMCT(policy), nil
	case "met":
		return heuristics.NewMET(policy), nil
	case "olb":
		return heuristics.NewOLB(policy), nil
	case "random":
		return heuristics.NewRandom(policy, r.Derive("random")), nil
	case "stga", "coldga":
		cfg := s.stgaConfig()
		cfg.DisableHistory = name == "coldga"
		sc := stga.New(cfg, r.Derive("stga"))
		if name == "stga" && training != nil {
			sc.Train(training, sites, s.TrainBatchSize)
		}
		return sc, nil
	default:
		return nil, fmt.Errorf("experiments: unknown scheduler %q (want one of %s)",
			name, strings.Join(SchedulerNames, ", "))
	}
}
