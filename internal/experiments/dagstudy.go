package experiments

import (
	"fmt"
	"strings"

	"trustgrid/internal/dag"
	"trustgrid/internal/grid"
	"trustgrid/internal/rng"
	"trustgrid/internal/stats"
)

// The dependent-workload study (DESIGN.md §14): a layered random DAG on
// the PSA platform, comparing precedence-oblivious Min-Min against the
// two rank-aware schedulers — Rank-Min-Min (HEFT-style list order) and
// the STGA (rank-keyed decode on DAG rounds) — plus the same workload
// with its edges stripped, which bounds what precedence itself costs.
// Layer width exceeds the 20-site platform, so within-batch order
// decides which completions make the next Δ-grid round; scheduling the
// heaviest remaining chains first is exactly what shortens the paths
// that bound the makespan.

// DAGAlgorithms is the roster of the study, all at the paper's f-risky
// operating point so the comparison isolates job ordering.
var DAGAlgorithms = []Algorithm{MinMinFRisky, AlgRankMinMin, AlgSTGA}

// DAGCell aggregates one (algorithm, workload mode) pair over reps.
type DAGCell struct {
	Algorithm     Algorithm
	Independent   bool // edges stripped?
	Makespan      stats.Sample
	Response      stats.Sample
	MeanUtil      stats.Sample
	NDeadlineMiss stats.Sample
	NFail         stats.Sample
}

// DAGStudyResult holds both workload modes for every algorithm plus the
// shape of the rep-0 DAG.
type DAGStudyResult struct {
	Algorithms []Algorithm
	// DAG[i] and Independent[i] correspond to Algorithms[i].
	DAG, Independent []*DAGCell
	// Depth and Edges describe the rep-0 workload.
	Depth, Edges int
}

// dagGenConfig is the study's workload shape: PSA-leveled workloads and
// a layer width wider than the platform.
func (s Setup) dagGenConfig() dag.GenConfig {
	return dag.GenConfig{
		Jobs:     s.DAGJobs,
		Width:    s.DAGWidth,
		EdgeProb: s.DAGEdgeProb,
		// Arrivals an order of magnitude denser than the PSA trace: the
		// backlog forms fast, so release order — not arrival spread —
		// dominates the schedule.
		Rate:         0.05,
		WorkloadStep: 15000,
		Levels:       20,
		Slack:        s.DAGSlack,
		MeanSpeed:    55, // PSA platform mean (levels 1..10 × 10, twice)
	}
}

// DAGWorkload generates the layered dependent workload on the PSA
// platform. Training jobs are the usual independent PSA campaign — the
// STGA's history table warms on shape, not on edges.
func (s Setup) DAGWorkload(seed uint64) (*Workload, error) {
	w, err := s.PSAWorkload(seed, 1) // platform + training; jobs replaced
	if err != nil {
		return nil, err
	}
	jobs, err := dag.Generate(rng.New(seed), s.dagGenConfig())
	if err != nil {
		return nil, err
	}
	w.Name = "DAG"
	w.Jobs = jobs
	return w, nil
}

// stripEdges deep-copies a job list without its dependencies — the
// independent-baseline transform. Deadlines are kept as stamped, so the
// baseline shows what the same deadlines cost without precedence.
func stripEdges(jobs []*grid.Job) []*grid.Job {
	out := make([]*grid.Job, len(jobs))
	for i, j := range jobs {
		c := j.Clone()
		c.DependsOn = nil
		out[i] = c
	}
	return out
}

// RunDAGStudy runs the dependent-workload comparison. Every (algorithm,
// mode) pair is an independent fan-out point; within a rep all pairs
// see the identical generated DAG, so differences are attributable to
// the scheduler (and, across modes, to precedence itself).
func RunDAGStudy(s Setup) (*DAGStudyResult, error) {
	res := &DAGStudyResult{
		Algorithms:  DAGAlgorithms,
		DAG:         make([]*DAGCell, len(DAGAlgorithms)),
		Independent: make([]*DAGCell, len(DAGAlgorithms)),
	}
	pt := s.forPoint(2 * len(DAGAlgorithms))
	err := fanOut(s.workers(), 2*len(DAGAlgorithms), func(i int) error {
		ai, independent := i/2, i%2 == 1
		cell := &DAGCell{Algorithm: DAGAlgorithms[ai], Independent: independent}
		for rep := 0; rep < pt.reps(); rep++ {
			seed := pt.Seed + uint64(rep)*1000003
			w, err := pt.DAGWorkload(seed)
			if err != nil {
				return err
			}
			if independent {
				w.Jobs = stripEdges(w.Jobs)
			}
			r, err := pt.runOnce(w, cell.Algorithm, seed^0x9e3779b97f4a7c15)
			if err != nil {
				return fmt.Errorf("%s (independent=%v) rep %d: %w", cell.Algorithm, independent, rep, err)
			}
			cell.Makespan.Add(r.Summary.Makespan)
			cell.Response.Add(r.Summary.AvgResponse)
			cell.MeanUtil.Add(r.Summary.MeanUtilization)
			cell.NDeadlineMiss.Add(float64(r.Summary.NDeadlineMiss))
			cell.NFail.Add(float64(r.Summary.NFail))
		}
		if independent {
			res.Independent[ai] = cell
		} else {
			res.DAG[ai] = cell
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Describe the rep-0 DAG (identical across cells).
	jobs, err := dag.Generate(rng.New(s.Seed), s.dagGenConfig())
	if err != nil {
		return nil, err
	}
	res.Depth = (len(jobs) + s.DAGWidth - 1) / s.DAGWidth
	for _, j := range jobs {
		res.Edges += len(j.DependsOn)
	}
	return res, nil
}

// Render formats the study as a comparison table plus the headline
// rank-vs-baseline deltas on the DAG workload.
func (r *DAGStudyResult) Render() string {
	rows := make([][]string, 0, 2*len(r.Algorithms))
	for i, a := range r.Algorithms {
		for _, cell := range []*DAGCell{r.DAG[i], r.Independent[i]} {
			mode := "dag"
			if cell.Independent {
				mode = "independent"
			}
			rows = append(rows, []string{
				a.String(), mode,
				e3(cell.Makespan.Mean()),
				e3(cell.Response.Mean()),
				f3(cell.MeanUtil.Mean()),
				i0(cell.NDeadlineMiss.Mean()),
				i0(cell.NFail.Mean()),
			})
		}
	}
	t := table([]string{"algorithm", "workload", "makespan (s)", "avg response (s)",
		"mean util", "Nmiss", "Nfail"}, rows)
	var b strings.Builder
	fmt.Fprintf(&b, "Dependent jobs: precedence-aware vs oblivious scheduling "+
		"(depth %d, %d edges)\n%s", r.Depth, r.Edges, t)
	base := r.DAG[0]
	for i, a := range r.Algorithms[1:] {
		cell := r.DAG[i+1]
		fmt.Fprintf(&b, "%s: DAG makespan %+.1f%% vs %s, deadline misses %+.0f\n",
			a,
			100*(cell.Makespan.Mean()-base.Makespan.Mean())/base.Makespan.Mean(),
			base.Algorithm,
			cell.NDeadlineMiss.Mean()-base.NDeadlineMiss.Mean())
	}
	return b.String()
}

// CSV formats the study as CSV.
func (r *DAGStudyResult) CSV() string {
	rows := make([][]string, 0, 2*len(r.Algorithms))
	for i, a := range r.Algorithms {
		for _, cell := range []*DAGCell{r.DAG[i], r.Independent[i]} {
			mode := "dag"
			if cell.Independent {
				mode = "independent"
			}
			rows = append(rows, []string{
				a.String(), mode,
				e3(cell.Makespan.Mean()),
				e3(cell.Response.Mean()),
				f3(cell.MeanUtil.Mean()),
				i0(cell.NDeadlineMiss.Mean()),
				i0(cell.NFail.Mean()),
			})
		}
	}
	return csvJoin([]string{"algorithm", "workload", "makespan_s", "avg_response_s",
		"mean_utilization", "ndeadline_miss", "nfail"}, rows)
}
