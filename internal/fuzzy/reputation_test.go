package fuzzy

import (
	"math"
	"testing"
)

func mustRep(t *testing.T, declared float64) *Reputation {
	t.Helper()
	r, err := NewReputation(DefaultReputationConfig(), declared)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestReputationColdStartEqualsDeclared(t *testing.T) {
	for _, sl := range []float64{0, 0.4, 0.55, 0.7, 0.85, 0.95, 1.0} {
		r := mustRep(t, sl)
		if got := r.Level(); math.Abs(got-sl) > 1e-12 {
			t.Errorf("cold-start Level() = %v, want declared %v", got, sl)
		}
		if r.History() != DefaultReputationConfig().Prior {
			t.Errorf("cold-start History() = %v, want prior", r.History())
		}
		if r.Evidence() != 0 || r.Observations() != 0 {
			t.Errorf("cold start has evidence %v / %d observations", r.Evidence(), r.Observations())
		}
	}
}

func TestReputationFailuresLowerTrust(t *testing.T) {
	r := mustRep(t, 0.9)
	for i := 0; i < 20; i++ {
		r.Observe(0.8, false)
	}
	if got := r.Level(); got >= 0.9 {
		t.Fatalf("after 20 failures Level() = %v, want < declared 0.9", got)
	}
	if h := r.History(); h >= DefaultReputationConfig().Prior {
		t.Fatalf("History() = %v did not drop below prior", h)
	}
}

func TestReputationSuccessesRecoverTrust(t *testing.T) {
	r := mustRep(t, 0.9)
	for i := 0; i < 20; i++ {
		r.Observe(0.8, false)
	}
	low := r.Level()
	for i := 0; i < 200; i++ {
		r.Observe(0.8, true)
	}
	if got := r.Level(); got <= low {
		t.Fatalf("Level() = %v did not recover above post-failure %v", got, low)
	}
}

func TestReputationMonotoneInEvidence(t *testing.T) {
	// Interleaved outcomes: the estimate must stay within [0,1] and the
	// history within [0,1] at every step.
	r := mustRep(t, 0.7)
	for i := 0; i < 500; i++ {
		r.Observe(float64(i%10)/10, i%3 != 0)
		if l := r.Level(); l < 0 || l > 1 || math.IsNaN(l) {
			t.Fatalf("step %d: Level() = %v outside [0,1]", i, l)
		}
		if h := r.History(); h < 0 || h > 1 || math.IsNaN(h) {
			t.Fatalf("step %d: History() = %v outside [0,1]", i, h)
		}
	}
}

func TestReputationBandsIsolateDemands(t *testing.T) {
	// Failures confined to the high-demand band must hurt less than the
	// same failures spread across all bands once low-band successes pile
	// up: band evidence is mass-weighted, not globally averaged.
	banded := mustRep(t, 0.9)
	for i := 0; i < 30; i++ {
		banded.Observe(0.9, false) // high band fails
		banded.Observe(0.1, true)  // low band succeeds
	}
	uniform := mustRep(t, 0.9)
	for i := 0; i < 30; i++ {
		uniform.Observe(0.9, false)
		uniform.Observe(0.9, false)
	}
	if banded.Level() <= uniform.Level() {
		t.Fatalf("banded Level() %v <= all-failures Level() %v", banded.Level(), uniform.Level())
	}
}

func TestReputationResetRestoresDeclared(t *testing.T) {
	r := mustRep(t, 0.85)
	for i := 0; i < 50; i++ {
		r.Observe(0.7, false)
	}
	if r.Level() >= 0.85 {
		t.Fatal("failures did not move the estimate")
	}
	r.Reset()
	if got := r.Level(); math.Abs(got-0.85) > 1e-12 {
		t.Fatalf("after Reset Level() = %v, want declared 0.85", got)
	}
	if r.Evidence() != 0 || r.Observations() != 0 {
		t.Fatal("Reset did not clear evidence")
	}
}

func TestReputationDeterministic(t *testing.T) {
	a, b := mustRep(t, 0.75), mustRep(t, 0.75)
	for i := 0; i < 100; i++ {
		sd := float64(i%7) / 7
		ok := i%4 != 0
		a.Observe(sd, ok)
		b.Observe(sd, ok)
	}
	if a.Level() != b.Level() || a.History() != b.History() {
		t.Fatal("identical observation sequences produced different reputations")
	}
}

func TestReputationConfigValidate(t *testing.T) {
	bad := []ReputationConfig{
		{Alpha: 0, Prior: 0.5},
		{Alpha: 1.5, Prior: 0.5},
		{Alpha: 0.2, Prior: -0.1},
		{Alpha: 0.2, Prior: 1.1},
		{Alpha: 0.2, Prior: 0.5, PriorWeight: -1},
		{Alpha: 0.2, Prior: 0.5, Bands: -2},
		{Alpha: math.NaN(), Prior: 0.5},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, cfg)
		}
	}
	if err := DefaultReputationConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
	if _, err := NewReputation(DefaultReputationConfig(), 1.2); err == nil {
		t.Error("NewReputation accepted SL > 1")
	}
}
