package fuzzy

import (
	"fmt"
	"math"
)

// ReputationConfig parameterizes the online per-site reputation model
// (DESIGN.md §7.1). Trust is re-derived from observed job outcomes: every
// completion or security failure updates an exponentially weighted moving
// average of success, bucketed by the job's security demand, and the
// fuzzy inference of TrustIndex re-runs on the updated success history.
type ReputationConfig struct {
	// Alpha is the EWMA gain per observation in (0, 1]: the weight a new
	// outcome carries against the accumulated history. Larger values
	// react faster and forget faster.
	Alpha float64
	// Prior is the cold-start success expectation in [0, 1]: what the
	// model believes about a site before any evidence. A freshly joined
	// (or crash-rejoined) site starts here.
	Prior float64
	// PriorWeight is the evidence mass of the site's declaration: how
	// many observations' worth of behavior it takes for the derived
	// trust to carry as much credence as the declared level. Zero means
	// the default.
	PriorWeight float64
	// Bands is the number of equal-width security-demand buckets the
	// evidence is kept in, so a site that serves low-demand jobs well but
	// fails high-demand ones is not averaged into mediocrity. Zero means
	// the default.
	Bands int
}

// DefaultReputationConfig returns the reference configuration: gain 0.2,
// prior 0.8 (most grid jobs complete without incident), declaration mass
// 2, three demand bands.
func DefaultReputationConfig() ReputationConfig {
	return ReputationConfig{Alpha: 0.2, Prior: 0.8, PriorWeight: 2, Bands: 3}
}

// Validate checks the configuration. Zero-valued PriorWeight and Bands
// are legal (they select defaults); Alpha and Prior must be explicit.
func (c ReputationConfig) Validate() error {
	switch {
	case c.Alpha <= 0 || c.Alpha > 1 || math.IsNaN(c.Alpha):
		return fmt.Errorf("fuzzy: reputation Alpha %v outside (0,1]", c.Alpha)
	case c.Prior < 0 || c.Prior > 1 || math.IsNaN(c.Prior):
		return fmt.Errorf("fuzzy: reputation Prior %v outside [0,1]", c.Prior)
	case c.PriorWeight < 0 || math.IsNaN(c.PriorWeight):
		return fmt.Errorf("fuzzy: reputation PriorWeight %v negative", c.PriorWeight)
	case c.Bands < 0:
		return fmt.Errorf("fuzzy: reputation Bands %d negative", c.Bands)
	}
	return nil
}

// withDefaults fills the zero-means-default fields.
func (c ReputationConfig) withDefaults() ReputationConfig {
	if c.PriorWeight == 0 {
		c.PriorWeight = DefaultReputationConfig().PriorWeight
	}
	if c.Bands == 0 {
		c.Bands = DefaultReputationConfig().Bands
	}
	return c
}

// Reputation is the online trust state of one site: a credence blend of
// the site's declared security level and a behavior-derived discount
// that the fuzzy inference recomputes as evidence accumulates (DESIGN.md
// §7.1):
//
//	Level = declared · ( (1−c) + c · F(posture, history)/F(posture, 1) )
//	c     = evidence / (evidence + PriorWeight)
//
// where F is the SecurityLevel inference, posture is a static attribute
// score derived from the declared SL, history is the per-band EWMA of
// observed outcomes, and evidence is the accumulated (decayed)
// observation mass. The normalization by F(posture, 1) — the best level
// behavior could ever justify for this posture — makes a spotless
// record a fixed point: a site that always delivers keeps Level() ==
// declared, while every failure opens a discount that grows with
// credence c. The declaration is thus treated as an upper bound that
// behavior can only confirm or undermine, which is the security-relevant
// direction: an overstated SL is found out, an understated one is no
// threat.
//
// Not safe for concurrent use; the simulation engine owns it.
type Reputation struct {
	cfg      ReputationConfig
	declared float64
	posture  float64
	fmax     float64   // F(posture, 1): best behavior-justified level
	vals     []float64 // per-band EWMA of success (1) / failure (0)
	wts      []float64 // per-band decayed observation mass (→ 1/Alpha)
	n        int       // observations since (re)start
}

// NewReputation builds the cold-start reputation of a site with the
// given declared security level in [0, 1].
func NewReputation(cfg ReputationConfig, declaredSL float64) (*Reputation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if declaredSL < 0 || declaredSL > 1 || math.IsNaN(declaredSL) {
		return nil, fmt.Errorf("fuzzy: declared SL %v outside [0,1]", declaredSL)
	}
	cfg = cfg.withDefaults()
	r := &Reputation{
		cfg:      cfg,
		declared: declaredSL,
		// Invert the SL clamp of SecurityLevel: [0.4,1] → [0,1] posture.
		posture: clamp01((declaredSL - 0.4) / 0.6),
	}
	r.fmax = r.infer(1)
	r.Reset()
	return r, nil
}

// clamp01 clamps into [0, 1].
func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// infer runs the fuzzy inference for this site's posture at success
// history h. The inputs are in [0,1] by construction, so the inference
// cannot fail.
func (r *Reputation) infer(h float64) float64 {
	level, err := SecurityLevel(Attributes{
		IntrusionDetection: r.posture,
		Firewall:           r.posture,
		Authentication:     r.posture,
		SuccessHistory:     h,
	})
	if err != nil {
		panic("fuzzy: reputation inference on invalid attributes: " + err.Error())
	}
	return level
}

// Reset discards all accumulated evidence: the site returns to its
// cold-start state (Level() == declared SL). The engine calls it when a
// crashed site rejoins — trust is not portable across a crash.
func (r *Reputation) Reset() {
	r.vals = make([]float64, r.cfg.Bands)
	r.wts = make([]float64, r.cfg.Bands)
	for i := range r.vals {
		r.vals[i] = r.cfg.Prior
	}
	r.n = 0
}

// band maps a security demand to its evidence bucket.
func (r *Reputation) band(sd float64) int {
	b := int(clamp01(sd) * float64(r.cfg.Bands))
	if b >= r.cfg.Bands {
		b = r.cfg.Bands - 1
	}
	return b
}

// Observe folds one job outcome into the evidence: success is a
// completion without security incident, failure an Eq. 1 security
// failure. sd is the job's security demand (selects the band).
func (r *Reputation) Observe(sd float64, success bool) {
	b := r.band(sd)
	x := 0.0
	if success {
		x = 1
	}
	a := r.cfg.Alpha
	r.vals[b] = (1-a)*r.vals[b] + a*x
	// Decayed observation mass: one unit per observation, forgetting at
	// the EWMA rate, so it converges to the EWMA's effective sample size
	// 1/Alpha rather than growing without bound.
	r.wts[b] = (1-a)*r.wts[b] + 1
	r.n++
}

// History returns the aggregated success history in [0, 1]: the
// evidence-mass-weighted mean of the band EWMAs, smoothed toward the
// prior by one observation's mass. With no observations it equals the
// prior.
func (r *Reputation) History() float64 {
	num := r.cfg.Prior
	den := 1.0
	for b := range r.vals {
		num += r.vals[b] * r.wts[b]
		den += r.wts[b]
	}
	return clamp01(num / den)
}

// Level returns the current trust estimate as a security level in
// [0, 1]: the declaration scaled by the credence-weighted behavior
// discount (see the type comment).
func (r *Reputation) Level() float64 {
	w := r.Evidence()
	c := w / (w + r.cfg.PriorWeight)
	ratio := clamp01(r.infer(r.History()) / r.fmax)
	return clamp01(r.declared * ((1 - c) + c*ratio))
}

// ReputationState is the serializable evidence of a Reputation: the
// per-band EWMAs, the decayed observation masses, and the observation
// count. Everything else (config, declaration, posture) is re-derived
// from the same inputs on restore, so state stays minimal.
type ReputationState struct {
	Vals []float64 `json:"vals"`
	Wts  []float64 `json:"wts"`
	N    int       `json:"n"`
}

// State captures the accumulated evidence.
func (r *Reputation) State() ReputationState {
	return ReputationState{
		Vals: append([]float64(nil), r.vals...),
		Wts:  append([]float64(nil), r.wts...),
		N:    r.n,
	}
}

// SetState restores captured evidence into a reputation built with the
// same configuration (band counts must match).
func (r *Reputation) SetState(s ReputationState) error {
	if len(s.Vals) != r.cfg.Bands || len(s.Wts) != r.cfg.Bands {
		return fmt.Errorf("fuzzy: reputation state has %d/%d bands, config has %d",
			len(s.Vals), len(s.Wts), r.cfg.Bands)
	}
	r.vals = append(r.vals[:0], s.Vals...)
	r.wts = append(r.wts[:0], s.Wts...)
	r.n = s.N
	return nil
}

// Declared returns the anchoring declared security level.
func (r *Reputation) Declared() float64 { return r.declared }

// Observations returns how many outcomes have been folded in since the
// last (re)start.
func (r *Reputation) Observations() int { return r.n }

// Evidence returns the total accumulated evidence mass across bands.
// It grows toward Bands/Alpha as observations accumulate and is what a
// monitoring endpoint reports as "how much the estimate is backed by
// data".
func (r *Reputation) Evidence() float64 {
	var w float64
	for _, x := range r.wts {
		w += x
	}
	return w
}
