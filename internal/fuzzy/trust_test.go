package fuzzy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTriangle(t *testing.T) {
	cases := []struct {
		x, a, b, c, want float64
	}{
		{0.5, 0, 0.5, 1, 1},
		{0, 0, 0.5, 1, 0},
		{1, 0, 0.5, 1, 0},
		{0.25, 0, 0.5, 1, 0.5},
		{0.75, 0, 0.5, 1, 0.5},
		{-1, 0, 0.5, 1, 0},
		{2, 0, 0.5, 1, 0},
		{1, 0.5, 1, 1.5, 1}, // shoulder at the top
	}
	for _, c := range cases {
		if got := triangle(c.x, c.a, c.b, c.c); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("triangle(%v; %v,%v,%v) = %v, want %v", c.x, c.a, c.b, c.c, got, c.want)
		}
	}
}

func TestTrustIndexExtremes(t *testing.T) {
	perfect := Attributes{1, 1, 1, 1}
	hi, err := TrustIndex(perfect)
	if err != nil {
		t.Fatal(err)
	}
	hostile := Attributes{0, 0, 0, 0}
	lo, err := TrustIndex(hostile)
	if err != nil {
		t.Fatal(err)
	}
	if hi < 0.8 {
		t.Fatalf("perfect site trust %v, want >= 0.8", hi)
	}
	if lo > 0.25 {
		t.Fatalf("hostile site trust %v, want <= 0.25", lo)
	}
}

func TestTrustIndexMidpoint(t *testing.T) {
	mid, err := TrustIndex(Attributes{0.5, 0.5, 0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if mid < 0.35 || mid > 0.7 {
		t.Fatalf("midpoint trust %v, want medium (~0.55)", mid)
	}
}

func TestHistoryDominates(t *testing.T) {
	// Strong static posture with terrible history must stay low-trust.
	v, err := TrustIndex(Attributes{
		IntrusionDetection: 0.2, Firewall: 0.9,
		Authentication: 0.9, SuccessHistory: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v > 0.6 {
		t.Fatalf("bad history should cap trust, got %v", v)
	}
}

func TestTrustIndexBoundsProperty(t *testing.T) {
	check := func(a, b, c, d uint8) bool {
		attrs := Attributes{
			IntrusionDetection: float64(a) / 255,
			Firewall:           float64(b) / 255,
			Authentication:     float64(c) / 255,
			SuccessHistory:     float64(d) / 255,
		}
		v, err := TrustIndex(attrs)
		return err == nil && v >= 0 && v <= 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTrustMonotoneInHistory(t *testing.T) {
	// Raising the success history (others fixed) must not lower trust.
	base := Attributes{IntrusionDetection: 0.6, Firewall: 0.6, Authentication: 0.6}
	prev := -1.0
	for step := 0; step <= 20; step++ {
		h := float64(step) / 20
		a := base
		a.SuccessHistory = h
		v, err := TrustIndex(a)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev-1e-9 {
			t.Fatalf("trust decreased from %v to %v when history rose to %v", prev, v, h)
		}
		prev = v
	}
}

func TestValidate(t *testing.T) {
	bad := Attributes{IntrusionDetection: 1.2}
	if _, err := TrustIndex(bad); err == nil {
		t.Fatal("out-of-range attribute should error")
	}
	nan := Attributes{Firewall: math.NaN()}
	if _, err := TrustIndex(nan); err == nil {
		t.Fatal("NaN attribute should error")
	}
}

func TestSecurityLevelRange(t *testing.T) {
	for _, attrs := range []Attributes{
		{0, 0, 0, 0}, {1, 1, 1, 1}, {0.5, 0.5, 0.5, 0.5},
	} {
		sl, err := SecurityLevel(attrs)
		if err != nil {
			t.Fatal(err)
		}
		if sl < 0.4 || sl > 1.0 {
			t.Fatalf("SL %v outside the Table 1 range [0.4, 1.0]", sl)
		}
	}
}
