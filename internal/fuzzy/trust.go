package fuzzy

import (
	"fmt"
	"math"
)

// Attributes are the observable security inputs of one site, each scored
// in [0,1].
type Attributes struct {
	// IntrusionDetection reflects IDS/IPS coverage and response.
	IntrusionDetection float64
	// Firewall reflects perimeter defense and anti-virus hygiene.
	Firewall float64
	// Authentication reflects the strength of the site's authentication
	// and authorization mechanisms.
	Authentication float64
	// SuccessHistory is the observed fraction of prior jobs that
	// completed without security incident.
	SuccessHistory float64
}

// Validate checks all attributes are within [0,1].
func (a Attributes) Validate() error {
	for name, v := range map[string]float64{
		"IntrusionDetection": a.IntrusionDetection,
		"Firewall":           a.Firewall,
		"Authentication":     a.Authentication,
		"SuccessHistory":     a.SuccessHistory,
	} {
		if v < 0 || v > 1 || math.IsNaN(v) {
			return fmt.Errorf("fuzzy: attribute %s = %v outside [0,1]", name, v)
		}
	}
	return nil
}

// membership grade of x in a triangular set (a, b, c): 0 outside (a, c),
// 1 at b, linear in between. a == b or b == c produce shoulder sets.
func triangle(x, a, b, c float64) float64 {
	switch {
	case x <= a || x >= c:
		if x == b { // degenerate single-point set
			return 1
		}
		return 0
	case x == b:
		return 1
	case x < b:
		return (x - a) / (b - a)
	default:
		return (c - x) / (c - b)
	}
}

// linguistic grades of one input: low, medium, high.
type grades struct{ low, med, high float64 }

func gradesOf(x float64) grades {
	return grades{
		low:  triangle(x, -0.5, 0, 0.5),
		med:  triangle(x, 0, 0.5, 1),
		high: triangle(x, 0.5, 1, 1.5),
	}
}

// TrustIndex runs the inference and returns the defuzzified trust index
// in [0,1].
//
// Rule base (weights reflect that operational evidence — success history
// and intrusion detection — dominates static posture):
//
//	R1: history high ∧ ids high           → trust high
//	R2: history high ∧ ids med            → trust high (weaker)
//	R3: history med                       → trust med
//	R4: firewall high ∧ auth high         → trust med-high
//	R5: history low ∨ ids low             → trust low
//	R6: firewall low ∧ auth low           → trust low
func TrustIndex(a Attributes) (float64, error) {
	if err := a.Validate(); err != nil {
		return 0, err
	}
	ids := gradesOf(a.IntrusionDetection)
	fw := gradesOf(a.Firewall)
	auth := gradesOf(a.Authentication)
	hist := gradesOf(a.SuccessHistory)

	andOp := math.Min
	orOp := math.Max

	// Rule activations.
	high1 := andOp(hist.high, ids.high)
	high2 := 0.8 * andOp(hist.high, ids.med)
	medHigh := 0.7 * andOp(fw.high, auth.high)
	med := hist.med
	low1 := orOp(hist.low, ids.low)
	low2 := andOp(fw.low, auth.low)

	// Aggregate per output set (max).
	outHigh := math.Max(high1, math.Max(high2, medHigh))
	outMed := math.Max(med, 0.5*medHigh)
	outLow := math.Max(low1, low2)

	// Centroid defuzzification over output sets centered at 0.15 (low),
	// 0.55 (medium), 0.92 (high).
	num := outLow*0.15 + outMed*0.55 + outHigh*0.92
	den := outLow + outMed + outHigh
	if den == 0 {
		return 0.5, nil // no rule fired: indifferent prior
	}
	v := num / den
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	return v, nil
}

// SecurityLevel clamps the trust index into the paper's Table 1 SL range
// [0.4, 1.0]: even an untrusted public site offers baseline isolation.
func SecurityLevel(a Attributes) (float64, error) {
	t, err := TrustIndex(a)
	if err != nil {
		return 0, err
	}
	return 0.4 + 0.6*t, nil
}
