// Package fuzzy implements a small Mamdani-style fuzzy inference engine
// that derives a site's security level (SL) from observable security
// attributes, following the fuzzy-logic trust index the paper cites as
// the intended source of SL values (Song, Hwang & Macwan 2004, the
// paper's ref [23]; see §1: "SL and SD could also be a weighted sum of
// several system security parameters").
//
// The engine maps four attributes in [0,1] — intrusion-detection
// capability, firewall/anti-virus strength, authentication mechanism
// strength, and prior job-execution success rate — through triangular
// membership functions and a compact rule base to a defuzzified trust
// index in [0,1], usable directly as grid.Site.SecurityLevel.
//
// On top of the one-shot inference, Reputation makes the success-history
// input live: per-site EWMA evidence, bucketed by security demand, is
// folded into the inference after every observed job outcome, so the
// scheduler-visible trust estimate is re-derived from behavior instead
// of staying at the site's declaration (DESIGN.md §7.1).
//
// DESIGN.md §1.1 inventory row: fuzzy-logic trust index (paper's ref [23]): site attributes → security level; online Reputation feedback (§7.1).
package fuzzy
