// Package fuzzy implements a small Mamdani-style fuzzy inference engine
// that derives a site's security level (SL) from observable security
// attributes, following the fuzzy-logic trust index the paper cites as
// the intended source of SL values (Song, Hwang & Macwan 2004, the
// paper's ref [23]; see §1: "SL and SD could also be a weighted sum of
// several system security parameters").
//
// The engine maps four attributes in [0,1] — intrusion-detection
// capability, firewall/anti-virus strength, authentication mechanism
// strength, and prior job-execution success rate — through triangular
// membership functions and a compact rule base to a defuzzified trust
// index in [0,1], usable directly as grid.Site.SecurityLevel.
//
// DESIGN.md §1.1 inventory row: fuzzy-logic trust index (paper's ref [23]): site attributes → security level.
package fuzzy
