// Package config layers a flat YAML config file and environment
// variables under a command's flag set, with fixed precedence:
// command-line flag > environment override > config file > flag
// default.
//
// The file format is deliberately a flat subset of YAML — one
// `key: value` pair per line, full-line and trailing `#` comments,
// optional single or double quotes around values — and nothing else: no
// nesting, no lists, no multi-document streams. Keys are flag names
// verbatim (`round-budget: 8` configures -round-budget), so the set of
// valid keys is exactly `trustgridd -h` and never drifts from it.
// Unknown keys, duplicate keys and structured YAML are hard errors: a
// config file that silently misconfigures a daemon is worse than one
// that refuses to load.
//
// Environment overrides use the same mapping with a prefix:
// TRUSTGRIDD_ROUND_BUDGET overrides `round-budget` (dashes become
// underscores, uppercased). Unknown variables under the prefix are
// rejected too — a typo in an override must fail the boot, not be
// ignored. The one exception is <PREFIX>_CONFIG, which names the config
// file itself and is consumed by the command before Apply runs.
package config
