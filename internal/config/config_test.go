package config

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func parse(t *testing.T, src string) map[string]string {
	t.Helper()
	vals, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return vals
}

func TestParseFlat(t *testing.T) {
	vals := parse(t, `---
# daemon config
algo: stga
mode: frisky        # trailing comment
addr: "127.0.0.1:8421"
trace-out: ''
f: 0.5
wal-dir: '/var/lib/trustgrid # not a comment'
manual: true
`)
	want := map[string]string{
		"algo": "stga", "mode": "frisky", "addr": "127.0.0.1:8421",
		"trace-out": "", "f": "0.5",
		"wal-dir": "/var/lib/trustgrid # not a comment", "manual": "true",
	}
	if len(vals) != len(want) {
		t.Fatalf("got %d keys %v, want %d", len(vals), vals, len(want))
	}
	for k, v := range want {
		if vals[k] != v {
			t.Errorf("key %q = %q, want %q", k, vals[k], v)
		}
	}
}

func TestParseKeepsUnquotedHash(t *testing.T) {
	vals := parse(t, "addr: host#1:8421\n")
	if vals["addr"] != "host#1:8421" {
		t.Fatalf("got %q — a '#' without leading whitespace is not a comment", vals["addr"])
	}
}

func TestParseRejects(t *testing.T) {
	cases := map[string]string{
		"nested":        "server:\n  addr: :8421\n",
		"tab indent":    "algo: x\n\tmode: y\n",
		"list":          "- algo\n",
		"no colon":      "just words\n",
		"bad key":       "Algo: stga\n",
		"duplicate":     "algo: a\nalgo: b\n",
		"open quote":    "algo: \"stga\n",
		"quote garbage": "algo: 'stga' extra\n",
	}
	for name, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted %q", name, src)
		}
	}
}

// newTestFlagSet mirrors the daemon's flag shapes: string, float,
// duration, bool, int.
func newTestFlagSet() (*flag.FlagSet, map[string]any) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	ptrs := map[string]any{
		"algo":         fs.String("algo", "minmin", ""),
		"f":            fs.Float64("f", 0.5, ""),
		"tick":         fs.Duration("tick", 100*time.Millisecond, ""),
		"manual":       fs.Bool("manual", false, ""),
		"round-budget": fs.Int("round-budget", 0, ""),
		"config":       fs.String("config", "", ""),
	}
	return fs, ptrs
}

// TestApplyPrecedence pins the full chain on one flag set: an explicit
// flag beats the environment, the environment beats the file, the file
// beats the default, and an untouched flag keeps its default.
func TestApplyPrecedence(t *testing.T) {
	t.Setenv("TG_ALGO", "sufferage")
	t.Setenv("TG_ROUND_BUDGET", "8")
	fs, ptrs := newTestFlagSet()
	if err := fs.Parse([]string{"-algo", "stga"}); err != nil {
		t.Fatal(err)
	}
	file := map[string]string{
		"algo":         "mct",   // loses to env, which loses to the flag
		"round-budget": "99",    // loses to env
		"tick":         "250ms", // wins: nothing above it
		"manual":       "true",  // wins
	}
	if err := Apply(fs, "TG", file); err != nil {
		t.Fatal(err)
	}
	if got := *ptrs["algo"].(*string); got != "stga" {
		t.Errorf("algo = %q, want flag value stga", got)
	}
	if got := *ptrs["round-budget"].(*int); got != 8 {
		t.Errorf("round-budget = %d, want env value 8", got)
	}
	if got := *ptrs["tick"].(*time.Duration); got != 250*time.Millisecond {
		t.Errorf("tick = %v, want file value 250ms", got)
	}
	if got := *ptrs["manual"].(*bool); !got {
		t.Error("manual = false, want file value true")
	}
	if got := *ptrs["f"].(*float64); got != 0.5 {
		t.Errorf("f = %v, want untouched default 0.5", got)
	}
	// Downstream cross-flag validation sees env/file-set flags as set.
	seen := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { seen[f.Name] = true })
	for _, name := range []string{"algo", "round-budget", "tick", "manual"} {
		if !seen[name] {
			t.Errorf("flag %q not reported as set after Apply", name)
		}
	}
	if seen["f"] {
		t.Error("untouched flag reported as set")
	}
}

func TestApplyRejectsUnknownFileKey(t *testing.T) {
	fs, _ := newTestFlagSet()
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	err := Apply(fs, "TG", map[string]string{"allgo": "stga"})
	if err == nil || !strings.Contains(err.Error(), "allgo") {
		t.Fatalf("unknown key: %v", err)
	}
}

func TestApplyRejectsConfigKeyInFile(t *testing.T) {
	fs, _ := newTestFlagSet()
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := Apply(fs, "TG", map[string]string{"config": "other.yaml"}); err == nil {
		t.Fatal("a config file naming another config file was accepted")
	}
}

func TestApplyRejectsUnknownEnv(t *testing.T) {
	t.Setenv("TG_ALGOO", "stga")
	fs, _ := newTestFlagSet()
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	err := Apply(fs, "TG", nil)
	if err == nil || !strings.Contains(err.Error(), "TG_ALGOO") {
		t.Fatalf("unknown env override: %v", err)
	}
}

func TestApplyIgnoresConfigEnv(t *testing.T) {
	t.Setenv("TG_CONFIG", "daemon.yaml")
	fs, _ := newTestFlagSet()
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := Apply(fs, "TG", nil); err != nil {
		t.Fatalf("TG_CONFIG must be left to the command: %v", err)
	}
}

func TestApplyBadValue(t *testing.T) {
	fs, _ := newTestFlagSet()
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := Apply(fs, "TG", map[string]string{"round-budget": "many"}); err == nil {
		t.Fatal("unparseable int accepted")
	}
	t.Setenv("TG_TICK", "fast")
	if err := Apply(fs, "TG", nil); err == nil {
		t.Fatal("unparseable duration accepted")
	}
}

// TestLoad covers the file-backed entry point: a real file parses, a
// missing path errors, and a parse error carries the file name.
func TestLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "daemon.yaml")
	if err := os.WriteFile(path, []byte("algo: stga\ntick: 250ms\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	vals, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if vals["algo"] != "stga" || vals["tick"] != "250ms" {
		t.Fatalf("loaded %v", vals)
	}
	if _, err := Load(filepath.Join(dir, "absent.yaml")); err == nil {
		t.Fatal("missing file loaded")
	}
	bad := filepath.Join(dir, "bad.yaml")
	if err := os.WriteFile(bad, []byte("server:\n  addr: :8421\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Load(bad)
	if err == nil || !strings.Contains(err.Error(), "bad.yaml") {
		t.Fatalf("parse error must name the file: %v", err)
	}
}
