package config

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strings"
)

// keyRe is the accepted key shape: flag names.
var keyRe = regexp.MustCompile(`^[a-z][a-z0-9-]*$`)

// Load reads and parses a config file. See Parse for the format.
func Load(path string) (map[string]string, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	defer fh.Close()
	vals, err := Parse(fh)
	if err != nil {
		return nil, fmt.Errorf("config: %s: %w", path, err)
	}
	return vals, nil
}

// Parse reads flat `key: value` YAML from r. Blank lines, full-line
// comments, a leading document marker (---) and trailing comments are
// accepted; indentation (nesting), list items, duplicate keys and
// malformed lines are errors.
func Parse(r io.Reader) (map[string]string, error) {
	vals := make(map[string]string)
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		if lineNo == 1 && trimmed == "---" {
			continue
		}
		if line[0] == ' ' || line[0] == '\t' {
			return nil, fmt.Errorf("line %d: indented line — nested structures are not supported (flat key: value only)", lineNo)
		}
		if strings.HasPrefix(trimmed, "- ") {
			return nil, fmt.Errorf("line %d: list item — lists are not supported (flat key: value only)", lineNo)
		}
		key, rawVal, ok := strings.Cut(trimmed, ":")
		if !ok {
			return nil, fmt.Errorf("line %d: not a key: value pair", lineNo)
		}
		key = strings.TrimSpace(key)
		if !keyRe.MatchString(key) {
			return nil, fmt.Errorf("line %d: invalid key %q (keys are flag names)", lineNo, key)
		}
		if _, dup := vals[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate key %q", lineNo, key)
		}
		val, err := parseValue(strings.TrimSpace(rawVal))
		if err != nil {
			return nil, fmt.Errorf("line %d: key %q: %w", lineNo, key, err)
		}
		vals[key] = val
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return vals, nil
}

// parseValue strips an optional quoted wrapper or a trailing comment
// from a raw scalar.
func parseValue(v string) (string, error) {
	if v == "" {
		return "", nil
	}
	if q := v[0]; q == '"' || q == '\'' {
		end := strings.IndexByte(v[1:], q)
		if end < 0 {
			return "", fmt.Errorf("unterminated quoted value")
		}
		val, rest := v[1:1+end], strings.TrimSpace(v[2+end:])
		if rest != "" && !strings.HasPrefix(rest, "#") {
			return "", fmt.Errorf("trailing characters after quoted value: %q", rest)
		}
		return val, nil
	}
	// Unquoted: a trailing comment needs whitespace before the '#'
	// (YAML's rule), so values like sha#1 stay intact.
	for i := 1; i < len(v); i++ {
		if v[i] == '#' && (v[i-1] == ' ' || v[i-1] == '\t') {
			return strings.TrimSpace(v[:i]), nil
		}
	}
	return v, nil
}

// EnvKey maps a flag name to its environment override: dashes become
// underscores, uppercased, prefixed — `round-budget` with prefix
// TRUSTGRIDD is TRUSTGRIDD_ROUND_BUDGET.
func EnvKey(prefix, name string) string {
	return prefix + "_" + strings.ToUpper(strings.ReplaceAll(name, "-", "_"))
}

// Apply resolves the precedence chain onto fs, which must already be
// Parsed: flags set on the command line are left alone, then
// environment variables under envPrefix, then file values fill what
// remains. Values go through flag.Set, so they get each flag's own
// parsing and validation. Unknown file keys and unknown <prefix>_*
// environment variables are errors, as is any attempt to set the
// "config" flag itself from a file (the file cannot name the file).
// After Apply, fs.Visit reports file- and env-set flags as set, so
// cross-flag validation downstream treats every source alike.
func Apply(fs *flag.FlagSet, envPrefix string, file map[string]string) error {
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	envToName := map[string]string{}
	known := map[string]bool{}
	fs.VisitAll(func(f *flag.Flag) {
		known[f.Name] = true
		envToName[EnvKey(envPrefix, f.Name)] = f.Name
	})

	fileKeys := make([]string, 0, len(file))
	for k := range file {
		fileKeys = append(fileKeys, k)
	}
	sort.Strings(fileKeys)
	for _, k := range fileKeys {
		if !known[k] {
			return fmt.Errorf("config: unknown key %q (keys are flag names; see -h)", k)
		}
		if k == "config" {
			return fmt.Errorf("config: a config file cannot set %q", k)
		}
	}

	prefix := envPrefix + "_"
	env := os.Environ()
	sort.Strings(env)
	for _, kv := range env {
		name, val, _ := strings.Cut(kv, "=")
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		if name == EnvKey(envPrefix, "config") {
			continue // names the config file; the command consumes it before Apply
		}
		flagName, ok := envToName[name]
		if !ok {
			return fmt.Errorf("config: unknown environment override %s (overrides are %s<FLAG-NAME>)", name, prefix)
		}
		if set[flagName] {
			continue // explicit flag wins
		}
		if err := fs.Set(flagName, val); err != nil {
			return fmt.Errorf("config: %s=%q: %w", name, val, err)
		}
		set[flagName] = true // and env beats the file
	}

	for _, k := range fileKeys {
		if set[k] {
			continue
		}
		if err := fs.Set(k, file[k]); err != nil {
			return fmt.Errorf("config: key %q = %q: %w", k, file[k], err)
		}
	}
	return nil
}
