package wal

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"

	"trustgrid/internal/api"
	"trustgrid/internal/grid"
)

// Record kinds: the three deterministic input streams of the scheduling
// pipeline.
const (
	// KindArrival is one accepted job submission (the api.TraceRecord
	// the daemon already emits as its arrival trace).
	KindArrival = "arrival"
	// KindTenant is one tenant registration or update.
	KindTenant = "tenant"
	// KindChurn is one site-transition event of the configured churn
	// trace. The engine re-derives churn from its config; the logged
	// copy makes the on-disk input set self-contained and lets recovery
	// detect a config that no longer matches the log.
	KindChurn = "churn"
	// KindBarrier is one manual-mode clock barrier of a sharded daemon
	// (an /v2/advance target or a drain). Sharded recovery re-executes
	// barriers to reproduce the exact Δ-round windows — and with them
	// the merged event stream's total order — that the original run
	// emitted; per-record At replay alone cannot, because the window
	// boundaries are not recoverable from arrival timestamps (an
	// arrival at a window boundary belongs to the NEXT window).
	// Single-shard logs never contain barriers.
	KindBarrier = "barrier"
)

// BarrierRecord is KindBarrier's payload: the clock target of one
// fan-out advance, or a drain.
type BarrierRecord struct {
	To    float64 `json:"to"`
	Drain bool    `json:"drain,omitempty"`
}

// Record is one WAL entry. Seq numbers are assigned by Log.Append,
// contiguous from 1; exactly one payload field is set, per Kind.
type Record struct {
	Seq  uint64 `json:"seq"`
	Kind string `json:"kind"`
	// At is the virtual clock at the moment the record was appended.
	// Replay advances the engine to At before re-applying the record, so
	// a re-ingested job lands in the event queue in the same position —
	// same arrival clamp, same tie order against engine-generated events
	// at the same timestamp (a submission right at a batch boundary must
	// join the next batch after recovery exactly as it did originally).
	// Zero in live mode, where ingest rides the wall tick and recovery is
	// best-effort: jobs resurrect at the recovered clock.
	At float64 `json:"at,omitempty"`
	// G is the record's global sequence number across a sharded
	// daemon's log set (coordinator log + one log per shard): assigned
	// contiguously from 1 by the server, monotone within every log.
	// Recovery merges the logs by G to reproduce the exact order the
	// loop goroutine applied the records in, and truncates each log to
	// the longest globally contiguous G-prefix — a crash between the
	// per-log fsyncs of one group commit can persist a later record
	// while losing an earlier one, and a gapped history must not
	// replay. Zero (omitted) on single-engine logs, whose one Seq
	// stream is already the total order.
	G       uint64           `json:"g,omitempty"`
	Arrival *api.TraceRecord `json:"arrival,omitempty"`
	Tenant  *api.TenantSpec  `json:"tenant,omitempty"`
	Churn   *grid.ChurnEvent `json:"churn,omitempty"`
	Barrier *BarrierRecord   `json:"barrier,omitempty"`
}

// Validate checks the kind/payload pairing.
func (r Record) Validate() error {
	switch r.Kind {
	case KindArrival:
		if r.Arrival == nil {
			return fmt.Errorf("wal: arrival record %d without payload", r.Seq)
		}
	case KindTenant:
		if r.Tenant == nil {
			return fmt.Errorf("wal: tenant record %d without payload", r.Seq)
		}
	case KindChurn:
		if r.Churn == nil {
			return fmt.Errorf("wal: churn record %d without payload", r.Seq)
		}
	case KindBarrier:
		if r.Barrier == nil {
			return fmt.Errorf("wal: barrier record %d without payload", r.Seq)
		}
	default:
		return fmt.Errorf("wal: record %d has unknown kind %q", r.Seq, r.Kind)
	}
	return nil
}

// Frame layout: 8 lowercase hex CRC32-IEEE characters over the JSON
// payload, one space, the payload, one newline. The checksum guards
// against bit flips; the trailing newline (plus the JSON parse) guards
// against torn writes — a partial last line can never checksum clean
// AND parse AND carry the next contiguous sequence number.
const frameHeader = 9 // 8 hex chars + space

// appendFrame appends the framed payload to buf.
func appendFrame(buf, payload []byte) []byte {
	var crc [4]byte
	sum := crc32.ChecksumIEEE(payload)
	crc[0], crc[1], crc[2], crc[3] = byte(sum>>24), byte(sum>>16), byte(sum>>8), byte(sum)
	var hexbuf [8]byte
	hex.Encode(hexbuf[:], crc[:])
	buf = append(buf, hexbuf[:]...)
	buf = append(buf, ' ')
	buf = append(buf, payload...)
	return append(buf, '\n')
}

// EncodeRecord renders one record as a framed line.
func EncodeRecord(rec Record) ([]byte, error) {
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	return appendFrame(nil, payload), nil
}

// decodeFrame splits one complete line (newline excluded) into its
// payload, verifying the checksum.
func decodeFrame(line []byte) ([]byte, bool) {
	if len(line) < frameHeader+2 || line[8] != ' ' { // "{}" is the minimal payload
		return nil, false
	}
	var crc [4]byte
	if _, err := hex.Decode(crc[:], line[:8]); err != nil {
		return nil, false
	}
	payload := line[frameHeader:]
	want := uint32(crc[0])<<24 | uint32(crc[1])<<16 | uint32(crc[2])<<8 | uint32(crc[3])
	if crc32.ChecksumIEEE(payload) != want {
		return nil, false
	}
	return payload, true
}

// DecodeAll decodes the longest valid record prefix of data: frames
// must be whole lines, checksum clean, JSON-parseable, kind-valid, and
// carry contiguous sequence numbers starting at first. It returns the
// decoded records and the byte length of the valid prefix — everything
// past it (a torn write, a flipped bit, a truncated tail, or garbage)
// is for the caller to discard. DecodeAll never fails: the worst input
// yields (nil, 0).
func DecodeAll(data []byte, first uint64) ([]Record, int) {
	var recs []Record
	valid := 0
	expect := first
	for len(data[valid:]) > 0 {
		rest := data[valid:]
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			break // incomplete last line: torn write
		}
		payload, ok := decodeFrame(rest[:nl])
		if !ok {
			break
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			break
		}
		if rec.Seq != expect || rec.Validate() != nil {
			break
		}
		recs = append(recs, rec)
		expect++
		valid += nl + 1
	}
	return recs, valid
}
