package wal

import (
	"strings"
	"testing"

	"trustgrid/internal/api"
	"trustgrid/internal/grid"
)

// TestRecordValidate pins the kind/payload pairing: each kind demands
// its own payload field, anything else is rejected.
func TestRecordValidate(t *testing.T) {
	arr := &api.TraceRecord{ID: 1, Workload: 100, Nodes: 1, SD: 0.5}
	ten := &api.TenantSpec{ID: "acme", Weight: 1}
	chn := &grid.ChurnEvent{Time: 10, Site: 0, Kind: grid.ChurnCrash}

	valid := []Record{
		{Seq: 1, Kind: KindArrival, Arrival: arr},
		{Seq: 2, Kind: KindTenant, Tenant: ten},
		{Seq: 3, Kind: KindChurn, Churn: chn},
	}
	for _, rec := range valid {
		if err := rec.Validate(); err != nil {
			t.Errorf("valid %s record rejected: %v", rec.Kind, err)
		}
	}

	invalid := map[string]Record{
		"arrival without payload": {Seq: 1, Kind: KindArrival},
		"tenant without payload":  {Seq: 2, Kind: KindTenant},
		"churn without payload":   {Seq: 3, Kind: KindChurn},
		"unknown kind":            {Seq: 4, Kind: "checkpoint", Arrival: arr},
		"empty kind":              {Seq: 5},
	}
	for name, rec := range invalid {
		if err := rec.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestEncodeRecordRejectsInvalid: the encoder refuses to frame a record
// that would fail validation on replay.
func TestEncodeRecordRejectsInvalid(t *testing.T) {
	if _, err := EncodeRecord(Record{Seq: 1, Kind: "bogus"}); err == nil {
		t.Fatal("invalid record encoded")
	}
	line, err := EncodeRecord(testRecord(0))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(line), "\n") || line[8] != ' ' {
		t.Fatalf("frame shape wrong: %q", line)
	}
}

// TestDecodeFrameShortLine: frames shorter than header+minimal payload
// and frames with a corrupted hex header are rejected, not sliced out
// of bounds.
func TestDecodeFrameShortLine(t *testing.T) {
	for _, line := range []string{"", "00000000", "00000000 ", "zzzzzzzz {}", "00000000_{}"} {
		if _, ok := decodeFrame([]byte(line)); ok {
			t.Errorf("malformed frame %q accepted", line)
		}
	}
}
