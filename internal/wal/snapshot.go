package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

func snapshotName(seq uint64) string { return fmt.Sprintf("snap-%016d.json", seq) }

// SnapshotRef locates one on-disk snapshot and the last WAL sequence
// number it covers: recovery is "load payload, then replay records with
// Seq > Seq".
type SnapshotRef struct {
	Seq  uint64
	Path string
}

// WriteSnapshot atomically persists a snapshot covering every record up
// to and including seq: temp file, fsync, rename, directory fsync. A
// crash at any point leaves either the old set or the old set plus the
// complete new snapshot — never a partial one under the real name. It
// does not commit the log; callers snapshot at a point they have just
// committed.
func (l *Log) WriteSnapshot(seq uint64, payload []byte) error {
	if seq > l.lastSeq {
		return fmt.Errorf("wal: snapshot at seq %d beyond last appended %d", seq, l.lastSeq)
	}
	final := filepath.Join(l.dir, snapshotName(seq))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(payload); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	return l.syncDir()
}

// Snapshots lists the directory's snapshots newest first. Recovery
// walks the list and uses the first one that loads cleanly.
func (l *Log) Snapshots() ([]SnapshotRef, error) {
	return listSnapshots(l.dir)
}

func listSnapshots(dir string) ([]SnapshotRef, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []SnapshotRef
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".json"), 10, 64)
		if err != nil {
			continue
		}
		out = append(out, SnapshotRef{Seq: seq, Path: filepath.Join(dir, name)})
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Seq > out[k].Seq })
	return out, nil
}

// ReadSnapshot loads a snapshot's payload.
func ReadSnapshot(ref SnapshotRef) ([]byte, error) { return os.ReadFile(ref.Path) }

// GC keeps the newest keep snapshots (at least one) and removes older
// ones, then removes every non-active segment whose records are all
// covered by the oldest kept snapshot — those records can never be
// replayed again. Keeping two snapshots means recovery survives the
// newest one being unreadable.
func (l *Log) GC(keep int) error {
	if keep < 1 {
		keep = 1
	}
	snaps, err := l.Snapshots()
	if err != nil {
		return err
	}
	if len(snaps) == 0 {
		return nil
	}
	if len(snaps) > keep {
		for _, s := range snaps[keep:] {
			if err := os.Remove(s.Path); err != nil {
				return err
			}
		}
		snaps = snaps[:keep]
	}
	oldest := snaps[len(snaps)-1].Seq
	segs, err := segments(l.dir)
	if err != nil {
		return err
	}
	for i, s := range segs {
		// Segment i spans [firstSeq, next.firstSeq-1]; it is dead once the
		// oldest kept snapshot covers its last record. The active (final)
		// segment always stays.
		if i+1 >= len(segs) || segs[i+1].firstSeq > oldest+1 {
			break
		}
		if err := os.Remove(s.path); err != nil {
			return err
		}
	}
	return l.syncDir()
}
