package wal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"trustgrid/internal/api"
	"trustgrid/internal/grid"
)

func testRecord(i int) Record {
	switch i % 3 {
	case 0:
		return Record{Kind: KindArrival, Arrival: &api.TraceRecord{
			ID: i, Arrival: float64(i) * 10, Workload: 500, Nodes: 1, SD: 0.7, Tenant: "acme",
		}}
	case 1:
		return Record{Kind: KindTenant, Tenant: &api.TenantSpec{
			ID: "acme", Weight: 2, MaxQueue: 100,
		}}
	default:
		return Record{Kind: KindChurn, Churn: &grid.ChurnEvent{
			Time: float64(i), Site: i % 4, Kind: grid.ChurnCrash,
		}}
	}
}

func replayAll(t *testing.T, l *Log, after uint64) []Record {
	t.Helper()
	var out []Record
	if err := l.Replay(after, func(r Record) error { out = append(out, r); return nil }); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAppendCommitReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		seq, err := l.Append(testRecord(i))
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("record %d got seq %d", i, seq)
		}
		if i == 7 || i == 13 {
			if err := l.Rotate(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, l, 0)
	if len(got) != n {
		t.Fatalf("replayed %d records, wrote %d", len(got), n)
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
	}
	if tail := replayAll(t, l, 15); len(tail) != n-15 {
		t.Fatalf("replay after 15 returned %d records, want %d", len(tail), n-15)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the full chain (3 segments) must recover intact.
	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastSeq() != n {
		t.Fatalf("reopened LastSeq = %d, want %d", l2.LastSeq(), n)
	}
	if seq, err := l2.Append(testRecord(n)); err != nil || seq != n+1 {
		t.Fatalf("append after reopen: seq=%d err=%v", seq, err)
	}
}

// corrupt writes a damaged tail onto the last segment and reports the
// path it damaged.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := segments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s (err=%v)", dir, err)
	}
	return segs[len(segs)-1].path
}

func TestTornTailRecovery(t *testing.T) {
	for _, tc := range []struct {
		name   string
		damage func(t *testing.T, path string)
		lost   int // records the damage destroys
	}{
		{"truncated-mid-line", func(t *testing.T, path string) {
			data, _ := os.ReadFile(path)
			if err := os.Truncate(path, int64(len(data)-7)); err != nil {
				t.Fatal(err)
			}
		}, 1},
		{"torn-append", func(t *testing.T, path string) {
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			f.WriteString("deadbeef {\"seq\":999") // no newline: torn write
		}, 0},
		{"bit-flip-last-record", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// Flip a bit inside the last line's payload.
			idx := strings.LastIndexByte(strings.TrimRight(string(data), "\n"), '\n') + 12
			data[idx] ^= 0x40
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}, 1},
		{"garbage-tail", func(t *testing.T, path string) {
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			f.WriteString("not a frame at all\nxx\n")
		}, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			const n = 10
			for i := 0; i < n; i++ {
				if _, err := l.Append(testRecord(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			tc.damage(t, lastSegment(t, dir))

			l2, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			want := uint64(n - tc.lost)
			if l2.LastSeq() != want {
				t.Fatalf("recovered LastSeq = %d, want %d", l2.LastSeq(), want)
			}
			recs := replayAll(t, l2, 0)
			if len(recs) != int(want) {
				t.Fatalf("replayed %d records, want %d", len(recs), want)
			}
			// The writer must resume the sequence where the valid prefix
			// ends, over the repaired file.
			if seq, err := l2.Append(testRecord(99)); err != nil || seq != want+1 {
				t.Fatalf("append after recovery: seq=%d err=%v", seq, err)
			}
			if err := l2.Commit(); err != nil {
				t.Fatal(err)
			}
			if recs := replayAll(t, l2, 0); len(recs) != int(want)+1 {
				t.Fatalf("after recovery append, replayed %d records, want %d", len(recs), want+1)
			}
		})
	}
}

func TestSegmentGapDropsSuffix(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, err := l.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
		if i%4 == 3 {
			if err := l.Rotate(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := segments(dir)
	if err != nil || len(segs) < 3 {
		t.Fatalf("want >=3 segments, got %d (err=%v)", len(segs), err)
	}
	// Losing a middle segment orphans everything after it.
	if err := os.Remove(segs[1].path); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastSeq() != 4 {
		t.Fatalf("LastSeq = %d after losing segment 2, want 4", l2.LastSeq())
	}
	if left, err := segments(dir); err != nil || len(left) != 1 {
		t.Fatalf("orphaned segments not removed: %d left (err=%v)", len(left), err)
	}
}

func TestSnapshotWriteListGC(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 30; i++ {
		if _, err := l.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
		if (i+1)%10 == 0 {
			if err := l.Commit(); err != nil {
				t.Fatal(err)
			}
			if err := l.WriteSnapshot(l.LastSeq(), []byte(`{"at":`+string(rune('0'+i))+`}`)); err != nil {
				t.Fatal(err)
			}
			if err := l.Rotate(); err != nil {
				t.Fatal(err)
			}
		}
	}
	snaps, err := l.Snapshots()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 3 || snaps[0].Seq != 30 || snaps[2].Seq != 10 {
		t.Fatalf("snapshot list wrong: %+v", snaps)
	}
	if err := l.GC(2); err != nil {
		t.Fatal(err)
	}
	snaps, _ = l.Snapshots()
	if len(snaps) != 2 || snaps[1].Seq != 20 {
		t.Fatalf("after GC: %+v", snaps)
	}
	// Records 1–20 are covered by the oldest kept snapshot; their
	// segments (1–10, 11–20) are gone, the active chain remains.
	segs, _ := segments(dir)
	if len(segs) == 0 || segs[0].firstSeq != 21 {
		t.Fatalf("segment GC wrong: %+v", segs)
	}
	if recs := replayAll(t, l, 20); len(recs) != 10 {
		t.Fatalf("replay after snapshot seq: %d records, want 10", len(recs))
	}

	// Snapshot beyond the appended sequence is a caller bug.
	if err := l.WriteSnapshot(l.LastSeq()+1, []byte("{}")); err == nil {
		t.Fatal("snapshot beyond LastSeq did not fail")
	}
}

func TestOpenSweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, snapshotName(5)+".tmp")
	if err := os.WriteFile(stale, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp file survived Open: %v", err)
	}
}

// TestSnapshotReadBack: WriteSnapshot → Snapshots → ReadSnapshot is a
// byte-exact round trip, and a ref pointing at a removed file reports
// the read error instead of fabricating state.
func TestSnapshotReadBack(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 4; i++ {
		if _, err := l.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"now":40,"queues":[1,2,3]}`)
	if err := l.WriteSnapshot(l.LastSeq(), payload); err != nil {
		t.Fatal(err)
	}
	snaps, err := l.Snapshots()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || snaps[0].Seq != 4 {
		t.Fatalf("snapshot list: %+v", snaps)
	}
	got, err := ReadSnapshot(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("payload round trip: got %q want %q", got, payload)
	}
	if err := os.Remove(snaps[0].Path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(snaps[0]); err == nil {
		t.Fatal("reading a removed snapshot succeeded")
	}
}

// TestRotateEmptySegmentIsNoop: rotating an empty active segment does
// nothing (no zero-record segment files pile up), and rotation after
// appends survives reopen with the full record set intact.
func TestRotateEmptySegmentIsNoop(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Rotate(); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("empty rotations created segments: %+v", segs)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	// Rotate committed; the next append opens a fresh segment.
	if _, err := l.Append(testRecord(5)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if recs := replayAll(t, l2, 0); len(recs) != 6 {
		t.Fatalf("replay after rotate+reopen: %d records, want 6", len(recs))
	}
}
