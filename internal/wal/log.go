package wal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

func segmentName(firstSeq uint64) string { return fmt.Sprintf("wal-%016d.log", firstSeq) }

// segmentRef locates one on-disk segment.
type segmentRef struct {
	firstSeq uint64
	path     string
}

// segments lists the directory's WAL segments sorted by first sequence
// number (which the zero-padded name makes lexical order).
func segments(dir string) ([]segmentRef, error) {
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []segmentRef
	for _, e := range names {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 10, 64)
		if err != nil {
			continue // not ours
		}
		out = append(out, segmentRef{firstSeq: seq, path: filepath.Join(dir, name)})
	}
	sort.Slice(out, func(i, k int) bool { return out[i].firstSeq < out[k].firstSeq })
	return out, nil
}

// Log is an append-only, CRC-framed record log over rotating segment
// files, with group fsync: Append buffers, Commit makes everything
// appended so far durable. Not safe for concurrent use — the daemon's
// loop goroutine owns it.
type Log struct {
	dir      string
	f        *os.File
	w        *bufio.Writer
	buf      []byte // frame scratch
	lastSeq  uint64
	segFirst uint64 // first seq of the active segment
	dirty    bool   // appended since last Commit
}

// Open recovers the log in dir (creating it if needed): it walks the
// segment chain, truncates the first torn or corrupt point to the last
// valid record, removes everything beyond it, and positions the writer
// so the next Append continues the sequence. Stale temp files from an
// interrupted snapshot write are swept out.
func Open(dir string) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if tmp, err := filepath.Glob(filepath.Join(dir, "*.tmp")); err == nil {
		for _, p := range tmp {
			os.Remove(p)
		}
	}
	segs, err := segments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, lastSeq: 0, segFirst: 1}
	expect := uint64(1)
	if len(segs) > 0 {
		// GC may have removed fully-covered leading segments; the chain
		// starts wherever the oldest survivor does.
		expect = segs[0].firstSeq
	}
	active := "" // surviving segment to append to
	for i, s := range segs {
		if s.firstSeq != expect {
			// A gap in the chain: this segment and everything after it
			// cannot be contiguous with the valid prefix. Remove them so
			// a future rotation cannot collide with stale files.
			for _, later := range segs[i:] {
				os.Remove(later.path)
			}
			break
		}
		data, err := os.ReadFile(s.path)
		if err != nil {
			return nil, err
		}
		recs, n := DecodeAll(data, expect)
		expect += uint64(len(recs))
		if n < len(data) {
			// Torn or corrupt tail: keep the valid prefix, drop the rest
			// of the chain (a record is only meaningful with its full
			// prefix). A non-first segment whose prefix is empty adds
			// nothing and is dropped whole.
			if n > 0 || i == 0 {
				if err := os.Truncate(s.path, int64(n)); err != nil {
					return nil, err
				}
				active = s.path
				l.segFirst = s.firstSeq
			} else {
				os.Remove(s.path)
			}
			for _, later := range segs[i+1:] {
				os.Remove(later.path)
			}
			break
		}
		active = s.path
		l.segFirst = s.firstSeq
	}
	l.lastSeq = expect - 1
	if active == "" {
		l.segFirst = l.lastSeq + 1
		active = filepath.Join(dir, segmentName(l.segFirst))
	}
	f, err := os.OpenFile(active, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	l.f = f
	l.w = bufio.NewWriterSize(f, 1<<16)
	if err := l.syncDir(); err != nil {
		l.Close()
		return nil, err
	}
	return l, nil
}

// syncDir fsyncs the directory so renames, truncations and removals
// performed during recovery or snapshotting are themselves durable.
func (l *Log) syncDir() error {
	d, err := os.Open(l.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// LastSeq returns the sequence number of the last appended (or
// recovered) record; 0 means the log is empty.
func (l *Log) LastSeq() uint64 { return l.lastSeq }

// Append assigns the next sequence number, frames the record and
// buffers it. The record is NOT durable until Commit returns.
func (l *Log) Append(rec Record) (uint64, error) {
	rec.Seq = l.lastSeq + 1
	if err := rec.Validate(); err != nil {
		return 0, err
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return 0, err
	}
	l.buf = appendFrame(l.buf[:0], payload)
	if _, err := l.w.Write(l.buf); err != nil {
		return 0, err
	}
	l.lastSeq = rec.Seq
	l.dirty = true
	return rec.Seq, nil
}

// Commit flushes buffered appends and fsyncs the active segment: the
// group-commit point. Everything appended before it is durable after
// it. A clean log is a no-op, so callers can commit per loop iteration
// without paying an fsync when nothing happened.
func (l *Log) Commit() error {
	if !l.dirty {
		return nil
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.dirty = false
	return nil
}

// Rotate commits and closes the active segment and starts a fresh one
// at the next sequence number. A rotation with nothing written to the
// active segment is a no-op. The daemon rotates right after each
// snapshot, so GC can drop whole segments the snapshot covers.
func (l *Log) Rotate() error {
	if l.segFirst == l.lastSeq+1 {
		return nil
	}
	if err := l.Commit(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.segFirst = l.lastSeq + 1
	f, err := os.OpenFile(filepath.Join(l.dir, segmentName(l.segFirst)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	l.f = f
	l.w = bufio.NewWriterSize(f, 1<<16)
	return l.syncDir()
}

// TruncateTail discards every record with sequence number greater than
// keep, repositioning the writer so the next Append continues at
// keep+1. Sharded recovery uses it to cut each log of a multi-log set
// back to the longest globally contiguous prefix (Record.G): a crash
// between the per-log fsyncs of one group commit can leave one log
// holding a record whose global predecessor — in a sibling log — never
// became durable, and that suffix must go before replay. A no-op when
// nothing follows keep; an error when keep predates the GC horizon.
func (l *Log) TruncateTail(keep uint64) error {
	if keep >= l.lastSeq {
		return nil
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.f, l.w = nil, nil
	segs, err := segments(l.dir)
	if err != nil {
		return err
	}
	if len(segs) == 0 || keep+1 < segs[0].firstSeq {
		return fmt.Errorf("wal: cannot truncate to %d: the log starts at %d", keep, segs[0].firstSeq)
	}
	active := ""
	for _, s := range segs {
		if s.firstSeq > keep {
			os.Remove(s.path)
			continue
		}
		data, err := os.ReadFile(s.path)
		if err != nil {
			return err
		}
		recs, _ := DecodeAll(data, s.firstSeq)
		if s.firstSeq+uint64(len(recs))-1 <= keep {
			active, l.segFirst = s.path, s.firstSeq
			continue
		}
		// The cut lands inside this segment. Records are whole lines, so
		// the byte length of the kept prefix is the offset just past the
		// (keep-firstSeq+1)-th newline.
		off := 0
		for i := uint64(0); i < keep-s.firstSeq+1; i++ {
			nl := bytes.IndexByte(data[off:], '\n')
			off += nl + 1
		}
		if err := os.Truncate(s.path, int64(off)); err != nil {
			return err
		}
		active, l.segFirst = s.path, s.firstSeq
	}
	l.lastSeq = keep
	if active == "" {
		l.segFirst = keep + 1
		active = filepath.Join(l.dir, segmentName(l.segFirst))
	}
	f, err := os.OpenFile(active, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.w = bufio.NewWriterSize(f, 1<<16)
	l.dirty = false
	return l.syncDir()
}

// Replay streams every record with sequence number strictly greater
// than after, in order, to fn. Called on a live log it flushes buffered
// appends first so the files are complete; it does not fsync.
func (l *Log) Replay(after uint64, fn func(Record) error) error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	segs, err := segments(l.dir)
	if err != nil {
		return err
	}
	for _, s := range segs {
		if s.firstSeq > l.lastSeq {
			break
		}
		data, err := os.ReadFile(s.path)
		if err != nil {
			return err
		}
		recs, n := DecodeAll(data, s.firstSeq)
		if n < len(data) {
			return fmt.Errorf("wal: segment %s corrupt at offset %d (recovered log should be clean)", s.path, n)
		}
		for _, rec := range recs {
			if rec.Seq <= after {
				continue
			}
			if err := fn(rec); err != nil {
				return err
			}
		}
	}
	return nil
}

// Close flushes, fsyncs and closes the active segment.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	err := l.Commit()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
