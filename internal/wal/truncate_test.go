package wal

import (
	"strings"
	"testing"
)

// TestTruncateTail covers the sharded group-commit repair path: after a
// crash between the per-log fsyncs of one global commit, recovery cuts
// every log back to the globally contiguous prefix. The cut must be
// physical — a reopened log continues from the truncated seq — and must
// work mid-segment, across whole segments, and as a no-op.
func TestTruncateTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if _, err := l.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
		if i == 7 || i == 13 {
			if err := l.Rotate(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}

	// No-op: keep >= lastSeq.
	if err := l.TruncateTail(20); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncateTail(25); err != nil {
		t.Fatal(err)
	}
	if got := l.LastSeq(); got != 20 {
		t.Fatalf("after no-op truncate LastSeq = %d, want 20", got)
	}

	// Mid-segment cut inside the live third segment (records 15..20),
	// dropping the segment boundary at 14 too: keep 11 lands inside the
	// second segment (8..14).
	if err := l.TruncateTail(11); err != nil {
		t.Fatal(err)
	}
	if got := l.LastSeq(); got != 11 {
		t.Fatalf("after truncate(11) LastSeq = %d, want 11", got)
	}
	recs := replayAll(t, l, 0)
	if len(recs) != 11 || recs[len(recs)-1].Seq != 11 {
		t.Fatalf("replay after truncate: %d records, last seq %d", len(recs), recs[len(recs)-1].Seq)
	}

	// The truncated log keeps appending with contiguous seqs...
	seq, err := l.Append(testRecord(100))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 12 {
		t.Fatalf("append after truncate got seq %d, want 12", seq)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// ...and the cut survives a reopen byte-for-byte.
	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.LastSeq(); got != 12 {
		t.Fatalf("reopened LastSeq = %d, want 12", got)
	}
	recs = replayAll(t, l2, 0)
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("reopened replay record %d has seq %d", i, r.Seq)
		}
	}
}

// TestTruncateTailBelowStart pins the refusal to cut below the log's
// first retained record (GC may have removed the prefix a deeper cut
// would need — such a history is unrecoverable, not repairable).
func TestTruncateTailBelowStart(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 10; i++ {
		if _, err := l.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
		if i == 5 {
			if err := l.Rotate(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	// Snapshot at 8 + GC drops the first segment (records 1..6).
	if err := l.WriteSnapshot(8, []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := l.GC(1); err != nil {
		t.Fatal(err)
	}
	// Cutting to 9 is fine; cutting to 3 would need segment one back.
	if err := l.TruncateTail(9); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncateTail(3); err == nil {
		t.Fatal("TruncateTail below the first retained record must fail")
	}
}

// TestBarrierRecordRoundTrip checks the new sharded-WAL record surface:
// KindBarrier validation and the G global sequence field surviving the
// frame encoding.
func TestBarrierRecordRoundTrip(t *testing.T) {
	good := []Record{
		{Seq: 1, Kind: KindBarrier, G: 7, Barrier: &BarrierRecord{To: 300}},
		{Seq: 2, Kind: KindBarrier, G: 8, Barrier: &BarrierRecord{Drain: true}},
	}
	for _, r := range good {
		if err := r.Validate(); err != nil {
			t.Fatalf("valid barrier rejected: %v", err)
		}
		line, err := EncodeRecord(r)
		if err != nil {
			t.Fatal(err)
		}
		decoded, n := DecodeAll(line, r.Seq)
		if len(decoded) != 1 || n != len(line) {
			t.Fatalf("frame did not decode whole: %d records, %d/%d bytes", len(decoded), n, len(line))
		}
		back := decoded[0]
		if back.G != r.G || back.Kind != KindBarrier || *back.Barrier != *r.Barrier {
			t.Fatalf("round trip lost data: %+v vs %+v", back, r)
		}
	}
	bad := Record{Seq: 3, Kind: KindBarrier}
	if err := bad.Validate(); err == nil {
		t.Fatal("barrier record without payload must be invalid")
	}
	// G stays omitted on single-engine records so pre-sharding logs and
	// -shards 1 logs are byte-identical.
	line, err := EncodeRecord(Record{Seq: 4, Kind: KindTenant, Tenant: testRecord(1).Tenant})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(line), `"g"`) {
		t.Fatalf("G=0 must be omitted from the frame: %s", line)
	}
}
