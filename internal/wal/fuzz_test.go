package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// buildLog renders n records as a framed segment body starting at seq 1.
func buildLog(t testing.TB, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	for i := 0; i < n; i++ {
		rec := testRecord(i)
		rec.Seq = uint64(i + 1)
		line, err := EncodeRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(line)
	}
	return buf.Bytes()
}

// FuzzWALReplay feeds arbitrary bytes to the WAL reader as a segment
// file: decoding must never panic, must accept only a contiguous valid
// prefix, and Open over the same bytes must repair the directory to
// exactly that prefix and support appending past it. Seeds cover the
// interesting shapes: a clean log, a truncated tail, a torn append, a
// flipped bit, and raw garbage.
func FuzzWALReplay(f *testing.F) {
	clean := buildLog(f, 6)
	f.Add(clean)
	f.Add(clean[:len(clean)-9])                                                              // truncated mid-line
	f.Add(append(append([]byte{}, clean...), "89abcdef {\"seq\":7,\"kind\":\"arrival\""...)) // torn append
	flipped := append([]byte{}, clean...)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)
	f.Add([]byte("not a log\n\n\x00\x01\x02"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, n := DecodeAll(data, 1)
		if n > len(data) {
			t.Fatalf("valid prefix %d longer than input %d", n, len(data))
		}
		// The accepted prefix must re-decode to the same records: the
		// reader's verdict is stable, not positional luck.
		again, n2 := DecodeAll(data[:n], 1)
		if n2 != n || len(again) != len(recs) {
			t.Fatalf("re-decode of valid prefix diverged: %d/%d bytes, %d/%d records", n2, n, len(again), len(recs))
		}
		for i, r := range recs {
			if r.Seq != uint64(i+1) {
				t.Fatalf("record %d carries seq %d", i, r.Seq)
			}
			if err := r.Validate(); err != nil {
				t.Fatalf("accepted record invalid: %v", err)
			}
		}

		// Open must recover to exactly the valid prefix and keep working.
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir)
		if err != nil {
			t.Fatalf("Open on damaged log failed: %v", err)
		}
		defer l.Close()
		if l.LastSeq() != uint64(len(recs)) {
			t.Fatalf("recovered LastSeq %d, valid prefix has %d records", l.LastSeq(), len(recs))
		}
		var replayed int
		if err := l.Replay(0, func(Record) error { replayed++; return nil }); err != nil {
			t.Fatalf("replay of repaired log failed: %v", err)
		}
		if replayed != len(recs) {
			t.Fatalf("repaired log replays %d records, want %d", replayed, len(recs))
		}
		if seq, err := l.Append(testRecord(0)); err != nil || seq != uint64(len(recs))+1 {
			t.Fatalf("append after repair: seq=%d err=%v", seq, err)
		}
		if err := l.Commit(); err != nil {
			t.Fatal(err)
		}
	})
}
