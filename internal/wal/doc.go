// Package wal provides the daemon's durable-state layer (DESIGN.md
// §10): a write-ahead log of the three deterministic input streams —
// accepted arrivals, tenant mutations, and the churn trace — plus
// atomically written engine snapshots, so a killed daemon can rebuild
// exactly the state it held and every post-recovery placement matches
// what the uninterrupted run would have produced.
//
// The log is a sequence of segment files ("wal-%016d.log", named by the
// first sequence number they hold) of CRC-guarded JSONL frames. The
// reader is torn-tail tolerant: a truncated, torn or bit-flipped tail
// stops decoding at the last valid record, and Open repairs the
// directory to that prefix. Snapshots ("snap-%016d.json", named by the
// last WAL sequence they cover) are written to a temp file, fsynced and
// renamed, so a crash mid-snapshot leaves the previous one intact.
// Recovery is: newest readable snapshot + replay of the WAL records
// after it.
package wal
