package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"trustgrid/internal/api"
	"trustgrid/internal/client"
	"trustgrid/internal/experiments"
	"trustgrid/internal/server"
)

func newManualServer(t *testing.T, cfg server.Config) (*server.Server, *client.Client) {
	t.Helper()
	setup := experiments.TestSetup()
	w, err := setup.PSAWorkload(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Sites = w.Sites
	if cfg.Algo == "" {
		cfg.Algo = "minmin"
	}
	cfg.Seed = 1
	cfg.Setup = setup
	if cfg.BatchInterval == 0 {
		cfg.BatchInterval = 1000
	}
	cfg.Manual = true
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { _, _ = srv.Stop(false) })
	return srv, client.New(ts.URL)
}

// TestClientContract drives every client method against a real server —
// the client IS the API's contract test, so this round-trips tenants,
// submission, the clock, metrics, sites and the event stream end to end.
func TestClientContract(t *testing.T) {
	_, c := newManualServer(t, server.Config{})
	ctx := context.Background()

	if err := c.Healthz(ctx); err != nil {
		t.Fatal(err)
	}
	spec, err := c.CreateTenant(ctx, api.TenantSpec{ID: "acme", Weight: 3, MaxQueue: 100})
	if err != nil {
		t.Fatal(err)
	}
	if spec.Weight != 3 {
		t.Fatalf("normalized spec: %+v", spec)
	}
	tenants, err := c.Tenants(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tenants) != 2 || tenants[0].ID != api.DefaultTenant || tenants[1].ID != "acme" {
		t.Fatalf("tenant list: %+v", tenants)
	}

	arr := 0.0
	ids, err := c.Submit(ctx, "acme", []api.JobSpec{
		{Arrival: &arr, Workload: 1000, SD: 0.7},
		{Arrival: &arr, Workload: 2000, SD: 0.8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("ids: %v", ids)
	}
	// Default tenant through the v1 shim.
	if _, err := c.Submit(ctx, "", []api.JobSpec{{Arrival: &arr, Workload: 500, SD: 0.6}}); err != nil {
		t.Fatal(err)
	}

	now, err := c.Advance(ctx, api.AdvanceRequest{To: 1000})
	if err != nil || now != 1000 {
		t.Fatalf("advance: %v %v", now, err)
	}
	res, err := c.Drain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Jobs != 3 {
		t.Fatalf("drained %d jobs, want 3", res.Summary.Jobs)
	}

	rep, err := c.Metrics(ctx, "acme")
	if err != nil {
		t.Fatal(err)
	}
	tm, ok := rep.Tenants["acme"]
	if !ok || tm.Placed < 2 || tm.Completed != 2 || tm.Queued != 0 {
		t.Fatalf("tenant metrics: %+v", rep.Tenants)
	}
	if _, other := rep.Tenants[api.DefaultTenant]; other {
		t.Fatalf("tenant filter leaked: %+v", rep.Tenants)
	}

	sites, err := c.Sites(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(sites.Sites) == 0 {
		t.Fatal("no sites")
	}

	// Event stream: acme's placed events only.
	es := c.Events(ctx, client.EventsOptions{Kinds: []string{"placed"}, Tenant: "acme"})
	defer es.Close()
	got := 0
	for {
		ev, err := es.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if ev.Kind != "placed" || ev.Tenant != "acme" {
			t.Fatalf("filter leaked %+v", ev)
		}
		got++
	}
	if got < 2 {
		t.Fatalf("saw %d acme placements, want >= 2", got)
	}
}

// TestClientErrorMapping pins the typed error contract: each status the
// server emits maps onto its errors.Is class, with the server's message
// and any Retry-After hint preserved.
func TestClientErrorMapping(t *testing.T) {
	_, c := newManualServer(t, server.Config{
		Tenants: []api.TenantSpec{{ID: "tiny", MaxQueue: 1}},
	})
	ctx := context.Background()
	arr := 0.0

	// 400: invalid job.
	_, err := c.Submit(ctx, "", []api.JobSpec{{Arrival: &arr, Workload: -5, SD: 0.7}})
	if !errors.Is(err, client.ErrBadRequest) {
		t.Fatalf("want ErrBadRequest, got %v", err)
	}
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.StatusCode != 400 || ae.Message == "" {
		t.Fatalf("APIError detail: %+v", ae)
	}

	// 404: unknown tenant.
	_, err = c.Submit(ctx, "nobody", []api.JobSpec{{Arrival: &arr, Workload: 5, SD: 0.7}})
	if !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if _, err = c.Metrics(ctx, "nobody"); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}

	// 409: duplicate tenant.
	if _, err = c.CreateTenant(ctx, api.TenantSpec{ID: "tiny"}); !errors.Is(err, client.ErrConflict) {
		t.Fatalf("want ErrConflict, got %v", err)
	}

	// 429: queue quota, with a Retry-After hint.
	if _, err = c.Submit(ctx, "tiny", []api.JobSpec{{Arrival: &arr, Workload: 5, SD: 0.7}}); err != nil {
		t.Fatal(err)
	}
	_, err = c.Submit(ctx, "tiny", []api.JobSpec{{Arrival: &arr, Workload: 5, SD: 0.7}})
	if !errors.Is(err, client.ErrOverQuota) {
		t.Fatalf("want ErrOverQuota, got %v", err)
	}
	if ra := client.RetryAfter(err); ra < time.Second {
		t.Fatalf("Retry-After hint missing: %v (%v)", ra, err)
	}
}

// TestClientUnavailable pins the 503 class once the daemon stops.
func TestClientUnavailable(t *testing.T) {
	srv, c := newManualServer(t, server.Config{})
	if _, err := srv.Stop(false); err != nil {
		t.Fatal(err)
	}
	if err := c.Healthz(context.Background()); !errors.Is(err, client.ErrUnavailable) {
		t.Fatalf("want ErrUnavailable, got %v", err)
	}
	arr := 0.0
	_, err := c.Submit(context.Background(), "", []api.JobSpec{{Arrival: &arr, Workload: 5, SD: 0.7}})
	if !errors.Is(err, client.ErrUnavailable) {
		t.Fatalf("want ErrUnavailable, got %v", err)
	}
}

// fakeEvents serves synthetic NDJSON pages: kill[conn] events into
// connection number conn, then a hard connection drop; total events
// overall, then clean closes. It records each connection's since.
type fakeEvents struct {
	t      *testing.T
	total  int64
	kill   map[int]int64 // connection index -> drop after this many events
	conns  int
	sinces []int64
}

func (f *fakeEvents) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	conn := f.conns
	f.conns++
	var since int64
	fmt.Sscan(r.URL.Query().Get("since"), &since)
	f.sinces = append(f.sinces, since)
	flusher := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	sent := int64(0)
	for seq := since; seq < f.total; seq++ {
		if limit, ok := f.kill[conn]; ok && sent == limit {
			// Abort the connection mid-stream, torn line included.
			_, _ = io.WriteString(w, `{"seq":`)
			flusher.Flush()
			panic(http.ErrAbortHandler)
		}
		b, _ := json.Marshal(api.Event{Seq: seq, Kind: "placed", Job: int(seq)})
		_, _ = w.Write(append(b, '\n'))
		flusher.Flush()
		sent++
	}
}

// TestEventStreamCursorResume drops the connection mid-stream (torn
// JSON line and all) and requires the follow iterator to redial from
// its cursor and deliver every event exactly once.
func TestEventStreamCursorResume(t *testing.T) {
	f := &fakeEvents{t: t, total: 10, kill: map[int]int64{0: 4}}
	ts := httptest.NewServer(f)
	defer ts.Close()

	es := client.New(ts.URL).Events(context.Background(), client.EventsOptions{Follow: true})
	defer es.Close()
	var seqs []int64
	for {
		ev, err := es.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, ev.Seq)
	}
	if len(seqs) != 10 {
		t.Fatalf("got %d events, want 10: %v", len(seqs), seqs)
	}
	for i, s := range seqs {
		if s != int64(i) {
			t.Fatalf("gap or duplicate at %d: %v", i, seqs)
		}
	}
	// First dial at 0, resume at 4 (after the 4 delivered events), and
	// one final no-progress dial that turned into io.EOF.
	if f.sinces[0] != 0 || f.sinces[1] != 4 {
		t.Fatalf("resume cursors: %v", f.sinces)
	}
	if es.Cursor() != 10 {
		t.Fatalf("cursor %d, want 10", es.Cursor())
	}
}

// TestEventStreamContextCancel cancels the context mid-follow and
// requires Next to return the context's error promptly.
func TestEventStreamContextCancel(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := json.Marshal(api.Event{Seq: 0, Kind: "placed"})
		_, _ = w.Write(append(b, '\n'))
		w.(http.Flusher).Flush()
		select {
		case <-r.Context().Done():
		case <-block:
		}
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	es := client.New(ts.URL).Events(ctx, client.EventsOptions{Follow: true})
	defer es.Close()
	if ev, err := es.Next(); err != nil || ev.Seq != 0 {
		t.Fatalf("first event: %+v %v", ev, err)
	}
	cancel()
	done := make(chan error, 1)
	go func() {
		_, err := es.Next()
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next did not observe cancellation")
	}
	// The stream stays dead: the terminal error is sticky.
	if _, err := es.Next(); !errors.Is(err, context.Canceled) {
		t.Fatalf("want sticky context.Canceled, got %v", err)
	}
}

// TestEventStreamNonFollowPage pins one-request semantics without
// follow: a page of max events, then io.EOF.
func TestEventStreamNonFollowPage(t *testing.T) {
	f := &fakeEvents{t: t, total: 8}
	ts := httptest.NewServer(f)
	defer ts.Close()

	es := client.New(ts.URL).Events(context.Background(), client.EventsOptions{Since: 3})
	defer es.Close()
	n := 0
	for {
		ev, err := es.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if ev.Seq < 3 {
			t.Fatalf("since ignored: %+v", ev)
		}
		n++
	}
	if n != 5 || f.conns != 1 {
		t.Fatalf("n=%d conns=%d, want 5 events on one connection", n, f.conns)
	}
}
