package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"

	"trustgrid/internal/api"
)

// Client talks to one trustgridd instance. The zero value is not
// usable; construct with New. Methods are safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client
}

// New returns a client for the daemon at base (scheme optional;
// "127.0.0.1:8421" works). Construction never fails — an unreachable
// daemon surfaces on the first call, like any other transport error.
func New(base string) *Client {
	base = strings.TrimRight(base, "/")
	if base != "" && !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{base: base, hc: http.DefaultClient}
}

// WithHTTPClient swaps the underlying *http.Client (timeouts, custom
// transports) and returns the client for chaining. Follow-mode event
// streams hold the connection open, so prefer per-request contexts over
// a global client timeout.
func (c *Client) WithHTTPClient(hc *http.Client) *Client {
	c.hc = hc
	return c
}

// BaseURL returns the normalized daemon base URL.
func (c *Client) BaseURL() string { return c.base }

// doJSON runs one request and decodes a JSON response into out (nil
// skips decoding). Non-2xx responses return *APIError.
func (c *Client) doJSON(ctx context.Context, method, path string, in, out any) error {
	var body *bytes.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	} else {
		body = bytes.NewReader(nil)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return errorFromResponse(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Healthz reports whether the daemon is serving (ErrUnavailable once it
// has stopped).
func (c *Client) Healthz(ctx context.Context) error {
	return c.doJSON(ctx, http.MethodGet, "/v1/healthz", nil, nil)
}

// CreateTenant registers a tenant (POST /v2/tenants) and returns the
// normalized document (defaulted weight). ErrConflict on duplicates.
func (c *Client) CreateTenant(ctx context.Context, spec api.TenantSpec) (api.TenantSpec, error) {
	var out api.TenantSpec
	err := c.doJSON(ctx, http.MethodPost, "/v2/tenants", spec, &out)
	return out, err
}

// Tenants lists every registered tenant in registration order.
func (c *Client) Tenants(ctx context.Context) ([]api.TenantSpec, error) {
	var out api.TenantList
	if err := c.doJSON(ctx, http.MethodGet, "/v2/tenants", nil, &out); err != nil {
		return nil, err
	}
	return out.Tenants, nil
}

// Submit submits jobs for a tenant (POST /v2/tenants/{id}/jobs) and
// returns the assigned job IDs. An empty tenant targets the default
// tenant through the /v1 shim — byte-for-byte the pre-v2 wire call.
// Typed failures: ErrBadRequest (validation/policy), ErrNotFound
// (unknown tenant), ErrOverQuota (queue quota; see RetryAfter),
// ErrUnavailable (daemon stopping).
func (c *Client) Submit(ctx context.Context, tenant string, jobs []api.JobSpec) ([]int, error) {
	path := "/v1/jobs"
	if tenant != "" {
		path = "/v2/tenants/" + url.PathEscape(tenant) + "/jobs"
	}
	var out api.SubmitResponse
	if err := c.doJSON(ctx, http.MethodPost, path, api.SubmitRequest{Jobs: jobs}, &out); err != nil {
		return nil, err
	}
	return out.IDs, nil
}

// Metrics fetches the metrics report; a non-empty tenant narrows the
// per-tenant section to that tenant (ErrNotFound if unknown).
func (c *Client) Metrics(ctx context.Context, tenant string) (*api.MetricsReport, error) {
	path := "/v2/metrics"
	if tenant != "" {
		path += "?tenant=" + url.QueryEscape(tenant)
	}
	var out api.MetricsReport
	if err := c.doJSON(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Sites fetches the live per-site state (liveness, effective speed,
// trust estimate and reputation evidence on dynamic grids).
func (c *Client) Sites(ctx context.Context) (*api.SitesReport, error) {
	var out api.SitesReport
	if err := c.doJSON(ctx, http.MethodGet, "/v2/sites", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Advance drives the manual-mode virtual clock and returns the clock
// after the step. ErrConflict on a live-clock daemon.
func (c *Client) Advance(ctx context.Context, req api.AdvanceRequest) (float64, error) {
	var out api.AdvanceResponse
	if err := c.doJSON(ctx, http.MethodPost, "/v2/advance", req, &out); err != nil {
		return 0, err
	}
	return out.VirtualNow, nil
}

// Drain schedules everything accepted so far to completion (manual
// mode) and returns the aggregate result. ErrConflict on a live-clock
// daemon.
func (c *Client) Drain(ctx context.Context) (*api.DrainResponse, error) {
	var out api.DrainResponse
	if err := c.doJSON(ctx, http.MethodPost, "/v2/drain", struct{}{}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// EventsOptions filters and positions an event stream.
type EventsOptions struct {
	// Since is the starting cursor (sequence number), default 0.
	Since int64
	// Max bounds a non-follow read to one page of Max events.
	Max int
	// Follow keeps the stream open, resuming across dropped connections.
	Follow bool
	// Kinds filters to these event kinds (e.g. "placed", "completed").
	Kinds []string
	// Tenant filters to one tenant's job events.
	Tenant string
}

func (o *EventsOptions) query(cursor int64) string {
	q := url.Values{}
	q.Set("since", fmt.Sprint(cursor))
	if o.Max > 0 {
		q.Set("max", fmt.Sprint(o.Max))
	}
	if o.Follow {
		q.Set("follow", "1")
	}
	if len(o.Kinds) > 0 {
		q.Set("kinds", strings.Join(o.Kinds, ","))
	}
	if o.Tenant != "" {
		q.Set("tenant", o.Tenant)
	}
	return "/v2/events?" + q.Encode()
}

// Events opens the NDJSON event stream. The returned iterator owns a
// connection; always Close it. See EventStream for the resume contract.
func (c *Client) Events(ctx context.Context, opts EventsOptions) *EventStream {
	return &EventStream{c: c, ctx: ctx, opts: opts, cursor: opts.Since}
}
