// Package client is the typed Go client for the trustgridd HTTP API
// (v2, with the v1 shim reachable as the default tenant). It is the
// only sanctioned way the repo's own tools talk to the daemon —
// loadgen, the daemon smoke test and the trace-replay parity tests all
// go through it, which makes the client the API's contract test: a
// server-side wire change that breaks a downstream user breaks this
// repo's CI first.
//
// Construction is chainable and cannot fail:
//
//	c := client.New("http://127.0.0.1:8421")
//	ids, err := c.Submit(ctx, "acme", []api.JobSpec{{Workload: 3e5, SD: 0.7}})
//
// Non-2xx responses surface as *client.APIError carrying the decoded
// server message, the status code and any Retry-After hint; match
// classes with errors.Is against ErrBadRequest, ErrNotFound,
// ErrConflict, ErrOverQuota and ErrUnavailable.
//
// Events returns a cursor-resuming NDJSON iterator: in follow mode a
// dropped connection is re-dialed transparently from the last seen
// sequence number, so a consumer observes every retained event exactly
// once even across daemon restarts of the HTTP layer; cancellation of
// the supplied context ends the stream with the context's error.
package client
