package client

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"trustgrid/internal/api"
)

// Error classes for errors.Is. Every non-2xx response decodes into an
// *APIError whose Is method matches the class its status code belongs
// to, so callers branch on semantics, not numbers:
//
//	if errors.Is(err, client.ErrOverQuota) { backOff(client.RetryAfter(err)) }
var (
	// ErrBadRequest: the request is malformed or violates tenant policy (400).
	ErrBadRequest = errors.New("bad request")
	// ErrNotFound: unknown tenant or route (404).
	ErrNotFound = errors.New("not found")
	// ErrConflict: duplicate tenant, or a manual-clock call on a live daemon (409).
	ErrConflict = errors.New("conflict")
	// ErrOverQuota: the tenant's queue quota rejected the submission (429).
	ErrOverQuota = errors.New("over quota")
	// ErrUnavailable: the daemon is stopped or its scheduling loop died (503).
	ErrUnavailable = errors.New("unavailable")
)

// APIError is a non-2xx response from the daemon.
type APIError struct {
	// StatusCode is the HTTP status.
	StatusCode int
	// Message is the server's decoded error string.
	Message string
	// RetryAfter is the server's Retry-After hint (429/503), zero if absent.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("trustgridd: %d %s: %s", e.StatusCode, http.StatusText(e.StatusCode), e.Message)
}

// Is maps status codes onto the package's error classes.
func (e *APIError) Is(target error) bool {
	switch target {
	case ErrBadRequest:
		return e.StatusCode == http.StatusBadRequest
	case ErrNotFound:
		return e.StatusCode == http.StatusNotFound
	case ErrConflict:
		return e.StatusCode == http.StatusConflict
	case ErrOverQuota:
		return e.StatusCode == http.StatusTooManyRequests
	case ErrUnavailable:
		return e.StatusCode == http.StatusServiceUnavailable
	}
	return false
}

// RetryAfter extracts the server's backoff hint from an error chain,
// zero if the error carries none.
func RetryAfter(err error) time.Duration {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.RetryAfter
	}
	return 0
}

// errorFromResponse builds the typed error for a non-2xx response.
// The body is drained (bounded) so the connection can be reused.
func errorFromResponse(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	e := &APIError{StatusCode: resp.StatusCode}
	var eb api.ErrorBody
	if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
		e.Message = eb.Error
	} else {
		e.Message = string(body)
	}
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return e
}
