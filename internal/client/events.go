package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"trustgrid/internal/api"
)

// EventStream iterates the daemon's NDJSON event log.
//
// Cursor resume: the stream remembers the last delivered sequence
// number; in follow mode a dropped or corrupted connection is re-dialed
// transparently with since=cursor+1, so consumers see every retained
// event exactly once, in order, across transport failures. A clean
// server-side close (daemon drained and stopped) ends the stream with
// io.EOF once a resume attempt yields nothing new. Without follow, the
// stream is one request: events until the page (or log) is exhausted,
// then io.EOF.
//
// Cancellation: when the context passed to Client.Events ends, Next
// returns the context's error (possibly after one final buffered
// event). Close releases the connection early; Next then returns
// io.EOF.
type EventStream struct {
	c    *Client
	ctx  context.Context
	opts EventsOptions

	cursor   int64 // next sequence number to ask for
	body     io.ReadCloser
	sc       *bufio.Scanner
	started  bool
	progress bool // events delivered since the last (re)dial
	err      error
}

func (s *EventStream) dial() error {
	opts := s.opts
	req, err := http.NewRequestWithContext(s.ctx, http.MethodGet, s.c.base+opts.query(s.cursor), nil)
	if err != nil {
		return err
	}
	resp, err := s.c.hc.Do(req)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		err := errorFromResponse(resp)
		_ = resp.Body.Close()
		return err
	}
	s.body = resp.Body
	s.sc = bufio.NewScanner(resp.Body)
	s.sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	s.started, s.progress = true, false
	return nil
}

func (s *EventStream) closeBody() {
	if s.body != nil {
		_ = s.body.Close()
		s.body, s.sc = nil, nil
	}
}

// Next returns the next event. It blocks in follow mode until an event
// arrives, the context ends, or the daemon shuts down.
func (s *EventStream) Next() (api.Event, error) {
	var zero api.Event
	for {
		if s.err != nil {
			return zero, s.err
		}
		if err := s.ctx.Err(); err != nil {
			s.closeBody()
			s.err = err
			return zero, err
		}
		if s.body == nil {
			if err := s.dial(); err != nil {
				s.closeBody()
				// Transport refusals are not resumable: the caller
				// decides whether to rebuild the stream.
				s.err = err
				return zero, err
			}
		}
		if s.sc.Scan() {
			line := s.sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var ev api.Event
			if err := json.Unmarshal(line, &ev); err != nil {
				// A torn line means the connection died mid-write. The
				// cursor still points after the last good event, so a
				// follow stream resumes without loss.
				s.closeBody()
				if s.opts.Follow {
					continue
				}
				s.err = fmt.Errorf("client: corrupt event line: %w", err)
				return zero, s.err
			}
			s.cursor = ev.Seq + 1
			s.progress = true
			return ev, nil
		}
		scanErr := s.sc.Err()
		progressed := s.progress
		s.closeBody()
		if err := s.ctx.Err(); err != nil {
			s.err = err
			return zero, err
		}
		if !s.opts.Follow {
			if scanErr != nil {
				s.err = scanErr
			} else {
				s.err = io.EOF
			}
			return zero, s.err
		}
		// Follow mode: a transport error, or a clean close that had
		// delivered events, is worth a resume from the cursor. A clean
		// close right after a resume that yielded nothing means the
		// daemon is gone for good.
		if scanErr == nil && !progressed {
			s.err = io.EOF
			return zero, io.EOF
		}
	}
}

// Cursor returns the next sequence number the stream would request —
// persist it to resume a brand-new stream where this one stopped.
func (s *EventStream) Cursor() int64 { return s.cursor }

// Close releases the underlying connection. Subsequent Next calls
// return io.EOF (or the error that already ended the stream).
func (s *EventStream) Close() error {
	s.closeBody()
	if s.err == nil {
		s.err = io.EOF
	}
	return nil
}
