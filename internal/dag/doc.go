// Package dag models dependent-job workloads: dependency-graph
// validation (self-edges, duplicate edges, dangling references,
// cycles), a deterministic ready-set tracker that releases jobs as
// their parents complete, HEFT-style upward-rank computation for
// critical-path-aware scheduling, and a layered random DAG generator
// shared by tracegen and the DAG study experiment (DESIGN.md §14).
package dag
