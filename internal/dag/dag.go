package dag

import (
	"fmt"
	"math"
	"sort"

	"trustgrid/internal/grid"
)

// Validate checks the dependency structure of a complete job list:
// every edge must reference a job in the list, no job may depend on
// itself, list the same parent twice, or sit on a cycle. It is the
// whole-workload check for batch configs and trace tooling; the online
// server enforces the same invariants incrementally at submission time
// (where cycles are impossible because edges can only point backward).
// Lists without any edges always pass, including ones with duplicate
// IDs — only a workload that actually uses references needs them to be
// unambiguous.
func Validate(jobs []*grid.Job) error {
	hasEdges := false
	for _, j := range jobs {
		if len(j.DependsOn) > 0 {
			hasEdges = true
			break
		}
	}
	if !hasEdges {
		return nil
	}

	idx := make(map[int]int, len(jobs))
	for i, j := range jobs {
		if prev, dup := idx[j.ID]; dup {
			return fmt.Errorf("dag: job ID %d appears at positions %d and %d (dependency references would be ambiguous)", j.ID, prev, i)
		}
		idx[j.ID] = i
	}

	// Kahn's algorithm over the known edges; a cycle leaves nodes with
	// positive in-degree unprocessed. Iterative on purpose: fuzzed and
	// generated workloads can be one very long chain.
	indeg := make([]int, len(jobs))
	children := make([][]int, len(jobs))
	for i, j := range jobs {
		seen := make(map[int]struct{}, len(j.DependsOn))
		for _, d := range j.DependsOn {
			if d == j.ID {
				return fmt.Errorf("dag: job %d depends on itself", j.ID)
			}
			if _, dup := seen[d]; dup {
				return fmt.Errorf("dag: job %d lists dependency %d twice", j.ID, d)
			}
			seen[d] = struct{}{}
			p, ok := idx[d]
			if !ok {
				return fmt.Errorf("dag: job %d depends on unknown job %d", j.ID, d)
			}
			children[p] = append(children[p], i)
			indeg[i]++
		}
	}
	ready := make([]int, 0, len(jobs))
	for i, d := range indeg {
		if d == 0 {
			ready = append(ready, i)
		}
	}
	processed := 0
	for len(ready) > 0 {
		i := ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		processed++
		for _, c := range children[i] {
			if indeg[c]--; indeg[c] == 0 {
				ready = append(ready, c)
			}
		}
	}
	if processed != len(jobs) {
		for i, d := range indeg {
			if d > 0 {
				return fmt.Errorf("dag: job %d sits on a dependency cycle", jobs[i].ID)
			}
		}
	}
	return nil
}

// Tracker is the engine's deterministic ready-set: it decides at
// arrival time whether a job can enter the scheduling queue and, at
// completion time, which blocked successors that completion releases.
// A dependency on a job the tracker has never seen simply blocks until
// that ID completes — manual-mode replays may deliver parents after
// children — and a reference that never completes blocks forever,
// surfacing as an incomplete-jobs error at drain. All iteration orders
// are fixed by insertion order, never map order, so release sequences
// are reproducible run to run.
type Tracker struct {
	done     map[int]struct{}
	blocked  map[int]*grid.Job
	unmet    map[int]int
	children map[int][]int // incomplete parent ID -> blocked successor IDs
	// order stamps each blocked job with its arrival sequence so
	// Blocked() can return the pen in arrival order — the order restore
	// must re-Arrive them in to reproduce the original release order.
	order   map[int]uint64
	nextOrd uint64

	sawEdges bool
}

// NewTracker returns an empty ready-set tracker.
func NewTracker() *Tracker {
	return &Tracker{
		done:     make(map[int]struct{}),
		blocked:  make(map[int]*grid.Job),
		unmet:    make(map[int]int),
		children: make(map[int][]int),
		order:    make(map[int]uint64),
	}
}

// SawEdges reports whether any job ever arrived with dependencies.
// Sticky: once a workload uses edges, rank-aware scheduling stays on
// for the rest of the run. Edge-free runs keep it false, which is the
// switch that preserves their bit-identical placement sequences.
func (t *Tracker) SawEdges() bool { return t.sawEdges }

// Arrive registers an arriving job and reports whether it is ready to
// be scheduled. A false return means the tracker holds the job in its
// blocked pen until Complete releases it; the caller must not queue it.
func (t *Tracker) Arrive(j *grid.Job) bool {
	if len(j.DependsOn) > 0 {
		t.sawEdges = true
	}
	unmet := 0
	for i, d := range j.DependsOn {
		dup := false
		for _, prev := range j.DependsOn[:i] {
			if prev == d {
				dup = true
				break
			}
		}
		if dup {
			// Duplicate edges are rejected at every validated entry point;
			// counting one here twice would leave the job blocked forever
			// after its parent completes, so tolerate the unchecked path.
			continue
		}
		if _, ok := t.done[d]; !ok {
			unmet++
			t.children[d] = append(t.children[d], j.ID)
		}
	}
	if unmet == 0 {
		return true
	}
	t.blocked[j.ID] = j
	t.unmet[j.ID] = unmet
	t.nextOrd++
	t.order[j.ID] = t.nextOrd
	return false
}

// Complete records a job's completion and returns the blocked jobs it
// releases, in the order they originally arrived (the order their IDs
// were appended to the completed job's successor list).
func (t *Tracker) Complete(id int) []*grid.Job {
	t.done[id] = struct{}{}
	succ := t.children[id]
	if succ == nil {
		return nil
	}
	delete(t.children, id)
	var released []*grid.Job
	for _, c := range succ {
		if t.unmet[c]--; t.unmet[c] == 0 {
			released = append(released, t.blocked[c])
			delete(t.blocked, c)
			delete(t.unmet, c)
			delete(t.order, c)
		}
	}
	return released
}

// BlockedCount reports how many arrived jobs are waiting on parents.
func (t *Tracker) BlockedCount() int { return len(t.blocked) }

// Blocked returns the waiting jobs in arrival order. Snapshots persist
// this order, and restore re-Arrives the pen in it, so every parent's
// successor list — and with it every release order — is rebuilt exactly
// as the interrupted run had it.
func (t *Tracker) Blocked() []*grid.Job {
	out := make([]*grid.Job, 0, len(t.blocked))
	for _, j := range t.blocked {
		out = append(out, j)
	}
	sort.Slice(out, func(i, k int) bool { return t.order[out[i].ID] < t.order[out[k].ID] })
	return out
}

// DoneIDs returns the completed-job ID set sorted ascending, for
// snapshots. It grows without bound over a long-running service; a
// retention window is a named follow-up, not an accident.
func (t *Tracker) DoneIDs() []int {
	out := make([]int, 0, len(t.done))
	for id := range t.done {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// RestoreDone reloads a snapshot's completed-ID set. Call before
// re-Arriving the queue and blocked pen so readiness decisions match
// the crashed run's. It deliberately does not touch SawEdges — every
// completion lands in the done set, edges or not, and turning rank
// mode on for a restored edge-free run would change its placements.
func (t *Tracker) RestoreDone(ids []int) {
	for _, id := range ids {
		t.done[id] = struct{}{}
	}
}

// MarkEdges restores the sticky edges-seen flag from a snapshot.
func (t *Tracker) MarkEdges() { t.sawEdges = true }

// BatchRanks fills out[i] with the HEFT-style upward rank of batch[i]:
// the job's mean execution time (workload × meanInv, the mean inverse
// speed over alive sites) plus the largest rank among the blocked
// successors waiting on it. Jobs with no waiting successors rank at
// their own mean execution time, so on edge-free batches the rank
// order degenerates to plain workload order. Results are memoized
// across the batch; a cycle among blocked jobs (only reachable through
// unchecked SubmitLocal use) contributes zero rather than recursing
// forever.
func (t *Tracker) BatchRanks(batch []*grid.Job, meanInv float64, out []float64) {
	memo := make(map[int]float64, len(batch))
	for i, j := range batch {
		out[i] = t.rank(j.ID, j.Workload, meanInv, memo)
	}
}

func (t *Tracker) rank(id int, workload, meanInv float64, memo map[int]float64) float64 {
	if v, ok := memo[id]; ok {
		if math.IsNaN(v) {
			return 0
		}
		return v
	}
	memo[id] = math.NaN()
	var best float64
	for _, c := range t.children[id] {
		j, ok := t.blocked[c]
		if !ok {
			continue
		}
		if r := t.rank(c, j.Workload, meanInv, memo); r > best {
			best = r
		}
	}
	v := workload*meanInv + best
	memo[id] = v
	return v
}
