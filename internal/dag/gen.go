package dag

import (
	"fmt"

	"trustgrid/internal/grid"
	"trustgrid/internal/rng"
)

// GenConfig parameterizes the layered random DAG generator. Jobs are
// laid out in layers of Width; every (parent, child) pair in adjacent
// layers gets an edge with probability EdgeProb, so width controls
// parallelism and depth (= ⌈Jobs/Width⌉) controls chain length.
type GenConfig struct {
	// Jobs is the total job count; Width the layer width. Depth follows.
	Jobs  int
	Width int
	// EdgeProb is the per-pair edge probability between adjacent layers.
	EdgeProb float64
	// Rate is the Poisson arrival rate (jobs/second). Jobs arrive in ID
	// order, so every edge points backward in submission time — exactly
	// what the online service accepts.
	Rate float64
	// Workloads are PSA-style leveled: WorkloadStep × level, with level
	// uniform in {1..Levels}.
	WorkloadStep float64
	Levels       int
	// Slack > 0 stamps deadlines: arrival + Slack × (path workload into
	// and including the job) / MeanSpeed, where path workload is the
	// heaviest chain of parents that must finish first. Tight slack makes
	// misses possible under contention; 0 disables deadlines.
	Slack     float64
	MeanSpeed float64
	// FirstID numbers the jobs FirstID, FirstID+1, ... (IDs must be
	// distinct for references to resolve).
	FirstID int
}

func (c *GenConfig) check() error {
	switch {
	case c.Jobs <= 0:
		return fmt.Errorf("dag: generator needs a positive job count, got %d", c.Jobs)
	case c.Width <= 0:
		return fmt.Errorf("dag: generator needs a positive layer width, got %d", c.Width)
	case c.EdgeProb < 0 || c.EdgeProb > 1:
		return fmt.Errorf("dag: edge probability %v outside [0,1]", c.EdgeProb)
	case c.Rate <= 0:
		return fmt.Errorf("dag: generator needs a positive arrival rate, got %v", c.Rate)
	case c.WorkloadStep <= 0:
		return fmt.Errorf("dag: generator needs a positive workload step, got %v", c.WorkloadStep)
	case c.Levels <= 0:
		return fmt.Errorf("dag: generator needs a positive level count, got %d", c.Levels)
	case c.Slack < 0:
		return fmt.Errorf("dag: negative deadline slack %v", c.Slack)
	case c.Slack > 0 && c.MeanSpeed <= 0:
		return fmt.Errorf("dag: deadlines need a positive mean speed, got %v", c.MeanSpeed)
	}
	return nil
}

// Generate builds a layered random DAG workload from the stream's
// "dag" substream. The draw order per job is fixed (arrival gap,
// workload level, security demand, then one Bernoulli per potential
// parent) so the same seed always yields the same workload. The result
// always passes Validate.
func Generate(r *rng.Stream, cfg GenConfig) ([]*grid.Job, error) {
	if err := cfg.check(); err != nil {
		return nil, err
	}
	g := r.Derive("dag")
	jobs := make([]*grid.Job, cfg.Jobs)
	// pathWork[i] = workload on the heaviest parent chain ending at job i
	// (inclusive); feeds both deadlines and callers that want the
	// critical path of the generated graph.
	pathWork := make([]float64, cfg.Jobs)
	now := 0.0
	for i := range jobs {
		now += g.Exp(cfg.Rate)
		j := &grid.Job{
			ID:             cfg.FirstID + i,
			Arrival:        now,
			Workload:       cfg.WorkloadStep * float64(g.Level(cfg.Levels)),
			Nodes:          1,
			SecurityDemand: g.Uniform(0.6, 0.9),
		}
		layer := i / cfg.Width
		maxParent := 0.0
		if layer > 0 {
			lo := (layer - 1) * cfg.Width
			hi := layer * cfg.Width
			for p := lo; p < hi && p < i; p++ {
				if g.Bool(cfg.EdgeProb) {
					j.DependsOn = append(j.DependsOn, cfg.FirstID+p)
					if pathWork[p] > maxParent {
						maxParent = pathWork[p]
					}
				}
			}
		}
		pathWork[i] = maxParent + j.Workload
		if cfg.Slack > 0 {
			j.Deadline = j.Arrival + cfg.Slack*pathWork[i]/cfg.MeanSpeed
		}
		jobs[i] = j
	}
	return jobs, nil
}
