package dag

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"trustgrid/internal/grid"
	"trustgrid/internal/rng"
)

func job(id int, workload float64, deps ...int) *grid.Job {
	return &grid.Job{ID: id, Workload: workload, Nodes: 1, SecurityDemand: 0.7, DependsOn: deps}
}

func TestValidateAcceptsEdgeFreeAndWellFormed(t *testing.T) {
	if err := Validate(nil); err != nil {
		t.Fatalf("nil list: %v", err)
	}
	if err := Validate([]*grid.Job{job(1, 10), job(2, 10)}); err != nil {
		t.Fatalf("edge-free: %v", err)
	}
	// Duplicate IDs are tolerated while no edges exist (pre-DAG configs
	// never promised unique IDs)...
	if err := Validate([]*grid.Job{job(7, 10), job(7, 10)}); err != nil {
		t.Fatalf("edge-free duplicate IDs: %v", err)
	}
	diamond := []*grid.Job{job(1, 10), job(2, 10, 1), job(3, 10, 1), job(4, 10, 2, 3)}
	if err := Validate(diamond); err != nil {
		t.Fatalf("diamond: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		jobs []*grid.Job
		want string
	}{
		{"self-edge", []*grid.Job{job(1, 10, 1)}, "depends on itself"},
		{"duplicate edge", []*grid.Job{job(1, 10), job(2, 10, 1, 1)}, "twice"},
		{"dangling", []*grid.Job{job(1, 10, 99)}, "unknown job 99"},
		{"cycle", []*grid.Job{job(1, 10, 2), job(2, 10, 1)}, "cycle"},
		{"long cycle", []*grid.Job{job(1, 10, 3), job(2, 10, 1), job(3, 10, 2)}, "cycle"},
		{"dup ids with edges", []*grid.Job{job(1, 10), job(1, 10), job(2, 10, 1)}, "ambiguous"},
	}
	for _, tc := range cases {
		err := Validate(tc.jobs)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

func TestTrackerReleaseFlow(t *testing.T) {
	tr := NewTracker()
	if tr.SawEdges() {
		t.Fatal("fresh tracker claims edges")
	}
	a, b := job(1, 10), job(2, 10, 1)
	c := job(3, 10, 1, 2)
	if !tr.Arrive(a) {
		t.Fatal("independent job blocked")
	}
	if tr.SawEdges() {
		t.Fatal("edge-free arrival flipped SawEdges")
	}
	if tr.Arrive(b) {
		t.Fatal("job 2 ready before parent completed")
	}
	if !tr.SawEdges() {
		t.Fatal("SawEdges false after dependent arrival")
	}
	if tr.Arrive(c) {
		t.Fatal("job 3 ready before parents completed")
	}
	if got := tr.BlockedCount(); got != 2 {
		t.Fatalf("BlockedCount = %d, want 2", got)
	}

	rel := tr.Complete(1)
	if len(rel) != 1 || rel[0].ID != 2 {
		t.Fatalf("completing 1 released %v, want [2]", rel)
	}
	rel = tr.Complete(2)
	if len(rel) != 1 || rel[0].ID != 3 {
		t.Fatalf("completing 2 released %v, want [3]", rel)
	}
	if tr.BlockedCount() != 0 {
		t.Fatalf("blocked pen not empty: %d", tr.BlockedCount())
	}
	// A job whose parents are already done is ready immediately.
	if !tr.Arrive(job(4, 10, 1, 2)) {
		t.Fatal("job with completed parents blocked")
	}
}

func TestTrackerUnknownParentBlocksUntilCompletion(t *testing.T) {
	tr := NewTracker()
	child := job(2, 10, 1)
	if tr.Arrive(child) {
		t.Fatal("child ready though parent never arrived")
	}
	// The parent never Arrives (manual-mode replay delivered the child
	// first); its completion still releases.
	rel := tr.Complete(1)
	if len(rel) != 1 || rel[0].ID != 2 {
		t.Fatalf("released %v, want [2]", rel)
	}
}

func TestTrackerDuplicateDepsTolerated(t *testing.T) {
	tr := NewTracker()
	if tr.Arrive(job(2, 10, 1, 1)) {
		t.Fatal("child ready though parent incomplete")
	}
	rel := tr.Complete(1)
	if len(rel) != 1 || rel[0].ID != 2 {
		t.Fatalf("released %v, want [2] (duplicate edge double-counted)", rel)
	}
}

func TestTrackerReleaseOrderIsArrivalOrder(t *testing.T) {
	tr := NewTracker()
	tr.Arrive(job(1, 10))
	order := []int{9, 4, 7}
	for _, id := range order {
		if tr.Arrive(job(id, 10, 1)) {
			t.Fatalf("job %d ready early", id)
		}
	}
	pen := tr.Blocked()
	for i, id := range order {
		if pen[i].ID != id {
			t.Fatalf("Blocked()[%d] = %d, want arrival order %v", i, pen[i].ID, order)
		}
	}
	rel := tr.Complete(1)
	got := make([]int, len(rel))
	for i, j := range rel {
		got[i] = j.ID
	}
	if !reflect.DeepEqual(got, order) {
		t.Fatalf("release order %v, want arrival order %v", got, order)
	}
}

func TestTrackerSnapshotRestore(t *testing.T) {
	tr := NewTracker()
	tr.Arrive(job(1, 10))
	tr.Complete(1)
	tr.Complete(5) // never arrived, still done
	tr.Arrive(job(2, 10, 3))
	tr.Arrive(job(4, 10, 3, 1))

	done := tr.DoneIDs()
	if !reflect.DeepEqual(done, []int{1, 5}) {
		t.Fatalf("DoneIDs = %v", done)
	}
	blocked := tr.Blocked()
	if len(blocked) != 2 || blocked[0].ID != 2 || blocked[1].ID != 4 {
		t.Fatalf("Blocked = %v", blocked)
	}

	re := NewTracker()
	re.RestoreDone(done)
	if re.SawEdges() {
		t.Fatal("RestoreDone alone must not flip SawEdges (edge-free runs complete jobs too)")
	}
	re.MarkEdges()
	if !re.SawEdges() {
		t.Fatal("MarkEdges did not stick")
	}
	for _, j := range blocked {
		if re.Arrive(j) {
			t.Fatalf("restored job %d not blocked", j.ID)
		}
	}
	rel := re.Complete(3)
	got := make([]int, len(rel))
	for i, j := range rel {
		got[i] = j.ID
	}
	if !reflect.DeepEqual(got, []int{2, 4}) {
		t.Fatalf("post-restore release %v, want [2 4]", got)
	}
}

func TestBatchRanks(t *testing.T) {
	tr := NewTracker()
	// 1 -> 2 -> 3 chain plus independent 9; 2 and 3 blocked.
	head := job(1, 10)
	tr.Arrive(head)
	tr.Arrive(job(2, 20, 1))
	tr.Arrive(job(3, 40, 2))
	solo := job(9, 15)
	tr.Arrive(solo)

	out := make([]float64, 2)
	tr.BatchRanks([]*grid.Job{head, solo}, 0.5, out)
	// head: 10*0.5 + (20*0.5 + 40*0.5) = 35; solo: 15*0.5 = 7.5
	if math.Abs(out[0]-35) > 1e-12 || math.Abs(out[1]-7.5) > 1e-12 {
		t.Fatalf("ranks = %v, want [35 7.5]", out)
	}
}

func TestBatchRanksCycleDefense(t *testing.T) {
	tr := NewTracker()
	// Forward references via unchecked arrivals create a 1<->2 cycle
	// among blocked jobs; ranks must terminate anyway.
	a := job(1, 10, 2)
	b := job(2, 20, 1)
	tr.Arrive(a)
	tr.Arrive(b)
	out := make([]float64, 1)
	tr.BatchRanks([]*grid.Job{job(3, 5)}, 1, out)
	if out[0] != 5 {
		t.Fatalf("independent rank = %v, want 5", out[0])
	}
	out2 := make([]float64, 2)
	tr.BatchRanks([]*grid.Job{a, b}, 1, out2)
	for i, v := range out2 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("cyclic rank %d = %v", i, v)
		}
	}
}

func TestGenerateDeterministicAndValid(t *testing.T) {
	cfg := GenConfig{
		Jobs: 60, Width: 6, EdgeProb: 0.5, Rate: 2,
		WorkloadStep: 50, Levels: 20, Slack: 3, MeanSpeed: 100, FirstID: 1,
	}
	jobs, err := Generate(rng.New(42), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != cfg.Jobs {
		t.Fatalf("got %d jobs, want %d", len(jobs), cfg.Jobs)
	}
	if err := Validate(jobs); err != nil {
		t.Fatalf("generated workload invalid: %v", err)
	}
	hasEdge := false
	for i, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Fatal(err)
		}
		if i > 0 && j.Arrival <= jobs[i-1].Arrival {
			t.Fatalf("arrivals not increasing at %d", i)
		}
		if j.Deadline <= j.Arrival {
			t.Fatalf("job %d deadline %v not past arrival %v", j.ID, j.Deadline, j.Arrival)
		}
		layer := i / cfg.Width
		for _, d := range j.DependsOn {
			hasEdge = true
			p := d - cfg.FirstID
			if p/cfg.Width != layer-1 {
				t.Fatalf("job %d (layer %d) depends on %d (layer %d), not adjacent", j.ID, layer, d, p/cfg.Width)
			}
		}
	}
	if !hasEdge {
		t.Fatal("no edges generated at p=0.5")
	}

	again, err := Generate(rng.New(42), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(jobs, again) {
		t.Fatal("same seed produced different workloads")
	}

	cfg.Slack = 0
	free, err := Generate(rng.New(42), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range free {
		if j.Deadline != 0 {
			t.Fatalf("slack 0 stamped deadline %v", j.Deadline)
		}
	}
}

func TestGenerateConfigErrors(t *testing.T) {
	good := GenConfig{Jobs: 4, Width: 2, EdgeProb: 0.5, Rate: 1, WorkloadStep: 10, Levels: 3}
	bad := []func(*GenConfig){
		func(c *GenConfig) { c.Jobs = 0 },
		func(c *GenConfig) { c.Width = 0 },
		func(c *GenConfig) { c.EdgeProb = 1.5 },
		func(c *GenConfig) { c.Rate = 0 },
		func(c *GenConfig) { c.WorkloadStep = 0 },
		func(c *GenConfig) { c.Levels = 0 },
		func(c *GenConfig) { c.Slack = -1 },
		func(c *GenConfig) { c.Slack = 2; c.MeanSpeed = 0 },
	}
	for i, mutate := range bad {
		cfg := good
		mutate(&cfg)
		if _, err := Generate(rng.New(1), cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := Generate(rng.New(1), good); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}
