package api

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"trustgrid/internal/grid"
)

// TraceRecord is one accepted arrival — the complete deterministic
// input of the scheduling pipeline. A recorded trace plus the daemon's
// seed (and, multi-tenant, the admission config) reproduces every
// placement byte-for-byte, whether replayed through the daemon in
// manual mode or through sched.Run (DESIGN.md §6.4, §9.4); the parity
// test enforces exactly that. Tenant and SafeOnly are the v2 columns;
// both are omitempty, so pre-v2 traces parse unchanged (tenant "") and
// hand-written single-tenant records stay compact. Daemon recordings
// always label ownership — /v1 submissions record as the default
// tenant.
type TraceRecord struct {
	ID       int     `json:"id"`
	Arrival  float64 `json:"arrival"` // effective (post-clamp) virtual seconds
	Workload float64 `json:"workload"`
	Nodes    int     `json:"nodes"`
	SD       float64 `json:"sd"`
	Tenant   string  `json:"tenant,omitempty"`
	// SafeOnly records the owning tenant's secure-only policy as it
	// applied to this job, so a batch replay needs no tenant registry.
	SafeOnly bool `json:"safe_only,omitempty"`
	// DependsOn, Deadline and Budget are the DAG columns (DESIGN.md §14).
	// All omitempty: pre-DAG traces parse unchanged and edge-free jobs
	// serialize without them, so recordings of independent workloads stay
	// byte-identical to pre-DAG daemons.
	DependsOn []int   `json:"depends_on,omitempty"`
	Deadline  float64 `json:"deadline,omitempty"`
	Budget    float64 `json:"budget,omitempty"`
}

// Job materializes the record as a simulator job.
func (t TraceRecord) Job() *grid.Job {
	j := &grid.Job{
		ID: t.ID, Arrival: t.Arrival, Workload: t.Workload,
		Nodes: t.Nodes, SecurityDemand: t.SD,
		Tenant: t.Tenant, SafeOnly: t.SafeOnly,
		Deadline: t.Deadline, Budget: t.Budget,
	}
	if t.DependsOn != nil {
		j.DependsOn = append([]int(nil), t.DependsOn...)
	}
	return j
}

// WriteTraceRecord appends one JSONL line.
func WriteTraceRecord(w io.Writer, rec TraceRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadTrace parses a JSONL arrival trace.
func ReadTrace(r io.Reader) ([]TraceRecord, error) {
	var out []TraceRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec TraceRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("api: trace line %d: %w", line, err)
		}
		// Canonicalize: an explicit empty depends_on list means the same
		// as an absent one, and omitempty would drop it on re-encode —
		// nil keeps edge-free records round-tripping byte-for-byte.
		if len(rec.DependsOn) == 0 {
			rec.DependsOn = nil
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ValidateDAG checks a trace's dependency structure. A trace is an
// arrival order, so every dependency must name a job that appears
// strictly earlier in the record list — which also rules out cycles by
// construction. Traces without any depends_on column skip the ID
// uniqueness check (pre-DAG traces with recycled IDs keep parsing);
// once edges appear, duplicate IDs would make references ambiguous and
// are rejected.
func ValidateDAG(recs []TraceRecord) error {
	hasEdges := false
	for i := range recs {
		if len(recs[i].DependsOn) > 0 {
			hasEdges = true
			break
		}
	}
	if !hasEdges {
		return nil
	}
	seen := make(map[int]int, len(recs))
	for i, r := range recs {
		if prev, dup := seen[r.ID]; dup {
			return fmt.Errorf("api: trace records %d and %d reuse job id %d (ambiguous dependency target)", prev, i, r.ID)
		}
		depSeen := make(map[int]struct{}, len(r.DependsOn))
		for _, d := range r.DependsOn {
			if d == r.ID {
				return fmt.Errorf("api: trace record %d: job %d depends on itself", i, r.ID)
			}
			if _, dup := depSeen[d]; dup {
				return fmt.Errorf("api: trace record %d: job %d lists dependency %d twice", i, r.ID, d)
			}
			depSeen[d] = struct{}{}
			if _, ok := seen[d]; !ok {
				return fmt.Errorf("api: trace record %d: job %d depends on %d, which does not appear earlier in the trace", i, r.ID, d)
			}
		}
		seen[r.ID] = i
	}
	return nil
}

// JobsFromTrace materializes a whole trace, preserving order.
func JobsFromTrace(recs []TraceRecord) []*grid.Job {
	jobs := make([]*grid.Job, len(recs))
	for i, r := range recs {
		jobs[i] = r.Job()
	}
	return jobs
}
