package api

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"trustgrid/internal/grid"
)

// TraceRecord is one accepted arrival — the complete deterministic
// input of the scheduling pipeline. A recorded trace plus the daemon's
// seed (and, multi-tenant, the admission config) reproduces every
// placement byte-for-byte, whether replayed through the daemon in
// manual mode or through sched.Run (DESIGN.md §6.4, §9.4); the parity
// test enforces exactly that. Tenant and SafeOnly are the v2 columns;
// both are omitempty, so pre-v2 traces parse unchanged (tenant "") and
// hand-written single-tenant records stay compact. Daemon recordings
// always label ownership — /v1 submissions record as the default
// tenant.
type TraceRecord struct {
	ID       int     `json:"id"`
	Arrival  float64 `json:"arrival"` // effective (post-clamp) virtual seconds
	Workload float64 `json:"workload"`
	Nodes    int     `json:"nodes"`
	SD       float64 `json:"sd"`
	Tenant   string  `json:"tenant,omitempty"`
	// SafeOnly records the owning tenant's secure-only policy as it
	// applied to this job, so a batch replay needs no tenant registry.
	SafeOnly bool `json:"safe_only,omitempty"`
}

// Job materializes the record as a simulator job.
func (t TraceRecord) Job() *grid.Job {
	return &grid.Job{
		ID: t.ID, Arrival: t.Arrival, Workload: t.Workload,
		Nodes: t.Nodes, SecurityDemand: t.SD,
		Tenant: t.Tenant, SafeOnly: t.SafeOnly,
	}
}

// WriteTraceRecord appends one JSONL line.
func WriteTraceRecord(w io.Writer, rec TraceRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadTrace parses a JSONL arrival trace.
func ReadTrace(r io.Reader) ([]TraceRecord, error) {
	var out []TraceRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec TraceRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("api: trace line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// JobsFromTrace materializes a whole trace, preserving order.
func JobsFromTrace(recs []TraceRecord) []*grid.Job {
	jobs := make([]*grid.Job, len(recs))
	for i, r := range recs {
		jobs[i] = r.Job()
	}
	return jobs
}
