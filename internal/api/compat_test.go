package api

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// TestPreDAGTraceCompat is the wire-compatibility regression for the
// DAG columns: a trace recorded before depends_on/deadline/budget
// existed must parse, validate, and re-serialize byte-for-byte — the
// new columns never leak into recordings of independent workloads, so
// pre-DAG tooling keeps reading daemon output unchanged.
func TestPreDAGTraceCompat(t *testing.T) {
	raw, err := os.ReadFile("testdata/predag_trace.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := ReadTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("parsed %d records, want 3", len(recs))
	}
	if err := ValidateDAG(recs); err != nil {
		t.Fatalf("pre-DAG trace rejected: %v", err)
	}
	for i, r := range recs {
		if r.DependsOn != nil || r.Deadline != 0 || r.Budget != 0 {
			t.Fatalf("record %d grew DAG fields from a pre-DAG line: %+v", i, r)
		}
	}
	var out bytes.Buffer
	for _, r := range recs {
		if err := WriteTraceRecord(&out, r); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(out.Bytes(), raw) {
		t.Fatalf("pre-DAG trace did not round-trip byte-for-byte:\n got  %q\n want %q", out.Bytes(), raw)
	}
}

// TestEdgeFreeJobsSerializeWithoutDAGColumns pins the omitempty
// contract on the write side: a record without edges, deadline or
// budget emits none of the new keys, and one with them emits all
// three.
func TestEdgeFreeJobsSerializeWithoutDAGColumns(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTraceRecord(&buf, TraceRecord{ID: 1, Arrival: 0, Workload: 10, Nodes: 1, SD: 0.5}); err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	for _, key := range []string{"depends_on", "deadline", "budget"} {
		if strings.Contains(line, key) {
			t.Fatalf("edge-free record leaked %q: %s", key, line)
		}
	}

	buf.Reset()
	rec := TraceRecord{ID: 2, Arrival: 1, Workload: 10, Nodes: 1, SD: 0.5,
		DependsOn: []int{1}, Deadline: 60, Budget: 2.5}
	if err := WriteTraceRecord(&buf, rec); err != nil {
		t.Fatal(err)
	}
	line = buf.String()
	for _, want := range []string{`"depends_on":[1]`, `"deadline":60`, `"budget":2.5`} {
		if !strings.Contains(line, want) {
			t.Fatalf("DAG record missing %s: %s", want, line)
		}
	}
}
