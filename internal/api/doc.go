// Package api defines the wire format of the trustgridd HTTP API —
// request/response bodies, the streamed event shape, tenant documents
// and the arrival-trace record — shared by the server (internal/server),
// the typed client (internal/client) and the command-line tools. One
// definition on both sides of the wire is what makes the client the
// API's contract test: a field the server renames breaks the client's
// tests, not a downstream user.
//
// The package is deliberately dependency-light: encoding/json plus the
// repo's own model types (metrics.Summary, sched.SiteStatus). Versioning
// follows the URL space, not the types: /v1 and /v2 share these shapes,
// with v2-only fields marked omitempty so v1 responses are unchanged.
// See DESIGN.md §9 for the v2 resource model.
package api
