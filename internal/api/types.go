package api

import (
	"fmt"

	"trustgrid/internal/metrics"
	"trustgrid/internal/sched"
)

// DefaultTenant is the tenant the /v1 compatibility shim submits to.
// It always exists: the server registers it at startup with weight 1
// and no quota, so single-tenant deployments never have to know tenants
// exist.
const DefaultTenant = "default"

// JobSpec is the submission wire format. In live mode the server stamps
// identity and arrival itself (the wall-clock side of the determinism
// boundary), so client-supplied id/arrival are rejected; in manual mode
// both are honored, which is what trace replay needs.
type JobSpec struct {
	ID       *int     `json:"id,omitempty"`
	Arrival  *float64 `json:"arrival,omitempty"` // virtual seconds
	Workload float64  `json:"workload"`
	Nodes    int      `json:"nodes,omitempty"` // default 1
	// SD is the job's security demand. Zero (or omitted) means "use the
	// owning tenant's sd_default"; a tenant whose work genuinely carries
	// no security demand simply leaves sd_default unset, which keeps the
	// pre-tenant wire behavior (sd:0 stays 0).
	SD float64 `json:"sd,omitempty"`
	// DependsOn lists job IDs that must complete before this job may be
	// placed (DESIGN.md §14). Each must be a previously accepted job of
	// the same tenant, or an earlier job in the same manual-mode request
	// with an explicit id; forward and cross-tenant references are
	// rejected.
	DependsOn []int `json:"depends_on,omitempty"`
	// Deadline is the virtual time this job should complete by; misses
	// are counted, never enforced. Budget is reserved for the LP-driven
	// economics work (ROADMAP item 5). Both optional.
	Deadline float64 `json:"deadline,omitempty"`
	Budget   float64 `json:"budget,omitempty"`
}

// SubmitRequest is the body of POST /v1/jobs and POST /v2/tenants/{id}/jobs.
type SubmitRequest struct {
	Jobs []JobSpec `json:"jobs"`
}

// SubmitResponse acknowledges an accepted submission.
type SubmitResponse struct {
	IDs      []int `json:"ids"`
	Accepted int   `json:"accepted"`
}

// TenantSpec registers (POST /v2/tenants) or describes a tenant: its
// fair-share weight, admission quota and risk policy.
type TenantSpec struct {
	// ID names the tenant in URLs, events, metrics and traces.
	ID string `json:"id"`
	// Weight is the deficit-round-robin fair-share weight (default 1).
	Weight float64 `json:"weight,omitempty"`
	// MaxQueue caps jobs accepted but not yet placed; submissions that
	// would exceed it are rejected with 429 and a Retry-After header.
	// 0 means unbounded.
	MaxQueue int `json:"max_queue,omitempty"`
	// SDDefault fills a job's security demand when the spec omits it.
	SDDefault float64 `json:"sd_default,omitempty"`
	// MaxSD, when positive, rejects (400) jobs demanding more security
	// than the tenant's policy allows.
	MaxSD float64 `json:"max_sd,omitempty"`
	// SecureOnly is the tenant's risk policy: its jobs may only run
	// strictly safely (SL > SD), regardless of the daemon's admission
	// mode — they never take Eq. 1 risk.
	SecureOnly bool `json:"secure_only,omitempty"`
}

// Validate checks a registration document.
func (t *TenantSpec) Validate() error {
	if t.ID == "" {
		return fmt.Errorf("api: tenant id is required")
	}
	if len(t.ID) > 64 {
		return fmt.Errorf("api: tenant id longer than 64 bytes")
	}
	for _, r := range t.ID {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("api: tenant id %q: only [a-zA-Z0-9._-] allowed", t.ID)
		}
	}
	if t.Weight < 0 {
		return fmt.Errorf("api: tenant %q: negative weight %v", t.ID, t.Weight)
	}
	if t.MaxQueue < 0 {
		return fmt.Errorf("api: tenant %q: negative max_queue %d", t.ID, t.MaxQueue)
	}
	if t.SDDefault < 0 || t.SDDefault > 1 {
		return fmt.Errorf("api: tenant %q: sd_default %v outside [0,1]", t.ID, t.SDDefault)
	}
	if t.MaxSD < 0 || t.MaxSD > 1 {
		return fmt.Errorf("api: tenant %q: max_sd %v outside [0,1]", t.ID, t.MaxSD)
	}
	if t.MaxSD > 0 && t.SDDefault > t.MaxSD {
		return fmt.Errorf("api: tenant %q: sd_default %v exceeds max_sd %v", t.ID, t.SDDefault, t.MaxSD)
	}
	return nil
}

// TenantList is the GET /v2/tenants response.
type TenantList struct {
	Tenants []TenantSpec `json:"tenants"`
}

// Event is the streamed form of a sched.EngineEvent (NDJSON on
// /v1/events and /v2/events). Arrived events carry the job spec (they
// double as the arrival trace); placed events carry the planned
// execution window; site lifecycle events (site_down, site_up,
// site_speed — dynamic grids only) carry job −1 plus the site's new
// level or speed. Job events carry the owning tenant.
type Event struct {
	Seq    int64   `json:"seq"`
	Kind   string  `json:"kind"`
	Time   float64 `json:"t"`
	Job    int     `json:"job"`
	Site   int     `json:"site"`
	Tenant string  `json:"tenant,omitempty"`
	// SafeOnly mirrors the trace column on arrived events (which double
	// as the arrival trace): the owning tenant's secure-only policy as
	// it applied to this job.
	SafeOnly bool    `json:"safe_only,omitempty"`
	Start    float64 `json:"start,omitempty"`
	Finish   float64 `json:"finish,omitempty"`
	Risky    bool    `json:"risky,omitempty"`
	FellBack bool    `json:"fell_back,omitempty"`
	Arrival  float64 `json:"arrival,omitempty"`
	Workload float64 `json:"workload,omitempty"`
	Nodes    int     `json:"nodes,omitempty"`
	SD       float64 `json:"sd,omitempty"`
	Level    float64 `json:"level,omitempty"`
	Speed    float64 `json:"speed,omitempty"`
}

// LatencySummary reports scheduling-latency percentiles in milliseconds
// over a retained sample window.
type LatencySummary struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50_ms"`
	P90   float64 `json:"p90_ms"`
	P99   float64 `json:"p99_ms"`
	Max   float64 `json:"max_ms"`
}

// TenantMetrics is one tenant's slice of the metrics report.
type TenantMetrics struct {
	Weight   float64 `json:"weight"`
	MaxQueue int     `json:"max_queue,omitempty"`
	// Queued counts jobs accepted but not yet placed — the quantity the
	// tenant's MaxQueue quota caps.
	Queued    int            `json:"queued"`
	Submitted int64          `json:"submitted"`
	Placed    int64          `json:"placed"`
	Failed    int64          `json:"failed_attempts"`
	Completed int64          `json:"completed"`
	Rejected  int64          `json:"rejected_429"`
	Latency   LatencySummary `json:"sched_latency"`
}

// ShardMetrics is one engine shard's slice of the metrics report
// (sharded daemons only; a -shards 1 run reports no shard section).
type ShardMetrics struct {
	Shard        int     `json:"shard"`
	Sites        int     `json:"sites"`
	SitesAlive   int     `json:"sites_alive"`
	VirtualNow   float64 `json:"virtual_now_s"`
	Seen         int     `json:"seen"`
	InFlight     int     `json:"in_flight"`
	Backlog      int     `json:"backlog"`
	Batches      int     `json:"batches"`
	LargestBatch int     `json:"largest_batch"`
	// Latency is the shard's submit-to-first-placement window; jobs are
	// attributed by the tenant router, so the series is exact.
	Latency LatencySummary `json:"sched_latency"`
	// Addr and Down describe the shard's worker process in fleet mode
	// (-workers): the address it was attached at, and whether the daemon
	// currently considers it unreachable. While Down is true the other
	// gauges are the worker's last reported values, and submissions for
	// its tenants are refused with 503 until it reattaches. Both fields
	// are absent for in-process shards.
	Addr string `json:"addr,omitempty"`
	Down bool   `json:"down,omitempty"`
}

// MetricsReport is the /v1/metrics and /v2/metrics response. The
// Tenants map is the v2 addition; ?tenant=ID narrows it to one entry.
type MetricsReport struct {
	Algo          string                   `json:"algo"`
	Mode          string                   `json:"mode"`
	Manual        bool                     `json:"manual"`
	BatchInterval float64                  `json:"batch_interval_s"`
	TickMS        float64                  `json:"tick_ms"`
	RoundBudget   int                      `json:"round_budget,omitempty"`
	UptimeS       float64                  `json:"uptime_s"`
	VirtualNow    float64                  `json:"virtual_now_s"`
	Submitted     int64                    `json:"submitted"`
	Arrived       int64                    `json:"arrived"`
	Backlog       int                      `json:"backlog"`
	InFlight      int                      `json:"in_flight"`
	Placed        int64                    `json:"placed"`
	Failures      int64                    `json:"failed_attempts"`
	Interrupted   int64                    `json:"interrupted_attempts"`
	Completed     int64                    `json:"completed"`
	Rejected      int64                    `json:"rejected_429,omitempty"`
	SitesAlive    int                      `json:"sites_alive"`
	Batches       int                      `json:"batches"`
	LargestBatch  int                      `json:"largest_batch"`
	SubmitRate    float64                  `json:"submit_rate_per_s"`
	Latency       LatencySummary           `json:"sched_latency"`
	Tenants       map[string]TenantMetrics `json:"tenants,omitempty"`
	Shards        []ShardMetrics           `json:"shards,omitempty"`
	Summary       *metrics.Summary         `json:"summary,omitempty"`
}

// SitesReport is the /v1/sites and /v2/sites response.
type SitesReport struct {
	VirtualNow float64            `json:"virtual_now_s"`
	Sites      []sched.SiteStatus `json:"sites"`
}

// AdvanceRequest drives the manual-mode virtual clock: either To (an
// absolute target) or DT (a relative step).
type AdvanceRequest struct {
	To float64 `json:"to,omitempty"`
	DT float64 `json:"dt,omitempty"`
}

// AdvanceResponse reports the clock after an advance.
type AdvanceResponse struct {
	VirtualNow float64 `json:"virtual_now_s"`
}

// DrainResponse is the manual-mode drain result: everything accepted so
// far scheduled to completion.
type DrainResponse struct {
	VirtualNow float64         `json:"virtual_now_s"`
	Summary    metrics.Summary `json:"summary"`
	Batches    int             `json:"batches"`
}

// ErrorBody is the JSON error envelope every non-2xx response carries.
type ErrorBody struct {
	Error string `json:"error"`
}
