package api

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestTenantSpecValidate(t *testing.T) {
	good := []TenantSpec{
		{ID: "a"},
		{ID: "Tenant-1_x.y", Weight: 2.5, MaxQueue: 10},
		{ID: "d", SDDefault: 0.7, MaxSD: 0.9},
		{ID: strings.Repeat("x", 64)},
	}
	for _, spec := range good {
		if err := spec.Validate(); err != nil {
			t.Errorf("%+v: unexpected error %v", spec, err)
		}
	}
	bad := []TenantSpec{
		{},
		{ID: strings.Repeat("x", 65)},
		{ID: "has space"},
		{ID: "slash/ok?"},
		{ID: "w", Weight: -1},
		{ID: "q", MaxQueue: -1},
		{ID: "s", SDDefault: -0.1},
		{ID: "s", SDDefault: 1.1},
		{ID: "s", MaxSD: 2},
		{ID: "s", SDDefault: 0.8, MaxSD: 0.5},
	}
	for _, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("%+v: expected validation error", spec)
		}
	}
}

// TestTraceRoundTrip: records — including the v2 tenant and safe_only
// columns — survive write/read, materialize into equivalent jobs, and
// single-tenant records keep the v1 line format (no tenant key at all).
func TestTraceRoundTrip(t *testing.T) {
	recs := []TraceRecord{
		{ID: 1, Arrival: 0, Workload: 100, Nodes: 1, SD: 0.7},
		{ID: 2, Arrival: 3.5, Workload: 200, Nodes: 4, SD: 0.85, Tenant: "acme", SafeOnly: true},
	}
	var buf bytes.Buffer
	for _, r := range recs {
		if err := WriteTraceRecord(&buf, r); err != nil {
			t.Fatal(err)
		}
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if strings.Contains(lines[0], "tenant") || strings.Contains(lines[0], "safe_only") {
		t.Fatalf("untenanted record must omit the v2 columns (pre-v2 compatibility): %s", lines[0])
	}
	if !strings.Contains(lines[1], `"tenant":"acme"`) || !strings.Contains(lines[1], `"safe_only":true`) {
		t.Fatalf("v2 columns missing: %s", lines[1])
	}

	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !reflect.DeepEqual(got[i], recs[i]) {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], recs[i])
		}
	}
	jobs := JobsFromTrace(got)
	if jobs[1].Tenant != "acme" || !jobs[1].SafeOnly || jobs[1].SecurityDemand != 0.85 {
		t.Fatalf("bad job materialization: %+v", jobs[1])
	}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestReadTraceErrors(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("{bad json\n")); err == nil {
		t.Fatal("expected parse error")
	}
	recs, err := ReadTrace(strings.NewReader("\n\n"))
	if err != nil || len(recs) != 0 {
		t.Fatalf("blank lines: %v %v", recs, err)
	}
}
