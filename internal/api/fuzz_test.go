package api

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzParseDAGTrace is the DAG-trace decoder contract: arbitrary bytes
// must yield either an error or a trace that, once ValidateDAG accepts
// it, materializes into jobs whose edges reference only earlier jobs —
// no self-edges, no duplicate edges, no dangling or forward refs, and
// (with edges present) no ambiguous IDs. Accepted DAG traces must also
// round-trip bit-exactly through WriteTraceRecord. Never a panic.
// Seed corpus under testdata/fuzz/FuzzParseDAGTrace.
func FuzzParseDAGTrace(f *testing.F) {
	f.Add([]byte(`{"id":0,"arrival":0,"workload":100,"nodes":1,"sd":0.7}` + "\n" +
		`{"id":1,"arrival":5,"workload":50,"nodes":1,"sd":0.6,"depends_on":[0],"deadline":120}` + "\n"))
	f.Add([]byte(`{"id":1,"arrival":0,"workload":10,"nodes":1,"sd":0.5,"depends_on":[1]}` + "\n"))
	f.Add([]byte(`{"id":1,"arrival":0,"workload":10,"nodes":1,"sd":0.5,"depends_on":[7]}` + "\n"))
	f.Add([]byte(`{"id":1,"arrival":0,"workload":10,"nodes":1,"sd":0.5}` + "\n" +
		`{"id":2,"arrival":1,"workload":10,"nodes":1,"sd":0.5,"depends_on":[1,1]}` + "\n"))
	f.Add([]byte(""))
	f.Add([]byte("{bad json\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := ValidateDAG(recs); err != nil {
			return
		}
		// An accepted DAG trace has well-formed, backward-only edges.
		seen := map[int]bool{}
		hasEdges := false
		for i, r := range recs {
			if len(r.DependsOn) > 0 {
				hasEdges = true
			}
			depSeen := map[int]bool{}
			for _, d := range r.DependsOn {
				if d == r.ID {
					t.Fatalf("record %d: self-edge survived ValidateDAG", i)
				}
				if depSeen[d] {
					t.Fatalf("record %d: duplicate edge survived ValidateDAG", i)
				}
				depSeen[d] = true
				if !seen[d] {
					t.Fatalf("record %d: forward/dangling ref %d survived ValidateDAG", i, d)
				}
			}
			if hasEdges && seen[r.ID] {
				t.Fatalf("record %d: duplicate id %d survived ValidateDAG with edges present", i, r.ID)
			}
			seen[r.ID] = true
		}
		// Materialized jobs carry the same edges the wire did.
		for i, j := range JobsFromTrace(recs) {
			if !reflect.DeepEqual(j.DependsOn, recs[i].DependsOn) &&
				!(j.DependsOn == nil && len(recs[i].DependsOn) == 0) {
				t.Fatalf("record %d: edges changed in materialization: %v vs %v", i, j.DependsOn, recs[i].DependsOn)
			}
		}
		// Accepted traces round-trip bit-exactly.
		var buf bytes.Buffer
		for _, r := range recs {
			if err := WriteTraceRecord(&buf, r); err != nil {
				t.Fatal(err)
			}
		}
		back, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("re-parsing written trace: %v", err)
		}
		if len(back) != len(recs) {
			t.Fatalf("round trip changed record count: %d vs %d", len(back), len(recs))
		}
		for i := range recs {
			if !reflect.DeepEqual(back[i], recs[i]) {
				t.Fatalf("record %d differs after round trip: %+v vs %+v", i, back[i], recs[i])
			}
		}
	})
}

func TestValidateDAGRejections(t *testing.T) {
	base := func() []TraceRecord {
		return []TraceRecord{
			{ID: 0, Arrival: 0, Workload: 100, Nodes: 1, SD: 0.7},
			{ID: 1, Arrival: 1, Workload: 50, Nodes: 1, SD: 0.6, DependsOn: []int{0}},
		}
	}
	cases := []struct {
		name string
		warp func([]TraceRecord) []TraceRecord
		want string
	}{
		{"self-edge", func(r []TraceRecord) []TraceRecord {
			r[1].DependsOn = []int{1}
			return r
		}, "depends on itself"},
		{"duplicate-edge", func(r []TraceRecord) []TraceRecord {
			r[1].DependsOn = []int{0, 0}
			return r
		}, "twice"},
		{"forward-ref", func(r []TraceRecord) []TraceRecord {
			r[0].DependsOn = []int{1}
			r[1].DependsOn = nil
			return r
		}, "does not appear earlier"},
		{"dangling", func(r []TraceRecord) []TraceRecord {
			r[1].DependsOn = []int{42}
			return r
		}, "does not appear earlier"},
		{"duplicate-id", func(r []TraceRecord) []TraceRecord {
			r[0].ID = 1
			return r
		}, "reuse job id"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateDAG(tc.warp(base()))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
	if err := ValidateDAG(base()); err != nil {
		t.Fatalf("well-formed trace rejected: %v", err)
	}
	// Edge-free traces skip ID uniqueness — pre-DAG recordings with
	// recycled IDs must keep validating.
	recycled := []TraceRecord{
		{ID: 7, Arrival: 0, Workload: 10, Nodes: 1, SD: 0.5},
		{ID: 7, Arrival: 1, Workload: 10, Nodes: 1, SD: 0.5},
	}
	if err := ValidateDAG(recycled); err != nil {
		t.Fatalf("edge-free trace with recycled ids rejected: %v", err)
	}
}
