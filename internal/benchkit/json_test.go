package benchkit

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func sampleFile(smoke bool, records ...Record) File {
	return File{
		Date: "2026-07-29", GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64",
		GOMAXPROCS: 1, Smoke: smoke, Records: records,
	}
}

func TestJSONRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	want := sampleFile(false,
		Record{Name: "KernelBuild/batch=50", NsPerOp: 1234.5, AllocsPerOp: 3, BytesPerOp: 100, N: 1000})
	if err := want.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Date != want.Date || len(got.Records) != 1 || got.Records[0] != want.Records[0] {
		t.Fatalf("round trip mangled the file: %+v", got)
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("reading a missing file must error")
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := sampleFile(false,
		Record{Name: "a", NsPerOp: 1000, AllocsPerOp: 10},
		Record{Name: "b", NsPerOp: 1000, AllocsPerOp: 0})
	// Within thresholds: no problems, no advisories.
	cur := sampleFile(false,
		Record{Name: "a", NsPerOp: 1400, AllocsPerOp: 12},
		Record{Name: "b", NsPerOp: 900, AllocsPerOp: 4})
	if ps, as := Compare(base, cur, 1.5, 1.5); len(ps) != 0 || len(as) != 0 {
		t.Fatalf("unexpected output: %v %v", ps, as)
	}
	// ns/op regression past 1.5x: gated when nsThreshold > 0, advisory
	// when disabled (the cross-hardware default).
	cur.Records[0].NsPerOp = 1600
	ps, _ := Compare(base, cur, 1.5, 1.5)
	if len(ps) != 1 || !strings.Contains(ps[0], "ns/op") {
		t.Fatalf("want one gated ns/op problem, got %v", ps)
	}
	ps, as := Compare(base, cur, 0, 1.5)
	if len(ps) != 0 {
		t.Fatalf("disabled ns gate must not fail: %v", ps)
	}
	if len(as) != 1 || !strings.Contains(as[0], "advisory") || !strings.Contains(as[0], "ns/op") {
		t.Fatalf("want one ns/op advisory, got %v", as)
	}
	// allocs/op regression (beyond ratio + absolute slack) gates
	// regardless of the ns setting.
	cur.Records[0].NsPerOp = 1000
	cur.Records[1].AllocsPerOp = 20
	ps, _ = Compare(base, cur, 0, 1.5)
	if len(ps) != 1 || !strings.Contains(ps[0], "allocs/op") {
		t.Fatalf("want one allocs/op problem, got %v", ps)
	}
}

func TestCompareMissingCases(t *testing.T) {
	// A smoke current run may omit non-smoke baseline cases, but a
	// missing smoke case (or an unknown name) must fail loudly.
	base := sampleFile(false,
		Record{Name: "STGASchedule/batch=200", NsPerOp: 1, AllocsPerOp: 1}, // non-smoke
		Record{Name: "KernelBuild/batch=50", NsPerOp: 1, AllocsPerOp: 1},   // smoke
	)
	cur := sampleFile(true) // empty smoke run
	ps, _ := Compare(base, cur, 0, 1.5)
	if len(ps) != 1 || !strings.Contains(ps[0], "KernelBuild/batch=50") {
		t.Fatalf("want exactly the smoke case reported missing, got %v", ps)
	}
	// A full current run must report every missing baseline case.
	cur = sampleFile(false)
	if ps, _ := Compare(base, cur, 0, 1.5); len(ps) != 2 {
		t.Fatalf("want both cases reported missing, got %v", ps)
	}
	// The reverse direction gates too: a current record the baseline has
	// never seen means the suite grew without regenerating the committed
	// file, and the comparison would otherwise pass while covering only
	// the intersection.
	cur = sampleFile(false,
		Record{Name: "STGASchedule/batch=200", NsPerOp: 1, AllocsPerOp: 1},
		Record{Name: "KernelBuild/batch=50", NsPerOp: 1, AllocsPerOp: 1},
		Record{Name: "GreedyMinMin/m=256/batch=200", NsPerOp: 1, AllocsPerOp: 1},
	)
	ps, _ = Compare(base, cur, 0, 1.5)
	if len(ps) != 1 || !strings.Contains(ps[0], "GreedyMinMin/m=256/batch=200") ||
		!strings.Contains(ps[0], "missing from baseline") {
		t.Fatalf("want the new case reported missing from baseline, got %v", ps)
	}
}

func TestFind(t *testing.T) {
	if _, err := Find("KernelBuild/batch=50"); err != nil {
		t.Fatal(err)
	}
	if _, err := Find("nope"); err == nil {
		t.Fatal("unknown case must error")
	}
}

// TestSmokeSuiteRuns executes every smoke case once under
// testing.Benchmark — the same harness benchsuite -bench-json uses —
// so a case that panics or hangs fails here rather than in CI's
// benchmark job.
func TestSmokeSuiteRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark smoke pass skipped in -short mode")
	}
	f := Run(true, time.Date(2026, 7, 29, 0, 0, 0, 0, time.UTC))
	if f.Date != "2026-07-29" || !f.Smoke {
		t.Fatalf("bad file header: %+v", f)
	}
	want := 0
	for _, c := range Suite() {
		if c.Smoke {
			want++
		}
	}
	if len(f.Records) != want {
		t.Fatalf("smoke run produced %d records, want %d", len(f.Records), want)
	}
	for _, r := range f.Records {
		if r.NsPerOp <= 0 || r.N <= 0 {
			t.Fatalf("degenerate record: %+v", r)
		}
	}
}
