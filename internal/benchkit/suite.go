package benchkit

import (
	"fmt"
	"testing"

	"trustgrid/internal/dag"
	"trustgrid/internal/ga"
	"trustgrid/internal/grid"
	"trustgrid/internal/heuristics"
	"trustgrid/internal/rng"
	"trustgrid/internal/sched"
	"trustgrid/internal/sched/kernel"
	"trustgrid/internal/stga"
)

// Case is one benchmark of the suite.
type Case struct {
	// Name follows go-test sub-benchmark convention (slash-separated).
	Name string
	// Smoke marks the CI subset: quick cases whose JSON is compared
	// against the committed baseline on every PR.
	Smoke bool
	F     func(b *testing.B)
}

// benchBatch mirrors the root bench_test.go generator: the PSA platform
// with n uniform jobs.
func benchBatch(n int) ([]*grid.Job, []*grid.Site) {
	r := rng.New(1)
	sites, err := grid.PSAPlatform().Generate(r.Derive("sites"))
	if err != nil {
		panic(err)
	}
	jobs := make([]*grid.Job, n)
	for i := range jobs {
		jobs[i] = &grid.Job{
			ID: i, Workload: 1000 + r.Float64()*200000, Nodes: 1,
			SecurityDemand: r.Uniform(0.6, 0.9),
		}
	}
	return jobs, sites
}

// scaleBatch generates the m-site scale-axis workload: a synthetic
// platform of m single-node sites with cycling speeds (the PSA
// platform stops at its fixed site count, so the scale axis needs its
// own generator) and n uniform jobs drawn exactly like benchBatch.
func scaleBatch(n, m int) ([]*grid.Job, []*grid.Site) {
	r := rng.New(1)
	speeds := make([]float64, m)
	nodes := make([]int, m)
	for i := range speeds {
		speeds[i] = float64(i%10+1) * 10
		nodes[i] = 1
	}
	pc := grid.PlatformConfig{Speeds: speeds, Nodes: nodes, SLMin: 0.4, SLMax: 1.0, GuaranteeSafeSL: 0.95}
	sites, err := pc.Generate(r.Derive("sites"))
	if err != nil {
		panic(err)
	}
	jobs := make([]*grid.Job, n)
	for i := range jobs {
		jobs[i] = &grid.Job{
			ID: i, Workload: 1000 + r.Float64()*200000, Nodes: 1,
			SecurityDemand: r.Uniform(0.6, 0.9),
		}
	}
	return jobs, sites
}

func freshState(sites []*grid.Site) *sched.State {
	return &sched.State{Sites: sites, Ready: make([]float64, len(sites))}
}

// dagScaleBatch generates the DAG-mode scale-axis workload: the m-site
// scaleBatch platform, a layered dependent batch of n jobs, and the
// upward-rank column exactly as the engine computes it (every
// successor still blocked in the tracker, so layer-0 ranks carry their
// whole chains).
func dagScaleBatch(n, m int) ([]*grid.Job, []*grid.Site, []float64) {
	_, sites := scaleBatch(1, m)
	jobs, err := dag.Generate(rng.New(3), dag.GenConfig{
		Jobs: n, Width: max(n/4, 1), EdgeProb: 0.3, Rate: 1,
		WorkloadStep: 15000, Levels: 20,
	})
	if err != nil {
		panic(err)
	}
	tr := dag.NewTracker()
	for _, j := range jobs {
		tr.Arrive(j)
	}
	meanInv := 0.0
	for _, s := range sites {
		meanInv += 1 / s.Speed
	}
	meanInv /= float64(len(sites))
	ranks := make([]float64, len(jobs))
	tr.BatchRanks(jobs, meanInv, ranks)
	return jobs, sites, ranks
}

// rankScaleCase benchmarks Rank-Min-Min per engine round on a DAG
// batch: snapshot rebuild, rank-column install, then the Schedule call.
func rankScaleCase(n, m int) func(b *testing.B) {
	return func(b *testing.B) {
		jobs, sites, ranks := dagScaleBatch(n, m)
		s := heuristics.NewRankMinMin(grid.FRiskyPolicy(0.5))
		var kb kernel.Builder
		ready := make([]float64, len(sites))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st := freshState(sites)
			st.Kern = kb.Build(0, sites, ready, nil, jobs)
			st.Kern.SetRanks(ranks)
			s.Schedule(jobs, st)
		}
	}
}

// stgaDAGScaleCase is stgaScaleCase with the rank column installed, so
// the GA decodes in rank-keyed (precedence-feasible) order.
func stgaDAGScaleCase(n, m int, v rng.Version) func(b *testing.B) {
	return func(b *testing.B) {
		jobs, sites, ranks := dagScaleBatch(n, m)
		cfg := stga.DefaultConfig()
		cfg.GA.RNG = v
		var kb kernel.Builder
		ready := make([]float64, len(sites))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := stga.New(cfg, rng.New(2))
			st := freshState(sites)
			st.Kern = kb.Build(0, sites, ready, nil, jobs)
			st.Kern.SetRanks(ranks)
			s.Schedule(jobs, st)
		}
	}
}

// greedyCase benchmarks one greedy heuristic the way the engine runs
// it: a Builder-rebuilt snapshot (reused arenas) plus the Schedule
// call, per round.
func greedyCase(n int, mk func(grid.Policy) sched.Scheduler) func(b *testing.B) {
	return greedyCaseOn(func() ([]*grid.Job, []*grid.Site) { return benchBatch(n) }, mk)
}

// greedyScaleCase is greedyCase on the m-site scale-axis platform.
func greedyScaleCase(n, m int, mk func(grid.Policy) sched.Scheduler) func(b *testing.B) {
	return greedyCaseOn(func() ([]*grid.Job, []*grid.Site) { return scaleBatch(n, m) }, mk)
}

// greedyCaseOn defers workload generation into the benchmark body:
// Suite() is also called just to enumerate names (Find, the smoke
// filter), and must not pay for 1024-site platforms there.
func greedyCaseOn(gen func() ([]*grid.Job, []*grid.Site), mk func(grid.Policy) sched.Scheduler) func(b *testing.B) {
	return func(b *testing.B) {
		jobs, sites := gen()
		s := mk(grid.FRiskyPolicy(0.5))
		var kb kernel.Builder
		ready := make([]float64, len(sites))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st := freshState(sites)
			st.Kern = kb.Build(0, sites, ready, nil, jobs)
			s.Schedule(jobs, st)
		}
	}
}

// stgaScaleCase benchmarks one STGA Schedule call on the m-site
// scale-axis platform under the given draw contract, with Delta left
// on auto. A fresh scheduler per iteration keeps the history table
// empty and the per-op work independent of b.N: a shared scheduler's
// table grows with every call, which would make the measured time
// depend on how long the harness happened to run the case.
func stgaScaleCase(n, m int, v rng.Version) func(b *testing.B) {
	return func(b *testing.B) {
		jobs, sites := scaleBatch(n, m)
		cfg := stga.DefaultConfig()
		cfg.GA.RNG = v
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := stga.New(cfg, rng.New(2))
			s.Schedule(jobs, freshState(sites))
		}
	}
}

// fitnessPathCase builds the steady-state fitness-path benchmark: a
// converged population receiving Table 1 mutation traffic, evaluated
// every generation (the access pattern inside ga.Run). delta toggles
// incremental evaluation against the full decode; both arms replay the
// identical edit script.
func fitnessPathCase(n, m, pop int, delta bool) func(b *testing.B) {
	return func(b *testing.B) {
		r := rng.New(7)
		base := make([]float64, m)
		etc := make([]float64, n*m)
		for i := range base {
			base[i] = r.Float64() * 1e4
		}
		for i := range etc {
			etc[i] = r.Float64() * 1e3 * float64(1+r.Intn(1000))
		}
		full := stga.MakespanFitness(m, base, etc, 0)
		inc := stga.NewDeltaEvaluator(base, etc, n, m)
		const gens = 16
		type edit struct{ idx, gene, val int }
		script := make([][]edit, gens)
		er := r.Derive("script")
		for g := range script {
			for idx := 0; idx < pop; idx++ {
				for gene := 0; gene < n; gene++ {
					if er.Bool(0.01) {
						script[g] = append(script[g], edit{idx, gene, er.Intn(m)})
					}
				}
			}
		}
		incumbent := make(ga.Chromosome, n)
		for i := range incumbent {
			incumbent[i] = r.Intn(m)
		}
		chroms := make([]ga.Chromosome, pop)
		states := make([]ga.IncState, pop)
		for i := range chroms {
			chroms[i] = incumbent.Clone()
			if delta {
				states[i] = inc.NewState()
				inc.Reset(states[i], chroms[i])
			}
		}
		sink := 0.0
		b.ResetTimer()
		for it := 0; it < b.N; it++ {
			for _, e := range script[it%gens] {
				if old := chroms[e.idx][e.gene]; old != e.val {
					if delta {
						inc.Update(states[e.idx], e.gene, old, e.val)
					}
					chroms[e.idx][e.gene] = e.val
				}
			}
			if delta {
				for i := range chroms {
					sink += inc.Value(states[i], chroms[i])
				}
			} else {
				for i := range chroms {
					sink += full(chroms[i])
				}
			}
		}
		_ = sink
	}
}

// Suite returns the kernel-path benchmark cases.
func Suite() []Case {
	return []Case{
		{Name: "KernelBuild/batch=50", Smoke: true, F: func(b *testing.B) {
			jobs, sites := benchBatch(50)
			ready := make([]float64, len(sites))
			var kb kernel.Builder
			p := grid.FRiskyPolicy(0.5)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := kb.Build(0, sites, ready, nil, jobs)
				// Touch the eligibility cache the way schedulers do.
				for j := range jobs {
					_ = s.Eligible(p, j)
				}
			}
		}},
		{Name: "GreedyMinMin/batch=50", Smoke: true,
			F: greedyCase(50, func(p grid.Policy) sched.Scheduler { return heuristics.NewMinMin(p) })},
		{Name: "GreedyMinMin/batch=200", Smoke: true,
			F: greedyCase(200, func(p grid.Policy) sched.Scheduler { return heuristics.NewMinMin(p) })},
		{Name: "GreedySufferage/batch=50", Smoke: true,
			F: greedyCase(50, func(p grid.Policy) sched.Scheduler { return heuristics.NewSufferage(p) })},
		{Name: "STGASchedule/batch=50", Smoke: true, F: func(b *testing.B) {
			jobs, sites := benchBatch(50)
			cfg := stga.DefaultConfig()
			cfg.GA.PopulationSize = 50
			cfg.GA.Generations = 30
			s := stga.New(cfg, rng.New(2))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Schedule(jobs, freshState(sites))
			}
		}},
		{Name: "STGASchedule/batch=200", Smoke: false, F: func(b *testing.B) {
			jobs, sites := benchBatch(200)
			s := stga.New(stga.DefaultConfig(), rng.New(2))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Schedule(jobs, freshState(sites))
			}
		}},
		// The m scale axis: batch=200 against synthetic platforms of 64,
		// 256, and 1024 sites. m=256 is the smoke point CI gates on; the
		// 64/1024 endpoints ride the full runs so the trajectory keeps
		// the scaling curve without inflating every PR's benchmark job.
		{Name: "GreedyMinMin/m=64/batch=200", Smoke: false,
			F: greedyScaleCase(200, 64, func(p grid.Policy) sched.Scheduler { return heuristics.NewMinMin(p) })},
		{Name: "GreedyMinMin/m=256/batch=200", Smoke: true,
			F: greedyScaleCase(200, 256, func(p grid.Policy) sched.Scheduler { return heuristics.NewMinMin(p) })},
		{Name: "GreedyMinMin/m=1024/batch=200", Smoke: false,
			F: greedyScaleCase(200, 1024, func(p grid.Policy) sched.Scheduler { return heuristics.NewMinMin(p) })},
		{Name: "GreedySufferage/m=256/batch=200", Smoke: false,
			F: greedyScaleCase(200, 256, func(p grid.Policy) sched.Scheduler { return heuristics.NewSufferage(p) })},
		// The DAG axis: Rank-Min-Min pays a sort plus the rank-column
		// install on top of Min-Min's greedy loop, and the STGA decodes
		// in rank-keyed order. m=256 is the smoke point CI gates on.
		{Name: "GreedyRankMinMin/m=64/batch=200", Smoke: false, F: rankScaleCase(200, 64)},
		{Name: "GreedyRankMinMin/m=256/batch=200", Smoke: true, F: rankScaleCase(200, 256)},
		{Name: "GreedyRankMinMin/m=1024/batch=200", Smoke: false, F: rankScaleCase(200, 1024)},
		{Name: "STGASchedule/dag=on/m=256/batch=200", Smoke: true, F: stgaDAGScaleCase(200, 256, rng.V2)},
		{Name: "STGASchedule/rng=v1/m=256/batch=200", Smoke: true, F: stgaScaleCase(200, 256, rng.V1)},
		{Name: "STGASchedule/rng=v2/m=64/batch=200", Smoke: false, F: stgaScaleCase(200, 64, rng.V2)},
		{Name: "STGASchedule/rng=v2/m=256/batch=200", Smoke: true, F: stgaScaleCase(200, 256, rng.V2)},
		{Name: "STGASchedule/rng=v2/m=1024/batch=200", Smoke: false, F: stgaScaleCase(200, 1024, rng.V2)},
		{Name: "KernelBuild/m=1024/batch=5000", Smoke: false, F: func(b *testing.B) {
			jobs, sites := scaleBatch(5000, 1024)
			ready := make([]float64, len(sites))
			var kb kernel.Builder
			p := grid.FRiskyPolicy(0.5)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := kb.Build(0, sites, ready, nil, jobs)
				for j := range jobs {
					_ = s.Eligible(p, j)
				}
			}
		}},
		{Name: "FitnessPath/full-decode/batch=50", Smoke: true, F: fitnessPathCase(50, 20, 200, false)},
		{Name: "FitnessPath/delta/batch=50", Smoke: true, F: fitnessPathCase(50, 20, 200, true)},
		{Name: "FitnessPath/full-decode/batch=200", Smoke: false, F: fitnessPathCase(200, 20, 200, false)},
		{Name: "FitnessPath/delta/batch=200", Smoke: false, F: fitnessPathCase(200, 20, 200, true)},
		{Name: "OnlineEngine/jobs=1000", Smoke: true, F: func(b *testing.B) {
			jobs, sites := benchBatch(1000)
			for i := range jobs {
				jobs[i].Arrival = float64(i) * 300
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				o, err := sched.NewOnline(sched.RunConfig{
					Sites:         sites,
					Scheduler:     heuristics.NewMCT(grid.FRiskyPolicy(0.5)),
					BatchInterval: 5000,
					Rand:          rng.New(uint64(i)),
				})
				if err != nil {
					b.Fatal(err)
				}
				for _, j := range jobs {
					if err := o.Submit(j); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := o.Drain(); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
}

// Find returns the named case or an error listing what exists.
func Find(name string) (Case, error) {
	for _, c := range Suite() {
		if c.Name == name {
			return c, nil
		}
	}
	return Case{}, fmt.Errorf("benchkit: unknown case %q", name)
}
