package benchkit

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"
)

// Record is one benchmark's measurement.
type Record struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	N           int     `json:"n"`
}

// File is one point of the benchmark trajectory (a BENCH_<date>.json).
type File struct {
	Date       string   `json:"date"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Smoke      bool     `json:"smoke_subset"`
	Records    []Record `json:"records"`
}

// Run executes the suite (or its smoke subset) under testing.Benchmark
// and collects the measurements.
func Run(smokeOnly bool, now time.Time) File {
	f := File{
		Date:       now.Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Smoke:      smokeOnly,
	}
	for _, c := range Suite() {
		if smokeOnly && !c.Smoke {
			continue
		}
		r := testing.Benchmark(c.F)
		f.Records = append(f.Records, Record{
			Name:        c.Name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			N:           r.N,
		})
	}
	return f
}

// Write emits the file as indented JSON.
func (f File) Write(path string) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a trajectory point.
func ReadFile(path string) (File, error) {
	var f File
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("benchkit: parse %s: %w", path, err)
	}
	return f, nil
}

// Compare checks current against baseline benchstat-style but
// deliberately coarse. allocThreshold is the multiplicative fail bound
// on allocs/op (e.g. 1.5 = fail when 50% worse, plus a small absolute
// slack so zero-alloc cases aren't special): allocation counts are
// hardware-independent, so this is the gate that can block a merge
// without flaking. nsThreshold gates ns/op the same way, but only when
// > 0 — a committed baseline usually travels across hardware, where
// wall-time ratios flake; pass 0 to make ns/op differences advisory
// (reported with an "advisory:" prefix in the second return value,
// never failing). Missing records gate in both directions: a case
// present in the baseline but absent from the current run means a
// benchmark was renamed or dropped, and a current case absent from the
// baseline means the suite grew without regenerating the committed
// BENCH_*.json — either way the comparison is no longer covering what
// it claims to, so it fails rather than silently passing on the
// intersection.
func Compare(baseline, current File, nsThreshold, allocThreshold float64) (problems, advisories []string) {
	cur := make(map[string]Record, len(current.Records))
	for _, r := range current.Records {
		cur[r.Name] = r
	}
	base := make(map[string]bool, len(baseline.Records))
	for _, r := range baseline.Records {
		base[r.Name] = true
	}
	for _, r := range current.Records {
		if !base[r.Name] {
			problems = append(problems, fmt.Sprintf("%s: missing from baseline %s — regenerate the committed BENCH_*.json to cover it", r.Name, baseline.Date))
		}
	}
	for _, base := range baseline.Records {
		r, ok := cur[base.Name]
		if !ok {
			// A smoke run against a full baseline covers only the
			// intersection; anything else missing is a real problem.
			if c, err := Find(base.Name); current.Smoke && err == nil && !c.Smoke {
				continue
			}
			problems = append(problems, fmt.Sprintf("%s: present in baseline, missing from current run", base.Name))
			continue
		}
		if base.NsPerOp > 0 {
			if nsThreshold > 0 && r.NsPerOp > base.NsPerOp*nsThreshold {
				problems = append(problems, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (>%.2fx)",
					base.Name, r.NsPerOp, base.NsPerOp, nsThreshold))
			} else if nsThreshold <= 0 && r.NsPerOp > base.NsPerOp*advisoryNsRatio {
				advisories = append(advisories, fmt.Sprintf("advisory: %s: %.0f ns/op vs baseline %.0f (>%.2fx, not gated)",
					base.Name, r.NsPerOp, base.NsPerOp, advisoryNsRatio))
			}
		}
		if float64(r.AllocsPerOp) > float64(base.AllocsPerOp)*allocThreshold+8 {
			problems = append(problems, fmt.Sprintf("%s: %d allocs/op vs baseline %d (>%.2fx)",
				base.Name, r.AllocsPerOp, base.AllocsPerOp, allocThreshold))
		}
	}
	return problems, advisories
}

// advisoryNsRatio is the reporting (not failing) bound for ns/op when
// the wall-time gate is disabled.
const advisoryNsRatio = 1.5
