// Package benchkit is the benchmark-trajectory harness: a programmatic
// suite of the kernel-path benchmarks (columnar snapshot build, greedy
// heuristics, STGA scheduling, GA fitness path, online engine) runnable
// outside `go test` via testing.Benchmark, with a JSON emitter for the
// repository's BENCH_<date>.json trajectory files and a
// benchstat-style regression comparator used by CI (`benchsuite
// -bench-json/-bench-compare`). See DESIGN.md §8.4.
package benchkit
