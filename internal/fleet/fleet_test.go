package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"trustgrid/internal/experiments"
	"trustgrid/internal/grid"
	"trustgrid/internal/sched"
)

func testSpec(algo string) *Spec {
	return &Spec{
		Sites: []*grid.Site{
			{ID: 0, Speed: 10, Nodes: 8, SecurityLevel: 0.95},
			{ID: 1, Speed: 20, Nodes: 16, SecurityLevel: 0.5},
			{ID: 2, Speed: 5, Nodes: 4, SecurityLevel: 0.8},
			{ID: 3, Speed: 15, Nodes: 8, SecurityLevel: 0.7},
		},
		Algo:          algo,
		Mode:          "frisky",
		BatchInterval: 500,
		Seed:          42,
		Setup:         experiments.DefaultSetup(),
		Shards:        1,
	}
}

func testJobs(n int) []*grid.Job {
	jobs := make([]*grid.Job, n)
	for i := range jobs {
		window := float64(i / 4)
		jobs[i] = &grid.Job{
			ID:             i + 1,
			Arrival:        window*500 + 50 + float64(i%4)*100,
			Workload:       300 + float64(i%5)*120,
			Nodes:          1,
			SecurityDemand: 0.3 + float64(i%7)*0.1,
			Tenant:         fmt.Sprintf("t%d", i%3),
		}
	}
	return jobs
}

func cloneJob(j *grid.Job) *grid.Job { cp := *j; return &cp }

func TestFrameRoundTrip(t *testing.T) {
	spec := testSpec("minmin")
	in := frame{
		Type: frameAttach, Version: ProtoVersion, Spec: spec, Shard: 2, Since: 17,
	}
	var buf bytes.Buffer
	if err := writeFrame(&buf, &in); err != nil {
		t.Fatal(err)
	}
	var out frame
	if err := readFrame(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if out.Type != frameAttach || out.Version != ProtoVersion || out.Shard != 2 || out.Since != 17 {
		t.Fatalf("round trip mangled header fields: %+v", out)
	}
	inFP, _ := in.Spec.Fingerprint()
	outFP, err := out.Spec.Fingerprint()
	if err != nil || outFP != inFP {
		t.Fatalf("spec fingerprint changed across the wire: %q -> %q (%v)", inFP, outFP, err)
	}

	// A corrupt length prefix is refused at read time, before any
	// allocation in its image.
	bad := bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff, 0x00})
	if err := readFrame(bad, &out); err == nil {
		t.Fatal("absurd length prefix accepted")
	}
}

func TestSpecFingerprint(t *testing.T) {
	a, err := testSpec("minmin").Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	b, err := testSpec("minmin").Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("identical specs fingerprint differently: %q vs %q", a, b)
	}
	changed := testSpec("minmin")
	changed.Seed++
	c, err := changed.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("different seeds share a fingerprint")
	}
}

func TestEventRingHorizon(t *testing.T) {
	r := eventRing{max: 8}
	for i := 1; i <= 12; i++ {
		r.append(seqEvent{Seq: uint64(i)})
	}
	// Capacity trims drop the oldest half; the tail must stay
	// contiguous and addressable.
	evs, err := r.after(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 || evs[0].Seq != 9 || evs[len(evs)-1].Seq != 12 {
		t.Fatalf("after(8) = %+v, want seqs 9..12", evs)
	}
	if _, err := r.after(0); err == nil {
		t.Fatal("evicted horizon served without error")
	}
	if evs, err := r.after(12); err != nil || len(evs) != 0 {
		t.Fatalf("after(head) = %v, %v; want empty, nil", evs, err)
	}
}

// startWorker serves a worker on a fresh loopback listener (or, when
// addr is non-empty, re-listens on that exact address — the restart
// path) and returns it with its address.
func startWorker(t *testing.T, cfg WorkerConfig, addr string) (*Worker, string) {
	t.Helper()
	w, err := NewWorker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	go w.Serve(ln)
	t.Cleanup(func() { w.Close() })
	return w, ln.Addr().String()
}

// driveLocal runs the reference: an in-process engine built from the
// same ShardConfig the worker derives, fed the same operations.
func driveLocal(t *testing.T, spec *Spec, jobs []*grid.Job, horizon float64) ([]sched.EngineEvent, *sched.Result) {
	t.Helper()
	cfg, err := spec.ShardConfig(0, false)
	if err != nil {
		t.Fatal(err)
	}
	var events []sched.EngineEvent
	cfg.OnEvent = func(ev sched.EngineEvent) { events = append(events, ev) }
	eng, err := sched.NewOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	for tick := spec.BatchInterval; tick <= horizon; tick += spec.BatchInterval {
		for next < len(jobs) && jobs[next].Arrival < tick {
			if err := eng.SubmitLocal(cloneJob(jobs[next])); err != nil {
				t.Fatal(err)
			}
			next++
		}
		if err := eng.AdvanceTo(tick); err != nil {
			t.Fatal(err)
		}
	}
	res, err := eng.Drain()
	if err != nil {
		t.Fatal(err)
	}
	return events, res
}

// TestWorkerLoopbackParity drives one worker over real TCP with the
// exact operation sequence an in-process engine gets, and demands the
// identical event stream and drain result on both sides.
func TestWorkerLoopbackParity(t *testing.T) {
	for _, algo := range []string{"minmin", "stga"} {
		t.Run(algo, func(t *testing.T) {
			spec := testSpec(algo)
			jobs := testJobs(24)
			const horizon = 3000

			wantEvents, wantRes := driveLocal(t, spec, jobs, horizon)
			if len(wantEvents) == 0 {
				t.Fatal("reference run produced no events; test is vacuous")
			}

			_, addr := startWorker(t, WorkerConfig{Heartbeat: 50 * time.Millisecond}, "")
			rs, err := Dial(addr, spec, 0, DialConfig{})
			if err != nil {
				t.Fatal(err)
			}
			defer rs.Close()
			var got []sched.EngineEvent
			rs.SetEventSink(func(ev sched.EngineEvent) { got = append(got, ev) })

			next := 0
			for tick := spec.BatchInterval; tick <= horizon; tick += spec.BatchInterval {
				for next < len(jobs) && jobs[next].Arrival < tick {
					if err := rs.Submit(cloneJob(jobs[next])); err != nil {
						t.Fatal(err)
					}
					next++
				}
				if err := rs.AdvanceTo(tick); err != nil {
					t.Fatal(err)
				}
				if now := rs.Now(); now != tick {
					t.Fatalf("cached Now = %v after AdvanceTo(%v)", now, tick)
				}
			}
			res, err := rs.Drain()
			if err != nil {
				t.Fatal(err)
			}

			if !reflect.DeepEqual(got, wantEvents) {
				t.Fatalf("event streams diverge: remote %d events, local %d", len(got), len(wantEvents))
			}
			if got, want := res.Summary, wantRes.Summary; !reflect.DeepEqual(got, want) {
				t.Fatalf("drain summaries diverge:\nremote %+v\nlocal  %+v", got, want)
			}
			if rs.Seen() != len(jobs) {
				t.Fatalf("cached Seen = %d, want %d", rs.Seen(), len(jobs))
			}
		})
	}
}

// TestWorkerRefusesMismatchedAttach locks a configured worker to its
// first spec: a different fingerprint or a different shard index is
// turned away instead of silently corrupting the run.
func TestWorkerRefusesMismatchedAttach(t *testing.T) {
	spec := testSpec("minmin")
	_, addr := startWorker(t, WorkerConfig{}, "")
	rs, err := Dial(addr, spec, 0, DialConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	other := testSpec("minmin")
	other.Seed++
	if _, err := Dial(addr, other, 0, DialConfig{}); err == nil {
		t.Fatal("worker accepted an attach under a different spec fingerprint")
	}
	if _, err := Dial(addr, spec, 1, DialConfig{}); err == nil {
		t.Fatal("worker accepted an attach under a different shard index")
	}
}

// TestWorkerDiagnosesRNGVersionMismatch pins the specific failure mode
// of a half-upgraded fleet: a coordinator on the v2 draw contract
// attaching to a worker configured for v1 is told exactly that, not
// just that two hashes differ — and a spec that differs in MORE than
// the rng version still gets the generic fingerprint refusal.
func TestWorkerDiagnosesRNGVersionMismatch(t *testing.T) {
	spec := testSpec("minmin")
	_, addr := startWorker(t, WorkerConfig{}, "")
	rs, err := Dial(addr, spec, 0, DialConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	v2 := testSpec("minmin")
	v2.Setup.RNGVersion = 2
	_, err = Dial(addr, v2, 0, DialConfig{})
	if err == nil {
		t.Fatal("worker accepted an attach under a different rng version")
	}
	if !strings.Contains(err.Error(), "rng version mismatch") {
		t.Fatalf("rng-only divergence got the generic refusal: %v", err)
	}
	if !strings.Contains(err.Error(), "v2") || !strings.Contains(err.Error(), "v1") {
		t.Fatalf("diagnosis does not name both versions: %v", err)
	}

	// Both the version AND the seed differ: not a clean rng-version
	// mismatch, so the generic fingerprint path must speak.
	both := testSpec("minmin")
	both.Setup.RNGVersion = 2
	both.Seed++
	_, err = Dial(addr, both, 0, DialConfig{})
	if err == nil {
		t.Fatal("worker accepted a doubly diverged spec")
	}
	if strings.Contains(err.Error(), "rng version mismatch") {
		t.Fatalf("doubly diverged spec misdiagnosed as rng-only: %v", err)
	}
}

// TestWorkerCrashRestartParity kills a durable worker mid-run (no
// goodbye — the socket just dies), restarts it from its WAL on the
// same address, and reattaches by advancing. The surviving RemoteShard
// must deliver the uninterrupted run's exact event stream: replay
// re-derives the worker's event sequence, and the Since watermark
// filters the overlap.
func TestWorkerCrashRestartParity(t *testing.T) {
	spec := testSpec("minmin")
	jobs := testJobs(24)
	const horizon = 3000
	wantEvents, wantRes := driveLocal(t, spec, jobs, horizon)

	dir := t.TempDir()
	w, addr := startWorker(t, WorkerConfig{WALDir: dir, Heartbeat: 50 * time.Millisecond}, "")
	rs, err := Dial(addr, spec, 0, DialConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	var got []sched.EngineEvent
	rs.SetEventSink(func(ev sched.EngineEvent) { got = append(got, ev) })

	next := 0
	advance := func(tick float64) error {
		for next < len(jobs) && jobs[next].Arrival < tick {
			if err := rs.Submit(cloneJob(jobs[next])); err != nil {
				return err
			}
			next++
		}
		return rs.AdvanceTo(tick)
	}
	// First half of the run against the original worker.
	var tick float64
	for tick = spec.BatchInterval; tick <= horizon/2; tick += spec.BatchInterval {
		if err := advance(tick); err != nil {
			t.Fatal(err)
		}
	}

	// Crash: the worker process is gone. Everything acknowledged so far
	// is committed; the coordinator's next submit fails fast.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !rs.Down() {
		if time.Now().After(deadline) {
			t.Fatal("remote shard never noticed the dead worker")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := rs.Submit(cloneJob(jobs[next])); err == nil {
		t.Fatal("submit to a dead worker succeeded")
	} else if !errors.Is(err, sched.ErrShardDown) {
		t.Fatalf("submit to a dead worker: %v, want ErrShardDown", err)
	}

	// Restart from the WAL on the same address; the next barrier
	// reattaches and the run continues as if nothing happened.
	if _, addr2 := startWorker(t, WorkerConfig{WALDir: dir, Heartbeat: 50 * time.Millisecond}, addr); addr2 != addr {
		t.Fatalf("restarted worker listens on %s, want %s", addr2, addr)
	}
	// The drive loop submits before it advances, so reattach explicitly
	// (in the daemon the next barrier does this; submissions in the gap
	// are 503s the client retries).
	if err := rs.Reattach(); err != nil {
		t.Fatal(err)
	}
	for ; tick <= horizon; tick += spec.BatchInterval {
		if err := advance(tick); err != nil {
			t.Fatal(err)
		}
	}
	res, err := rs.Drain()
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(got, wantEvents) {
		t.Fatalf("event streams diverge across the crash: got %d events, want %d", len(got), len(wantEvents))
	}
	if !reflect.DeepEqual(res.Summary, wantRes.Summary) {
		t.Fatalf("drain summaries diverge across the crash:\ngot  %+v\nwant %+v", res.Summary, wantRes.Summary)
	}
}
