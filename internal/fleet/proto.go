package fleet

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"trustgrid/internal/grid"
	"trustgrid/internal/metrics"
	"trustgrid/internal/sched"
)

// ProtoVersion is bumped on any incompatible frame change; a worker
// refuses an attach from a different version outright (a fleet is
// deployed as one unit — there is no skew window to support).
const ProtoVersion = 1

// maxFrame bounds one frame's payload. Large enough for a full engine
// snapshot of any realistic shard, small enough that a corrupt length
// prefix fails fast instead of allocating gigabytes.
const maxFrame = 64 << 20

// Frame types.
const (
	frameAttach   = "attach"   // coordinator → worker, first frame on a conn
	frameAttached = "attached" // worker → coordinator, attach response
	frameReq      = "req"      // coordinator → worker, one operation
	frameResp     = "resp"     // worker → coordinator, operation response
	frameHB       = "hb"       // worker → coordinator, unsolicited heartbeat
)

// Operations carried by frameReq.
const (
	opSubmit      = "submit"
	opAdvance     = "advance"
	opDrain       = "drain"
	opWeight      = "weight"
	opSnapshot    = "snapshot"
	opNeverPlaced = "never_placed"
)

// seqEvent is one engine event stamped with the worker's contiguous
// per-shard event sequence (from 1). The sequence is what makes
// reconnection exact: the coordinator acks the highest sequence it has
// delivered, and a reattach backfills everything after it — no drops,
// no duplicates. Deterministic WAL replay re-derives the same events
// in the same order, so the numbering survives a worker crash.
type seqEvent struct {
	Seq uint64            `json:"seq"`
	Ev  sched.EngineEvent `json:"ev"`
}

// shardStatus is the worker's introspection snapshot, piggybacked on
// every response and heartbeat so the coordinator's cached view (Now,
// backlog, metrics, site states) is at most one frame stale. Site
// indices are shard-local, like everything on this wire; the
// coordinator's partition table translates.
type shardStatus struct {
	Now          float64                  `json:"now"`
	Seen         int                      `json:"seen"`
	InFlight     int                      `json:"in_flight"`
	Backlog      int                      `json:"backlog"`
	Batches      int                      `json:"batches"`
	LargestBatch int                      `json:"largest_batch"`
	Sites        []sched.SiteStatus       `json:"sites"`
	Acc          metrics.AccumulatorState `json:"acc"`
	Busy         []float64                `json:"busy"`
	EventSeq     uint64                   `json:"event_seq"`
	Sched        string                   `json:"sched"`
}

// frame is the single wire message shape: Type selects which fields
// are meaningful. One flat struct instead of an envelope-plus-payload
// keeps the codec to one Marshal/Unmarshal per frame and makes every
// field greppable from either end of the wire.
type frame struct {
	Type string `json:"type"`

	// attach (coordinator → worker).
	Version int    `json:"version,omitempty"`
	Spec    *Spec  `json:"spec,omitempty"`
	Shard   int    `json:"shard,omitempty"`
	Since   uint64 `json:"since,omitempty"` // highest event seq already delivered

	// req/resp correlation and operation.
	ID     uint64    `json:"id,omitempty"`
	Op     string    `json:"op,omitempty"`
	To     float64   `json:"to,omitempty"`
	Job    *grid.Job `json:"job,omitempty"`
	Tenant string    `json:"tenant,omitempty"`
	Weight float64   `json:"weight,omitempty"`

	// attached/resp/hb payloads.
	Fingerprint string                `json:"fingerprint,omitempty"`
	Err         string                `json:"err,omitempty"`
	Events      []seqEvent            `json:"events,omitempty"`
	Status      *shardStatus          `json:"status,omitempty"`
	Result      *sched.Result         `json:"result,omitempty"`
	Snapshot    *sched.EngineSnapshot `json:"snapshot,omitempty"`
	Jobs        []grid.Job            `json:"jobs,omitempty"`
}

// writeFrame encodes one frame as [4-byte big-endian length][JSON].
// Callers serialize writes per connection (the worker's write mutex,
// the remote shard's call mutex).
func writeFrame(w io.Writer, f *frame) error {
	payload, err := json.Marshal(f)
	if err != nil {
		return err
	}
	if len(payload) > maxFrame {
		return fmt.Errorf("fleet: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// readFrame decodes one frame.
func readFrame(r io.Reader, f *frame) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return fmt.Errorf("fleet: frame length %d outside (0, %d]", n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return err
	}
	return json.Unmarshal(payload, f)
}
