package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"trustgrid/internal/experiments"
	"trustgrid/internal/grid"
	"trustgrid/internal/rng"
	"trustgrid/internal/sched"
)

// Spec is the complete, serializable description of a sharded run:
// everything needed to build any shard's engine, bit for bit. The
// server builds one Spec per run and ships it to every worker in the
// attach frame; the worker derives its own shard's RunConfig from it
// with ShardConfig. Both sides building from the SAME spec through the
// SAME derivation is what makes fleet determinism hold by construction
// rather than by careful double-maintenance — the in-process server
// path calls this exact method too.
//
// Every field is JSON-clean (the fingerprint and the worker's
// persisted spec file depend on it). Weights must list every tenant
// registered before traffic; runtime registrations travel as weight
// operations instead.
type Spec struct {
	Sites         []*grid.Site          `json:"sites"`
	Training      []*grid.Job           `json:"training,omitempty"`
	Algo          string                `json:"algo"`
	Mode          string                `json:"mode"`
	BatchInterval float64               `json:"batch_interval"`
	Seed          uint64                `json:"seed"`
	Setup         experiments.Setup     `json:"setup"`
	Shards        int                   `json:"shards"`
	RoundBudget   int                   `json:"round_budget,omitempty"`
	Weights       map[string]float64    `json:"weights,omitempty"`
	Dynamics      *sched.DynamicsConfig `json:"dynamics,omitempty"`
	SubmitBuffer  int                   `json:"submit_buffer,omitempty"`
}

// policy resolves the risk-mode string exactly like server.New.
func (sp *Spec) policy() (grid.Policy, error) {
	switch sp.Mode {
	case "secure":
		return sp.Setup.Policy(grid.Secure, 0), nil
	case "risky":
		return sp.Setup.Policy(grid.Risky, 0), nil
	case "frisky":
		return sp.Setup.Policy(grid.FRisky, sp.Setup.F), nil
	default:
		return grid.Policy{}, fmt.Errorf("fleet: unknown mode %q (want secure, risky or frisky)", sp.Mode)
	}
}

// Validate checks the spec's shard geometry.
func (sp *Spec) Validate() error {
	if sp.Shards < 1 {
		return fmt.Errorf("fleet: spec needs at least one shard, has %d", sp.Shards)
	}
	if sp.Shards > len(sp.Sites) {
		return fmt.Errorf("fleet: %d shards need at least %d sites, have %d", sp.Shards, sp.Shards, len(sp.Sites))
	}
	if _, err := sp.policy(); err != nil {
		return err
	}
	return nil
}

// Parts returns the spec's partition table (round-robin, the same
// PartitionSites the in-process coordinator uses).
func (sp *Spec) Parts() [][]int { return sched.PartitionSites(len(sp.Sites), sp.Shards) }

// ShardConfig derives shard i's engine config: its site partition, its
// own scheduler instance, its labelled RNG streams, its slice of the
// churn trace. This is the single construction path for in-process
// shards (server.New delegates here) and workers alike.
func (sp *Spec) ShardConfig(i int, durable bool) (sched.RunConfig, error) {
	if err := sp.Validate(); err != nil {
		return sched.RunConfig{}, err
	}
	if i < 0 || i >= sp.Shards {
		return sched.RunConfig{}, fmt.Errorf("fleet: shard %d outside [0, %d)", i, sp.Shards)
	}
	policy, err := sp.policy()
	if err != nil {
		return sched.RunConfig{}, err
	}
	parts := sp.Parts()
	sites := sched.ShardSites(sp.Sites, parts[i])
	root := rng.New(sp.Seed)
	scheduler, err := sp.Setup.SchedulerByName(sp.Algo, policy,
		root.Derive(sched.ShardRNGLabel("scheduler", sp.Shards, i)), sp.Training, sites)
	if err != nil {
		return sched.RunConfig{}, err
	}
	return sched.RunConfig{
		Sites:         sites,
		Scheduler:     scheduler,
		BatchInterval: sp.BatchInterval,
		Security:      sp.Setup.Model(),
		FailureTiming: sp.Setup.FailTiming,
		Rand:          root.Derive(sched.ShardRNGLabel("engine", sp.Shards, i)),
		SubmitBuffer:  sp.SubmitBuffer,
		Dynamics:      sched.PartitionDynamics(sp.Dynamics, parts[i]),
		Admission:     &sched.AdmissionConfig{RoundBudget: sp.RoundBudget, Weights: sp.Weights},
		// A long-running shard cannot afford per-job records; the
		// incremental accumulator carries the metrics (same choice the
		// daemon makes).
		DiscardRecords: true,
		Durable:        durable,
	}, nil
}

// rngVersionMismatch reports whether offered and pinned are the same
// run on different rng draw contracts: their Setup.RNGVersion fields
// disagree and neutralizing that one field makes the fingerprints
// match. The empty string means the specs differ some other way (or
// not at all) and the caller should fall back to the generic
// fingerprint rejection; a non-empty string is the operator-facing
// diagnosis. Shallow copies suffice: only the scalar RNGVersion is
// modified.
func rngVersionMismatch(offered, pinned *Spec) string {
	if offered.Setup.RNGVersion == pinned.Setup.RNGVersion {
		return ""
	}
	a, b := *offered, *pinned
	a.Setup.RNGVersion, b.Setup.RNGVersion = 0, 0
	fa, errA := a.Fingerprint()
	fb, errB := b.Fingerprint()
	if errA != nil || errB != nil || fa != fb {
		return ""
	}
	return fmt.Sprintf(
		"fleet: rng version mismatch: coordinator draws under v%d, worker is configured for v%d (a mixed-version fleet would diverge shard by shard; restart every member on one version)",
		displayRNGVersion(offered.Setup.RNGVersion), displayRNGVersion(pinned.Setup.RNGVersion))
}

// displayRNGVersion folds the raw Setup knob into the version number an
// operator sets: 0 and 1 are both the v1 contract.
func displayRNGVersion(raw int) int {
	if v, err := rng.ParseVersion(raw); err == nil {
		return v.Num()
	}
	return raw
}

// Fingerprint is a stable content hash of the spec. The worker pins it
// at configuration time and refuses attaches (and WAL recoveries)
// under a different one: silently mixing engines built from diverging
// specs would break the determinism contract in ways no test at either
// end could see locally. json.Marshal sorts map keys, so the encoding
// is canonical.
func (sp *Spec) Fingerprint() (string, error) {
	payload, err := json.Marshal(sp)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:]), nil
}
