package fleet

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"trustgrid/internal/api"
	"trustgrid/internal/grid"
	"trustgrid/internal/sched"
	"trustgrid/internal/wal"
)

// WorkerConfig configures one trustgrid-worker process.
type WorkerConfig struct {
	// WALDir, when non-empty, makes the shard durable: the worker
	// write-ahead-logs every input (arrivals, weights, barriers, its
	// churn prefix), persists the spec it was configured with, and a
	// restart replays the log — re-deriving the same engine state, the
	// same events and the same event sequence numbers — before
	// reattaching. Empty keeps the shard in memory only.
	WALDir string
	// EventBuffer bounds the retained event ring (default 65536). A
	// reattaching coordinator can only backfill from within the ring;
	// a `since` older than the ring's horizon fails the attach.
	EventBuffer int
	// Heartbeat is the unsolicited status cadence (default 1s). It must
	// be comfortably under the coordinator's TTL: heartbeats are what
	// keep the connection visibly alive through a long advance.
	Heartbeat time.Duration
}

// specFile is the worker's persisted configuration: written on first
// configure, verified on every recovery and reattach. The shard index
// is pinned — a WAL written as shard 2 must never replay into shard 1.
type specFile struct {
	Fingerprint string `json:"fingerprint"`
	Shard       int    `json:"shard"`
	Spec        *Spec  `json:"spec"`
}

// Worker hosts one engine shard behind the fleet protocol. It is
// configured by the first attach (the coordinator ships the Spec) or,
// on restart, by its own persisted spec + WAL before any connection
// arrives. One coordinator connection is active at a time — the latest
// attach wins and the previous connection is closed.
type Worker struct {
	cfg WorkerConfig

	// mu guards the engine, the WAL, the ring and the configured-state
	// fields. Every engine operation — attach-time recovery included —
	// runs under it; the engine's "loop goroutine" is whoever holds it.
	mu    sync.Mutex
	spec  *Spec
	shard int
	fp    string
	eng   *sched.Online
	log   *wal.Log
	churn []grid.ChurnEvent // shard-local churn trace (WAL prefix)
	ring  eventRing
	seq   uint64

	// statusMu guards the cached status the heartbeat sender reads; the
	// cache is refreshed at the end of every operation so heartbeats
	// never need mu (a heartbeat must go out even mid-drain — it is
	// what keeps the coordinator's read deadline alive).
	statusMu   sync.Mutex
	lastStatus *shardStatus

	connMu sync.Mutex
	active *wconn

	quit chan struct{}
	once sync.Once
	wg   sync.WaitGroup
}

// wconn is one coordinator connection: the socket, a write mutex
// (operation responses and heartbeats interleave), and the event
// watermark already delivered on this connection.
type wconn struct {
	c    net.Conn
	wmu  sync.Mutex
	sent uint64
}

func (wc *wconn) write(f *frame) error {
	wc.wmu.Lock()
	defer wc.wmu.Unlock()
	return writeFrame(wc.c, f)
}

// eventRing retains the tail of the shard's event stream, stamped with
// contiguous sequence numbers, so a reconnect can backfill exactly
// what it missed.
type eventRing struct {
	events []seqEvent
	max    int
}

func (r *eventRing) append(e seqEvent) {
	if len(r.events) >= r.max {
		half := (len(r.events) + 1) / 2
		r.events = append(r.events[:0], r.events[half:]...)
	}
	r.events = append(r.events, e)
}

// after returns every retained event with Seq > since, or an error if
// the ring has already evicted part of that range.
func (r *eventRing) after(since uint64) ([]seqEvent, error) {
	if len(r.events) == 0 {
		return nil, nil
	}
	base := r.events[0].Seq
	if since+1 < base {
		return nil, fmt.Errorf("fleet: event horizon lost (need seq %d, ring starts at %d)", since+1, base)
	}
	idx := int(since + 1 - base)
	if idx >= len(r.events) {
		return nil, nil
	}
	out := make([]seqEvent, len(r.events)-idx)
	copy(out, r.events[idx:])
	return out, nil
}

// NewWorker builds a worker. If WALDir holds a persisted spec the
// shard is rebuilt immediately — recovery before reattach, so the
// first attach after a crash finds a caught-up engine.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.EventBuffer <= 0 {
		cfg.EventBuffer = 1 << 16
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = time.Second
	}
	w := &Worker{cfg: cfg, quit: make(chan struct{})}
	w.ring.max = cfg.EventBuffer
	if cfg.WALDir != "" {
		if _, err := os.Stat(w.specPath()); err == nil {
			w.mu.Lock()
			err := w.recoverLocked()
			w.mu.Unlock()
			if err != nil {
				return nil, fmt.Errorf("fleet: worker recovery: %w", err)
			}
		}
	}
	return w, nil
}

func (w *Worker) specPath() string { return filepath.Join(w.cfg.WALDir, "spec.json") }

// Fingerprint returns the configured spec's fingerprint ("" before the
// first attach configures the worker).
func (w *Worker) Fingerprint() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.fp
}

// Serve accepts coordinator connections until Close. It owns the
// listener and the heartbeat sender.
func (w *Worker) Serve(ln net.Listener) error {
	w.wg.Add(1)
	go w.heartbeats()
	defer w.wg.Wait()
	go func() { <-w.quit; ln.Close() }()
	for {
		c, err := ln.Accept()
		if err != nil {
			select {
			case <-w.quit:
				return nil
			default:
				return err
			}
		}
		w.wg.Add(1)
		go w.handleConn(c)
	}
}

// Close stops the worker: listener, active connection, WAL.
func (w *Worker) Close() error {
	w.once.Do(func() { close(w.quit) })
	w.connMu.Lock()
	if w.active != nil {
		w.active.c.Close()
		w.active = nil
	}
	w.connMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.log != nil {
		err := w.log.Close()
		w.log = nil
		return err
	}
	return nil
}

// heartbeats pushes the cached status over the active connection on a
// timer. A write failure closes the connection; the handler's next
// read unblocks and the coordinator redials.
func (w *Worker) heartbeats() {
	defer w.wg.Done()
	t := time.NewTicker(w.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-w.quit:
			return
		case <-t.C:
		}
		w.connMu.Lock()
		wc := w.active
		w.connMu.Unlock()
		if wc == nil {
			continue
		}
		w.statusMu.Lock()
		st := w.lastStatus
		w.statusMu.Unlock()
		if st == nil {
			continue
		}
		if err := wc.write(&frame{Type: frameHB, Status: st}); err != nil {
			wc.c.Close()
		}
	}
}

func (w *Worker) setActive(wc *wconn) {
	w.connMu.Lock()
	prev := w.active
	w.active = wc
	w.connMu.Unlock()
	if prev != nil && prev != wc {
		prev.c.Close()
	}
}

// handleConn speaks the protocol on one connection: exactly one attach
// frame, then a request loop. Any protocol error drops the connection;
// the coordinator's reattach logic owns retries.
func (w *Worker) handleConn(c net.Conn) {
	defer w.wg.Done()
	defer c.Close()
	var at frame
	if err := readFrame(c, &at); err != nil {
		return
	}
	wc := &wconn{c: c}
	reply, ok := w.attach(wc, &at)
	if err := wc.write(reply); err != nil || !ok {
		return
	}
	w.setActive(wc)
	for {
		var req frame
		if err := readFrame(c, &req); err != nil {
			return
		}
		if req.Type != frameReq {
			return
		}
		resp := w.handleReq(wc, &req)
		if err := wc.write(resp); err != nil {
			return
		}
	}
}

// attach validates (and on first contact, applies) the coordinator's
// configuration, then computes the event backfill its Since watermark
// asks for. It returns the attached frame and whether the attach is
// accepted.
func (w *Worker) attach(wc *wconn, f *frame) (*frame, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	reject := func(format string, args ...any) (*frame, bool) {
		return &frame{Type: frameAttached, Err: fmt.Sprintf(format, args...)}, false
	}
	if f.Type != frameAttach {
		return reject("fleet: first frame is %q, want attach", f.Type)
	}
	if f.Version != ProtoVersion {
		return reject("fleet: protocol version %d, worker speaks %d", f.Version, ProtoVersion)
	}
	if f.Spec == nil {
		return reject("fleet: attach without spec")
	}
	offered, err := f.Spec.Fingerprint()
	if err != nil {
		return reject("fleet: spec fingerprint: %v", err)
	}
	if w.spec == nil {
		if err := w.configureLocked(f.Spec, f.Shard, offered); err != nil {
			return reject("%v", err)
		}
	} else {
		if offered != w.fp {
			// Diagnose the one mismatch with a clean operator action
			// before the generic refusal: same run, different draw
			// contract.
			if msg := rngVersionMismatch(f.Spec, w.spec); msg != "" {
				return reject("%s", msg)
			}
			return reject("fleet: spec fingerprint %.12s does not match configured %.12s (refusing to mix runs)", offered, w.fp)
		}
		if f.Shard != w.shard {
			return reject("fleet: attach as shard %d, worker is configured as shard %d", f.Shard, w.shard)
		}
	}
	backfill, err := w.ring.after(f.Since)
	if err != nil {
		return reject("%v", err)
	}
	wc.sent = w.seq
	st := w.refreshStatusLocked()
	return &frame{
		Type: frameAttached, Shard: w.shard, Fingerprint: w.fp,
		Events: backfill, Status: st,
	}, true
}

// configureLocked applies the first attach's spec: build the engine,
// and — when durable — persist the spec and seed the WAL with the
// shard's churn prefix, exactly like the server's first durable boot.
func (w *Worker) configureLocked(spec *Spec, shard int, fp string) error {
	durable := w.cfg.WALDir != ""
	cfg, err := spec.ShardConfig(shard, durable)
	if err != nil {
		return err
	}
	cfg.OnEvent = w.stampEvent
	var churn []grid.ChurnEvent
	if d := cfg.Dynamics; d != nil {
		churn = d.Churn
	}
	var log *wal.Log
	if durable {
		log, err = wal.Open(w.cfg.WALDir)
		if err != nil {
			return err
		}
		payload, err := json.Marshal(specFile{Fingerprint: fp, Shard: shard, Spec: spec})
		if err != nil {
			log.Close()
			return err
		}
		tmp := w.specPath() + ".tmp"
		if err := os.WriteFile(tmp, payload, 0o644); err != nil {
			log.Close()
			return err
		}
		if err := os.Rename(tmp, w.specPath()); err != nil {
			log.Close()
			return err
		}
	}
	eng, err := sched.NewOnline(cfg)
	if err != nil {
		if log != nil {
			log.Close()
		}
		return err
	}
	if log != nil {
		for i := range churn {
			if _, err := log.Append(wal.Record{Kind: wal.KindChurn, Churn: &churn[i]}); err != nil {
				log.Close()
				return err
			}
		}
		if err := log.Commit(); err != nil {
			log.Close()
			return err
		}
	}
	w.spec, w.shard, w.fp = spec, shard, fp
	w.eng, w.log, w.churn = eng, log, churn
	return nil
}

// recoverLocked rebuilds the shard from its persisted spec and WAL:
// the same replay discipline as the server's single-shard recovery —
// verify the churn prefix, then re-apply every record at its recorded
// clock. Deterministic replay regenerates the engine's event stream
// from sequence 1, so the ring and the seq counter come back exactly
// as a coordinator that stayed attached would have seen them.
func (w *Worker) recoverLocked() error {
	payload, err := os.ReadFile(w.specPath())
	if err != nil {
		return err
	}
	var sf specFile
	if err := json.Unmarshal(payload, &sf); err != nil || sf.Spec == nil {
		return fmt.Errorf("fleet: unreadable spec file %s: %v", w.specPath(), err)
	}
	fp, err := sf.Spec.Fingerprint()
	if err != nil {
		return err
	}
	if fp != sf.Fingerprint {
		return fmt.Errorf("fleet: spec file fingerprint %.12s does not match its spec (%.12s)", sf.Fingerprint, fp)
	}
	cfg, err := sf.Spec.ShardConfig(sf.Shard, true)
	if err != nil {
		return err
	}
	cfg.OnEvent = w.stampEvent
	var churn []grid.ChurnEvent
	if d := cfg.Dynamics; d != nil {
		churn = d.Churn
	}
	eng, err := sched.NewOnline(cfg)
	if err != nil {
		return err
	}
	log, err := wal.Open(w.cfg.WALDir)
	if err != nil {
		return err
	}
	w.spec, w.shard, w.fp = sf.Spec, sf.Shard, fp
	w.eng, w.log, w.churn = eng, log, churn
	err = log.Replay(0, func(rec wal.Record) error {
		if rec.Kind == wal.KindChurn {
			idx := int(rec.Seq) - 1
			if idx >= len(churn) || *rec.Churn != churn[idx] {
				return fmt.Errorf("churn record %d does not match the spec's churn trace", rec.Seq)
			}
			return nil
		}
		if rec.Seq <= uint64(len(churn)) {
			return fmt.Errorf("record %d is %q where the churn prefix was expected", rec.Seq, rec.Kind)
		}
		return w.replayRecord(rec)
	})
	if err != nil {
		log.Close()
		w.eng, w.log = nil, nil
		return err
	}
	// First boot interrupted mid-prefix: finish recording the trace.
	if n := log.LastSeq(); n < uint64(len(churn)) {
		for i := int(n); i < len(churn); i++ {
			if _, err := log.Append(wal.Record{Kind: wal.KindChurn, Churn: &churn[i]}); err != nil {
				return err
			}
		}
		if err := log.Commit(); err != nil {
			return err
		}
	}
	w.refreshStatusLocked()
	return nil
}

// replayRecord re-applies one logged input, mirroring the server's
// replay: advance to the recorded clock first so the input lands in
// the event queue at its original position.
func (w *Worker) replayRecord(rec wal.Record) error {
	if rec.At > w.eng.Now() {
		if err := w.eng.AdvanceTo(rec.At); err != nil {
			return fmt.Errorf("advancing to record %d clock %v: %w", rec.Seq, rec.At, err)
		}
	}
	switch rec.Kind {
	case wal.KindTenant:
		w.eng.SetTenantWeight(rec.Tenant.ID, rec.Tenant.Weight)
	case wal.KindBarrier:
		if rec.Barrier.Drain {
			if _, err := w.eng.Drain(); err != nil {
				return fmt.Errorf("barrier record %d (drain): %w", rec.Seq, err)
			}
		} else if err := w.eng.AdvanceTo(rec.Barrier.To); err != nil {
			return fmt.Errorf("barrier record %d (advance to %v): %w", rec.Seq, rec.Barrier.To, err)
		}
	case wal.KindArrival:
		if err := w.eng.SubmitLocal(rec.Arrival.Job()); err != nil {
			return fmt.Errorf("arrival record %d: %w", rec.Seq, err)
		}
	}
	return nil
}

// stampEvent is the engine's event sink: stamp the next sequence
// number, retain in the ring. Runs under mu (the engine only executes
// under mu).
func (w *Worker) stampEvent(ev sched.EngineEvent) {
	w.seq++
	w.ring.append(seqEvent{Seq: w.seq, Ev: ev})
}

// refreshStatusLocked rebuilds the cached status from the engine.
func (w *Worker) refreshStatusLocked() *shardStatus {
	acc, busy := w.eng.MetricsState()
	st := &shardStatus{
		Now:          w.eng.Now(),
		Seen:         w.eng.Seen(),
		InFlight:     w.eng.InFlight(),
		Backlog:      w.eng.Backlog(),
		Batches:      w.eng.Batches(),
		LargestBatch: w.eng.LargestBatch(),
		Sites:        w.eng.SiteStatuses(),
		Acc:          acc,
		Busy:         append([]float64(nil), busy...),
		EventSeq:     w.seq,
		Sched:        w.spec.Algo,
	}
	w.statusMu.Lock()
	w.lastStatus = st
	w.statusMu.Unlock()
	return st
}

// logInput appends one record and, with sync set, commits it. The
// worker's durability discipline is log-before-execute and
// commit-before-ack: an acknowledged input must survive a kill -9.
func (w *Worker) logInput(rec wal.Record) error {
	if w.log == nil {
		return nil
	}
	rec.At = w.eng.Now()
	_, err := w.log.Append(rec)
	return err
}

func (w *Worker) commit() error {
	if w.log == nil {
		return nil
	}
	return w.log.Commit()
}

// handleReq executes one operation. All engine work happens here,
// under mu; the response carries the operation's payload, the events
// emitted since this connection's watermark, and a fresh status.
func (w *Worker) handleReq(wc *wconn, f *frame) *frame {
	w.mu.Lock()
	defer w.mu.Unlock()
	resp := &frame{Type: frameResp, ID: f.ID}
	fail := func(err error) *frame {
		resp.Err = err.Error()
		if w.eng != nil {
			resp.Status = w.refreshStatusLocked()
		}
		return resp
	}
	if w.eng == nil {
		return fail(fmt.Errorf("fleet: worker not configured"))
	}
	switch f.Op {
	case opSubmit:
		if f.Job == nil {
			return fail(fmt.Errorf("fleet: submit without job"))
		}
		j := f.Job
		// Validate before logging: a rejected job must leave no WAL
		// record, or the recovery replay would re-reject it and refuse
		// to boot. (The daemon pre-validates too, but the worker cannot
		// assume a well-behaved coordinator.)
		if err := j.Validate(); err != nil {
			return fail(err)
		}
		if err := w.logInput(wal.Record{Kind: wal.KindArrival, Arrival: &api.TraceRecord{
			ID: j.ID, Arrival: j.Arrival, Workload: j.Workload, Nodes: j.Nodes,
			SD: j.SecurityDemand, Tenant: j.Tenant, SafeOnly: j.SafeOnly,
		}}); err != nil {
			return fail(err)
		}
		if err := w.eng.SubmitLocal(j); err != nil {
			return fail(err)
		}
		if err := w.commit(); err != nil {
			return fail(err)
		}
	case opAdvance:
		if err := w.logInput(wal.Record{Kind: wal.KindBarrier, Barrier: &wal.BarrierRecord{To: f.To}}); err != nil {
			return fail(err)
		}
		if err := w.eng.AdvanceTo(f.To); err != nil {
			return fail(err)
		}
		if err := w.commit(); err != nil {
			return fail(err)
		}
	case opDrain:
		if err := w.logInput(wal.Record{Kind: wal.KindBarrier, Barrier: &wal.BarrierRecord{Drain: true}}); err != nil {
			return fail(err)
		}
		res, err := w.eng.Drain()
		if err != nil {
			return fail(err)
		}
		if err := w.commit(); err != nil {
			return fail(err)
		}
		resp.Result = res
	case opWeight:
		if err := w.logInput(wal.Record{Kind: wal.KindTenant, Tenant: &api.TenantSpec{
			ID: f.Tenant, Weight: f.Weight,
		}}); err != nil {
			return fail(err)
		}
		w.eng.SetTenantWeight(f.Tenant, f.Weight)
		if err := w.commit(); err != nil {
			return fail(err)
		}
	case opSnapshot:
		snap, err := w.eng.Snapshot()
		if err != nil {
			return fail(err)
		}
		resp.Snapshot = snap
	case opNeverPlaced:
		resp.Jobs = w.eng.NeverPlaced()
	default:
		return fail(fmt.Errorf("fleet: unknown op %q", f.Op))
	}
	evs, err := w.ring.after(wc.sent)
	if err != nil {
		return fail(err)
	}
	resp.Events = evs
	wc.sent = w.seq
	resp.Status = w.refreshStatusLocked()
	return resp
}
