package fleet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"trustgrid/internal/grid"
	"trustgrid/internal/metrics"
	"trustgrid/internal/sched"
)

// RemoteShard plugs into the coordinator anywhere an in-process engine
// does.
var _ sched.Shard = (*RemoteShard)(nil)

// DialConfig tunes one worker connection.
type DialConfig struct {
	// TTL is the liveness deadline: the reader expects SOME frame
	// (response or heartbeat) within every TTL window, and marks the
	// worker down otherwise. Must exceed the worker's heartbeat cadence
	// by a comfortable factor. Default 5s.
	TTL time.Duration
	// DialTimeout bounds each connection attempt. Default 2s.
	DialTimeout time.Duration
}

func (dc *DialConfig) fill() {
	if dc.TTL <= 0 {
		dc.TTL = 5 * time.Second
	}
	if dc.DialTimeout <= 0 {
		dc.DialTimeout = 2 * time.Second
	}
}

// RemoteShard implements sched.Shard over one worker connection, so
// sched.Coordinator drives a fleet exactly as it drives in-process
// engines. Liveness is asymmetric by design:
//
//   - Barrier operations (AdvanceTo, Drain) run on the coordinator's
//     driving goroutines — they are the only callers that redial and
//     reattach a down worker, and the backfilled events land in the
//     very barrier that re-established contact.
//   - Everything else fails fast while down: submissions return
//     ErrShardDown (the server's existing 503 + quota-unwind path),
//     weight changes queue for replay on reattach, introspection serves
//     the last cached status, and NeverPlaced reports nothing — a
//     merely-down shard must not look like a shard that stranded jobs.
type RemoteShard struct {
	addr string
	spec *Spec
	idx  int
	dc   DialConfig

	// mu serializes every operation on this shard (wire order on the
	// connection IS the worker's execution order) and guards all mutable
	// state below. Each shard has its own mu, so barrier fan-out across
	// shards still runs in parallel.
	mu       sync.Mutex
	conn     net.Conn
	down     bool
	fp       string // pinned at first attach
	nextID   uint64
	lastSeen uint64 // highest event seq delivered to the sink
	sink     func(sched.EngineEvent)
	pendingW map[string]float64 // weight ops queued while down
	closed   bool

	// smu guards the cached status alone. The reader goroutine updates
	// it from heartbeats, so it must never need mu — an operation holds
	// mu for its whole exchange, and the reader has to stay free to
	// deliver that operation's response.
	smu    sync.Mutex
	status shardStatus

	// calls routes responses (by frame ID) from the reader goroutine to
	// the operation waiting in reqLocked. A dying reader closes every
	// pending channel — without touching mu, for the same reason.
	cmu   sync.Mutex
	calls map[uint64]chan *frame
}

// Dial connects to a worker, attaches it as shard idx of spec, and
// returns the Shard. The first attach configures a blank worker; later
// attaches (and restarts of a durable worker) are verified against the
// spec fingerprint.
func Dial(addr string, spec *Spec, idx int, dc DialConfig) (*RemoteShard, error) {
	dc.fill()
	rs := &RemoteShard{
		addr: addr, spec: spec, idx: idx, dc: dc,
		pendingW: map[string]float64{},
		calls:    map[uint64]chan *frame{},
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if err := rs.reattachLocked(); err != nil {
		return nil, err
	}
	return rs, nil
}

// Addr returns the worker's address.
func (rs *RemoteShard) Addr() string { return rs.addr }

// Down reports whether the worker is currently unreachable.
func (rs *RemoteShard) Down() bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.down
}

// Close tears the connection down for good.
func (rs *RemoteShard) Close() error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.closed = true
	if rs.conn != nil {
		err := rs.conn.Close()
		rs.conn = nil
		rs.down = true
		return err
	}
	return nil
}

// downErr wraps ErrShardDown with this shard's identity so errors.Is
// still matches while logs say which worker vanished.
func (rs *RemoteShard) downErr(cause error) error {
	if cause != nil {
		return fmt.Errorf("fleet: worker %s (shard %d): %w: %v", rs.addr, rs.idx, sched.ErrShardDown, cause)
	}
	return fmt.Errorf("fleet: worker %s (shard %d): %w", rs.addr, rs.idx, sched.ErrShardDown)
}

// reattachLocked (re)establishes the connection: dial, attach with the
// last delivered event sequence, verify identity, deliver the backfill,
// replay weight changes queued while down, then hand the socket to a
// fresh reader goroutine. Caller holds mu.
func (rs *RemoteShard) reattachLocked() error {
	if rs.closed {
		return rs.downErr(errors.New("closed"))
	}
	if rs.conn != nil && !rs.down {
		return nil
	}
	if rs.conn != nil {
		rs.conn.Close()
		rs.conn = nil
	}
	conn, err := net.DialTimeout("tcp", rs.addr, rs.dc.DialTimeout)
	if err != nil {
		rs.down = true
		return rs.downErr(err)
	}
	fail := func(err error) error {
		conn.Close()
		rs.down = true
		return err
	}
	attach := &frame{
		Type: frameAttach, Version: ProtoVersion,
		Spec: rs.spec, Shard: rs.idx, Since: rs.lastSeen,
	}
	conn.SetDeadline(time.Now().Add(rs.dc.TTL))
	if err := writeFrame(conn, attach); err != nil {
		return fail(rs.downErr(err))
	}
	var at frame
	if err := readFrame(conn, &at); err != nil {
		return fail(rs.downErr(err))
	}
	conn.SetDeadline(time.Time{})
	if at.Type != frameAttached {
		return fail(rs.downErr(fmt.Errorf("got %q frame, want attached", at.Type)))
	}
	if at.Err != "" {
		// The worker refused: fingerprint or shard mismatch, lost event
		// horizon. Not a liveness problem — surface it verbatim.
		return fail(fmt.Errorf("fleet: worker %s refused attach: %s", rs.addr, at.Err))
	}
	if rs.fp == "" {
		rs.fp = at.Fingerprint
	} else if at.Fingerprint != rs.fp {
		return fail(fmt.Errorf("fleet: worker %s fingerprint changed across reattach (%.12s -> %.12s)",
			rs.addr, rs.fp, at.Fingerprint))
	}
	rs.conn = conn
	rs.down = false
	if at.Status != nil {
		rs.noteStatus(at.Status)
	}
	rs.deliverLocked(at.Events)
	go rs.reader(conn)
	// Weight changes made while the worker was down replay before any
	// other operation reaches it, restoring the admission state it
	// missed. (A durable worker also WALs these, so they then survive
	// its next crash too.)
	for tenant, weight := range rs.pendingW {
		resp, err := rs.reqLocked(&frame{Type: frameReq, Op: opWeight, Tenant: tenant, Weight: weight})
		if err != nil {
			return err
		}
		if resp.Err != "" {
			return fmt.Errorf("fleet: worker %s: replaying weight for %q: %s", rs.addr, tenant, resp.Err)
		}
		delete(rs.pendingW, tenant)
	}
	return nil
}

// deliverLocked forwards backfilled/piggybacked events to the sink in
// sequence order, dropping anything at or below the delivered
// watermark (belt and braces: the worker's per-connection watermark
// already avoids duplicates on a healthy connection).
func (rs *RemoteShard) deliverLocked(evs []seqEvent) {
	for _, se := range evs {
		if se.Seq <= rs.lastSeen {
			continue
		}
		rs.lastSeen = se.Seq
		if rs.sink != nil {
			rs.sink(se.Ev)
		}
	}
}

// reader drains one connection: heartbeats refresh the cached status,
// responses route to their waiting call. Any read error — including a
// TTL expiry with no frame at all — marks the shard down and fails
// every pending call.
func (rs *RemoteShard) reader(conn net.Conn) {
	for {
		conn.SetReadDeadline(time.Now().Add(rs.dc.TTL))
		var f frame
		if err := readFrame(conn, &f); err != nil {
			rs.connFailed(conn)
			return
		}
		switch f.Type {
		case frameHB:
			if f.Status != nil {
				rs.noteStatus(f.Status)
			}
		case frameResp:
			rs.cmu.Lock()
			ch := rs.calls[f.ID]
			delete(rs.calls, f.ID)
			rs.cmu.Unlock()
			if ch != nil {
				ch <- &f
			}
		default:
			rs.connFailed(conn)
			return
		}
	}
}

// noteStatus refreshes the cached status. Status only moves on
// operations the coordinator itself drives, so a heartbeat's snapshot
// never races ahead of a pending response in a way that matters; last
// writer wins is fine.
func (rs *RemoteShard) noteStatus(st *shardStatus) {
	rs.smu.Lock()
	rs.status = *st
	rs.smu.Unlock()
}

// connFailed is the reader's death rattle: fail every pending call by
// closing its channel FIRST (the waiter may be holding mu), then mark
// the shard down. Taking mu before releasing the waiter would deadlock
// — reqLocked waits for its channel while holding mu.
func (rs *RemoteShard) connFailed(conn net.Conn) {
	conn.Close()
	rs.cmu.Lock()
	for id, ch := range rs.calls {
		close(ch)
		delete(rs.calls, id)
	}
	rs.cmu.Unlock()
	rs.mu.Lock()
	if rs.conn == conn {
		rs.conn = nil
		rs.down = true
	}
	rs.mu.Unlock()
}

// reqLocked performs one request/response exchange. Caller holds mu —
// which is exactly what serializes operations into worker execution
// order. The wait is channel-based because the response arrives on the
// reader goroutine.
func (rs *RemoteShard) reqLocked(f *frame) (*frame, error) {
	if rs.down || rs.conn == nil {
		return nil, rs.downErr(nil)
	}
	rs.nextID++
	f.ID = rs.nextID
	ch := make(chan *frame, 1)
	rs.cmu.Lock()
	rs.calls[f.ID] = ch
	rs.cmu.Unlock()
	if err := writeFrame(rs.conn, f); err != nil {
		// mu is held: deregister our own call (it is the only one — mu
		// serializes operations) and mark down inline rather than via
		// connFailed, which relocks mu.
		rs.cmu.Lock()
		delete(rs.calls, f.ID)
		rs.cmu.Unlock()
		rs.conn.Close()
		rs.conn = nil
		rs.down = true
		return nil, rs.downErr(err)
	}
	resp, ok := <-ch
	if !ok {
		rs.down = true
		return nil, rs.downErr(errors.New("connection lost mid-call"))
	}
	if resp.Status != nil {
		rs.noteStatus(resp.Status)
	}
	rs.deliverLocked(resp.Events)
	return resp, nil
}

// opErr folds a response's application-level error. It is NOT
// ErrShardDown: the worker is alive and answered — a failing engine
// must fail the run, exactly as it does in process.
func opErr(resp *frame) error {
	if resp.Err != "" {
		return errors.New(resp.Err)
	}
	return nil
}

// --- sched.Shard: submissions -------------------------------------

func (rs *RemoteShard) submit(j *grid.Job) error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.down {
		// No redial here: submissions arrive on request goroutines, and
		// probing a dead worker from every HTTP handler would stampede.
		// The next barrier reattaches; until then the server's 503 path
		// holds the door.
		return rs.downErr(nil)
	}
	resp, err := rs.reqLocked(&frame{Type: frameReq, Op: opSubmit, Job: j})
	if err != nil {
		return err
	}
	return opErr(resp)
}

// Submit forwards the job to the worker. The worker applies it with
// SubmitLocal semantics (clamped to the shard clock) — identical to
// the in-process manual path, and the live path's clamp-at-Now is the
// same value the server just read.
func (rs *RemoteShard) Submit(j *grid.Job) error { return rs.submit(j) }

// SubmitOr matches Submit; the done channel is not consulted — the
// remote exchange is bounded by the TTL rather than by engine
// backpressure, which a worker absorbs locally.
func (rs *RemoteShard) SubmitOr(done <-chan struct{}, j *grid.Job) error { return rs.submit(j) }

// SubmitLocal matches Submit remotely: the worker owns the clock.
func (rs *RemoteShard) SubmitLocal(j *grid.Job) error { return rs.submit(j) }

// --- sched.Shard: barriers ----------------------------------------

// Reattach redials and reattaches a down worker immediately instead of
// waiting for the next barrier. Useful when the caller knows the
// worker is back (tests, operator tooling); the daemon's steady state
// never needs it.
func (rs *RemoteShard) Reattach() error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.reattachLocked()
}

// AdvanceTo drives the shard to t, reattaching first if the worker
// went down. A reattach backfills every event the coordinator missed;
// a worker that replayed its WAL re-derives those events under the
// same sequence numbers, so the merged stream is gapless either way.
func (rs *RemoteShard) AdvanceTo(t float64) error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if err := rs.reattachLocked(); err != nil {
		return err
	}
	resp, err := rs.reqLocked(&frame{Type: frameReq, Op: opAdvance, To: t})
	if err != nil {
		return err
	}
	return opErr(resp)
}

// Drain completes every admitted job.
func (rs *RemoteShard) Drain() (*sched.Result, error) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if err := rs.reattachLocked(); err != nil {
		return nil, err
	}
	resp, err := rs.reqLocked(&frame{Type: frameReq, Op: opDrain})
	if err != nil {
		return nil, err
	}
	if err := opErr(resp); err != nil {
		return nil, err
	}
	if resp.Result == nil {
		return nil, fmt.Errorf("fleet: worker %s: drain response without result", rs.addr)
	}
	return resp.Result, nil
}

// --- sched.Shard: control -----------------------------------------

// SetTenantWeight forwards the weight change, or queues it for replay
// on reattach when the worker is down (the Shard interface has no
// error surface here, and a lost weight would silently skew fairness
// forever — queueing is the only correct option).
func (rs *RemoteShard) SetTenantWeight(tenant string, weight float64) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.down {
		rs.pendingW[tenant] = weight
		return
	}
	if resp, err := rs.reqLocked(&frame{Type: frameReq, Op: opWeight, Tenant: tenant, Weight: weight}); err != nil || resp.Err != "" {
		rs.pendingW[tenant] = weight
	}
}

// SetEventSink installs the coordinator's observer. Install before the
// first barrier, as with in-process shards.
func (rs *RemoteShard) SetEventSink(fn func(sched.EngineEvent)) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.sink = fn
}

// Snapshot proxies the worker's engine snapshot (durable workers only).
func (rs *RemoteShard) Snapshot() (*sched.EngineSnapshot, error) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.down {
		return nil, rs.downErr(nil)
	}
	resp, err := rs.reqLocked(&frame{Type: frameReq, Op: opSnapshot})
	if err != nil {
		return nil, err
	}
	if err := opErr(resp); err != nil {
		return nil, err
	}
	return resp.Snapshot, nil
}

// NeverPlaced reports the worker's stranded jobs — or nothing while
// the worker is down: a down shard's jobs are delayed, not abandoned,
// and the server's quota sweep must not release them.
func (rs *RemoteShard) NeverPlaced() []grid.Job {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.down {
		return nil
	}
	resp, err := rs.reqLocked(&frame{Type: frameReq, Op: opNeverPlaced})
	if err != nil || resp.Err != "" {
		return nil
	}
	return resp.Jobs
}

// --- sched.Shard: introspection (cached status) --------------------
//
// These serve the worker's last piggybacked status — at most one frame
// stale on a healthy connection, frozen at the moment of failure while
// down. The coordinator only reads them between barriers, where the
// status reflects the just-completed operation exactly.

func (rs *RemoteShard) cached() shardStatus {
	rs.smu.Lock()
	defer rs.smu.Unlock()
	return rs.status
}

func (rs *RemoteShard) Now() float64      { return rs.cached().Now }
func (rs *RemoteShard) Seen() int         { return rs.cached().Seen }
func (rs *RemoteShard) InFlight() int     { return rs.cached().InFlight }
func (rs *RemoteShard) Backlog() int      { return rs.cached().Backlog }
func (rs *RemoteShard) Batches() int      { return rs.cached().Batches }
func (rs *RemoteShard) LargestBatch() int { return rs.cached().LargestBatch }

// SchedName reports the fleet's configured algorithm (from the spec).
func (rs *RemoteShard) SchedName() string { return rs.spec.Algo }

func (rs *RemoteShard) SiteStatuses() []sched.SiteStatus {
	st := rs.cached()
	return append([]sched.SiteStatus(nil), st.Sites...)
}

func (rs *RemoteShard) MetricsState() (metrics.AccumulatorState, []float64) {
	st := rs.cached()
	return st.Acc, append([]float64(nil), st.Busy...)
}
