package fleet

import (
	"errors"
	"strings"
	"testing"
	"time"

	"trustgrid/internal/grid"
	"trustgrid/internal/sched"
)

// TestSpecValidate pins the spec's own guard rails: the daemon relies
// on these to refuse a malformed fleet before any worker is dialed.
func TestSpecValidate(t *testing.T) {
	base := testSpec("minmin")
	ok := *base
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"zero shards", func(s *Spec) { s.Shards = 0 }, "shard"},
		{"more shards than sites", func(s *Spec) { s.Shards = len(s.Sites) + 1 }, "sites"},
		{"no sites", func(s *Spec) { s.Sites = nil }, "sites"},
		{"bad mode", func(s *Spec) { s.Mode = "paranoid" }, "mode"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := *base
			tc.mut(&s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("%s accepted", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
			}
		})
	}
	if _, err := (&Spec{}).ShardConfig(0, false); err == nil {
		t.Fatal("ShardConfig on an empty spec succeeded")
	}
	bad := *base
	bad.Algo = "no-such-scheduler"
	if _, err := bad.ShardConfig(0, false); err == nil {
		t.Fatal("ShardConfig with an unknown algorithm succeeded")
	}
	for _, mode := range []string{"secure", "risky", "frisky"} {
		s := *base
		s.Mode = mode
		if _, err := s.ShardConfig(0, false); err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
	}
}

// TestRemoteShardSurface drives every sched.Shard method of a
// RemoteShard against a live worker — including the down-state
// contracts the coordinator and server lean on: fail-fast submissions,
// nil NeverPlaced (a down shard's jobs are delayed, not abandoned),
// queued weight updates replayed on reattach, and frozen cached
// introspection.
func TestRemoteShardSurface(t *testing.T) {
	spec := testSpec("minmin")
	dir := t.TempDir()
	w, addr := startWorker(t, WorkerConfig{WALDir: dir, Heartbeat: 20 * time.Millisecond}, "")
	rs, err := Dial(addr, spec, 0, DialConfig{TTL: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	wantFP, err := spec.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if w.Fingerprint() != wantFP {
		t.Fatalf("worker pinned fingerprint %q, want %q", w.Fingerprint(), wantFP)
	}
	if rs.Addr() != addr {
		t.Fatalf("Addr() = %q, want %q", rs.Addr(), addr)
	}
	if rs.SchedName() == "" {
		t.Fatal("SchedName() empty")
	}
	if rs.Down() {
		t.Fatal("freshly dialed shard reports down")
	}

	rs.SetTenantWeight("t0", 5) // live path
	jobs := testJobs(4)
	done := make(chan struct{})
	if err := rs.SubmitOr(done, cloneJob(jobs[0])); err != nil {
		t.Fatal(err)
	}
	if err := rs.SubmitLocal(cloneJob(jobs[1])); err != nil {
		t.Fatal(err)
	}
	if err := rs.Submit(cloneJob(jobs[2])); err != nil {
		t.Fatal(err)
	}
	if err := rs.AdvanceTo(1000); err != nil {
		t.Fatal(err)
	}
	// An engine rejection on the worker must come back as a plain
	// operation error, not as shard-down: the worker is alive and the
	// coordinator must keep using it.
	if err := rs.Submit(&grid.Job{ID: 99, Nodes: 1}); err == nil {
		t.Fatal("invalid job accepted")
	} else if errors.Is(err, sched.ErrShardDown) {
		t.Fatalf("engine error surfaced as shard-down: %v", err)
	}
	if rs.Down() {
		t.Fatal("shard marked down after a mere operation error")
	}

	if got := rs.Now(); got != 1000 {
		t.Fatalf("Now() = %v, want 1000", got)
	}
	if got := rs.Seen(); got != 3 {
		t.Fatalf("Seen() = %d, want 3", got)
	}
	_ = rs.InFlight() + rs.Backlog() + rs.Batches() + rs.LargestBatch()
	if sites := rs.SiteStatuses(); len(sites) != len(spec.Sites) {
		t.Fatalf("SiteStatuses() has %d sites, want %d", len(sites), len(spec.Sites))
	}
	if _, busy := rs.MetricsState(); len(busy) != len(spec.Sites) {
		t.Fatalf("MetricsState() busy has %d sites, want %d", len(busy), len(spec.Sites))
	}
	snap, err := rs.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("Snapshot() returned nil without error")
	}
	_ = rs.NeverPlaced() // live path; content is engine policy, not protocol

	// Kill the worker and pin the down-state surface.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !rs.Down() {
		if time.Now().After(deadline) {
			t.Fatal("shard never went down after worker close")
		}
		rs.Submit(cloneJob(jobs[3]))
		time.Sleep(5 * time.Millisecond)
	}
	if err := rs.Submit(cloneJob(jobs[3])); !errors.Is(err, sched.ErrShardDown) {
		t.Fatalf("Submit while down: %v, want ErrShardDown", err)
	}
	if err := rs.SubmitOr(done, cloneJob(jobs[3])); !errors.Is(err, sched.ErrShardDown) {
		t.Fatalf("SubmitOr while down: %v, want ErrShardDown", err)
	}
	if np := rs.NeverPlaced(); np != nil {
		t.Fatalf("NeverPlaced while down = %v, want nil", np)
	}
	if _, err := rs.Snapshot(); !errors.Is(err, sched.ErrShardDown) {
		t.Fatalf("Snapshot while down: %v, want ErrShardDown", err)
	}
	if got := rs.Now(); got != 1000 {
		t.Fatalf("cached Now() while down = %v, want 1000", got)
	}
	rs.SetTenantWeight("t1", 2) // queued, replayed on reattach

	// Restart on the same address and WAL; a barrier reattaches and the
	// queued weight replays first.
	startWorker(t, WorkerConfig{WALDir: dir, Heartbeat: 20 * time.Millisecond}, addr)
	if err := rs.AdvanceTo(1000); err != nil {
		t.Fatalf("reattach barrier: %v", err)
	}
	if rs.Down() {
		t.Fatal("shard still down after reattach barrier")
	}
	if err := rs.Submit(cloneJob(jobs[3])); err != nil {
		t.Fatalf("submit after reattach: %v", err)
	}
	if _, err := rs.Drain(); err != nil {
		t.Fatal(err)
	}
}
