// Package fleet crosses the process boundary of the sharded scheduling
// engine (DESIGN.md §12): a trustgrid-worker process hosts one engine
// shard behind a small framed TCP protocol, and RemoteShard implements
// the sched.Shard seam over that wire so sched.Coordinator drives a
// fleet of workers exactly as it drives in-process shards.
//
// The protocol is deliberately minimal — 4-byte big-endian length
// prefix, JSON payload, no dependencies beyond the standard library.
// The coordinator is the only client a worker serves (latest attach
// wins); requests are serialized per connection, and every response
// piggybacks the shard's status plus the engine events emitted since
// the last delivery, stamped with a contiguous per-shard sequence so a
// reconnect can backfill exactly the window it missed.
//
// Determinism carries over from the in-process coordinator unchanged:
// a worker builds its engine from the same Spec-derived RunConfig
// (same partition, same ShardRNGLabel streams) the server would build
// in process, so an N-worker fleet and `-shards N` produce
// byte-identical merged event streams. Durability is worker-owned:
// each worker write-ahead-logs its own inputs (arrivals, weights,
// barriers, churn prefix) and a killed worker replays them on restart,
// re-deriving the same events — and the same event sequence numbers —
// before it reattaches.
package fleet
