package grid

import "fmt"

// Job is an atomic, non-malleable unit of program execution (paper §1).
type Job struct {
	ID int
	// Tenant names the principal the job belongs to. The paper's batch
	// model is single-tenant ("" everywhere); the multi-tenant service
	// layer stamps the owning tenant here and it rides through the
	// engine, the kernel snapshot, events, metrics records and the
	// arrival trace. Tenant is identity, not runtime state: Clone keeps
	// it, and the scheduling core treats it as an opaque label (only
	// fair-share batch formation interprets it, via AdmissionConfig).
	Tenant  string
	Arrival float64 // submission time, seconds
	// Workload is the total computational demand in work units. For
	// NAS-style traces this is node-seconds (runtime × requested nodes);
	// for PSA it is the abstract 20-level demand of Table 1.
	Workload float64
	// Nodes is the number of processors the job requested in its source
	// trace. The default aggregate-speed site model folds this into
	// Workload; the space-shared cluster extension uses it directly.
	Nodes int
	// SecurityDemand is SD in the paper: [0.6, 0.9] uniform (Table 1).
	SecurityDemand float64

	// SafeOnly is a per-job risk policy: the job may only ever run
	// strictly safely (SL > SD), regardless of the scheduler's admission
	// mode. Tenants with a secure-only policy stamp it at submission.
	// Unlike MustBeSafe it is declared intent, not runtime state, so
	// Clone preserves it; the engine folds it into MustBeSafe at arrival
	// so the scheduling core needs no second flag.
	SafeOnly bool

	// MustBeSafe marks a job that already failed once: the scheduler must
	// dispatch it only to sites with SL > SD ("the scheduler will not
	// allow a failed job to take any risk again", §2).
	MustBeSafe bool
	// Failures counts how many times this job has failed so far.
	Failures int

	// DependsOn lists job IDs that must complete before this job may be
	// dispatched (ROADMAP item 5; Pop & Cristea's DAG model). Nil for the
	// paper's independent workloads. The json tag keeps every pre-DAG
	// serialization — engine snapshots, fleet spec fingerprints — byte
	// identical for edge-free jobs.
	DependsOn []int `json:",omitempty"`
	// Deadline is the absolute simulation time by which the job should
	// complete; 0 means none. The engine records misses (it never drops a
	// late job) so deadline-aware policies have an objective to optimize.
	Deadline float64 `json:",omitempty"`
	// Budget is an abstract cost cap carried for the utility-grid
	// economics follow-up (Garg et al.); recorded, not yet enforced.
	Budget float64 `json:",omitempty"`
}

// Validate reports whether the job's static fields are sensible.
func (j *Job) Validate() error {
	switch {
	case j.Workload <= 0:
		return fmt.Errorf("grid: job %d has non-positive workload %v", j.ID, j.Workload)
	case j.Nodes <= 0:
		return fmt.Errorf("grid: job %d has non-positive node request %d", j.ID, j.Nodes)
	case j.Arrival < 0:
		return fmt.Errorf("grid: job %d has negative arrival %v", j.ID, j.Arrival)
	case j.SecurityDemand < 0 || j.SecurityDemand > 1:
		return fmt.Errorf("grid: job %d has SD %v outside [0,1]", j.ID, j.SecurityDemand)
	case j.Deadline < 0:
		return fmt.Errorf("grid: job %d has negative deadline %v", j.ID, j.Deadline)
	case j.Budget < 0:
		return fmt.Errorf("grid: job %d has negative budget %v", j.ID, j.Budget)
	}
	for _, d := range j.DependsOn {
		if d == j.ID {
			return fmt.Errorf("grid: job %d depends on itself", j.ID)
		}
	}
	return nil
}

// Clone returns a copy of the job with runtime state (MustBeSafe,
// Failures) reset, for re-running the same workload through another
// scheduler. Identity and declared policy (Tenant, SafeOnly, DependsOn,
// Deadline, Budget) are kept; the dependency list is copied so clones
// never alias the original's edges.
func (j *Job) Clone() *Job {
	c := *j
	c.MustBeSafe = false
	c.Failures = 0
	if j.DependsOn != nil {
		c.DependsOn = append([]int(nil), j.DependsOn...)
	}
	return &c
}

// TotalWorkload sums the workloads of a job list.
func TotalWorkload(jobs []*Job) float64 {
	var total float64
	for _, j := range jobs {
		total += j.Workload
	}
	return total
}

// CloneAll deep-copies a job slice with runtime state reset.
func CloneAll(jobs []*Job) []*Job {
	out := make([]*Job, len(jobs))
	for i, j := range jobs {
		out[i] = j.Clone()
	}
	return out
}
