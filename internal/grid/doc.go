// Package grid models the computational grid of the paper: heterogeneous
// resource sites with security levels, independent jobs with security
// demands, the ETC (expected time to complete) matrix, and the
// security/risk model of §2 — the exponential failure law (Eq. 1) and the
// three risk modes (secure, risky, f-risky).
//
// DESIGN.md §1.1 inventory row: core model: Job, Site, Eq. 1 SecurityModel, risk-mode admission Policy, platform generators.
package grid
