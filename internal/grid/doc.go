// Package grid models the computational grid of the paper: heterogeneous
// resource sites with security levels, independent jobs with security
// demands, the ETC (expected time to complete) matrix, and the
// security/risk model of §2 — the exponential failure law (Eq. 1) and the
// three risk modes (secure, risky, f-risky).
//
// The dynamic-grid extension adds the site-churn model (DESIGN.md §7.2):
// ChurnEvent/ChurnConfig describe and generate deterministic, seeded
// join/leave/outage/degradation traces, serialized as JSONL, and
// DeceptiveLevels builds ground-truth security vectors for sites that
// overstate their declarations.
//
// DESIGN.md §1.1 inventory row: core model: Job, Site, Eq. 1 SecurityModel, risk-mode admission Policy, platform generators, churn traces (§7.2).
package grid
