package grid

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"trustgrid/internal/rng"
)

// ChurnKind labels one site-churn transition (DESIGN.md §7.2).
type ChurnKind int

const (
	// ChurnCrash takes the site down instantly: executions in flight are
	// interrupted and their jobs re-queued; the site rejoins cold (its
	// reputation evidence is discarded).
	ChurnCrash ChurnKind = iota
	// ChurnDrain is a planned leave: the site stops admitting new jobs
	// but finishes what it is running, and rejoins with its reputation
	// intact.
	ChurnDrain
	// ChurnJoin brings a departed site back into service.
	ChurnJoin
	// ChurnDegrade multiplies the site's base speed by Factor (capacity
	// degradation, e.g. partial node loss). It affects executions
	// dispatched after the event.
	ChurnDegrade
	// ChurnRestore returns the site's speed to its baseline.
	ChurnRestore
)

var churnKindNames = map[ChurnKind]string{
	ChurnCrash:   "crash",
	ChurnDrain:   "drain",
	ChurnJoin:    "join",
	ChurnDegrade: "degrade",
	ChurnRestore: "restore",
}

// String returns the wire label of the kind.
func (k ChurnKind) String() string {
	if s, ok := churnKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("ChurnKind(%d)", int(k))
}

// MarshalText encodes the kind as its wire label (churn traces are
// JSONL, and "crash" reads better than 0).
func (k ChurnKind) MarshalText() ([]byte, error) {
	s, ok := churnKindNames[k]
	if !ok {
		return nil, fmt.Errorf("grid: unknown churn kind %d", int(k))
	}
	return []byte(s), nil
}

// UnmarshalText decodes a wire label.
func (k *ChurnKind) UnmarshalText(b []byte) error {
	for kind, name := range churnKindNames {
		if name == string(b) {
			*k = kind
			return nil
		}
	}
	return fmt.Errorf("grid: unknown churn kind %q", string(b))
}

// ChurnEvent is one timed site transition. A slice of them, sorted by
// time, is a churn trace: together with the workload trace and the root
// seed it is the complete deterministic input of a dynamic-grid run.
type ChurnEvent struct {
	Time float64   `json:"t"`
	Site int       `json:"site"`
	Kind ChurnKind `json:"kind"`
	// Factor is the speed multiplier of a ChurnDegrade event, in (0, 1].
	Factor float64 `json:"factor,omitempty"`
}

// ValidateChurn checks a churn trace against a platform size: events
// sorted by time, non-negative times, site indices in range, degrade
// factors in (0, 1].
func ValidateChurn(events []ChurnEvent, nSites int) error {
	prev := 0.0
	for i, ev := range events {
		switch {
		case math.IsNaN(ev.Time) || ev.Time < 0:
			return fmt.Errorf("grid: churn event %d has bad time %v", i, ev.Time)
		case ev.Time < prev:
			return fmt.Errorf("grid: churn event %d at t=%v before predecessor t=%v (trace must be time-sorted)",
				i, ev.Time, prev)
		case ev.Site < 0 || ev.Site >= nSites:
			return fmt.Errorf("grid: churn event %d targets site %d outside [0,%d)", i, ev.Site, nSites)
		}
		if _, ok := churnKindNames[ev.Kind]; !ok {
			return fmt.Errorf("grid: churn event %d has unknown kind %d", i, int(ev.Kind))
		}
		if ev.Kind == ChurnDegrade && (ev.Factor <= 0 || ev.Factor > 1 || math.IsNaN(ev.Factor)) {
			return fmt.Errorf("grid: churn event %d degrade factor %v outside (0,1]", i, ev.Factor)
		}
		prev = ev.Time
	}
	return nil
}

// ChurnConfig generates a seeded churn trace: each site alternates
// exponentially distributed up-times with incidents — crashes, planned
// drains or capacity degradations — whose recovery events are emitted
// even past the horizon, so a site never departs forever by truncation.
type ChurnConfig struct {
	// Horizon bounds incident starts: no incident begins at or after it.
	Horizon float64
	// MTBF is the mean up-time between incidents per site, seconds.
	MTBF float64
	// Outage is the mean down-time of a crash or drain, seconds.
	Outage float64
	// PDrain and PDegrade split incidents: a fresh incident is a drain
	// with probability PDrain, a degradation with PDegrade, and a crash
	// otherwise.
	PDrain, PDegrade float64
	// DegradeMin and DegradeMax bound the uniform speed factor of a
	// degradation; DegradeMean is its mean duration, seconds.
	DegradeMin, DegradeMax float64
	DegradeMean            float64
}

// DefaultChurnConfig returns a moderate churn regime for the given
// horizon: each site suffers about two incidents, mostly crashes, down
// for about a twentieth of the horizon each time.
func DefaultChurnConfig(horizon float64) ChurnConfig {
	return ChurnConfig{
		Horizon:     horizon,
		MTBF:        horizon / 2,
		Outage:      horizon / 20,
		PDrain:      0.2,
		PDegrade:    0.2,
		DegradeMin:  0.3,
		DegradeMax:  0.8,
		DegradeMean: horizon / 20,
	}
}

// Validate checks the configuration.
func (c ChurnConfig) Validate() error {
	switch {
	case c.Horizon <= 0:
		return fmt.Errorf("grid: churn Horizon %v must be positive", c.Horizon)
	case c.MTBF <= 0:
		return fmt.Errorf("grid: churn MTBF %v must be positive", c.MTBF)
	case c.Outage <= 0:
		return fmt.Errorf("grid: churn Outage %v must be positive", c.Outage)
	case c.PDrain < 0 || c.PDegrade < 0 || c.PDrain+c.PDegrade > 1:
		return fmt.Errorf("grid: churn incident probabilities drain=%v degrade=%v invalid", c.PDrain, c.PDegrade)
	case c.PDegrade > 0 && (c.DegradeMin <= 0 || c.DegradeMax > 1 || c.DegradeMin > c.DegradeMax):
		return fmt.Errorf("grid: churn degrade factor range [%v,%v] outside (0,1]", c.DegradeMin, c.DegradeMax)
	case c.PDegrade > 0 && c.DegradeMean <= 0:
		return fmt.Errorf("grid: churn DegradeMean %v must be positive", c.DegradeMean)
	}
	return nil
}

// Generate produces the deterministic churn trace for an nSites
// platform. Each site draws from its own derived stream, so one site's
// trace is independent of the platform size and of its siblings.
func (c ChurnConfig) Generate(r *rng.Stream, nSites int) ([]ChurnEvent, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if nSites <= 0 {
		return nil, fmt.Errorf("grid: churn generation for %d sites", nSites)
	}
	var events []ChurnEvent
	for site := 0; site < nSites; site++ {
		sr := r.DeriveIndexed("churn/site", site)
		t := sr.Exp(1 / c.MTBF)
		for t < c.Horizon {
			u := sr.Float64()
			switch {
			case u < c.PDegrade:
				factor := sr.Uniform(c.DegradeMin, c.DegradeMax)
				dur := sr.Exp(1 / c.DegradeMean)
				events = append(events,
					ChurnEvent{Time: t, Site: site, Kind: ChurnDegrade, Factor: factor},
					ChurnEvent{Time: t + dur, Site: site, Kind: ChurnRestore})
				t += dur
			case u < c.PDegrade+c.PDrain:
				dur := sr.Exp(1 / c.Outage)
				events = append(events,
					ChurnEvent{Time: t, Site: site, Kind: ChurnDrain},
					ChurnEvent{Time: t + dur, Site: site, Kind: ChurnJoin})
				t += dur
			default:
				dur := sr.Exp(1 / c.Outage)
				events = append(events,
					ChurnEvent{Time: t, Site: site, Kind: ChurnCrash},
					ChurnEvent{Time: t + dur, Site: site, Kind: ChurnJoin})
				t += dur
			}
			t += sr.Exp(1 / c.MTBF)
		}
	}
	sort.SliceStable(events, func(i, k int) bool {
		if events[i].Time != events[k].Time {
			return events[i].Time < events[k].Time
		}
		return events[i].Site < events[k].Site
	})
	return events, nil
}

// WriteChurnTrace writes events as JSONL, one event per line — the
// churn analogue of the arrival-trace format.
func WriteChurnTrace(w io.Writer, events []ChurnEvent) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadChurnTrace parses a JSONL churn trace. Blank lines are skipped;
// the result is not validated against a platform (use ValidateChurn once
// the site count is known).
func ReadChurnTrace(r io.Reader) ([]ChurnEvent, error) {
	var out []ChurnEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev ChurnEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("grid: churn trace line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("grid: reading churn trace: %w", err)
	}
	return out, nil
}

// DeceptiveLevels builds a ground-truth security vector for sites that
// may overstate their declared SL: a fraction frac of sites (chosen by
// r) truly operate gap below what they declare, floored at zero. The
// returned slice feeds sched.DynamicsConfig.TrueLevels: the Eq. 1
// failure law samples from the truth while schedulers see the declared
// (or reputation-corrected) estimate — the divergence that online
// reputation exists to close.
func DeceptiveLevels(sites []*Site, frac, gap float64, r *rng.Stream) []float64 {
	levels := make([]float64, len(sites))
	for i, s := range sites {
		levels[i] = s.SecurityLevel
	}
	k := int(math.Ceil(frac * float64(len(sites))))
	if k <= 0 {
		return levels
	}
	if k > len(sites) {
		k = len(sites)
	}
	for _, i := range r.Perm(len(sites))[:k] {
		levels[i] -= gap
		if levels[i] < 0 {
			levels[i] = 0
		}
	}
	return levels
}
