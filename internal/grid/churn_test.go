package grid

import (
	"bytes"
	"math"
	"testing"

	"trustgrid/internal/rng"
)

func TestChurnGenerateDeterministic(t *testing.T) {
	cfg := DefaultChurnConfig(100000)
	a, err := cfg.Generate(rng.New(3), 12)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.Generate(rng.New(3), 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("no churn events generated")
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestChurnGenerateValidAndPaired(t *testing.T) {
	cfg := DefaultChurnConfig(50000)
	events, err := cfg.Generate(rng.New(7), 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateChurn(events, 20); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
	// Every departure has a matching recovery (possibly past the
	// horizon), so no site is lost to truncation.
	down := make(map[int]int)
	degraded := make(map[int]int)
	for _, ev := range events {
		switch ev.Kind {
		case ChurnCrash, ChurnDrain:
			down[ev.Site]++
		case ChurnJoin:
			down[ev.Site]--
		case ChurnDegrade:
			degraded[ev.Site]++
		case ChurnRestore:
			degraded[ev.Site]--
		}
	}
	for site, n := range down {
		if n != 0 {
			t.Errorf("site %d: %d unmatched departures", site, n)
		}
	}
	for site, n := range degraded {
		if n != 0 {
			t.Errorf("site %d: %d unmatched degradations", site, n)
		}
	}
}

func TestChurnSiteStreamsIndependent(t *testing.T) {
	// A site's personal event stream must not depend on the platform
	// size: growing the grid leaves existing sites' churn untouched.
	cfg := DefaultChurnConfig(80000)
	small, err := cfg.Generate(rng.New(5), 4)
	if err != nil {
		t.Fatal(err)
	}
	large, err := cfg.Generate(rng.New(5), 8)
	if err != nil {
		t.Fatal(err)
	}
	filter := func(evs []ChurnEvent, site int) []ChurnEvent {
		var out []ChurnEvent
		for _, ev := range evs {
			if ev.Site == site {
				out = append(out, ev)
			}
		}
		return out
	}
	for site := 0; site < 4; site++ {
		a, b := filter(small, site), filter(large, site)
		if len(a) != len(b) {
			t.Fatalf("site %d: %d events in small grid, %d in large", site, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("site %d event %d differs across platform sizes", site, i)
			}
		}
	}
}

func TestChurnTraceRoundTrip(t *testing.T) {
	events, err := DefaultChurnConfig(30000).Generate(rng.New(11), 6)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteChurnTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	back, err := ReadChurnTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("round trip lost events: %d vs %d", len(back), len(events))
	}
	for i := range events {
		if events[i] != back[i] {
			t.Fatalf("event %d differs after round trip: %+v vs %+v", i, events[i], back[i])
		}
	}
}

func TestChurnKindTextRoundTrip(t *testing.T) {
	for kind := range churnKindNames {
		b, err := kind.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back ChurnKind
		if err := back.UnmarshalText(b); err != nil {
			t.Fatal(err)
		}
		if back != kind {
			t.Fatalf("kind %v round-tripped to %v", kind, back)
		}
	}
	var k ChurnKind
	if err := k.UnmarshalText([]byte("meltdown")); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestValidateChurnRejectsBadTraces(t *testing.T) {
	cases := []struct {
		name   string
		events []ChurnEvent
	}{
		{"negative time", []ChurnEvent{{Time: -1, Site: 0, Kind: ChurnCrash}}},
		{"NaN time", []ChurnEvent{{Time: math.NaN(), Site: 0, Kind: ChurnCrash}}},
		{"unsorted", []ChurnEvent{{Time: 10, Site: 0, Kind: ChurnCrash}, {Time: 5, Site: 0, Kind: ChurnJoin}}},
		{"site out of range", []ChurnEvent{{Time: 1, Site: 3, Kind: ChurnCrash}}},
		{"bad factor", []ChurnEvent{{Time: 1, Site: 0, Kind: ChurnDegrade, Factor: 1.5}}},
		{"zero factor", []ChurnEvent{{Time: 1, Site: 0, Kind: ChurnDegrade}}},
		{"unknown kind", []ChurnEvent{{Time: 1, Site: 0, Kind: ChurnKind(99)}}},
	}
	for _, tc := range cases {
		if err := ValidateChurn(tc.events, 3); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestChurnConfigValidate(t *testing.T) {
	ok := DefaultChurnConfig(1000)
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []ChurnConfig{
		{},
		{Horizon: 100, MTBF: 0, Outage: 10},
		{Horizon: 100, MTBF: 50, Outage: 0},
		{Horizon: 100, MTBF: 50, Outage: 10, PDrain: 0.7, PDegrade: 0.6},
		{Horizon: 100, MTBF: 50, Outage: 10, PDegrade: 0.2, DegradeMin: 0, DegradeMax: 0.5, DegradeMean: 5},
		{Horizon: 100, MTBF: 50, Outage: 10, PDegrade: 0.2, DegradeMin: 0.3, DegradeMax: 0.5, DegradeMean: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
}

func TestDeceptiveLevels(t *testing.T) {
	sites := make([]*Site, 10)
	for i := range sites {
		sites[i] = &Site{ID: i, Speed: 1, Nodes: 1, SecurityLevel: 0.9}
	}
	levels := DeceptiveLevels(sites, 0.4, 0.3, rng.New(2))
	again := DeceptiveLevels(sites, 0.4, 0.3, rng.New(2))
	lowered := 0
	for i, l := range levels {
		if l != again[i] {
			t.Fatal("DeceptiveLevels not deterministic")
		}
		switch {
		case l == 0.9:
		case math.Abs(l-0.6) < 1e-12:
			lowered++
		default:
			t.Fatalf("site %d unexpected true level %v", i, l)
		}
		if sites[i].SecurityLevel != 0.9 {
			t.Fatal("DeceptiveLevels mutated the site")
		}
	}
	if lowered != 4 {
		t.Fatalf("lowered %d sites, want ceil(0.4*10) = 4", lowered)
	}
	// frac 0 is the identity.
	for i, l := range DeceptiveLevels(sites, 0, 0.3, rng.New(2)) {
		if l != sites[i].SecurityLevel {
			t.Fatal("frac=0 changed a level")
		}
	}
}
