package grid

import (
	"fmt"
	"math"
)

// RiskMode selects how a scheduler treats the security risk of dispatching
// a job to a site whose security level is below the job's demand (paper
// §2, Fig. 3).
type RiskMode int

const (
	// Secure dispatches only to sites with SD <= SL: no risk ever taken.
	Secure RiskMode = iota
	// Risky dispatches to any site, accepting 100% of the risk.
	Risky
	// FRisky dispatches only where the failure probability is at most f.
	// f = 0 degenerates to Secure and f = 1 to Risky.
	FRisky
)

// String returns the paper's name for the mode.
func (m RiskMode) String() string {
	switch m {
	case Secure:
		return "Secure"
	case Risky:
		return "Risky"
	case FRisky:
		return "f-Risky"
	default:
		return fmt.Sprintf("RiskMode(%d)", int(m))
	}
}

// DefaultLambda is the failure-law coefficient λ of Eq. 1. The paper does
// not state its value; 3.0 makes the f = 0.5 threshold genuinely
// intermediate between Secure and Risky (see DESIGN.md §2.1).
const DefaultLambda = 3.0

// SecurityModel is the failure law of Eq. 1:
//
//	P(fail) = 0                      if SD <= SL
//	P(fail) = 1 - exp(-λ(SD - SL))   if SD >  SL
type SecurityModel struct {
	Lambda float64
}

// NewSecurityModel returns the model with the default λ.
func NewSecurityModel() SecurityModel { return SecurityModel{Lambda: DefaultLambda} }

// FailProb returns the failure probability for demand sd on level sl.
func (m SecurityModel) FailProb(sd, sl float64) float64 {
	if sd <= sl {
		return 0
	}
	return 1 - math.Exp(-m.Lambda*(sd-sl))
}

// Risky reports whether running demand sd on level sl takes any risk.
func (m SecurityModel) Risky(sd, sl float64) bool { return sd > sl }

// MaxDeficit returns the largest SD−SL gap admitted by an f-risky
// scheduler with threshold f: FailProb(sd, sl) <= f  iff  sd−sl <= MaxDeficit(f).
func (m SecurityModel) MaxDeficit(f float64) float64 {
	if f >= 1 {
		return math.Inf(1)
	}
	if f <= 0 {
		return 0
	}
	return -math.Log(1-f) / m.Lambda
}

// Policy is a concrete dispatch admission rule: a risk mode plus the
// f threshold (used only when Mode == FRisky) and the failure law.
type Policy struct {
	Mode  RiskMode
	F     float64
	Model SecurityModel
}

// SecurePolicy, RiskyPolicy and FRiskyPolicy build the three paper modes.
func SecurePolicy() Policy { return Policy{Mode: Secure, Model: NewSecurityModel()} }

// RiskyPolicy admits every site.
func RiskyPolicy() Policy { return Policy{Mode: Risky, Model: NewSecurityModel()} }

// FRiskyPolicy admits sites with failure probability at most f.
func FRiskyPolicy(f float64) Policy {
	return Policy{Mode: FRisky, F: f, Model: NewSecurityModel()}
}

// Name returns a short label such as "Secure" or "0.5-Risky".
func (p Policy) Name() string {
	if p.Mode == FRisky {
		return fmt.Sprintf("%.1f-Risky", p.F)
	}
	return p.Mode.String()
}

// Admits reports whether the policy lets job j run on site s. A job that
// already failed once must run strictly safely regardless of mode.
func (p Policy) Admits(j *Job, s *Site) bool {
	if j.MustBeSafe {
		return s.SecurityLevel > j.SecurityDemand
	}
	switch p.Mode {
	case Secure:
		return j.SecurityDemand <= s.SecurityLevel
	case Risky:
		return true
	case FRisky:
		return p.Model.FailProb(j.SecurityDemand, s.SecurityLevel) <= p.F
	default:
		panic(fmt.Sprintf("grid: unknown risk mode %d", int(p.Mode)))
	}
}

// EligibleSites returns the indices of sites the policy admits for job j.
// If none qualify (impossible with feasible site generation, but the API
// is total), it returns the single max-SL site and fellBack = true.
func (p Policy) EligibleSites(j *Job, sites []*Site) (idx []int, fellBack bool) {
	idx = make([]int, 0, len(sites))
	for i, s := range sites {
		if p.Admits(j, s) {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 {
		_, best := MaxSecurityLevel(sites)
		return []int{best}, true
	}
	return idx, false
}

// EligibleMask fills mask (len == len(sites)) with admission flags and
// returns whether at least one site is eligible. It allocates nothing,
// for use in scheduler inner loops.
func (p Policy) EligibleMask(j *Job, sites []*Site, mask []bool) bool {
	any := false
	for i, s := range sites {
		ok := p.Admits(j, s)
		mask[i] = ok
		any = any || ok
	}
	return any
}
