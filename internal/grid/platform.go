package grid

import (
	"fmt"

	"trustgrid/internal/rng"
)

// PlatformConfig describes how to generate a set of sites.
type PlatformConfig struct {
	// SpeedsAndNodes lists (speed, nodes) per site, in site-ID order.
	Speeds []float64
	Nodes  []int
	// SLMin and SLMax bound the uniform site security level (Table 1:
	// 0.4–1.0).
	SLMin, SLMax float64
	// GuaranteeSafeSL, when > 0, forces at least one site to have
	// SL >= GuaranteeSafeSL by re-rolling the max-SL site upward. This
	// keeps secure mode and post-failure rescheduling feasible for every
	// job demand below it (DESIGN.md §2.1).
	GuaranteeSafeSL float64
}

// Validate checks the configuration.
func (c PlatformConfig) Validate() error {
	if len(c.Speeds) == 0 || len(c.Speeds) != len(c.Nodes) {
		return fmt.Errorf("grid: platform needs equal-length Speeds and Nodes, got %d and %d",
			len(c.Speeds), len(c.Nodes))
	}
	if c.SLMin < 0 || c.SLMax > 1 || c.SLMin > c.SLMax {
		return fmt.Errorf("grid: bad SL range [%v, %v]", c.SLMin, c.SLMax)
	}
	return nil
}

// Generate samples the sites using r (derive a dedicated stream).
func (c PlatformConfig) Generate(r *rng.Stream) ([]*Site, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	sites := make([]*Site, len(c.Speeds))
	for i := range sites {
		sites[i] = &Site{
			ID:            i,
			Speed:         c.Speeds[i],
			Nodes:         c.Nodes[i],
			SecurityLevel: r.Uniform(c.SLMin, c.SLMax),
		}
	}
	if c.GuaranteeSafeSL > 0 {
		level, idx := MaxSecurityLevel(sites)
		if level < c.GuaranteeSafeSL {
			sites[idx].SecurityLevel = r.Uniform(c.GuaranteeSafeSL, 1.0)
		}
	}
	for _, s := range sites {
		if err := s.Validate(); err != nil {
			return nil, err
		}
	}
	return sites, nil
}

// NASPlatform returns the paper's NAS grid: 12 sites mapped from the
// 128-node iPSC/860 — four sites of 16 nodes and eight sites of 8 nodes
// (Table 1), aggregate speed equal to node count.
func NASPlatform() PlatformConfig {
	speeds := make([]float64, 12)
	nodes := make([]int, 12)
	for i := 0; i < 4; i++ {
		speeds[i], nodes[i] = 16, 16
	}
	for i := 4; i < 12; i++ {
		speeds[i], nodes[i] = 8, 8
	}
	return PlatformConfig{
		Speeds:          speeds,
		Nodes:           nodes,
		SLMin:           0.4,
		SLMax:           1.0,
		GuaranteeSafeSL: 0.95,
	}
}

// PSAPlatform returns the paper's PSA grid: 20 sites with 10 discrete
// speed levels (Table 1). The levels are scaled ×SpeedUnit work-units/s so
// the simulated makespans land in the paper's magnitude range (see
// DESIGN.md §4); the ranking shapes are scale-invariant.
func PSAPlatform() PlatformConfig {
	const SpeedUnit = 10.0
	speeds := make([]float64, 20)
	nodes := make([]int, 20)
	for i := range speeds {
		level := float64(i%10 + 1)
		speeds[i] = level * SpeedUnit
		nodes[i] = 1
	}
	return PlatformConfig{
		Speeds:          speeds,
		Nodes:           nodes,
		SLMin:           0.4,
		SLMax:           1.0,
		GuaranteeSafeSL: 0.95,
	}
}
