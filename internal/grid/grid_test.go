package grid

import (
	"math"
	"testing"
	"testing/quick"

	"trustgrid/internal/rng"
)

func TestJobValidate(t *testing.T) {
	good := &Job{ID: 1, Workload: 100, Nodes: 4, SecurityDemand: 0.7}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
	bad := []*Job{
		{ID: 2, Workload: 0, Nodes: 1, SecurityDemand: 0.7},
		{ID: 3, Workload: 10, Nodes: 0, SecurityDemand: 0.7},
		{ID: 4, Workload: 10, Nodes: 1, SecurityDemand: 1.5},
		{ID: 5, Workload: 10, Nodes: 1, SecurityDemand: 0.7, Arrival: -1},
	}
	for _, j := range bad {
		if err := j.Validate(); err == nil {
			t.Errorf("job %d should be invalid", j.ID)
		}
	}
}

func TestJobClone(t *testing.T) {
	j := &Job{ID: 1, Tenant: "acme", Workload: 5, Nodes: 1, SecurityDemand: 0.8,
		SafeOnly: true, MustBeSafe: true, Failures: 2}
	c := j.Clone()
	if c.MustBeSafe || c.Failures != 0 {
		t.Fatal("Clone must reset runtime state")
	}
	if c.ID != 1 || c.Workload != 5 || c.SecurityDemand != 0.8 {
		t.Fatal("Clone must keep static fields")
	}
	if c.Tenant != "acme" || !c.SafeOnly {
		t.Fatal("Clone must keep identity and declared policy (Tenant, SafeOnly)")
	}
	c.Workload = 99
	if j.Workload != 5 {
		t.Fatal("Clone must not alias")
	}
}

func TestSiteExecTime(t *testing.T) {
	s := &Site{ID: 0, Speed: 8, Nodes: 8, SecurityLevel: 0.5}
	j := &Job{ID: 0, Workload: 80, Nodes: 1, SecurityDemand: 0.6}
	if got := s.ExecTime(j); got != 10 {
		t.Fatalf("ExecTime = %v, want 10", got)
	}
}

func TestValidateSitesPositionalIDs(t *testing.T) {
	sites := []*Site{
		{ID: 0, Speed: 1, Nodes: 1, SecurityLevel: 0.5},
		{ID: 2, Speed: 1, Nodes: 1, SecurityLevel: 0.5},
	}
	if err := ValidateSites(sites); err == nil {
		t.Fatal("non-positional IDs should fail validation")
	}
	if err := ValidateSites(nil); err == nil {
		t.Fatal("empty site list should fail validation")
	}
}

func TestETCMatrix(t *testing.T) {
	sites := []*Site{
		{ID: 0, Speed: 2, Nodes: 1, SecurityLevel: 0.5},
		{ID: 1, Speed: 4, Nodes: 1, SecurityLevel: 0.5},
	}
	jobs := []*Job{
		{ID: 0, Workload: 8, Nodes: 1, SecurityDemand: 0.6},
		{ID: 1, Workload: 16, Nodes: 1, SecurityDemand: 0.6},
	}
	m := ETCMatrix(jobs, sites)
	want := []float64{4, 2, 8, 4}
	for i := range want {
		if m[i] != want[i] {
			t.Fatalf("ETCMatrix = %v, want %v", m, want)
		}
	}
}

func TestFailProbEquationOne(t *testing.T) {
	m := SecurityModel{Lambda: 3}
	if p := m.FailProb(0.6, 0.8); p != 0 {
		t.Fatalf("SD<=SL must be safe, got %v", p)
	}
	if p := m.FailProb(0.7, 0.7); p != 0 {
		t.Fatalf("SD==SL must be safe, got %v", p)
	}
	want := 1 - math.Exp(-3*0.2)
	if p := m.FailProb(0.9, 0.7); math.Abs(p-want) > 1e-12 {
		t.Fatalf("FailProb = %v, want %v", p, want)
	}
}

func TestFailProbMonotone(t *testing.T) {
	m := NewSecurityModel()
	check := func(a, b uint8) bool {
		sd := 0.6 + float64(a%31)/100.0 // 0.6..0.9
		sl1 := 0.4 + float64(b%61)/100.0
		sl2 := sl1 + 0.05
		p1 := m.FailProb(sd, sl1)
		p2 := m.FailProb(sd, sl2)
		return p1 >= p2 && p1 >= 0 && p1 < 1
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaxDeficitInvertsFailProb(t *testing.T) {
	m := NewSecurityModel()
	for _, f := range []float64{0.1, 0.3, 0.5, 0.9} {
		d := m.MaxDeficit(f)
		// At exactly the deficit the probability equals f.
		if p := m.FailProb(0.6+d, 0.6); math.Abs(p-f) > 1e-9 {
			t.Fatalf("FailProb at MaxDeficit(%v) = %v", f, p)
		}
	}
	if m.MaxDeficit(0) != 0 {
		t.Fatal("MaxDeficit(0) must be 0")
	}
	if !math.IsInf(m.MaxDeficit(1), 1) {
		t.Fatal("MaxDeficit(1) must be +Inf")
	}
}

func TestPolicyAdmits(t *testing.T) {
	unsafe := &Site{ID: 0, Speed: 1, Nodes: 1, SecurityLevel: 0.5}
	nearSafe := &Site{ID: 1, Speed: 1, Nodes: 1, SecurityLevel: 0.75}
	safe := &Site{ID: 2, Speed: 1, Nodes: 1, SecurityLevel: 0.95}
	j := &Job{ID: 0, Workload: 1, Nodes: 1, SecurityDemand: 0.8}

	sec := SecurePolicy()
	if sec.Admits(j, unsafe) || sec.Admits(j, nearSafe) {
		t.Fatal("secure mode must reject SL<SD sites")
	}
	if !sec.Admits(j, safe) {
		t.Fatal("secure mode must admit SL>=SD sites")
	}

	risky := RiskyPolicy()
	if !risky.Admits(j, unsafe) || !risky.Admits(j, safe) {
		t.Fatal("risky mode must admit everything")
	}

	// f=0.5 with λ=3 admits deficits up to ln2/3 ≈ 0.231.
	fr := FRiskyPolicy(0.5)
	if fr.Admits(j, unsafe) { // deficit 0.3 > 0.231
		t.Fatal("0.5-risky must reject deficit 0.3")
	}
	if !fr.Admits(j, nearSafe) { // deficit 0.05
		t.Fatal("0.5-risky must admit deficit 0.05")
	}

	// f-risky degenerate ends.
	if FRiskyPolicy(0).Admits(j, nearSafe) {
		t.Fatal("0-risky must equal secure")
	}
	if !FRiskyPolicy(1).Admits(j, unsafe) {
		t.Fatal("1-risky must equal risky")
	}
}

func TestMustBeSafeOverridesMode(t *testing.T) {
	exact := &Site{ID: 0, Speed: 1, Nodes: 1, SecurityLevel: 0.8}
	above := &Site{ID: 1, Speed: 1, Nodes: 1, SecurityLevel: 0.81}
	j := &Job{ID: 0, Workload: 1, Nodes: 1, SecurityDemand: 0.8, MustBeSafe: true}
	risky := RiskyPolicy()
	// Strictly safe required: SL == SD is not enough after a failure.
	if risky.Admits(j, exact) {
		t.Fatal("must-be-safe job admitted at SL == SD")
	}
	if !risky.Admits(j, above) {
		t.Fatal("must-be-safe job rejected at SL > SD")
	}
}

func TestEligibleSitesFallback(t *testing.T) {
	sites := []*Site{
		{ID: 0, Speed: 1, Nodes: 1, SecurityLevel: 0.5},
		{ID: 1, Speed: 1, Nodes: 1, SecurityLevel: 0.7},
	}
	j := &Job{ID: 0, Workload: 1, Nodes: 1, SecurityDemand: 0.9}
	idx, fellBack := SecurePolicy().EligibleSites(j, sites)
	if !fellBack {
		t.Fatal("expected fallback when no site is safe")
	}
	if len(idx) != 1 || idx[0] != 1 {
		t.Fatalf("fallback should pick max-SL site, got %v", idx)
	}

	idx, fellBack = RiskyPolicy().EligibleSites(j, sites)
	if fellBack || len(idx) != 2 {
		t.Fatalf("risky should admit all, got %v fellBack=%v", idx, fellBack)
	}
}

func TestEligibleMask(t *testing.T) {
	sites := []*Site{
		{ID: 0, Speed: 1, Nodes: 1, SecurityLevel: 0.95},
		{ID: 1, Speed: 1, Nodes: 1, SecurityLevel: 0.5},
	}
	j := &Job{ID: 0, Workload: 1, Nodes: 1, SecurityDemand: 0.9}
	mask := make([]bool, 2)
	if !SecurePolicy().EligibleMask(j, sites, mask) {
		t.Fatal("expected an eligible site")
	}
	if !mask[0] || mask[1] {
		t.Fatalf("mask = %v", mask)
	}
}

func TestPolicyNames(t *testing.T) {
	if got := SecurePolicy().Name(); got != "Secure" {
		t.Fatalf("got %q", got)
	}
	if got := RiskyPolicy().Name(); got != "Risky" {
		t.Fatalf("got %q", got)
	}
	if got := FRiskyPolicy(0.5).Name(); got != "0.5-Risky" {
		t.Fatalf("got %q", got)
	}
}

func TestNASPlatform(t *testing.T) {
	cfg := NASPlatform()
	sites, err := cfg.Generate(rng.New(1).Derive("sites"))
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != 12 {
		t.Fatalf("NAS platform has %d sites, want 12", len(sites))
	}
	var total float64
	sixteens := 0
	for _, s := range sites {
		total += s.Speed
		if s.Nodes == 16 {
			sixteens++
		}
		if s.SecurityLevel < 0.4 || s.SecurityLevel > 1.0 {
			t.Fatalf("SL %v out of Table 1 range", s.SecurityLevel)
		}
	}
	if total != 128 {
		t.Fatalf("aggregate speed %v, want 128 (the iPSC/860 node count)", total)
	}
	if sixteens != 4 {
		t.Fatalf("%d sixteen-node sites, want 4", sixteens)
	}
	if err := ValidateSites(sites); err != nil {
		t.Fatal(err)
	}
}

func TestPSAPlatform(t *testing.T) {
	cfg := PSAPlatform()
	sites, err := cfg.Generate(rng.New(2).Derive("sites"))
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != 20 {
		t.Fatalf("PSA platform has %d sites, want 20", len(sites))
	}
	levels := map[float64]bool{}
	for _, s := range sites {
		levels[s.Speed] = true
	}
	if len(levels) != 10 {
		t.Fatalf("PSA speeds span %d levels, want 10", len(levels))
	}
}

func TestGuaranteeSafeSL(t *testing.T) {
	// Across many seeds, the generated platform must always contain a
	// site able to host the max demand (0.9) safely.
	for seed := uint64(0); seed < 200; seed++ {
		sites, err := NASPlatform().Generate(rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		level, _ := MaxSecurityLevel(sites)
		if level <= 0.9 {
			t.Fatalf("seed %d: max SL %v cannot safely host SD=0.9", seed, level)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := PSAPlatform().Generate(rng.New(7))
	b, _ := PSAPlatform().Generate(rng.New(7))
	for i := range a {
		if a[i].SecurityLevel != b[i].SecurityLevel {
			t.Fatal("platform generation not deterministic")
		}
	}
}

func TestTotalWorkloadAndSpeed(t *testing.T) {
	jobs := []*Job{
		{ID: 0, Workload: 3, Nodes: 1, SecurityDemand: 0.6},
		{ID: 1, Workload: 4, Nodes: 1, SecurityDemand: 0.6},
	}
	if TotalWorkload(jobs) != 7 {
		t.Fatal("TotalWorkload wrong")
	}
	sites := []*Site{
		{ID: 0, Speed: 2, Nodes: 1, SecurityLevel: 0.5},
		{ID: 1, Speed: 5, Nodes: 1, SecurityLevel: 0.5},
	}
	if TotalSpeed(sites) != 7 {
		t.Fatal("TotalSpeed wrong")
	}
}

func TestCloneAll(t *testing.T) {
	jobs := []*Job{
		{ID: 0, Workload: 3, Nodes: 1, SecurityDemand: 0.6, Failures: 1, MustBeSafe: true},
	}
	c := CloneAll(jobs)
	if c[0] == jobs[0] || c[0].Failures != 0 || c[0].MustBeSafe {
		t.Fatal("CloneAll must deep-copy and reset")
	}
}

func TestPlatformConfigValidate(t *testing.T) {
	bad := PlatformConfig{Speeds: []float64{1}, Nodes: []int{1, 2}, SLMin: 0.4, SLMax: 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("mismatched speeds/nodes should fail")
	}
	bad2 := PlatformConfig{Speeds: []float64{1}, Nodes: []int{1}, SLMin: 0.9, SLMax: 0.4}
	if err := bad2.Validate(); err == nil {
		t.Fatal("inverted SL range should fail")
	}
}
