package grid

import (
	"fmt"
	"math"
)

// Site is a grid resource site (a supercomputing center or cluster).
// The default execution model is the paper's: the site processes one job
// at a time at its aggregate Speed, so ETC(job, site) = Workload / Speed.
type Site struct {
	ID int
	// Speed is the aggregate processing speed in work units per second.
	// For NAS-style configurations Speed equals the node count (Table 1
	// lists site processing speeds as "8×8 nodes and 4×16 nodes").
	Speed float64
	// Nodes is the processor count, used by the space-shared extension.
	Nodes int
	// SecurityLevel is SL in the paper: [0.4, 1.0] uniform (Table 1).
	SecurityLevel float64
}

// Validate reports whether the site's fields are sensible.
func (s *Site) Validate() error {
	switch {
	case s.Speed <= 0:
		return fmt.Errorf("grid: site %d has non-positive speed %v", s.ID, s.Speed)
	case s.Nodes <= 0:
		return fmt.Errorf("grid: site %d has non-positive node count %d", s.ID, s.Nodes)
	case s.SecurityLevel < 0 || s.SecurityLevel > 1:
		return fmt.Errorf("grid: site %d has SL %v outside [0,1]", s.ID, s.SecurityLevel)
	}
	return nil
}

// ExecTime returns the execution time of job j on site s under the
// aggregate-speed model.
func (s *Site) ExecTime(j *Job) float64 {
	return j.Workload / s.Speed
}

// ValidateSites checks a whole site list and that IDs equal slice indices
// (the schedulers index sites positionally).
func ValidateSites(sites []*Site) error {
	if len(sites) == 0 {
		return fmt.Errorf("grid: empty site list")
	}
	for i, s := range sites {
		if s.ID != i {
			return fmt.Errorf("grid: site at index %d has ID %d; IDs must be positional", i, s.ID)
		}
		if err := s.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// TotalSpeed returns the aggregate speed of all sites.
func TotalSpeed(sites []*Site) float64 {
	var total float64
	for _, s := range sites {
		total += s.Speed
	}
	return total
}

// MaxSecurityLevel returns the highest SL in the site list and its index.
func MaxSecurityLevel(sites []*Site) (level float64, index int) {
	level = math.Inf(-1)
	index = -1
	for i, s := range sites {
		if s.SecurityLevel > level {
			level = s.SecurityLevel
			index = i
		}
	}
	return level, index
}

// ETCMatrix computes the jobs×sites matrix of execution times under the
// aggregate-speed model, flattened row-major (job-major). The schedulers
// and the STGA history table both consume this layout.
func ETCMatrix(jobs []*Job, sites []*Site) []float64 {
	m := make([]float64, len(jobs)*len(sites))
	for i, j := range jobs {
		row := m[i*len(sites) : (i+1)*len(sites)]
		for k, s := range sites {
			row[k] = s.ExecTime(j)
		}
	}
	return m
}
