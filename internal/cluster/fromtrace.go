package cluster

import "trustgrid/internal/grid"

// FromTrace converts simulator jobs (workload in node-seconds) into
// space-shared cluster jobs for a machine with the given node count.
// Node requests exceeding the machine are clamped and the runtime is
// stretched so the total node-seconds of work are preserved (the grid
// abstraction treats work as divisible across a site; the paper's jobs
// are non-moldable only within a scheduling decision).
func FromTrace(jobs []*grid.Job, machineNodes int) []Job {
	out := make([]Job, len(jobs))
	for i, j := range jobs {
		nodes := j.Nodes
		if nodes > machineNodes {
			nodes = machineNodes
		}
		runtime := j.Workload / float64(nodes)
		if runtime <= 0 {
			runtime = 1
		}
		out[i] = Job{ID: j.ID, Submit: j.Arrival, Runtime: runtime, Nodes: nodes}
	}
	return out
}
