package cluster

import (
	"sort"
	"testing"
	"testing/quick"

	"trustgrid/internal/rng"
	"trustgrid/internal/trace"
)

func TestFCFSSerialOnUniMachine(t *testing.T) {
	jobs := []Job{
		{ID: 0, Submit: 0, Runtime: 10, Nodes: 1},
		{ID: 1, Submit: 0, Runtime: 5, Nodes: 1},
		{ID: 2, Submit: 0, Runtime: 1, Nodes: 1},
	}
	res, err := SimulateFCFS(1, jobs)
	if err != nil {
		t.Fatal(err)
	}
	// Strict submission order on one node: 0→10, 10→15, 15→16.
	byID := map[int]Result{}
	for _, r := range res {
		byID[r.ID] = r
	}
	if byID[0].Start != 0 || byID[1].Start != 10 || byID[2].Start != 15 {
		t.Fatalf("FCFS order violated: %+v", byID)
	}
}

func TestParallelOccupancy(t *testing.T) {
	jobs := []Job{
		{ID: 0, Submit: 0, Runtime: 10, Nodes: 2},
		{ID: 1, Submit: 0, Runtime: 10, Nodes: 2},
	}
	res, err := SimulateFCFS(4, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Start != 0 {
			t.Fatalf("both jobs fit simultaneously, got %+v", res)
		}
	}
}

func TestEASYBackfillsShortJob(t *testing.T) {
	// Head job needs the whole machine and must wait for job 0; the
	// short 1-node job 2 can backfill without delaying it.
	jobs := []Job{
		{ID: 0, Submit: 0, Runtime: 100, Nodes: 3}, // occupies 3 of 4
		{ID: 1, Submit: 1, Runtime: 50, Nodes: 4},  // head: waits until 100
		{ID: 2, Submit: 2, Runtime: 90, Nodes: 1},  // fits in the hole
	}
	easy, err := SimulateEASY(4, jobs)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[int]Result{}
	for _, r := range easy {
		byID[r.ID] = r
	}
	if byID[2].Start != 2 {
		t.Fatalf("EASY should backfill job 2 at its arrival, got %+v", byID[2])
	}
	if byID[1].Start != 100 {
		t.Fatalf("backfill must not delay the reserved head: %+v", byID[1])
	}

	fcfs, err := SimulateFCFS(4, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range fcfs {
		if r.ID == 2 && r.Start < 100 {
			t.Fatalf("FCFS must not backfill: %+v", r)
		}
	}
}

func TestBackfillNeverDelaysHead(t *testing.T) {
	// Property: for random workloads, every job's EASY start time is no
	// later than its FCFS start time... that is NOT generally true
	// (backfill can delay non-head jobs), but the HEAD reservation
	// property is: makespan and head starts never regress beyond FCFS
	// for the machine-filling head pattern. We check the weaker global
	// properties: no node over-subscription and all jobs complete.
	r := rng.New(9)
	check := func(n uint8) bool {
		count := int(n%40) + 1
		nodes := 16
		jobs := make([]Job, count)
		tm := 0.0
		for i := range jobs {
			tm += r.Exp(0.01)
			jobs[i] = Job{
				ID: i, Submit: tm,
				Runtime: 1 + r.Float64()*500,
				Nodes:   1 + r.Intn(nodes),
			}
		}
		for _, sim := range []func(int, []Job) ([]Result, error){SimulateFCFS, SimulateEASY} {
			res, err := sim(nodes, jobs)
			if err != nil || len(res) != count {
				return false
			}
			if !occupancyValid(nodes, res) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// occupancyValid verifies node usage never exceeds capacity by sweeping
// start/finish events.
func occupancyValid(nodes int, res []Result) bool {
	type ev struct {
		at    float64
		delta int
	}
	var evs []ev
	for _, r := range res {
		evs = append(evs, ev{r.Start, r.Nodes}, ev{r.Finish, -r.Nodes})
	}
	sort.Slice(evs, func(i, k int) bool {
		if evs[i].at != evs[k].at {
			return evs[i].at < evs[k].at
		}
		return evs[i].delta < evs[k].delta // release before acquire at ties
	})
	used := 0
	for _, e := range evs {
		used += e.delta
		if used > nodes {
			return false
		}
	}
	return true
}

func TestEASYNoWorseMakespanHere(t *testing.T) {
	// EASY is not universally makespan-optimal vs FCFS, but on workloads
	// with many small jobs behind wide heads it should not lose. Check a
	// generated NAS-like trace on the 128-node source machine.
	cfg := trace.DefaultNASConfig()
	cfg.Jobs = 400
	cfg.Span = 4 * 24 * 3600
	gjobs, err := cfg.Generate(rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	jobs := FromTrace(gjobs, 128)
	fc, err := SimulateFCFS(128, jobs)
	if err != nil {
		t.Fatal(err)
	}
	ez, err := SimulateEASY(128, jobs)
	if err != nil {
		t.Fatal(err)
	}
	mFC := Summarize(128, jobs, fc)
	mEZ := Summarize(128, jobs, ez)
	if mEZ.AvgWait > mFC.AvgWait*1.05 {
		t.Fatalf("EASY avg wait %v should not exceed FCFS %v", mEZ.AvgWait, mFC.AvgWait)
	}
	if mEZ.Utilization < mFC.Utilization*0.95 {
		t.Fatalf("EASY utilization %v should not trail FCFS %v", mEZ.Utilization, mFC.Utilization)
	}
}

func TestValidation(t *testing.T) {
	if _, err := SimulateFCFS(0, nil); err == nil {
		t.Fatal("zero nodes should error")
	}
	if _, err := SimulateFCFS(4, []Job{{ID: 0, Nodes: 8, Runtime: 1}}); err == nil {
		t.Fatal("oversized job should error")
	}
	if _, err := SimulateFCFS(4, []Job{{ID: 0, Nodes: 1, Runtime: -1}}); err == nil {
		t.Fatal("negative runtime should error")
	}
}

func TestSummarize(t *testing.T) {
	jobs := []Job{{ID: 0, Submit: 0, Runtime: 10, Nodes: 2}}
	res := []Result{{ID: 0, Start: 5, Finish: 15, Nodes: 2}}
	m := Summarize(4, jobs, res)
	if m.Makespan != 15 || m.AvgWait != 5 || m.MaxWait != 5 {
		t.Fatalf("bad metrics: %+v", m)
	}
	// 2 nodes × 10 s of 4 × 15 total.
	if want := 20.0 / 60.0; m.Utilization != want {
		t.Fatalf("utilization %v, want %v", m.Utilization, want)
	}
}

func TestFromTraceClampsNodes(t *testing.T) {
	cfg := trace.DefaultNASConfig()
	cfg.Jobs = 50
	gjobs, err := cfg.Generate(rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	jobs := FromTrace(gjobs, 8)
	for _, j := range jobs {
		if j.Nodes > 8 {
			t.Fatalf("node request %d not clamped to machine size", j.Nodes)
		}
		if j.Runtime <= 0 {
			t.Fatalf("non-positive runtime %v", j.Runtime)
		}
	}
}
