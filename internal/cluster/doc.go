// Package cluster models a space-shared parallel machine — jobs occupy
// `nodes` processors for their runtime — with FCFS and EASY-backfilling
// queue disciplines. It serves two purposes in the reproduction:
//
//  1. Substrate validation: the paper's NAS workload originates from a
//     128-node iPSC/860; replaying our synthetic trace through this
//     model sanity-checks the generator against the machine it imitates
//     (experiment A5 in DESIGN.md).
//  2. Extension: the main simulator follows the paper in abstracting a
//     site as an aggregate-speed serial queue; this package provides the
//     more realistic space-shared alternative for robustness checks.
//
// Runtimes are assumed known exactly (the usual simplification when
// replaying accounting traces; the paper's future-work section flags
// unknown durations as open).
//
// DESIGN.md §1.1 inventory row: space-shared 128-node machine (FCFS + EASY backfilling) for the A5 substrate validation.
package cluster
