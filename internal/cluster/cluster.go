package cluster

import (
	"fmt"
	"sort"
)

// Job is one space-shared job.
type Job struct {
	ID      int
	Submit  float64 // submission time, seconds
	Runtime float64 // execution duration once started, seconds
	Nodes   int     // processors occupied while running
}

// Result records one job's schedule.
type Result struct {
	ID     int
	Start  float64
	Finish float64
	Nodes  int
}

// Metrics summarizes a simulated schedule.
type Metrics struct {
	Makespan    float64
	AvgWait     float64
	MaxWait     float64
	Utilization float64 // node-seconds used / (nodes × makespan)
}

// running is an allocation active on the machine.
type running struct {
	finish float64
	nodes  int
}

// machine tracks free nodes over time via the running set.
type machine struct {
	total  int
	free   int
	active []running // unordered; small (≤ total jobs running)
	now    float64
}

func (m *machine) advanceTo(t float64) {
	m.now = t
	kept := m.active[:0]
	for _, r := range m.active {
		if r.finish > t {
			kept = append(kept, r)
		} else {
			m.free += r.nodes
		}
	}
	m.active = kept
}

// nextFinish returns the earliest finish time among active allocations
// (or +Inf when idle... callers check active length).
func (m *machine) nextFinish() float64 {
	best := -1.0
	for _, r := range m.active {
		if best < 0 || r.finish < best {
			best = r.finish
		}
	}
	return best
}

// start places a job on the machine at the current time.
func (m *machine) start(nodes int, runtime float64) float64 {
	m.free -= nodes
	finish := m.now + runtime
	m.active = append(m.active, running{finish: finish, nodes: nodes})
	return finish
}

// shadowTime computes when `nodes` processors will be free, assuming no
// further arrivals: walk finish times in order accumulating releases.
// Also returns the number of nodes spare at that time beyond the request.
func (m *machine) shadowTime(nodes int) (at float64, spare int) {
	if m.free >= nodes {
		return m.now, m.free - nodes
	}
	finishes := append([]running(nil), m.active...)
	sort.Slice(finishes, func(i, k int) bool { return finishes[i].finish < finishes[k].finish })
	avail := m.free
	for _, r := range finishes {
		avail += r.nodes
		if avail >= nodes {
			return r.finish, avail - nodes
		}
	}
	// Unreachable when nodes <= total.
	return finishes[len(finishes)-1].finish, 0
}

func validate(nodes int, jobs []Job) error {
	if nodes <= 0 {
		return fmt.Errorf("cluster: non-positive node count %d", nodes)
	}
	for _, j := range jobs {
		if j.Nodes <= 0 || j.Nodes > nodes {
			return fmt.Errorf("cluster: job %d requests %d of %d nodes", j.ID, j.Nodes, nodes)
		}
		if j.Runtime < 0 || j.Submit < 0 {
			return fmt.Errorf("cluster: job %d has negative time fields", j.ID)
		}
	}
	return nil
}

// SimulateFCFS runs strict first-come-first-served space sharing: the
// queue head blocks everything behind it until it fits.
func SimulateFCFS(nodes int, jobs []Job) ([]Result, error) {
	return simulate(nodes, jobs, false)
}

// SimulateEASY runs EASY backfilling: queued jobs may jump ahead if they
// do not delay the reserved start of the queue head (Lifka 1995).
func SimulateEASY(nodes int, jobs []Job) ([]Result, error) {
	return simulate(nodes, jobs, true)
}

func simulate(nodes int, jobs []Job, backfill bool) ([]Result, error) {
	if err := validate(nodes, jobs); err != nil {
		return nil, err
	}
	pending := append([]Job(nil), jobs...)
	sort.SliceStable(pending, func(i, k int) bool { return pending[i].Submit < pending[k].Submit })

	m := &machine{total: nodes, free: nodes}
	var queue []Job
	results := make([]Result, 0, len(jobs))
	nextArrival := 0

	tryStart := func() {
		for {
			progressed := false
			// Start the head while it fits.
			for len(queue) > 0 && queue[0].Nodes <= m.free {
				j := queue[0]
				queue = queue[1:]
				finish := m.start(j.Nodes, j.Runtime)
				results = append(results, Result{ID: j.ID, Start: m.now, Finish: finish, Nodes: j.Nodes})
				progressed = true
			}
			if !backfill || len(queue) == 0 {
				return
			}
			// EASY: reserve the head's shadow start, then admit any later
			// job that fits now and either finishes before the shadow or
			// uses only nodes spare at the shadow.
			shadow, spare := m.shadowTime(queue[0].Nodes)
			for i := 1; i < len(queue); i++ {
				j := queue[i]
				if j.Nodes > m.free {
					continue
				}
				fitsBefore := m.now+j.Runtime <= shadow
				fitsSpare := j.Nodes <= spare
				if fitsBefore || fitsSpare {
					finish := m.start(j.Nodes, j.Runtime)
					results = append(results, Result{ID: j.ID, Start: m.now, Finish: finish, Nodes: j.Nodes})
					if fitsSpare && !fitsBefore {
						spare -= j.Nodes
					}
					queue = append(queue[:i], queue[i+1:]...)
					progressed = true
					i--
				}
			}
			if !progressed {
				return
			}
		}
	}

	for nextArrival < len(pending) || len(queue) > 0 || len(m.active) > 0 {
		// Next event: arrival or completion.
		var tArr, tFin float64
		hasArr := nextArrival < len(pending)
		hasFin := len(m.active) > 0
		if hasArr {
			tArr = pending[nextArrival].Submit
		}
		if hasFin {
			tFin = m.nextFinish()
		}
		switch {
		case hasArr && (!hasFin || tArr <= tFin):
			m.advanceTo(tArr)
			for nextArrival < len(pending) && pending[nextArrival].Submit == tArr {
				queue = append(queue, pending[nextArrival])
				nextArrival++
			}
		case hasFin:
			m.advanceTo(tFin)
		default:
			// Queue non-empty but nothing running and no arrivals left:
			// impossible when every job fits the machine.
			return nil, fmt.Errorf("cluster: deadlock with %d queued jobs", len(queue))
		}
		tryStart()
	}
	return results, nil
}

// Summarize computes schedule metrics. submit maps job ID → submit time.
func Summarize(nodes int, jobs []Job, results []Result) Metrics {
	submit := make(map[int]float64, len(jobs))
	for _, j := range jobs {
		submit[j.ID] = j.Submit
	}
	var m Metrics
	var waitSum, nodeSeconds float64
	for _, r := range results {
		if r.Finish > m.Makespan {
			m.Makespan = r.Finish
		}
		w := r.Start - submit[r.ID]
		waitSum += w
		if w > m.MaxWait {
			m.MaxWait = w
		}
		nodeSeconds += float64(r.Nodes) * (r.Finish - r.Start)
	}
	if len(results) > 0 {
		m.AvgWait = waitSum / float64(len(results))
	}
	if m.Makespan > 0 {
		m.Utilization = nodeSeconds / (float64(nodes) * m.Makespan)
	}
	return m
}
