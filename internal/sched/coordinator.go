package sched

import (
	"fmt"
	"sort"
	"sync"

	"trustgrid/internal/grid"
	"trustgrid/internal/metrics"
)

// CoordinatorConfig assembles a coordinator over N engine shards. The
// caller (the server, or a test) prepares one RunConfig per shard whose
// Sites/Dynamics are already the shard's partition — PartitionSites,
// ShardSites and PartitionDynamics build those — plus the partition
// table itself so the coordinator can translate shard-local site
// indices back to global ones in everything it reports.
type CoordinatorConfig struct {
	// Shards holds one engine config per shard. Each config's OnEvent
	// must be unset: the coordinator owns event delivery (it remaps site
	// indices and establishes the merged total order) and forwards to
	// OnEvent below.
	Shards []RunConfig
	// Parts maps Parts[s][local] = global site index; every global site
	// must appear exactly once across all shards.
	Parts [][]int
	// OnEvent receives the merged, globally ordered event stream:
	// ascending time, shard index breaking ties, with site indices
	// translated to global. Called on the goroutine driving AdvanceTo /
	// Drain, after the Δ-round barrier joins — never concurrently.
	OnEvent func(EngineEvent)
}

// Coordinator is the tier above N engine shards running in one process
// (DESIGN.md §11): it routes submissions to the owning shard
// (RouteTenant), fans AdvanceTo/Drain out to every shard as a shared
// Δ-round barrier, and merges the shards' event streams into one total
// order. With one shard it is a transparent wrapper — same RNG labels,
// pass-through events, bit-identical behavior to the unsharded engine.
//
// Concurrency contract: same as Online. Submit/SubmitOr/Backlog are
// safe from any goroutine; everything else belongs to the single loop
// goroutine. During a barrier each shard advances on its own goroutine,
// but that parallelism is internal — events are buffered per shard and
// merged after the join, so observers see one serialized stream.
type Coordinator struct {
	shards  []*Online
	parts   [][]int
	nSites  int
	onEvent func(EngineEvent)
	// buf[s] collects shard s's events during a barrier. Only shard s's
	// goroutine appends to buf[s] while the fan-out runs; the merge on
	// the driving goroutine happens strictly after the join.
	buf [][]EngineEvent
}

// NewCoordinator builds the shards and the tier above them.
func NewCoordinator(cc CoordinatorConfig) (*Coordinator, error) {
	c, err := prepCoordinator(cc)
	if err != nil {
		return nil, err
	}
	for i := range cc.Shards {
		o, err := NewOnline(cc.Shards[i])
		if err != nil {
			return nil, fmt.Errorf("sched: shard %d: %w", i, err)
		}
		c.shards[i] = o
	}
	return c, nil
}

// RestoreCoordinator rebuilds a coordinator mid-run from one engine
// snapshot per shard (snaps[i] pairs with cc.Shards[i]).
func RestoreCoordinator(cc CoordinatorConfig, snaps []*EngineSnapshot) (*Coordinator, error) {
	if len(snaps) != len(cc.Shards) {
		return nil, fmt.Errorf("sched: %d engine snapshots for %d shards", len(snaps), len(cc.Shards))
	}
	c, err := prepCoordinator(cc)
	if err != nil {
		return nil, err
	}
	for i := range cc.Shards {
		o, err := RestoreOnline(cc.Shards[i], snaps[i])
		if err != nil {
			return nil, fmt.Errorf("sched: shard %d: %w", i, err)
		}
		c.shards[i] = o
	}
	return c, nil
}

// prepCoordinator validates the partition table and wires per-shard
// event delivery into the configs before the shards are built.
func prepCoordinator(cc CoordinatorConfig) (*Coordinator, error) {
	n := len(cc.Shards)
	if n == 0 {
		return nil, fmt.Errorf("sched: coordinator needs at least one shard")
	}
	if len(cc.Parts) != n {
		return nil, fmt.Errorf("sched: %d partitions for %d shards", len(cc.Parts), n)
	}
	seen := make(map[int]bool)
	nSites := 0
	for s, part := range cc.Parts {
		if len(part) == 0 {
			return nil, fmt.Errorf("sched: shard %d has no sites (need at least as many sites as shards)", s)
		}
		if len(part) != len(cc.Shards[s].Sites) {
			return nil, fmt.Errorf("sched: shard %d has %d sites but a partition of %d", s, len(cc.Shards[s].Sites), len(part))
		}
		for _, g := range part {
			if g < 0 || seen[g] {
				return nil, fmt.Errorf("sched: global site %d appears twice in the partition table", g)
			}
			seen[g] = true
			nSites++
		}
	}
	c := &Coordinator{
		shards:  make([]*Online, n),
		parts:   cc.Parts,
		nSites:  nSites,
		onEvent: cc.OnEvent,
		buf:     make([][]EngineEvent, n),
	}
	for i := range cc.Shards {
		if cc.Shards[i].OnEvent != nil {
			return nil, fmt.Errorf("sched: shard %d sets OnEvent (the coordinator owns event delivery)", i)
		}
		if n == 1 {
			// Single shard: pass events straight through (site indices are
			// already global) so a -shards 1 run is the unsharded engine
			// to the byte — no buffering, no barrier re-ordering, events
			// visible the instant they fire.
			cc.Shards[i].OnEvent = c.onEvent
			continue
		}
		i := i
		cc.Shards[i].OnEvent = func(ev EngineEvent) {
			if ev.Site >= 0 {
				ev.Site = c.parts[i][ev.Site]
			}
			c.buf[i] = append(c.buf[i], ev)
		}
	}
	return c, nil
}

// Shards returns the shard count.
func (c *Coordinator) Shards() int { return len(c.shards) }

// Shard exposes one shard's engine for per-shard introspection
// (metrics, snapshots). Loop goroutine only, like the engine itself.
func (c *Coordinator) Shard(i int) *Online { return c.shards[i] }

// Part returns shard i's site partition (global indices, local order).
// The returned slice is the coordinator's own — read only.
func (c *Coordinator) Part(i int) []int { return c.parts[i] }

// Owner returns the shard that owns a tenant.
func (c *Coordinator) Owner(tenantID string) int {
	return RouteTenant(tenantID, len(c.shards))
}

// flush merges the per-shard barrier buffers into the total order and
// delivers them. Driving goroutine only, after the barrier join. A
// single-shard coordinator never buffers, so this is a no-op there.
func (c *Coordinator) flush() {
	if len(c.shards) == 1 {
		return
	}
	merged := MergeShardEvents(c.buf)
	for i := range c.buf {
		c.buf[i] = c.buf[i][:0]
	}
	if c.onEvent == nil {
		return
	}
	for _, ev := range merged {
		c.onEvent(ev)
	}
}

// barrier fans fn out to every shard — in parallel when there is real
// fan-out to hide, inline for one shard — joins, then flushes the
// merged event window. The per-shard error that comes back is the
// lowest-indexed shard's (deterministic under -race reruns).
func (c *Coordinator) barrier(fn func(i int, o *Online) error) error {
	if len(c.shards) == 1 {
		return fn(0, c.shards[0])
	}
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for i, o := range c.shards {
		i, o := i, o
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = fn(i, o)
		}()
	}
	wg.Wait()
	c.flush()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// AdvanceTo drives every shard to virtual time t — the shared Δ-round
// barrier — then emits the window's merged events. Shards already past
// t (a prior Drain ran them ahead) only ingest their arrival backlog.
// Loop goroutine only.
func (c *Coordinator) AdvanceTo(t float64) error {
	return c.barrier(func(_ int, o *Online) error {
		target := t
		if now := o.Now(); now > target {
			target = now
		}
		return o.AdvanceTo(target)
	})
}

// Drain runs every shard until everything submitted so far has
// completed, merges the final event window, and aggregates the result.
// Loop goroutine only.
func (c *Coordinator) Drain() (*Result, error) {
	if len(c.shards) == 1 {
		return c.shards[0].Drain()
	}
	results := make([]*Result, len(c.shards))
	if err := c.barrier(func(i int, o *Online) error {
		var err error
		results[i], err = o.Drain()
		return err
	}); err != nil {
		return nil, err
	}
	out := &Result{Summary: c.Summary()}
	for _, r := range results {
		out.Records = append(out.Records, r.Records...)
		out.Batches += r.Batches
		out.Events += r.Events
		out.SchedulerTime += r.SchedulerTime
		if r.LargestBatch > out.LargestBatch {
			out.LargestBatch = r.LargestBatch
		}
	}
	return out, nil
}

// Submit routes a job to its tenant's shard. Safe from any goroutine.
func (c *Coordinator) Submit(j *grid.Job) error {
	return c.shards[c.Owner(j.Tenant)].Submit(j)
}

// SubmitOr is Submit with an abort signal, like Online.SubmitOr.
func (c *Coordinator) SubmitOr(done <-chan struct{}, j *grid.Job) error {
	return c.shards[c.Owner(j.Tenant)].SubmitOr(done, j)
}

// SubmitLocal ingests a job directly onto the owning shard's event
// queue (manual-mode replay path). Loop goroutine only.
func (c *Coordinator) SubmitLocal(j *grid.Job) error {
	return c.shards[c.Owner(j.Tenant)].SubmitLocal(j)
}

// SetTenantWeight installs a fair-share weight on the tenant's owning
// shard — the only shard whose batch former ever sees the tenant's
// jobs. Loop goroutine only.
func (c *Coordinator) SetTenantWeight(tenant string, weight float64) {
	c.shards[c.Owner(tenant)].SetTenantWeight(tenant, weight)
}

// Now returns the coordinator clock: the maximum shard clock. Shards
// share barrier targets so clocks only diverge past the last barrier
// (a Drain runs each shard to its own completion time); max is what
// "the service's virtual time" means then, and the floor the next
// barrier target is validated against.
func (c *Coordinator) Now() float64 {
	now := c.shards[0].Now()
	for _, o := range c.shards[1:] {
		if t := o.Now(); t > now {
			now = t
		}
	}
	return now
}

// Backlog sums the shards' not-yet-ingested arrivals. Any goroutine.
func (c *Coordinator) Backlog() int {
	n := 0
	for _, o := range c.shards {
		n += o.Backlog()
	}
	return n
}

// Seen sums the shards' ingested-job counts. Loop goroutine only.
func (c *Coordinator) Seen() int {
	n := 0
	for _, o := range c.shards {
		n += o.Seen()
	}
	return n
}

// InFlight sums the shards' incomplete-job counts. Loop goroutine only.
func (c *Coordinator) InFlight() int {
	n := 0
	for _, o := range c.shards {
		n += o.InFlight()
	}
	return n
}

// Batches sums the shards' dispatching rounds. Loop goroutine only.
func (c *Coordinator) Batches() int {
	n := 0
	for _, o := range c.shards {
		n += o.Batches()
	}
	return n
}

// LargestBatch is the largest single-shard round. Loop goroutine only.
func (c *Coordinator) LargestBatch() int {
	m := 0
	for _, o := range c.shards {
		if b := o.LargestBatch(); b > m {
			m = b
		}
	}
	return m
}

// Summary merges the shards' incremental summaries: per-job sums and
// counts add, makespan is the max, and the utilization vector is
// reassembled in global site order. Identical to Online.Summary for one
// shard. Loop goroutine only.
func (c *Coordinator) Summary() metrics.Summary {
	if len(c.shards) == 1 {
		return c.shards[0].Summary()
	}
	var acc metrics.Accumulator
	busy := make([]float64, c.nSites)
	for i, o := range c.shards {
		acc.Merge(o.st.acc.State())
		for local, g := range c.parts[i] {
			busy[g] = o.st.busy[local]
		}
	}
	return acc.Summarize(busy)
}

// SiteStatuses reports every site's live state in global site order.
// Loop goroutine only.
func (c *Coordinator) SiteStatuses() []SiteStatus {
	if len(c.shards) == 1 {
		return c.shards[0].SiteStatuses()
	}
	out := make([]SiteStatus, c.nSites)
	for i, o := range c.shards {
		for local, st := range o.SiteStatuses() {
			st.ID = c.parts[i][local]
			out[st.ID] = st
		}
	}
	return out
}

// NeverPlaced aggregates the shards' accepted-but-never-placed jobs,
// sorted by ID like the single-engine form. Loop goroutine only.
func (c *Coordinator) NeverPlaced() []grid.Job {
	if len(c.shards) == 1 {
		return c.shards[0].NeverPlaced()
	}
	var out []grid.Job
	for _, o := range c.shards {
		out = append(out, o.NeverPlaced()...)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Snapshots captures every shard's engine snapshot, in shard order.
// Same preconditions as Online.Snapshot, per shard. Loop goroutine (or
// post-loop owner) only.
func (c *Coordinator) Snapshots() ([]*EngineSnapshot, error) {
	out := make([]*EngineSnapshot, len(c.shards))
	for i, o := range c.shards {
		snap, err := o.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("sched: shard %d: %w", i, err)
		}
		out[i] = snap
	}
	return out, nil
}
