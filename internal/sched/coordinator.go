package sched

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"trustgrid/internal/grid"
	"trustgrid/internal/metrics"
)

// ErrShardDown reports that a shard is (temporarily) unreachable — a
// fleet worker whose connection dropped or whose heartbeat TTL expired.
// In-process shards never return it. The coordinator treats it as a
// degradation, not a failure: AdvanceTo skips a down shard (its barrier
// window is made up on reattach, see internal/fleet), while submissions
// routed to it surface the error so the service layer can 503 the
// owning tenants. Match with errors.Is.
var ErrShardDown = errors.New("sched: shard down")

// Shard is the seam between the coordinator and one engine shard: the
// exact method set Coordinator needs to route submissions, drive the
// Δ-round barrier and aggregate what it reports. *Online implements it
// in process; fleet.RemoteShard implements it over a framed TCP
// connection to a trustgrid-worker. The concurrency contract matches
// Online: Submit/SubmitOr/Backlog are safe from any goroutine, the rest
// belongs to the goroutine driving the coordinator.
type Shard interface {
	Submit(j *grid.Job) error
	SubmitOr(done <-chan struct{}, j *grid.Job) error
	SubmitLocal(j *grid.Job) error
	AdvanceTo(t float64) error
	Drain() (*Result, error)
	Now() float64
	Backlog() int
	Seen() int
	InFlight() int
	Batches() int
	LargestBatch() int
	SetTenantWeight(tenant string, weight float64)
	SiteStatuses() []SiteStatus
	NeverPlaced() []grid.Job
	Snapshot() (*EngineSnapshot, error)
	// MetricsState exposes the incremental §4.1 accumulator and the
	// per-site (local index) busy vector for cross-shard aggregation.
	MetricsState() (metrics.AccumulatorState, []float64)
	// SetEventSink installs the coordinator's event observer. Events
	// only fire while the shard executes (AdvanceTo/Drain/SubmitLocal on
	// the driving goroutine), so installing the sink between construction
	// and the first barrier is race-free.
	SetEventSink(fn func(EngineEvent))
}

// CoordinatorConfig assembles a coordinator over N engine shards. The
// caller (the server, or a test) prepares one RunConfig per shard whose
// Sites/Dynamics are already the shard's partition — PartitionSites,
// ShardSites and PartitionDynamics build those — plus the partition
// table itself so the coordinator can translate shard-local site
// indices back to global ones in everything it reports.
type CoordinatorConfig struct {
	// Shards holds one engine config per shard. Each config's OnEvent
	// must be unset: the coordinator owns event delivery (it remaps site
	// indices and establishes the merged total order) and forwards to
	// OnEvent below.
	Shards []RunConfig
	// Parts maps Parts[s][local] = global site index; every global site
	// must appear exactly once across all shards.
	Parts [][]int
	// OnEvent receives the merged, globally ordered event stream:
	// ascending time, shard index breaking ties, with site indices
	// translated to global. Called on the goroutine driving AdvanceTo /
	// Drain, after the Δ-round barrier joins — never concurrently.
	OnEvent func(EngineEvent)
}

// Coordinator is the tier above N engine shards (DESIGN.md §11): it
// routes submissions to the owning shard (RouteTenant), fans
// AdvanceTo/Drain out to every shard as a shared Δ-round barrier, and
// merges the shards' event streams into one total order. With one shard
// it is a transparent wrapper — same RNG labels, pass-through events,
// bit-identical behavior to the unsharded engine. The shards may live
// in process (NewCoordinator) or behind a wire (AttachCoordinator over
// fleet.RemoteShard values); the barrier, merge and routing logic do
// not know the difference.
//
// Concurrency contract: same as Online. Submit/SubmitOr/Backlog are
// safe from any goroutine; everything else belongs to the single loop
// goroutine. During a barrier each shard advances on its own goroutine,
// but that parallelism is internal — events are buffered per shard and
// merged after the join, so observers see one serialized stream.
type Coordinator struct {
	shards  []Shard
	parts   [][]int
	nSites  int
	onEvent func(EngineEvent)
	// buf[s] collects shard s's events during a barrier. Only shard s's
	// goroutine appends to buf[s] while the fan-out runs; the merge on
	// the driving goroutine happens strictly after the join.
	buf [][]EngineEvent
}

// NewCoordinator builds the shards and the tier above them.
func NewCoordinator(cc CoordinatorConfig) (*Coordinator, error) {
	c, err := prepCoordinator(cc)
	if err != nil {
		return nil, err
	}
	for i := range cc.Shards {
		o, err := NewOnline(cc.Shards[i])
		if err != nil {
			return nil, fmt.Errorf("sched: shard %d: %w", i, err)
		}
		c.shards[i] = o
	}
	c.wireSinks()
	return c, nil
}

// RestoreCoordinator rebuilds a coordinator mid-run from one engine
// snapshot per shard (snaps[i] pairs with cc.Shards[i]).
func RestoreCoordinator(cc CoordinatorConfig, snaps []*EngineSnapshot) (*Coordinator, error) {
	if len(snaps) != len(cc.Shards) {
		return nil, fmt.Errorf("sched: %d engine snapshots for %d shards", len(snaps), len(cc.Shards))
	}
	c, err := prepCoordinator(cc)
	if err != nil {
		return nil, err
	}
	for i := range cc.Shards {
		o, err := RestoreOnline(cc.Shards[i], snaps[i])
		if err != nil {
			return nil, fmt.Errorf("sched: shard %d: %w", i, err)
		}
		c.shards[i] = o
	}
	c.wireSinks()
	return c, nil
}

// AttachCoordinator builds a coordinator over shards that already exist
// — fleet.RemoteShard handles to out-of-process workers, or any other
// Shard implementation. The partition table is validated exactly like
// the in-process constructors', except the per-shard site count check
// (a remote shard's platform is not visible here; the worker validates
// its own partition against the spec it was attached with).
func AttachCoordinator(parts [][]int, shards []Shard, onEvent func(EngineEvent)) (*Coordinator, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("sched: coordinator needs at least one shard")
	}
	if len(parts) != len(shards) {
		return nil, fmt.Errorf("sched: %d partitions for %d shards", len(parts), len(shards))
	}
	nSites, err := checkParts(parts)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		shards:  shards,
		parts:   parts,
		nSites:  nSites,
		onEvent: onEvent,
		buf:     make([][]EngineEvent, len(shards)),
	}
	c.wireSinks()
	return c, nil
}

// checkParts validates a partition table: no empty shard, no negative
// site index, every global site at most once.
func checkParts(parts [][]int) (nSites int, err error) {
	seen := make(map[int]bool)
	for s, part := range parts {
		if len(part) == 0 {
			return 0, fmt.Errorf("sched: shard %d has no sites (need at least as many sites as shards)", s)
		}
		for _, g := range part {
			if g < 0 {
				return 0, fmt.Errorf("sched: negative global site %d in shard %d's partition", g, s)
			}
			if seen[g] {
				return 0, fmt.Errorf("sched: global site %d appears twice in the partition table", g)
			}
			seen[g] = true
			nSites++
		}
	}
	return nSites, nil
}

// prepCoordinator validates the configuration for the in-process
// constructors, which build their own shards from RunConfigs.
func prepCoordinator(cc CoordinatorConfig) (*Coordinator, error) {
	n := len(cc.Shards)
	if n == 0 {
		return nil, fmt.Errorf("sched: coordinator needs at least one shard")
	}
	if len(cc.Parts) != n {
		return nil, fmt.Errorf("sched: %d partitions for %d shards", len(cc.Parts), n)
	}
	for s, part := range cc.Parts {
		if len(part) != 0 && len(part) != len(cc.Shards[s].Sites) {
			return nil, fmt.Errorf("sched: shard %d has %d sites but a partition of %d", s, len(cc.Shards[s].Sites), len(part))
		}
	}
	nSites, err := checkParts(cc.Parts)
	if err != nil {
		return nil, err
	}
	for i := range cc.Shards {
		if cc.Shards[i].OnEvent != nil {
			return nil, fmt.Errorf("sched: shard %d sets OnEvent (the coordinator owns event delivery)", i)
		}
	}
	return &Coordinator{
		shards:  make([]Shard, n),
		parts:   cc.Parts,
		nSites:  nSites,
		onEvent: cc.OnEvent,
		buf:     make([][]EngineEvent, n),
	}, nil
}

// wireSinks installs the coordinator's event delivery on every shard:
// straight pass-through for a single shard (site indices are already
// global, so a -shards 1 run is the unsharded engine to the byte — no
// buffering, no barrier re-ordering, events visible the instant they
// fire), per-shard remap-and-buffer closures otherwise.
func (c *Coordinator) wireSinks() {
	if len(c.shards) == 1 {
		c.shards[0].SetEventSink(c.onEvent)
		return
	}
	for i, o := range c.shards {
		i := i
		o.SetEventSink(func(ev EngineEvent) {
			if ev.Site >= 0 {
				ev.Site = c.parts[i][ev.Site]
			}
			c.buf[i] = append(c.buf[i], ev)
		})
	}
}

// Shards returns the shard count.
func (c *Coordinator) Shards() int { return len(c.shards) }

// Shard exposes one shard for per-shard introspection (metrics,
// snapshots). Loop goroutine only, like the engine itself.
func (c *Coordinator) Shard(i int) Shard { return c.shards[i] }

// Part returns shard i's site partition (global indices, local order).
// The returned slice is the coordinator's own — read only.
func (c *Coordinator) Part(i int) []int { return c.parts[i] }

// Owner returns the shard that owns a tenant.
func (c *Coordinator) Owner(tenantID string) int {
	return RouteTenant(tenantID, len(c.shards))
}

// flush merges the per-shard barrier buffers into the total order and
// delivers them. Driving goroutine only, after the barrier join. A
// single-shard coordinator never buffers, so this is a no-op there.
func (c *Coordinator) flush() {
	if len(c.shards) == 1 {
		return
	}
	merged := MergeShardEvents(c.buf)
	for i := range c.buf {
		c.buf[i] = c.buf[i][:0]
	}
	if c.onEvent == nil {
		return
	}
	for _, ev := range merged {
		c.onEvent(ev)
	}
}

// barrier fans fn out to every shard — in parallel when there is real
// fan-out to hide, inline for one shard — joins, then flushes the
// merged event window. The surviving shards' buffered events are
// delivered exactly once even when a sibling errors; the caller folds
// the per-shard error vector with firstErr.
func (c *Coordinator) barrier(fn func(i int, o Shard) error) []error {
	if len(c.shards) == 1 {
		if err := fn(0, c.shards[0]); err != nil {
			return []error{err}
		}
		return nil
	}
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for i, o := range c.shards {
		i, o := i, o
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = fn(i, o)
		}()
	}
	wg.Wait()
	c.flush()
	return errs
}

// firstErr returns the lowest-indexed shard's error (deterministic
// under -race reruns), optionally treating ErrShardDown as tolerable.
func firstErr(errs []error, tolerateDown bool) error {
	for _, err := range errs {
		if err == nil || (tolerateDown && errors.Is(err, ErrShardDown)) {
			continue
		}
		return err
	}
	return nil
}

// AdvanceTo drives every shard to virtual time t — the shared Δ-round
// barrier — then emits the window's merged events. Shards already past
// t (a prior Drain ran them ahead) only ingest their arrival backlog.
// A shard that reports ErrShardDown is skipped: its window is missing
// from the merged stream until it reattaches and backfills, but the
// survivors keep scheduling (the degradation contract a fleet needs —
// one dead worker must not stop the service). Loop goroutine only.
func (c *Coordinator) AdvanceTo(t float64) error {
	return firstErr(c.barrier(func(_ int, o Shard) error {
		target := t
		if now := o.Now(); now > target {
			target = now
		}
		return o.AdvanceTo(target)
	}), true)
}

// Drain runs every shard until everything submitted so far has
// completed, merges the final event window, and aggregates the result.
// Unlike AdvanceTo, a down shard fails the drain: a drain's contract is
// "everything accepted has completed", which a dead shard cannot
// promise. Loop goroutine only.
func (c *Coordinator) Drain() (*Result, error) {
	if len(c.shards) == 1 {
		return c.shards[0].Drain()
	}
	results := make([]*Result, len(c.shards))
	errs := c.barrier(func(i int, o Shard) error {
		var err error
		results[i], err = o.Drain()
		return err
	})
	if err := firstErr(errs, false); err != nil {
		return nil, err
	}
	out := &Result{Summary: c.Summary()}
	for _, r := range results {
		out.Records = append(out.Records, r.Records...)
		out.Batches += r.Batches
		out.Events += r.Events
		out.SchedulerTime += r.SchedulerTime
		if r.LargestBatch > out.LargestBatch {
			out.LargestBatch = r.LargestBatch
		}
	}
	return out, nil
}

// Submit routes a job to its tenant's shard. Safe from any goroutine.
func (c *Coordinator) Submit(j *grid.Job) error {
	return c.shards[c.Owner(j.Tenant)].Submit(j)
}

// SubmitOr is Submit with an abort signal, like Online.SubmitOr.
func (c *Coordinator) SubmitOr(done <-chan struct{}, j *grid.Job) error {
	return c.shards[c.Owner(j.Tenant)].SubmitOr(done, j)
}

// SubmitLocal ingests a job directly onto the owning shard's event
// queue (manual-mode replay path). Loop goroutine only.
func (c *Coordinator) SubmitLocal(j *grid.Job) error {
	return c.shards[c.Owner(j.Tenant)].SubmitLocal(j)
}

// SetTenantWeight installs a fair-share weight on the tenant's owning
// shard — the only shard whose batch former ever sees the tenant's
// jobs. Loop goroutine only.
func (c *Coordinator) SetTenantWeight(tenant string, weight float64) {
	c.shards[c.Owner(tenant)].SetTenantWeight(tenant, weight)
}

// Now returns the coordinator clock: the maximum shard clock. Shards
// share barrier targets so clocks only diverge past the last barrier
// (a Drain runs each shard to its own completion time); max is what
// "the service's virtual time" means then, and the floor the next
// barrier target is validated against.
func (c *Coordinator) Now() float64 {
	now := c.shards[0].Now()
	for _, o := range c.shards[1:] {
		if t := o.Now(); t > now {
			now = t
		}
	}
	return now
}

// Backlog sums the shards' not-yet-ingested arrivals. Any goroutine.
func (c *Coordinator) Backlog() int {
	n := 0
	for _, o := range c.shards {
		n += o.Backlog()
	}
	return n
}

// Seen sums the shards' ingested-job counts. Loop goroutine only.
func (c *Coordinator) Seen() int {
	n := 0
	for _, o := range c.shards {
		n += o.Seen()
	}
	return n
}

// InFlight sums the shards' incomplete-job counts. Loop goroutine only.
func (c *Coordinator) InFlight() int {
	n := 0
	for _, o := range c.shards {
		n += o.InFlight()
	}
	return n
}

// Batches sums the shards' dispatching rounds. Loop goroutine only.
func (c *Coordinator) Batches() int {
	n := 0
	for _, o := range c.shards {
		n += o.Batches()
	}
	return n
}

// LargestBatch is the largest single-shard round. Loop goroutine only.
func (c *Coordinator) LargestBatch() int {
	m := 0
	for _, o := range c.shards {
		if b := o.LargestBatch(); b > m {
			m = b
		}
	}
	return m
}

// Summary merges the shards' incremental summaries: per-job sums and
// counts add, makespan is the max, and the utilization vector is
// reassembled in global site order. Identical to Online.Summary for one
// shard. Loop goroutine only.
func (c *Coordinator) Summary() metrics.Summary {
	if len(c.shards) == 1 {
		acc, busy := c.shards[0].MetricsState()
		var a metrics.Accumulator
		a.SetState(acc)
		return a.Summarize(busy)
	}
	var acc metrics.Accumulator
	busy := make([]float64, c.nSites)
	for i, o := range c.shards {
		st, shardBusy := o.MetricsState()
		acc.Merge(st)
		for local, g := range c.parts[i] {
			if local < len(shardBusy) {
				busy[g] = shardBusy[local]
			}
		}
	}
	return acc.Summarize(busy)
}

// SiteStatuses reports every site's live state in global site order.
// Loop goroutine only.
func (c *Coordinator) SiteStatuses() []SiteStatus {
	if len(c.shards) == 1 {
		return c.shards[0].SiteStatuses()
	}
	out := make([]SiteStatus, c.nSites)
	for i, o := range c.shards {
		for local, st := range o.SiteStatuses() {
			st.ID = c.parts[i][local]
			out[st.ID] = st
		}
	}
	return out
}

// NeverPlaced aggregates the shards' accepted-but-never-placed jobs,
// sorted by ID like the single-engine form. Loop goroutine only.
func (c *Coordinator) NeverPlaced() []grid.Job {
	if len(c.shards) == 1 {
		return c.shards[0].NeverPlaced()
	}
	var out []grid.Job
	for _, o := range c.shards {
		out = append(out, o.NeverPlaced()...)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Snapshots captures every shard's engine snapshot, in shard order.
// Same preconditions as Online.Snapshot, per shard. Loop goroutine (or
// post-loop owner) only.
func (c *Coordinator) Snapshots() ([]*EngineSnapshot, error) {
	out := make([]*EngineSnapshot, len(c.shards))
	for i, o := range c.shards {
		snap, err := o.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("sched: shard %d: %w", i, err)
		}
		out[i] = snap
	}
	return out, nil
}
