package sched

import (
	"fmt"
	"hash/fnv"

	"trustgrid/internal/grid"
)

// Sharding primitives (DESIGN.md §11): the coordinator tier splits one
// logical engine into N independent shards. Tenants are assigned to
// shards by a stable hash, the platform is split round-robin, and the
// churn trace is filtered per partition. Everything here is a pure
// function of its arguments — the router in particular takes part in
// the determinism contract (a tenant's shard must survive restarts,
// registration reordering and process boundaries), which is why it
// hashes the tenant ID rather than consulting any registration state.

// RouteTenant returns the shard that owns a tenant: FNV-1a over the
// tenant ID, mod shards. Pure and stable — the same (tenantID, shards)
// pair always yields the same shard, independent of registration order
// or process lifetime. shards <= 1 routes everything to shard 0.
func RouteTenant(tenantID string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(tenantID))
	return int(h.Sum64() % uint64(shards))
}

// PartitionSites splits global site indices 0..nSites-1 round-robin
// across shards: global site j lands on shard j%shards as local index
// j/shards. Round-robin (rather than contiguous ranges) keeps the
// speed/security mix of a heterogeneous platform roughly even across
// shards. The returned table maps parts[s][local] = global index.
func PartitionSites(nSites, shards int) [][]int {
	if shards < 1 {
		shards = 1
	}
	parts := make([][]int, shards)
	for j := 0; j < nSites; j++ {
		s := j % shards
		parts[s] = append(parts[s], j)
	}
	return parts
}

// ShardSites projects the global platform onto one shard's partition.
// Sites are cloned with shard-local positional IDs (the engine requires
// ID == index); the coordinator remaps event site indices back to
// global through the partition table, so local IDs never leak out.
func ShardSites(sites []*grid.Site, part []int) []*grid.Site {
	out := make([]*grid.Site, len(part))
	for local, global := range part {
		c := *sites[global]
		c.ID = local
		out[local] = &c
	}
	return out
}

// PartitionDynamics projects a dynamics config onto one shard's site
// partition: churn events for the shard's sites are kept (site index
// remapped to the shard-local index), the rest dropped; TrueLevels is
// subset the same way. Churn generation derives per-site streams
// (grid.ChurnConfig uses DeriveIndexed("churn/site", site)), so
// filtering a global trace by site yields exactly the trace a per-site
// generator would have produced — partitioning commutes with
// generation. Returns nil for a nil input.
func PartitionDynamics(dyn *DynamicsConfig, part []int) *DynamicsConfig {
	if dyn == nil {
		return nil
	}
	local := make(map[int]int, len(part))
	for l, g := range part {
		local[g] = l
	}
	out := &DynamicsConfig{Reputation: dyn.Reputation}
	for _, ev := range dyn.Churn {
		if l, ok := local[ev.Site]; ok {
			ev.Site = l
			out.Churn = append(out.Churn, ev)
		}
	}
	if dyn.TrueLevels != nil {
		out.TrueLevels = make([]float64, len(part))
		for l, g := range part {
			out.TrueLevels[l] = dyn.TrueLevels[g]
		}
	}
	return out
}

// ShardRNGLabel names a shard's derived RNG stream. One shard keeps the
// bare label ("engine", "scheduler") so a -shards 1 daemon draws the
// exact sequences the pre-sharding engine drew — that bit-parity is
// pinned by TestTraceReplayParity. N > 1 derives per-shard substreams.
func ShardRNGLabel(base string, shards, shard int) string {
	if shards <= 1 {
		return base
	}
	return fmt.Sprintf("%s/shard/%d", base, shard)
}

// MergeShardEvents merges per-shard event buffers into one totally
// ordered stream: ascending Time, shard index breaking ties, emission
// order within a shard preserved. Each buffer is consumed as a queue —
// the merge never reorders within a shard, never drops and never
// duplicates, whatever the input (FuzzEventMerge pins that). When every
// buffer is time-sorted (as engine emission order guarantees), the
// output is globally time-sorted.
func MergeShardEvents(bufs [][]EngineEvent) []EngineEvent {
	total := 0
	for _, b := range bufs {
		total += len(b)
	}
	if total == 0 {
		return nil
	}
	out := make([]EngineEvent, 0, total)
	heads := make([]int, len(bufs))
	for len(out) < total {
		best := -1
		for s, b := range bufs {
			if heads[s] >= len(b) {
				continue
			}
			// Strict < keeps the first (lowest-index) shard on ties; a NaN
			// timestamp compares false both ways and resolves by shard
			// index, so even garbage input terminates.
			if best < 0 || b[heads[s]].Time < bufs[best][heads[best]].Time {
				best = s
			}
		}
		out = append(out, bufs[best][heads[best]])
		heads[best]++
	}
	return out
}
