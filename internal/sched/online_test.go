package sched_test

import (
	"reflect"
	"testing"

	"trustgrid/internal/grid"
	"trustgrid/internal/heuristics"
	"trustgrid/internal/rng"
	"trustgrid/internal/sched"
)

func onlineTestSites() []*grid.Site {
	return []*grid.Site{
		{ID: 0, Speed: 10, Nodes: 8, SecurityLevel: 0.95},
		{ID: 1, Speed: 20, Nodes: 16, SecurityLevel: 0.5},
		{ID: 2, Speed: 5, Nodes: 4, SecurityLevel: 0.8},
	}
}

func onlineTestJobs(n int) []*grid.Job {
	r := rng.New(42)
	jobs := make([]*grid.Job, n)
	at := 0.0
	for i := range jobs {
		at += r.Exp(0.01)
		jobs[i] = &grid.Job{
			ID: i, Arrival: at, Workload: 100 * float64(r.Level(20)),
			Nodes: 1, SecurityDemand: r.Uniform(0.6, 0.9),
		}
	}
	return jobs
}

// TestOnlineMatchesRun submits the workload incrementally — interleaving
// Submit with clock advances — and requires the result to be identical
// to the closed-world Run, record for record.
func TestOnlineMatchesRun(t *testing.T) {
	sites := onlineTestSites()
	jobs := onlineTestJobs(60)
	mkCfg := func() sched.RunConfig {
		return sched.RunConfig{
			Sites:         sites,
			Scheduler:     heuristics.NewMinMin(grid.FRiskyPolicy(0.5)),
			BatchInterval: 500,
			Rand:          rng.New(9),
		}
	}

	cfg := mkCfg()
	cfg.Jobs = jobs
	want, err := sched.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	o, err := sched.NewOnline(mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Feed jobs in arrival order, advancing the clock between chunks so
	// submissions genuinely interleave with execution.
	next := 0
	for tick := 500.0; next < len(jobs); tick += 500 {
		for next < len(jobs) && jobs[next].Arrival <= tick {
			if err := o.Submit(jobs[next]); err != nil {
				t.Fatal(err)
			}
			next++
		}
		if err := o.AdvanceTo(tick); err != nil {
			t.Fatal(err)
		}
	}
	got, err := o.Drain()
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(got.Records, want.Records) {
		t.Fatalf("incremental records differ from batch run (%d vs %d records)",
			len(got.Records), len(want.Records))
	}
	if !reflect.DeepEqual(got.Summary, want.Summary) {
		t.Fatalf("summary differs:\n got %+v\nwant %+v", got.Summary, want.Summary)
	}
	if got.Batches != want.Batches || got.LargestBatch != want.LargestBatch {
		t.Fatalf("batching differs: got (%d, %d) want (%d, %d)",
			got.Batches, got.LargestBatch, want.Batches, want.LargestBatch)
	}
}

// TestOnlineClampsStaleArrivals checks that a job submitted with an
// arrival stamp the clock has already passed is ingested "now", with
// the effective arrival visible on its Arrived event and record.
func TestOnlineClampsStaleArrivals(t *testing.T) {
	var arrivedAt []float64
	cfg := sched.RunConfig{
		Sites:         onlineTestSites(),
		Scheduler:     heuristics.NewMinMin(grid.FRiskyPolicy(0.5)),
		BatchInterval: 100,
		Rand:          rng.New(3),
		OnEvent: func(ev sched.EngineEvent) {
			if ev.Kind == sched.EventArrived {
				arrivedAt = append(arrivedAt, ev.Job.Arrival)
			}
		},
	}
	o, err := sched.NewOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.AdvanceTo(1000); err != nil {
		t.Fatal(err)
	}
	stale := &grid.Job{ID: 1, Arrival: 50, Workload: 100, Nodes: 1, SecurityDemand: 0.7}
	if err := o.Submit(stale); err != nil {
		t.Fatal(err)
	}
	res, err := o.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(arrivedAt) != 1 || arrivedAt[0] != 1000 {
		t.Fatalf("effective arrival %v, want [1000]", arrivedAt)
	}
	if res.Records[0].Arrival != 1000 {
		t.Fatalf("record arrival %v, want 1000", res.Records[0].Arrival)
	}
	if stale.Arrival != 50 {
		t.Fatalf("caller's job mutated: arrival %v", stale.Arrival)
	}
}

// TestOnlineDiscardRecords checks the bounded-memory service mode: with
// record retention off, the incremental summary must match the batch
// run's record-derived summary float for float.
func TestOnlineDiscardRecords(t *testing.T) {
	sites := onlineTestSites()
	jobs := onlineTestJobs(60)
	mkCfg := func() sched.RunConfig {
		return sched.RunConfig{
			Sites:         sites,
			Scheduler:     heuristics.NewMinMin(grid.FRiskyPolicy(0.5)),
			BatchInterval: 500,
			Rand:          rng.New(9),
		}
	}
	cfg := mkCfg()
	cfg.Jobs = jobs
	want, err := sched.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	dcfg := mkCfg()
	dcfg.Jobs = jobs
	dcfg.DiscardRecords = true
	o, err := sched.NewOnline(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := o.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != 0 {
		t.Fatalf("DiscardRecords retained %d records", len(got.Records))
	}
	if !reflect.DeepEqual(got.Summary, want.Summary) {
		t.Fatalf("incremental summary differs:\n got %+v\nwant %+v", got.Summary, want.Summary)
	}
}
