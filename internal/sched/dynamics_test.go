package sched_test

import (
	"fmt"
	"strings"
	"testing"

	"trustgrid/internal/fuzzy"
	"trustgrid/internal/grid"
	"trustgrid/internal/heuristics"
	"trustgrid/internal/rng"
	"trustgrid/internal/sched"
)

// dynSites builds a positional site list from (speed, SL) pairs.
func dynSites(specs ...[2]float64) []*grid.Site {
	sites := make([]*grid.Site, len(specs))
	for i, s := range specs {
		sites[i] = &grid.Site{ID: i, Speed: s[0], Nodes: 1, SecurityLevel: s[1]}
	}
	return sites
}

func dynJob(id int, arrival, workload, sd float64) *grid.Job {
	return &grid.Job{ID: id, Arrival: arrival, Workload: workload, Nodes: 1, SecurityDemand: sd}
}

func TestCrashInterruptsAndRedispatches(t *testing.T) {
	// Site 0 is fast, site 1 slow. The job lands on site 0, which
	// crashes mid-execution; the job must re-queue and finish on site 1.
	sites := dynSites([2]float64{10, 0.9}, [2]float64{1, 0.9})
	var events []sched.EngineEvent
	res, err := sched.Run(sched.RunConfig{
		Jobs:          []*grid.Job{dynJob(0, 0, 1000, 0.5)},
		Sites:         sites,
		Scheduler:     heuristics.NewMinMin(grid.SecurePolicy()),
		BatchInterval: 10,
		Rand:          rng.New(1),
		Dynamics: &sched.DynamicsConfig{Churn: []grid.ChurnEvent{
			{Time: 50, Site: 0, Kind: grid.ChurnCrash},
			{Time: 5000, Site: 0, Kind: grid.ChurnJoin},
		}},
		OnEvent: func(ev sched.EngineEvent) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.NInterrupted != 1 {
		t.Fatalf("NInterrupted = %d, want 1", res.Summary.NInterrupted)
	}
	if len(res.Records) != 1 || !res.Records[0].Interrupted || res.Records[0].Site != 1 {
		t.Fatalf("record = %+v, want interrupted completion on site 1", res.Records[0])
	}
	var sawInterrupt, sawDown bool
	for _, ev := range events {
		switch ev.Kind {
		case sched.EventInterrupted:
			sawInterrupt = true
			if ev.Site != 0 || ev.Job.ID != 0 {
				t.Fatalf("interrupt event %+v targets wrong site/job", ev)
			}
		case sched.EventSiteDown:
			sawDown = true
		}
	}
	if !sawInterrupt || !sawDown {
		t.Fatalf("missing lifecycle events: interrupt=%v down=%v", sawInterrupt, sawDown)
	}
	// The caller's platform must be untouched by the engine's dynamics.
	if sites[0].Speed != 10 || sites[0].SecurityLevel != 0.9 {
		t.Fatalf("caller's site mutated: %+v", sites[0])
	}
}

func TestNoPlacementsOnDepartedSites(t *testing.T) {
	sites := dynSites([2]float64{4, 0.95}, [2]float64{4, 0.9}, [2]float64{4, 0.85})
	churn, err := grid.DefaultChurnConfig(4000).Generate(rng.New(9), len(sites))
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]*grid.Job, 60)
	for i := range jobs {
		jobs[i] = dynJob(i, float64(i*50), 200, 0.5)
	}
	down := make(map[int]bool)
	_, err = sched.Run(sched.RunConfig{
		Jobs: jobs, Sites: sites,
		Scheduler:     heuristics.NewMinMin(grid.SecurePolicy()),
		BatchInterval: 25,
		Rand:          rng.New(2),
		Dynamics:      &sched.DynamicsConfig{Churn: churn},
		OnEvent: func(ev sched.EngineEvent) {
			switch ev.Kind {
			case sched.EventSiteDown:
				down[ev.Site] = true
			case sched.EventSiteUp:
				down[ev.Site] = false
			case sched.EventPlaced:
				if down[ev.Site] {
					t.Fatalf("job %d placed on departed site %d at t=%v", ev.Job.ID, ev.Site, ev.Time)
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDrainFinishesRunningWork(t *testing.T) {
	// The job starts on site 0 before the drain; a drain must let it
	// finish there rather than interrupt it.
	res, err := sched.Run(sched.RunConfig{
		Jobs:          []*grid.Job{dynJob(0, 0, 1000, 0.5)},
		Sites:         dynSites([2]float64{10, 0.9}, [2]float64{1, 0.9}),
		Scheduler:     heuristics.NewMinMin(grid.SecurePolicy()),
		BatchInterval: 10,
		Rand:          rng.New(1),
		Dynamics: &sched.DynamicsConfig{Churn: []grid.ChurnEvent{
			{Time: 50, Site: 0, Kind: grid.ChurnDrain},
			{Time: 5000, Site: 0, Kind: grid.ChurnJoin},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.NInterrupted != 0 {
		t.Fatalf("drain interrupted %d jobs", res.Summary.NInterrupted)
	}
	if res.Records[0].Site != 0 {
		t.Fatalf("job moved to site %d, want to finish on draining site 0", res.Records[0].Site)
	}
	// Placed at the t=10 round, 100s of work: completion at t=110.
	if got := res.Records[0].Completion; got != 110 {
		t.Fatalf("completion %v, want 110", got)
	}
}

func TestDegradeSlowsLaterDispatches(t *testing.T) {
	// One site at speed 10; capacity halves at t=5, before the first
	// scheduling round. The 1000-unit job dispatched at t=10 must run at
	// the degraded speed: 200s instead of 100s.
	res, err := sched.Run(sched.RunConfig{
		Jobs:          []*grid.Job{dynJob(0, 0, 1000, 0.5)},
		Sites:         dynSites([2]float64{10, 0.9}),
		Scheduler:     heuristics.NewMinMin(grid.SecurePolicy()),
		BatchInterval: 10,
		Rand:          rng.New(1),
		Dynamics: &sched.DynamicsConfig{Churn: []grid.ChurnEvent{
			{Time: 5, Site: 0, Kind: grid.ChurnDegrade, Factor: 0.5},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Records[0].Completion; got != 210 {
		t.Fatalf("completion %v, want 10 + 1000/5 = 210", got)
	}
}

func TestTotalOutageWaitsForRejoin(t *testing.T) {
	// The only site is down across the job's arrival; the batch loop
	// must hold the queue until the rejoin instead of failing.
	res, err := sched.Run(sched.RunConfig{
		Jobs:          []*grid.Job{dynJob(0, 5, 100, 0.5)},
		Sites:         dynSites([2]float64{10, 0.9}),
		Scheduler:     heuristics.NewMinMin(grid.SecurePolicy()),
		BatchInterval: 10,
		Rand:          rng.New(1),
		Dynamics: &sched.DynamicsConfig{Churn: []grid.ChurnEvent{
			{Time: 1, Site: 0, Kind: grid.ChurnCrash},
			{Time: 95, Site: 0, Kind: grid.ChurnJoin},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if start := res.Records[0].Start; start < 95 {
		t.Fatalf("job started at %v while the only site was down", start)
	}
}

func TestTotalOutageWithoutRejoinFails(t *testing.T) {
	_, err := sched.Run(sched.RunConfig{
		Jobs:          []*grid.Job{dynJob(0, 5, 100, 0.5)},
		Sites:         dynSites([2]float64{10, 0.9}),
		Scheduler:     heuristics.NewMinMin(grid.SecurePolicy()),
		BatchInterval: 10,
		Rand:          rng.New(1),
		Dynamics: &sched.DynamicsConfig{Churn: []grid.ChurnEvent{
			{Time: 1, Site: 0, Kind: grid.ChurnCrash},
		}},
	})
	if err == nil || !strings.Contains(err.Error(), "departed") {
		t.Fatalf("err = %v, want permanent-outage failure", err)
	}
}

// dynPlacements renders the placement stream of one dynamic run.
func dynPlacements(t *testing.T, seed uint64, rep *fuzzy.ReputationConfig) string {
	t.Helper()
	r := rng.New(seed)
	sites, err := grid.PSAPlatform().Generate(r.Derive("sites"))
	if err != nil {
		t.Fatal(err)
	}
	churn, err := grid.DefaultChurnConfig(60000).Generate(r.Derive("churn"), len(sites))
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]*grid.Job, 150)
	sd := r.Derive("sd")
	for i := range jobs {
		jobs[i] = dynJob(i, float64(i)*300, 5000+float64(i%7)*1000, sd.Uniform(0.6, 0.9))
	}
	var b strings.Builder
	_, err = sched.Run(sched.RunConfig{
		Jobs: jobs, Sites: sites,
		Scheduler:     heuristics.NewMinMin(grid.FRiskyPolicy(0.5)),
		BatchInterval: 1000,
		Rand:          r.Derive("engine"),
		Dynamics: &sched.DynamicsConfig{
			Churn:      churn,
			Reputation: rep,
			TrueLevels: grid.DeceptiveLevels(sites, 0.4, 0.3, r.Derive("deceptive")),
		},
		OnEvent: func(ev sched.EngineEvent) {
			if ev.Kind == sched.EventPlaced {
				fmt.Fprintf(&b, "%d>%d@%.17g;", ev.Job.ID, ev.Site, ev.Start)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestDynamicRunDeterministic(t *testing.T) {
	repCfg := fuzzy.DefaultReputationConfig()
	for _, rep := range []*fuzzy.ReputationConfig{nil, &repCfg} {
		a := dynPlacements(t, 11, rep)
		b := dynPlacements(t, 11, rep)
		if a == "" {
			t.Fatal("no placements")
		}
		if a != b {
			t.Fatalf("same seed produced different placement streams (reputation=%v)", rep != nil)
		}
	}
	if dynPlacements(t, 11, nil) == dynPlacements(t, 12, nil) {
		t.Fatal("different seeds produced identical placement streams")
	}
}

func TestReputationFeedbackReducesFailures(t *testing.T) {
	// Site 0 declares SL 0.95 but truly runs at 0.2; site 1 honestly
	// declares 0.9 and is slower. Under static trust the Secure policy
	// keeps believing site 0 and every SD-0.85 job dispatched there
	// risks an Eq. 1 failure; with reputation feedback the estimate
	// drops below the demand after the first failures and the scheduler
	// walks away.
	run := func(rep *fuzzy.ReputationConfig) *sched.Result {
		sites := dynSites([2]float64{10, 0.95}, [2]float64{8, 0.9})
		jobs := make([]*grid.Job, 80)
		for i := range jobs {
			jobs[i] = dynJob(i, float64(i*20), 400, 0.85)
		}
		res, err := sched.Run(sched.RunConfig{
			Jobs: jobs, Sites: sites,
			Scheduler:     heuristics.NewMinMin(grid.SecurePolicy()),
			BatchInterval: 10,
			Rand:          rng.New(5),
			Dynamics: &sched.DynamicsConfig{
				Reputation: rep,
				TrueLevels: []float64{0.2, 0.9},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	repCfg := fuzzy.DefaultReputationConfig()
	static := run(nil)
	feedback := run(&repCfg)
	if static.Summary.NFail == 0 {
		t.Fatal("static run saw no failures; the deception is not biting")
	}
	if feedback.Summary.NFail >= static.Summary.NFail {
		t.Fatalf("feedback NFail %d >= static NFail %d: reputation did not help",
			feedback.Summary.NFail, static.Summary.NFail)
	}
}

func TestSiteStatusesReflectDynamics(t *testing.T) {
	repCfg := fuzzy.DefaultReputationConfig()
	o, err := sched.NewOnline(sched.RunConfig{
		Sites:         dynSites([2]float64{10, 0.95}, [2]float64{8, 0.9}),
		Scheduler:     heuristics.NewMinMin(grid.SecurePolicy()),
		BatchInterval: 10,
		Rand:          rng.New(3),
		Dynamics: &sched.DynamicsConfig{
			Churn: []grid.ChurnEvent{
				{Time: 100, Site: 1, Kind: grid.ChurnDrain},
				{Time: 200, Site: 0, Kind: grid.ChurnDegrade, Factor: 0.5},
			},
			Reputation: &repCfg,
			TrueLevels: []float64{0.55, 0.9},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := o.SubmitLocal(dynJob(i, float64(i*10), 300, 0.8)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := o.Drain(); err != nil {
		t.Fatal(err)
	}
	st := o.SiteStatuses()
	if len(st) != 2 {
		t.Fatalf("%d statuses", len(st))
	}
	if st[1].Alive {
		t.Fatal("site 1 should be drained")
	}
	if st[0].Speed != 5 || st[0].BaseSpeed != 10 {
		t.Fatalf("site 0 speed %v/%v, want degraded 5 of 10", st[0].Speed, st[0].BaseSpeed)
	}
	if st[0].DeclaredLevel != 0.95 {
		t.Fatalf("site 0 declared %v", st[0].DeclaredLevel)
	}
	if st[0].Observations == 0 {
		t.Fatal("site 0 has no reputation observations despite serving jobs")
	}
	if st[0].Level >= st[0].DeclaredLevel {
		t.Fatalf("deceptive site 0 estimate %v did not drop below declaration %v",
			st[0].Level, st[0].DeclaredLevel)
	}
}

func TestStaticRunsBitIdenticalWithNilDynamics(t *testing.T) {
	// A nil Dynamics must leave the original closed-world path untouched:
	// the same run with and without the field present in the config
	// literal yields identical results.
	mk := func(dyn *sched.DynamicsConfig) string {
		var b strings.Builder
		jobs := make([]*grid.Job, 40)
		for i := range jobs {
			jobs[i] = dynJob(i, float64(i*5), 500, 0.7)
		}
		_, err := sched.Run(sched.RunConfig{
			Jobs:          jobs,
			Sites:         dynSites([2]float64{10, 0.95}, [2]float64{5, 0.7}),
			Scheduler:     heuristics.NewMinMin(grid.FRiskyPolicy(0.5)),
			BatchInterval: 10,
			Rand:          rng.New(4),
			Dynamics:      dyn,
			OnEvent: func(ev sched.EngineEvent) {
				if ev.Kind == sched.EventPlaced {
					fmt.Fprintf(&b, "%d>%d@%.17g;", ev.Job.ID, ev.Site, ev.Start)
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if mk(nil) != mk(&sched.DynamicsConfig{}) {
		t.Fatal("an empty DynamicsConfig changed the schedule of a churn-free run")
	}
}
