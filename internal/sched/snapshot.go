package sched

import (
	"fmt"
	"sort"

	"trustgrid/internal/fuzzy"
	"trustgrid/internal/grid"
	"trustgrid/internal/metrics"
	"trustgrid/internal/rng"
	"trustgrid/internal/sim"
)

// EngineSnapshot is the complete serializable state of a durable Online
// engine at a quiescent point: everything needed to rebuild an engine
// whose future placements are byte-identical to the uninterrupted run's
// (DESIGN.md §10). "Quiescent" means no event at or before the clock is
// still pending — the state right after AdvanceTo(T) returns.
//
// The snapshot carries three kinds of state. Scalars and per-site
// vectors reproduce the visible simulation state (clock, ready/busy
// times, counters, incremental summary). The rng positions and the
// scheduler blob reproduce every future random draw and history-table
// lookup. The pending list reproduces the event queue itself: each
// not-yet-fired arrival, in-flight execution outcome, and the armed
// Δ-round, tagged with its original sequence number so a restore can
// re-schedule them in the exact (time, seq) order the saved run would
// have executed them.
type EngineSnapshot struct {
	// Scheduler is the algorithm's Name(); RestoreOnline refuses a
	// config whose scheduler reports a different one.
	Scheduler string  `json:"scheduler"`
	Now       float64 `json:"now"`
	Executed  uint64  `json:"executed"`
	Seen      int     `json:"seen"`
	Remaining int     `json:"remaining"`
	Batches   int     `json:"batches"`
	Largest   int     `json:"largest"`

	Ready []float64 `json:"ready"`
	Busy  []float64 `json:"busy"`

	// Queue is the scheduling backlog in exact queue order.
	Queue []grid.Job `json:"queue,omitempty"`
	// Pending is every event still on the sim queue, in no particular
	// order; restore sorts by Seq.
	Pending []PendingItem `json:"pending,omitempty"`

	// Per-job flags for jobs still in the system (completed jobs shed
	// theirs), as sorted ID lists.
	RiskTaken   []int            `json:"risk_taken,omitempty"`
	Failed      []int            `json:"failed,omitempty"`
	FellBack    []int            `json:"fell_back,omitempty"`
	Interrupted []InterruptCount `json:"interrupted,omitempty"`

	Acc      metrics.AccumulatorState `json:"acc"`
	FailRand rng.State                `json:"fail_rand"`
	TimeRand rng.State                `json:"time_rand"`

	Admission *AdmissionSnapshot `json:"admission,omitempty"`
	Dynamics  *DynamicsSnapshot  `json:"dynamics,omitempty"`
	// DAG is the dependency tracker's state; present whenever any job
	// has completed (the done set resolves future dependency references)
	// or edges were seen.
	DAG *DAGSnapshot `json:"dag,omitempty"`

	// SchedState is the StatefulScheduler blob (STGA history table and
	// GA stream, Random's stream); nil for stateless heuristics.
	SchedState []byte `json:"sched_state,omitempty"`
}

// PendingItem is one event still on the sim queue.
type PendingItem struct {
	// Kind is "arrival" (a scheduled, not-yet-admitted job), "attempt"
	// (an in-flight execution outcome) or "batch" (the armed Δ-round).
	Kind string `json:"kind"`
	// Seq is the event's original queue sequence; equal-timestamp events
	// execute in Seq order, so restore re-schedules ascending by it.
	Seq uint64  `json:"seq"`
	At  float64 `json:"at"`
	// Job is set for arrivals and attempts.
	Job *grid.Job `json:"job,omitempty"`
	// Attempt fields.
	Site  int     `json:"site,omitempty"`
	Start float64 `json:"start,omitempty"`
	Busy  float64 `json:"busy,omitempty"`
	Fails bool    `json:"fails,omitempty"`
}

// DAGSnapshot is the dependency ready-set's state: which jobs have
// completed (a future arrival may depend on any of them), which
// arrived jobs are still waiting on parents (in arrival order — the
// order restore re-registers them, which reproduces release order),
// and whether the workload ever used edges (the sticky switch for
// rank-aware scheduling).
type DAGSnapshot struct {
	Done     []int      `json:"done,omitempty"`
	Blocked  []grid.Job `json:"blocked,omitempty"`
	SawEdges bool       `json:"saw_edges,omitempty"`
}

// InterruptCount is one job's churn-interruption count.
type InterruptCount struct {
	ID int `json:"id"`
	N  int `json:"n"`
}

// AdmissionSnapshot is the fair-share batch former's cross-round state:
// the deterministic tenant order, the DRR deficit balances, and the live
// weight vector (which SetTenantWeight may have changed since the
// config).
type AdmissionSnapshot struct {
	Order   []string           `json:"order,omitempty"`
	Deficit map[string]float64 `json:"deficit,omitempty"`
	Weights map[string]float64 `json:"weights,omitempty"`
}

// DynamicsSnapshot is the dynamic-grid state: site liveness, the
// scheduler-visible speed and trust vectors (churn and reputation mutate
// the cloned sites), and the per-site reputation evidence.
type DynamicsSnapshot struct {
	Alive   []bool `json:"alive"`
	Crashed []bool `json:"crashed"`
	// Revives counts ChurnJoin events not yet executed; the engine uses
	// it to tell a survivable total outage from a dead platform.
	Revives int       `json:"revives"`
	Speed   []float64 `json:"speed"`
	Level   []float64 `json:"level"`
	// Reps is the per-site reputation evidence; nil without feedback.
	Reps []fuzzy.ReputationState `json:"reps,omitempty"`
}

// Snapshot captures the engine's complete state at a quiescent point.
// It requires a Durable engine (the pending-event ledger is what makes
// the event queue serializable) in DiscardRecords mode (per-job records
// are unbounded history, not state), with an empty arrival backlog and
// nothing runnable at or before the clock — in service terms: call it
// on the loop goroutine right after AdvanceTo returns. Loop goroutine
// only.
func (o *Online) Snapshot() (*EngineSnapshot, error) {
	st := o.st
	if !o.cfg.Durable {
		return nil, fmt.Errorf("sched: Snapshot on a non-durable engine (set RunConfig.Durable)")
	}
	if !o.cfg.DiscardRecords {
		return nil, fmt.Errorf("sched: Snapshot requires DiscardRecords (per-job records are not snapshotted)")
	}
	if n := o.in.Backlog(); n != 0 {
		return nil, fmt.Errorf("sched: Snapshot with %d arrivals buffered; advance the clock first", n)
	}
	// Account for every event on the sim queue. A mismatch means some
	// event escaped the durable ledger (or a non-quiescent call) and a
	// snapshot taken now could not be restored faithfully.
	expect := len(st.pendArr) + len(st.attempts) + st.deadEvents
	if st.batchOpen {
		expect++
	}
	if st.dyn != nil {
		for _, ev := range o.cfg.Dynamics.Churn {
			if ev.Time > o.eng.Now() {
				expect++
			}
		}
	}
	if got := o.eng.Pending(); got != expect {
		return nil, fmt.Errorf("sched: Snapshot accounting mismatch: %d events queued, %d accounted for", got, expect)
	}

	snap := &EngineSnapshot{
		Scheduler: o.cfg.Scheduler.Name(),
		Now:       o.eng.Now(),
		Executed:  o.eng.Executed(),
		Seen:      st.seen,
		Remaining: st.remaining,
		Batches:   st.batches,
		Largest:   st.largest,
		Ready:     append([]float64(nil), st.ready...),
		Busy:      append([]float64(nil), st.busy...),
		Acc:       st.acc.State(),
		FailRand:  st.failRand.State(),
		TimeRand:  st.timeRand.State(),
	}
	for _, j := range st.queue {
		snap.Queue = append(snap.Queue, *j)
	}
	// Plain value copies, not Clone: Clone resets the runtime state
	// (Failures, MustBeSafe) that a snapshot exists to preserve.
	for j, p := range st.pendArr {
		c := *j
		snap.Pending = append(snap.Pending, PendingItem{
			Kind: "arrival", Seq: p.seq, At: p.at, Job: &c,
		})
	}
	for att := range st.attempts {
		c := *att.job
		snap.Pending = append(snap.Pending, PendingItem{
			Kind: "attempt", Seq: att.seq, At: att.at, Job: &c,
			Site: att.site, Start: att.start, Busy: att.busy, Fails: att.fails,
		})
	}
	if st.batchOpen {
		snap.Pending = append(snap.Pending, PendingItem{
			Kind: "batch", Seq: st.batchSeq, At: st.batchAt,
		})
	}
	sort.Slice(snap.Pending, func(i, k int) bool { return snap.Pending[i].Seq < snap.Pending[k].Seq })

	snap.RiskTaken = sortedKeys(st.riskTaken)
	snap.Failed = sortedKeys(st.failed)
	snap.FellBack = sortedKeys(st.fellBack)
	for id, n := range st.interrupted {
		snap.Interrupted = append(snap.Interrupted, InterruptCount{ID: id, N: n})
	}
	sort.Slice(snap.Interrupted, func(i, k int) bool { return snap.Interrupted[i].ID < snap.Interrupted[k].ID })

	if st.adm != nil {
		a := &AdmissionSnapshot{
			Order:   append([]string(nil), st.adm.order...),
			Deficit: make(map[string]float64, len(st.adm.deficit)),
			Weights: make(map[string]float64, len(st.adm.weights)),
		}
		for t, d := range st.adm.deficit {
			a.Deficit[t] = d
		}
		for t, w := range st.adm.weights {
			a.Weights[t] = w
		}
		snap.Admission = a
	}
	if d := st.dyn; d != nil {
		ds := &DynamicsSnapshot{
			Alive:   append([]bool(nil), d.alive...),
			Crashed: append([]bool(nil), d.crashed...),
			Revives: d.revives,
			Speed:   make([]float64, len(o.cfg.Sites)),
			Level:   make([]float64, len(o.cfg.Sites)),
		}
		for i, s := range o.cfg.Sites {
			ds.Speed[i] = s.Speed
			ds.Level[i] = s.SecurityLevel
		}
		if d.reps != nil {
			ds.Reps = make([]fuzzy.ReputationState, len(d.reps))
			for i, r := range d.reps {
				ds.Reps[i] = r.State()
			}
		}
		snap.Dynamics = ds
	}
	if done := st.deps.DoneIDs(); len(done) > 0 || st.deps.SawEdges() {
		d := &DAGSnapshot{Done: done, SawEdges: st.deps.SawEdges()}
		for _, j := range st.deps.Blocked() {
			d.Blocked = append(d.Blocked, *j)
		}
		snap.DAG = d
	}
	if ss, ok := o.cfg.Scheduler.(StatefulScheduler); ok {
		blob, err := ss.SaveState()
		if err != nil {
			return nil, fmt.Errorf("sched: Snapshot: scheduler state: %w", err)
		}
		snap.SchedState = blob
	}
	return snap, nil
}

func sortedKeys(m map[int]bool) []int {
	if len(m) == 0 {
		return nil
	}
	out := make([]int, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// RestoreOnline rebuilds an engine from a snapshot. cfg must be the
// same configuration that produced it — same platform, scheduler
// construction (algorithm, seeds, training), batch interval, security
// model, dynamics and admission — with Durable set and no preloaded
// jobs (the snapshot carries the live ones). The restored engine's
// future placements are byte-identical to what the snapshotted engine
// would have produced: same sites, same start/finish times, same
// failure draws, in the same event order.
func RestoreOnline(cfg RunConfig, snap *EngineSnapshot) (*Online, error) {
	if snap == nil {
		return nil, fmt.Errorf("sched: RestoreOnline with nil snapshot")
	}
	if !cfg.Durable {
		return nil, fmt.Errorf("sched: RestoreOnline requires RunConfig.Durable")
	}
	if len(cfg.Jobs) != 0 {
		return nil, fmt.Errorf("sched: RestoreOnline with %d preloaded jobs; the snapshot carries the workload", len(cfg.Jobs))
	}
	return newOnline(cfg, snap)
}

// restore loads snapshot state into a freshly constructed engine whose
// clock is already repositioned and whose still-pending churn is already
// queued.
func (o *Online) restore(snap *EngineSnapshot) error {
	st := o.st
	if name := o.cfg.Scheduler.Name(); name != snap.Scheduler {
		return fmt.Errorf("sched: restore: scheduler %q does not match snapshot's %q", name, snap.Scheduler)
	}
	if len(snap.Ready) != len(o.cfg.Sites) || len(snap.Busy) != len(o.cfg.Sites) {
		return fmt.Errorf("sched: restore: snapshot has %d/%d site vectors for %d sites",
			len(snap.Ready), len(snap.Busy), len(o.cfg.Sites))
	}
	st.seen = snap.Seen
	st.remaining = snap.Remaining
	st.batches = snap.Batches
	st.largest = snap.Largest
	copy(st.ready, snap.Ready)
	copy(st.busy, snap.Busy)
	st.acc.SetState(snap.Acc)
	st.failRand.SetState(snap.FailRand)
	st.timeRand.SetState(snap.TimeRand)
	for _, id := range snap.RiskTaken {
		st.riskTaken[id] = true
	}
	for _, id := range snap.Failed {
		st.failed[id] = true
	}
	for _, id := range snap.FellBack {
		st.fellBack[id] = true
	}
	for _, ic := range snap.Interrupted {
		st.interrupted[ic.ID] = ic.N
	}
	for i := range snap.Queue {
		j := snap.Queue[i]
		st.queue = append(st.queue, &j)
	}

	// Rebuild the dependency ready-set: done IDs first (readiness checks
	// consult them), then the queue (already released — must come out
	// ready), then the blocked pen in its recorded arrival order so each
	// parent's successor list, and with it every release order, matches
	// the interrupted run's.
	if snap.DAG != nil {
		st.deps.RestoreDone(snap.DAG.Done)
		if snap.DAG.SawEdges {
			st.deps.MarkEdges()
		}
	}
	for _, j := range st.queue {
		if !st.deps.Arrive(j) {
			return fmt.Errorf("sched: restore: queued job %d has incomplete dependencies", j.ID)
		}
	}
	if snap.DAG != nil {
		for i := range snap.DAG.Blocked {
			j := snap.DAG.Blocked[i]
			if st.deps.Arrive(&j) {
				return fmt.Errorf("sched: restore: blocked job %d has no incomplete dependencies", j.ID)
			}
		}
	}

	switch {
	case snap.Admission != nil && st.adm == nil:
		return fmt.Errorf("sched: restore: snapshot has admission state but config has no Admission")
	case snap.Admission != nil:
		a := snap.Admission
		st.adm.order = append([]string(nil), a.Order...)
		for _, t := range a.Order {
			st.adm.seen[t] = true
		}
		for t, d := range a.Deficit {
			st.adm.deficit[t] = d
		}
		for t, w := range a.Weights {
			st.adm.weights[t] = w
		}
	}

	switch {
	case snap.Dynamics != nil && st.dyn == nil:
		return fmt.Errorf("sched: restore: snapshot has dynamics state but config has no Dynamics")
	case snap.Dynamics == nil && st.dyn != nil:
		return fmt.Errorf("sched: restore: config has Dynamics but snapshot has no dynamics state")
	case snap.Dynamics != nil:
		d, ds := st.dyn, snap.Dynamics
		if len(ds.Alive) != len(o.cfg.Sites) {
			return fmt.Errorf("sched: restore: dynamics state for %d sites, platform has %d", len(ds.Alive), len(o.cfg.Sites))
		}
		copy(d.alive, ds.Alive)
		copy(d.crashed, ds.Crashed)
		d.revives = ds.Revives
		for i, s := range o.cfg.Sites {
			s.Speed = ds.Speed[i]
			s.SecurityLevel = ds.Level[i]
		}
		if d.reps != nil {
			if len(ds.Reps) != len(d.reps) {
				return fmt.Errorf("sched: restore: %d reputation states for %d sites", len(ds.Reps), len(d.reps))
			}
			for i, r := range d.reps {
				if err := r.SetState(ds.Reps[i]); err != nil {
					return fmt.Errorf("sched: restore: site %d: %w", i, err)
				}
			}
		}
	}

	if ss, ok := o.cfg.Scheduler.(StatefulScheduler); ok {
		if snap.SchedState == nil {
			return fmt.Errorf("sched: restore: scheduler %q is stateful but snapshot carries no scheduler state", snap.Scheduler)
		}
		if err := ss.RestoreState(snap.SchedState); err != nil {
			return err
		}
	} else if snap.SchedState != nil {
		return fmt.Errorf("sched: restore: snapshot carries scheduler state but %q cannot restore it", snap.Scheduler)
	}

	// Re-schedule the pending events in their original sequence order.
	// Still-pending churn is already queued (its original sequence
	// numbers precede every runtime event's), so ascending Seq here
	// reproduces the exact equal-timestamp tie-break order of the saved
	// run.
	items := append([]PendingItem(nil), snap.Pending...)
	sort.Slice(items, func(i, k int) bool { return items[i].Seq < items[k].Seq })
	for _, it := range items {
		switch it.Kind {
		case "arrival":
			if it.Job == nil {
				return fmt.Errorf("sched: restore: pending arrival without a job")
			}
			c := *it.Job
			o.eng.Schedule(it.At, arrivalEvent{o: o, job: &c})
			st.pendArr[&c] = pendingArrival{at: it.At, seq: o.eng.LastSeq()}
		case "attempt":
			if it.Job == nil {
				return fmt.Errorf("sched: restore: pending attempt without a job")
			}
			if it.Site < 0 || it.Site >= len(o.cfg.Sites) {
				return fmt.Errorf("sched: restore: pending attempt on invalid site %d", it.Site)
			}
			c := *it.Job
			st.launch(o.eng, &attempt{
				st: st, job: &c, site: it.Site,
				start: it.Start, busy: it.Busy, at: it.At, fails: it.Fails,
			})
		case "batch":
			if st.batchOpen {
				return fmt.Errorf("sched: restore: duplicate pending batch event")
			}
			st.ensureBatchAt(o.eng, it.At)
		default:
			return fmt.Errorf("sched: restore: unknown pending event kind %q", it.Kind)
		}
	}

	// Recompute the runaway guard the next admit would have set; without
	// it a restored engine that receives no further arrivals would run
	// against the default (zero) budget with Executed already advanced.
	if o.cfg.MaxEvents == 0 {
		guard := 200*uint64(st.seen+1) + 10000
		if o.cfg.Dynamics != nil {
			guard += 2 * uint64(len(o.cfg.Dynamics.Churn))
		}
		o.eng.MaxEvents = guard
	}
	return nil
}

// arrivalEvent is the named form of the admit closure so restore can
// re-create pending arrivals.
type arrivalEvent struct {
	o   *Online
	job *grid.Job
}

func (ev arrivalEvent) Execute(e *sim.Engine) { ev.o.admit(e, ev.job) }

// ensureBatchAt re-arms the Δ-round event at a recorded time during
// restore (ensureBatch computes the time from the clock, which is
// already past the original arming point).
func (st *engineState) ensureBatchAt(e *sim.Engine, at float64) {
	st.batchOpen = true
	e.Schedule(at, sim.EventFunc(st.runBatch))
	st.batchSeq = e.LastSeq()
	st.batchAt = at
}

// NeverPlaced returns clones of every job accepted (or scheduled to
// arrive) that has not yet had a first placement: queued first-timers —
// no security failures, never interrupted — plus not-yet-admitted
// arrivals, sorted by job ID. After recovery the daemon rebuilds
// per-tenant queue occupancy and in-flight submit-latency entries from
// it, which track exactly "accepted but not yet placed". Loop goroutine
// only.
func (o *Online) NeverPlaced() []grid.Job {
	st := o.st
	var out []grid.Job
	for _, j := range st.queue {
		if j.Failures == 0 && st.interrupted[j.ID] == 0 {
			out = append(out, *j)
		}
	}
	// Blocked jobs are accepted and hold quota; by construction they have
	// never been placed.
	for _, j := range st.deps.Blocked() {
		out = append(out, *j)
	}
	for j := range st.pendArr {
		out = append(out, *j)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}
