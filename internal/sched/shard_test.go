package sched_test

import (
	"fmt"
	"testing"

	"trustgrid/internal/grid"
	"trustgrid/internal/sched"
)

// TestShardRouterProperties pins the tenant router's contract: it is a
// pure function of (tenantID, shards) — stable across calls, processes
// and registration order — it reaches every shard for any practical
// shard count, and its concrete values are frozen so an accidental
// hash change (which would strand every tenant's durable state on the
// wrong shard) fails loudly. The companion server-side guarantee —
// that a WAL written under one shard count refuses to open under
// another — is TestShardCountChangeRejected.
func TestShardRouterProperties(t *testing.T) {
	// Frozen routing table: FNV-1a 64 over the ID, mod shards. These
	// values are part of the on-disk compatibility surface (shard logs
	// are per-tenant-routing), so changing them is a breaking change.
	pinned := []struct {
		id     string
		shards int
		want   int
	}{
		{"default", 2, 0}, {"default", 3, 0}, {"default", 4, 2}, {"default", 8, 6}, {"default", 16, 14},
		{"acme", 2, 1}, {"acme", 3, 2}, {"acme", 4, 3}, {"acme", 8, 7}, {"acme", 16, 15},
		{"umbrella", 2, 1}, {"umbrella", 3, 2}, {"umbrella", 4, 1}, {"umbrella", 8, 5},
		{"initech", 3, 0}, {"globex", 3, 2}, {"hooli", 4, 2}, {"tenant-7", 16, 13},
	}
	for _, p := range pinned {
		if got := sched.RouteTenant(p.id, p.shards); got != p.want {
			t.Errorf("RouteTenant(%q, %d) = %d, want pinned %d", p.id, p.shards, got, p.want)
		}
	}

	// Purity and stability: repeated calls agree, and the route is
	// independent of any other routing activity in between (there is no
	// hidden registration state to perturb).
	ids := make([]string, 200)
	for i := range ids {
		ids[i] = fmt.Sprintf("tenant-%d", i)
	}
	for n := 1; n <= 16; n++ {
		first := make(map[string]int, len(ids))
		for _, id := range ids {
			first[id] = sched.RouteTenant(id, n)
		}
		// Re-route in reverse order — a permutation of "registration"
		// order — interleaved with unrelated lookups.
		for i := len(ids) - 1; i >= 0; i-- {
			sched.RouteTenant("interloper", n)
			if got := sched.RouteTenant(ids[i], n); got != first[ids[i]] {
				t.Fatalf("RouteTenant(%q, %d) unstable: %d then %d", ids[i], n, first[ids[i]], got)
			}
		}
		// Range and reachability: every shard owns at least one of a
		// modest tenant universe, and no route escapes [0, n).
		hit := make([]bool, n)
		for _, s := range first {
			if s < 0 || s >= n {
				t.Fatalf("route %d outside [0,%d)", s, n)
			}
			hit[s] = true
		}
		for s, ok := range hit {
			if !ok {
				t.Errorf("shards=%d: shard %d unreachable across %d tenant ids", n, s, len(ids))
			}
		}
	}

	// Degenerate shard counts all collapse to shard 0.
	for _, n := range []int{1, 0, -3} {
		if got := sched.RouteTenant("anything", n); got != 0 {
			t.Errorf("RouteTenant(_, %d) = %d, want 0", n, got)
		}
	}
}

// TestPartitionSites checks the round-robin partition: disjoint, total,
// balanced to within one site, and in the documented (global = shard +
// local*shards) arrangement that ShardSites depends on.
func TestPartitionSites(t *testing.T) {
	for _, tc := range []struct{ nSites, shards int }{
		{6, 3}, {7, 3}, {20, 4}, {5, 5}, {12, 1}, {3, 8},
	} {
		parts := sched.PartitionSites(tc.nSites, tc.shards)
		if len(parts) != tc.shards {
			t.Fatalf("(%d,%d): %d parts", tc.nSites, tc.shards, len(parts))
		}
		seen := make(map[int]int)
		min, max := tc.nSites, 0
		for s, part := range parts {
			if len(part) < min {
				min = len(part)
			}
			if len(part) > max {
				max = len(part)
			}
			for local, g := range part {
				if g != local*tc.shards+s {
					t.Errorf("(%d,%d): parts[%d][%d] = %d, want %d", tc.nSites, tc.shards, s, local, g, local*tc.shards+s)
				}
				seen[g]++
			}
		}
		if len(seen) != tc.nSites {
			t.Errorf("(%d,%d): %d global sites covered, want %d", tc.nSites, tc.shards, len(seen), tc.nSites)
		}
		for g, c := range seen {
			if c != 1 {
				t.Errorf("(%d,%d): site %d assigned %d times", tc.nSites, tc.shards, g, c)
			}
		}
		if max-min > 1 {
			t.Errorf("(%d,%d): imbalanced partition (%d..%d sites)", tc.nSites, tc.shards, min, max)
		}
	}
}

// TestPartitionDynamics checks that a global dynamics config projects
// onto a shard partition: churn filtered to the shard's sites with
// local indices, order preserved; TrueLevels subset the same way;
// reputation config shared; nil in, nil out.
func TestPartitionDynamics(t *testing.T) {
	if sched.PartitionDynamics(nil, []int{0}) != nil {
		t.Fatal("nil dynamics should stay nil")
	}
	dyn := &sched.DynamicsConfig{
		Churn: []grid.ChurnEvent{
			{Time: 10, Site: 0, Kind: grid.ChurnCrash},
			{Time: 20, Site: 3, Kind: grid.ChurnDrain},
			{Time: 30, Site: 1, Kind: grid.ChurnCrash},
			{Time: 40, Site: 3, Kind: grid.ChurnJoin},
			{Time: 50, Site: 4, Kind: grid.ChurnDrain},
		},
		TrueLevels: []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6},
	}
	// Shard 1 of a 3-way split over 6 sites owns globals {1, 4}.
	part := sched.PartitionSites(6, 3)[1]
	got := sched.PartitionDynamics(dyn, part)
	want := []grid.ChurnEvent{
		{Time: 30, Site: 0, Kind: grid.ChurnCrash}, // global 1 -> local 0
		{Time: 50, Site: 1, Kind: grid.ChurnDrain}, // global 4 -> local 1
	}
	if len(got.Churn) != len(want) {
		t.Fatalf("churn: got %d events, want %d", len(got.Churn), len(want))
	}
	for i := range want {
		if got.Churn[i] != want[i] {
			t.Errorf("churn[%d] = %+v, want %+v", i, got.Churn[i], want[i])
		}
	}
	if len(got.TrueLevels) != 2 || got.TrueLevels[0] != 0.2 || got.TrueLevels[1] != 0.5 {
		t.Errorf("true levels = %v, want [0.2 0.5]", got.TrueLevels)
	}
	// The source config must be untouched (events are remapped on copies).
	if dyn.Churn[2].Site != 1 || dyn.Churn[4].Site != 4 {
		t.Error("PartitionDynamics mutated its input")
	}
}

// TestShardRNGLabel pins the stream-naming scheme: a single shard keeps
// the historical bare labels (the -shards 1 bit-parity guarantee), more
// shards get per-shard substreams.
func TestShardRNGLabel(t *testing.T) {
	if got := sched.ShardRNGLabel("engine", 1, 0); got != "engine" {
		t.Errorf("one shard: %q, want bare label", got)
	}
	if got := sched.ShardRNGLabel("engine", 4, 2); got != "engine/shard/2" {
		t.Errorf("sharded: %q", got)
	}
	if got := sched.ShardRNGLabel("scheduler", 4, 0); got != "scheduler/shard/0" {
		t.Errorf("shard 0 of many must not collapse to the bare label: %q", got)
	}
}
