package sched_test

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"trustgrid/internal/grid"
	"trustgrid/internal/heuristics"
	"trustgrid/internal/rng"
	"trustgrid/internal/sched"
)

func coordTestSites() []*grid.Site {
	return []*grid.Site{
		{ID: 0, Speed: 10, Nodes: 8, SecurityLevel: 0.95},
		{ID: 1, Speed: 20, Nodes: 16, SecurityLevel: 0.5},
		{ID: 2, Speed: 5, Nodes: 4, SecurityLevel: 0.8},
		{ID: 3, Speed: 15, Nodes: 8, SecurityLevel: 0.7},
		{ID: 4, Speed: 8, Nodes: 4, SecurityLevel: 0.9},
		{ID: 5, Speed: 12, Nodes: 8, SecurityLevel: 0.6},
	}
}

// coordTestJobs spreads jobs across tenants and strictly inside Δ-round
// windows: an arrival exactly on a window boundary belongs to the NEXT
// window, so keeping arrivals strictly between barrier targets makes
// per-window event merging equal the global time order — the property
// the sharded-vs-independent comparison leans on.
func coordTestJobs(n int, delta float64) []*grid.Job {
	r := rng.New(77)
	jobs := make([]*grid.Job, n)
	for i := range jobs {
		window := float64(i / 8) // 8 jobs per Δ window
		frac := 0.05 + 0.9*r.Float64()
		jobs[i] = &grid.Job{
			ID: i + 1, Arrival: delta * (window + frac),
			Workload: 100 * float64(r.Level(20)), Nodes: 1,
			SecurityDemand: r.Uniform(0.3, 0.9),
			Tenant:         fmt.Sprintf("tenant-%d", i%5),
		}
	}
	return jobs
}

func cloneJob(j *grid.Job) *grid.Job { c := *j; return &c }

// TestCoordinatorSingleShardIdentity drives the same workload through a
// bare Online engine and a 1-shard Coordinator built from the same
// config, and requires identical event streams and results — the
// coordinator with one shard must be a transparent wrapper, which is
// what keeps -shards 1 bit-identical to the pre-sharding daemon.
func TestCoordinatorSingleShardIdentity(t *testing.T) {
	const delta = 500
	sites := coordTestSites()
	jobs := coordTestJobs(48, delta)

	run := func(build func(onEvent func(sched.EngineEvent)) (interface {
		Submit(*grid.Job) error
		AdvanceTo(float64) error
		Drain() (*sched.Result, error)
	}, error)) ([]sched.EngineEvent, *sched.Result) {
		t.Helper()
		var events []sched.EngineEvent
		eng, err := build(func(ev sched.EngineEvent) { events = append(events, ev) })
		if err != nil {
			t.Fatal(err)
		}
		next := 0
		for tick := float64(delta); next < len(jobs); tick += delta {
			for next < len(jobs) && jobs[next].Arrival < tick {
				if err := eng.Submit(cloneJob(jobs[next])); err != nil {
					t.Fatal(err)
				}
				next++
			}
			if err := eng.AdvanceTo(tick); err != nil {
				t.Fatal(err)
			}
		}
		res, err := eng.Drain()
		if err != nil {
			t.Fatal(err)
		}
		return events, res
	}

	mkCfg := func(onEvent func(sched.EngineEvent)) sched.RunConfig {
		return sched.RunConfig{
			Sites:         sites,
			Scheduler:     heuristics.NewMinMin(grid.FRiskyPolicy(0.5)),
			BatchInterval: delta,
			Rand:          rng.New(9).Derive(sched.ShardRNGLabel("engine", 1, 0)),
			OnEvent:       onEvent,
		}
	}
	wantEvents, wantRes := run(func(onEvent func(sched.EngineEvent)) (interface {
		Submit(*grid.Job) error
		AdvanceTo(float64) error
		Drain() (*sched.Result, error)
	}, error) {
		return sched.NewOnline(mkCfg(onEvent))
	})
	gotEvents, gotRes := run(func(onEvent func(sched.EngineEvent)) (interface {
		Submit(*grid.Job) error
		AdvanceTo(float64) error
		Drain() (*sched.Result, error)
	}, error) {
		cfg := mkCfg(nil)
		return sched.NewCoordinator(sched.CoordinatorConfig{
			Shards:  []sched.RunConfig{cfg},
			Parts:   sched.PartitionSites(len(sites), 1),
			OnEvent: onEvent,
		})
	})

	if !reflect.DeepEqual(gotEvents, wantEvents) {
		t.Fatalf("1-shard coordinator event stream differs from bare engine (%d vs %d events)",
			len(gotEvents), len(wantEvents))
	}
	if !reflect.DeepEqual(gotRes.Records, wantRes.Records) || !reflect.DeepEqual(gotRes.Summary, wantRes.Summary) {
		t.Fatal("1-shard coordinator result differs from bare engine")
	}
}

// TestCoordinatorAccessorsAndRestore drives two 3-shard coordinators —
// one continuously, one rebuilt mid-run via Snapshots() +
// RestoreCoordinator — through the same workload and requires the
// restored half to continue byte-identically. Along the way it pins the
// aggregate accessors (Seen/InFlight/Batches/... are sums or maxima of
// the per-shard engines, Summary/SiteStatuses reassemble global site
// order) against the shards the coordinator itself exposes.
func TestCoordinatorAccessorsAndRestore(t *testing.T) {
	const (
		delta  = 500
		shards = 3
	)
	sites := coordTestSites()
	jobs := coordTestJobs(60, delta)
	parts := sched.PartitionSites(len(sites), shards)

	mkShardCfg := func(i int) sched.RunConfig {
		return sched.RunConfig{
			Sites:          sched.ShardSites(sites, parts[i]),
			Scheduler:      heuristics.NewMinMin(grid.FRiskyPolicy(0.5)),
			BatchInterval:  delta,
			Rand:           rng.New(9).Derive(sched.ShardRNGLabel("engine", shards, i)),
			Durable:        true,
			DiscardRecords: true,
		}
	}
	mkCoordCfg := func(onEvent func(sched.EngineEvent)) sched.CoordinatorConfig {
		cfgs := make([]sched.RunConfig, shards)
		for i := range cfgs {
			cfgs[i] = mkShardCfg(i)
		}
		return sched.CoordinatorConfig{Shards: cfgs, Parts: parts, OnEvent: onEvent}
	}

	var eventsA []sched.EngineEvent
	coordA, err := sched.NewCoordinator(mkCoordCfg(func(ev sched.EngineEvent) { eventsA = append(eventsA, ev) }))
	if err != nil {
		t.Fatal(err)
	}

	if coordA.Shards() != shards {
		t.Fatalf("Shards() = %d, want %d", coordA.Shards(), shards)
	}
	for i := 0; i < shards; i++ {
		if coordA.Shard(i) == nil {
			t.Fatalf("Shard(%d) is nil", i)
		}
		if !reflect.DeepEqual(coordA.Part(i), parts[i]) {
			t.Fatalf("Part(%d) = %v, want %v", i, coordA.Part(i), parts[i])
		}
	}

	// drive submits jobs[from:to) (SubmitOr for every third job to cover
	// the abort-signal path) and advances through their windows.
	never := make(chan struct{})
	drive := func(c *sched.Coordinator, from, to int, start float64) float64 {
		t.Helper()
		tick := start
		for next := from; next < to; tick += delta {
			for next < to && jobs[next].Arrival < tick {
				var err error
				if next%3 == 0 {
					err = c.SubmitOr(never, cloneJob(jobs[next]))
				} else {
					err = c.Submit(cloneJob(jobs[next]))
				}
				if err != nil {
					t.Fatal(err)
				}
				next++
			}
			if c.Backlog() == 0 && next < to {
				t.Fatalf("no backlog with %d arrivals submitted", next-from)
			}
			if err := c.AdvanceTo(tick); err != nil {
				t.Fatal(err)
			}
		}
		return tick
	}

	const half = 32 // jobs[half-1] is the last arrival inside window 4
	mid := drive(coordA, 0, half, delta)

	// Aggregates must equal folds over the exposed per-shard engines.
	sumOver := func(f func(sched.Shard) int) int {
		n := 0
		for i := 0; i < shards; i++ {
			n += f(coordA.Shard(i))
		}
		return n
	}
	if got, want := coordA.Seen(), sumOver(sched.Shard.Seen); got != want {
		t.Errorf("Seen() = %d, want %d", got, want)
	}
	if got, want := coordA.InFlight(), sumOver(sched.Shard.InFlight); got != want {
		t.Errorf("InFlight() = %d, want %d", got, want)
	}
	if got, want := coordA.Batches(), sumOver(sched.Shard.Batches); got != want {
		t.Errorf("Batches() = %d, want %d", got, want)
	}
	if coordA.Seen() != half {
		t.Errorf("Seen() = %d after ingesting %d jobs", coordA.Seen(), half)
	}
	maxLargest, maxNow := 0, 0.0
	for i := 0; i < shards; i++ {
		if b := coordA.Shard(i).LargestBatch(); b > maxLargest {
			maxLargest = b
		}
		if n := coordA.Shard(i).Now(); n > maxNow {
			maxNow = n
		}
	}
	if coordA.LargestBatch() != maxLargest {
		t.Errorf("LargestBatch() = %d, want %d", coordA.LargestBatch(), maxLargest)
	}
	if coordA.Now() != maxNow {
		t.Errorf("Now() = %v, want max shard clock %v", coordA.Now(), maxNow)
	}
	sum := coordA.Summary()
	if sum.Jobs == 0 {
		t.Error("mid-run Summary() reports zero completed jobs")
	}
	if len(sum.SiteUtilization) != len(sites) {
		t.Errorf("Summary().SiteUtilization has %d entries, want %d", len(sum.SiteUtilization), len(sites))
	}
	sts := coordA.SiteStatuses()
	if len(sts) != len(sites) {
		t.Fatalf("SiteStatuses() returned %d entries, want %d", len(sts), len(sites))
	}
	for i, st := range sts {
		if st.ID != i {
			t.Fatalf("SiteStatuses()[%d].ID = %d; global order broken", i, st.ID)
		}
	}
	np := coordA.NeverPlaced()
	for i := 1; i < len(np); i++ {
		if np[i-1].ID >= np[i].ID {
			t.Fatalf("NeverPlaced() not sorted by ID at %d", i)
		}
	}

	// Quiescent at a barrier: snapshot every shard and rebuild a second
	// coordinator from the snapshots.
	snaps, err := coordA.Snapshots()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != shards {
		t.Fatalf("Snapshots() returned %d snapshots, want %d", len(snaps), shards)
	}
	var eventsB []sched.EngineEvent
	coordB, err := sched.RestoreCoordinator(mkCoordCfg(func(ev sched.EngineEvent) { eventsB = append(eventsB, ev) }), snaps)
	if err != nil {
		t.Fatal(err)
	}
	mark := len(eventsA)

	// From here both coordinators see identical traffic — including a
	// tenant-weight change and a direct SubmitLocal ingest.
	for _, c := range []*sched.Coordinator{coordA, coordB} {
		c.SetTenantWeight("tenant-1", 2.5)
		if err := c.SubmitLocal(&grid.Job{
			ID: 9001, Arrival: mid, Workload: 400, Nodes: 1,
			SecurityDemand: 0.4, Tenant: "tenant-2",
		}); err != nil {
			t.Fatal(err)
		}
	}
	drive(coordA, half, len(jobs), mid)
	drive(coordB, half, len(jobs), mid)
	resA, err := coordA.Drain()
	if err != nil {
		t.Fatal(err)
	}
	resB, err := coordB.Drain()
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(eventsA[mark:], eventsB) {
		t.Fatalf("restored coordinator diverged: %d post-snapshot events vs %d", len(eventsA)-mark, len(eventsB))
	}
	if !reflect.DeepEqual(resA.Summary, resB.Summary) {
		t.Fatalf("restored coordinator summary differs:\n got %+v\nwant %+v", resB.Summary, resA.Summary)
	}
	if resA.Summary.Jobs != len(jobs)+1 {
		t.Errorf("completed %d jobs, want %d", resA.Summary.Jobs, len(jobs)+1)
	}
}

// TestCoordinatorSingleShardAggregates pins the one-shard fast paths of
// the aggregate views: with a single shard Summary, SiteStatuses and
// NeverPlaced must be verbatim pass-throughs to the engine.
func TestCoordinatorSingleShardAggregates(t *testing.T) {
	const delta = 500
	sites := coordTestSites()
	coord, err := sched.NewCoordinator(sched.CoordinatorConfig{
		Shards: []sched.RunConfig{{
			Sites:         sites,
			Scheduler:     heuristics.NewMinMin(grid.FRiskyPolicy(0.5)),
			BatchInterval: delta,
			Rand:          rng.New(9).Derive(sched.ShardRNGLabel("engine", 1, 0)),
		}},
		Parts: sched.PartitionSites(len(sites), 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range coordTestJobs(8, delta) {
		if err := coord.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	if err := coord.AdvanceTo(delta); err != nil {
		t.Fatal(err)
	}
	eng := coord.Shard(0).(*sched.Online)
	if !reflect.DeepEqual(coord.Summary(), eng.Summary()) {
		t.Error("1-shard Summary() is not a pass-through")
	}
	if !reflect.DeepEqual(coord.SiteStatuses(), eng.SiteStatuses()) {
		t.Error("1-shard SiteStatuses() is not a pass-through")
	}
	if !reflect.DeepEqual(coord.NeverPlaced(), eng.NeverPlaced()) {
		t.Error("1-shard NeverPlaced() is not a pass-through")
	}
}

// TestCoordinatorConfigValidation covers every refusal in
// prepCoordinator plus the constructor wrappers' error paths: a bad
// partition table must never reach engine construction.
func TestCoordinatorConfigValidation(t *testing.T) {
	sites := coordTestSites()
	okCfg := func(part []int) sched.RunConfig {
		return sched.RunConfig{
			Sites:         sched.ShardSites(sites, part),
			Scheduler:     heuristics.NewMinMin(grid.FRiskyPolicy(0.5)),
			BatchInterval: 500,
			Rand:          rng.New(9),
		}
	}
	parts := sched.PartitionSites(len(sites), 2)

	cases := []struct {
		name string
		cc   sched.CoordinatorConfig
	}{
		{"no shards", sched.CoordinatorConfig{}},
		{"partition count mismatch", sched.CoordinatorConfig{
			Shards: []sched.RunConfig{okCfg(parts[0])},
			Parts:  parts,
		}},
		{"empty partition", sched.CoordinatorConfig{
			Shards: []sched.RunConfig{okCfg(parts[0]), okCfg(parts[1])},
			Parts:  [][]int{parts[0], {}},
		}},
		{"partition length vs shard sites", sched.CoordinatorConfig{
			Shards: []sched.RunConfig{okCfg(parts[0]), okCfg(parts[1])},
			Parts:  [][]int{parts[0], parts[1][:1]},
		}},
		{"duplicate global site", sched.CoordinatorConfig{
			Shards: []sched.RunConfig{okCfg(parts[0]), okCfg(parts[0])},
			Parts:  [][]int{parts[0], parts[0]},
		}},
		{"negative global site", sched.CoordinatorConfig{
			Shards: []sched.RunConfig{okCfg(parts[0]), okCfg(parts[1])},
			Parts:  [][]int{parts[0], append([]int{-1}, parts[1][1:]...)},
		}},
		{"shard engine config rejected", sched.CoordinatorConfig{
			Shards: []sched.RunConfig{{Sites: sites}}, // no scheduler
			Parts:  sched.PartitionSites(len(sites), 1),
		}},
	}
	for _, tc := range cases {
		if _, err := sched.NewCoordinator(tc.cc); err == nil {
			t.Errorf("%s: NewCoordinator accepted a bad config", tc.name)
		}
	}

	// The two site-index refusals must be distinct: a negative index is a
	// malformed table, not a duplicate, and the message has to say so
	// (before the split, -1 was reported as "appears twice").
	for _, tc := range cases {
		var want, wrong string
		switch tc.name {
		case "negative global site":
			want, wrong = "negative global site", "appears twice"
		case "duplicate global site":
			want, wrong = "appears twice", "negative"
		default:
			continue
		}
		_, err := sched.NewCoordinator(tc.cc)
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("%s: error = %v, want substring %q", tc.name, err, want)
		}
		if err != nil && strings.Contains(err.Error(), wrong) {
			t.Errorf("%s: error %v misreports as %q", tc.name, err, wrong)
		}
	}

	good := sched.CoordinatorConfig{
		Shards: []sched.RunConfig{okCfg(parts[0]), okCfg(parts[1])},
		Parts:  parts,
	}
	if _, err := sched.RestoreCoordinator(good, nil); err == nil {
		t.Error("RestoreCoordinator accepted 0 snapshots for 2 shards")
	}
	if _, err := sched.RestoreCoordinator(good, make([]*sched.EngineSnapshot, 2)); err == nil {
		t.Error("RestoreCoordinator accepted nil snapshots")
	}
}

// TestCoordinatorMatchesIndependentShards is the sched-level half of
// the tentpole proof: a 3-shard coordinator must behave exactly like 3
// independent single-shard engines — same per-shard configs, same
// tenant routing, same barrier targets — whose event windows are merged
// by (time, shard index). The coordinator adds routing, the fan-out
// barrier and the merge; it must add nothing else.
func TestCoordinatorMatchesIndependentShards(t *testing.T) {
	const (
		delta  = 500
		shards = 3
	)
	sites := coordTestSites()
	jobs := coordTestJobs(60, delta)
	parts := sched.PartitionSites(len(sites), shards)

	mkShardCfg := func(i int, onEvent func(sched.EngineEvent)) sched.RunConfig {
		return sched.RunConfig{
			Sites:         sched.ShardSites(sites, parts[i]),
			Scheduler:     heuristics.NewMinMin(grid.FRiskyPolicy(0.5)),
			BatchInterval: delta,
			Rand:          rng.New(9).Derive(sched.ShardRNGLabel("engine", shards, i)),
			OnEvent:       onEvent,
		}
	}

	// Reference: independent engines, one per shard, with the merge done
	// by hand window by window.
	refBufs := make([][]sched.EngineEvent, shards)
	engines := make([]*sched.Online, shards)
	for i := range engines {
		i := i
		o, err := sched.NewOnline(mkShardCfg(i, func(ev sched.EngineEvent) {
			if ev.Site >= 0 {
				ev.Site = parts[i][ev.Site]
			}
			refBufs[i] = append(refBufs[i], ev)
		}))
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = o
	}
	var refEvents []sched.EngineEvent
	refWindow := func() {
		refEvents = append(refEvents, sched.MergeShardEvents(refBufs)...)
		for i := range refBufs {
			refBufs[i] = refBufs[i][:0]
		}
	}

	// Coordinator under test.
	var gotEvents []sched.EngineEvent
	shardCfgs := make([]sched.RunConfig, shards)
	for i := range shardCfgs {
		shardCfgs[i] = mkShardCfg(i, nil)
	}
	coord, err := sched.NewCoordinator(sched.CoordinatorConfig{
		Shards:  shardCfgs,
		Parts:   parts,
		OnEvent: func(ev sched.EngineEvent) { gotEvents = append(gotEvents, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}

	next := 0
	for tick := float64(delta); next < len(jobs); tick += delta {
		for next < len(jobs) && jobs[next].Arrival < tick {
			j := jobs[next]
			if err := coord.Submit(cloneJob(j)); err != nil {
				t.Fatal(err)
			}
			owner := sched.RouteTenant(j.Tenant, shards)
			if owner != coord.Owner(j.Tenant) {
				t.Fatalf("router disagreement for %q: %d vs %d", j.Tenant, owner, coord.Owner(j.Tenant))
			}
			if err := engines[owner].Submit(cloneJob(j)); err != nil {
				t.Fatal(err)
			}
			next++
		}
		if err := coord.AdvanceTo(tick); err != nil {
			t.Fatal(err)
		}
		for _, o := range engines {
			if err := o.AdvanceTo(tick); err != nil {
				t.Fatal(err)
			}
		}
		refWindow()
	}
	res, err := coord.Drain()
	if err != nil {
		t.Fatal(err)
	}
	var wantJobs, wantBatches int
	wantMakespan := 0.0
	for _, o := range engines {
		r, err := o.Drain()
		if err != nil {
			t.Fatal(err)
		}
		wantJobs += r.Summary.Jobs
		wantBatches += r.Batches
		if r.Summary.Makespan > wantMakespan {
			wantMakespan = r.Summary.Makespan
		}
	}
	refWindow()

	if !reflect.DeepEqual(gotEvents, refEvents) {
		n := len(gotEvents)
		if len(refEvents) < n {
			n = len(refEvents)
		}
		for i := 0; i < n; i++ {
			if !reflect.DeepEqual(gotEvents[i], refEvents[i]) {
				t.Fatalf("event %d differs:\n got %+v\nwant %+v", i, gotEvents[i], refEvents[i])
			}
		}
		t.Fatalf("event streams differ in length: %d vs %d", len(gotEvents), len(refEvents))
	}
	if res.Summary.Jobs != wantJobs {
		t.Errorf("merged summary jobs = %d, want %d", res.Summary.Jobs, wantJobs)
	}
	if res.Summary.Makespan != wantMakespan {
		t.Errorf("merged makespan = %v, want %v", res.Summary.Makespan, wantMakespan)
	}
	if res.Batches != wantBatches {
		t.Errorf("merged batches = %d, want %d", res.Batches, wantBatches)
	}

	// The total order the coordinator promises: ascending time, shard
	// index breaking ties (site indices are global; the owning shard of a
	// job event is its tenant's route).
	for i := 1; i < len(gotEvents); i++ {
		if gotEvents[i].Time < gotEvents[i-1].Time {
			t.Fatalf("event %d breaks time order: %v after %v", i, gotEvents[i].Time, gotEvents[i-1].Time)
		}
	}
}

// TestCoordinatorBarrierErrorPath pins the degradation contract of a
// failing barrier: when shards abort mid-advance (here: a total outage
// with no rejoin pending on two of three partitions), the surviving
// shard's buffered window must still be flushed exactly once, the
// error that comes back must be the lowest-indexed shard's, and the
// next barrier must keep delivering the survivor's events.
func TestCoordinatorBarrierErrorPath(t *testing.T) {
	const (
		delta  = 500
		shards = 3
	)
	sites := coordTestSites()
	parts := sched.PartitionSites(len(sites), shards)

	// One tenant per shard, found by routing (stable FNV hash).
	tenantFor := func(shard int) string {
		for i := 0; ; i++ {
			name := fmt.Sprintf("t%d", i)
			if sched.RouteTenant(name, shards) == shard {
				return name
			}
		}
	}

	// Shards 1 and 2 lose every local site at t=150 with no rejoin, so
	// their Δ-round at t=500 aborts; shard 0 stays healthy.
	crashAll := &sched.DynamicsConfig{Churn: []grid.ChurnEvent{
		{Time: 150, Site: 0, Kind: grid.ChurnCrash},
		{Time: 150, Site: 1, Kind: grid.ChurnCrash},
	}}
	shardCfgs := make([]sched.RunConfig, shards)
	for i := range shardCfgs {
		shardCfgs[i] = sched.RunConfig{
			Sites:         sched.ShardSites(sites, parts[i]),
			Scheduler:     heuristics.NewMinMin(grid.FRiskyPolicy(0.5)),
			BatchInterval: delta,
			Rand:          rng.New(9).Derive(sched.ShardRNGLabel("engine", shards, i)),
		}
		if i > 0 {
			shardCfgs[i].Dynamics = crashAll
		}
	}
	var events []sched.EngineEvent
	coord, err := sched.NewCoordinator(sched.CoordinatorConfig{
		Shards:  shardCfgs,
		Parts:   parts,
		OnEvent: func(ev sched.EngineEvent) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}

	// 2 jobs on shard 0, 1 on shard 1, 2 on shard 2 — the distinct queue
	// depths make the two failing shards' errors distinguishable.
	mkJob := func(id, shard int) *grid.Job {
		return &grid.Job{
			ID: id, Arrival: 100, Workload: 400, Nodes: 1,
			SecurityDemand: 0.4, Tenant: tenantFor(shard),
		}
	}
	for id, shard := range map[int]int{1: 0, 2: 0, 3: 1, 4: 2, 5: 2} {
		if err := coord.SubmitLocal(mkJob(id, shard)); err != nil {
			t.Fatal(err)
		}
	}

	err = coord.AdvanceTo(delta)
	if err == nil {
		t.Fatal("AdvanceTo succeeded with two shards in total outage")
	}
	// Lowest-indexed error: shard 1 had exactly 1 job queued, shard 2
	// had 2 — the message must be shard 1's.
	if !strings.Contains(err.Error(), "1 jobs queued") {
		t.Fatalf("AdvanceTo error = %v, want shard 1's (1 job queued)", err)
	}
	if errors.Is(err, sched.ErrShardDown) {
		t.Fatalf("in-process engine failure reported as ErrShardDown: %v", err)
	}

	// The survivor's window (and the failing shards' pre-abort events)
	// flushed exactly once: 5 arrivals, 4 site-downs, 2 placements.
	count := func(evs []sched.EngineEvent, k sched.EventKind) int {
		n := 0
		for _, ev := range evs {
			if ev.Kind == k {
				n++
			}
		}
		return n
	}
	window1 := len(events)
	if got := count(events, sched.EventArrived); got != 5 {
		t.Errorf("window 1: %d arrival events, want 5", got)
	}
	if got := count(events, sched.EventSiteDown); got != 4 {
		t.Errorf("window 1: %d site-down events, want 4", got)
	}
	if got := count(events, sched.EventPlaced); got != 2 {
		t.Errorf("window 1: %d placements, want 2 (shard 0 only)", got)
	}
	if window1 != 11 {
		t.Errorf("window 1 flushed %d events, want 11", window1)
	}
	for _, ev := range events {
		if ev.Kind == sched.EventPlaced && sched.RouteTenant(ev.Job.Tenant, shards) != 0 {
			t.Errorf("placement on failed shard: %+v", ev)
		}
	}

	// A subsequent barrier still works for the survivor: shard 0's two
	// completions are delivered (exactly once — the earlier window's
	// buffer was cleared), and the sticky engine failures surface again.
	if err := coord.AdvanceTo(2 * delta); err == nil {
		t.Error("second AdvanceTo lost the failed shards' sticky error")
	}
	tail := events[window1:]
	if got := count(tail, sched.EventCompleted); got != 2 || len(tail) != 2 {
		t.Fatalf("window 2 flushed %d events (%d completions), want exactly the survivor's 2 completions",
			len(tail), got)
	}
	if _, err := coord.Drain(); err == nil {
		t.Error("Drain succeeded with failed shards")
	}
}
