package sched

import (
	"fmt"
	"math"
	"testing"

	"trustgrid/internal/grid"
	"trustgrid/internal/rng"
)

func admTestSites(m int) []*grid.Site {
	sites := make([]*grid.Site, m)
	for i := range sites {
		sites[i] = &grid.Site{ID: i, Speed: 100, Nodes: 1, SecurityLevel: 0.95}
	}
	return sites
}

// TestAdmissionFormOrder pins the deficit-round-robin mechanics on a
// hand-checkable case: budget 4, weights a=2 b=1, six queued jobs.
// Round 1 credits a with 8/3 and b with 4/3, so service order is
// a,a,b,a (deficits 8/3→5/3→2/3 for a, 4/3→1/3 for b, with a winning
// the opening tie via first-arrival order); the leftover keeps arrival
// order.
func TestAdmissionFormOrder(t *testing.T) {
	a := newAdmState(&AdmissionConfig{RoundBudget: 4, Weights: map[string]float64{"a": 2, "b": 1}})
	var queue []*grid.Job
	for i := 0; i < 3; i++ {
		queue = append(queue, &grid.Job{ID: 10 + i, Tenant: "a", Workload: 1, Nodes: 1})
		queue = append(queue, &grid.Job{ID: 20 + i, Tenant: "b", Workload: 1, Nodes: 1})
	}
	for _, j := range queue {
		a.note(j.Tenant)
	}
	batch, leftover := a.form(queue)
	gotBatch := fmt.Sprint(idsOf(batch))
	if gotBatch != "[10 11 20 12]" {
		t.Fatalf("batch order %s, want [10 11 20 12]", gotBatch)
	}
	if got := fmt.Sprint(idsOf(leftover)); got != "[21 22]" {
		t.Fatalf("leftover %s, want [21 22] in arrival order", got)
	}

	// The second round is under-subscribed (2 jobs, budget 4), so the
	// whole leftover drains in arrival order.
	batch, leftover = a.form(leftover)
	if len(batch) != 2 || len(leftover) != 0 {
		t.Fatalf("drain round: batch %v leftover %v", idsOf(batch), idsOf(leftover))
	}
}

// TestAdmissionUnlimitedIsIdentity pins the compatibility contract: a
// zero budget (or a backlog within budget) returns the queue unchanged,
// same slice, same order — bit-identical to the pre-tenant engine.
func TestAdmissionUnlimitedIsIdentity(t *testing.T) {
	queue := []*grid.Job{{ID: 1}, {ID: 2}, {ID: 3}}
	for _, cfg := range []*AdmissionConfig{
		{RoundBudget: 0},
		{RoundBudget: 3},
		{RoundBudget: 100},
	} {
		a := newAdmState(cfg)
		batch, leftover := a.form(queue)
		if len(leftover) != 0 || len(batch) != 3 || &batch[0] != &queue[0] {
			t.Fatalf("budget %d: not the identity", cfg.RoundBudget)
		}
	}
}

// TestAdmissionDeficitNotBankable is the regression test for unbounded
// credit banking: a tenant that keeps exactly one job queued every
// rationed round (never idle, never saturating) must not accumulate
// deficit it can later spend as a monopoly burst. After many such
// rounds it bursts a deep backlog; the very next round must still split
// close to the weight vector.
func TestAdmissionDeficitNotBankable(t *testing.T) {
	a := newAdmState(&AdmissionConfig{RoundBudget: 4, Weights: map[string]float64{"drip": 1, "bulk": 1}})
	a.note("drip")
	a.note("bulk")
	mkJobs := func(tenant string, n int) []*grid.Job {
		out := make([]*grid.Job, n)
		for i := range out {
			out[i] = &grid.Job{ID: i, Tenant: tenant}
		}
		return out
	}
	for round := 0; round < 200; round++ {
		queue := append(mkJobs("drip", 1), mkJobs("bulk", 40)...)
		batch, _ := a.form(queue)
		if len(batch) != 4 {
			t.Fatalf("round %d: batch size %d", round, len(batch))
		}
	}
	if d := a.deficit["drip"]; d > 2 {
		t.Fatalf("drip banked %v deficit across 200 under-demanding rounds", d)
	}
	// The burst round: drip shows up with a deep backlog. Equal weights
	// mean it is owed about half the budget — not the whole round.
	batch, _ := a.form(append(mkJobs("drip", 40), mkJobs("bulk", 40)...))
	drip := 0
	for _, j := range batch {
		if j.Tenant == "drip" {
			drip++
		}
	}
	if drip > 3 {
		t.Fatalf("burst round gave drip %d of 4 slots (banked credit leaked through)", drip)
	}
}

func idsOf(jobs []*grid.Job) []int {
	out := make([]int, len(jobs))
	for i, j := range jobs {
		out[i] = j.ID
	}
	return out
}

// TestDeficitRoundRobinConvergesToWeights is the fair-share acceptance
// gate: under saturation (every tenant always backlogged), long-run
// placement shares converge to the tenant weight vector. Three tenants
// at weights 1:2:4 submit equal offered load; the engine rations every
// Δ-round to a budget of 7; the placement stream's per-tenant shares
// over the saturated prefix must match 1/7 : 2/7 : 4/7 within 2%.
func TestDeficitRoundRobinConvergesToWeights(t *testing.T) {
	const (
		perTenant = 700
		budget    = 7
	)
	weights := map[string]float64{"w1": 1, "w2": 2, "w4": 4}
	var jobs []*grid.Job
	id := 0
	for i := 0; i < perTenant; i++ {
		for _, tenant := range []string{"w1", "w2", "w4"} {
			id++
			jobs = append(jobs, &grid.Job{
				ID: id, Tenant: tenant, Workload: 100, Nodes: 1,
				SecurityDemand: 0.7, Arrival: 0,
			})
		}
	}

	var placedOrder []string
	_, err := Run(RunConfig{
		Jobs:          jobs,
		Sites:         admTestSites(4),
		Scheduler:     &eligibleScheduler{policy: grid.RiskyPolicy()},
		BatchInterval: 1000,
		Rand:          rng.New(1),
		Admission:     &AdmissionConfig{RoundBudget: budget, Weights: weights},
		OnEvent: func(ev EngineEvent) {
			if ev.Kind == EventPlaced {
				placedOrder = append(placedOrder, ev.Job.Tenant)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(placedOrder) != 3*perTenant {
		t.Fatalf("placed %d, want %d", len(placedOrder), 3*perTenant)
	}

	// The lightest tenant exhausts last; while every tenant still has
	// backlog the shares must track the weights. Measure over the prefix
	// during which all three are saturated: tenant w1 drains 1/7 of each
	// round, so saturation surely holds for the first perTenant/ (4/7)
	// ... conservatively, the first 60% of w4's jobs: 0.6*perTenant*7/4
	// placements.
	prefix := int(0.6 * perTenant * 7 / 4)
	counts := map[string]int{}
	for _, tenant := range placedOrder[:prefix] {
		counts[tenant]++
	}
	total := float64(prefix)
	for tenant, w := range weights {
		want := w / 7
		got := float64(counts[tenant]) / total
		if math.Abs(got-want) > 0.02 {
			t.Errorf("tenant %s share %.4f, want %.4f±0.02 (counts %v over %d)",
				tenant, got, want, counts, prefix)
		}
	}

	// Every round after the first must admit exactly the budget while
	// saturated — check via the largest-batch stat.
	res, err := Run(RunConfig{
		Jobs:          jobs,
		Sites:         admTestSites(4),
		Scheduler:     &eligibleScheduler{policy: grid.RiskyPolicy()},
		BatchInterval: 1000,
		Rand:          rng.New(1),
		Admission:     &AdmissionConfig{RoundBudget: budget, Weights: weights},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LargestBatch != budget {
		t.Fatalf("largest batch %d, want the budget %d", res.LargestBatch, budget)
	}
}

// TestAdmissionNilIsBitIdentical pins that threading the admission
// layer through the engine changed nothing when it is absent: a run
// with nil Admission and one with an unlimited AdmissionConfig produce
// identical placement streams.
func TestAdmissionNilIsBitIdentical(t *testing.T) {
	mk := func(adm *AdmissionConfig) string {
		var out string
		jobs := make([]*grid.Job, 60)
		for i := range jobs {
			jobs[i] = &grid.Job{
				ID: i + 1, Arrival: float64(i * 37 % 11), Workload: float64(100 + i*13%70),
				Nodes: 1, SecurityDemand: 0.6 + float64(i%30)/100,
				Tenant: fmt.Sprintf("t%d", i%3),
			}
		}
		_, err := Run(RunConfig{
			Jobs:          jobs,
			Sites:         admTestSites(5),
			Scheduler:     &eligibleScheduler{policy: grid.FRiskyPolicy(0.5)},
			BatchInterval: 10,
			Rand:          rng.New(42),
			Admission:     adm,
			OnEvent: func(ev EngineEvent) {
				if ev.Kind == EventPlaced {
					out += fmt.Sprintf("%d@%d:%.17g;", ev.Job.ID, ev.Site, ev.Start)
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	plain := mk(nil)
	unlimited := mk(&AdmissionConfig{Weights: map[string]float64{"t0": 9}})
	if plain == "" || plain != unlimited {
		t.Fatalf("unlimited admission diverged from nil admission")
	}
}

// TestSafeOnlyFoldsIntoMustBeSafe: a SafeOnly job is never placed
// riskily, even under a fully risky policy, and never fails.
func TestSafeOnlyFoldsIntoMustBeSafe(t *testing.T) {
	sites := []*grid.Site{
		{ID: 0, Speed: 1000, Nodes: 1, SecurityLevel: 0.3}, // fast but untrusted
		{ID: 1, Speed: 10, Nodes: 1, SecurityLevel: 0.99},  // slow and safe
	}
	jobs := make([]*grid.Job, 40)
	for i := range jobs {
		jobs[i] = &grid.Job{
			ID: i + 1, Workload: 100, Nodes: 1,
			SecurityDemand: 0.9, SafeOnly: true, Tenant: "sec",
		}
	}
	risky := 0
	res, err := Run(RunConfig{
		Jobs:          jobs,
		Sites:         sites,
		Scheduler:     &eligibleScheduler{policy: grid.RiskyPolicy()},
		BatchInterval: 10,
		Rand:          rng.New(3),
		OnEvent: func(ev EngineEvent) {
			if ev.Kind == EventPlaced && ev.Risky {
				risky++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if risky != 0 || res.Summary.NRisk != 0 || res.Summary.NFail != 0 {
		t.Fatalf("SafeOnly jobs took risk: risky=%d summary=%+v", risky, res.Summary)
	}
}
