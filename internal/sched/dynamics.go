package sched

import (
	"fmt"

	"trustgrid/internal/fuzzy"
	"trustgrid/internal/grid"
	"trustgrid/internal/sim"
)

// DynamicsConfig turns the fixed-platform simulator into a dynamic grid
// (DESIGN.md §7): sites join, leave and degrade over a deterministic
// churn trace, ground-truth security may diverge from declared levels,
// and — when Reputation is set — the scheduler-visible trust vector is
// re-derived online from observed job outcomes instead of staying at
// the declaration.
type DynamicsConfig struct {
	// Churn is the time-sorted site transition trace (generate one with
	// grid.ChurnConfig or load it with grid.ReadChurnTrace). The engine
	// schedules every event on the discrete-event queue up front, so a
	// run's placements are a pure function of (jobs, churn, seeds).
	Churn []grid.ChurnEvent
	// Reputation, when non-nil, enables the online trust feedback loop:
	// each completion/security-failure updates the site's
	// fuzzy.Reputation and the site's scheduler-visible SecurityLevel is
	// set to the new estimate. Nil keeps trust static (declared levels),
	// which is the paper's original model.
	Reputation *fuzzy.ReputationConfig
	// TrueLevels, when non-nil, is the per-site ground-truth security
	// level the Eq. 1 failure law samples from, independent of what the
	// scheduler believes (grid.DeceptiveLevels builds one). Nil means
	// the declared levels are the truth.
	TrueLevels []float64
}

// check validates the dynamics against the platform.
func (d *DynamicsConfig) check(sites []*grid.Site) error {
	if err := grid.ValidateChurn(d.Churn, len(sites)); err != nil {
		return err
	}
	if d.Reputation != nil {
		if err := d.Reputation.Validate(); err != nil {
			return err
		}
	}
	if d.TrueLevels != nil {
		if len(d.TrueLevels) != len(sites) {
			return fmt.Errorf("sched: %d true levels for %d sites", len(d.TrueLevels), len(sites))
		}
		for i, l := range d.TrueLevels {
			if l < 0 || l > 1 {
				return fmt.Errorf("sched: true level %v of site %d outside [0,1]", l, i)
			}
		}
	}
	return nil
}

// attempt is one execution in flight on a site. It is also its own
// outcome event: dispatch precomputes whether the attempt fails (the
// Eq. 1 draw) and when the outcome manifests (at), then schedules the
// attempt itself, so the whole pending outcome is plain data a snapshot
// can serialize and a restore can re-schedule. On dynamic grids a crash
// interrupts it by setting cancelled; the event then no-ops.
type attempt struct {
	st        *engineState
	job       *grid.Job
	site      int
	start     float64 // when the site begins executing it
	busy      float64 // site occupancy charged at dispatch time
	at        float64 // when the outcome event fires (start + busy)
	fails     bool    // outcome: Eq. 1 security failure vs completion
	seq       uint64  // event-queue sequence of the outcome (durable mode)
	cancelled bool
}

// Execute implements sim.Event: the attempt's outcome fires at att.at.
func (att *attempt) Execute(e *sim.Engine) { att.st.finishAttempt(e, att) }

// dynState is the engine's dynamic-grid state. Nil on static runs — the
// paper's original closed-world model pays nothing for the extension.
type dynState struct {
	cfg       *DynamicsConfig
	alive     []bool
	crashed   []bool // down because of a crash: rejoin is cold
	baseSpeed []float64
	declared  []float64
	trueSL    []float64
	reps      []*fuzzy.Reputation // nil without reputation feedback
	inflight  [][]*attempt
	revives   int // ChurnJoin events not yet executed
}

// newDynState builds the dynamic state for a validated config over the
// engine's (cloned) site list.
func newDynState(cfg *DynamicsConfig, sites []*grid.Site) (*dynState, error) {
	d := &dynState{
		cfg:       cfg,
		alive:     make([]bool, len(sites)),
		crashed:   make([]bool, len(sites)),
		baseSpeed: make([]float64, len(sites)),
		declared:  make([]float64, len(sites)),
		trueSL:    make([]float64, len(sites)),
		inflight:  make([][]*attempt, len(sites)),
	}
	for i, s := range sites {
		d.alive[i] = true
		d.baseSpeed[i] = s.Speed
		d.declared[i] = s.SecurityLevel
		if cfg.TrueLevels != nil {
			d.trueSL[i] = cfg.TrueLevels[i]
		} else {
			d.trueSL[i] = s.SecurityLevel
		}
	}
	if cfg.Reputation != nil {
		d.reps = make([]*fuzzy.Reputation, len(sites))
		for i, s := range sites {
			rep, err := fuzzy.NewReputation(*cfg.Reputation, s.SecurityLevel)
			if err != nil {
				return nil, err
			}
			d.reps[i] = rep
		}
	}
	for _, ev := range cfg.Churn {
		if ev.Kind == grid.ChurnJoin {
			d.revives++
		}
	}
	return d, nil
}

func (d *dynState) anyAlive() bool {
	for _, a := range d.alive {
		if a {
			return true
		}
	}
	return false
}

// launch schedules an attempt's outcome event and registers the attempt
// with every tracker that needs it: the per-site in-flight lists on
// dynamic grids (so a crash can cancel it) and the durable registry (so
// a snapshot can re-create it).
func (st *engineState) launch(e *sim.Engine, att *attempt) {
	e.Schedule(att.at, att)
	if st.cfg.Durable {
		att.seq = e.LastSeq()
		st.attempts[att] = struct{}{}
	}
	if st.dyn != nil {
		st.dyn.inflight[att.site] = append(st.dyn.inflight[att.site], att)
	}
}

// untrack removes an attempt that ran to its scheduled completion or
// failure.
func (st *engineState) untrack(att *attempt) {
	if st.cfg.Durable {
		delete(st.attempts, att)
	}
	if st.dyn == nil {
		return
	}
	list := st.dyn.inflight[att.site]
	for i, x := range list {
		if x == att {
			st.dyn.inflight[att.site] = append(list[:i], list[i+1:]...)
			return
		}
	}
}

// effectiveSL returns the ground-truth security level the failure law
// samples from for a site.
func (st *engineState) effectiveSL(site int) float64 {
	if st.dyn != nil {
		return st.dyn.trueSL[site]
	}
	return st.cfg.Sites[site].SecurityLevel
}

// aliveVec returns the scheduler-visible liveness vector (nil = all
// alive, the static fast path).
func (st *engineState) aliveVec() []bool {
	if st.dyn == nil {
		return nil
	}
	return st.dyn.alive
}

// observeOutcome feeds one job outcome into the site's reputation and
// refreshes the scheduler-visible trust estimate. A no-op without
// reputation feedback.
func (st *engineState) observeOutcome(site int, sd float64, success bool) float64 {
	if st.dyn == nil || st.dyn.reps == nil {
		return st.cfg.Sites[site].SecurityLevel
	}
	rep := st.dyn.reps[site]
	rep.Observe(sd, success)
	level := rep.Level()
	st.cfg.Sites[site].SecurityLevel = level
	return level
}

// applyChurn executes one churn event at its scheduled time.
func (st *engineState) applyChurn(e *sim.Engine, ev grid.ChurnEvent) {
	d := st.dyn
	i := ev.Site
	site := st.cfg.Sites[i]
	switch ev.Kind {
	case grid.ChurnCrash:
		wasAlive := d.alive[i]
		d.alive[i] = false
		// A crash always forces a cold rejoin, even if the site was
		// already drained; its in-flight work (drains keep running) is
		// interrupted either way.
		d.crashed[i] = true
		if wasAlive {
			st.emit(EngineEvent{Kind: EventSiteDown, Time: e.Now(), Job: grid.Job{ID: -1}, Site: i,
				Level: site.SecurityLevel})
		}
		requeued := 0
		for _, att := range d.inflight[i] {
			att.cancelled = true
			if st.cfg.Durable {
				// The attempt's outcome event stays on the queue but will
				// no-op; count it so snapshot accounting stays exact and
				// restore knows not to re-create it.
				delete(st.attempts, att)
				st.deadEvents++
			}
			// Reverse the dispatch-time occupancy charge and charge only
			// the time the site actually spent before crashing.
			st.busy[i] -= att.busy
			if occ := e.Now() - att.start; occ > 0 {
				st.busy[i] += occ
			}
			j := att.job
			st.interrupted[j.ID]++
			if st.interrupted[j.ID] > st.cfg.MaxRetries {
				e.Fail(fmt.Errorf("sched: job %d interrupted more than %d times (site churn too hostile)",
					j.ID, st.cfg.MaxRetries))
				return
			}
			// Infrastructure loss, not a security incident: the job
			// re-queues through the ordinary failure path but keeps its
			// risk eligibility and feeds no reputation evidence.
			st.emit(EngineEvent{Kind: EventInterrupted, Time: e.Now(), Job: *j, Site: i})
			st.queue = append(st.queue, j)
			requeued++
		}
		d.inflight[i] = nil
		st.ready[i] = e.Now()
		if requeued > 0 {
			st.ensureBatch(e)
		}
	case grid.ChurnDrain:
		if !d.alive[i] {
			return
		}
		d.alive[i] = false
		d.crashed[i] = false
		st.emit(EngineEvent{Kind: EventSiteDown, Time: e.Now(), Job: grid.Job{ID: -1}, Site: i,
			Level: site.SecurityLevel})
	case grid.ChurnJoin:
		d.revives--
		if d.alive[i] {
			return
		}
		d.alive[i] = true
		if d.crashed[i] {
			d.crashed[i] = false
			// Cold rejoin: evidence does not survive a crash.
			if d.reps != nil {
				d.reps[i].Reset()
				site.SecurityLevel = d.reps[i].Level()
			}
		}
		if st.ready[i] < e.Now() {
			st.ready[i] = e.Now()
		}
		st.emit(EngineEvent{Kind: EventSiteUp, Time: e.Now(), Job: grid.Job{ID: -1}, Site: i,
			Level: site.SecurityLevel})
		if len(st.queue) > 0 {
			st.ensureBatch(e)
		}
	case grid.ChurnDegrade:
		site.Speed = d.baseSpeed[i] * ev.Factor
		st.emit(EngineEvent{Kind: EventSiteSpeed, Time: e.Now(), Job: grid.Job{ID: -1}, Site: i,
			Speed: site.Speed})
	case grid.ChurnRestore:
		site.Speed = d.baseSpeed[i]
		st.emit(EngineEvent{Kind: EventSiteSpeed, Time: e.Now(), Job: grid.Job{ID: -1}, Site: i,
			Speed: site.Speed})
	}
}

// SiteStatus is one site's live dynamic-grid state, as reported by
// Online.SiteStatuses (and the daemon's /v1/sites endpoint).
type SiteStatus struct {
	ID    int     `json:"id"`
	Alive bool    `json:"alive"`
	Speed float64 `json:"speed"`
	// BaseSpeed is the undegraded capacity.
	BaseSpeed float64 `json:"base_speed"`
	// Level is the scheduler-visible security level right now (the
	// reputation estimate under feedback, the declaration otherwise).
	Level float64 `json:"level"`
	// DeclaredLevel is the site's static declaration.
	DeclaredLevel float64 `json:"declared_level"`
	// Observations and Evidence summarize the reputation backing the
	// estimate (zero without reputation feedback).
	Observations int     `json:"observations"`
	Evidence     float64 `json:"evidence"`
}

// SiteStatuses reports every site's live state. Loop goroutine only.
// On static runs it reflects the immutable platform.
func (o *Online) SiteStatuses() []SiteStatus {
	st := o.st
	out := make([]SiteStatus, len(st.cfg.Sites))
	for i, s := range st.cfg.Sites {
		out[i] = SiteStatus{
			ID: i, Alive: true,
			Speed: s.Speed, BaseSpeed: s.Speed,
			Level: s.SecurityLevel, DeclaredLevel: s.SecurityLevel,
		}
	}
	if st.dyn == nil {
		return out
	}
	for i := range out {
		out[i].Alive = st.dyn.alive[i]
		out[i].BaseSpeed = st.dyn.baseSpeed[i]
		out[i].DeclaredLevel = st.dyn.declared[i]
		if st.dyn.reps != nil {
			out[i].Observations = st.dyn.reps[i].Observations()
			out[i].Evidence = st.dyn.reps[i].Evidence()
		}
	}
	return out
}
