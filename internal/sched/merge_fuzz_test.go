package sched_test

import (
	"reflect"
	"sort"
	"testing"

	"trustgrid/internal/grid"
	"trustgrid/internal/sched"
)

// decodeMergeInput turns fuzz bytes into per-shard event buffers. The
// first byte picks the shard count (1..8); each following byte pair is
// one event: (shard, time). Job IDs encode (shard, per-shard sequence)
// so every event is uniquely attributable after the merge.
func decodeMergeInput(data []byte) [][]sched.EngineEvent {
	if len(data) == 0 {
		return nil
	}
	n := 1 + int(data[0])%8
	bufs := make([][]sched.EngineEvent, n)
	seq := make([]int, n)
	rest := data[1:]
	for i := 0; i+1 < len(rest); i += 2 {
		s := int(rest[i]) % n
		seq[s]++
		bufs[s] = append(bufs[s], sched.EngineEvent{
			Kind: sched.EventPlaced,
			Time: float64(rest[i+1]),
			Job:  grid.Job{ID: s*100000 + seq[s]},
			Site: s,
		})
	}
	return bufs
}

func mergeShardOf(ev sched.EngineEvent) int { return ev.Job.ID / 100000 }

// FuzzEventMerge pins the N-way merge underneath the sharded /v2/events
// stream: nothing dropped, nothing duplicated, per-shard emission order
// preserved for arbitrary inputs; and for time-sorted inputs (what
// engines actually emit) a total order by (time, shard index) plus the
// torn-cursor property — merging window by window at any barrier cut
// yields the same stream as one whole merge, which is what lets a
// client resume a cursor across Δ-round boundaries and restarts.
func FuzzEventMerge(f *testing.F) {
	f.Add([]byte{0})                                  // 1 shard, empty
	f.Add([]byte{2, 0, 10, 1, 10, 2, 5, 0, 20, 1, 3}) // ties + unsorted tails
	f.Add([]byte{3, 0, 1, 1, 1, 2, 1, 0, 1, 1, 1})    // all-tie pileup
	f.Add([]byte{7, 6, 200, 5, 100, 4, 50, 3, 25, 2, 12, 1, 6, 0, 3})
	f.Add([]byte{1, 0, 9, 0, 7, 0, 5, 0, 3}) // single shard, descending
	f.Fuzz(func(t *testing.T, data []byte) {
		bufs := decodeMergeInput(data)
		if bufs == nil {
			return
		}
		total := 0
		for _, b := range bufs {
			total += len(b)
		}

		merged := sched.MergeShardEvents(bufs)
		if len(merged) != total {
			t.Fatalf("merge of %d events returned %d", total, len(merged))
		}
		// Per-shard projection of the output must equal the input buffer:
		// order preserved, no drops, no duplicates.
		back := make([][]sched.EngineEvent, len(bufs))
		for _, ev := range merged {
			s := mergeShardOf(ev)
			back[s] = append(back[s], ev)
		}
		for s, b := range bufs {
			if len(back[s]) != len(b) {
				t.Fatalf("shard %d: %d events in, %d out", s, len(b), len(back[s]))
			}
			for i := range b {
				if !reflect.DeepEqual(back[s][i], b[i]) {
					t.Fatalf("shard %d event %d reordered: got %+v, want %+v", s, i, back[s][i], b[i])
				}
			}
		}

		// Engine emission is time-sorted; under that precondition the merge
		// promises a (time, shard) total order and window-cut stability.
		sorted := make([][]sched.EngineEvent, len(bufs))
		for s, b := range bufs {
			sorted[s] = append([]sched.EngineEvent(nil), b...)
			sort.SliceStable(sorted[s], func(i, j int) bool { return sorted[s][i].Time < sorted[s][j].Time })
		}
		whole := sched.MergeShardEvents(sorted)
		for i := 1; i < len(whole); i++ {
			a, b := whole[i-1], whole[i]
			if b.Time < a.Time || (b.Time == a.Time && mergeShardOf(b) < mergeShardOf(a)) {
				t.Fatalf("output not in (time, shard) order at %d: %+v after %+v", i, b, a)
			}
		}
		if len(whole) > 0 {
			// Cut at the median event's timestamp: events with Time <= cut
			// form the first window (mirroring (prev, target] Δ-windows).
			cut := whole[len(whole)/2].Time
			var early, late [][]sched.EngineEvent
			for _, b := range sorted {
				k := sort.Search(len(b), func(i int) bool { return b[i].Time > cut })
				early = append(early, b[:k])
				late = append(late, b[k:])
			}
			split := append(sched.MergeShardEvents(early), sched.MergeShardEvents(late)...)
			if len(split) != len(whole) {
				t.Fatalf("window-split merge has %d events, whole merge %d", len(split), len(whole))
			}
			for i := range whole {
				if !reflect.DeepEqual(split[i], whole[i]) {
					t.Fatalf("window-split merge diverges at %d: %+v vs %+v", i, split[i], whole[i])
				}
			}
		}
	})
}
