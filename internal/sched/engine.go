package sched

import (
	"fmt"
	"time"

	"trustgrid/internal/dag"
	"trustgrid/internal/grid"
	"trustgrid/internal/metrics"
	"trustgrid/internal/rng"
	"trustgrid/internal/sched/kernel"
	"trustgrid/internal/sim"
)

// FailureTiming selects when a sampled failure manifests during an
// execution attempt (the paper does not specify; DESIGN.md §2.1).
type FailureTiming int

const (
	// FailUniform detects the failure at a uniform fraction of the
	// attempt's execution time (default).
	FailUniform FailureTiming = iota
	// FailAtEnd detects the failure only when the attempt would have
	// completed, wasting the full execution time.
	FailAtEnd
)

// RunConfig describes one complete simulation.
type RunConfig struct {
	Jobs      []*grid.Job  // workload; the engine clones it, callers keep theirs
	Sites     []*grid.Site // platform
	Scheduler Scheduler    // algorithm under test
	// BatchInterval Δ: the periodic scheduling period of the Fig. 1
	// model. The queue is drained every Δ seconds.
	BatchInterval float64
	// Security is the Eq. 1 failure law. A zero value (λ = 0, which
	// would disable failures entirely) is replaced by the default λ.
	Security grid.SecurityModel
	// FailureTiming selects the failure-detection model.
	FailureTiming FailureTiming
	// Rand drives failure sampling; derive a dedicated stream.
	Rand *rng.Stream
	// MaxRetries bounds per-job failures before the run aborts (a job
	// that keeps failing indicates an infeasible platform). Zero means
	// the default of 50.
	MaxRetries int
	// MaxEvents bounds total simulation events (runaway guard). Zero
	// means 200 × |jobs seen so far| + 10000, growing as jobs arrive.
	MaxEvents uint64
	// Validate enables per-batch assignment contract checking (tests).
	Validate bool
	// OnEvent, when non-nil, receives every job lifecycle transition
	// (arrival, placement, failure, completion) synchronously on the
	// goroutine driving the simulation. Handlers must not call back into
	// the engine. See EngineEvent.
	OnEvent func(EngineEvent)
	// DiscardRecords disables per-job record retention: the engine
	// accumulates the §4.1 summary incrementally instead, so memory
	// stays bounded by in-flight jobs rather than total jobs served —
	// what an indefinitely running service needs. Result().Records is
	// empty; per-job data is still observable through OnEvent.
	DiscardRecords bool
	// SubmitBuffer sizes the arrival channel of the incremental Online
	// engine; zero means sim.DefaultArrivalBuffer. Ignored by Run.
	SubmitBuffer int
	// Dynamics, when non-nil, enables the dynamic-grid extension: site
	// churn, ground-truth security divergence and online reputation
	// feedback (DESIGN.md §7). The engine clones the site list so churn
	// and trust updates never mutate the caller's platform. Nil is the
	// paper's original fixed-platform model, bit-identical to before the
	// extension existed.
	Dynamics *DynamicsConfig
	// Admission, when non-nil, bounds each Δ-round's batch and shares
	// the budget between tenants in weighted deficit-round-robin order
	// (DESIGN.md §9). Nil — or a zero RoundBudget — is the original
	// drain-everything behavior, bit-identical to before multi-tenancy
	// existed. The engine copies the config.
	Admission *AdmissionConfig
	// Durable enables snapshot support (DESIGN.md §10): the engine
	// tracks every pending event — future arrivals, in-flight execution
	// attempts, the armed Δ-round — together with its event-queue
	// sequence number, so Online.Snapshot can serialize the full engine
	// state and RestoreOnline can re-schedule it in the original
	// execution order. Off by default: the bookkeeping costs a map
	// insert/delete per job and per attempt, and a run that will never
	// snapshot should not pay it. Durable runs never change placements —
	// the tracking observes the event queue, it does not alter it.
	Durable bool
}

// check validates everything except the job list, which Run requires
// non-empty but the incremental Online engine accepts empty (jobs stream
// in later via Submit).
func (c *RunConfig) check() error {
	if err := grid.ValidateSites(c.Sites); err != nil {
		return err
	}
	if c.Scheduler == nil {
		return fmt.Errorf("sched: nil scheduler")
	}
	if c.BatchInterval <= 0 {
		return fmt.Errorf("sched: batch interval %v <= 0", c.BatchInterval)
	}
	if c.Rand == nil {
		return fmt.Errorf("sched: nil random stream")
	}
	for _, j := range c.Jobs {
		if err := j.Validate(); err != nil {
			return err
		}
	}
	// A closed-world workload must form a proper DAG; online submissions
	// are validated incrementally by the service layer instead.
	if err := dag.Validate(c.Jobs); err != nil {
		return err
	}
	if c.Dynamics != nil {
		if err := c.Dynamics.check(c.Sites); err != nil {
			return err
		}
	}
	if c.Admission != nil {
		if err := c.Admission.check(); err != nil {
			return err
		}
	}
	return nil
}

// Result is the outcome of a run.
type Result struct {
	Summary metrics.Summary
	Records []metrics.JobRecord
	// Batches is the number of scheduling rounds that dispatched jobs.
	Batches int
	// Events is the number of simulation events executed.
	Events uint64
	// SchedulerTime is the total wall-clock time spent inside
	// Scheduler.Schedule across all batches. The paper's case for the
	// STGA rests on the GA being cheap enough for online use; this field
	// quantifies that claim (see experiments.RunOverhead).
	SchedulerTime time.Duration
	// LargestBatch is the maximum batch size scheduled in one round.
	LargestBatch int
}

// engineState carries the mutable simulation state across events.
type engineState struct {
	cfg     *RunConfig
	queue   []*grid.Job // jobs awaiting dispatch
	ready   []float64   // per-site earliest free time
	busy    []float64   // per-site accumulated occupied time
	records []metrics.JobRecord
	// riskTaken / failedOnce / fellBack / interrupted track per-job
	// flags and counts across attempts, keyed by job ID.
	riskTaken   map[int]bool
	failed      map[int]bool
	fellBack    map[int]bool
	interrupted map[int]int
	// dyn is the dynamic-grid state (nil on static runs).
	dyn *dynState
	// adm is the fair-share batch former (nil without RunConfig.Admission).
	adm *admState
	// deps is the dependency ready-set (always on; edge-free workloads
	// never block and never pay more than one empty loop per arrival).
	// ranks is the per-batch upward-rank scratch column.
	deps      *dag.Tracker
	ranks     []float64
	seen      int // jobs that have arrived so far
	remaining int // jobs not yet successfully completed
	// acc accumulates the §4.1 summary incrementally, in the same order
	// metrics.Compute folds the record list, so DiscardRecords mode
	// stays summary-complete without retaining per-job state.
	acc       metrics.Accumulator
	batches   int
	schedTime time.Duration
	largest   int
	failRand  *rng.Stream
	timeRand  *rng.Stream
	batchOpen bool // a batch event is already scheduled
	// kb rebuilds the columnar snapshot each round into reused storage.
	kb kernel.Builder

	// Durable-mode pending-event ledger (nil/zero otherwise): every event
	// sitting on the sim queue is accounted for here so Snapshot can
	// serialize it and RestoreOnline can re-schedule it in the original
	// (time, seq) order. attempts holds live in-flight outcomes; pendArr
	// holds scheduled, not-yet-admitted arrivals; batchSeq/batchAt locate
	// the armed Δ-round when batchOpen; deadEvents counts cancelled
	// attempts whose no-op outcome event has not fired yet.
	attempts   map[*attempt]struct{}
	pendArr    map[*grid.Job]pendingArrival
	batchSeq   uint64
	batchAt    float64
	deadEvents int
}

// pendingArrival records a scheduled, not-yet-admitted arrival event:
// when it fires and where it sits in the event order.
type pendingArrival struct {
	at  float64
	seq uint64
}

// Run executes the full simulation and aggregates metrics. It is the
// closed-world entry point: the whole workload is known up front. Under
// the hood it is a thin wrapper over the incremental Online engine, so
// the paper's batch experiments and the trustgridd service share one
// code path (and the trace-replay parity test holds by construction).
func Run(cfg RunConfig) (*Result, error) {
	if len(cfg.Jobs) == 0 {
		return nil, fmt.Errorf("sched: no jobs")
	}
	o, err := NewOnline(cfg)
	if err != nil {
		return nil, err
	}
	return o.Drain()
}

// arrive enqueues a newly submitted job and opens the next scheduling
// round. A stale arrival stamp (before the current clock) is clamped to
// now — the job arrives "now" as far as the simulation is concerned.
func (st *engineState) arrive(e *sim.Engine, j *grid.Job) {
	if st.cfg.Durable {
		delete(st.pendArr, j)
	}
	if j.Arrival < e.Now() {
		j.Arrival = e.Now()
	}
	// A tenant-declared secure-only policy becomes the same per-job
	// constraint a prior failure imposes; downstream of this point the
	// scheduling core has a single safety flag.
	if j.SafeOnly {
		j.MustBeSafe = true
	}
	if st.adm != nil {
		st.adm.note(j.Tenant)
	}
	st.seen++
	st.remaining++
	ready := st.deps.Arrive(j)
	st.emit(EngineEvent{Kind: EventArrived, Time: e.Now(), Job: *j, Site: -1})
	if !ready {
		// The tracker holds the job until its parents complete; it enters
		// the queue (and DRR's view of the backlog) at release.
		return
	}
	st.queue = append(st.queue, j)
	st.ensureBatch(e)
}

// ensureBatch schedules the next periodic scheduling round if none is
// pending. Rounds fire on the Δ grid (⌈now/Δ⌉·Δ), matching the paper's
// periodic model: jobs accumulate and are scheduled in batches.
func (st *engineState) ensureBatch(e *sim.Engine) {
	if st.batchOpen {
		return
	}
	st.batchOpen = true
	delta := st.cfg.BatchInterval
	k := int(e.Now()/delta) + 1
	next := float64(k) * delta
	e.Schedule(next, sim.EventFunc(st.runBatch))
	if st.cfg.Durable {
		st.batchSeq = e.LastSeq()
		st.batchAt = next
	}
}

// runBatch drains the queue through the scheduler and dispatches the
// assignments.
func (st *engineState) runBatch(e *sim.Engine) {
	st.batchOpen = false
	if len(st.queue) == 0 {
		return
	}
	if st.dyn != nil && !st.dyn.anyAlive() {
		// A total outage: hold the queue. If churn will revive a site the
		// round re-arms until it does; otherwise the jobs can never run.
		if st.dyn.revives == 0 {
			e.Fail(fmt.Errorf("sched: every site departed with %d jobs queued and no rejoin pending", len(st.queue)))
			return
		}
		st.ensureBatch(e)
		return
	}
	batch := st.queue
	st.queue = nil
	if st.adm != nil {
		var leftover []*grid.Job
		batch, leftover = st.adm.form(batch)
		if len(leftover) > 0 {
			// Rationed round: the remainder stays queued and the next
			// Δ-round is armed now, so a saturated backlog keeps draining
			// at budget jobs per round even with no further arrivals.
			st.queue = leftover
			st.ensureBatch(e)
		}
	}
	st.batches++

	if len(batch) > st.largest {
		st.largest = len(batch)
	}
	state := &State{Now: e.Now(), Sites: st.cfg.Sites, Ready: st.ready, Alive: st.aliveVec()}
	wall := time.Now()
	// Build the columnar snapshot once per round; every scheduler
	// (including the online daemon path, which drives this same batch
	// loop) streams over it instead of re-deriving eligibility and
	// completion times per probe. The build is scheduling work, so it
	// stays inside the SchedulerTime window; the builder reuses its
	// storage, so steady-state rounds allocate nothing here.
	state.Kern = st.kb.Build(state.Now, state.Sites, state.Ready, state.Alive, batch)
	if st.deps.SawEdges() {
		st.installRanks(state.Kern, batch)
	}
	as := st.cfg.Scheduler.Schedule(batch, state)
	st.schedTime += time.Since(wall)
	if st.cfg.Validate {
		if err := ValidateAssignments(batch, as, len(st.cfg.Sites)); err != nil {
			e.Fail(err)
			return
		}
	}
	for _, a := range as {
		st.dispatch(e, a)
	}
}

// installRanks fills the snapshot's rank column with the batch's HEFT
// upward ranks: each job's mean execution time over alive sites plus
// the heaviest chain of blocked successors waiting on it. Runs only
// once a workload has shown edges, so edge-free rounds skip it and
// rank-aware schedulers keep their historical behavior there.
func (st *engineState) installRanks(k *kernel.Snapshot, batch []*grid.Job) {
	inv, cnt := 0.0, 0
	for i := 0; i < k.M; i++ {
		if k.SiteAlive(i) {
			inv += 1 / k.Speed[i]
			cnt++
		}
	}
	if cnt == 0 {
		// runBatch holds the queue through total outages; defensive only.
		return
	}
	if cap(st.ranks) < len(batch) {
		st.ranks = make([]float64, len(batch))
	}
	r := st.ranks[:len(batch)]
	st.deps.BatchRanks(batch, inv/float64(cnt), r)
	k.SetRanks(r)
}

// dispatch starts one execution attempt: advance the site's FIFO queue,
// sample the Eq. 1 failure law, and schedule the completion or failure.
// On dynamic grids the failure law samples from the site's ground-truth
// security level, the attempt is tracked so a crash can interrupt it,
// and the outcome feeds the site's reputation.
func (st *engineState) dispatch(e *sim.Engine, a Assignment) {
	job, site := a.Job, st.cfg.Sites[a.Site]
	if st.dyn != nil && !st.dyn.alive[a.Site] {
		e.Fail(fmt.Errorf("sched: scheduler dispatched job %d to departed site %d", job.ID, a.Site))
		return
	}
	start := st.ready[a.Site]
	if now := e.Now(); now > start {
		start = now
	}
	exec := site.ExecTime(job)

	if a.FellBack {
		st.fellBack[job.ID] = true
	}
	effSL := st.effectiveSL(a.Site)
	risky := st.cfg.Security.Risky(job.SecurityDemand, effSL)
	if risky {
		st.riskTaken[job.ID] = true
	}
	st.emit(EngineEvent{
		Kind: EventPlaced, Time: e.Now(), Job: *job, Site: a.Site,
		Start: start, Finish: start + exec, Risky: risky, FellBack: a.FellBack,
	})
	fails := risky && st.failRand.Bool(st.cfg.Security.FailProb(job.SecurityDemand, effSL))

	// The outcome is fully determined at dispatch: whether the attempt
	// fails, how long the site is occupied (the full execution on
	// success, the sampled detection point on failure), and when the
	// outcome event fires. The attempt carries all of it as plain data —
	// which is what lets a snapshot serialize in-flight work and a
	// restore re-schedule it bit-identically.
	busy := exec
	if fails && st.cfg.FailureTiming == FailUniform {
		busy = exec * st.timeRand.Float64()
	}
	at := start + busy
	st.ready[a.Site] = at
	st.busy[a.Site] += busy
	st.launch(e, &attempt{
		st: st, job: job, site: a.Site,
		start: start, busy: busy, at: at, fails: fails,
	})
}

// finishAttempt executes an attempt's outcome at att.at: the Eq. 1
// security failure when att.fails, the completion otherwise.
func (st *engineState) finishAttempt(e *sim.Engine, att *attempt) {
	if att.cancelled {
		// The site crashed first; the job already re-queued. The event was
		// counted dead at cancellation time.
		if st.cfg.Durable {
			st.deadEvents--
		}
		return
	}
	st.untrack(att)
	job := att.job

	if att.fails {
		st.failed[job.ID] = true
		job.Failures++
		if job.Failures > st.cfg.MaxRetries {
			e.Fail(fmt.Errorf("sched: job %d exceeded %d retries (site %d); platform likely infeasible",
				job.ID, st.cfg.MaxRetries, att.site))
			return
		}
		// Fail-stop: restart from the beginning on a strictly safe
		// site at the next scheduling round (§2).
		job.MustBeSafe = true
		ev := EngineEvent{Kind: EventFailed, Time: e.Now(), Job: *job, Site: att.site}
		if level := st.observeOutcome(att.site, job.SecurityDemand, false); st.dyn != nil && st.dyn.reps != nil {
			ev.Level = level
		}
		st.emit(ev)
		st.queue = append(st.queue, job)
		st.ensureBatch(e)
		return
	}

	rec := metrics.JobRecord{
		ID:             job.ID,
		Tenant:         job.Tenant,
		Arrival:        job.Arrival,
		Start:          att.start,
		Completion:     att.at,
		Site:           att.site,
		TookRisk:       st.riskTaken[job.ID],
		Failed:         st.failed[job.ID],
		FellBack:       st.fellBack[job.ID],
		Interrupted:    st.interrupted[job.ID] > 0,
		Deadline:       job.Deadline,
		MissedDeadline: job.Deadline > 0 && att.at > job.Deadline,
	}
	if !st.cfg.DiscardRecords {
		st.records = append(st.records, rec)
	}
	st.acc.Add(rec)
	// The job is done; its flag entries would otherwise grow without
	// bound in a long-running online engine.
	delete(st.riskTaken, job.ID)
	delete(st.failed, job.ID)
	delete(st.fellBack, job.ID)
	delete(st.interrupted, job.ID)
	st.remaining--
	ev := EngineEvent{
		Kind: EventCompleted, Time: e.Now(), Job: *job, Site: att.site,
		Start: att.start, Finish: att.at,
	}
	if level := st.observeOutcome(att.site, job.SecurityDemand, true); st.dyn != nil && st.dyn.reps != nil {
		ev.Level = level
	}
	st.emit(ev)

	// Unblock successors whose last incomplete parent this was. They
	// join the queue now (in arrival order) and the next Δ-round picks
	// them up — precedence feasibility by construction: a batch can
	// never contain both ends of an edge.
	released := st.deps.Complete(job.ID)
	for _, rj := range released {
		st.emit(EngineEvent{Kind: EventReady, Time: e.Now(), Job: *rj, Site: -1})
		st.queue = append(st.queue, rj)
	}
	if len(released) > 0 {
		st.ensureBatch(e)
	}
}
