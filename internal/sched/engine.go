package sched

import (
	"fmt"
	"sort"
	"time"

	"trustgrid/internal/grid"
	"trustgrid/internal/metrics"
	"trustgrid/internal/rng"
	"trustgrid/internal/sim"
)

// FailureTiming selects when a sampled failure manifests during an
// execution attempt (the paper does not specify; DESIGN.md §2.1).
type FailureTiming int

const (
	// FailUniform detects the failure at a uniform fraction of the
	// attempt's execution time (default).
	FailUniform FailureTiming = iota
	// FailAtEnd detects the failure only when the attempt would have
	// completed, wasting the full execution time.
	FailAtEnd
)

// RunConfig describes one complete simulation.
type RunConfig struct {
	Jobs      []*grid.Job  // workload; the engine clones it, callers keep theirs
	Sites     []*grid.Site // platform
	Scheduler Scheduler    // algorithm under test
	// BatchInterval Δ: the periodic scheduling period of the Fig. 1
	// model. The queue is drained every Δ seconds.
	BatchInterval float64
	// Security is the Eq. 1 failure law. A zero value (λ = 0, which
	// would disable failures entirely) is replaced by the default λ.
	Security grid.SecurityModel
	// FailureTiming selects the failure-detection model.
	FailureTiming FailureTiming
	// Rand drives failure sampling; derive a dedicated stream.
	Rand *rng.Stream
	// MaxRetries bounds per-job failures before the run aborts (a job
	// that keeps failing indicates an infeasible platform). Zero means
	// the default of 50.
	MaxRetries int
	// MaxEvents bounds total simulation events (runaway guard). Zero
	// means 200 × |jobs| + 10000.
	MaxEvents uint64
	// Validate enables per-batch assignment contract checking (tests).
	Validate bool
}

func (c *RunConfig) check() error {
	if len(c.Jobs) == 0 {
		return fmt.Errorf("sched: no jobs")
	}
	if err := grid.ValidateSites(c.Sites); err != nil {
		return err
	}
	if c.Scheduler == nil {
		return fmt.Errorf("sched: nil scheduler")
	}
	if c.BatchInterval <= 0 {
		return fmt.Errorf("sched: batch interval %v <= 0", c.BatchInterval)
	}
	if c.Rand == nil {
		return fmt.Errorf("sched: nil random stream")
	}
	for _, j := range c.Jobs {
		if err := j.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Result is the outcome of a run.
type Result struct {
	Summary metrics.Summary
	Records []metrics.JobRecord
	// Batches is the number of scheduling rounds that dispatched jobs.
	Batches int
	// Events is the number of simulation events executed.
	Events uint64
	// SchedulerTime is the total wall-clock time spent inside
	// Scheduler.Schedule across all batches. The paper's case for the
	// STGA rests on the GA being cheap enough for online use; this field
	// quantifies that claim (see experiments.RunOverhead).
	SchedulerTime time.Duration
	// LargestBatch is the maximum batch size scheduled in one round.
	LargestBatch int
}

// engineState carries the mutable simulation state across events.
type engineState struct {
	cfg     *RunConfig
	queue   []*grid.Job // jobs awaiting dispatch
	ready   []float64   // per-site earliest free time
	busy    []float64   // per-site accumulated occupied time
	records []metrics.JobRecord
	// riskTaken / failedOnce / fellBack track per-job flags across
	// attempts, keyed by job ID.
	riskTaken map[int]bool
	failed    map[int]bool
	fellBack  map[int]bool
	remaining int // jobs not yet successfully completed
	batches   int
	schedTime time.Duration
	largest   int
	failRand  *rng.Stream
	timeRand  *rng.Stream
	batchOpen bool // a batch event is already scheduled
}

// Run executes the full simulation and aggregates metrics.
func Run(cfg RunConfig) (*Result, error) {
	if err := cfg.check(); err != nil {
		return nil, err
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 50
	}
	if cfg.Security.Lambda == 0 {
		cfg.Security = grid.NewSecurityModel()
	}
	jobs := grid.CloneAll(cfg.Jobs)
	sort.SliceStable(jobs, func(i, k int) bool { return jobs[i].Arrival < jobs[k].Arrival })

	st := &engineState{
		cfg:       &cfg,
		ready:     make([]float64, len(cfg.Sites)),
		busy:      make([]float64, len(cfg.Sites)),
		records:   make([]metrics.JobRecord, 0, len(jobs)),
		riskTaken: make(map[int]bool, len(jobs)),
		failed:    make(map[int]bool, len(jobs)),
		fellBack:  make(map[int]bool, len(jobs)),
		remaining: len(jobs),
		failRand:  cfg.Rand.Derive("engine/failures"),
		timeRand:  cfg.Rand.Derive("engine/failtime"),
	}

	eng := sim.NewEngine()
	if cfg.MaxEvents > 0 {
		eng.MaxEvents = cfg.MaxEvents
	} else {
		eng.MaxEvents = 200*uint64(len(jobs)) + 10000
	}

	for _, j := range jobs {
		j := j
		eng.Schedule(j.Arrival, sim.EventFunc(func(e *sim.Engine) {
			st.queue = append(st.queue, j)
			st.ensureBatch(e)
		}))
	}

	if err := eng.Run(); err != nil {
		return nil, err
	}
	if st.remaining != 0 {
		return nil, fmt.Errorf("sched: simulation drained with %d jobs incomplete", st.remaining)
	}

	summary, err := metrics.Compute(st.records, st.busy)
	if err != nil {
		return nil, err
	}
	return &Result{
		Summary:       summary,
		Records:       st.records,
		Batches:       st.batches,
		Events:        eng.Executed(),
		SchedulerTime: st.schedTime,
		LargestBatch:  st.largest,
	}, nil
}

// ensureBatch schedules the next periodic scheduling round if none is
// pending. Rounds fire on the Δ grid (⌈now/Δ⌉·Δ), matching the paper's
// periodic model: jobs accumulate and are scheduled in batches.
func (st *engineState) ensureBatch(e *sim.Engine) {
	if st.batchOpen {
		return
	}
	st.batchOpen = true
	delta := st.cfg.BatchInterval
	k := int(e.Now()/delta) + 1
	next := float64(k) * delta
	e.Schedule(next, sim.EventFunc(st.runBatch))
}

// runBatch drains the queue through the scheduler and dispatches the
// assignments.
func (st *engineState) runBatch(e *sim.Engine) {
	st.batchOpen = false
	if len(st.queue) == 0 {
		return
	}
	batch := st.queue
	st.queue = nil
	st.batches++

	if len(batch) > st.largest {
		st.largest = len(batch)
	}
	state := &State{Now: e.Now(), Sites: st.cfg.Sites, Ready: st.ready}
	wall := time.Now()
	as := st.cfg.Scheduler.Schedule(batch, state)
	st.schedTime += time.Since(wall)
	if st.cfg.Validate {
		if err := ValidateAssignments(batch, as, len(st.cfg.Sites)); err != nil {
			e.Fail(err)
			return
		}
	}
	for _, a := range as {
		st.dispatch(e, a)
	}
}

// dispatch starts one execution attempt: advance the site's FIFO queue,
// sample the Eq. 1 failure law, and schedule the completion or failure.
func (st *engineState) dispatch(e *sim.Engine, a Assignment) {
	job, site := a.Job, st.cfg.Sites[a.Site]
	start := st.ready[a.Site]
	if now := e.Now(); now > start {
		start = now
	}
	exec := site.ExecTime(job)

	if a.FellBack {
		st.fellBack[job.ID] = true
	}
	risky := st.cfg.Security.Risky(job.SecurityDemand, site.SecurityLevel)
	if risky {
		st.riskTaken[job.ID] = true
	}
	fails := risky && st.failRand.Bool(st.cfg.Security.FailProb(job.SecurityDemand, site.SecurityLevel))

	if fails {
		wasted := exec
		if st.cfg.FailureTiming == FailUniform {
			wasted = exec * st.timeRand.Float64()
		}
		failAt := start + wasted
		st.ready[a.Site] = failAt
		st.busy[a.Site] += wasted
		st.failed[job.ID] = true
		siteIdx := a.Site
		e.Schedule(failAt, sim.EventFunc(func(e *sim.Engine) {
			job.Failures++
			if job.Failures > st.cfg.MaxRetries {
				e.Fail(fmt.Errorf("sched: job %d exceeded %d retries (site %d); platform likely infeasible",
					job.ID, st.cfg.MaxRetries, siteIdx))
				return
			}
			// Fail-stop: restart from the beginning on a strictly safe
			// site at the next scheduling round (§2).
			job.MustBeSafe = true
			st.queue = append(st.queue, job)
			st.ensureBatch(e)
		}))
		return
	}

	finish := start + exec
	st.ready[a.Site] = finish
	st.busy[a.Site] += exec
	siteIdx := a.Site
	e.Schedule(finish, sim.EventFunc(func(e *sim.Engine) {
		st.records = append(st.records, metrics.JobRecord{
			ID:         job.ID,
			Arrival:    job.Arrival,
			Start:      start,
			Completion: finish,
			Site:       siteIdx,
			TookRisk:   st.riskTaken[job.ID],
			Failed:     st.failed[job.ID],
			FellBack:   st.fellBack[job.ID],
		})
		st.remaining--
	}))
}
