package kernel

import (
	"math/bits"

	"trustgrid/internal/grid"
)

// wordBits is the bitset word width.
const wordBits = 64

// EligSet is one cached admission result: the sites a (policy, security
// demand, must-be-safe) class may use, as both an index list (ascending,
// the iteration order every scheduler shares) and a bitset (O(1)
// membership probes in inner loops).
type EligSet struct {
	// Sites lists the eligible site indices in ascending order. It is
	// shared across every job in the class and across every scheduler in
	// the batch; callers must not mutate it.
	Sites []int
	// Bits is the same set as a bitset, word i>>6 bit i&63.
	Bits []uint64
	// FellBack records that no site satisfied the admission rule and the
	// max-SL fallback produced the single-site set.
	FellBack bool
}

// Has reports whether site i is in the set.
func (e *EligSet) Has(i int) bool {
	return e.Bits[i>>6]&(1<<(uint(i)&63)) != 0
}

// Count returns the set's cardinality by popcount over the packed words.
func (e *EligSet) Count() int {
	n := 0
	for _, w := range e.Bits {
		n += bits.OnesCount64(w)
	}
	return n
}

// AppendSites32 appends the set's site indices, ascending, to dst as
// int32 and returns the extended slice. It iterates the packed words
// directly (TrailingZeros per set bit) instead of the Sites list, so
// dense inner loops that want compact indices touch M/64 words rather
// than |Sites| 8-byte entries.
func (e *EligSet) AppendSites32(dst []int32) []int32 {
	for wi, w := range e.Bits {
		base := int32(wi << 6)
		for w != 0 {
			dst = append(dst, base+int32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}

// eligKey identifies an admission equivalence class within one batch:
// grid.Policy.Admits depends only on the policy parameters, the job's
// security demand and its must-be-safe flag, and the (fixed) site
// levels — so one probe per class replaces one probe per (job, site).
type eligKey struct {
	policy grid.Policy
	sd     float64
	safe   bool
}

// Snapshot is the columnar (struct-of-arrays) view of one scheduling
// round: every quantity the inner loops of the heuristics, the STGA and
// the engine touch, flattened into dense arrays built once per batch.
// The pointer-chasing schedulers previously paid per probe —
// Job/Site dereferences, ETC recomputation, per-(job, site) eligibility
// filtering — is paid once here, at O(n·m), and amortized across every
// scheduler that shares the snapshot (the STGA's heuristic seeding runs
// Min-Min and Sufferage on the same snapshot it evolves on).
//
// A Snapshot is immutable after Build except for the lazily grown
// eligibility cache; it is not safe for concurrent use.
type Snapshot struct {
	// Now is the scheduling instant (State.Now).
	Now float64
	// N and M are the batch job count and the site count.
	N, M int

	// Per-site columns, index = site ID.
	Ready    []float64 // earliest free time (copied from the engine)
	Speed    []float64
	SecLevel []float64
	// Alive is nil on static runs (every site up).
	Alive []bool

	// Per-job columns, index = batch position.
	Jobs       []*grid.Job // original job pointers, for Assignment construction
	Workload   []float64
	SD         []float64
	MustBeSafe []bool
	// Tenant is the owning principal of each batch job ("" on
	// single-tenant runs). The kernel itself never branches on it;
	// per-tenant consumers (accounting hooks, tenancy-aware scheduler
	// extensions) read the column instead of chasing Jobs[i].Tenant.
	Tenant []string

	// ETC is the n×m execution-time matrix, row-major (job-major):
	// ETC[i*M+k] = Workload[i]/Speed[k], exactly grid.ETCMatrix's layout
	// and arithmetic.
	ETC []float64

	// rank holds the per-job upward-rank column (see SetRanks / Ranks).
	// rankSet marks engine-installed DAG ranks; rankValid marks the lazy
	// ETC-row-mean default. Both reset on Build.
	rank      []float64
	rankSet   bool
	rankValid bool

	// sites retains the batch's site pointers for admission probes, so
	// cached classes reproduce grid.Policy.Admits bit-for-bit.
	sites []*grid.Site
	elig  map[eligKey]*EligSet
	// etcT is the lazily materialized site-major transpose of ETC (see
	// ETCT); etcTValid marks whether it reflects the current Build.
	etcT      []float64
	etcTValid bool
	// Arenas backing the eligibility cache: admission classes are carved
	// out of shared arrays instead of allocated individually, and a
	// Builder resets them between rounds. When an arena fills mid-build
	// a fresh backing array is started; slices carved earlier keep the
	// old one alive, so cached *EligSet values never dangle.
	sets []EligSet
	bits []uint64
	idx  []int
}

// Builder rebuilds one Snapshot per scheduling round into reused
// storage, so a long-running engine's per-round allocation cost is
// amortized to zero once the arenas have grown to the workload's
// steady-state batch size. The returned *Snapshot is the same object
// every round: it is valid only until the next Build call, which is
// exactly the scheduler contract (schedulers must not retain the
// snapshot or anything carved from it past Schedule; the STGA copies
// what its history table keeps).
type Builder struct {
	snap     Snapshot
	siteCols []float64 // Ready ++ Speed ++ SecLevel
	jobCols  []float64 // Workload ++ SD
	etc      []float64
	alive    []bool
	safe     []bool
	tenants  []string
}

// Build constructs the snapshot for one batch. ready and alive are
// copied (alive may be nil); the job and site pointers are retained but
// never mutated.
func Build(now float64, sites []*grid.Site, ready []float64, alive []bool, batch []*grid.Job) *Snapshot {
	var b Builder
	return b.Build(now, sites, ready, alive, batch)
}

// Build fills the builder's snapshot for one batch and returns it. See
// the type comment for the aliasing contract.
func (b *Builder) Build(now float64, sites []*grid.Site, ready []float64, alive []bool, batch []*grid.Job) *Snapshot {
	n, m := len(batch), len(sites)
	s := &b.snap
	s.Now, s.N, s.M = now, n, m
	s.Jobs, s.sites = batch, sites

	if cap(b.siteCols) < 3*m {
		b.siteCols = make([]float64, 3*m)
	}
	sc := b.siteCols[:3*m]
	s.Ready, s.Speed, s.SecLevel = sc[0:m:m], sc[m:2*m:2*m], sc[2*m:3*m]
	copy(s.Ready, ready)
	for k, site := range sites {
		s.Speed[k] = site.Speed
		s.SecLevel[k] = site.SecurityLevel
	}
	s.Alive = nil
	if alive != nil {
		if cap(b.alive) < m {
			b.alive = make([]bool, m)
		}
		s.Alive = b.alive[:m]
		copy(s.Alive, alive)
	}

	if cap(b.jobCols) < 2*n {
		b.jobCols = make([]float64, 2*n)
	}
	jc := b.jobCols[:2*n]
	s.Workload, s.SD = jc[0:n:n], jc[n:2*n]
	if cap(b.safe) < n {
		b.safe = make([]bool, n)
	}
	s.MustBeSafe = b.safe[:n]
	if cap(b.tenants) < n {
		b.tenants = make([]string, n)
	}
	s.Tenant = b.tenants[:n]
	if cap(b.etc) < n*m {
		b.etc = make([]float64, n*m)
	}
	s.ETC = b.etc[:n*m]
	for i, j := range batch {
		s.Workload[i] = j.Workload
		s.SD[i] = j.SecurityDemand
		s.MustBeSafe[i] = j.MustBeSafe
		s.Tenant[i] = j.Tenant
		row := s.ETC[i*m : (i+1)*m]
		for k, site := range sites {
			row[k] = site.ExecTime(j)
		}
	}

	if s.elig == nil {
		s.elig = make(map[eligKey]*EligSet)
	} else {
		clear(s.elig)
	}
	s.sets = s.sets[:0]
	s.bits = s.bits[:0]
	s.idx = s.idx[:0]
	s.etcTValid = false
	s.rankSet = false
	s.rankValid = false
	return s
}

// SetRanks installs the engine-computed upward-rank column for a DAG
// batch (rank[i] belongs to batch job i). The values are copied into
// the snapshot's arena; HasDAGRanks turns true, which is the switch
// rank-aware schedulers key on. Valid until the next Build.
func (s *Snapshot) SetRanks(rank []float64) {
	if len(rank) != s.N {
		panic("kernel: rank column length does not match batch size")
	}
	if cap(s.rank) < s.N {
		s.rank = make([]float64, s.N)
	}
	copy(s.rank[:s.N], rank)
	s.rankSet = true
	s.rankValid = true
}

// HasDAGRanks reports whether the engine installed dependency-aware
// ranks for this batch. False on every edge-free round, which is what
// keeps rank-aware schedulers on their historical code paths there.
func (s *Snapshot) HasDAGRanks() bool { return s.rankSet }

// Ranks returns the per-job rank column. When no DAG ranks were
// installed it lazily computes the degenerate upward rank — the mean
// ETC over alive sites, i.e. workload × mean inverse speed — which
// orders independent jobs largest-first exactly as the HEFT rank would
// with no successors. The slice aliases snapshot storage: read-only,
// valid until the next Build.
func (s *Snapshot) Ranks() []float64 {
	if s.rankValid {
		return s.rank[:s.N]
	}
	if cap(s.rank) < s.N {
		s.rank = make([]float64, s.N)
	}
	r := s.rank[:s.N]
	inv, cnt := 0.0, 0
	for k := 0; k < s.M; k++ {
		if s.SiteAlive(k) {
			inv += 1 / s.Speed[k]
			cnt++
		}
	}
	if cnt == 0 {
		// Nothing alive: fall back to the full site set so ranks stay
		// finite and workload-ordered.
		for k := 0; k < s.M; k++ {
			inv += 1 / s.Speed[k]
		}
		if cnt = s.M; cnt == 0 {
			cnt = 1
		}
	}
	meanInv := inv / float64(cnt)
	for i := 0; i < s.N; i++ {
		r[i] = s.Workload[i] * meanInv
	}
	s.rankValid = true
	return r
}

// ETCT returns the site-major (column-major) transpose of ETC:
// ETCT()[k*N+i] = ETC[i*M+k]. Site-inner loops — per-site candidate
// buckets, equal-ETC run scans — walk one site's column contiguously
// instead of striding M·8 bytes per job. The transpose is materialized
// lazily on first call per Build (engine and GA paths never pay for
// it) into an arena that persists across rounds, and is filled in
// 64×64 blocks so both matrices stream through cache at m=1024.
func (s *Snapshot) ETCT() []float64 {
	if s.etcTValid {
		return s.etcT[:s.N*s.M]
	}
	n, m := s.N, s.M
	if cap(s.etcT) < n*m {
		s.etcT = make([]float64, n*m)
	}
	t := s.etcT[:n*m]
	const blk = 64
	for i0 := 0; i0 < n; i0 += blk {
		iMax := min(i0+blk, n)
		for k0 := 0; k0 < m; k0 += blk {
			kMax := min(k0+blk, m)
			for i := i0; i < iMax; i++ {
				row := s.ETC[i*m : (i+1)*m]
				for k := k0; k < kMax; k++ {
					t[k*n+i] = row[k]
				}
			}
		}
	}
	s.etcTValid = true
	return t
}

// ForBatch reports whether the snapshot was built for exactly this
// batch slice (schedulers use it to decide between reusing an
// engine-built snapshot and building their own).
func (s *Snapshot) ForBatch(batch []*grid.Job) bool {
	if len(batch) != s.N {
		return false
	}
	return s.N == 0 || (s.Jobs[0] == batch[0] && s.Jobs[s.N-1] == batch[s.N-1])
}

// CT returns max(Now, Ready[site]) + ETC[job, site] — identical to
// sched.State.CompletionTime against the snapshot's ready vector.
func (s *Snapshot) CT(job, site int) float64 {
	start := s.Ready[site]
	if s.Now > start {
		start = s.Now
	}
	return start + s.ETC[job*s.M+site]
}

// SiteAlive reports whether site k is in service.
func (s *Snapshot) SiteAlive(k int) bool { return s.Alive == nil || s.Alive[k] }

// Eligible returns the cached admission set for batch job i under p.
// The first call for a (policy, SD, must-be-safe) class computes it with
// the exact semantics of sched.State.EligibleSites — liveness folded
// into admission, falling back to the max-SL live site (or the global
// max-SL site when nothing is alive) when no site qualifies — and every
// later call in the class is a map hit.
func (s *Snapshot) Eligible(p grid.Policy, i int) *EligSet {
	key := eligKey{policy: p, sd: s.SD[i], safe: s.MustBeSafe[i]}
	if e, ok := s.elig[key]; ok {
		return e
	}
	e := s.computeEligible(p, s.Jobs[i])
	s.elig[key] = e
	return e
}

// computeEligible mirrors sched.State.EligibleSites (which itself
// mirrors grid.Policy.EligibleSites when Alive is nil), probe for probe,
// so the fallback site choice — first site achieving the strict maximum
// SL, scanning ascending — is identical. The class's bitset and site
// list are carved from the snapshot's arenas (see Builder).
func (s *Snapshot) computeEligible(p grid.Policy, j *grid.Job) *EligSet {
	words := (s.M + wordBits - 1) / wordBits
	if len(s.bits)+words > cap(s.bits) {
		n := 4 * (len(s.bits) + words)
		if n < 256 {
			n = 256
		}
		s.bits = make([]uint64, 0, n)
	}
	bits := s.bits[len(s.bits) : len(s.bits)+words : len(s.bits)+words]
	s.bits = s.bits[:len(s.bits)+words]
	for i := range bits {
		bits[i] = 0
	}
	if len(s.idx)+s.M > cap(s.idx) {
		n := 4 * (len(s.idx) + s.M)
		if n < 256 {
			n = 256
		}
		s.idx = make([]int, 0, n)
	}
	idx := s.idx[len(s.idx):len(s.idx)]

	bestLive, bestLevel := -1, -1.0
	for k, site := range s.sites {
		if s.Alive != nil {
			if !s.Alive[k] {
				continue
			}
			if site.SecurityLevel > bestLevel {
				bestLive, bestLevel = k, site.SecurityLevel
			}
		}
		if p.Admits(j, site) {
			idx = append(idx, k)
		}
	}
	fellBack := false
	if len(idx) == 0 {
		fellBack = true
		if s.Alive != nil && bestLive >= 0 {
			idx = append(idx, bestLive)
		} else {
			_, best := grid.MaxSecurityLevel(s.sites)
			idx = append(idx, best)
		}
	}
	s.idx = s.idx[:len(s.idx)+len(idx)]
	idx = idx[:len(idx):len(idx)]
	for _, k := range idx {
		bits[k>>6] |= 1 << (uint(k) & 63)
	}
	if len(s.sets) == cap(s.sets) {
		n := 2 * len(s.sets)
		if n < 16 {
			n = 16
		}
		// A fresh arena; entries already handed out keep the old backing
		// array alive through their map references.
		s.sets = make([]EligSet, 0, n)
	}
	s.sets = append(s.sets, EligSet{Sites: idx, Bits: bits, FellBack: fellBack})
	return &s.sets[len(s.sets)-1]
}

// EligibleBitset returns the admission set for (policy, batch job) as a
// bitset plus the fallback flag. It is the property-test surface: the
// set bits must equal sched.State.EligibleSites for every randomized
// grid, including dead sites and the fallback path.
func (s *Snapshot) EligibleBitset(p grid.Policy, i int) (bits []uint64, fellBack bool) {
	e := s.Eligible(p, i)
	return e.Bits, e.FellBack
}
