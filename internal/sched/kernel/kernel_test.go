// Property tests for the columnar snapshot. The external test package
// lets these compare the kernel directly against sched.State, the
// liveness-aware admission oracle the schedulers used before the
// kernel existed.
package kernel_test

import (
	"math"
	"testing"

	"trustgrid/internal/grid"
	"trustgrid/internal/rng"
	"trustgrid/internal/sched"
	"trustgrid/internal/sched/kernel"
)

// randomInstance draws a random platform, batch and liveness vector.
// Extremes are deliberately over-represented: duplicate security
// levels (ties in the max-SL fallback), impossible demands (fallback
// path), must-be-safe jobs, dead sites including all-but-one and
// all-dead.
func randomInstance(r *rng.Stream) (sites []*grid.Site, batch []*grid.Job, ready []float64, alive []bool) {
	m := 1 + r.Intn(12)
	levels := []float64{0.1, 0.3, 0.5, 0.5, 0.8, 0.95, 1.0}
	sites = make([]*grid.Site, m)
	for k := range sites {
		sites[k] = &grid.Site{
			ID:            k,
			Speed:         1 + r.Float64()*99,
			Nodes:         1,
			SecurityLevel: levels[r.Intn(len(levels))],
		}
	}
	n := 1 + r.Intn(20)
	batch = make([]*grid.Job, n)
	for i := range batch {
		batch[i] = &grid.Job{
			ID:             i,
			Workload:       1 + r.Float64()*1e5,
			Nodes:          1,
			SecurityDemand: r.Float64(), // the whole range, not just [0.6, 0.9]
			MustBeSafe:     r.Bool(0.3),
		}
	}
	ready = make([]float64, m)
	for k := range ready {
		ready[k] = r.Float64() * 1e4
	}
	switch r.Intn(4) {
	case 0: // static grid
		alive = nil
	case 1: // sparse churn
		alive = make([]bool, m)
		for k := range alive {
			alive[k] = r.Bool(0.8)
		}
	case 2: // one survivor
		alive = make([]bool, m)
		alive[r.Intn(m)] = true
	case 3: // total outage (the engine never shows this to a batch, but
		// the API is total and must agree with State's degradation)
		alive = make([]bool, m)
	}
	return sites, batch, ready, alive
}

func policies(r *rng.Stream) []grid.Policy {
	return []grid.Policy{
		grid.SecurePolicy(),
		grid.RiskyPolicy(),
		grid.FRiskyPolicy(r.Float64()),
	}
}

// TestEligibleBitsetMatchesState is the property gate of the issue:
// kernel.EligibleBitset(policy, job) must equal State.EligibleSites for
// randomized grids including dead sites and the fallback path — same
// site set, same order, same fellBack flag.
func TestEligibleBitsetMatchesState(t *testing.T) {
	r := rng.New(777)
	for trial := 0; trial < 500; trial++ {
		sites, batch, ready, alive := randomInstance(r)
		st := &sched.State{Now: r.Float64() * 1e4, Sites: sites, Ready: ready, Alive: alive}
		snap := kernel.Build(st.Now, sites, ready, alive, batch)
		for _, p := range policies(r) {
			for i, j := range batch {
				wantIdx, wantFB := st.EligibleSites(p, j)
				e := snap.Eligible(p, i)
				bits, gotFB := snap.EligibleBitset(p, i)
				if gotFB != wantFB {
					t.Fatalf("trial %d job %d policy %s: fellBack %v != %v",
						trial, i, p.Name(), gotFB, wantFB)
				}
				if len(e.Sites) != len(wantIdx) {
					t.Fatalf("trial %d job %d policy %s: %d eligible sites, want %d",
						trial, i, p.Name(), len(e.Sites), len(wantIdx))
				}
				for k := range wantIdx {
					if e.Sites[k] != wantIdx[k] {
						t.Fatalf("trial %d job %d policy %s: site list %v != %v",
							trial, i, p.Name(), e.Sites, wantIdx)
					}
				}
				// Bitset agrees with the list and with Has.
				inList := make(map[int]bool, len(wantIdx))
				for _, k := range wantIdx {
					inList[k] = true
				}
				for k := range sites {
					has := bits[k>>6]&(1<<(uint(k)&63)) != 0
					if has != inList[k] || e.Has(k) != inList[k] {
						t.Fatalf("trial %d job %d policy %s: bitset disagrees at site %d",
							trial, i, p.Name(), k)
					}
				}
			}
		}
	}
}

// TestSnapshotColumnsMatchState pins the numeric columns: the ETC
// matrix must be grid.ETCMatrix bit-for-bit and CT must equal
// State.CompletionTime for every (job, site).
func TestSnapshotColumnsMatchState(t *testing.T) {
	r := rng.New(778)
	for trial := 0; trial < 200; trial++ {
		sites, batch, ready, alive := randomInstance(r)
		st := &sched.State{Now: r.Float64() * 1e4, Sites: sites, Ready: ready, Alive: alive}
		snap := kernel.Build(st.Now, sites, ready, alive, batch)
		etc := grid.ETCMatrix(batch, sites)
		for i := range etc {
			if snap.ETC[i] != etc[i] {
				t.Fatalf("trial %d: ETC[%d] %v != %v", trial, i, snap.ETC[i], etc[i])
			}
		}
		for i, j := range batch {
			if snap.Workload[i] != j.Workload || snap.SD[i] != j.SecurityDemand ||
				snap.MustBeSafe[i] != j.MustBeSafe {
				t.Fatalf("trial %d: job column %d mismatch", trial, i)
			}
			for k := range sites {
				if got, want := snap.CT(i, k), st.CompletionTime(j, k); got != want {
					t.Fatalf("trial %d: CT(%d,%d) %v != %v", trial, i, k, got, want)
				}
			}
		}
		for k, s := range sites {
			if snap.Speed[k] != s.Speed || snap.SecLevel[k] != s.SecurityLevel ||
				snap.Ready[k] != ready[k] {
				t.Fatalf("trial %d: site column %d mismatch", trial, k)
			}
			if snap.SiteAlive(k) != st.SiteAlive(k) {
				t.Fatalf("trial %d: SiteAlive(%d) disagrees", trial, k)
			}
		}
	}
}

// TestBuilderReuseMatchesFreshBuild drives one Builder through many
// rounds of different shapes and checks every round against a fresh
// one-shot Build — the arenas and cleared caches must never leak state
// across rounds.
func TestBuilderReuseMatchesFreshBuild(t *testing.T) {
	r := rng.New(779)
	var b kernel.Builder
	for round := 0; round < 100; round++ {
		sites, batch, ready, alive := randomInstance(r)
		now := r.Float64() * 1e4
		reused := b.Build(now, sites, ready, alive, batch)
		fresh := kernel.Build(now, sites, ready, alive, batch)
		if reused.N != fresh.N || reused.M != fresh.M || reused.Now != fresh.Now {
			t.Fatalf("round %d: shape mismatch", round)
		}
		for i := range fresh.ETC {
			if reused.ETC[i] != fresh.ETC[i] {
				t.Fatalf("round %d: ETC[%d] differs after reuse", round, i)
			}
		}
		for _, p := range policies(r) {
			for i := range batch {
				a, b := reused.Eligible(p, i), fresh.Eligible(p, i)
				if a.FellBack != b.FellBack || len(a.Sites) != len(b.Sites) {
					t.Fatalf("round %d: eligibility differs after reuse", round)
				}
				for k := range a.Sites {
					if a.Sites[k] != b.Sites[k] {
						t.Fatalf("round %d: eligibility order differs after reuse", round)
					}
				}
			}
		}
		if !reused.ForBatch(batch) {
			t.Fatalf("round %d: ForBatch rejects its own batch", round)
		}
		if len(batch) > 0 && reused.ForBatch(batch[:0]) {
			t.Fatalf("round %d: ForBatch accepts a truncated batch", round)
		}
	}
}

// TestEligibilityClassSharing: jobs with equal (SD, MustBeSafe) must
// share one cached class object — the point of per-class caching.
func TestEligibilityClassSharing(t *testing.T) {
	r := rng.New(780)
	sites, _, ready, _ := randomInstance(r)
	twinA := &grid.Job{ID: 0, Workload: 10, Nodes: 1, SecurityDemand: 0.7}
	twinB := &grid.Job{ID: 1, Workload: 99, Nodes: 1, SecurityDemand: 0.7}
	other := &grid.Job{ID: 2, Workload: 10, Nodes: 1, SecurityDemand: 0.7, MustBeSafe: true}
	snap := kernel.Build(0, sites, ready, nil, []*grid.Job{twinA, twinB, other})
	p := grid.FRiskyPolicy(0.5)
	if snap.Eligible(p, 0) != snap.Eligible(p, 1) {
		t.Fatal("equal (SD, MustBeSafe) jobs must share one eligibility class")
	}
	if snap.Eligible(p, 0) == snap.Eligible(p, 2) {
		t.Fatal("a MustBeSafe job must not share the unrestricted class")
	}
	if math.IsNaN(snap.CT(0, 0)) {
		t.Fatal("CT must be finite")
	}
}

// TestTenantColumn: the snapshot carries each batch job's tenant as a
// per-job column, refreshed correctly across Builder reuse (a stale
// column from a larger previous round must not leak).
func TestTenantColumn(t *testing.T) {
	r := rng.New(912)
	sites, _, ready, _ := randomInstance(r)
	mk := func(n int) []*grid.Job {
		batch := make([]*grid.Job, n)
		for i := range batch {
			batch[i] = &grid.Job{
				ID: i, Workload: 10, Nodes: 1, SecurityDemand: 0.7,
				Tenant: []string{"gold", "silver", ""}[i%3],
			}
		}
		return batch
	}
	var b kernel.Builder
	for _, n := range []int{9, 4, 12} {
		batch := mk(n)
		snap := b.Build(0, sites, ready, nil, batch)
		if len(snap.Tenant) != n {
			t.Fatalf("n=%d: tenant column has %d entries", n, len(snap.Tenant))
		}
		for i, j := range batch {
			if snap.Tenant[i] != j.Tenant {
				t.Fatalf("n=%d: Tenant[%d] = %q, want %q", n, i, snap.Tenant[i], j.Tenant)
			}
		}
	}
}

// TestETCTTranspose pins the lazy site-major transpose to the row-major
// matrix, including re-materialization after a rebuild with different
// dimensions.
func TestETCTTranspose(t *testing.T) {
	r := rng.New(99)
	var b kernel.Builder
	for trial := 0; trial < 50; trial++ {
		sites, batch, ready, alive := randomInstance(r)
		s := b.Build(float64(r.Intn(3))*100, sites, ready, alive, batch)
		etcT := s.ETCT()
		if len(etcT) != s.N*s.M {
			t.Fatalf("trial %d: ETCT length %d, want %d", trial, len(etcT), s.N*s.M)
		}
		for i := 0; i < s.N; i++ {
			for k := 0; k < s.M; k++ {
				if etcT[k*s.N+i] != s.ETC[i*s.M+k] {
					t.Fatalf("trial %d: ETCT[%d,%d] = %v, want %v", trial, k, i, etcT[k*s.N+i], s.ETC[i*s.M+k])
				}
			}
		}
		// A second call must return the same backing array, not refill.
		again := s.ETCT()
		if &again[0] != &etcT[0] {
			t.Fatalf("trial %d: ETCT rematerialized within one build", trial)
		}
	}
}

// TestBuilderSteadyStateAllocs proves the arena contract at the scale
// axis: once a builder has seen one round at m=1024, later rounds of
// the same shape — including the site-major transpose and the
// eligibility classes — allocate nothing.
func TestBuilderSteadyStateAllocs(t *testing.T) {
	r := rng.New(7)
	const m, n = 1024, 512
	sites := make([]*grid.Site, m)
	for k := range sites {
		sites[k] = &grid.Site{ID: k, Speed: 1 + r.Float64()*99, Nodes: 1, SecurityLevel: r.Float64()}
	}
	batch := make([]*grid.Job, n)
	for i := range batch {
		batch[i] = &grid.Job{ID: i, Workload: 1 + r.Float64()*1e5, Nodes: 1, SecurityDemand: r.Float64()}
	}
	ready := make([]float64, m)
	policy := grid.FRiskyPolicy(0.5)
	var b kernel.Builder
	warm := b.Build(0, sites, ready, nil, batch)
	for i := range batch {
		warm.Eligible(policy, i)
	}
	warm.ETCT()
	allocs := testing.AllocsPerRun(3, func() {
		s := b.Build(0, sites, ready, nil, batch)
		for i := range batch {
			s.Eligible(policy, i)
		}
		s.ETCT()
	})
	// The eligibility map is cleared and refilled each round; map buckets
	// are reused by the runtime, so the whole round should be
	// allocation-free in steady state.
	if allocs > 0 {
		t.Fatalf("steady-state round allocates %v times, want 0", allocs)
	}
}
