// Package kernel is the columnar scheduling core: a struct-of-arrays
// snapshot of one scheduling round that every layer above it — the
// greedy heuristics, the STGA's GA fitness, and the batch/online engine
// — streams over instead of chasing *grid.Job/*grid.Site pointers.
//
// A Snapshot flattens the round into dense arrays (per-site ready,
// speed and security-level columns; per-job workload, security-demand
// and must-be-safe columns; a flat row-major completion-time matrix)
// and caches policy admission per (policy, security-demand,
// must-be-safe) class as bitsets, so eligibility is derived once per
// batch instead of re-filtered per (job, site) probe. The engine builds
// one Snapshot per Δ-round and hands it to the scheduler through
// sched.State, which is what lets the daemon path, the batch
// experiments and the STGA's internal heuristic seeding all share a
// single O(n·m) setup pass. See DESIGN.md §8.
package kernel
