package sched

import (
	"math"
	"testing"

	"trustgrid/internal/grid"
	"trustgrid/internal/metrics"
	"trustgrid/internal/rng"
)

// fifoScheduler assigns every job to site 0 in batch order — a minimal
// deterministic Scheduler for engine-level tests.
type fifoScheduler struct{ site int }

func (f *fifoScheduler) Name() string { return "FIFO" }
func (f *fifoScheduler) Schedule(batch []*grid.Job, st *State) []Assignment {
	out := make([]Assignment, len(batch))
	for i, j := range batch {
		out[i] = Assignment{Job: j, Site: f.site}
	}
	return out
}

// eligibleScheduler dispatches each job to its first eligible site under
// a policy — used to drive the failure path deterministically.
type eligibleScheduler struct{ policy grid.Policy }

func (s *eligibleScheduler) Name() string { return "Eligible" }
func (s *eligibleScheduler) Schedule(batch []*grid.Job, st *State) []Assignment {
	out := make([]Assignment, len(batch))
	for i, j := range batch {
		idx, fb := s.policy.EligibleSites(j, st.Sites)
		out[i] = Assignment{Job: j, Site: idx[0], FellBack: fb}
	}
	return out
}

func safeSites(speeds ...float64) []*grid.Site {
	sites := make([]*grid.Site, len(speeds))
	for i, sp := range speeds {
		sites[i] = &grid.Site{ID: i, Speed: sp, Nodes: 1, SecurityLevel: 1.0}
	}
	return sites
}

func simpleJobs(n int, work, gap float64) []*grid.Job {
	jobs := make([]*grid.Job, n)
	for i := range jobs {
		jobs[i] = &grid.Job{
			ID: i, Arrival: float64(i) * gap, Workload: work, Nodes: 1,
			SecurityDemand: 0.6,
		}
	}
	return jobs
}

func TestRunSerialQueueTiming(t *testing.T) {
	// Two unit-work jobs on one unit-speed site, batch interval 10:
	// both arrive before the first batch at t=10; they run back-to-back:
	// completions at 11 and 12.
	cfg := RunConfig{
		Jobs:          simpleJobs(2, 1, 1), // arrivals 0 and 1
		Sites:         safeSites(1),
		Scheduler:     &fifoScheduler{},
		BatchInterval: 10,
		Security:      grid.NewSecurityModel(),
		Rand:          rng.New(1),
		Validate:      true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Makespan != 12 {
		t.Fatalf("makespan %v, want 12", res.Summary.Makespan)
	}
	if res.Summary.Jobs != 2 {
		t.Fatalf("completed %d jobs", res.Summary.Jobs)
	}
	if res.Batches != 1 {
		t.Fatalf("batches %d, want 1", res.Batches)
	}
	// Response: (11-0) + (12-1) = 22 → avg 11. Service: 1 and 1 → avg 1.
	if math.Abs(res.Summary.AvgResponse-11) > 1e-9 {
		t.Fatalf("avg response %v, want 11", res.Summary.AvgResponse)
	}
	if math.Abs(res.Summary.AvgService-1) > 1e-9 {
		t.Fatalf("avg service %v, want 1", res.Summary.AvgService)
	}
	if math.Abs(res.Summary.Slowdown-11) > 1e-9 {
		t.Fatalf("slowdown %v, want 11", res.Summary.Slowdown)
	}
}

func TestRunLateArrivalGetsLaterBatch(t *testing.T) {
	jobs := []*grid.Job{
		{ID: 0, Arrival: 0, Workload: 1, Nodes: 1, SecurityDemand: 0.6},
		{ID: 1, Arrival: 25, Workload: 1, Nodes: 1, SecurityDemand: 0.6},
	}
	cfg := RunConfig{
		Jobs: jobs, Sites: safeSites(1), Scheduler: &fifoScheduler{},
		BatchInterval: 10, Security: grid.NewSecurityModel(), Rand: rng.New(1),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Batches != 2 {
		t.Fatalf("batches %d, want 2", res.Batches)
	}
	// Job 1 arrives at 25 → scheduled at t=30 → completes at 31.
	if res.Summary.Makespan != 31 {
		t.Fatalf("makespan %v, want 31", res.Summary.Makespan)
	}
}

func TestSecureRunNeverFails(t *testing.T) {
	sites := []*grid.Site{
		{ID: 0, Speed: 1, Nodes: 1, SecurityLevel: 0.95},
		{ID: 1, Speed: 2, Nodes: 1, SecurityLevel: 0.45},
	}
	jobs := simpleJobs(50, 10, 5)
	for i, j := range jobs {
		j.SecurityDemand = 0.6 + 0.3*float64(i)/50
	}
	cfg := RunConfig{
		Jobs: jobs, Sites: sites,
		Scheduler:     &eligibleScheduler{policy: grid.SecurePolicy()},
		BatchInterval: 20, Security: grid.NewSecurityModel(), Rand: rng.New(2),
		Validate: true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.NFail != 0 {
		t.Fatalf("secure mode produced %d failures", res.Summary.NFail)
	}
	if res.Summary.NRisk != 0 {
		t.Fatalf("secure mode produced %d risk-taking jobs", res.Summary.NRisk)
	}
}

func TestRiskyRunFailsAndRecovers(t *testing.T) {
	// Site 0 is very unsafe (deficit 0.5, P(fail) ≈ 0.78) and fast;
	// site 1 is strictly safe and slow. Eligible-first always dispatches
	// to site 0, so many jobs fail and must be rescued on site 1.
	sites := []*grid.Site{
		{ID: 0, Speed: 10, Nodes: 1, SecurityLevel: 0.4},
		{ID: 1, Speed: 1, Nodes: 1, SecurityLevel: 0.95},
	}
	jobs := simpleJobs(100, 10, 1)
	for _, j := range jobs {
		j.SecurityDemand = 0.9
	}
	cfg := RunConfig{
		Jobs: jobs, Sites: sites,
		Scheduler:     &eligibleScheduler{policy: grid.RiskyPolicy()},
		BatchInterval: 10, Security: grid.NewSecurityModel(), Rand: rng.New(3),
		Validate: true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.NRisk != 100 {
		t.Fatalf("all 100 jobs took risk, counted %d", res.Summary.NRisk)
	}
	if res.Summary.NFail < 50 || res.Summary.NFail > 95 {
		t.Fatalf("NFail = %d, expected ≈78%% of 100", res.Summary.NFail)
	}
	if res.Summary.NFail > res.Summary.NRisk {
		t.Fatal("NFail must be bounded by NRisk")
	}
	if res.Summary.Jobs != 100 {
		t.Fatalf("only %d jobs completed", res.Summary.Jobs)
	}
	// Every failed job's record must show completion on the safe site.
	for _, r := range res.Records {
		if r.Failed && r.Site != 1 {
			t.Fatalf("failed job %d completed on unsafe site %d", r.ID, r.Site)
		}
	}
}

func TestFailAtEndWastesFullExec(t *testing.T) {
	sites := []*grid.Site{
		{ID: 0, Speed: 1, Nodes: 1, SecurityLevel: 0.4},
		{ID: 1, Speed: 1, Nodes: 1, SecurityLevel: 0.95},
	}
	jobs := simpleJobs(1, 10, 0)
	jobs[0].SecurityDemand = 0.9
	// Find a seed where the single job fails on site 0.
	for seed := uint64(0); seed < 100; seed++ {
		cfg := RunConfig{
			Jobs: jobs, Sites: sites,
			Scheduler:     &eligibleScheduler{policy: grid.RiskyPolicy()},
			BatchInterval: 5, Security: grid.NewSecurityModel(),
			FailureTiming: FailAtEnd, Rand: rng.New(seed),
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Summary.NFail == 1 {
			// Batch at t=5, fails at 15 (full 10s wasted), rescheduled at
			// t=20 on site 1, completes at 30.
			if res.Summary.Makespan != 30 {
				t.Fatalf("makespan %v, want 30 with FailAtEnd", res.Summary.Makespan)
			}
			return
		}
	}
	t.Fatal("no failing seed found — failure sampling broken")
}

func TestUtilizationAccounting(t *testing.T) {
	// One job of 10s work on a 1-speed site, batch at t=5: busy 10s,
	// makespan 15 → utilization 2/3; second site idle.
	cfg := RunConfig{
		Jobs:          simpleJobs(1, 10, 0),
		Sites:         safeSites(1, 1),
		Scheduler:     &fifoScheduler{},
		BatchInterval: 5,
		Security:      grid.NewSecurityModel(),
		Rand:          rng.New(4),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Summary.SiteUtilization[0]-10.0/15.0) > 1e-9 {
		t.Fatalf("site 0 utilization %v, want 2/3", res.Summary.SiteUtilization[0])
	}
	if res.Summary.SiteUtilization[1] != 0 || res.Summary.IdleSites != 1 {
		t.Fatalf("site 1 should be idle: %+v", res.Summary.SiteUtilization)
	}
}

func TestRunDeterministic(t *testing.T) {
	sites := []*grid.Site{
		{ID: 0, Speed: 5, Nodes: 1, SecurityLevel: 0.5},
		{ID: 1, Speed: 1, Nodes: 1, SecurityLevel: 0.95},
	}
	jobs := simpleJobs(60, 25, 3)
	for i, j := range jobs {
		j.SecurityDemand = 0.6 + float64(i%4)*0.1
	}
	mk := func() *Result {
		res, err := Run(RunConfig{
			Jobs: jobs, Sites: sites,
			Scheduler:     &eligibleScheduler{policy: grid.RiskyPolicy()},
			BatchInterval: 15, Security: grid.NewSecurityModel(), Rand: rng.New(77),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(), mk()
	if a.Summary.Makespan != b.Summary.Makespan || a.Summary.NFail != b.Summary.NFail ||
		a.Summary.AvgResponse != b.Summary.AvgResponse {
		t.Fatal("engine runs with equal seeds diverged")
	}
}

func TestRunConfigValidation(t *testing.T) {
	good := RunConfig{
		Jobs: simpleJobs(1, 1, 0), Sites: safeSites(1),
		Scheduler: &fifoScheduler{}, BatchInterval: 1,
		Security: grid.NewSecurityModel(), Rand: rng.New(1),
	}
	bad := good
	bad.Jobs = nil
	if _, err := Run(bad); err == nil {
		t.Fatal("no jobs should fail")
	}
	bad = good
	bad.Scheduler = nil
	if _, err := Run(bad); err == nil {
		t.Fatal("nil scheduler should fail")
	}
	bad = good
	bad.BatchInterval = 0
	if _, err := Run(bad); err == nil {
		t.Fatal("zero interval should fail")
	}
	bad = good
	bad.Rand = nil
	if _, err := Run(bad); err == nil {
		t.Fatal("nil rand should fail")
	}
	bad = good
	bad.Sites = nil
	if _, err := Run(bad); err == nil {
		t.Fatal("no sites should fail")
	}
}

func TestEngineDoesNotMutateCallerJobs(t *testing.T) {
	sites := []*grid.Site{
		{ID: 0, Speed: 10, Nodes: 1, SecurityLevel: 0.4},
		{ID: 1, Speed: 1, Nodes: 1, SecurityLevel: 0.95},
	}
	jobs := simpleJobs(20, 10, 1)
	for _, j := range jobs {
		j.SecurityDemand = 0.9
	}
	_, err := Run(RunConfig{
		Jobs: jobs, Sites: sites,
		Scheduler:     &eligibleScheduler{policy: grid.RiskyPolicy()},
		BatchInterval: 10, Security: grid.NewSecurityModel(), Rand: rng.New(5),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.MustBeSafe || j.Failures != 0 {
			t.Fatal("engine mutated the caller's job objects")
		}
	}
}

func TestMetricsComputeIdentities(t *testing.T) {
	recs := []metrics.JobRecord{
		{ID: 0, Arrival: 0, Start: 5, Completion: 10, Site: 0, TookRisk: true, Failed: true},
		{ID: 1, Arrival: 2, Start: 10, Completion: 14, Site: 0, TookRisk: true},
	}
	busy := []float64{9, 0}
	s, err := metrics.Compute(recs, busy)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 14 || s.NRisk != 2 || s.NFail != 1 || s.IdleSites != 1 {
		t.Fatalf("summary wrong: %+v", s)
	}
	// Response (10+12)/2 = 11; service (5+4)/2 = 4.5; slowdown 22/9.
	if math.Abs(s.Slowdown-22.0/9.0) > 1e-9 {
		t.Fatalf("slowdown %v", s.Slowdown)
	}
	if s.Slowdown < 1 {
		t.Fatal("slowdown must be >= 1")
	}
}

func TestMetricsComputeRejectsBadRecords(t *testing.T) {
	bad := []metrics.JobRecord{{ID: 0, Arrival: 10, Start: 5, Completion: 20, Site: 0}}
	if _, err := metrics.Compute(bad, []float64{1}); err == nil {
		t.Fatal("start-before-arrival must be rejected")
	}
	bad = []metrics.JobRecord{{ID: 0, Arrival: 0, Start: 5, Completion: 4, Site: 0}}
	if _, err := metrics.Compute(bad, []float64{1}); err == nil {
		t.Fatal("completion-before-start must be rejected")
	}
	// NFail > NRisk is impossible by the model.
	bad = []metrics.JobRecord{{ID: 0, Arrival: 0, Start: 1, Completion: 2, Site: 0, Failed: true}}
	if _, err := metrics.Compute(bad, []float64{1}); err == nil {
		t.Fatal("NFail > NRisk must be rejected")
	}
}

func TestMetricsEmpty(t *testing.T) {
	s, err := metrics.Compute(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Jobs != 0 || s.Makespan != 0 {
		t.Fatal("empty summary should be zero")
	}
}
