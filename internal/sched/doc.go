// Package sched implements the paper's on-line job scheduling system
// model (Fig. 1): jobs arrive over time into a queue, a batch scheduler
// runs periodically and maps the accumulated batch onto grid sites, sites
// execute their local queues, and failed jobs (per the Eq. 1 security
// model) are re-queued for strictly safe re-dispatch.
//
// The package defines the Scheduler contract that the heuristics and the
// STGA implement, and the discrete-event Engine that drives a full
// simulation and collects metrics.
//
// With RunConfig.Dynamics the fixed platform becomes a dynamic grid
// (DESIGN.md §7): a churn trace drives sites crashing (interrupting and
// re-dispatching their running jobs), draining, rejoining and
// degrading; the Eq. 1 failure law may sample from ground-truth
// security levels that diverge from declarations; and reputation
// feedback re-derives the scheduler-visible trust vector from observed
// outcomes between batches.
//
// DESIGN.md §1.1 inventory row: the Fig. 1 online model: periodic batch scheduling, dispatch, Eq. 1 failure sampling, safe re-dispatch; defines the Scheduler contract, the incremental Online engine (§6.3) and the dynamic-grid extension (§7).
package sched
