// Package sched implements the paper's on-line job scheduling system
// model (Fig. 1): jobs arrive over time into a queue, a batch scheduler
// runs periodically and maps the accumulated batch onto grid sites, sites
// execute their local queues, and failed jobs (per the Eq. 1 security
// model) are re-queued for strictly safe re-dispatch.
//
// The package defines the Scheduler contract that the heuristics and the
// STGA implement, and the discrete-event Engine that drives a full
// simulation and collects metrics.
//
// DESIGN.md §1.1 inventory row: the Fig. 1 online model: periodic batch scheduling, dispatch, Eq. 1 failure sampling, safe re-dispatch; defines the Scheduler contract and the incremental Online engine (§6.3).
package sched
