package sched_test

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"trustgrid/internal/dag"
	"trustgrid/internal/grid"
	"trustgrid/internal/heuristics"
	"trustgrid/internal/rng"
	"trustgrid/internal/sched"
)

func dagRun(t *testing.T, jobs []*grid.Job, events *[]sched.EngineEvent) *sched.Result {
	t.Helper()
	res, err := sched.Run(sched.RunConfig{
		Jobs:          jobs,
		Sites:         []*grid.Site{{ID: 0, Speed: 10, Nodes: 4, SecurityLevel: 1.0}},
		Scheduler:     heuristics.NewRankMinMin(grid.SecurePolicy()),
		BatchInterval: 10,
		Security:      grid.NewSecurityModel(),
		Rand:          rng.New(1),
		Validate:      true,
		OnEvent: func(ev sched.EngineEvent) {
			if events != nil {
				*events = append(*events, ev)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestDAGReleaseFlow is the precedence contract end to end: on a
// diamond (0 → {1,2} → 3) every successor is placed only after all its
// parents' completion events, each blocked job emits exactly one
// job_ready, and ready jobs released mid-run land in a later batch.
func TestDAGReleaseFlow(t *testing.T) {
	jobs := []*grid.Job{
		{ID: 0, Arrival: 0, Workload: 50, Nodes: 1, SecurityDemand: 0.6},
		{ID: 1, Arrival: 1, Workload: 30, Nodes: 1, SecurityDemand: 0.6, DependsOn: []int{0}},
		{ID: 2, Arrival: 1, Workload: 40, Nodes: 1, SecurityDemand: 0.6, DependsOn: []int{0}},
		{ID: 3, Arrival: 2, Workload: 20, Nodes: 1, SecurityDemand: 0.6, DependsOn: []int{1, 2}},
	}
	deps := map[int][]int{1: {0}, 2: {0}, 3: {1, 2}}

	var events []sched.EngineEvent
	res := dagRun(t, jobs, &events)
	if res.Summary.Jobs != 4 {
		t.Fatalf("completed %d jobs, want 4", res.Summary.Jobs)
	}

	completedAt := map[int]float64{}
	readyCount := map[int]int{}
	for _, ev := range events {
		switch ev.Kind {
		case sched.EventReady:
			readyCount[ev.Job.ID]++
			if ev.Site != -1 {
				t.Fatalf("job_ready for job %d carries site %d, want -1", ev.Job.ID, ev.Site)
			}
		case sched.EventPlaced:
			for _, p := range deps[ev.Job.ID] {
				done, ok := completedAt[p]
				if !ok {
					t.Fatalf("job %d placed at t=%v before parent %d completed", ev.Job.ID, ev.Time, p)
				}
				if ev.Time < done {
					t.Fatalf("job %d placed at t=%v, parent %d completed at t=%v", ev.Job.ID, ev.Time, p, done)
				}
			}
		case sched.EventCompleted:
			completedAt[ev.Job.ID] = ev.Time
		}
	}
	for id := range deps {
		if readyCount[id] != 1 {
			t.Fatalf("job %d emitted %d job_ready events, want 1", id, readyCount[id])
		}
	}
	if readyCount[0] != 0 {
		t.Fatal("dependency-free job emitted job_ready")
	}
	// The diamond serializes across batch rounds: 0 in the t=10 round,
	// 1 and 2 after it, 3 last — at least three dispatch rounds.
	if res.Batches < 3 {
		t.Fatalf("diamond ran in %d batches, want >= 3", res.Batches)
	}
}

// TestDAGRunRejectsMalformedEdges: config validation refuses cycles and
// dangling references before the simulation starts.
func TestDAGRunRejectsMalformedEdges(t *testing.T) {
	base := func() []*grid.Job {
		return []*grid.Job{
			{ID: 0, Arrival: 0, Workload: 10, Nodes: 1, SecurityDemand: 0.6},
			{ID: 1, Arrival: 0, Workload: 10, Nodes: 1, SecurityDemand: 0.6},
		}
	}
	cases := []struct {
		name string
		warp func([]*grid.Job)
	}{
		{"cycle", func(js []*grid.Job) {
			js[0].DependsOn = []int{1}
			js[1].DependsOn = []int{0}
		}},
		{"dangling", func(js []*grid.Job) { js[1].DependsOn = []int{99} }},
		{"self", func(js []*grid.Job) { js[1].DependsOn = []int{1} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			jobs := base()
			tc.warp(jobs)
			_, err := sched.Run(sched.RunConfig{
				Jobs:          jobs,
				Sites:         []*grid.Site{{ID: 0, Speed: 1, Nodes: 1, SecurityLevel: 1.0}},
				Scheduler:     heuristics.NewMinMin(grid.SecurePolicy()),
				BatchInterval: 10,
				Security:      grid.NewSecurityModel(),
				Rand:          rng.New(1),
			})
			if err == nil {
				t.Fatalf("Run accepted %s workload", tc.name)
			}
		})
	}
}

// TestDrainReportsBlockedJobs: an online submission depending on a job
// that never arrives leaves the child in the blocked pen, and Drain
// names the stall instead of hanging or silently dropping the job.
func TestDrainReportsBlockedJobs(t *testing.T) {
	o, err := sched.NewOnline(sched.RunConfig{
		Sites:         []*grid.Site{{ID: 0, Speed: 1, Nodes: 1, SecurityLevel: 1.0}},
		Scheduler:     heuristics.NewMinMin(grid.SecurePolicy()),
		BatchInterval: 10,
		Security:      grid.NewSecurityModel(),
		Rand:          rng.New(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.SubmitLocal(&grid.Job{ID: 5, Workload: 10, Nodes: 1, SecurityDemand: 0.6, DependsOn: []int{4}}); err != nil {
		t.Fatal(err)
	}
	_, err = o.Drain()
	if err == nil || !strings.Contains(err.Error(), "blocked on dependencies") {
		t.Fatalf("Drain error = %v, want blocked-dependency diagnosis", err)
	}
}

// TestDeadlineMissAccounting: completion past a job's deadline marks
// the record and increments the summary counter; met and unset
// deadlines do not.
func TestDeadlineMissAccounting(t *testing.T) {
	// One unit-speed site, batch at t=10: job 0 runs [10,60], job 1
	// [60,70]. Deadlines straddle those completions.
	jobs := []*grid.Job{
		{ID: 0, Arrival: 0, Workload: 50, Nodes: 1, SecurityDemand: 0.6, Deadline: 100},
		{ID: 1, Arrival: 0, Workload: 10, Nodes: 1, SecurityDemand: 0.6, Deadline: 65},
		{ID: 2, Arrival: 0, Workload: 10, Nodes: 1, SecurityDemand: 0.6},
	}
	res, err := sched.Run(sched.RunConfig{
		Jobs:          jobs,
		Sites:         []*grid.Site{{ID: 0, Speed: 1, Nodes: 1, SecurityLevel: 1.0}},
		Scheduler:     &fifoOrderScheduler{},
		BatchInterval: 10,
		Security:      grid.NewSecurityModel(),
		Rand:          rng.New(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.NDeadlineMiss != 1 {
		t.Fatalf("NDeadlineMiss = %d, want 1", res.Summary.NDeadlineMiss)
	}
	miss := map[int]bool{}
	for _, r := range res.Records {
		miss[r.ID] = r.MissedDeadline
	}
	if miss[0] || !miss[1] || miss[2] {
		t.Fatalf("per-record miss flags = %v, want only job 1", miss)
	}
}

// fifoOrderScheduler places jobs on site 0 in batch order (the sched_test
// twin of the internal fifoScheduler).
type fifoOrderScheduler struct{}

func (f *fifoOrderScheduler) Name() string { return "FIFO" }
func (f *fifoOrderScheduler) Schedule(batch []*grid.Job, st *sched.State) []sched.Assignment {
	out := make([]sched.Assignment, len(batch))
	for i, j := range batch {
		out[i] = sched.Assignment{Job: j, Site: 0}
	}
	return out
}

// dagParityConfig is the durable engine configuration the DAG crash
// parity test restores into — RankMinMin so the rank-install path runs
// on every round after edges appear.
func dagParityConfig(events *[]string) sched.RunConfig {
	return sched.RunConfig{
		Sites: []*grid.Site{
			{ID: 0, Speed: 10, Nodes: 4, SecurityLevel: 0.95},
			{ID: 1, Speed: 20, Nodes: 8, SecurityLevel: 0.55},
		},
		Scheduler:      heuristics.NewRankMinMin(grid.FRiskyPolicy(0.5)),
		BatchInterval:  100,
		Rand:           rng.New(21),
		Security:       grid.NewSecurityModel(),
		Durable:        true,
		DiscardRecords: true,
		OnEvent:        func(ev sched.EngineEvent) { *events = append(*events, snapLine(ev)) },
	}
}

// TestDAGSnapshotRestoreParity extends the recovery contract to
// dependent workloads: cutting a run while jobs sit in the blocked pen
// and restoring from the JSON round-tripped snapshot reproduces the
// uninterrupted event stream exactly — including release order and the
// rank-driven placements that follow.
func TestDAGSnapshotRestoreParity(t *testing.T) {
	gen, err := dag.Generate(rng.New(4242), dag.GenConfig{
		Jobs: 60, Width: 4, EdgeProb: 0.6, Rate: 1.0 / 20,
		WorkloadStep: 40, Levels: 12, Slack: 2, MeanSpeed: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 2600.0

	var want []string
	{
		o, err := sched.NewOnline(dagParityConfig(&want))
		if err != nil {
			t.Fatal(err)
		}
		next := 0
		dagDrive(t, o, gen, &next, 0, horizon)
		if _, err := o.Drain(); err != nil {
			t.Fatal(err)
		}
	}

	for cut := 200.0; cut < horizon; cut += 400 {
		cut := cut
		t.Run(fmt.Sprintf("cut=%v", cut), func(t *testing.T) {
			var got []string
			o, err := sched.NewOnline(dagParityConfig(&got))
			if err != nil {
				t.Fatal(err)
			}
			next := 0
			dagDrive(t, o, gen, &next, 0, cut)
			snap, err := o.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			blob, err := json.Marshal(snap)
			if err != nil {
				t.Fatal(err)
			}
			var back sched.EngineSnapshot
			if err := json.Unmarshal(blob, &back); err != nil {
				t.Fatal(err)
			}

			r, err := sched.RestoreOnline(dagParityConfig(&got), &back)
			if err != nil {
				t.Fatal(err)
			}
			dagDrive(t, r, gen, &next, cut, horizon)
			if _, err := r.Drain(); err != nil {
				t.Fatal(err)
			}

			if len(got) != len(want) {
				t.Fatalf("recovered run emitted %d events, uninterrupted run %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("event %d diverged after cut at t=%v:\n  got  %s\n  want %s", i, cut, got[i], want[i])
				}
			}
		})
	}
}

// dagDrive mirrors snapDrive on the 100-tick grid of dagParityConfig.
func dagDrive(t *testing.T, o *sched.Online, jobs []*grid.Job, next *int, from, to float64) {
	t.Helper()
	for tick := from + 100; tick <= to+1e-9; tick += 100 {
		for *next < len(jobs) && jobs[*next].Arrival <= tick {
			if err := o.SubmitLocal(jobs[*next]); err != nil {
				t.Fatal(err)
			}
			*next++
		}
		if err := o.AdvanceTo(tick); err != nil {
			t.Fatal(err)
		}
	}
}
