package sched

import (
	"fmt"

	"trustgrid/internal/grid"
	"trustgrid/internal/sched/kernel"
)

// State is the scheduler-visible grid state at a scheduling event.
type State struct {
	// Now is the current simulation time.
	Now float64
	// Sites is the site list. On static runs it is immutable; on dynamic
	// grids (RunConfig.Dynamics) the engine refreshes SecurityLevel and
	// Speed between batches, so schedulers always see the live trust and
	// capacity vectors.
	Sites []*grid.Site
	// Ready[i] is the earliest time site i becomes free given everything
	// dispatched so far. Schedulers read it; the Engine owns it.
	Ready []float64
	// Alive[i] reports whether site i is in service. Nil means every
	// site is up (static runs). Schedulers must not dispatch to a dead
	// site; use EligibleSites, which folds liveness into admission.
	Alive []bool
	// Kern is the columnar snapshot of the current batch. The engine
	// builds it once per Δ-round; schedulers obtain it through Snapshot,
	// which falls back to building one lazily when the state was
	// constructed by hand (tests, Train). The snapshot's eligibility
	// cache is shared by everything scheduling the same batch — the
	// STGA's Min-Min/Sufferage seeding reuses the sets the GA's allowed
	// genes are built from.
	Kern *kernel.Snapshot
}

// Snapshot returns the columnar view of this batch, building and
// caching it on first use. The batch must be the exact slice the
// engine passed to Scheduler.Schedule.
func (st *State) Snapshot(batch []*grid.Job) *kernel.Snapshot {
	if st.Kern == nil || !st.Kern.ForBatch(batch) {
		st.Kern = kernel.Build(st.Now, st.Sites, st.Ready, st.Alive, batch)
	}
	return st.Kern
}

// SiteAlive reports whether site i is in service.
func (st *State) SiteAlive(i int) bool { return st.Alive == nil || st.Alive[i] }

// EligibleSites returns the indices of in-service sites the policy
// admits for job j. If none qualify it falls back to the max-SL site
// among the live ones (fellBack = true); with no site alive at all —
// which the engine never lets a batch see — it degrades to the global
// max-SL site so the API stays total. Schedulers should call this
// rather than Policy.EligibleSites, which is liveness-blind.
func (st *State) EligibleSites(p grid.Policy, j *grid.Job) (idx []int, fellBack bool) {
	if st.Alive == nil {
		return p.EligibleSites(j, st.Sites)
	}
	idx = make([]int, 0, len(st.Sites))
	bestLive, bestLevel := -1, -1.0
	for i, s := range st.Sites {
		if !st.Alive[i] {
			continue
		}
		if s.SecurityLevel > bestLevel {
			bestLive, bestLevel = i, s.SecurityLevel
		}
		if p.Admits(j, s) {
			idx = append(idx, i)
		}
	}
	if len(idx) > 0 {
		return idx, false
	}
	if bestLive >= 0 {
		return []int{bestLive}, true
	}
	_, best := grid.MaxSecurityLevel(st.Sites)
	return []int{best}, true
}

// CompletionTime returns max(Now, Ready[site]) + ETC(job, site), the
// quantity Min-Min/Sufferage minimize — the paper's "expected time to
// complete" includes the site's availability.
func (st *State) CompletionTime(j *grid.Job, site int) float64 {
	start := st.Ready[site]
	if st.Now > start {
		start = st.Now
	}
	return start + st.Sites[site].ExecTime(j)
}

// Assignment maps one job to one site for immediate dispatch.
type Assignment struct {
	Job  *grid.Job
	Site int
	// FellBack records that no site satisfied the job's policy and the
	// max-SL fallback was used (cannot happen on feasible platforms).
	FellBack bool
}

// Scheduler maps a batch of queued jobs onto sites. Implementations must
// return exactly one assignment per job and must not mutate st.Ready
// (they may copy it to simulate their own dispatch sequence).
type Scheduler interface {
	// Name identifies the algorithm in reports (e.g. "Min-Min Secure").
	Name() string
	// Schedule assigns every job in the batch. The batch slice is owned
	// by the caller; implementations must not retain it.
	Schedule(batch []*grid.Job, st *State) []Assignment
}

// StatefulScheduler is a Scheduler whose decisions depend on mutable
// cross-batch state — the STGA's history table and GA stream, Random's
// stream. Online.Snapshot captures that state and RestoreOnline feeds
// it back, so a recovered engine's future placements match the
// uninterrupted run's. Stateless schedulers (Min-Min, Sufferage, MCT,
// MET, OLB) need not implement it.
type StatefulScheduler interface {
	Scheduler
	// SaveState serializes the cross-batch decision state.
	SaveState() ([]byte, error)
	// RestoreState replaces the cross-batch decision state with a saved
	// one. The scheduler must have been constructed with the same
	// configuration that produced the blob.
	RestoreState([]byte) error
}

// ValidateAssignments checks the scheduling contract: every batch job
// assigned exactly once, site indices in range. Used by tests and the
// engine's debug mode.
func ValidateAssignments(batch []*grid.Job, as []Assignment, numSites int) error {
	if len(as) != len(batch) {
		return fmt.Errorf("sched: %d assignments for %d jobs", len(as), len(batch))
	}
	seen := make(map[int]bool, len(batch))
	inBatch := make(map[int]bool, len(batch))
	for _, j := range batch {
		inBatch[j.ID] = true
	}
	for _, a := range as {
		if a.Job == nil {
			return fmt.Errorf("sched: assignment with nil job")
		}
		if !inBatch[a.Job.ID] {
			return fmt.Errorf("sched: job %d not in batch", a.Job.ID)
		}
		if seen[a.Job.ID] {
			return fmt.Errorf("sched: job %d assigned twice", a.Job.ID)
		}
		seen[a.Job.ID] = true
		if a.Site < 0 || a.Site >= numSites {
			return fmt.Errorf("sched: job %d assigned to invalid site %d", a.Job.ID, a.Site)
		}
	}
	return nil
}
