package sched

import (
	"strings"
	"testing"

	"trustgrid/internal/grid"
	"trustgrid/internal/rng"
)

// TestRetryExhaustionFailsRun injects a platform where the only site is
// catastrophically unsafe (P(fail) ≈ 1) so even the must-be-safe
// fallback keeps failing: the engine must abort with a retry error
// rather than loop forever.
func TestRetryExhaustionFailsRun(t *testing.T) {
	sites := []*grid.Site{{ID: 0, Speed: 1, Nodes: 1, SecurityLevel: 0.4}}
	jobs := []*grid.Job{{ID: 0, Workload: 10, Nodes: 1, SecurityDemand: 0.9}}
	_, err := Run(RunConfig{
		Jobs: jobs, Sites: sites,
		Scheduler:     &eligibleScheduler{policy: grid.RiskyPolicy()},
		BatchInterval: 5,
		Security:      grid.SecurityModel{Lambda: 50}, // P(fail) ≈ 1
		Rand:          rng.New(1),
		MaxRetries:    3,
	})
	if err == nil {
		t.Fatal("expected retry-exhaustion error")
	}
	if !strings.Contains(err.Error(), "retries") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestFallbackRecorded verifies the no-eligible-site fallback is counted
// in the summary when a job demands more security than any site offers
// under the secure policy.
func TestFallbackRecorded(t *testing.T) {
	sites := []*grid.Site{
		{ID: 0, Speed: 1, Nodes: 1, SecurityLevel: 0.5},
		{ID: 1, Speed: 1, Nodes: 1, SecurityLevel: 0.7},
	}
	jobs := []*grid.Job{{ID: 0, Workload: 5, Nodes: 1, SecurityDemand: 0.9}}
	res, err := Run(RunConfig{
		Jobs: jobs, Sites: sites,
		Scheduler:     &eligibleScheduler{policy: grid.SecurePolicy()},
		BatchInterval: 5,
		Security:      grid.SecurityModel{Lambda: 0.0001}, // nearly safe
		Rand:          rng.New(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1", res.Summary.Fallbacks)
	}
	// The fallback went to the max-SL site.
	if res.Records[0].Site != 1 {
		t.Fatalf("fallback site %d, want max-SL site 1", res.Records[0].Site)
	}
}

// TestBatchesFireOnGrid verifies scheduling rounds land on multiples of
// the batch interval, per the periodic model of Fig. 1.
func TestBatchesFireOnGrid(t *testing.T) {
	sites := safeSites(1)
	jobs := []*grid.Job{
		{ID: 0, Arrival: 3, Workload: 1, Nodes: 1, SecurityDemand: 0.6},
		{ID: 1, Arrival: 17, Workload: 1, Nodes: 1, SecurityDemand: 0.6},
	}
	res, err := Run(RunConfig{
		Jobs: jobs, Sites: sites, Scheduler: &fifoScheduler{},
		BatchInterval: 10, Rand: rng.New(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Job 0 arrives at 3 → batch at 10 → completes 11.
	// Job 1 arrives at 17 → batch at 20 → completes 21.
	for _, r := range res.Records {
		switch r.ID {
		case 0:
			if r.Start != 10 {
				t.Fatalf("job 0 started at %v, want batch time 10", r.Start)
			}
		case 1:
			if r.Start != 20 {
				t.Fatalf("job 1 started at %v, want batch time 20", r.Start)
			}
		}
	}
}

// TestMaxEventsGuard verifies the runaway protection surfaces as an
// error instead of hanging.
func TestMaxEventsGuard(t *testing.T) {
	sites := safeSites(1)
	jobs := simpleJobs(100, 1, 1)
	_, err := Run(RunConfig{
		Jobs: jobs, Sites: sites, Scheduler: &fifoScheduler{},
		BatchInterval: 1, Rand: rng.New(4), MaxEvents: 10,
	})
	if err == nil {
		t.Fatal("expected MaxEvents error")
	}
}

// TestFailedJobWaitsForNextBatch verifies fail-stop semantics: the
// rescheduled attempt starts at a later scheduling round, not
// immediately.
func TestFailedJobWaitsForNextBatch(t *testing.T) {
	sites := []*grid.Site{
		{ID: 0, Speed: 10, Nodes: 1, SecurityLevel: 0.4},
		{ID: 1, Speed: 1, Nodes: 1, SecurityLevel: 0.95},
	}
	jobs := []*grid.Job{{ID: 0, Workload: 100, Nodes: 1, SecurityDemand: 0.9}}
	// Find a failing seed.
	for seed := uint64(0); seed < 50; seed++ {
		res, err := Run(RunConfig{
			Jobs: jobs, Sites: sites,
			Scheduler:     &eligibleScheduler{policy: grid.RiskyPolicy()},
			BatchInterval: 7, Security: grid.NewSecurityModel(),
			Rand: rng.New(seed),
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Summary.NFail == 1 {
			rec := res.Records[0]
			if rec.Site != 1 {
				t.Fatalf("retried job must run on the safe site, got %d", rec.Site)
			}
			// The successful start must be on the Δ grid (a batch time).
			if rem := rec.Start / 7; rem != float64(int(rem)) {
				t.Fatalf("retry started off the batch grid: %v", rec.Start)
			}
			return
		}
	}
	t.Fatal("no failing seed found")
}
