package sched

import (
	"fmt"
	"sort"

	"trustgrid/internal/dag"
	"trustgrid/internal/grid"
	"trustgrid/internal/metrics"
	"trustgrid/internal/sim"
)

// Online is the incremental form of the simulation engine: the same
// batch loop Run drives to completion, promoted to an open-world API
// where jobs stream in while the clock advances. It backs the trustgridd
// service; Run is a thin wrapper over it, which is what makes recorded
// service traffic byte-replayable through the batch simulator.
//
// Concurrency contract: Submit is safe from any goroutine (it feeds the
// arrival channel); every other method must be called from the single
// goroutine that owns the engine — the "loop goroutine" in service
// terms, or the test body in tests.
type Online struct {
	cfg RunConfig
	st  *engineState
	eng *sim.Engine
	in  *sim.Online
}

// NewOnline builds an incremental engine. cfg.Jobs may be empty; any
// jobs present are pre-loaded exactly as Run would load them (cloned,
// stably sorted by arrival).
func NewOnline(cfg RunConfig) (*Online, error) { return newOnline(cfg, nil) }

// newOnline is the shared construction path of NewOnline and
// RestoreOnline: with snap == nil it starts a fresh run; with a snapshot
// it rebuilds the engine mid-run (clock repositioned, state restored,
// pending events re-scheduled in their original order).
func newOnline(cfg RunConfig, snap *EngineSnapshot) (*Online, error) {
	if err := cfg.check(); err != nil {
		return nil, err
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 50
	}
	if cfg.Security.Lambda == 0 {
		cfg.Security = grid.NewSecurityModel()
	}
	o := &Online{cfg: cfg}
	if cfg.Admission != nil {
		// Copy so SetTenantWeight and later caller-side map mutation
		// cannot race or retroactively change a recorded run's config.
		c := *cfg.Admission
		o.cfg.Admission = &c
	}
	if cfg.Dynamics != nil {
		// Churn and reputation mutate site speed and security level;
		// clone the platform so the caller's sites stay pristine.
		sites := make([]*grid.Site, len(cfg.Sites))
		for i, s := range cfg.Sites {
			c := *s
			sites[i] = &c
		}
		o.cfg.Sites = sites
	}
	o.st = &engineState{
		cfg:         &o.cfg,
		ready:       make([]float64, len(cfg.Sites)),
		busy:        make([]float64, len(cfg.Sites)),
		records:     make([]metrics.JobRecord, 0, len(cfg.Jobs)),
		riskTaken:   make(map[int]bool, len(cfg.Jobs)),
		failed:      make(map[int]bool, len(cfg.Jobs)),
		fellBack:    make(map[int]bool, len(cfg.Jobs)),
		interrupted: make(map[int]int),
		deps:        dag.NewTracker(),
		failRand:    cfg.Rand.Derive("engine/failures"),
		timeRand:    cfg.Rand.Derive("engine/failtime"),
	}
	if o.cfg.Durable {
		o.st.attempts = make(map[*attempt]struct{})
		o.st.pendArr = make(map[*grid.Job]pendingArrival)
	}
	if o.cfg.Admission != nil {
		o.st.adm = newAdmState(o.cfg.Admission)
	}
	o.eng = sim.NewEngine()
	if snap != nil {
		// Reposition the (still empty) engine at the snapshot's clock so
		// everything re-scheduled below lands exactly where the saved run
		// stood.
		if err := o.eng.RestoreClock(snap.Now, snap.Executed); err != nil {
			return nil, err
		}
	}
	if cfg.MaxEvents > 0 {
		o.eng.MaxEvents = cfg.MaxEvents
	}
	o.in = sim.NewOnline(o.eng, cfg.SubmitBuffer)

	if o.cfg.Dynamics != nil {
		dyn, err := newDynState(o.cfg.Dynamics, o.cfg.Sites)
		if err != nil {
			return nil, err
		}
		o.st.dyn = dyn
		// Schedule churn ahead of the job preload so that at equal
		// timestamps churn applies before arrivals — the same relative
		// order the daemon path sees, where arrivals are always injected
		// after construction. On restore, only the churn still ahead of
		// the snapshot clock goes back on the queue; because churn is
		// scheduled before anything else ever is, its sequence numbers
		// are below every runtime event's and scheduling it first here
		// reproduces the original tie-break order.
		for _, ev := range o.cfg.Dynamics.Churn {
			if snap != nil && ev.Time <= snap.Now {
				continue
			}
			ev := ev
			o.eng.Schedule(ev.Time, sim.EventFunc(func(e *sim.Engine) { o.st.applyChurn(e, ev) }))
		}
	}

	if snap != nil {
		if err := o.restore(snap); err != nil {
			return nil, err
		}
		return o, nil
	}
	jobs := grid.CloneAll(cfg.Jobs)
	sort.SliceStable(jobs, func(i, k int) bool { return jobs[i].Arrival < jobs[k].Arrival })
	for _, j := range jobs {
		j := j
		o.eng.Schedule(j.Arrival, sim.EventFunc(func(e *sim.Engine) { o.admit(e, j) }))
		if o.cfg.Durable {
			o.st.pendArr[j] = pendingArrival{at: j.Arrival, seq: o.eng.LastSeq()}
		}
	}
	return o, nil
}

// admit runs at a job's arrival timestamp: grow the runaway guard to
// cover the job, then hand it to the batch loop.
func (o *Online) admit(e *sim.Engine, j *grid.Job) {
	if o.cfg.MaxEvents == 0 {
		guard := 200*uint64(o.st.seen+1) + 10000
		if o.cfg.Dynamics != nil {
			// Churn events and the empty rounds an outage re-arms also
			// draw from the budget.
			guard += 2 * uint64(len(o.cfg.Dynamics.Churn))
		}
		o.eng.MaxEvents = guard
	}
	o.st.arrive(e, j)
}

// Submit clones j and injects it into the running simulation. Safe from
// any goroutine; blocks for backpressure when the arrival buffer is
// full. The job's Arrival is a lower bound: if the clock has passed it
// by the time the arrival is ingested, it is clamped to the clock.
func (o *Online) Submit(j *grid.Job) error {
	if err := j.Validate(); err != nil {
		return err
	}
	c := j.Clone()
	o.in.Inject(c.Arrival, sim.EventFunc(func(e *sim.Engine) { o.admit(e, c) }))
	return nil
}

// SubmitOr is Submit with an abort signal: if done closes before the
// arrival buffer accepts the job, the job is dropped and an error
// returned. The HTTP layer passes its loop-exit channel so submitters
// cannot wedge on a stopped engine.
func (o *Online) SubmitOr(done <-chan struct{}, j *grid.Job) error {
	if err := j.Validate(); err != nil {
		return err
	}
	c := j.Clone()
	if !o.in.InjectOr(done, c.Arrival, sim.EventFunc(func(e *sim.Engine) { o.admit(e, c) })) {
		return fmt.Errorf("sched: engine stopped")
	}
	return nil
}

// SubmitLocal ingests a job directly onto the engine's event queue,
// bypassing the arrival channel and its capacity. Loop goroutine only —
// it is what manual-mode replay uses so a trace larger than the channel
// buffer cannot deadlock a client that drives the clock itself.
// Ordering matches Submit: arrivals execute in (timestamp, ingestion
// order).
func (o *Online) SubmitLocal(j *grid.Job) error {
	if err := j.Validate(); err != nil {
		return err
	}
	c := j.Clone()
	at := j.Arrival
	if at < o.eng.Now() {
		at = o.eng.Now()
	}
	o.eng.Schedule(at, sim.EventFunc(func(e *sim.Engine) { o.admit(e, c) }))
	if o.cfg.Durable {
		o.st.pendArr[c] = pendingArrival{at: at, seq: o.eng.LastSeq()}
	}
	return nil
}

// AdvanceTo ingests buffered arrivals and executes the simulation up to
// virtual time t, leaving the clock at t. Loop goroutine only.
func (o *Online) AdvanceTo(t float64) error { return o.in.AdvanceTo(t) }

// Drain alternates between ingesting arrivals and running the engine
// until everything submitted so far has completed, then returns the
// aggregated result. The engine stays usable: more jobs may be submitted
// and the clock advanced further afterwards. Loop goroutine only.
func (o *Online) Drain() (*Result, error) {
	if err := o.in.RunAll(); err != nil {
		return nil, err
	}
	if o.st.remaining != 0 {
		if b := o.st.deps.BlockedCount(); b > 0 {
			return nil, fmt.Errorf("sched: simulation drained with %d jobs incomplete (%d blocked on dependencies that never completed)", o.st.remaining, b)
		}
		return nil, fmt.Errorf("sched: simulation drained with %d jobs incomplete", o.st.remaining)
	}
	return o.Result()
}

// Summary returns the incremental §4.1 summary over everything
// completed so far. O(sites) — cheap enough for a metrics endpoint to
// poll, and the only summary available under DiscardRecords. Loop
// goroutine only.
func (o *Online) Summary() metrics.Summary {
	return o.st.acc.Summarize(o.st.busy)
}

// Result aggregates the metrics over everything completed so far. Loop
// goroutine only.
func (o *Online) Result() (*Result, error) {
	var summary metrics.Summary
	if o.cfg.DiscardRecords {
		summary = o.Summary()
	} else {
		var err error
		summary, err = metrics.Compute(o.st.records, o.st.busy)
		if err != nil {
			return nil, err
		}
	}
	return &Result{
		Summary:       summary,
		Records:       o.st.records,
		Batches:       o.st.batches,
		Events:        o.eng.Executed(),
		SchedulerTime: o.st.schedTime,
		LargestBatch:  o.st.largest,
	}, nil
}

// SetTenantWeight sets (or updates) a tenant's fair-share weight for
// deficit-round-robin batch formation. Loop goroutine only. Weights are
// part of the determinism contract: for a replayable run, set them
// before the tenant's first arrival is ingested (the daemon registers
// tenants up front, and the batch simulator takes the same vector in
// AdmissionConfig.Weights). A non-positive weight is treated as 1 at
// scheduling time. No-op on engines built without RunConfig.Admission —
// without a round budget there is nothing for a weight to share.
func (o *Online) SetTenantWeight(tenant string, weight float64) {
	if o.st.adm == nil {
		return
	}
	o.st.adm.weights[tenant] = weight
}

// SetEventSink installs (or replaces) the engine's event observer
// after construction — how the coordinator wires its per-shard
// remap-and-buffer closures. Events only fire while the engine
// executes, so calling this between construction and the next
// AdvanceTo/Drain on the driving goroutine is race-free. Loop goroutine
// only.
func (o *Online) SetEventSink(fn func(EngineEvent)) { o.cfg.OnEvent = fn }

// MetricsState exposes the incremental §4.1 accumulator state and the
// per-site busy vector for cross-shard aggregation (the returned slice
// is the engine's own — read only, loop goroutine only).
func (o *Online) MetricsState() (metrics.AccumulatorState, []float64) {
	return o.st.acc.State(), o.st.busy
}

// Now returns the current virtual time. Loop goroutine only.
func (o *Online) Now() float64 { return o.eng.Now() }

// Backlog returns the number of submitted jobs not yet ingested from the
// arrival channel. Safe from any goroutine.
func (o *Online) Backlog() int { return o.in.Backlog() }

// Seen returns how many jobs have arrived (been ingested) so far. Loop
// goroutine only.
func (o *Online) Seen() int { return o.st.seen }

// InFlight returns how many ingested jobs have not yet completed. Loop
// goroutine only.
func (o *Online) InFlight() int { return o.st.remaining }

// Batches returns the number of scheduling rounds that dispatched jobs.
// Loop goroutine only.
func (o *Online) Batches() int { return o.st.batches }

// LargestBatch returns the maximum batch size scheduled in one round.
// Loop goroutine only.
func (o *Online) LargestBatch() int { return o.st.largest }
