package sched

import (
	"fmt"

	"trustgrid/internal/grid"
)

// AdmissionConfig bounds how many jobs one Δ-round may admit and how the
// budget is shared between tenants when the backlog exceeds it. It is
// the engine-level half of the service's multi-tenant API: the server
// enforces per-tenant queue quotas (429) at the HTTP layer, while batch
// formation here decides which queued jobs enter the next round.
//
// With RoundBudget <= 0 (or a backlog within the budget) behavior is
// bit-identical to the original engine: the whole queue is scheduled in
// arrival order. When the backlog exceeds the budget, jobs are admitted
// in weighted deficit-round-robin order: each rationed round every
// backlogged tenant earns RoundBudget·wᵗ/Σw credit, and jobs are popped
// one at a time from the tenant with the largest accumulated deficit
// (ties broken by first-arrival order of the tenants). Unused credit
// carries over, so long-run placement shares converge to the weight
// vector under saturation; a tenant whose backlog empties — at the
// start of a rationed round or during its service — forfeits its
// balance (the classic DRR empty-queue rule, which keeps the deficit a
// bounded fairness corrector rather than a bankable currency).
//
// Everything here is a pure function of the arrival sequence and the
// config, so a recorded multi-tenant trace replays byte-identically
// through the batch simulator (the parity contract of DESIGN.md §6).
type AdmissionConfig struct {
	// RoundBudget is the maximum number of jobs one scheduling round may
	// admit; 0 means unlimited (the original single-tenant behavior).
	RoundBudget int
	// Weights maps tenant ID to fair-share weight. Missing tenants (and
	// non-positive entries) weigh 1. The engine copies the map, so later
	// mutation by the caller has no effect; use Online.SetTenantWeight
	// to change a weight on a running engine.
	Weights map[string]float64
}

func (c *AdmissionConfig) check() error {
	if c.RoundBudget < 0 {
		return fmt.Errorf("sched: negative round budget %d", c.RoundBudget)
	}
	for t, w := range c.Weights {
		if w < 0 {
			return fmt.Errorf("sched: tenant %q has negative weight %v", t, w)
		}
	}
	return nil
}

// admState is the engine's fair-share batch former.
type admState struct {
	budget  int
	weights map[string]float64
	deficit map[string]float64
	// order lists tenants by first arrival — the deterministic
	// tie-break and iteration order (map iteration would not replay).
	order []string
	seen  map[string]bool

	// scratch reused across rounds.
	perTenant map[string][]*grid.Job
	backlog   []string
}

func newAdmState(cfg *AdmissionConfig) *admState {
	a := &admState{
		budget:    cfg.RoundBudget,
		weights:   make(map[string]float64, len(cfg.Weights)),
		deficit:   make(map[string]float64),
		seen:      make(map[string]bool),
		perTenant: make(map[string][]*grid.Job),
	}
	for t, w := range cfg.Weights {
		a.weights[t] = w
	}
	return a
}

// note registers a tenant the first time one of its jobs arrives, fixing
// the deterministic tie-break order.
func (a *admState) note(tenant string) {
	if !a.seen[tenant] {
		a.seen[tenant] = true
		a.order = append(a.order, tenant)
	}
}

func (a *admState) weight(tenant string) float64 {
	if w := a.weights[tenant]; w > 0 {
		return w
	}
	return 1
}

// form splits the queue into the batch the round admits and the leftover
// that stays queued. Order within a tenant is always FIFO; the admitted
// batch interleaves tenants in deficit order, and the leftover keeps the
// original queue order.
func (a *admState) form(queue []*grid.Job) (batch, leftover []*grid.Job) {
	if a.budget <= 0 || len(queue) <= a.budget {
		return queue, nil
	}
	// Partition by tenant, preserving arrival order. A tenant that
	// somehow bypassed note (defensive; arrive always notes) is added so
	// its jobs cannot be silently dropped.
	for t := range a.perTenant {
		a.perTenant[t] = a.perTenant[t][:0]
	}
	for _, j := range queue {
		a.note(j.Tenant)
		a.perTenant[j.Tenant] = append(a.perTenant[j.Tenant], j)
	}
	a.backlog = a.backlog[:0]
	var wsum float64
	for _, t := range a.order {
		if len(a.perTenant[t]) > 0 {
			a.backlog = append(a.backlog, t)
			wsum += a.weight(t)
		} else {
			// Idle tenants forfeit their balance: credit is a share of
			// *this* round's budget, not a bankable currency.
			delete(a.deficit, t)
		}
	}
	for _, t := range a.backlog {
		a.deficit[t] += float64(a.budget) * a.weight(t) / wsum
	}

	batch = make([]*grid.Job, 0, a.budget)
	for len(batch) < a.budget {
		best, bestD := "", 0.0
		found := false
		for _, t := range a.backlog {
			if len(a.perTenant[t]) == 0 {
				continue
			}
			if !found || a.deficit[t] > bestD {
				best, bestD, found = t, a.deficit[t], true
			}
		}
		if !found {
			break // fewer queued jobs than budget (cannot happen: guarded above)
		}
		q := a.perTenant[best]
		batch = append(batch, q[0])
		a.perTenant[best] = q[1:]
		if len(q) == 1 {
			// The tenant got everything it wanted this round: zero the
			// balance (the classic DRR empty-queue rule). Without this a
			// never-idle but under-demanding tenant would bank credit
			// round after round and later burst past everyone.
			a.deficit[best] = 0
		} else {
			a.deficit[best]--
		}
	}

	// Bound the carryover to one round's credit (at least ±1 so small
	// weights keep their fractional carry). The positive side limits
	// banking beyond the empty-queue reset above; the negative side
	// forgives debt a tenant ran up serving surplus that others forfeited
	// — without it, a perpetually over-served tenant sinks without bound
	// and a later fair claim by anyone else turns into a monopoly burst.
	for _, t := range a.backlog {
		cap := float64(a.budget) * a.weight(t) / wsum
		if cap < 1 {
			cap = 1
		}
		if d := a.deficit[t]; d > cap {
			a.deficit[t] = cap
		} else if d < -cap {
			a.deficit[t] = -cap
		}
	}

	admitted := make(map[*grid.Job]bool, len(batch))
	for _, j := range batch {
		admitted[j] = true
	}
	leftover = make([]*grid.Job, 0, len(queue)-len(batch))
	for _, j := range queue {
		if !admitted[j] {
			leftover = append(leftover, j)
		}
	}
	return batch, leftover
}
