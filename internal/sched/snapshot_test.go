package sched_test

import (
	"encoding/json"
	"fmt"
	"testing"

	"trustgrid/internal/fuzzy"
	"trustgrid/internal/grid"
	"trustgrid/internal/heuristics"
	"trustgrid/internal/rng"
	"trustgrid/internal/sched"
)

// snapLine renders an engine event to a comparable line. Every field
// that distinguishes a placement or outcome is included, so two runs
// with equal traces made byte-identical decisions.
func snapLine(ev sched.EngineEvent) string {
	return fmt.Sprintf("%d t=%v job=%d site=%d start=%v finish=%v risky=%v fb=%v lvl=%v spd=%v",
		ev.Kind, ev.Time, ev.Job.ID, ev.Site, ev.Start, ev.Finish,
		ev.Risky, ev.FellBack, ev.Level, ev.Speed)
}

// snapWorkload builds a two-tenant open workload with arrivals spread
// over [0, 2500] and demands hot enough to exercise the risky path.
func snapWorkload(n int) []*grid.Job {
	r := rng.New(1234)
	jobs := make([]*grid.Job, n)
	at := 0.0
	for i := range jobs {
		at += r.Exp(1.0 / 30)
		tenant := "acme"
		if i%3 == 0 {
			tenant = "umbrella"
		}
		jobs[i] = &grid.Job{
			ID: i, Tenant: tenant, Arrival: at,
			Workload: 50 * float64(r.Level(20)), Nodes: 1,
			SecurityDemand: r.Uniform(0.6, 0.9),
		}
	}
	return jobs
}

// snapConfig builds a maximal configuration — churn, reputation
// feedback, ground-truth divergence, fair-share admission, a stateful
// scheduler — freshly each call, so restored engines are constructed
// exactly as the original was.
func snapConfig(events *[]string) sched.RunConfig {
	rep := fuzzy.DefaultReputationConfig()
	return sched.RunConfig{
		Sites: []*grid.Site{
			{ID: 0, Speed: 10, Nodes: 8, SecurityLevel: 0.95},
			{ID: 1, Speed: 20, Nodes: 16, SecurityLevel: 0.5},
			{ID: 2, Speed: 5, Nodes: 4, SecurityLevel: 0.8},
		},
		Scheduler:      heuristics.NewRandom(grid.FRiskyPolicy(0.5), rng.New(77).Derive("random")),
		BatchInterval:  300,
		Rand:           rng.New(9),
		Durable:        true,
		DiscardRecords: true,
		Dynamics: &sched.DynamicsConfig{
			Churn: []grid.ChurnEvent{
				{Time: 700, Site: 1, Kind: grid.ChurnCrash},
				{Time: 1000, Site: 2, Kind: grid.ChurnDegrade, Factor: 0.5},
				{Time: 1600, Site: 1, Kind: grid.ChurnJoin},
				{Time: 2200, Site: 2, Kind: grid.ChurnRestore},
			},
			Reputation: &rep,
			TrueLevels: []float64{0.7, 0.5, 0.8},
		},
		Admission: &sched.AdmissionConfig{
			RoundBudget: 4,
			Weights:     map[string]float64{"acme": 2, "umbrella": 1},
		},
		OnEvent: func(ev sched.EngineEvent) { *events = append(*events, snapLine(ev)) },
	}
}

// snapDrive advances the engine tick by tick through [from+Δ, to],
// submitting each job just before the tick that covers its arrival —
// the deterministic submission protocol both the reference run and the
// recovered runs follow. next is the index of the first unsubmitted job.
func snapDrive(t *testing.T, o *sched.Online, jobs []*grid.Job, next *int, from, to float64) {
	t.Helper()
	for tick := from + 300; tick <= to+1e-9; tick += 300 {
		for *next < len(jobs) && jobs[*next].Arrival <= tick {
			if err := o.SubmitLocal(jobs[*next]); err != nil {
				t.Fatal(err)
			}
			*next++
		}
		if err := o.AdvanceTo(tick); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSnapshotRestoreParity is the engine-level recovery contract: at
// every tick boundary, snapshotting and rebuilding a fresh engine from
// the (JSON round-tripped) snapshot yields exactly the event trace the
// uninterrupted run produces — same placements, times, failure draws,
// churn effects and reputation updates.
func TestSnapshotRestoreParity(t *testing.T) {
	jobs := snapWorkload(80)
	const horizon = 3000.0

	var want []string
	{
		cfg := snapConfig(&want)
		o, err := sched.NewOnline(cfg)
		if err != nil {
			t.Fatal(err)
		}
		next := 0
		snapDrive(t, o, jobs, &next, 0, horizon)
		if _, err := o.Drain(); err != nil {
			t.Fatal(err)
		}
	}

	for cut := 300.0; cut < horizon; cut += 300 {
		cut := cut
		t.Run(fmt.Sprintf("cut=%v", cut), func(t *testing.T) {
			var got []string
			cfg := snapConfig(&got)
			o, err := sched.NewOnline(cfg)
			if err != nil {
				t.Fatal(err)
			}
			next := 0
			snapDrive(t, o, jobs, &next, 0, cut)
			snap, err := o.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			// Round-trip through JSON: the daemon persists snapshots as
			// documents, so the serialized form must be lossless.
			blob, err := json.Marshal(snap)
			if err != nil {
				t.Fatal(err)
			}
			var back sched.EngineSnapshot
			if err := json.Unmarshal(blob, &back); err != nil {
				t.Fatal(err)
			}

			cfg2 := snapConfig(&got)
			r, err := sched.RestoreOnline(cfg2, &back)
			if err != nil {
				t.Fatal(err)
			}
			if r.Now() != cut {
				t.Fatalf("restored clock at %v, snapshot taken at %v", r.Now(), cut)
			}
			snapDrive(t, r, jobs, &next, cut, horizon)
			if _, err := r.Drain(); err != nil {
				t.Fatal(err)
			}

			if len(got) != len(want) {
				t.Fatalf("recovered run emitted %d events, uninterrupted run %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("event %d diverged after cut at t=%v:\n  got  %s\n  want %s", i, cut, got[i], want[i])
				}
			}
		})
	}
}

// TestSnapshotPreconditions: snapshots are only meaningful on durable,
// record-discarding engines.
func TestSnapshotPreconditions(t *testing.T) {
	var sink []string
	cfg := snapConfig(&sink)
	cfg.Durable = false
	o, err := sched.NewOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Snapshot(); err == nil {
		t.Fatal("Snapshot on a non-durable engine did not fail")
	}

	cfg = snapConfig(&sink)
	cfg.DiscardRecords = false
	o, err = sched.NewOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Snapshot(); err == nil {
		t.Fatal("Snapshot with record retention did not fail")
	}
}

// TestRestoreRejectsMismatchedConfig: a snapshot must not silently load
// into an engine whose configuration cannot replay it.
func TestRestoreRejectsMismatchedConfig(t *testing.T) {
	var sink []string
	o, err := sched.NewOnline(snapConfig(&sink))
	if err != nil {
		t.Fatal(err)
	}
	jobs := snapWorkload(20)
	next := 0
	snapDrive(t, o, jobs, &next, 0, 600)
	snap, err := o.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	cfg := snapConfig(&sink)
	cfg.Scheduler = heuristics.NewMinMin(grid.FRiskyPolicy(0.5))
	if _, err := sched.RestoreOnline(cfg, snap); err == nil {
		t.Fatal("restore with a different scheduler did not fail")
	}

	cfg = snapConfig(&sink)
	cfg.Durable = false
	if _, err := sched.RestoreOnline(cfg, snap); err == nil {
		t.Fatal("restore without Durable did not fail")
	}

	cfg = snapConfig(&sink)
	cfg.Jobs = jobs
	if _, err := sched.RestoreOnline(cfg, snap); err == nil {
		t.Fatal("restore with preloaded jobs did not fail")
	}

	cfg = snapConfig(&sink)
	cfg.Dynamics = nil
	if _, err := sched.RestoreOnline(cfg, snap); err == nil {
		t.Fatal("restore without dynamics for a dynamic snapshot did not fail")
	}
}
