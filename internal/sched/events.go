package sched

import "trustgrid/internal/grid"

// EventKind labels a job lifecycle transition reported through
// RunConfig.OnEvent.
type EventKind int

const (
	// EventArrived fires when a job enters the scheduling queue (first
	// submission only; failure re-queues are reported as EventFailed).
	EventArrived EventKind = iota
	// EventPlaced fires when a scheduling round dispatches a job to a
	// site; Start/Finish give the planned execution window.
	EventPlaced
	// EventFailed fires when a risky execution attempt fails (Eq. 1);
	// the job re-queues for strictly safe re-dispatch.
	EventFailed
	// EventCompleted fires when a job finishes successfully.
	EventCompleted
	// EventInterrupted fires when a site crash cuts an execution short
	// (dynamic grids only); the job re-queues with its risk eligibility
	// intact — an infrastructure loss is not a security incident.
	EventInterrupted
	// EventSiteDown fires when a site leaves service (crash or drain).
	// Job is a placeholder with ID −1; Site identifies the site.
	EventSiteDown
	// EventSiteUp fires when a site (re)joins; Level carries its
	// scheduler-visible security level after any cold reputation reset.
	EventSiteUp
	// EventSiteSpeed fires when a site's capacity degrades or restores;
	// Speed carries the new effective speed.
	EventSiteSpeed
	// EventReady fires when the last incomplete dependency of a blocked
	// job completes and the job enters the scheduling queue. Jobs without
	// dependencies never emit it (they are ready at arrival), so
	// edge-free event streams are unchanged. Site is -1.
	EventReady
)

// String returns the wire label used by the service layer.
func (k EventKind) String() string {
	switch k {
	case EventArrived:
		return "arrived"
	case EventPlaced:
		return "placed"
	case EventFailed:
		return "failed"
	case EventCompleted:
		return "completed"
	case EventInterrupted:
		return "interrupted"
	case EventSiteDown:
		return "site_down"
	case EventSiteUp:
		return "site_up"
	case EventSiteSpeed:
		return "site_speed"
	case EventReady:
		return "job_ready"
	default:
		return "unknown"
	}
}

// EngineEvent is one job lifecycle notification. Events are emitted
// synchronously on the goroutine driving the simulation, in deterministic
// order: a recorded Placed stream is byte-reproducible from the same
// arrival trace and seeds (the trace-replay parity contract the service
// layer tests).
type EngineEvent struct {
	Kind EventKind
	// Time is the virtual time of the transition.
	Time float64
	// Job is a snapshot of the job at the transition (its Arrival is the
	// effective, post-clamp arrival time).
	Job grid.Job
	// Site is the target site for Placed/Failed/Completed, -1 for Arrived.
	Site int
	// Start and Finish bound the planned execution window (Placed) or the
	// actual one (Completed). Zero for other kinds.
	Start, Finish float64
	// Risky reports that the placement ran SL < SD (Placed only). On
	// dynamic grids with ground-truth divergence this reflects the true
	// level, not the scheduler's belief.
	Risky bool
	// FellBack reports the no-eligible-site fallback was used (Placed only).
	FellBack bool
	// Level carries a site's scheduler-visible security level for site
	// lifecycle events (SiteDown/SiteUp), and the refreshed estimate on
	// Completed/Failed when reputation feedback is active.
	Level float64
	// Speed carries the new effective site speed (SiteSpeed only).
	Speed float64
}

// emit forwards an event to the configured observer, if any.
func (st *engineState) emit(ev EngineEvent) {
	if st.cfg.OnEvent != nil {
		st.cfg.OnEvent(ev)
	}
}
