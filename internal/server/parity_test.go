package server_test

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"trustgrid/internal/api"
	"trustgrid/internal/client"
	"trustgrid/internal/experiments"
	"trustgrid/internal/fuzzy"
	"trustgrid/internal/grid"
	"trustgrid/internal/rng"
	"trustgrid/internal/sched"
	"trustgrid/internal/server"
)

// placementLine renders one placement with full float precision; two
// runs are "byte-identical" iff their concatenated lines are equal.
func placementLine(b *strings.Builder, job, site int, start, finish float64) {
	fmt.Fprintf(b, "job=%d site=%d start=%.17g finish=%.17g\n", job, site, start, finish)
}

// batchPlacements runs the closed-world simulator (sched.Run, i.e. the
// facade's Simulate) with the exact seed derivation the daemon uses and
// returns the placement stream. adm mirrors the daemon's admission
// config for multi-tenant runs (nil = unlimited single-tenant).
func batchPlacements(t *testing.T, setup experiments.Setup, w *experiments.Workload,
	jobs []*grid.Job, algo string, seed uint64, dyn *sched.DynamicsConfig,
	adm *sched.AdmissionConfig) string {
	t.Helper()
	root := rng.New(seed)
	policy := setup.Policy(grid.FRisky, setup.F)
	sc, err := setup.SchedulerByName(algo, policy, root.Derive("scheduler"), w.Training, w.Sites)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	_, err = sched.Run(sched.RunConfig{
		Jobs: jobs, Sites: w.Sites, Scheduler: sc, BatchInterval: w.Batch,
		Security: setup.Model(), Rand: root.Derive("engine"), Dynamics: dyn,
		Admission: adm,
		OnEvent: func(ev sched.EngineEvent) {
			if ev.Kind == sched.EventPlaced {
				placementLine(&b, ev.Job.ID, ev.Site, ev.Start, ev.Finish)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// daemonPlacements replays the same arrival trace through trustgridd in
// manual-clock mode — tenants registered first, every request through
// the typed client package (the client IS the wire contract; no
// hand-rolled HTTP here) — and returns the placement stream read back
// from the event iterator.
func daemonPlacements(t *testing.T, setup experiments.Setup, w *experiments.Workload,
	jobs []*grid.Job, algo string, seed uint64, dyn *sched.DynamicsConfig,
	tenants []api.TenantSpec, budget int) string {
	t.Helper()
	srv, err := server.New(server.Config{
		Sites: w.Sites, Training: w.Training, Algo: algo, Mode: "frisky",
		BatchInterval: w.Batch, Seed: seed, Setup: setup, Manual: true,
		Dynamics: dyn, Tenants: tenants, RoundBudget: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop(false)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL)
	ctx := context.Background()

	// Submit the recorded trace in arrival order with explicit IDs and
	// arrival stamps (manual mode honors both). Ingestion order is part
	// of the determinism contract, so chunks break at tenant boundaries:
	// consecutive same-tenant runs go to that tenant's endpoint, and the
	// global order the engine sees matches the trace exactly.
	const chunk = 100
	for start := 0; start < len(jobs); {
		tenant := jobs[start].Tenant
		end := start + 1
		for end < len(jobs) && end-start < chunk && jobs[end].Tenant == tenant {
			end++
		}
		specs := make([]api.JobSpec, 0, end-start)
		for _, j := range jobs[start:end] {
			id, arr := j.ID, j.Arrival
			specs = append(specs, api.JobSpec{
				ID: &id, Arrival: &arr, Workload: j.Workload,
				Nodes: j.Nodes, SD: j.SecurityDemand,
			})
		}
		if _, err := c.Submit(ctx, tenant, specs); err != nil {
			t.Fatal(err)
		}
		start = end
	}
	if _, err := c.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	es := c.Events(ctx, client.EventsOptions{Kinds: []string{"placed"}})
	defer es.Close()
	var b strings.Builder
	for {
		ev, err := es.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		placementLine(&b, ev.Job, ev.Site, ev.Start, ev.Finish)
	}
	return b.String()
}

// TestTraceReplayParity is the service determinism contract: the same
// seeded arrival trace pushed through the daemon's HTTP API (manual
// clock) and through the batch simulator produces byte-identical
// placements — for a heuristic and for the history-carrying STGA. CI
// runs this under -race.
func TestTraceReplayParity(t *testing.T) {
	setup := experiments.TestSetup()
	setup.Seed = 7
	const seed = 7
	w, err := setup.PSAWorkload(seed, 240)
	if err != nil {
		t.Fatal(err)
	}
	// The daemon ingests submissions in request order; replay them in
	// the stable arrival order the batch engine uses internally.
	jobs := grid.CloneAll(w.Jobs)
	sort.SliceStable(jobs, func(i, k int) bool { return jobs[i].Arrival < jobs[k].Arrival })

	for _, algo := range []string{"minmin", "stga"} {
		t.Run(algo, func(t *testing.T) {
			want := batchPlacements(t, setup, w, jobs, algo, seed, nil, nil)
			got := daemonPlacements(t, setup, w, jobs, algo, seed, nil, nil, 0)
			if want == "" {
				t.Fatal("batch run produced no placements")
			}
			if got != want {
				t.Fatalf("placement streams differ:\nbatch (%d bytes) vs daemon (%d bytes)\nfirst batch lines:\n%s\nfirst daemon lines:\n%s",
					len(want), len(got), firstLines(want, 5), firstLines(got, 5))
			}
		})
	}

	// The dynamic-grid extension must uphold the same contract: with an
	// identical churn trace, deceptive ground truth and reputation
	// feedback wired into both paths, the daemon still replays the batch
	// simulator byte-for-byte.
	root := rng.New(seed)
	churn, err := grid.DefaultChurnConfig(float64(len(jobs))/0.008).Generate(root.Derive("churn"), len(w.Sites))
	if err != nil {
		t.Fatal(err)
	}
	repCfg := fuzzy.DefaultReputationConfig()
	dyn := &sched.DynamicsConfig{
		Churn:      churn,
		Reputation: &repCfg,
		TrueLevels: grid.DeceptiveLevels(w.Sites, 0.4, 0.4, root.Derive("deceptive")),
	}
	for _, algo := range []string{"minmin", "stga"} {
		t.Run(algo+"-churn", func(t *testing.T) {
			want := batchPlacements(t, setup, w, jobs, algo, seed, dyn, nil)
			got := daemonPlacements(t, setup, w, jobs, algo, seed, dyn, nil, 0)
			if want == "" {
				t.Fatal("batch run produced no placements")
			}
			if got != want {
				t.Fatalf("churn placement streams differ:\nbatch (%d bytes) vs daemon (%d bytes)\nfirst batch lines:\n%s\nfirst daemon lines:\n%s",
					len(want), len(got), firstLines(want, 5), firstLines(got, 5))
			}
		})
	}

	// Multi-tenant parity: three tenants of unequal weight under a
	// round budget small enough that every early round is rationed, so
	// the deficit-round-robin batch former is genuinely on the replayed
	// path. Arrivals are compressed into the first Δ-interval to force a
	// deep backlog.
	const budget = 8
	tenantNames := []string{"gold", "silver", "bronze"}
	weights := map[string]float64{"gold": 4, "silver": 2, "bronze": 1}
	mtJobs := grid.CloneAll(jobs)
	for i, j := range mtJobs {
		j.Tenant = tenantNames[i%len(tenantNames)]
		j.Arrival = math.Mod(j.Arrival, w.Batch)
	}
	sort.SliceStable(mtJobs, func(i, k int) bool { return mtJobs[i].Arrival < mtJobs[k].Arrival })
	tenants := []api.TenantSpec{
		{ID: "gold", Weight: 4},
		{ID: "silver", Weight: 2},
		{ID: "bronze", Weight: 1},
	}
	adm := &sched.AdmissionConfig{RoundBudget: budget, Weights: weights}
	for _, algo := range []string{"minmin", "stga"} {
		t.Run(algo+"-tenants", func(t *testing.T) {
			want := batchPlacements(t, setup, w, mtJobs, algo, seed, nil, adm)
			got := daemonPlacements(t, setup, w, mtJobs, algo, seed, nil, tenants, budget)
			if want == "" {
				t.Fatal("batch run produced no placements")
			}
			if got != want {
				t.Fatalf("multi-tenant placement streams differ:\nbatch (%d bytes) vs daemon (%d bytes)\nfirst batch lines:\n%s\nfirst daemon lines:\n%s",
					len(want), len(got), firstLines(want, 5), firstLines(got, 5))
			}
		})
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
