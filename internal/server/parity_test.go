package server_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"trustgrid/internal/experiments"
	"trustgrid/internal/fuzzy"
	"trustgrid/internal/grid"
	"trustgrid/internal/rng"
	"trustgrid/internal/sched"
	"trustgrid/internal/server"
)

// placementLine renders one placement with full float precision; two
// runs are "byte-identical" iff their concatenated lines are equal.
func placementLine(b *strings.Builder, job, site int, start, finish float64) {
	fmt.Fprintf(b, "job=%d site=%d start=%.17g finish=%.17g\n", job, site, start, finish)
}

// batchPlacements runs the closed-world simulator (sched.Run, i.e. the
// facade's Simulate) with the exact seed derivation the daemon uses and
// returns the placement stream.
func batchPlacements(t *testing.T, setup experiments.Setup, w *experiments.Workload,
	jobs []*grid.Job, algo string, seed uint64, dyn *sched.DynamicsConfig) string {
	t.Helper()
	root := rng.New(seed)
	policy := setup.Policy(grid.FRisky, setup.F)
	sc, err := setup.SchedulerByName(algo, policy, root.Derive("scheduler"), w.Training, w.Sites)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	_, err = sched.Run(sched.RunConfig{
		Jobs: jobs, Sites: w.Sites, Scheduler: sc, BatchInterval: w.Batch,
		Security: setup.Model(), Rand: root.Derive("engine"), Dynamics: dyn,
		OnEvent: func(ev sched.EngineEvent) {
			if ev.Kind == sched.EventPlaced {
				placementLine(&b, ev.Job.ID, ev.Site, ev.Start, ev.Finish)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func requireStatus(t *testing.T, resp *http.Response, want int) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != want {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		t.Fatalf("status %d, want %d: %s", resp.StatusCode, want, buf.String())
	}
}

// daemonPlacements replays the same arrival trace through trustgridd's
// HTTP API in manual-clock mode and returns the placement stream read
// back from /v1/events.
func daemonPlacements(t *testing.T, setup experiments.Setup, w *experiments.Workload,
	jobs []*grid.Job, algo string, seed uint64, dyn *sched.DynamicsConfig) string {
	t.Helper()
	srv, err := server.New(server.Config{
		Sites: w.Sites, Training: w.Training, Algo: algo, Mode: "frisky",
		BatchInterval: w.Batch, Seed: seed, Setup: setup, Manual: true,
		Dynamics: dyn,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop(false)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Submit the recorded trace in arrival order, in chunks, with
	// explicit IDs and arrival stamps (manual mode honors both).
	const chunk = 100
	for start := 0; start < len(jobs); start += chunk {
		end := min(start+chunk, len(jobs))
		specs := make([]server.JobSpec, 0, end-start)
		for _, j := range jobs[start:end] {
			id, arr := j.ID, j.Arrival
			specs = append(specs, server.JobSpec{
				ID: &id, Arrival: &arr, Workload: j.Workload,
				Nodes: j.Nodes, SD: j.SecurityDemand,
			})
		}
		resp := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"jobs": specs})
		requireStatus(t, resp, http.StatusOK)
	}
	resp := postJSON(t, ts.URL+"/v1/drain", map[string]any{})
	requireStatus(t, resp, http.StatusOK)

	events, err := http.Get(ts.URL + "/v1/events?kinds=placed")
	if err != nil {
		t.Fatal(err)
	}
	defer events.Body.Close()
	var b strings.Builder
	sc := bufio.NewScanner(events.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev server.WireEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		placementLine(&b, ev.Job, ev.Site, ev.Start, ev.Finish)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestTraceReplayParity is the service determinism contract: the same
// seeded arrival trace pushed through the daemon's HTTP API (manual
// clock) and through the batch simulator produces byte-identical
// placements — for a heuristic and for the history-carrying STGA. CI
// runs this under -race.
func TestTraceReplayParity(t *testing.T) {
	setup := experiments.TestSetup()
	setup.Seed = 7
	const seed = 7
	w, err := setup.PSAWorkload(seed, 240)
	if err != nil {
		t.Fatal(err)
	}
	// The daemon ingests submissions in request order; replay them in
	// the stable arrival order the batch engine uses internally.
	jobs := grid.CloneAll(w.Jobs)
	sort.SliceStable(jobs, func(i, k int) bool { return jobs[i].Arrival < jobs[k].Arrival })

	for _, algo := range []string{"minmin", "stga"} {
		t.Run(algo, func(t *testing.T) {
			want := batchPlacements(t, setup, w, jobs, algo, seed, nil)
			got := daemonPlacements(t, setup, w, jobs, algo, seed, nil)
			if want == "" {
				t.Fatal("batch run produced no placements")
			}
			if got != want {
				t.Fatalf("placement streams differ:\nbatch (%d bytes) vs daemon (%d bytes)\nfirst batch lines:\n%s\nfirst daemon lines:\n%s",
					len(want), len(got), firstLines(want, 5), firstLines(got, 5))
			}
		})
	}

	// The dynamic-grid extension must uphold the same contract: with an
	// identical churn trace, deceptive ground truth and reputation
	// feedback wired into both paths, the daemon still replays the batch
	// simulator byte-for-byte.
	root := rng.New(seed)
	churn, err := grid.DefaultChurnConfig(float64(len(jobs))/0.008).Generate(root.Derive("churn"), len(w.Sites))
	if err != nil {
		t.Fatal(err)
	}
	repCfg := fuzzy.DefaultReputationConfig()
	dyn := &sched.DynamicsConfig{
		Churn:      churn,
		Reputation: &repCfg,
		TrueLevels: grid.DeceptiveLevels(w.Sites, 0.4, 0.4, root.Derive("deceptive")),
	}
	for _, algo := range []string{"minmin", "stga"} {
		t.Run(algo+"-churn", func(t *testing.T) {
			want := batchPlacements(t, setup, w, jobs, algo, seed, dyn)
			got := daemonPlacements(t, setup, w, jobs, algo, seed, dyn)
			if want == "" {
				t.Fatal("batch run produced no placements")
			}
			if got != want {
				t.Fatalf("churn placement streams differ:\nbatch (%d bytes) vs daemon (%d bytes)\nfirst batch lines:\n%s\nfirst daemon lines:\n%s",
					len(want), len(got), firstLines(want, 5), firstLines(got, 5))
			}
		})
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
