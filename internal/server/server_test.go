package server_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"trustgrid/internal/experiments"
	"trustgrid/internal/server"
)

// postJSON/requireStatus are the raw-HTTP helpers for the server's own
// wire tests. (Tooling and the parity tests go through internal/client
// instead — this file deliberately keeps one layer of raw requests so
// the handler surface itself stays covered without the client.)
func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func requireStatus(t *testing.T, resp *http.Response, want int) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != want {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		t.Fatalf("status %d, want %d: %s", resp.StatusCode, want, buf.String())
	}
}

func newLiveServer(t *testing.T, tick time.Duration) (*server.Server, *httptest.Server) {
	t.Helper()
	setup := experiments.TestSetup()
	w, err := setup.PSAWorkload(1, 10) // platform only; jobs unused
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Sites: w.Sites, Algo: "minmin", Seed: 1, Setup: setup,
		BatchInterval: 5000, Tick: tick,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { _, _ = srv.Stop(false) })
	return srv, ts
}

func getMetrics(t *testing.T, url string) server.MetricsReport {
	t.Helper()
	resp, err := http.Get(url + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep server.MetricsReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestLiveService drives the wall-clock service end to end: submit jobs
// over HTTP, let the ticker schedule them, and read the results back
// through the event stream and the metrics endpoint.
func TestLiveService(t *testing.T) {
	_, ts := newLiveServer(t, 2*time.Millisecond)

	const n = 25
	specs := make([]server.JobSpec, n)
	for i := range specs {
		specs[i] = server.JobSpec{Workload: 15000 * float64(1+i%20), SD: 0.6 + 0.01*float64(i%30)}
	}
	resp := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"jobs": specs})
	requireStatus(t, resp, http.StatusOK)

	deadline := time.Now().Add(10 * time.Second)
	var rep server.MetricsReport
	for {
		rep = getMetrics(t, ts.URL)
		if rep.Completed >= n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out: %+v", rep)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if rep.Submitted != n || rep.Arrived != n {
		t.Fatalf("submitted %d arrived %d, want %d", rep.Submitted, rep.Arrived, n)
	}
	if rep.Latency.Count == 0 || rep.Latency.P99 < rep.Latency.P50 {
		t.Fatalf("implausible latency summary: %+v", rep.Latency)
	}
	if rep.Summary == nil || rep.Summary.Jobs != n {
		t.Fatalf("summary missing or wrong: %+v", rep.Summary)
	}

	// Placed events must be streamable and complete.
	events, err := http.Get(ts.URL + "/v1/events?kinds=placed")
	if err != nil {
		t.Fatal(err)
	}
	defer events.Body.Close()
	placed := 0
	sc := bufio.NewScanner(events.Body)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev server.WireEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Kind != "placed" {
			t.Fatalf("kinds filter leaked %q", ev.Kind)
		}
		placed++
	}
	if placed < n {
		t.Fatalf("saw %d placed events, want >= %d", placed, n)
	}
}

// TestLiveModeRejectsClientStamps pins the determinism boundary: in
// live mode identity and arrival are server-assigned.
func TestLiveModeRejectsClientStamps(t *testing.T) {
	_, ts := newLiveServer(t, time.Hour) // ticker effectively off
	id := 7
	resp := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"jobs": []server.JobSpec{{ID: &id, Workload: 100, SD: 0.7}},
	})
	requireStatus(t, resp, http.StatusBadRequest)

	// Manual-clock endpoints are rejected in live mode.
	resp = postJSON(t, ts.URL+"/v1/advance", map[string]any{"dt": 1.0})
	requireStatus(t, resp, http.StatusConflict)
	resp = postJSON(t, ts.URL+"/v1/drain", map[string]any{})
	requireStatus(t, resp, http.StatusConflict)
}

// TestManualAdvance drives the virtual clock explicitly and checks
// batches fire on the Δ grid.
func TestManualAdvance(t *testing.T) {
	setup := experiments.TestSetup()
	w, err := setup.PSAWorkload(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Sites: w.Sites, Algo: "minmin", Seed: 1, Setup: setup,
		BatchInterval: 1000, Manual: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop(false)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	arr := 10.0
	resp := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"jobs": []server.JobSpec{{Arrival: &arr, Workload: 500, SD: 0.7}},
	})
	requireStatus(t, resp, http.StatusOK)

	// Advancing to just before the round leaves the job queued.
	resp = postJSON(t, ts.URL+"/v1/advance", map[string]any{"to": 999.0})
	requireStatus(t, resp, http.StatusOK)
	if rep := getMetrics(t, ts.URL); rep.Placed != 0 || rep.Arrived != 1 {
		t.Fatalf("before round: %+v", rep)
	}
	// The Δ-grid round at t=1000 schedules it.
	resp = postJSON(t, ts.URL+"/v1/advance", map[string]any{"to": 1000.0})
	requireStatus(t, resp, http.StatusOK)
	if rep := getMetrics(t, ts.URL); rep.Placed != 1 || rep.Batches != 1 {
		t.Fatalf("after round: %+v", rep)
	}
	// Backwards advance is the caller's mistake, not a server fault.
	resp = postJSON(t, ts.URL+"/v1/advance", map[string]any{"to": 10.0})
	requireStatus(t, resp, http.StatusBadRequest)
}

// TestStopDrain checks graceful shutdown completes accepted work and
// then turns requests away.
func TestStopDrain(t *testing.T) {
	srv, ts := newLiveServer(t, time.Hour) // no ticks: drain does the work
	resp := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"jobs": []server.JobSpec{{Workload: 1000, SD: 0.7}, {Workload: 2000, SD: 0.8}},
	})
	requireStatus(t, resp, http.StatusOK)

	res, err := srv.Stop(true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Jobs != 2 {
		t.Fatalf("drained %d jobs, want 2", res.Summary.Jobs)
	}
	if _, err := srv.Stop(true); err != nil {
		t.Fatalf("second stop: %v", err)
	}

	hz, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	requireStatus(t, hz, http.StatusServiceUnavailable)
}

// TestTraceRoundTrip checks the arrival-trace artifact written by the
// daemon parses back into the same jobs.
func TestTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	recs := []server.TraceRecord{
		{ID: 1, Arrival: 0, Workload: 100, Nodes: 1, SD: 0.7},
		{ID: 2, Arrival: 3.5, Workload: 200, Nodes: 4, SD: 0.85},
	}
	for _, r := range recs {
		if err := server.WriteTraceRecord(&buf, r); err != nil {
			t.Fatal(err)
		}
	}
	got, err := server.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !reflect.DeepEqual(got[i], recs[i]) {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], recs[i])
		}
	}
	jobs := server.JobsFromTrace(got)
	if jobs[1].SecurityDemand != 0.85 || jobs[1].Nodes != 4 {
		t.Fatalf("bad job materialization: %+v", jobs[1])
	}
}

// TestEventsPagination pins the filtered-page contract: max counts
// *matching* events, so kinds+max can never return an empty page while
// matching events remain, and the last seq+1 paginates.
func TestEventsPagination(t *testing.T) {
	setup := experiments.TestSetup()
	w, err := setup.PSAWorkload(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Sites: w.Sites, Algo: "minmin", Seed: 1, Setup: setup,
		BatchInterval: 1000, Manual: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop(false)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	specs := make([]server.JobSpec, 5)
	for i := range specs {
		arr := 0.0
		specs[i] = server.JobSpec{Arrival: &arr, Workload: 1000 * float64(i+1), SD: 0.7}
	}
	resp := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"jobs": specs})
	requireStatus(t, resp, http.StatusOK)
	resp = postJSON(t, ts.URL+"/v1/drain", map[string]any{})
	requireStatus(t, resp, http.StatusOK)

	readPage := func(since int64) []server.WireEvent {
		resp, err := http.Get(fmt.Sprintf("%s/v1/events?kinds=placed&max=3&since=%d", ts.URL, since))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out []server.WireEvent
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if len(sc.Bytes()) == 0 {
				continue
			}
			var ev server.WireEvent
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				t.Fatal(err)
			}
			out = append(out, ev)
		}
		return out
	}

	// First page: 3 placed events even though 'arrived' events precede
	// them in the log. Then paginate to exhaustion and require every
	// placement event (retries included) to be seen exactly once.
	total := int(getMetrics(t, ts.URL).Placed)
	if total < 5 {
		t.Fatalf("expected >= 5 placements, got %d", total)
	}
	page := readPage(0)
	if len(page) != 3 {
		t.Fatalf("page 1 has %d events, want 3: %+v", len(page), page)
	}
	seen := len(page)
	for len(page) > 0 {
		for _, ev := range page {
			if ev.Kind != "placed" {
				t.Fatalf("kinds filter leaked %q", ev.Kind)
			}
		}
		page = readPage(page[len(page)-1].Seq + 1)
		seen += len(page)
	}
	if seen != total {
		t.Fatalf("pagination saw %d placements, server counted %d", seen, total)
	}
}

// TestManualDuplicateIDRejected pins the replay round-trip guard.
func TestManualDuplicateIDRejected(t *testing.T) {
	setup := experiments.TestSetup()
	w, err := setup.PSAWorkload(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Sites: w.Sites, Algo: "minmin", Seed: 1, Setup: setup,
		BatchInterval: 1000, Manual: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop(false)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	id, arr := 7, 0.0
	resp := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"jobs": []server.JobSpec{{ID: &id, Arrival: &arr, Workload: 100, SD: 0.7}},
	})
	requireStatus(t, resp, http.StatusOK)
	resp = postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"jobs": []server.JobSpec{{ID: &id, Arrival: &arr, Workload: 200, SD: 0.7}},
	})
	requireStatus(t, resp, http.StatusBadRequest)

	// Auto-assigned IDs skip past explicit ones instead of colliding.
	resp = postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"jobs": []server.JobSpec{{Arrival: &arr, Workload: 300, SD: 0.7}},
	})
	defer resp.Body.Close()
	var out struct {
		IDs []int `json:"ids"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.IDs) != 1 || out.IDs[0] <= 7 {
		t.Fatalf("auto ID %v should be > 7", out.IDs)
	}
}
