package server_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"trustgrid/internal/api"
	"trustgrid/internal/client"
	"trustgrid/internal/experiments"
	"trustgrid/internal/fuzzy"
	"trustgrid/internal/grid"
	"trustgrid/internal/sched"
	"trustgrid/internal/server"
)

const crashShards = 4

// walShardedConfig is walTestConfig scaled to a 4-shard daemon: six
// sites, churn touching sites of three different shards, the same
// aggressive snapshot cadence and full WAL retention.
func walShardedConfig(walDir, algo string) server.Config {
	setup := experiments.TestSetup()
	setup.Population = 12
	setup.Generations = 6
	rep := fuzzy.DefaultReputationConfig()
	return server.Config{
		Sites:         shardedSites(),
		Algo:          algo,
		Seed:          11,
		BatchInterval: 300,
		Manual:        true,
		Setup:         setup,
		RoundBudget:   3,
		Shards:        crashShards,
		Dynamics: &sched.DynamicsConfig{
			Churn: []grid.ChurnEvent{
				{Time: 700, Site: 1, Kind: grid.ChurnCrash},
				{Time: 1000, Site: 2, Kind: grid.ChurnDegrade, Factor: 0.5},
				{Time: 1300, Site: 5, Kind: grid.ChurnDrain},
				{Time: 1600, Site: 1, Kind: grid.ChurnJoin},
			},
			Reputation: &rep,
			TrueLevels: []float64{0.7, 0.5, 0.8, 0.6, 0.9, 0.55},
		},
		WALDir:        walDir,
		SnapshotEvery: 8,
		WALKeep:       -1,
	}
}

// driveShardedWAL replays the scripted protocol with tenants covering
// every shard, idempotently — same contract as driveWAL.
func driveShardedWAL(t *testing.T, c *client.Client, jobs []walJob, tenants []string) {
	t.Helper()
	ctx := context.Background()
	for i, id := range tenants {
		spec := api.TenantSpec{ID: id, Weight: float64(1 + i%3)}
		if _, err := c.CreateTenant(ctx, spec); err != nil && !errors.Is(err, client.ErrConflict) {
			t.Fatalf("create tenant %s: %v", id, err)
		}
	}
	m, err := c.Metrics(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	now := m.VirtualNow
	next := 0
	for tick := 300.0; tick <= 2400; tick += 300 {
		for next < len(jobs) && jobs[next].submitAt < tick {
			j := jobs[next]
			id, arr := j.id, j.arrival
			_, err := c.Submit(ctx, j.tenant, []api.JobSpec{
				{ID: &id, Arrival: &arr, Workload: j.workload, SD: j.sd},
			})
			if err != nil && !(errors.Is(err, client.ErrBadRequest) &&
				strings.Contains(err.Error(), "duplicate job id")) {
				t.Fatalf("submit job %d: %v", j.id, err)
			}
			next++
		}
		if tick > now {
			if _, err := c.Advance(ctx, api.AdvanceRequest{To: tick}); err != nil {
				t.Fatalf("advance to %v: %v", tick, err)
			}
		}
	}
	if _, err := c.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// shardedHarvest is the closed WAL state of one sharded daemon: per-log
// record lines and snapshots, plus every record's global sequence.
type shardedHarvest struct {
	dirs  []string            // relative dir names: coord, shard-0000, ...
	lines map[string][][]byte // dir -> framed record lines, local seq order
	gseq  map[string][]uint64 // dir -> G of each line
	snaps map[string]map[uint64][]byte
	maxG  uint64
}

func harvestShardedWAL(t *testing.T, root string) *shardedHarvest {
	t.Helper()
	h := &shardedHarvest{
		lines: make(map[string][][]byte),
		gseq:  make(map[string][]uint64),
		snaps: make(map[string]map[uint64][]byte),
	}
	h.dirs = append(h.dirs, "coord")
	for i := 0; i < crashShards; i++ {
		h.dirs = append(h.dirs, fmt.Sprintf("shard-%04d", i))
	}
	seenG := make(map[uint64]string)
	for _, d := range h.dirs {
		lines, snaps := harvestWAL(t, filepath.Join(root, d))
		h.lines[d], h.snaps[d] = lines, snaps
		prev := uint64(0)
		for _, line := range lines {
			var rec struct {
				G uint64 `json:"g"`
			}
			if err := json.Unmarshal(line[9:], &rec); err != nil {
				t.Fatalf("%s: unparseable record %q: %v", d, line, err)
			}
			if rec.G == 0 {
				t.Fatalf("%s: record without global sequence: %s", d, line)
			}
			if rec.G <= prev {
				t.Fatalf("%s: G not monotone: %d after %d", d, rec.G, prev)
			}
			if other, dup := seenG[rec.G]; dup {
				t.Fatalf("G=%d appears in both %s and %s", rec.G, other, d)
			}
			seenG[rec.G] = d
			prev = rec.G
			h.gseq[d] = append(h.gseq[d], rec.G)
			if rec.G > h.maxG {
				h.maxG = rec.G
			}
		}
	}
	for g := uint64(1); g <= h.maxG; g++ {
		if _, ok := seenG[g]; !ok {
			t.Fatalf("global sequence has a gap at %d (max %d)", g, h.maxG)
		}
	}
	return h
}

// crashShardedDir materializes the disk state of a kill -9 right after
// global record k became durable: every log keeps its records with
// G <= k; coordinator snapshots written by then (their NextG horizon is
// <= k) come along with their paired per-shard GC markers. extra maps a
// dir to one additional record index to include — the skewed
// group-commit case, where a later log's fsync won but an earlier
// record of the same commit was lost. torn appends garbage to one log.
func crashShardedDir(t *testing.T, h *shardedHarvest, k uint64, extra map[string]int, torn map[string][]byte) string {
	t.Helper()
	root := t.TempDir()
	// Coordinator snapshots included at this crash point, used to pick
	// the shard markers that were written in the same housekeeping pass.
	markers := make(map[string]map[uint64]bool)
	for _, d := range h.dirs[1:] {
		markers[d] = make(map[uint64]bool)
	}
	coordSnaps := make(map[uint64][]byte)
	for seq, payload := range h.snaps["coord"] {
		var snap struct {
			NextG     uint64   `json:"next_g"`
			ShardSeqs []uint64 `json:"shard_seqs"`
		}
		if err := json.Unmarshal(payload, &snap); err != nil {
			t.Fatal(err)
		}
		if snap.NextG > k {
			continue
		}
		coordSnaps[seq] = payload
		for i, s := range snap.ShardSeqs {
			markers[h.dirs[1+i]][s] = true
		}
	}
	for _, d := range h.dirs {
		dir := filepath.Join(root, d)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		var buf []byte
		n := 0
		for i, g := range h.gseq[d] {
			if g <= k || (extra != nil && extra[d] == i+1) {
				buf = append(buf, h.lines[d][i]...)
				n = i + 1
			}
		}
		buf = append(buf, torn[d]...)
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("wal-%016d.log", 1)), buf, 0o644); err != nil {
			t.Fatal(err)
		}
		if d == "coord" {
			for seq, payload := range coordSnaps {
				if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("snap-%016d.json", seq)), payload, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			continue
		}
		for seq, payload := range h.snaps[d] {
			if markers[d][seq] && seq <= uint64(n) {
				if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("snap-%016d.json", seq)), payload, 0o644); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return root
}

// TestShardedCrashPointParity extends the recovery contract to the
// 4-shard daemon: record a full run across the coordinator log and four
// shard logs, then simulate a kill -9 after EVERY globally durable
// record — including torn tails and skewed group commits where one
// log's fsync survived a commit its sibling lost — recover, re-drive
// the identical protocol, and require the merged /v2/events stream and
// the per-tenant counters to be byte-identical to the uninterrupted
// sharded run's.
func TestShardedCrashPointParity(t *testing.T) {
	tenants := shardedTenantNames(t, crashShards)
	for _, algo := range []string{"minmin", "stga"} {
		t.Run(algo, func(t *testing.T) {
			jobs := walJobList(20)
			for i := range jobs {
				jobs[i].tenant = tenants[i%len(tenants)]
			}

			// Uninterrupted baseline.
			baseDir := t.TempDir()
			srv, err := server.New(walShardedConfig(baseDir, algo))
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(srv.Handler())
			c := client.New(ts.URL)
			driveShardedWAL(t, c, jobs, tenants)
			wantEvents := fetchEvents(t, ts.URL)
			rep, err := c.Metrics(context.Background(), "")
			if err != nil {
				t.Fatal(err)
			}
			wantTenants := tenantFacts(rep)
			wantCompleted := rep.Completed
			ts.Close()
			if _, err := srv.Stop(false); err != nil {
				t.Fatal(err)
			}
			if wantCompleted != int64(len(jobs)) {
				t.Fatalf("baseline completed %d of %d jobs", wantCompleted, len(jobs))
			}

			h := harvestShardedWAL(t, baseDir)
			// 20 arrivals + 4 tenants + 4 churn + 8 advances + 1 drain.
			if want := uint64(20 + 4 + 4 + 8 + 1); h.maxG != want {
				t.Fatalf("recorded %d global records, want %d", h.maxG, want)
			}
			if len(h.snaps["coord"]) < 2 {
				t.Fatalf("baseline wrote %d coordinator snapshots, want >= 2", len(h.snaps["coord"]))
			}

			// Torn garbage on selected cut points, rotating across logs.
			torn := map[uint64]map[string][]byte{
				3:  {"coord": []byte("deadbeef {\"seq\":9,\"kind\":\"barr")},
				11: {h.dirs[2]: []byte("\x00\xff garbage")},
				23: {h.dirs[4]: []byte("0")},
			}
			recoverAndCompare := func(k uint64, dir, label string) {
				t.Helper()
				srv, err := server.New(walShardedConfig(dir, algo))
				if err != nil {
					t.Fatalf("%s: recovery failed: %v", label, err)
				}
				ts := httptest.NewServer(srv.Handler())
				driveShardedWAL(t, client.New(ts.URL), jobs, tenants)
				got := fetchEvents(t, ts.URL)
				rep, err := client.New(ts.URL).Metrics(context.Background(), "")
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				ts.Close()
				if _, err := srv.Stop(false); err != nil {
					t.Fatalf("%s: stop: %v", label, err)
				}
				if got != wantEvents {
					d := firstDiff(wantEvents, got)
					t.Fatalf("%s: recovered merged event stream diverges at byte %d\nwant: %s\ngot:  %s",
						label, d, excerpt(wantEvents, d), excerpt(got, d))
				}
				if tf := tenantFacts(rep); tf != wantTenants {
					t.Fatalf("%s: tenant counters diverge:\nwant:\n%sgot:\n%s", label, wantTenants, tf)
				}
			}
			for k := uint64(0); k <= h.maxG; k++ {
				recoverAndCompare(k, crashShardedDir(t, h, k, nil, torn[k]), fmt.Sprintf("k=%d", k))
			}

			// Skewed group commits: at a few crash points, the record after
			// the lost one lives in a DIFFERENT log and its fsync survived.
			// Recovery must cut back to the contiguous prefix — identical
			// outcome to the plain crash at k.
			skews := 0
			for _, k := range []uint64{2, 9, 15, 22, 30} {
				if k+2 > h.maxG {
					continue
				}
				dirOf := func(g uint64) (string, int) {
					for _, d := range h.dirs {
						for i, gg := range h.gseq[d] {
							if gg == g {
								return d, i + 1
							}
						}
					}
					t.Fatalf("G=%d not found", g)
					return "", 0
				}
				lostDir, _ := dirOf(k + 1)
				wonDir, wonIdx := dirOf(k + 2)
				if lostDir == wonDir {
					continue // same log: a later record physically can't outlive an earlier one
				}
				recoverAndCompare(k, crashShardedDir(t, h, k, map[string]int{wonDir: wonIdx}, nil),
					fmt.Sprintf("skew k=%d (+G%d in %s)", k, k+2, wonDir))
				skews++
			}
			if skews == 0 {
				t.Error("no skewed group-commit case materialized; pick different cut points")
			}
		})
	}
}
