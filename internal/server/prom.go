package server

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// handleProm renders the existing counters in Prometheus text
// exposition format (version 0.0.4) — no client library, just the
// format: `# TYPE` lines, optional {tenant="..."} labels, one sample
// per line. Scrape path: GET /metrics.prom.
func (s *Server) handleProm(w http.ResponseWriter, r *http.Request) {
	rep, err := s.buildReport(r, "")
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	var b strings.Builder
	counter := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter("trustgrid_submitted_jobs_total", "Jobs accepted by the HTTP layer.", float64(rep.Submitted))
	counter("trustgrid_arrived_jobs_total", "Jobs ingested by the engine.", float64(rep.Arrived))
	counter("trustgrid_placed_total", "Placement events, retries included.", float64(rep.Placed))
	counter("trustgrid_failed_attempts_total", "Failed execution attempts (Eq. 1).", float64(rep.Failures))
	counter("trustgrid_interrupted_attempts_total", "Attempts cut short by site crashes.", float64(rep.Interrupted))
	counter("trustgrid_completed_jobs_total", "Jobs completed successfully.", float64(rep.Completed))
	counter("trustgrid_rejected_jobs_total", "Submissions rejected with 429 (quota).", float64(rep.Rejected))
	counter("trustgrid_batches_total", "Scheduling rounds that dispatched jobs.", float64(rep.Batches))
	gauge("trustgrid_backlog_jobs", "Submitted jobs not yet ingested.", float64(rep.Backlog))
	gauge("trustgrid_in_flight_jobs", "Ingested jobs not yet completed.", float64(rep.InFlight))
	gauge("trustgrid_sites_alive", "Sites currently in service.", float64(rep.SitesAlive))
	gauge("trustgrid_virtual_time_seconds", "Engine virtual clock.", rep.VirtualNow)
	gauge("trustgrid_uptime_seconds", "Wall-clock uptime.", rep.UptimeS)
	gauge("trustgrid_sched_latency_p50_milliseconds", "Submit-to-first-placement latency p50.", rep.Latency.P50)
	gauge("trustgrid_sched_latency_p99_milliseconds", "Submit-to-first-placement latency p99.", rep.Latency.P99)

	// Per-tenant counters, deterministically ordered for scrape diffs.
	ids := make([]string, 0, len(rep.Tenants))
	for id := range rep.Tenants {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	// %q escapes exactly what the exposition format needs for label
	// values (backslash, quote, newline); tenant IDs are restricted to
	// [a-zA-Z0-9._-] anyway, this covers unknown tenants from replayed
	// traces.
	tc := func(name, help string, val func(t string) float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, id := range ids {
			fmt.Fprintf(&b, "%s{tenant=%q} %g\n", name, id, val(id))
		}
	}
	tc("trustgrid_tenant_submitted_jobs_total", "Jobs accepted per tenant.",
		func(t string) float64 { return float64(rep.Tenants[t].Submitted) })
	tc("trustgrid_tenant_placed_total", "Placement events per tenant.",
		func(t string) float64 { return float64(rep.Tenants[t].Placed) })
	tc("trustgrid_tenant_completed_jobs_total", "Completed jobs per tenant.",
		func(t string) float64 { return float64(rep.Tenants[t].Completed) })
	tc("trustgrid_tenant_rejected_jobs_total", "429-rejected submissions per tenant.",
		func(t string) float64 { return float64(rep.Tenants[t].Rejected) })
	fmt.Fprintf(&b, "# HELP trustgrid_tenant_queued_jobs Jobs accepted but not yet placed, per tenant.\n"+
		"# TYPE trustgrid_tenant_queued_jobs gauge\n")
	for _, id := range ids {
		fmt.Fprintf(&b, "trustgrid_tenant_queued_jobs{tenant=%q} %g\n",
			id, float64(rep.Tenants[id].Queued))
	}

	// Per-shard series (sharded daemons only): shard index as a label,
	// in shard order, so dashboards can spot a skewed partition.
	if len(rep.Shards) > 0 {
		sg := func(name, help string, val func(sm *ShardMetrics) float64) {
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
			for i := range rep.Shards {
				fmt.Fprintf(&b, "%s{shard=\"%d\"} %g\n", name, rep.Shards[i].Shard, val(&rep.Shards[i]))
			}
		}
		sg("trustgrid_shard_sites_alive", "Sites in service per shard.",
			func(sm *ShardMetrics) float64 { return float64(sm.SitesAlive) })
		sg("trustgrid_shard_seen_jobs", "Jobs ingested per shard.",
			func(sm *ShardMetrics) float64 { return float64(sm.Seen) })
		sg("trustgrid_shard_in_flight_jobs", "Ingested jobs not yet completed, per shard.",
			func(sm *ShardMetrics) float64 { return float64(sm.InFlight) })
		sg("trustgrid_shard_batches", "Scheduling rounds that dispatched jobs, per shard.",
			func(sm *ShardMetrics) float64 { return float64(sm.Batches) })
		sg("trustgrid_shard_virtual_time_seconds", "Shard virtual clock.",
			func(sm *ShardMetrics) float64 { return sm.VirtualNow })
		sg("trustgrid_shard_sched_latency_p99_milliseconds", "Submit-to-first-placement latency p99 per shard.",
			func(sm *ShardMetrics) float64 { return sm.Latency.P99 })
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}
