package server

import (
	"sort"
	"sync"
	"time"

	"trustgrid/internal/stats"
)

// latencyTracker measures wall-clock scheduling latency: the time from
// a job's acceptance by the HTTP layer to its first placement event.
// Submissions record under the job ID; the loop goroutine resolves them
// as placements stream past.
type latencyTracker struct {
	mu       sync.Mutex
	pending  map[int]time.Time
	samples  []float64 // milliseconds, resolved placements
	max      int       // sample retention bound
	resolved int64     // total samples ever recorded
}

const defaultLatencySamples = 1 << 16

func newLatencyTracker(max int) *latencyTracker {
	if max <= 0 {
		max = defaultLatencySamples
	}
	return &latencyTracker{pending: make(map[int]time.Time), max: max}
}

// submitted records the acceptance time of a job ID.
func (t *latencyTracker) submitted(id int, at time.Time) {
	t.mu.Lock()
	t.pending[id] = at
	t.mu.Unlock()
}

// placedNow resolves a placement against its pending submission, if
// any. Re-placements after failures find no pending entry and are
// ignored — latency is first-placement latency.
func (t *latencyTracker) placedNow(id int) {
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	at, ok := t.pending[id]
	if !ok {
		return
	}
	delete(t.pending, id)
	if len(t.samples) >= t.max {
		// Drop the oldest half in one copy; percentiles stay dominated
		// by recent traffic.
		t.samples = append(t.samples[:0], t.samples[len(t.samples)/2:]...)
	}
	t.samples = append(t.samples, float64(now.Sub(at))/float64(time.Millisecond))
	t.resolved++
}

// LatencySummary reports scheduling-latency percentiles in
// milliseconds over the retained sample window.
type LatencySummary struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50_ms"`
	P90   float64 `json:"p90_ms"`
	P99   float64 `json:"p99_ms"`
	Max   float64 `json:"max_ms"`
}

func (t *latencyTracker) summary() LatencySummary {
	// Copy under the lock, sort outside it: placement resolution on the
	// loop goroutine must never wait on a metrics scrape's sort.
	t.mu.Lock()
	resolved := t.resolved
	sorted := append([]float64(nil), t.samples...)
	t.mu.Unlock()
	if len(sorted) == 0 {
		return LatencySummary{Count: resolved}
	}
	sort.Float64s(sorted)
	return LatencySummary{
		Count: resolved,
		P50:   stats.PercentileOfSorted(sorted, 50),
		P90:   stats.PercentileOfSorted(sorted, 90),
		P99:   stats.PercentileOfSorted(sorted, 99),
		Max:   sorted[len(sorted)-1],
	}
}
