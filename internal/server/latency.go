package server

import (
	"sort"
	"sync"
	"time"

	"trustgrid/internal/api"
	"trustgrid/internal/stats"
)

// latencyTracker measures wall-clock scheduling latency: the time from
// a job's acceptance by the HTTP layer to its first placement event.
// Submissions record under the job ID (with the owning tenant);
// the loop goroutine resolves them as placements stream past, feeding
// both the global window and the tenant's own.
type latencyTracker struct {
	mu       sync.Mutex
	pending  map[int]pendingSubmit
	samples  []float64 // milliseconds, resolved placements
	byTenant map[string]*latencyWindow
	max      int   // sample retention bound
	resolved int64 // total samples ever recorded
}

type pendingSubmit struct {
	at     time.Time
	tenant string
}

type latencyWindow struct {
	samples  []float64
	resolved int64
}

const defaultLatencySamples = 1 << 16

func newLatencyTracker(max int) *latencyTracker {
	if max <= 0 {
		max = defaultLatencySamples
	}
	return &latencyTracker{
		pending:  make(map[int]pendingSubmit),
		byTenant: make(map[string]*latencyWindow),
		max:      max,
	}
}

// submitted records the acceptance time of a job ID.
func (t *latencyTracker) submitted(id int, tenant string, at time.Time) {
	t.mu.Lock()
	t.pending[id] = pendingSubmit{at: at, tenant: tenant}
	t.mu.Unlock()
}

// placedNow resolves a placement against its pending submission, if
// any, and reports the owning tenant. Re-placements after failures find
// no pending entry and are ignored (first=false) — latency is
// first-placement latency, and the tenant's queued-quota slot is
// released exactly once.
func (t *latencyTracker) placedNow(id int) (tenant string, first bool) {
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.pending[id]
	if !ok {
		return "", false
	}
	delete(t.pending, id)
	ms := float64(now.Sub(p.at)) / float64(time.Millisecond)
	t.samples = trimAppend(t.samples, ms, t.max)
	t.resolved++
	w := t.byTenant[p.tenant]
	if w == nil {
		w = &latencyWindow{}
		t.byTenant[p.tenant] = w
	}
	w.samples = trimAppend(w.samples, ms, t.max)
	w.resolved++
	return p.tenant, true
}

// forget drops a pending submission whose job never reached the engine
// (a failed tail of a partially injected request).
func (t *latencyTracker) forget(id int) {
	t.mu.Lock()
	delete(t.pending, id)
	t.mu.Unlock()
}

// trimAppend appends a sample, dropping the oldest half in one copy when
// the bound is hit; percentiles stay dominated by recent traffic.
func trimAppend(s []float64, v float64, max int) []float64 {
	if len(s) >= max {
		s = append(s[:0], s[len(s)/2:]...)
	}
	return append(s, v)
}

// LatencySummary is re-exported from the wire-format package.
type LatencySummary = api.LatencySummary

func summarize(resolved int64, samples []float64) LatencySummary {
	if len(samples) == 0 {
		return LatencySummary{Count: resolved}
	}
	sort.Float64s(samples)
	return LatencySummary{
		Count: resolved,
		P50:   stats.PercentileOfSorted(samples, 50),
		P90:   stats.PercentileOfSorted(samples, 90),
		P99:   stats.PercentileOfSorted(samples, 99),
		Max:   samples[len(samples)-1],
	}
}

func (t *latencyTracker) summary() LatencySummary {
	// Copy under the lock, sort outside it: placement resolution on the
	// loop goroutine must never wait on a metrics scrape's sort.
	t.mu.Lock()
	resolved := t.resolved
	sorted := append([]float64(nil), t.samples...)
	t.mu.Unlock()
	return summarize(resolved, sorted)
}

// tenantSummary reports one tenant's scheduling-latency percentiles.
func (t *latencyTracker) tenantSummary(tenant string) LatencySummary {
	t.mu.Lock()
	w := t.byTenant[tenant]
	var resolved int64
	var sorted []float64
	if w != nil {
		resolved = w.resolved
		sorted = append([]float64(nil), w.samples...)
	}
	t.mu.Unlock()
	return summarize(resolved, sorted)
}
