package server

import (
	"sync"
	"time"

	"trustgrid/internal/api"
	"trustgrid/internal/metrics"
	"trustgrid/internal/sched"
)

// latencyTracker measures wall-clock scheduling latency: the time from
// a job's acceptance by the HTTP layer to its first placement event.
// Submissions record under the job ID (with the owning tenant); the
// loop goroutine resolves them as placements stream past, feeding the
// global window, the tenant's own, and — on sharded daemons — the
// owning shard's. The sample windows are metrics.Recorder instances,
// each safe for concurrent use on its own; the tracker's mutex only
// guards the pending map and the lazily created per-tenant table.
type latencyTracker struct {
	mu       sync.Mutex
	pending  map[int]pendingSubmit
	byTenant map[string]*metrics.Recorder

	window  int
	global  *metrics.Recorder
	shards  int // tenant→shard routing modulus (1 = unsharded)
	byShard []*metrics.Recorder
}

type pendingSubmit struct {
	at     time.Time
	tenant string
}

const defaultLatencySamples = metrics.DefaultRecorderWindow

func newLatencyTracker(max, shards int) *latencyTracker {
	if max <= 0 {
		max = defaultLatencySamples
	}
	if shards < 1 {
		shards = 1
	}
	t := &latencyTracker{
		pending:  make(map[int]pendingSubmit),
		byTenant: make(map[string]*metrics.Recorder),
		window:   max,
		global:   metrics.NewRecorder(max),
		shards:   shards,
	}
	if shards > 1 {
		t.byShard = make([]*metrics.Recorder, shards)
		for i := range t.byShard {
			t.byShard[i] = metrics.NewRecorder(max)
		}
	}
	return t
}

// submitted records the acceptance time of a job ID.
func (t *latencyTracker) submitted(id int, tenant string, at time.Time) {
	t.mu.Lock()
	t.pending[id] = pendingSubmit{at: at, tenant: tenant}
	t.mu.Unlock()
}

// placedNow resolves a placement against its pending submission, if
// any, and reports the owning tenant. Re-placements after failures find
// no pending entry and are ignored (first=false) — latency is
// first-placement latency, and the tenant's queued-quota slot is
// released exactly once. The shard series is attributed through the
// tenant router (a pure function of tenant and shard count), so it
// needs no plumbing from the engine.
func (t *latencyTracker) placedNow(id int) (tenant string, first bool) {
	now := time.Now()
	t.mu.Lock()
	p, ok := t.pending[id]
	if !ok {
		t.mu.Unlock()
		return "", false
	}
	delete(t.pending, id)
	w := t.byTenant[p.tenant]
	if w == nil {
		w = metrics.NewRecorder(t.window)
		t.byTenant[p.tenant] = w
	}
	t.mu.Unlock()
	ms := float64(now.Sub(p.at)) / float64(time.Millisecond)
	t.global.Observe(ms)
	w.Observe(ms)
	if t.byShard != nil {
		t.byShard[sched.RouteTenant(p.tenant, t.shards)].Observe(ms)
	}
	return p.tenant, true
}

// forget drops a pending submission whose job never reached the engine
// (a failed tail of a partially injected request).
func (t *latencyTracker) forget(id int) {
	t.mu.Lock()
	delete(t.pending, id)
	t.mu.Unlock()
}

// abandon drops a pending submission whose job reached the engine but
// will never be placed (it ended a run in the never-placed set, or a
// total outage aborted the engine) and reports the owning tenant so
// the caller can release the queued-quota slot the entry still holds.
// No latency sample is recorded — the job was never scheduled.
func (t *latencyTracker) abandon(id int) (tenant string, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.pending[id]
	if !ok {
		return "", false
	}
	delete(t.pending, id)
	return p.tenant, true
}

// LatencySummary is re-exported from the wire-format package.
type LatencySummary = api.LatencySummary

func wireSummary(w metrics.WindowSummary) LatencySummary {
	return LatencySummary{Count: w.Count, P50: w.P50, P90: w.P90, P99: w.P99, Max: w.Max}
}

func (t *latencyTracker) summary() LatencySummary {
	return wireSummary(t.global.Summary())
}

// tenantSummary reports one tenant's scheduling-latency percentiles.
func (t *latencyTracker) tenantSummary(tenant string) LatencySummary {
	t.mu.Lock()
	w := t.byTenant[tenant]
	t.mu.Unlock()
	if w == nil {
		return LatencySummary{}
	}
	return wireSummary(w.Summary())
}

// shardSummary reports one shard's scheduling-latency percentiles.
// Zero-valued on unsharded trackers.
func (t *latencyTracker) shardSummary(shard int) LatencySummary {
	if t.byShard == nil {
		return LatencySummary{}
	}
	return wireSummary(t.byShard[shard].Summary())
}
