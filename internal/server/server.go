package server

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"trustgrid/internal/api"
	"trustgrid/internal/experiments"
	"trustgrid/internal/fleet"
	"trustgrid/internal/grid"
	"trustgrid/internal/rng"
	"trustgrid/internal/sched"
)

// Config describes one trustgridd instance.
type Config struct {
	// Sites is the platform the daemon schedules onto.
	Sites []*grid.Site
	// Training warms the STGA history table before serving (nil = cold).
	Training []*grid.Job

	// Algo names the scheduler (experiments.SchedulerNames). Default
	// "minmin".
	Algo string
	// Mode is the heuristics' admission rule: secure, risky or frisky
	// (default). The STGA always runs f-risky at Setup.F, as in the paper.
	Mode string
	// BatchInterval is Δ, the virtual seconds between scheduling rounds.
	// Zero defaults to Setup.PSABatch.
	BatchInterval float64
	// Seed roots every stochastic decision the daemon makes (scheduler
	// randomness and Eq. 1 failure sampling) via labelled substreams —
	// the same "scheduler"/"engine" labels the batch experiments use, so
	// a recorded trace replays identically through sched.Run.
	Seed uint64
	// Setup supplies the GA sizes, λ, f and training batch size. Zero
	// fields are filled from experiments.DefaultSetup individually, so a
	// partially specified Setup keeps what the caller did set.
	Setup experiments.Setup

	// Tick is the wall-clock duration of one batch interval in live
	// mode (default 100ms): every Tick the virtual clock advances by
	// BatchInterval and a scheduling round fires.
	Tick time.Duration
	// Manual disables the wall ticker: clients stamp arrivals themselves
	// and drive the clock through /v1/advance and /v1/drain. This is the
	// deterministic trace-replay mode.
	Manual bool

	// Shards splits the engine into N shards behind an in-process
	// coordinator (DESIGN.md §11): sites are partitioned round-robin,
	// tenants are routed to shards by a stable hash of their id, and
	// every clock advance fans out to all shards as a shared Δ-round
	// barrier whose merged event stream carries one total order (time,
	// then shard index). 0 or 1 runs the single unsharded engine,
	// bit-identical to the daemon before sharding existed. Requires
	// len(Sites) >= Shards; durable mode keeps one WAL segment stream
	// per shard under WALDir.
	Shards int

	// Workers, when non-empty, runs the coordinator over out-of-process
	// shards instead of in-process engines (DESIGN.md §12): each address
	// is one trustgrid-worker hosting one shard behind the fleet
	// protocol, attached in list order (worker i is shard i, so the list
	// order IS the partition assignment and must be stable across
	// daemon restarts). The shard count follows the list; Shards > 1 is
	// rejected as conflicting, and WALDir is rejected because durability
	// is worker-owned — each worker write-ahead-logs its own inputs and
	// recovers itself. A fleet of N workers is byte-identical to
	// -shards N: both sides build their engines from the same
	// fleet.Spec derivation.
	Workers []string

	// Tenants pre-registers tenants at startup (the default tenant that
	// backs the /v1 shim always exists and need not be listed). More can
	// be registered at runtime through POST /v2/tenants; for replayable
	// runs, register everything before traffic (DESIGN.md §9.4).
	Tenants []api.TenantSpec
	// RoundBudget caps how many jobs one Δ-round may admit; when the
	// backlog exceeds it, jobs enter the round in weighted
	// deficit-round-robin order by tenant (DESIGN.md §9.2). 0 keeps the
	// original drain-everything behavior.
	RoundBudget int

	// SubmitBuffer sizes the arrival channel (0 = sim default); a full
	// channel blocks submitters, which is the service's backpressure.
	SubmitBuffer int
	// EventBuffer bounds the retained event log (0 = 65536 events);
	// older events are evicted and slow readers restart at the oldest.
	EventBuffer int

	// Dynamics, when non-nil, runs the daemon on a dynamic grid: a
	// deterministic site-churn trace, optional ground-truth security
	// divergence and optional online reputation feedback (DESIGN.md §7).
	// Replay determinism is preserved: the churn trace is part of the
	// run's input, so (arrival trace, churn trace, seed) reproduces every
	// placement through the batch simulator.
	Dynamics *sched.DynamicsConfig

	// TraceWriter, when non-nil, receives one JSON line per accepted
	// arrival — the replay artifact of the determinism contract.
	TraceWriter io.Writer

	// WALDir, when non-empty, makes the daemon's state durable: every
	// accepted arrival, runtime tenant registration and configured churn
	// event is written to a write-ahead log in this directory, periodic
	// engine snapshots bound replay time, and New recovers (newest
	// readable snapshot + WAL tail replay) before serving (DESIGN.md
	// §10). Empty keeps the daemon in-memory only.
	WALDir string
	// SnapshotEvery is the snapshot cadence in WAL records (default
	// 4096): after that many appends, the next loop iteration persists a
	// full snapshot, rotates the segment and garbage-collects.
	SnapshotEvery int
	// WALKeep is how many snapshots GC retains (default 2, so recovery
	// survives the newest one being unreadable). -1 disables GC
	// entirely, keeping every record ever logged — the full-history mode
	// the crash-point parity tests rely on.
	WALKeep int
}

func (c *Config) fillDefaults() {
	if c.Algo == "" {
		c.Algo = "minmin"
	}
	if c.Mode == "" {
		c.Mode = "frisky"
	}
	// Fill Setup field by field so a caller's partial Setup (say, a
	// custom F with default GA sizes) is never silently discarded.
	d := experiments.DefaultSetup()
	if c.Setup.Population == 0 {
		c.Setup.Population = d.Population
	}
	if c.Setup.Generations == 0 {
		c.Setup.Generations = d.Generations
	}
	if c.Setup.HistorySize == 0 {
		c.Setup.HistorySize = d.HistorySize
	}
	if c.Setup.SimThreshold == 0 {
		c.Setup.SimThreshold = d.SimThreshold
	}
	if c.Setup.TrainBatchSize == 0 {
		c.Setup.TrainBatchSize = d.TrainBatchSize
	}
	if c.Setup.Lambda == 0 {
		// λ = 0 would disable Eq. 1 failures entirely; the engine itself
		// substitutes the default in that case, so mirror it here.
		c.Setup.Lambda = d.Lambda
	}
	// Setup.F is honored as-is: f = 0 is a legitimate operating point
	// (an f-risky threshold of zero admits only strictly safe sites),
	// so it must not be "defaulted" away — gridsched -f 0 and
	// trustgridd -f 0 have to agree.
	if c.Setup.PSABatch == 0 {
		c.Setup.PSABatch = d.PSABatch
	}
	if c.BatchInterval <= 0 {
		c.BatchInterval = c.Setup.PSABatch
	}
	if c.Tick <= 0 {
		c.Tick = 100 * time.Millisecond
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 4096
	}
	if c.WALKeep == 0 {
		c.WALKeep = 2
	}
}

// Server is a running trusted-scheduling service instance. Create with
// New, expose Handler over HTTP, stop with Stop.
type Server struct {
	cfg     Config
	online  *sched.Coordinator
	sched   sched.Scheduler
	log     *eventLog
	lat     *latencyTracker
	tenants *tenantRegistry

	// remotes holds the fleet connections in shard order (empty when the
	// shards are in-process). The coordinator drives them through the
	// sched.Shard seam; this slice exists for lifecycle (Stop closes
	// them) and reporting (addr/down in /v2/metrics).
	remotes []*fleet.RemoteShard

	// Durable-state machinery (nil/zero without Config.WALDir). All
	// fields are owned by the loop goroutine while the loop runs; Stop
	// takes ownership after it exits, exactly like the engine. An
	// unsharded daemon keeps one flat log in WALDir (wal); a sharded one
	// keeps the coordinator log (wal, under WALDir/coord — tenants,
	// barriers, snapshots) plus one arrival/churn log per shard
	// (shardWALs, under WALDir/shard-NNNN), stitched into one total
	// order by the global sequence counter nextG.
	wal           *walLog
	shardWALs     []*walLog
	nextG         uint64
	recsSinceSnap int
	walBroken     error

	cmds     chan func()
	quit     chan struct{}
	loopDone chan struct{}
	loopErr  atomic.Value // error
	stopMu   sync.Mutex
	stopOnce sync.Once

	nextID  atomic.Int64
	idMu    sync.Mutex
	usedIDs map[int]struct{} // manual mode: explicit-ID dedupe (bounded by trace size)
	// owners maps every accepted job ID to its tenant — the registry
	// depends_on validation resolves against (a dependency must name an
	// accepted job of the same tenant, which also keeps a DAG inside one
	// shard under tenant routing). Guarded by idMu; persisted in
	// snapshots and rebuilt from WAL arrivals, like usedIDs it grows with
	// the accepted-job count (a retention window is future work).
	owners map[int]string

	submitted   atomic.Int64 // accepted by the HTTP layer
	arrived     atomic.Int64 // ingested by the engine
	placed      atomic.Int64 // placement events (retries included)
	completed   atomic.Int64
	failures    atomic.Int64 // failed execution attempts
	interrupted atomic.Int64 // attempts cut short by site crashes
	started     time.Time
}

// New builds the service and starts its loop goroutine.
func New(cfg Config) (*Server, error) {
	cfg.fillDefaults()
	setup := cfg.Setup

	var policy grid.Policy
	switch cfg.Mode {
	case "secure":
		policy = setup.Policy(grid.Secure, 0)
	case "risky":
		policy = setup.Policy(grid.Risky, 0)
	case "frisky":
		policy = setup.Policy(grid.FRisky, setup.F)
	default:
		return nil, fmt.Errorf("server: unknown mode %q (want secure, risky or frisky)", cfg.Mode)
	}

	n := cfg.Shards
	if len(cfg.Workers) > 0 {
		if cfg.WALDir != "" {
			return nil, fmt.Errorf("server: Workers and WALDir are mutually exclusive — each worker owns its shard's WAL and recovers itself")
		}
		if cfg.Shards > 1 && cfg.Shards != len(cfg.Workers) {
			return nil, fmt.Errorf("server: Shards=%d conflicts with %d workers (the shard count follows the worker list)", cfg.Shards, len(cfg.Workers))
		}
		n = len(cfg.Workers)
	}
	if n > len(cfg.Sites) {
		return nil, fmt.Errorf("server: %d shards need at least %d sites, have %d", n, n, len(cfg.Sites))
	}

	s := &Server{
		cfg:      cfg,
		log:      newEventLog(cfg.EventBuffer),
		lat:      newLatencyTracker(0, n),
		tenants:  newTenantRegistry(),
		cmds:     make(chan func()),
		quit:     make(chan struct{}),
		loopDone: make(chan struct{}),
		owners:   make(map[int]string),
		started:  time.Now(),
	}
	if cfg.Manual {
		s.usedIDs = make(map[int]struct{})
	}
	// Pre-registered tenants seed both the registry and the engines'
	// fair-share weight vector (the default tenant is implicit). One
	// shared weight map is safe: each shard's admission state deep-copies
	// it at construction.
	weights := map[string]float64{api.DefaultTenant: 1}
	for _, t := range cfg.Tenants {
		if err := s.tenants.register(t); err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		norm, _ := s.tenants.get(t.ID)
		weights[norm.ID] = norm.Weight
	}
	// One spec describes the whole sharded run: partition, per-shard RNG
	// labels, admission state, churn slices. In-process shards and fleet
	// workers both derive their engine configs from it through the SAME
	// fleet.Spec.ShardConfig path, so an N-worker fleet is byte-identical
	// to -shards N by construction rather than by double-maintenance.
	// With one shard the RNG labels collapse to the historical
	// "scheduler"/"engine" (ShardRNGLabel), so -shards 1 reproduces the
	// unsharded daemon bit for bit — TestTraceReplayParity pins that.
	spec := &fleet.Spec{
		Sites: cfg.Sites, Training: cfg.Training,
		Algo: cfg.Algo, Mode: cfg.Mode,
		BatchInterval: cfg.BatchInterval, Seed: cfg.Seed, Setup: setup,
		Shards: n, RoundBudget: cfg.RoundBudget, Weights: weights,
		Dynamics: cfg.Dynamics, SubmitBuffer: cfg.SubmitBuffer,
	}
	if len(cfg.Workers) > 0 {
		// Fleet mode: every shard lives in a worker process; the spec
		// travels in the attach frame and each worker builds (or, after a
		// crash, WAL-replays) its own engine from it. The local scheduler
		// instance exists only to report the algorithm's display name.
		namer, err := setup.SchedulerByName(cfg.Algo, policy, rng.New(cfg.Seed).Derive("name"), nil, nil)
		if err != nil {
			return nil, err
		}
		s.sched = namer
		shards := make([]sched.Shard, n)
		for i, addr := range cfg.Workers {
			rs, err := fleet.Dial(addr, spec, i, fleet.DialConfig{})
			if err != nil {
				s.closeRemotes()
				return nil, fmt.Errorf("server: attaching worker %s as shard %d: %w", addr, i, err)
			}
			s.remotes = append(s.remotes, rs)
			shards[i] = rs
		}
		s.online, err = sched.AttachCoordinator(spec.Parts(), shards, s.onEvent)
		if err != nil {
			s.closeRemotes()
			return nil, err
		}
		go s.loop()
		return s, nil
	}
	shardCfgs := make([]sched.RunConfig, n)
	for i := range shardCfgs {
		sc, err := spec.ShardConfig(i, cfg.WALDir != "")
		if err != nil {
			return nil, err
		}
		if i == 0 {
			s.sched = sc.Scheduler
		}
		shardCfgs[i] = sc
	}
	cc := sched.CoordinatorConfig{Shards: shardCfgs, Parts: spec.Parts(), OnEvent: s.onEvent}
	if cfg.WALDir == "" {
		var err error
		s.online, err = sched.NewCoordinator(cc)
		if err != nil {
			return nil, err
		}
	} else if err := s.recover(cc); err != nil {
		return nil, fmt.Errorf("server: recovery: %w", err)
	}
	go s.loop()
	return s, nil
}

// closeRemotes tears down the fleet connections (no-op in-process).
func (s *Server) closeRemotes() {
	for _, rs := range s.remotes {
		rs.Close()
	}
}

// loop is the single goroutine that owns the engine, the scheduler and
// the virtual clock. Live mode advances the clock on a wall ticker;
// manual mode only executes client commands.
func (s *Server) loop() {
	defer close(s.loopDone)
	var tickC <-chan time.Time
	if !s.cfg.Manual {
		ticker := time.NewTicker(s.cfg.Tick)
		defer ticker.Stop()
		tickC = ticker.C
	}
	for {
		select {
		case <-s.quit:
			return
		case <-tickC:
			if err := s.online.AdvanceTo(s.online.Now() + s.cfg.BatchInterval); err != nil {
				// The engine aborted (e.g. a total outage with no rejoin
				// pending): its queued jobs will never place, so settle
				// their latency entries and quota slots before the loop
				// dies — the daemon may keep serving /metrics for a while.
				s.sweepUnplaced()
				s.loopErr.Store(err)
				return
			}
		case fn := <-s.cmds:
			fn()
		}
		// Group commit + periodic snapshot. Running it after every
		// iteration costs nothing when the log is clean, and means a
		// durability failure kills the loop (the daemon dies loudly)
		// rather than silently dropping records.
		if err := s.walHousekeeping(); err != nil {
			s.loopErr.Store(err)
			return
		}
	}
}

// do executes fn on the loop goroutine and waits for it. ctx is
// honored only until the command is enqueued: once the loop has the
// command it WILL run, so returning early on a cancelled request would
// report failure for side effects that still happen (a replay client
// would retry an already-ingested batch into duplicate-ID rejections).
// The post-enqueue wait is bounded by one tick in live mode and is
// immediate in manual mode; loop death still unblocks it.
func (s *Server) do(ctx context.Context, fn func()) error {
	done := make(chan struct{})
	select {
	case s.cmds <- func() { fn(); close(done) }:
	case <-s.loopDone:
		return s.stoppedErr()
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case <-done:
		return nil
	case <-s.loopDone:
		return s.stoppedErr()
	}
}

func (s *Server) stoppedErr() error {
	if err, ok := s.loopErr.Load().(error); ok {
		return fmt.Errorf("server: scheduling loop failed: %w", err)
	}
	return fmt.Errorf("server: stopped")
}

// Done is closed when the scheduling loop exits — after Stop, or on
// its own if the engine fails. The daemon watches it so a dead loop
// does not leave a zombie process serving 503s.
func (s *Server) Done() <-chan struct{} { return s.loopDone }

// claimIDs allocates IDs for one whole submission, atomically: either
// every spec gets its ID or none is burned. Live mode always
// server-assigns; manual mode honors explicit IDs but rejects
// duplicates — against earlier requests AND within this one — before
// recording anything, so a rejected request leaves no claimed IDs
// behind (a replayed trace must round-trip even after a failed retry).
// Auto-assigned IDs stay clear of explicit ones.
func (s *Server) claimIDs(specs []JobSpec) ([]int, error) {
	ids := make([]int, len(specs))
	if !s.cfg.Manual {
		for i := range specs {
			ids[i] = int(s.nextID.Add(1))
		}
		return ids, nil
	}
	s.idMu.Lock()
	defer s.idMu.Unlock()
	inReq := make(map[int]int, len(specs)) // id -> spec index, for dup reporting
	for i, spec := range specs {
		if spec.ID == nil {
			continue
		}
		id := *spec.ID
		if _, dup := s.usedIDs[id]; dup {
			return nil, fmt.Errorf("job %d: duplicate job id %d", i, id)
		}
		if k, dup := inReq[id]; dup {
			return nil, fmt.Errorf("job %d: duplicate job id %d (also job %d in this request)", i, id, k)
		}
		inReq[id] = i
	}
	// All clear: commit. Nothing past this point can fail.
	for i, spec := range specs {
		if spec.ID == nil {
			continue
		}
		id := *spec.ID
		s.usedIDs[id] = struct{}{}
		if int64(id) > s.nextID.Load() {
			s.nextID.Store(int64(id))
		}
		ids[i] = id
	}
	for i, spec := range specs {
		if spec.ID != nil {
			continue
		}
		for {
			id := int(s.nextID.Add(1))
			if _, dup := s.usedIDs[id]; !dup {
				s.usedIDs[id] = struct{}{}
				ids[i] = id
				break
			}
		}
	}
	return ids, nil
}

func (s *Server) stopped() bool {
	select {
	case <-s.loopDone:
		return true
	default:
		return false
	}
}

// onEvent runs on the loop goroutine for every engine transition: it
// maintains the counters, feeds the latency tracker and the arrival
// trace, and appends to the streamable event log.
func (s *Server) onEvent(ev sched.EngineEvent) {
	switch ev.Kind {
	case sched.EventArrived:
		s.arrived.Add(1)
		if s.cfg.TraceWriter != nil {
			// Recording errors must not break scheduling; the writer's
			// owner (cmd/trustgridd) reports them at close time.
			_ = WriteTraceRecord(s.cfg.TraceWriter, TraceRecord{
				ID: ev.Job.ID, Arrival: ev.Job.Arrival,
				Workload: ev.Job.Workload, Nodes: ev.Job.Nodes,
				SD:     ev.Job.SecurityDemand,
				Tenant: ev.Job.Tenant, SafeOnly: ev.Job.SafeOnly,
				DependsOn: ev.Job.DependsOn, Deadline: ev.Job.Deadline,
				Budget: ev.Job.Budget,
			})
		}
	case sched.EventPlaced:
		s.placed.Add(1)
		_, first := s.lat.placedNow(ev.Job.ID)
		s.tenants.event(ev.Job.Tenant, "placed", first)
	case sched.EventFailed:
		s.failures.Add(1)
		s.tenants.event(ev.Job.Tenant, "failed", false)
	case sched.EventCompleted:
		s.completed.Add(1)
		s.tenants.event(ev.Job.Tenant, "completed", false)
	case sched.EventInterrupted:
		s.interrupted.Add(1)
	}
	s.log.Append(wireFromEngine(ev))
}

// sweepUnplaced reconciles the latency tracker and the tenant quota
// gate with the engine's accepted-but-never-placed set. Placements
// resolve pending entries as they happen; jobs that end a run without
// ever placing (unplaceable MustBeSafe work at drain, everything
// queued when a total outage aborts the engine) resolve nowhere, so
// without this sweep their pending entries — and the queued-quota
// slots those entries pin — would leak for the life of the daemon.
// Loop goroutine only (or its successor after the loop has exited).
// Idempotent: abandon deletes the entry it releases, so a job is
// released at most once no matter how many sweeps see it.
func (s *Server) sweepUnplaced() {
	for _, j := range s.online.NeverPlaced() {
		if tenant, ok := s.lat.abandon(j.ID); ok {
			// Per-entry release (not setQueued): a concurrent handler may
			// hold fresh reservations this sweep must not clobber.
			s.tenants.release(tenant, 1)
		}
	}
}

// Stop shuts the loop down. With drain set, every job already accepted
// is scheduled to completion first (virtual time, so this is fast) and
// the final aggregated result is returned; without it, in-flight jobs
// are abandoned. Safe to call more than once (calls serialize).
func (s *Server) Stop(drain bool) (*sched.Result, error) {
	s.stopMu.Lock()
	defer s.stopMu.Unlock()
	s.stopOnce.Do(func() { close(s.quit) })
	<-s.loopDone
	defer s.closeRemotes()
	if err, ok := s.loopErr.Load().(error); ok {
		s.closeWAL()
		return nil, err
	}
	if !drain {
		// Clean shutdown still commits the tail and leaves a fresh
		// snapshot when one is possible (backlogged live-mode arrivals
		// stay in the WAL and replay on the next boot).
		s.finalSnapshot()
		return nil, s.closeWAL()
	}
	// The loop has exited, so the Stop caller is the engine's owner now.
	// A sharded manual-mode daemon logs the drain barrier first, exactly
	// like the /v2/drain handler: the drain moves every shard's window
	// boundary, and recovery must re-execute it to reproduce the merged
	// order (single-shard and live-mode daemons no-op here).
	if s.cfg.Manual {
		_ = s.walBarrier(0, true)
	}
	res, err := s.online.Drain()
	// Whether the drain succeeded or aborted, anything still never
	// placed is now permanently unplaceable: settle its tracker entries
	// and quota slots (the loop has exited, so this caller owns the
	// engine).
	s.sweepUnplaced()
	if err != nil {
		s.closeWAL()
		return nil, err
	}
	s.finalSnapshot()
	return res, s.closeWAL()
}

// finalSnapshot writes a shutdown snapshot on a best-effort basis: a
// failure here only means the next boot replays more WAL tail.
func (s *Server) finalSnapshot() {
	if s.wal == nil || s.walBroken != nil {
		return
	}
	_ = s.writeSnapshot()
}

func (s *Server) closeWAL() error {
	var err error
	for _, l := range s.allWALs() {
		if cerr := l.Close(); err == nil {
			err = cerr
		}
	}
	s.wal, s.shardWALs = nil, nil
	return err
}
