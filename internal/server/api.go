package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"trustgrid/internal/api"
	"trustgrid/internal/grid"
	"trustgrid/internal/sched"
)

// Wire types are defined once in the shared format package
// (internal/api) and re-exported here under their historical names so
// existing embedders keep compiling; see api's package comment.
type (
	// JobSpec is the submission wire format.
	JobSpec = api.JobSpec
	// WireEvent is the streamed form of a sched.EngineEvent.
	WireEvent = api.Event
	// MetricsReport is the /v1/metrics and /v2/metrics response.
	MetricsReport = api.MetricsReport
	// ShardMetrics is one engine shard's slice of the metrics report.
	ShardMetrics = api.ShardMetrics
)

type submitRequest = api.SubmitRequest

func wireFromEngine(ev sched.EngineEvent) WireEvent {
	w := WireEvent{Kind: ev.Kind.String(), Time: ev.Time, Job: ev.Job.ID, Site: ev.Site}
	switch ev.Kind {
	case sched.EventArrived, sched.EventPlaced, sched.EventFailed,
		sched.EventCompleted, sched.EventInterrupted, sched.EventReady:
		w.Tenant = ev.Job.Tenant
	}
	switch ev.Kind {
	case sched.EventArrived:
		w.Arrival = ev.Job.Arrival
		w.Workload = ev.Job.Workload
		w.Nodes = ev.Job.Nodes
		w.SD = ev.Job.SecurityDemand
		w.SafeOnly = ev.Job.SafeOnly
	case sched.EventPlaced:
		w.Start, w.Finish = ev.Start, ev.Finish
		w.Risky, w.FellBack = ev.Risky, ev.FellBack
	case sched.EventCompleted:
		w.Start, w.Finish = ev.Start, ev.Finish
		w.Level = ev.Level
	case sched.EventFailed:
		w.Level = ev.Level
	case sched.EventSiteDown, sched.EventSiteUp:
		w.Level = ev.Level
	case sched.EventSiteSpeed:
		w.Speed = ev.Speed
	}
	return w
}

// Handler returns the service's HTTP API. /v2 is the multi-tenant
// surface; the /v1 routes are a compatibility shim over the default
// tenant — same handlers, with submissions landing on
// api.DefaultTenant (DESIGN.md §9.3). /metrics.prom is unversioned, as
// Prometheus convention expects a stable scrape path.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	// v1 compatibility shim.
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		s.handleSubmit(w, r, api.DefaultTenant)
	})
	mux.HandleFunc("GET /v1/events", s.handleEvents)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/sites", s.handleSites)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("POST /v1/advance", s.handleAdvance)
	mux.HandleFunc("POST /v1/drain", s.handleDrain)
	// v2: tenants are first-class.
	mux.HandleFunc("POST /v2/tenants", s.handleTenantCreate)
	mux.HandleFunc("GET /v2/tenants", s.handleTenantList)
	mux.HandleFunc("GET /v2/tenants/{tenant}", s.handleTenantGet)
	mux.HandleFunc("POST /v2/tenants/{tenant}/jobs", func(w http.ResponseWriter, r *http.Request) {
		s.handleSubmit(w, r, r.PathValue("tenant"))
	})
	mux.HandleFunc("GET /v2/events", s.handleEvents)
	mux.HandleFunc("GET /v2/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v2/sites", s.handleSites)
	mux.HandleFunc("GET /v2/healthz", s.handleHealthz)
	mux.HandleFunc("POST /v2/advance", s.handleAdvance)
	mux.HandleFunc("POST /v2/drain", s.handleDrain)
	// Prometheus text exposition of the existing counters.
	mux.HandleFunc("GET /metrics.prom", s.handleProm)
	return mux
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(api.ErrorBody{Error: fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleTenantCreate(w http.ResponseWriter, r *http.Request) {
	if s.stopped() {
		httpError(w, http.StatusServiceUnavailable, "%v", s.stoppedErr())
		return
	}
	var spec api.TenantSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if err := spec.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Registry insert and engine weight install happen in ONE loop
	// command: the loop goroutine orders registration against arrival
	// ingestion (the determinism contract asks operators to register
	// tenants before traffic, §9.4), and atomicity means a request that
	// dies early leaves nothing behind — no half-registered tenant whose
	// weight never reached the fair-share former and whose re-register
	// retry would bounce off 409. s.do honors the context only until the
	// command is enqueued; once enqueued both effects happen.
	var regErr, walErr error
	if err := s.do(r.Context(), func() {
		if regErr = s.tenants.register(spec); regErr != nil {
			return
		}
		spec, _ = s.tenants.get(spec.ID) // normalized (defaulted weight)
		s.online.SetTenantWeight(spec.ID, spec.Weight)
		// Commit before acknowledging: a 201 must survive a crash.
		if walErr = s.walTenant(spec); walErr == nil {
			walErr = s.walCommit()
		}
	}); err != nil {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if regErr != nil {
		httpError(w, http.StatusConflict, "%v", regErr)
		return
	}
	if walErr != nil {
		httpError(w, http.StatusServiceUnavailable, "wal: %v", walErr)
		return
	}
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, spec)
}

func (s *Server) handleTenantList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, api.TenantList{Tenants: s.tenants.list()})
}

func (s *Server) handleTenantGet(w http.ResponseWriter, r *http.Request) {
	spec, ok := s.tenants.get(r.PathValue("tenant"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown tenant %q", r.PathValue("tenant"))
		return
	}
	writeJSON(w, spec)
}

// retryAfterSeconds is the Retry-After hint on 429 responses: one batch
// tick is when queued jobs next get a chance to place and free quota.
func (s *Server) retryAfterSeconds() int {
	secs := int(s.cfg.Tick / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request, tenantID string) {
	if s.stopped() {
		httpError(w, http.StatusServiceUnavailable, "%v", s.stoppedErr())
		return
	}
	spec, ok := s.tenants.get(tenantID)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown tenant %q", tenantID)
		return
	}
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Jobs) == 0 {
		httpError(w, http.StatusBadRequest, "no jobs in request")
		return
	}
	accepted := time.Now()
	// Validate the WHOLE request before claiming anything: a claimed ID
	// is burned forever in manual mode, so claiming before validation
	// would make a replayed trace unretryable after one malformed job
	// (the request fails, the IDs stay used, the retry hits duplicate-ID
	// rejections). Nothing below this loop can 400.
	jobs := make([]*grid.Job, 0, len(req.Jobs))
	// priorIDs accumulates the explicit IDs of earlier specs in THIS
	// request, so a manual-mode batch can submit a whole DAG at once:
	// a dependency may name any earlier in-request job — never a later
	// one (the trace is an arrival order; forward refs would make it
	// unreplayable) — or a previously accepted job of the same tenant.
	priorIDs := make(map[int]bool)
	for i, js := range req.Jobs {
		if !s.cfg.Manual && (js.ID != nil || js.Arrival != nil) {
			httpError(w, http.StatusBadRequest,
				"job %d: id/arrival are server-assigned in live mode (manual mode honors them)", i)
			return
		}
		j := &grid.Job{
			Workload: js.Workload, Nodes: js.Nodes,
			SecurityDemand: js.SD, Tenant: tenantID,
			SafeOnly: spec.SecureOnly,
			Deadline: js.Deadline, Budget: js.Budget,
		}
		if j.Nodes == 0 {
			j.Nodes = 1
		}
		if j.SecurityDemand == 0 {
			j.SecurityDemand = spec.SDDefault
		}
		if spec.MaxSD > 0 && j.SecurityDemand > spec.MaxSD {
			httpError(w, http.StatusBadRequest,
				"job %d: sd %v exceeds tenant %q max_sd %v", i, j.SecurityDemand, tenantID, spec.MaxSD)
			return
		}
		if js.Arrival != nil {
			j.Arrival = *js.Arrival
		}
		if len(js.DependsOn) > 0 {
			depSeen := make(map[int]bool, len(js.DependsOn))
			for _, d := range js.DependsOn {
				if js.ID != nil && d == *js.ID {
					httpError(w, http.StatusBadRequest, "job %d: depends on itself", i)
					return
				}
				if depSeen[d] {
					httpError(w, http.StatusBadRequest, "job %d: lists dependency %d twice", i, d)
					return
				}
				depSeen[d] = true
				if priorIDs[d] {
					continue
				}
				s.idMu.Lock()
				owner, known := s.owners[d]
				s.idMu.Unlock()
				if !known {
					httpError(w, http.StatusBadRequest,
						"job %d: depends on unknown job %d (dependencies must name an accepted job or an earlier explicit id in this request)", i, d)
					return
				}
				if owner != tenantID {
					// Deliberately the same wording as the unknown case:
					// tenants must not be able to probe other tenants' job
					// IDs through dependency errors.
					httpError(w, http.StatusBadRequest,
						"job %d: depends on unknown job %d (dependencies must name an accepted job or an earlier explicit id in this request)", i, d)
					return
				}
			}
			j.DependsOn = append([]int(nil), js.DependsOn...)
		}
		if err := j.Validate(); err != nil {
			httpError(w, http.StatusBadRequest, "job %d: %v", i, err)
			return
		}
		if js.ID != nil {
			priorIDs[*js.ID] = true
		}
		jobs = append(jobs, j)
	}
	// Admission control: all-or-nothing against the tenant's queue
	// quota, so a 429'd client retries the same batch.
	if ok, over := s.tenants.reserve(tenantID, len(jobs)); !ok {
		if over {
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
			httpError(w, http.StatusTooManyRequests,
				"tenant %q queue quota (%d) exceeded", tenantID, spec.MaxQueue)
			return
		}
		httpError(w, http.StatusNotFound, "unknown tenant %q", tenantID)
		return
	}
	// IDs are claimed only now, atomically for the whole request, after
	// every other reason to reject has been ruled out.
	ids, err := s.claimIDs(req.Jobs)
	if err != nil {
		s.tenants.release(tenantID, len(jobs))
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.idMu.Lock()
	for i, j := range jobs {
		j.ID = ids[i]
		s.owners[j.ID] = tenantID
	}
	s.idMu.Unlock()
	for _, j := range jobs {
		// Pending entries exist before injection so a placement racing
		// this handler (live mode) always finds its submission — the
		// latency sample and the quota release both depend on it.
		s.lat.submitted(j.ID, tenantID, accepted)
	}
	injected := 0
	counted := false
	var subErr error
	if s.cfg.Manual {
		// Manual mode has no ticker draining the arrival channel, so a
		// trace bigger than the channel buffer would deadlock the
		// replay client. Ingest on the loop goroutine instead, which
		// also keeps request order = ingestion order.
		err := s.do(r.Context(), func() {
			for _, j := range jobs {
				// Log-then-apply, stamped with the current clock: replay
				// advances the engine here before re-submitting, so the job
				// re-enters the event queue in its original position (same
				// arrival clamp, same tie order at batch boundaries).
				if subErr = s.walArrival(j, s.online.Now()); subErr != nil {
					return
				}
				if subErr = s.online.SubmitLocal(j); subErr != nil {
					return
				}
				injected++
			}
			if subErr == nil {
				// Commit before acknowledging: an accepted batch must
				// survive a crash.
				subErr = s.walCommit()
			}
			// Counters advance on the loop goroutine, atomically with the
			// WAL records w.r.t. housekeeping — a snapshot covering these
			// records must already reflect them (replay skips covered
			// records, so an increment left to the handler would be lost).
			s.submitted.Add(int64(injected))
			s.tenants.addSubmitted(tenantID, injected)
			counted = true
		})
		if subErr == nil {
			subErr = err
		}
	} else {
		// Live mode logs and commits the batch (on the loop goroutine,
		// which owns the WAL) before injecting: a crash between the two
		// resurrects the jobs from the log rather than losing an
		// acknowledged batch in the arrival channel. Ingest times are
		// wall-tick-dependent here, so the records carry no At and
		// recovery re-ingests at the recovered clock.
		if s.wal != nil {
			var walErr error
			err := s.do(r.Context(), func() {
				for _, j := range jobs {
					if walErr = s.walArrival(j, 0); walErr != nil {
						return
					}
				}
				if walErr = s.walCommit(); walErr == nil {
					// Logged and committed = durable: these jobs reach the
					// engine either via the channel below or via replay
					// after a crash. Count them here, atomically with their
					// records, for the same snapshot-coverage reason as the
					// manual path.
					s.submitted.Add(int64(len(jobs)))
					s.tenants.addSubmitted(tenantID, len(jobs))
					counted = true
				}
			})
			if walErr == nil {
				walErr = err
			}
			if walErr != nil {
				for _, j := range jobs {
					s.lat.forget(j.ID)
				}
				s.tenants.release(tenantID, len(jobs))
				httpError(w, http.StatusServiceUnavailable, "wal: %v", walErr)
				return
			}
		}
		for _, j := range jobs {
			// Abort on loop exit: a dead loop never drains the channel,
			// and a blocked send here would wedge the handler forever.
			if subErr = s.online.SubmitOr(s.loopDone, j); subErr != nil {
				break
			}
			injected++
		}
	}
	if !counted {
		s.submitted.Add(int64(injected))
		s.tenants.addSubmitted(tenantID, injected)
	}
	if subErr != nil {
		// The tail never reached the engine: unwind its accounting.
		for _, j := range jobs[injected:] {
			s.lat.forget(j.ID)
		}
		s.tenants.release(tenantID, len(jobs)-injected)
		httpError(w, http.StatusServiceUnavailable,
			"submit: %v (%d of %d jobs were already accepted)", subErr, injected, len(jobs))
		return
	}
	writeJSON(w, api.SubmitResponse{IDs: ids, Accepted: len(jobs)})
}

// handleEvents streams the event log as NDJSON. Query parameters:
// since (cursor, default 0), max (page size: without follow the
// response stops after one page of max events — paginate with the last
// event's seq+1), follow (keep the connection open and stream new
// events), kinds (comma-separated filter, e.g. "placed,completed") and
// tenant (only that tenant's job events; site lifecycle events carry no
// tenant and are filtered out).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	cursor := int64(0)
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "bad since %q", v)
			return
		}
		cursor = n
	}
	max := 0
	if v := q.Get("max"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "bad max %q", v)
			return
		}
		max = n
	}
	follow := q.Get("follow") == "true" || q.Get("follow") == "1"
	var kinds map[string]bool
	if v := q.Get("kinds"); v != "" {
		kinds = make(map[string]bool)
		for _, k := range strings.Split(v, ",") {
			kinds[strings.TrimSpace(k)] = true
		}
	}
	tenant := q.Get("tenant")

	var match func(*WireEvent) bool
	if kinds != nil || tenant != "" {
		match = func(ev *WireEvent) bool {
			if kinds != nil && !kinds[ev.Kind] {
				return false
			}
			return tenant == "" || ev.Tenant == tenant
		}
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	emit := func(evs []WireEvent) {
		for _, ev := range evs {
			_ = enc.Encode(ev)
		}
	}
	for {
		// Grab the wait channel before reading so an append between the
		// read and the wait cannot be missed.
		ch := s.log.WaitCh()
		evs, next := s.log.ReadSince(cursor, max, match)
		advanced := next != cursor
		cursor = next
		emit(evs)
		if advanced {
			if !follow && max > 0 {
				// One page per request when a page size is set. A short
				// page means the log was exhausted at read time; events
				// appended since belong to the client's next poll.
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			continue
		}
		if !follow {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		case <-s.loopDone:
			// Final read so a drained shutdown's tail is not lost.
			evs, _ := s.log.ReadSince(cursor, 0, match)
			emit(evs)
			return
		}
	}
}

// buildReport assembles the metrics report; tenant (optional) narrows
// the per-tenant section. Shared by the JSON and Prometheus endpoints.
func (s *Server) buildReport(r *http.Request, tenant string) (MetricsReport, error) {
	rep := MetricsReport{
		Algo:          s.sched.Name(),
		Mode:          s.cfg.Mode,
		Manual:        s.cfg.Manual,
		BatchInterval: s.cfg.BatchInterval,
		TickMS:        float64(s.cfg.Tick) / float64(time.Millisecond),
		RoundBudget:   s.cfg.RoundBudget,
		UptimeS:       time.Since(s.started).Seconds(),
		Submitted:     s.submitted.Load(),
		Arrived:       s.arrived.Load(),
		Backlog:       s.online.Backlog(),
		Placed:        s.placed.Load(),
		Failures:      s.failures.Load(),
		Interrupted:   s.interrupted.Load(),
		Completed:     s.completed.Load(),
		Rejected:      s.tenants.rejectedTotal(),
		Latency:       s.lat.summary(),
		Tenants:       s.tenants.metrics(s.lat, tenant),
	}
	if rep.UptimeS > 0 {
		rep.SubmitRate = float64(rep.Submitted) / rep.UptimeS
	}
	err := s.do(r.Context(), func() {
		rep.VirtualNow = s.online.Now()
		rep.InFlight = s.online.InFlight()
		rep.Batches = s.online.Batches()
		rep.LargestBatch = s.online.LargestBatch()
		for _, st := range s.online.SiteStatuses() {
			if st.Alive {
				rep.SitesAlive++
			}
		}
		if sum := s.online.Summary(); sum.Jobs > 0 {
			rep.Summary = &sum
		}
		if n := s.online.Shards(); n > 1 {
			rep.Shards = make([]api.ShardMetrics, n)
			for i := range rep.Shards {
				o := s.online.Shard(i)
				sm := api.ShardMetrics{
					Shard:        i,
					Sites:        len(s.online.Part(i)),
					VirtualNow:   o.Now(),
					Seen:         o.Seen(),
					InFlight:     o.InFlight(),
					Backlog:      o.Backlog(),
					Batches:      o.Batches(),
					LargestBatch: o.LargestBatch(),
					Latency:      s.lat.shardSummary(i),
				}
				if i < len(s.remotes) {
					sm.Addr = s.remotes[i].Addr()
					sm.Down = s.remotes[i].Down()
				}
				for _, st := range o.SiteStatuses() {
					if st.Alive {
						sm.SitesAlive++
					}
				}
				rep.Shards[i] = sm
			}
		}
	})
	return rep, err
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	tenant := r.URL.Query().Get("tenant")
	if tenant != "" {
		if _, ok := s.tenants.get(tenant); !ok {
			httpError(w, http.StatusNotFound, "unknown tenant %q", tenant)
			return
		}
	}
	rep, err := s.buildReport(r, tenant)
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeJSON(w, rep)
}

// handleSites reports the live dynamic-grid state: per-site liveness,
// effective speed, and the scheduler-visible trust estimate with the
// reputation evidence behind it. On static runs it reflects the
// immutable platform.
func (s *Server) handleSites(w http.ResponseWriter, r *http.Request) {
	var rep api.SitesReport
	err := s.do(r.Context(), func() {
		rep.Sites = s.online.SiteStatuses()
		rep.VirtualNow = s.online.Now()
	})
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeJSON(w, rep)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.stopped() {
		httpError(w, http.StatusServiceUnavailable, "%v", s.stoppedErr())
		return
	}
	writeJSON(w, map[string]any{"ok": true})
}

func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	if !s.cfg.Manual {
		httpError(w, http.StatusConflict, "advance requires manual clock mode")
		return
	}
	var req api.AdvanceRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	var now float64
	var advErr error
	badRequest := false
	err := s.do(r.Context(), func() {
		target := req.To
		if req.DT > 0 {
			target = s.online.Now() + req.DT
		}
		if target < s.online.Now() {
			advErr = fmt.Errorf("target %v before virtual now %v", target, s.online.Now())
			badRequest = true
			return
		}
		// Sharded durable daemons log the barrier before executing it (a
		// no-op otherwise): the window boundary is part of the recorded
		// input set, and the commit lands before the response does.
		if advErr = s.walBarrier(target, false); advErr != nil {
			return
		}
		advErr = s.online.AdvanceTo(target)
		if advErr == nil {
			advErr = s.walCommit()
		} else {
			// The engine aborted mid-advance: everything still queued is
			// permanently unplaceable — settle its latency entries and
			// queued-quota slots so the daemon's gauges don't leak.
			s.sweepUnplaced()
		}
		now = s.online.Now()
	})
	if err == nil {
		err = advErr
	}
	if err != nil {
		code := http.StatusInternalServerError
		if badRequest {
			code = http.StatusBadRequest
		}
		httpError(w, code, "advance: %v", err)
		return
	}
	writeJSON(w, api.AdvanceResponse{VirtualNow: now})
}

func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	if !s.cfg.Manual {
		httpError(w, http.StatusConflict, "drain requires manual clock mode")
		return
	}
	var res *sched.Result
	var now float64
	var drainErr error
	err := s.do(r.Context(), func() {
		// Like advance: a sharded durable daemon records the drain barrier
		// ahead of the fan-out it triggers.
		if drainErr = s.walBarrier(0, true); drainErr != nil {
			return
		}
		res, drainErr = s.online.Drain()
		// Success or not, the drain is the end of the line for anything
		// never placed (unplaceable MustBeSafe work errors the drain and
		// stays queued forever): resolve those jobs' latency entries and
		// release their tenants' queued-quota slots.
		s.sweepUnplaced()
		if drainErr == nil {
			drainErr = s.walCommit()
		}
		now = s.online.Now()
	})
	if err == nil {
		err = drainErr
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, "drain: %v", err)
		return
	}
	writeJSON(w, api.DrainResponse{
		VirtualNow: now,
		Summary:    res.Summary,
		Batches:    res.Batches,
	})
}
