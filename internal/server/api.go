package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"trustgrid/internal/grid"
	"trustgrid/internal/metrics"
	"trustgrid/internal/sched"
)

// JobSpec is the submission wire format. In live mode the server stamps
// identity and arrival itself (the wall-clock side of the determinism
// boundary), so client-supplied id/arrival are rejected; in manual mode
// both are honored, which is what trace replay needs.
type JobSpec struct {
	ID       *int     `json:"id,omitempty"`
	Arrival  *float64 `json:"arrival,omitempty"` // virtual seconds
	Workload float64  `json:"workload"`
	Nodes    int      `json:"nodes,omitempty"` // default 1
	SD       float64  `json:"sd"`
}

type submitRequest struct {
	Jobs []JobSpec `json:"jobs"`
}

type submitResponse struct {
	IDs      []int `json:"ids"`
	Accepted int   `json:"accepted"`
}

// WireEvent is the streamed form of a sched.EngineEvent. Arrived events
// carry the job spec (they double as the arrival trace); placed events
// carry the planned execution window; site lifecycle events (site_down,
// site_up, site_speed — dynamic grids only) carry job −1 plus the
// site's new level or speed.
type WireEvent struct {
	Seq      int64   `json:"seq"`
	Kind     string  `json:"kind"`
	Time     float64 `json:"t"`
	Job      int     `json:"job"`
	Site     int     `json:"site"`
	Start    float64 `json:"start,omitempty"`
	Finish   float64 `json:"finish,omitempty"`
	Risky    bool    `json:"risky,omitempty"`
	FellBack bool    `json:"fell_back,omitempty"`
	Arrival  float64 `json:"arrival,omitempty"`
	Workload float64 `json:"workload,omitempty"`
	Nodes    int     `json:"nodes,omitempty"`
	SD       float64 `json:"sd,omitempty"`
	Level    float64 `json:"level,omitempty"`
	Speed    float64 `json:"speed,omitempty"`
}

func wireFromEngine(ev sched.EngineEvent) WireEvent {
	w := WireEvent{Kind: ev.Kind.String(), Time: ev.Time, Job: ev.Job.ID, Site: ev.Site}
	switch ev.Kind {
	case sched.EventArrived:
		w.Arrival = ev.Job.Arrival
		w.Workload = ev.Job.Workload
		w.Nodes = ev.Job.Nodes
		w.SD = ev.Job.SecurityDemand
	case sched.EventPlaced:
		w.Start, w.Finish = ev.Start, ev.Finish
		w.Risky, w.FellBack = ev.Risky, ev.FellBack
	case sched.EventCompleted:
		w.Start, w.Finish = ev.Start, ev.Finish
		w.Level = ev.Level
	case sched.EventFailed:
		w.Level = ev.Level
	case sched.EventSiteDown, sched.EventSiteUp:
		w.Level = ev.Level
	case sched.EventSiteSpeed:
		w.Speed = ev.Speed
	}
	return w
}

// MetricsReport is the /v1/metrics response.
type MetricsReport struct {
	Algo          string           `json:"algo"`
	Mode          string           `json:"mode"`
	Manual        bool             `json:"manual"`
	BatchInterval float64          `json:"batch_interval_s"`
	TickMS        float64          `json:"tick_ms"`
	UptimeS       float64          `json:"uptime_s"`
	VirtualNow    float64          `json:"virtual_now_s"`
	Submitted     int64            `json:"submitted"`
	Arrived       int64            `json:"arrived"`
	Backlog       int              `json:"backlog"`
	InFlight      int              `json:"in_flight"`
	Placed        int64            `json:"placed"`
	Failures      int64            `json:"failed_attempts"`
	Interrupted   int64            `json:"interrupted_attempts"`
	Completed     int64            `json:"completed"`
	SitesAlive    int              `json:"sites_alive"`
	Batches       int              `json:"batches"`
	LargestBatch  int              `json:"largest_batch"`
	SubmitRate    float64          `json:"submit_rate_per_s"`
	Latency       LatencySummary   `json:"sched_latency"`
	Summary       *metrics.Summary `json:"summary,omitempty"`
}

// Handler returns the service's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/events", s.handleEvents)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/sites", s.handleSites)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("POST /v1/advance", s.handleAdvance)
	mux.HandleFunc("POST /v1/drain", s.handleDrain)
	return mux
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.stopped() {
		httpError(w, http.StatusServiceUnavailable, "%v", s.stoppedErr())
		return
	}
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Jobs) == 0 {
		httpError(w, http.StatusBadRequest, "no jobs in request")
		return
	}
	accepted := time.Now()
	jobs := make([]*grid.Job, 0, len(req.Jobs))
	ids := make([]int, 0, len(req.Jobs))
	for i, spec := range req.Jobs {
		if !s.cfg.Manual && (spec.ID != nil || spec.Arrival != nil) {
			httpError(w, http.StatusBadRequest,
				"job %d: id/arrival are server-assigned in live mode (manual mode honors them)", i)
			return
		}
		j := &grid.Job{Workload: spec.Workload, Nodes: spec.Nodes, SecurityDemand: spec.SD}
		if j.Nodes == 0 {
			j.Nodes = 1
		}
		id, err := s.claimID(spec.ID)
		if err != nil {
			httpError(w, http.StatusBadRequest, "job %d: %v", i, err)
			return
		}
		j.ID = id
		if spec.Arrival != nil {
			j.Arrival = *spec.Arrival
		}
		if err := j.Validate(); err != nil {
			httpError(w, http.StatusBadRequest, "job %d: %v", i, err)
			return
		}
		jobs = append(jobs, j)
		ids = append(ids, j.ID)
	}
	// Per-job accounting happens only after a job is genuinely handed to
	// the engine, so a rejected tail never inflates `submitted` or
	// strands latency-tracker entries for jobs that will never place.
	injected := 0
	var subErr error
	if s.cfg.Manual {
		// Manual mode has no ticker draining the arrival channel, so a
		// trace bigger than the channel buffer would deadlock the
		// replay client. Ingest on the loop goroutine instead, which
		// also keeps request order = ingestion order.
		err := s.do(r.Context(), func() {
			for _, j := range jobs {
				if subErr = s.online.SubmitLocal(j); subErr != nil {
					return
				}
				injected++
			}
		})
		if subErr == nil {
			subErr = err
		}
	} else {
		for _, j := range jobs {
			// Abort on loop exit: a dead loop never drains the channel,
			// and a blocked send here would wedge the handler forever.
			if subErr = s.online.SubmitOr(s.loopDone, j); subErr != nil {
				break
			}
			injected++
		}
	}
	for _, j := range jobs[:injected] {
		s.lat.submitted(j.ID, accepted)
	}
	s.submitted.Add(int64(injected))
	if subErr != nil {
		httpError(w, http.StatusServiceUnavailable,
			"submit: %v (%d of %d jobs were already accepted)", subErr, injected, len(jobs))
		return
	}
	writeJSON(w, submitResponse{IDs: ids, Accepted: len(jobs)})
}

// handleEvents streams the event log as NDJSON. Query parameters:
// since (cursor, default 0), max (page size: without follow the
// response stops after one page of max events — paginate with the last
// event's seq+1), follow (keep the connection open and stream new
// events), and kinds (comma-separated filter, e.g. "placed,completed").
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	cursor := int64(0)
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "bad since %q", v)
			return
		}
		cursor = n
	}
	max := 0
	if v := q.Get("max"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "bad max %q", v)
			return
		}
		max = n
	}
	follow := q.Get("follow") == "true" || q.Get("follow") == "1"
	var kinds map[string]bool
	if v := q.Get("kinds"); v != "" {
		kinds = make(map[string]bool)
		for _, k := range strings.Split(v, ",") {
			kinds[strings.TrimSpace(k)] = true
		}
	}

	var match func(*WireEvent) bool
	if kinds != nil {
		match = func(ev *WireEvent) bool { return kinds[ev.Kind] }
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	emit := func(evs []WireEvent) {
		for _, ev := range evs {
			_ = enc.Encode(ev)
		}
	}
	for {
		// Grab the wait channel before reading so an append between the
		// read and the wait cannot be missed.
		ch := s.log.WaitCh()
		evs, next := s.log.ReadSince(cursor, max, match)
		advanced := next != cursor
		cursor = next
		emit(evs)
		if advanced {
			if !follow && max > 0 {
				// One page per request when a page size is set. A short
				// page means the log was exhausted at read time; events
				// appended since belong to the client's next poll.
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			continue
		}
		if !follow {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		case <-s.loopDone:
			// Final read so a drained shutdown's tail is not lost.
			evs, _ := s.log.ReadSince(cursor, 0, match)
			emit(evs)
			return
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	rep := MetricsReport{
		Algo:          s.sched.Name(),
		Mode:          s.cfg.Mode,
		Manual:        s.cfg.Manual,
		BatchInterval: s.cfg.BatchInterval,
		TickMS:        float64(s.cfg.Tick) / float64(time.Millisecond),
		UptimeS:       time.Since(s.started).Seconds(),
		Submitted:     s.submitted.Load(),
		Arrived:       s.arrived.Load(),
		Backlog:       s.online.Backlog(),
		Placed:        s.placed.Load(),
		Failures:      s.failures.Load(),
		Interrupted:   s.interrupted.Load(),
		Completed:     s.completed.Load(),
		Latency:       s.lat.summary(),
	}
	if rep.UptimeS > 0 {
		rep.SubmitRate = float64(rep.Submitted) / rep.UptimeS
	}
	err := s.do(r.Context(), func() {
		rep.VirtualNow = s.online.Now()
		rep.InFlight = s.online.InFlight()
		rep.Batches = s.online.Batches()
		rep.LargestBatch = s.online.LargestBatch()
		for _, st := range s.online.SiteStatuses() {
			if st.Alive {
				rep.SitesAlive++
			}
		}
		if sum := s.online.Summary(); sum.Jobs > 0 {
			rep.Summary = &sum
		}
	})
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeJSON(w, rep)
}

// handleSites reports the live dynamic-grid state: per-site liveness,
// effective speed, and the scheduler-visible trust estimate with the
// reputation evidence behind it. On static runs it reflects the
// immutable platform.
func (s *Server) handleSites(w http.ResponseWriter, r *http.Request) {
	var sites []sched.SiteStatus
	var now float64
	err := s.do(r.Context(), func() {
		sites = s.online.SiteStatuses()
		now = s.online.Now()
	})
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeJSON(w, map[string]any{"virtual_now_s": now, "sites": sites})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.stopped() {
		httpError(w, http.StatusServiceUnavailable, "%v", s.stoppedErr())
		return
	}
	writeJSON(w, map[string]any{"ok": true})
}

type advanceRequest struct {
	To float64 `json:"to"` // absolute virtual time
	DT float64 `json:"dt"` // or a relative step
}

func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	if !s.cfg.Manual {
		httpError(w, http.StatusConflict, "advance requires manual clock mode")
		return
	}
	var req advanceRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	var now float64
	var advErr error
	badRequest := false
	err := s.do(r.Context(), func() {
		target := req.To
		if req.DT > 0 {
			target = s.online.Now() + req.DT
		}
		if target < s.online.Now() {
			advErr = fmt.Errorf("target %v before virtual now %v", target, s.online.Now())
			badRequest = true
			return
		}
		advErr = s.online.AdvanceTo(target)
		now = s.online.Now()
	})
	if err == nil {
		err = advErr
	}
	if err != nil {
		code := http.StatusInternalServerError
		if badRequest {
			code = http.StatusBadRequest
		}
		httpError(w, code, "advance: %v", err)
		return
	}
	writeJSON(w, map[string]float64{"virtual_now_s": now})
}

func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	if !s.cfg.Manual {
		httpError(w, http.StatusConflict, "drain requires manual clock mode")
		return
	}
	var res *sched.Result
	var now float64
	var drainErr error
	err := s.do(r.Context(), func() {
		res, drainErr = s.online.Drain()
		now = s.online.Now()
	})
	if err == nil {
		err = drainErr
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, "drain: %v", err)
		return
	}
	writeJSON(w, map[string]any{
		"virtual_now_s": now,
		"summary":       res.Summary,
		"batches":       res.Batches,
	})
}
