package server

import (
	"io"

	"trustgrid/internal/api"
	"trustgrid/internal/grid"
)

// TraceRecord is one accepted arrival; the canonical definition lives
// in the shared wire-format package (api.TraceRecord), re-exported here
// for the daemon and existing callers.
type TraceRecord = api.TraceRecord

// WriteTraceRecord appends one JSONL line.
func WriteTraceRecord(w io.Writer, rec TraceRecord) error { return api.WriteTraceRecord(w, rec) }

// ReadTrace parses a JSONL arrival trace.
func ReadTrace(r io.Reader) ([]TraceRecord, error) { return api.ReadTrace(r) }

// JobsFromTrace materializes a whole trace, preserving order.
func JobsFromTrace(recs []TraceRecord) []*grid.Job { return api.JobsFromTrace(recs) }
