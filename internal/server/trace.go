package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"trustgrid/internal/grid"
)

// TraceRecord is one accepted arrival — the complete deterministic
// input of the scheduling pipeline. A recorded trace plus the daemon's
// seed reproduces every placement byte-for-byte, whether replayed
// through the daemon in manual mode or through sched.Run (DESIGN.md
// §6.4); the parity test enforces exactly that.
type TraceRecord struct {
	ID       int     `json:"id"`
	Arrival  float64 `json:"arrival"` // effective (post-clamp) virtual seconds
	Workload float64 `json:"workload"`
	Nodes    int     `json:"nodes"`
	SD       float64 `json:"sd"`
}

// Job materializes the record as a simulator job.
func (t TraceRecord) Job() *grid.Job {
	return &grid.Job{
		ID: t.ID, Arrival: t.Arrival, Workload: t.Workload,
		Nodes: t.Nodes, SecurityDemand: t.SD,
	}
}

// WriteTraceRecord appends one JSONL line.
func WriteTraceRecord(w io.Writer, rec TraceRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadTrace parses a JSONL arrival trace.
func ReadTrace(r io.Reader) ([]TraceRecord, error) {
	var out []TraceRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec TraceRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("server: trace line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// JobsFromTrace materializes a whole trace, preserving order.
func JobsFromTrace(recs []TraceRecord) []*grid.Job {
	jobs := make([]*grid.Job, len(recs))
	for i, r := range recs {
		jobs[i] = r.Job()
	}
	return jobs
}
