package server

import "sync"

// eventLog is a bounded, append-only log of wire events with absolute
// sequence numbers and a broadcast channel for streaming readers. The
// loop goroutine appends; any number of HTTP readers poll or follow.
// When the bound is exceeded the oldest events are evicted; a reader
// whose cursor has been evicted resumes at the oldest retained event
// (its next event's seq tells it how much it missed).
type eventLog struct {
	mu     sync.Mutex
	max    int
	events []WireEvent
	base   int64         // seq of events[0]
	notify chan struct{} // closed and replaced on every append
}

const defaultEventBuffer = 65536

func newEventLog(max int) *eventLog {
	if max <= 0 {
		max = defaultEventBuffer
	}
	return &eventLog{max: max, notify: make(chan struct{})}
}

// Append assigns the next sequence number and stores the event.
func (l *eventLog) Append(ev WireEvent) {
	l.mu.Lock()
	ev.Seq = l.base + int64(len(l.events))
	l.events = append(l.events, ev)
	if len(l.events) > l.max {
		// Evict the oldest half in one copy so eviction is amortized
		// rather than per-append.
		drop := len(l.events) / 2
		l.base += int64(drop)
		l.events = append(l.events[:0], l.events[drop:]...)
	}
	ch := l.notify
	l.notify = make(chan struct{})
	l.mu.Unlock()
	close(ch)
}

// ReadSince returns up to max retained events with seq >= since that
// satisfy match (nil matches all), and the cursor to pass next time.
// max <= 0 means no limit. The limit counts *matching* events and the
// cursor always advances past every scanned event, so a filtered read
// can never return an empty page while matching events remain.
func (l *eventLog) ReadSince(since int64, max int, match func(*WireEvent) bool) ([]WireEvent, int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if since < l.base {
		since = l.base
	}
	i := int(since - l.base)
	if i >= len(l.events) {
		return nil, l.base + int64(len(l.events))
	}
	var out []WireEvent
	next := since
	for ; i < len(l.events); i++ {
		ev := l.events[i]
		if match == nil || match(&ev) {
			out = append(out, ev)
			if max > 0 && len(out) == max {
				next = ev.Seq + 1
				return out, next
			}
		}
		next = ev.Seq + 1
	}
	return out, next
}

// snapshotState returns the retained window and the absolute sequence
// number of its first event, for the server snapshot.
func (l *eventLog) snapshotState() (base int64, events []WireEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base, append([]WireEvent(nil), l.events...)
}

// restore reloads a snapshotted window so streaming cursors survive a
// restart: sequence numbers continue where the snapshot left off, and a
// reader whose cursor points past the recovered end simply re-reads the
// events the crash rewound (they are re-executed and re-appended with
// the same sequence numbers).
func (l *eventLog) restore(base int64, events []WireEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.base = base
	l.events = append(l.events[:0], events...)
}

// WaitCh returns a channel that is closed at the next append. Callers
// re-fetch after every wakeup.
func (l *eventLog) WaitCh() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.notify
}
