package server_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"trustgrid/internal/experiments"
	"trustgrid/internal/fuzzy"
	"trustgrid/internal/grid"
	"trustgrid/internal/rng"
	"trustgrid/internal/sched"
	"trustgrid/internal/server"
)

// TestSitesEndpoint drives a manual-clock daemon over a churn trace and
// checks /v1/sites reports liveness, degraded speed and reputation
// evidence, and that /v1/metrics counts the interruption.
func TestSitesEndpoint(t *testing.T) {
	setup := experiments.TestSetup()
	const seed = 21
	w, err := setup.PSAWorkload(seed, 60)
	if err != nil {
		t.Fatal(err)
	}
	repCfg := fuzzy.DefaultReputationConfig()
	srv, err := server.New(server.Config{
		Sites: w.Sites, Training: w.Training, Algo: "minmin", Mode: "frisky",
		BatchInterval: w.Batch, Seed: seed, Setup: setup, Manual: true,
		Dynamics: &sched.DynamicsConfig{
			Churn: []grid.ChurnEvent{
				{Time: w.Batch * 1.5, Site: 0, Kind: grid.ChurnCrash},
				{Time: w.Batch * 2.5, Site: 1, Kind: grid.ChurnDegrade, Factor: 0.5},
			},
			Reputation: &repCfg,
			TrueLevels: grid.DeceptiveLevels(w.Sites, 0.5, 0.4, rng.New(seed)),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop(false)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, j := range w.Jobs {
		id, arr := j.ID, j.Arrival
		resp := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"jobs": []server.JobSpec{{
			ID: &id, Arrival: &arr, Workload: j.Workload, Nodes: j.Nodes, SD: j.SecurityDemand,
		}}})
		requireStatus(t, resp, http.StatusOK)
	}
	resp := postJSON(t, ts.URL+"/v1/drain", map[string]any{})
	requireStatus(t, resp, http.StatusOK)

	sites, err := http.Get(ts.URL + "/v1/sites")
	if err != nil {
		t.Fatal(err)
	}
	defer sites.Body.Close()
	var rep struct {
		VirtualNow float64            `json:"virtual_now_s"`
		Sites      []sched.SiteStatus `json:"sites"`
	}
	if err := json.NewDecoder(sites.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Sites) != len(w.Sites) {
		t.Fatalf("%d sites reported, want %d", len(rep.Sites), len(w.Sites))
	}
	if rep.Sites[0].Alive {
		t.Error("site 0 should be crashed")
	}
	if rep.Sites[1].Speed != rep.Sites[1].BaseSpeed*0.5 {
		t.Errorf("site 1 speed %v, want half of %v", rep.Sites[1].Speed, rep.Sites[1].BaseSpeed)
	}
	obs := 0
	for _, st := range rep.Sites {
		obs += st.Observations
	}
	if obs == 0 {
		t.Error("no reputation observations recorded across the platform")
	}

	metrics, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer metrics.Body.Close()
	var m server.MetricsReport
	if err := json.NewDecoder(metrics.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.SitesAlive != len(w.Sites)-1 {
		t.Errorf("SitesAlive = %d, want %d", m.SitesAlive, len(w.Sites)-1)
	}
	if m.Completed != int64(len(w.Jobs)) {
		t.Errorf("completed %d of %d", m.Completed, len(w.Jobs))
	}
}
