package server_test

import (
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"trustgrid/internal/api"
	"trustgrid/internal/client"
	"trustgrid/internal/experiments"
	"trustgrid/internal/fuzzy"
	"trustgrid/internal/grid"
	"trustgrid/internal/rng"
	"trustgrid/internal/sched"
	"trustgrid/internal/server"
)

// shardedSites is a 6-site heterogeneous platform — enough sites for a
// 3- or 4-way split with a mixed speed/security profile per shard.
func shardedSites() []*grid.Site {
	return []*grid.Site{
		{ID: 0, Speed: 10, Nodes: 8, SecurityLevel: 0.95},
		{ID: 1, Speed: 20, Nodes: 16, SecurityLevel: 0.5},
		{ID: 2, Speed: 5, Nodes: 4, SecurityLevel: 0.8},
		{ID: 3, Speed: 15, Nodes: 8, SecurityLevel: 0.7},
		{ID: 4, Speed: 8, Nodes: 4, SecurityLevel: 0.9},
		{ID: 5, Speed: 12, Nodes: 8, SecurityLevel: 0.6},
	}
}

// shardedTenantNames picks one tenant id per shard, so the workload
// provably exercises every shard of an n-way daemon.
func shardedTenantNames(t *testing.T, n int) []string {
	t.Helper()
	names := make([]string, n)
	for i := 0; len(names) > 0 && i < 10000; i++ {
		id := fmt.Sprintf("t-%d", i)
		s := sched.RouteTenant(id, n)
		if names[s] == "" {
			names[s] = id
		}
		full := true
		for _, v := range names {
			if v == "" {
				full = false
			}
		}
		if full {
			return names
		}
	}
	t.Fatalf("could not find %d tenants covering all shards", n)
	return nil
}

// shardedJob is one scripted submission: arrivals are strictly inside
// their Δ-window (never on a barrier boundary), which is what makes the
// per-window merged stream equal the global (time, shard) order.
type shardedJob struct {
	id       int
	window   int
	arrival  float64
	workload float64
	sd       float64
	tenant   string
}

func shardedJobList(n int, delta float64, tenants []string) []shardedJob {
	r := rng.New(5150)
	jobs := make([]shardedJob, n)
	for i := range jobs {
		w := i / 6 // 6 jobs per window
		jobs[i] = shardedJob{
			id:       i + 1,
			window:   w,
			arrival:  delta * (float64(w) + 0.02 + 0.96*r.Float64()),
			workload: 200 + float64((i*137)%7)*400,
			sd:       0.55 + 0.05*float64(i%8),
			tenant:   tenants[i%len(tenants)],
		}
	}
	return jobs
}

// TestShardedParity is the tentpole's headline proof at the service
// layer: a -shards 3 daemon's placement stream (read back from the
// merged /v2/events feed) is byte-identical to the deterministic merge
// of 3 independent single-shard engines, each built exactly the way the
// daemon builds its shards — same site partition, same per-shard
// scheduler and RNG streams, same admission config, same barrier
// targets. Runs for the stateless Min-Min and the stateful STGA, on a
// static and on a churning grid.
func TestShardedParity(t *testing.T) {
	rep := fuzzy.DefaultReputationConfig()
	dyn := &sched.DynamicsConfig{
		Churn: []grid.ChurnEvent{
			{Time: 700, Site: 1, Kind: grid.ChurnCrash},
			{Time: 900, Site: 4, Kind: grid.ChurnDegrade, Factor: 0.5},
			{Time: 1300, Site: 1, Kind: grid.ChurnJoin},
			{Time: 1500, Site: 2, Kind: grid.ChurnDrain},
		},
		Reputation: &rep,
		TrueLevels: []float64{0.7, 0.5, 0.8, 0.6, 0.9, 0.55},
	}
	for _, algo := range []string{"minmin", "stga"} {
		t.Run(algo, func(t *testing.T) { runShardedParity(t, algo, nil) })
		t.Run(algo+"-churn", func(t *testing.T) { runShardedParity(t, algo, dyn) })
	}
}

func runShardedParity(t *testing.T, algo string, dyn *sched.DynamicsConfig) {
	const (
		nShards = 3
		delta   = 300.0
		seed    = 21
		budget  = 3
	)
	setup := experiments.TestSetup()
	setup.Population = 12
	setup.Generations = 6
	sites := shardedSites()
	tenantNames := shardedTenantNames(t, nShards)
	jobs := shardedJobList(36, delta, tenantNames)
	tenantWeights := []float64{2, 1, 3}
	specs := make([]api.TenantSpec, nShards)
	weights := map[string]float64{api.DefaultTenant: 1}
	for i, id := range tenantNames {
		specs[i] = api.TenantSpec{ID: id, Weight: tenantWeights[i]}
		weights[id] = tenantWeights[i]
	}

	// The daemon under test.
	srv, err := server.New(server.Config{
		Sites: sites, Algo: algo, Mode: "frisky", BatchInterval: delta,
		Seed: seed, Setup: setup, Manual: true, Shards: nShards,
		Tenants: specs, RoundBudget: budget, Dynamics: dyn,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop(false)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL)
	ctx := context.Background()

	// The reference: n independent engines over the daemon's exact
	// per-shard construction (mirrors server.New shard by shard).
	root := rng.New(seed)
	policy := setup.Policy(grid.FRisky, setup.F)
	parts := sched.PartitionSites(len(sites), nShards)
	adm := &sched.AdmissionConfig{RoundBudget: budget, Weights: weights}
	engines := make([]*sched.Online, nShards)
	bufs := make([][]sched.EngineEvent, nShards)
	for i := range engines {
		i := i
		shardSites := sched.ShardSites(sites, parts[i])
		sc, err := setup.SchedulerByName(algo, policy,
			root.Derive(sched.ShardRNGLabel("scheduler", nShards, i)), nil, shardSites)
		if err != nil {
			t.Fatal(err)
		}
		o, err := sched.NewOnline(sched.RunConfig{
			Sites: shardSites, Scheduler: sc, BatchInterval: delta,
			Security: setup.Model(), FailureTiming: setup.FailTiming,
			Rand:      root.Derive(sched.ShardRNGLabel("engine", nShards, i)),
			Dynamics:  sched.PartitionDynamics(dyn, parts[i]),
			Admission: adm,
			OnEvent: func(ev sched.EngineEvent) {
				if ev.Site >= 0 {
					ev.Site = parts[i][ev.Site]
				}
				bufs[i] = append(bufs[i], ev)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = o
	}
	var want strings.Builder
	mergeWindow := func() {
		for _, ev := range sched.MergeShardEvents(bufs) {
			if ev.Kind == sched.EventPlaced {
				placementLine(&want, ev.Job.ID, ev.Site, ev.Start, ev.Finish)
			}
		}
		for i := range bufs {
			bufs[i] = bufs[i][:0]
		}
	}

	// Drive both sides through the identical window protocol.
	windows := jobs[len(jobs)-1].window + 1
	next := 0
	for w := 0; w < windows; w++ {
		target := delta * float64(w+1)
		for next < len(jobs) && jobs[next].window == w {
			j := jobs[next]
			id, arr := j.id, j.arrival
			if _, err := c.Submit(ctx, j.tenant, []api.JobSpec{
				{ID: &id, Arrival: &arr, Workload: j.workload, SD: j.sd},
			}); err != nil {
				t.Fatalf("submit job %d: %v", j.id, err)
			}
			owner := sched.RouteTenant(j.tenant, nShards)
			if err := engines[owner].Submit(&grid.Job{
				ID: j.id, Arrival: j.arrival, Workload: j.workload,
				Nodes: 1, SecurityDemand: j.sd, Tenant: j.tenant,
			}); err != nil {
				t.Fatal(err)
			}
			next++
		}
		if _, err := c.Advance(ctx, api.AdvanceRequest{To: target}); err != nil {
			t.Fatalf("advance to %v: %v", target, err)
		}
		for _, o := range engines {
			if err := o.AdvanceTo(target); err != nil {
				t.Fatal(err)
			}
		}
		mergeWindow()
	}
	if _, err := c.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	for _, o := range engines {
		if _, err := o.Drain(); err != nil {
			t.Fatal(err)
		}
	}
	mergeWindow()

	// Placement streams must match byte for byte.
	es := c.Events(ctx, client.EventsOptions{Kinds: []string{"placed"}})
	defer es.Close()
	var got strings.Builder
	for {
		ev, err := es.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		placementLine(&got, ev.Job, ev.Site, ev.Start, ev.Finish)
	}
	if want.Len() == 0 {
		t.Fatal("reference produced no placements")
	}
	if got.String() != want.String() {
		d := firstDiff(want.String(), got.String())
		t.Fatalf("sharded daemon diverges from merged independent shards at byte %d\nwant: %s\ngot:  %s",
			d, excerpt(want.String(), d), excerpt(got.String(), d))
	}

	// The per-shard metrics section must cover every shard and account
	// for every ingested job exactly once.
	repM, err := c.Metrics(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(repM.Shards) != nShards {
		t.Fatalf("metrics report %d shards, want %d", len(repM.Shards), nShards)
	}
	totalSeen, totalSites := 0, 0
	for i, sm := range repM.Shards {
		if sm.Shard != i {
			t.Fatalf("shard metrics out of order: entry %d has index %d", i, sm.Shard)
		}
		if sm.Seen == 0 {
			t.Errorf("shard %d ingested no jobs — tenant spread is broken", i)
		}
		totalSeen += sm.Seen
		totalSites += sm.Sites
	}
	if totalSeen != len(jobs) {
		t.Errorf("per-shard seen sums to %d, want %d", totalSeen, len(jobs))
	}
	if totalSites != len(sites) {
		t.Errorf("per-shard sites sum to %d, want %d", totalSites, len(sites))
	}
}

// TestShardCountChangeRejected pins the durability guard: a WAL written
// under one shard count must refuse to open under any other — the
// tenant→shard routing and the per-shard log layout are both functions
// of N, so "just reopening" with a different N would silently rewire
// history. Both directions (sharded→sharded, sharded→flat, flat→sharded)
// must refuse; the unchanged count must recover.
func TestShardCountChangeRejected(t *testing.T) {
	ctx := context.Background()
	run := func(cfg server.Config) {
		t.Helper()
		srv, err := server.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		c := client.New(ts.URL)
		for i, tenant := range shardedTenantNames(t, 2) {
			if _, err := c.CreateTenant(ctx, api.TenantSpec{ID: tenant, Weight: 1}); err != nil {
				t.Fatal(err)
			}
			id, arr := i+1, 100.0+float64(i)
			if _, err := c.Submit(ctx, tenant, []api.JobSpec{
				{ID: &id, Arrival: &arr, Workload: 400, SD: 0.65},
			}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := c.Advance(ctx, api.AdvanceRequest{To: 600}); err != nil {
			t.Fatal(err)
		}
		ts.Close()
		if _, err := srv.Stop(false); err != nil {
			t.Fatal(err)
		}
	}
	base := func(dir string, shards int) server.Config {
		setup := experiments.TestSetup()
		return server.Config{
			Sites: shardedSites(), Algo: "minmin", Seed: 11, BatchInterval: 300,
			Manual: true, Setup: setup, Shards: shards, WALDir: dir,
			SnapshotEvery: 8, WALKeep: -1,
		}
	}

	// Sharded history refuses any other count, flat included.
	dir2 := t.TempDir()
	run(base(dir2, 2))
	for _, n := range []int{3, 1, 4} {
		if _, err := server.New(base(dir2, n)); err == nil ||
			!strings.Contains(err.Error(), "refusing to restore") {
			t.Fatalf("shards 2->%d not rejected: %v", n, err)
		}
	}
	good, err := server.New(base(dir2, 2))
	if err != nil {
		t.Fatalf("unchanged shard count failed to recover: %v", err)
	}
	_, _ = good.Stop(false)

	// Flat (unsharded) history refuses a sharded reopen.
	dir1 := t.TempDir()
	run(base(dir1, 1))
	if _, err := server.New(base(dir1, 2)); err == nil ||
		!strings.Contains(err.Error(), "refusing to restore") {
		t.Fatalf("shards 1->2 not rejected: %v", err)
	}
	good, err = server.New(base(dir1, 1))
	if err != nil {
		t.Fatalf("flat reopen failed: %v", err)
	}
	_, _ = good.Stop(false)
}
