package server

// Package-internal regression tests: these reach into the latency
// tracker's pending map and the tenant registry's occupancy counters,
// which the wire surface deliberately does not expose one job at a
// time. The black-box suites live in package server_test.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"trustgrid/internal/api"
	"trustgrid/internal/grid"
	"trustgrid/internal/sched"
)

// TestPendingSweptAfterAbortedDrain pins the fix for the
// accepted-but-never-placed leak: jobs that reach the engine but never
// see a placement event (here: secure-only work stranded by a total
// outage with no rejoin pending) used to pin their latencyTracker
// entries — and the tenant queued-quota slots those entries hold — for
// the life of the daemon. The drain must abort AND settle both.
func TestPendingSweptAfterAbortedDrain(t *testing.T) {
	sites := []*grid.Site{
		{ID: 0, Speed: 10, Nodes: 4, SecurityLevel: 0.3},
		{ID: 1, Speed: 8, Nodes: 4, SecurityLevel: 0.4},
	}
	srv, err := New(Config{
		Sites: sites, Algo: "minmin", Seed: 1, Manual: true,
		BatchInterval: 100,
		Tenants: []api.TenantSpec{
			// SecureOnly turns every job MustBeSafe at arrival; with SD
			// above both sites' security levels nothing can take them
			// safely, and the outage below removes the fallback site too.
			{ID: "acme", SecureOnly: true, MaxQueue: 4, SDDefault: 0.9},
		},
		// Both sites crash before the first Δ-round and never rejoin, so
		// the round at t=100 aborts the engine with the jobs still queued.
		Dynamics: &sched.DynamicsConfig{Churn: []grid.ChurnEvent{
			{Time: 50, Site: 0, Kind: grid.ChurnCrash},
			{Time: 50, Site: 1, Kind: grid.ChurnCrash},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop(false)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	arrival := 10.0
	body, _ := json.Marshal(api.SubmitRequest{Jobs: []api.JobSpec{
		{Workload: 100, Arrival: &arrival},
		{Workload: 200, Arrival: &arrival},
		{Workload: 300, Arrival: &arrival},
		{Workload: 400, Arrival: &arrival},
	}})
	resp, err := http.Post(ts.URL+"/v2/tenants/acme/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if n := pendingCount(srv); n != 4 {
		t.Fatalf("%d pending latency entries after submit, want 4", n)
	}
	if q := queuedFor(srv, "acme"); q != 4 {
		t.Fatalf("tenant queued = %d after submit, want 4", q)
	}

	// The drain must fail — the grid died with work queued — and the
	// sweep must settle every stranded job on the same path.
	resp, err = http.Post(ts.URL+"/v2/drain", "application/json", bytes.NewReader([]byte("{}")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("drain status %d, want 500 (total outage)", resp.StatusCode)
	}

	if n := pendingCount(srv); n != 0 {
		t.Errorf("%d pending latency entries leaked past the aborted drain", n)
	}
	if q := queuedFor(srv, "acme"); q != 0 {
		t.Errorf("tenant queued = %d after sweep, want 0 (quota slots leaked)", q)
	}
}

func pendingCount(s *Server) int {
	s.lat.mu.Lock()
	defer s.lat.mu.Unlock()
	return len(s.lat.pending)
}

func queuedFor(s *Server, tenant string) int {
	s.tenants.mu.Lock()
	defer s.tenants.mu.Unlock()
	t := s.tenants.m[tenant]
	if t == nil {
		return -1
	}
	return t.queued
}
