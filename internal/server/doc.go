// Package server implements the online trusted-scheduling service
// behind cmd/trustgridd: an HTTP facade over the incremental simulation
// engine (sched.Online). Jobs are submitted as JSON, buffered into
// batch intervals by a single loop goroutine that owns the scheduler
// and the virtual clock, scheduled with any of the paper's algorithms
// (the STGA keeps its similarity-indexed history across rounds), and
// reported back as a streamed placement/completion event log. A
// metrics endpoint exposes throughput counters and scheduling-latency
// percentiles.
//
// The service runs in one of two clocking modes. In live mode a
// wall-clock ticker advances the virtual clock by one batch interval
// per tick and arrivals are stamped at ingest; in manual mode clients
// stamp arrivals themselves and drive the clock via /v1/advance and
// /v1/drain, which is the deterministic replay path the trace-parity
// test exercises. See DESIGN.md §6 for the architecture and §1 for
// this package's inventory row (internal/server: HTTP service layer
// over the online engine).
//
// With Config.Dynamics the daemon serves a dynamic grid (DESIGN.md §7):
// site churn and reputation feedback run inside the engine, live site
// state (liveness, effective speed, trust estimate and its evidence) is
// reported at /v1/sites, and site_down/site_up/site_speed/interrupted
// events join the NDJSON stream. Replay determinism is unchanged — the
// churn trace is part of the run's recorded input.
package server
