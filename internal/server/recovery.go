package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"trustgrid/internal/api"
	"trustgrid/internal/grid"
	"trustgrid/internal/rng"
	"trustgrid/internal/sched"
	"trustgrid/internal/wal"
)

// walLog keeps the Server struct readable next to the field named wal.
type walLog = wal.Log

// On-disk layout. An unsharded daemon keeps one flat log directly in
// WALDir — the format every daemon before sharding wrote, kept
// byte-compatible. A sharded daemon nests one directory per log under
// the same root: coord/ holds tenant registrations, clock barriers and
// the server snapshots; shard-NNNN/ holds shard N's churn prefix and
// arrivals. Records across the set are stitched into one total order
// by Record.G.
func coordDir(root string) string        { return filepath.Join(root, "coord") }
func shardDir(root string, i int) string { return filepath.Join(root, fmt.Sprintf("shard-%04d", i)) }

// serverSnapshot is the daemon's complete durable state at one WAL
// sequence number: a configuration fingerprint (recovery refuses a WAL
// written under a different run configuration — the determinism
// contract makes placements a function of config + recorded inputs, so
// restoring state under different config would fabricate history), the
// engine snapshot (one per shard when sharded), the tenant registry,
// the ID allocator and the service counters, plus the retained event
// window so streaming cursors survive the restart. Recovery = newest
// readable snapshot + replay of WAL records past it (DESIGN.md §10;
// §11.4 for the sharded log set).
type serverSnapshot struct {
	Version int    `json:"version"`
	Seq     uint64 `json:"seq"`

	Algo          string  `json:"algo"`
	Mode          string  `json:"mode"`
	Seed          uint64  `json:"seed"`
	BatchInterval float64 `json:"batch_interval"`
	RoundBudget   int     `json:"round_budget"`
	Sites         int     `json:"sites"`
	Manual        bool    `json:"manual"`
	// Shards is part of the fingerprint: state sharded N ways cannot be
	// restored into M engines. Zero (an unsharded snapshot, including
	// every pre-sharding one) means 1.
	Shards int `json:"shards,omitempty"`
	// RNGVersion is part of the fingerprint: scheduler state evolved
	// under one draw contract cannot continue under another. Zero (every
	// snapshot from before the knob, and v1 configs) means version 1.
	RNGVersion int `json:"rng_version,omitempty"`

	Engine  *sched.EngineSnapshot `json:"engine,omitempty"`
	Tenants []tenantSnapshot      `json:"tenants"`

	// Sharded layout only: one engine snapshot per shard, the covered
	// sequence number of each shard log (Seq above covers the
	// coordinator log), and the global sequence counter at capture.
	Engines   []*sched.EngineSnapshot `json:"engines,omitempty"`
	ShardSeqs []uint64                `json:"shard_seqs,omitempty"`
	NextG     uint64                  `json:"next_g,omitempty"`

	NextID  int64 `json:"next_id"`
	UsedIDs []int `json:"used_ids,omitempty"`
	// Owners maps tenant → sorted accepted job IDs, the depends_on
	// validation registry. Absent in pre-DAG snapshots, whose arrivals
	// replay through the WAL and rebuild the map there.
	Owners map[string][]int `json:"owners,omitempty"`

	Counters counterSnapshot `json:"counters"`

	EventBase int64       `json:"event_base"`
	Events    []WireEvent `json:"events,omitempty"`
}

// counterSnapshot carries the service's atomic counters.
type counterSnapshot struct {
	Submitted   int64 `json:"submitted"`
	Arrived     int64 `json:"arrived"`
	Placed      int64 `json:"placed"`
	Completed   int64 `json:"completed"`
	Failures    int64 `json:"failures"`
	Interrupted int64 `json:"interrupted"`
}

func (s *Server) checkFingerprint(snap *serverSnapshot) error {
	mismatch := func(field string, got, want any) error {
		return fmt.Errorf("snapshot written under %s=%v, config has %v (refusing to restore state across a config change)",
			field, got, want)
	}
	snapShards := snap.Shards
	if snapShards == 0 {
		snapShards = 1
	}
	switch {
	case snap.Algo != s.cfg.Algo:
		return mismatch("algo", snap.Algo, s.cfg.Algo)
	case snap.Mode != s.cfg.Mode:
		return mismatch("mode", snap.Mode, s.cfg.Mode)
	case snap.Seed != s.cfg.Seed:
		return mismatch("seed", snap.Seed, s.cfg.Seed)
	case snap.BatchInterval != s.cfg.BatchInterval:
		return mismatch("batch-interval", snap.BatchInterval, s.cfg.BatchInterval)
	case snap.RoundBudget != s.cfg.RoundBudget:
		return mismatch("round-budget", snap.RoundBudget, s.cfg.RoundBudget)
	case snap.Sites != len(s.cfg.Sites):
		return mismatch("sites", snap.Sites, len(s.cfg.Sites))
	case snap.Manual != s.cfg.Manual:
		return mismatch("manual", snap.Manual, s.cfg.Manual)
	case snapShards != s.cfg.Shards:
		return mismatch("shards", snapShards, s.cfg.Shards)
	case normalizeRNGVersion(snap.RNGVersion) != normalizeRNGVersion(s.cfg.Setup.RNGVersion):
		return mismatch("rng-version",
			normalizeRNGVersion(snap.RNGVersion), normalizeRNGVersion(s.cfg.Setup.RNGVersion))
	}
	return nil
}

// normalizeRNGVersion folds the raw knob into its contract number so a
// pre-knob snapshot (0) restores under an explicit v1 config (1) and
// vice versa. Unknown values pass through raw — they were already
// rejected at boot, and mapping them onto a real version here would
// let a corrupt snapshot restore.
func normalizeRNGVersion(raw int) int {
	if v, err := rng.ParseVersion(raw); err == nil {
		return v.Num()
	}
	return raw
}

// recover opens the WAL set and rebuilds the daemon's state before the
// loop goroutine starts. Runs once, from New.
func (s *Server) recover(cc sched.CoordinatorConfig) error {
	if len(cc.Shards) == 1 {
		return s.recoverSingle(cc)
	}
	return s.recoverSharded(cc)
}

// restoreFromSnapshot installs the server-side state a snapshot
// carries: tenant registry, event window, ID allocator, counters.
func (s *Server) restoreFromSnapshot(snap *serverSnapshot) {
	s.tenants.restore(snap.Tenants)
	s.log.restore(snap.EventBase, snap.Events)
	s.nextID.Store(snap.NextID)
	if s.usedIDs != nil {
		for _, id := range snap.UsedIDs {
			s.usedIDs[id] = struct{}{}
		}
	}
	for tenant, ids := range snap.Owners {
		for _, id := range ids {
			s.owners[id] = tenant
		}
	}
	s.submitted.Store(snap.Counters.Submitted)
	s.arrived.Store(snap.Counters.Arrived)
	s.placed.Store(snap.Counters.Placed)
	s.completed.Store(snap.Counters.Completed)
	s.failures.Store(snap.Counters.Failures)
	s.interrupted.Store(snap.Counters.Interrupted)
}

// resumeAdmission points the quota gate and the latency tracker at the
// recovered engine's ground truth: every accepted-but-never-placed job
// holds a queue slot and an open latency measurement. Wall-clock
// latency across a restart is not meaningful, so measurements restart
// at recovery time.
func (s *Server) resumeAdmission() {
	now := time.Now()
	queued := make(map[string]int)
	for _, j := range s.online.NeverPlaced() {
		queued[j.Tenant]++
		s.lat.submitted(j.ID, j.Tenant, now)
	}
	s.tenants.setQueued(queued)
}

// recoverSingle rebuilds an unsharded daemon from the flat log: the
// newest readable, fingerprint-compatible snapshot seeds the engine,
// the registry, the counters and the event log; the WAL tail past it is
// replayed in sequence order (tenants re-registered, arrivals
// re-ingested at their recorded times); and the recorded churn prefix
// is verified against the configured churn trace, which the engine
// re-derives from config. On a fresh directory it simply records the
// churn trace and starts clean.
func (s *Server) recoverSingle(cc sched.CoordinatorConfig) error {
	// A directory written by a sharded daemon nests its logs; starting an
	// unsharded daemon over it would silently begin a fresh history.
	if dirs, _ := filepath.Glob(filepath.Join(s.cfg.WALDir, "shard-*")); len(dirs) > 0 {
		return fmt.Errorf("wal directory was written under shards=%d, config has 1 (refusing to restore state across a config change)", len(dirs))
	}
	if _, err := os.Stat(coordDir(s.cfg.WALDir)); err == nil {
		return fmt.Errorf("wal directory was written by a sharded daemon, config has shards=1 (refusing to restore state across a config change)")
	}
	l, err := wal.Open(s.cfg.WALDir)
	if err != nil {
		return err
	}
	s.wal = l

	var churn []grid.ChurnEvent
	if s.cfg.Dynamics != nil {
		churn = s.cfg.Dynamics.Churn
	}

	// Newest snapshot that is readable, parseable, covered by the log
	// (a snapshot claiming records the log lost is itself damage) and
	// written under this configuration. Unreadable or unparseable ones
	// fall through to the next — WALKeep > 1 exists for exactly that —
	// but a fingerprint mismatch is an operator error, not corruption.
	var snap *serverSnapshot
	refs, err := l.Snapshots()
	if err != nil {
		return err
	}
	for _, ref := range refs {
		payload, err := wal.ReadSnapshot(ref)
		if err != nil {
			continue
		}
		var cand serverSnapshot
		if err := json.Unmarshal(payload, &cand); err != nil || cand.Engine == nil {
			continue
		}
		if cand.Seq > l.LastSeq() {
			continue
		}
		if err := s.checkFingerprint(&cand); err != nil {
			return err
		}
		snap = &cand
		break
	}

	var snapSeq uint64
	if snap != nil {
		snapSeq = snap.Seq
		s.online, err = sched.RestoreCoordinator(cc, []*sched.EngineSnapshot{snap.Engine})
		if err != nil {
			return err
		}
		s.restoreFromSnapshot(snap)
	} else {
		s.online, err = sched.NewCoordinator(cc)
		if err != nil {
			return err
		}
	}
	s.recsSinceSnap = int(l.LastSeq() - snapSeq)

	// One ordered pass over the surviving records: churn records (always
	// the log's first entries, written at first boot) are verified
	// against the configured trace, and everything past the snapshot is
	// replayed. Sequence order means a tenant registered at runtime is
	// back in the registry before its first replayed arrival needs it.
	err = l.Replay(0, func(rec wal.Record) error {
		if rec.Kind == wal.KindChurn {
			idx := int(rec.Seq) - 1
			if idx >= len(churn) || *rec.Churn != churn[idx] {
				return fmt.Errorf("churn record %d does not match the configured churn trace", rec.Seq)
			}
			return nil
		}
		if rec.Seq <= uint64(len(churn)) {
			return fmt.Errorf("record %d is %q where the configured churn trace expects churn (config has more churn events than were recorded)",
				rec.Seq, rec.Kind)
		}
		if rec.Seq <= snapSeq {
			return nil
		}
		return s.replayRecord(rec)
	})
	if err != nil {
		return err
	}

	// First boot (or a crash that interrupted this very step): record
	// the configured churn trace so the log is a self-contained input
	// set. Nothing else can be in the log here — any later record would
	// have tripped the position check above.
	if n := l.LastSeq(); n < uint64(len(churn)) {
		for _, ev := range churn[n:] {
			ev := ev
			if _, err := l.Append(wal.Record{Kind: wal.KindChurn, Churn: &ev}); err != nil {
				return err
			}
			s.recsSinceSnap++
		}
		if err := l.Commit(); err != nil {
			return err
		}
	}

	s.resumeAdmission()
	return nil
}

// replayRecord re-applies one post-snapshot record. The engine is first
// advanced to the clock the record was written under: that re-executes
// whatever engine events preceded the original append (batch rounds
// included), so a re-submitted job lands in the event queue in its
// original position — same arrival clamp, same tie order against a
// batch round at the same timestamp. Barrier records (sharded manual
// mode) re-execute the original fan-out advance or drain, reproducing
// the exact Δ-round window boundaries — and with them the merged event
// stream's total order.
func (s *Server) replayRecord(rec wal.Record) error {
	if rec.At > s.online.Now() {
		if err := s.online.AdvanceTo(rec.At); err != nil {
			return fmt.Errorf("advancing to record %d clock %v: %w", rec.Seq, rec.At, err)
		}
	}
	switch rec.Kind {
	case wal.KindTenant:
		// A duplicate means the operator promoted a runtime-created
		// tenant into the boot config (or the snapshot already carried
		// it); the existing registration wins.
		_ = s.tenants.register(*rec.Tenant)
		spec, _ := s.tenants.get(rec.Tenant.ID)
		s.online.SetTenantWeight(spec.ID, spec.Weight)
	case wal.KindBarrier:
		if rec.Barrier.Drain {
			if _, err := s.online.Drain(); err != nil {
				return fmt.Errorf("barrier record %d (drain): %w", rec.Seq, err)
			}
		} else if err := s.online.AdvanceTo(rec.Barrier.To); err != nil {
			return fmt.Errorf("barrier record %d (advance to %v): %w", rec.Seq, rec.Barrier.To, err)
		}
	case wal.KindArrival:
		tr := rec.Arrival
		if err := s.online.SubmitLocal(tr.Job()); err != nil {
			return fmt.Errorf("arrival record %d: %w", rec.Seq, err)
		}
		s.submitted.Add(1)
		s.tenants.addSubmitted(tr.Tenant, 1)
		// Rebuild the dependency-validation registry. Daemon recordings
		// always label ownership, but a hand-written single-tenant WAL may
		// omit the column — those jobs belong to the default tenant.
		owner := tr.Tenant
		if owner == "" {
			owner = api.DefaultTenant
		}
		s.owners[tr.ID] = owner
		if s.usedIDs != nil {
			s.usedIDs[tr.ID] = struct{}{}
		}
		if int64(tr.ID) > s.nextID.Load() {
			s.nextID.Store(int64(tr.ID))
		}
	}
	return nil
}

// taggedRecord is one surviving record of the sharded log set, tagged
// with the log it came from (-1 = coordinator).
type taggedRecord struct {
	rec   wal.Record
	shard int
}

// recoverSharded rebuilds a sharded daemon from the nested log set.
// Beyond what the flat path does, it must re-establish one total order
// across N+1 logs: every record carries a global sequence number G, and
// a crash between the per-log fsyncs of one group commit can persist a
// later record while losing an earlier one in a sibling log. Recovery
// therefore cuts the whole set back to the longest contiguous G-prefix
// past the snapshot watermark — physically, with TruncateTail, so the
// next boot sees a clean history — and replays the survivors in G
// order, re-executing barrier records as real fan-out advances.
func (s *Server) recoverSharded(cc sched.CoordinatorConfig) error {
	n := len(cc.Shards)
	root := s.cfg.WALDir

	// Layout guards: a flat single-engine log means shards=1 wrote this
	// directory; a different shard-directory count means another N did.
	if flat, _ := filepath.Glob(filepath.Join(root, "wal-*.log")); len(flat) > 0 {
		return fmt.Errorf("wal directory holds a single-engine log, config has shards=%d (refusing to restore state across a config change)", n)
	}
	if flatSnaps, _ := filepath.Glob(filepath.Join(root, "snap-*.json")); len(flatSnaps) > 0 {
		return fmt.Errorf("wal directory holds a single-engine snapshot, config has shards=%d (refusing to restore state across a config change)", n)
	}
	if dirs, _ := filepath.Glob(filepath.Join(root, "shard-*")); len(dirs) > 0 && len(dirs) != n {
		return fmt.Errorf("wal directory was written under shards=%d, config has %d (refusing to restore state across a config change)", len(dirs), n)
	}

	coord, err := wal.Open(coordDir(root))
	if err != nil {
		return err
	}
	s.wal = coord
	s.shardWALs = make([]*walLog, n)
	for i := range s.shardWALs {
		if s.shardWALs[i], err = wal.Open(shardDir(root, i)); err != nil {
			return err
		}
	}

	churnParts := make([][]grid.ChurnEvent, n)
	for i, sc := range cc.Shards {
		if sc.Dynamics != nil {
			churnParts[i] = sc.Dynamics.Churn
		}
	}

	// Collect every record that survived the per-log torn-tail cut, and
	// verify each log's structure as it streams past: churn lives at the
	// head of its shard's log and must match the configured (partitioned)
	// trace; the coordinator log never holds churn; every record carries
	// a G.
	var all []taggedRecord
	collect := func(l *walLog, shard int) error {
		name := "coord"
		if shard >= 0 {
			name = fmt.Sprintf("shard-%04d", shard)
		}
		return l.Replay(0, func(rec wal.Record) error {
			if rec.G == 0 {
				return fmt.Errorf("%s record %d has no global sequence number (refusing to restore state across a config change)", name, rec.Seq)
			}
			if rec.Kind == wal.KindChurn {
				if shard < 0 {
					return fmt.Errorf("coord record %d is churn (churn belongs to shard logs)", rec.Seq)
				}
				churn := churnParts[shard]
				idx := int(rec.Seq) - 1
				if idx >= len(churn) || *rec.Churn != churn[idx] {
					return fmt.Errorf("%s churn record %d does not match the configured churn trace", name, rec.Seq)
				}
			} else if shard >= 0 && rec.Seq <= uint64(len(churnParts[shard])) {
				return fmt.Errorf("%s record %d is %q where the configured churn trace expects churn (config has more churn events than were recorded)",
					name, rec.Seq, rec.Kind)
			}
			all = append(all, taggedRecord{rec, shard})
			return nil
		})
	}
	if err := collect(coord, -1); err != nil {
		return err
	}
	for i, l := range s.shardWALs {
		if err := collect(l, i); err != nil {
			return err
		}
	}

	// Newest usable snapshot (coordinator log only; shard directories
	// hold GC markers, not state). Coverage means every log still holds
	// everything up to its watermark.
	var snap *serverSnapshot
	refs, err := coord.Snapshots()
	if err != nil {
		return err
	}
	for _, ref := range refs {
		payload, err := wal.ReadSnapshot(ref)
		if err != nil {
			continue
		}
		var cand serverSnapshot
		if err := json.Unmarshal(payload, &cand); err != nil ||
			len(cand.Engines) != cand.Shards || len(cand.ShardSeqs) != cand.Shards {
			continue
		}
		if cand.Seq > coord.LastSeq() {
			continue
		}
		if err := s.checkFingerprint(&cand); err != nil {
			return err
		}
		covered := true
		for i, l := range s.shardWALs {
			if cand.ShardSeqs[i] > l.LastSeq() {
				covered = false
				break
			}
		}
		if !covered {
			continue
		}
		snap = &cand
		break
	}
	var snapSeq, base uint64
	shardSeqs := make([]uint64, n)
	if snap != nil {
		snapSeq, base = snap.Seq, snap.NextG
		copy(shardSeqs, snap.ShardSeqs)
	}

	// Longest contiguous G-prefix past the snapshot watermark (records
	// at or below it may be partially garbage-collected, which is fine —
	// the snapshot already holds their effects). Everything beyond the
	// first gap was never acknowledged and must go.
	present := make(map[uint64]bool, len(all))
	for _, r := range all {
		if present[r.rec.G] {
			return fmt.Errorf("global sequence %d appears in two wal records", r.rec.G)
		}
		present[r.rec.G] = true
	}
	gstar := base
	for present[gstar+1] {
		gstar++
	}
	keep := make(map[int]uint64, n+1)
	keep[-1] = snapSeq
	for i, sq := range shardSeqs {
		keep[i] = sq
	}
	live := all[:0]
	for _, r := range all {
		if r.rec.G <= gstar {
			if r.rec.Seq > keep[r.shard] {
				keep[r.shard] = r.rec.Seq
			}
			live = append(live, r)
		}
	}
	if err := coord.TruncateTail(keep[-1]); err != nil {
		return err
	}
	for i, l := range s.shardWALs {
		if err := l.TruncateTail(keep[i]); err != nil {
			return err
		}
	}
	s.nextG = gstar

	if snap != nil {
		s.online, err = sched.RestoreCoordinator(cc, snap.Engines)
		if err != nil {
			return err
		}
		s.restoreFromSnapshot(snap)
	} else {
		s.online, err = sched.NewCoordinator(cc)
		if err != nil {
			return err
		}
	}
	s.recsSinceSnap = int(coord.LastSeq() - snapSeq)
	for i, l := range s.shardWALs {
		s.recsSinceSnap += int(l.LastSeq() - shardSeqs[i])
	}

	// Replay the survivors in global order — the exact order the loop
	// goroutine originally applied them in. Churn is skipped (the engines
	// re-derive it from config; the records were verified above), as is
	// everything a log's snapshot watermark covers.
	sort.Slice(live, func(i, k int) bool { return live[i].rec.G < live[k].rec.G })
	for _, r := range live {
		if r.rec.Kind == wal.KindChurn {
			continue
		}
		if r.shard < 0 {
			if r.rec.Seq <= snapSeq {
				continue
			}
		} else if r.rec.Seq <= shardSeqs[r.shard] {
			continue
		}
		if err := s.replayRecord(r.rec); err != nil {
			return err
		}
	}

	// First boot (or a crash that interrupted this very step): record
	// each shard's churn partition, shard by shard, so the log set is a
	// self-contained input set. The loop order makes the G assignment
	// reproducible across a crash mid-append: the surviving prefix ends
	// exactly where the re-appends resume.
	for i, l := range s.shardWALs {
		part := churnParts[i]
		if have := l.LastSeq(); have < uint64(len(part)) {
			for _, ev := range part[have:] {
				ev := ev
				s.nextG++
				if _, err := l.Append(wal.Record{Kind: wal.KindChurn, G: s.nextG, Churn: &ev}); err != nil {
					return err
				}
				s.recsSinceSnap++
			}
			if err := l.Commit(); err != nil {
				return err
			}
		}
	}

	s.resumeAdmission()
	return nil
}

// allWALs returns every open log — the flat log, or the coordinator log
// followed by the shard logs — for commit/rotate/close fan-out.
func (s *Server) allWALs() []*walLog {
	if s.wal == nil {
		return nil
	}
	out := make([]*walLog, 0, len(s.shardWALs)+1)
	out = append(out, s.wal)
	return append(out, s.shardWALs...)
}

// writeSnapshot persists the full server state at the current WAL
// position, rotates the segments and garbage-collects what the retained
// snapshots cover. A live-mode engine with buffered arrivals skips the
// attempt (the buffer drains at the next tick and the records are in
// the WAL either way). Loop goroutine (or post-loop Stop) only.
func (s *Server) writeSnapshot() error {
	if s.online.Backlog() != 0 {
		return nil
	}
	if err := s.walCommit(); err != nil {
		return err
	}
	engines, err := s.online.Snapshots()
	if err != nil {
		return err
	}
	snap := serverSnapshot{
		Version:       1,
		Seq:           s.wal.LastSeq(),
		Algo:          s.cfg.Algo,
		Mode:          s.cfg.Mode,
		Seed:          s.cfg.Seed,
		BatchInterval: s.cfg.BatchInterval,
		RoundBudget:   s.cfg.RoundBudget,
		Sites:         len(s.cfg.Sites),
		Manual:        s.cfg.Manual,
		RNGVersion:    s.cfg.Setup.RNGVersion,
		Tenants:       s.tenants.snapshot(),
		NextID:        s.nextID.Load(),
		Counters: counterSnapshot{
			Submitted:   s.submitted.Load(),
			Arrived:     s.arrived.Load(),
			Placed:      s.placed.Load(),
			Completed:   s.completed.Load(),
			Failures:    s.failures.Load(),
			Interrupted: s.interrupted.Load(),
		},
	}
	if s.shardWALs == nil {
		snap.Engine = engines[0]
	} else {
		snap.Shards = len(s.shardWALs)
		snap.Engines = engines
		snap.ShardSeqs = make([]uint64, len(s.shardWALs))
		for i, l := range s.shardWALs {
			snap.ShardSeqs[i] = l.LastSeq()
		}
		snap.NextG = s.nextG
	}
	snap.EventBase, snap.Events = s.log.snapshotState()
	s.idMu.Lock()
	if s.usedIDs != nil {
		snap.UsedIDs = make([]int, 0, len(s.usedIDs))
		for id := range s.usedIDs {
			snap.UsedIDs = append(snap.UsedIDs, id)
		}
	}
	if len(s.owners) > 0 {
		snap.Owners = make(map[string][]int)
		for id, tenant := range s.owners {
			snap.Owners[tenant] = append(snap.Owners[tenant], id)
		}
	}
	s.idMu.Unlock()
	sort.Ints(snap.UsedIDs)
	for _, ids := range snap.Owners {
		sort.Ints(ids)
	}
	payload, err := json.Marshal(&snap)
	if err != nil {
		return err
	}
	if err := s.wal.WriteSnapshot(snap.Seq, payload); err != nil {
		return err
	}
	// Shard directories get tiny watermark markers — not state, just the
	// horizon their segment GC prunes against. Recovery ignores them.
	for i, l := range s.shardWALs {
		marker, err := json.Marshal(map[string]any{"shard": i, "seq": l.LastSeq()})
		if err != nil {
			return err
		}
		if err := l.WriteSnapshot(l.LastSeq(), marker); err != nil {
			return err
		}
	}
	for _, l := range s.allWALs() {
		if err := l.Rotate(); err != nil {
			return err
		}
	}
	if s.cfg.WALKeep > 0 {
		for _, l := range s.allWALs() {
			if err := l.GC(s.cfg.WALKeep); err != nil {
				return err
			}
		}
	}
	s.recsSinceSnap = 0
	return nil
}

// walHousekeeping runs once per loop iteration: group-commit whatever
// the iteration appended (a no-op on clean logs) and snapshot when the
// cadence says so. An error is fatal to the loop — a daemon that cannot
// make its state durable must die loudly, not serve acknowledgements it
// cannot honor.
func (s *Server) walHousekeeping() error {
	if s.wal == nil {
		return nil
	}
	if s.walBroken != nil {
		return s.walBroken
	}
	if err := s.walCommit(); err != nil {
		return err
	}
	if s.recsSinceSnap >= s.cfg.SnapshotEvery {
		if err := s.writeSnapshot(); err != nil {
			return err
		}
	}
	return nil
}

// walArrival appends one accepted arrival stamped with the clock it was
// ingested under (at) — to the flat log, or to the owning tenant's
// shard log with the next global sequence number. Loop goroutine only;
// durability waits for walCommit.
func (s *Server) walArrival(j *grid.Job, at float64) error {
	if s.wal == nil {
		return nil
	}
	rec := wal.Record{Kind: wal.KindArrival, At: at, Arrival: &api.TraceRecord{
		ID: j.ID, Arrival: j.Arrival, Workload: j.Workload, Nodes: j.Nodes,
		SD: j.SecurityDemand, Tenant: j.Tenant, SafeOnly: j.SafeOnly,
		DependsOn: j.DependsOn, Deadline: j.Deadline, Budget: j.Budget,
	}}
	l := s.wal
	if s.shardWALs != nil {
		l = s.shardWALs[s.online.Owner(j.Tenant)]
		rec.G = s.nextG + 1
	}
	if _, err := l.Append(rec); err != nil {
		s.walBroken = err
		return err
	}
	if s.shardWALs != nil {
		s.nextG++
	}
	s.recsSinceSnap++
	return nil
}

// walTenant appends one runtime tenant registration to the flat or
// coordinator log. Loop goroutine only.
func (s *Server) walTenant(spec api.TenantSpec) error {
	if s.wal == nil {
		return nil
	}
	rec := wal.Record{Kind: wal.KindTenant, At: s.online.Now(), Tenant: &spec}
	if s.shardWALs != nil {
		rec.G = s.nextG + 1
	}
	if _, err := s.wal.Append(rec); err != nil {
		s.walBroken = err
		return err
	}
	if s.shardWALs != nil {
		s.nextG++
	}
	s.recsSinceSnap++
	return nil
}

// walBarrier appends one manual-mode clock barrier (an advance target,
// or a drain) to the coordinator log — before the barrier executes, so
// a crash that lost the barrier also lost every event it would have
// produced. Single-shard and live-mode daemons keep their logs free of
// barriers: their event order is recoverable without them. Loop
// goroutine (or post-loop Stop) only.
func (s *Server) walBarrier(to float64, drain bool) error {
	if s.wal == nil || s.shardWALs == nil {
		return nil
	}
	rec := wal.Record{
		Kind: wal.KindBarrier, At: s.online.Now(), G: s.nextG + 1,
		Barrier: &wal.BarrierRecord{To: to, Drain: drain},
	}
	if _, err := s.wal.Append(rec); err != nil {
		s.walBroken = err
		return err
	}
	s.nextG++
	s.recsSinceSnap++
	return nil
}

// walCommit makes everything appended so far durable across the whole
// log set — the commit-before-acknowledge point of the submit, tenant
// and barrier paths. Clean logs skip their fsync, so the fan-out costs
// one fsync per log actually written this round. Loop goroutine only.
func (s *Server) walCommit() error {
	if s.wal == nil {
		return nil
	}
	for _, l := range s.allWALs() {
		if err := l.Commit(); err != nil {
			s.walBroken = err
			return err
		}
	}
	return nil
}
