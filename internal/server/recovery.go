package server

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"trustgrid/internal/api"
	"trustgrid/internal/grid"
	"trustgrid/internal/sched"
	"trustgrid/internal/wal"
)

// walLog keeps the Server struct readable next to the field named wal.
type walLog = wal.Log

// serverSnapshot is the daemon's complete durable state at one WAL
// sequence number: a configuration fingerprint (recovery refuses a WAL
// written under a different run configuration — the determinism
// contract makes placements a function of config + recorded inputs, so
// restoring state under different config would fabricate history), the
// engine snapshot, the tenant registry, the ID allocator and the
// service counters, plus the retained event window so streaming cursors
// survive the restart. Recovery = newest readable snapshot + replay of
// WAL records with Seq > snapshot.Seq (DESIGN.md §10).
type serverSnapshot struct {
	Version int    `json:"version"`
	Seq     uint64 `json:"seq"`

	Algo          string  `json:"algo"`
	Mode          string  `json:"mode"`
	Seed          uint64  `json:"seed"`
	BatchInterval float64 `json:"batch_interval"`
	RoundBudget   int     `json:"round_budget"`
	Sites         int     `json:"sites"`
	Manual        bool    `json:"manual"`

	Engine  *sched.EngineSnapshot `json:"engine"`
	Tenants []tenantSnapshot      `json:"tenants"`

	NextID  int64 `json:"next_id"`
	UsedIDs []int `json:"used_ids,omitempty"`

	Counters counterSnapshot `json:"counters"`

	EventBase int64       `json:"event_base"`
	Events    []WireEvent `json:"events,omitempty"`
}

// counterSnapshot carries the service's atomic counters.
type counterSnapshot struct {
	Submitted   int64 `json:"submitted"`
	Arrived     int64 `json:"arrived"`
	Placed      int64 `json:"placed"`
	Completed   int64 `json:"completed"`
	Failures    int64 `json:"failures"`
	Interrupted int64 `json:"interrupted"`
}

func (s *Server) checkFingerprint(snap *serverSnapshot) error {
	mismatch := func(field string, got, want any) error {
		return fmt.Errorf("snapshot written under %s=%v, config has %v (refusing to restore state across a config change)",
			field, got, want)
	}
	switch {
	case snap.Algo != s.cfg.Algo:
		return mismatch("algo", snap.Algo, s.cfg.Algo)
	case snap.Mode != s.cfg.Mode:
		return mismatch("mode", snap.Mode, s.cfg.Mode)
	case snap.Seed != s.cfg.Seed:
		return mismatch("seed", snap.Seed, s.cfg.Seed)
	case snap.BatchInterval != s.cfg.BatchInterval:
		return mismatch("batch-interval", snap.BatchInterval, s.cfg.BatchInterval)
	case snap.RoundBudget != s.cfg.RoundBudget:
		return mismatch("round-budget", snap.RoundBudget, s.cfg.RoundBudget)
	case snap.Sites != len(s.cfg.Sites):
		return mismatch("sites", snap.Sites, len(s.cfg.Sites))
	case snap.Manual != s.cfg.Manual:
		return mismatch("manual", snap.Manual, s.cfg.Manual)
	}
	return nil
}

// recover opens the WAL and rebuilds the daemon's state: the newest
// readable, fingerprint-compatible snapshot seeds the engine, the
// registry, the counters and the event log; the WAL tail past it is
// replayed in sequence order (tenants re-registered, arrivals
// re-ingested at their recorded times); and the recorded churn prefix
// is verified against the configured churn trace, which the engine
// re-derives from config. On a fresh directory it simply records the
// churn trace and starts clean. Runs before the loop goroutine starts.
func (s *Server) recover(runCfg sched.RunConfig) error {
	l, err := wal.Open(s.cfg.WALDir)
	if err != nil {
		return err
	}
	s.wal = l

	var churn []grid.ChurnEvent
	if s.cfg.Dynamics != nil {
		churn = s.cfg.Dynamics.Churn
	}

	// Newest snapshot that is readable, parseable, covered by the log
	// (a snapshot claiming records the log lost is itself damage) and
	// written under this configuration. Unreadable or unparseable ones
	// fall through to the next — WALKeep > 1 exists for exactly that —
	// but a fingerprint mismatch is an operator error, not corruption.
	var snap *serverSnapshot
	refs, err := l.Snapshots()
	if err != nil {
		return err
	}
	for _, ref := range refs {
		payload, err := wal.ReadSnapshot(ref)
		if err != nil {
			continue
		}
		var cand serverSnapshot
		if err := json.Unmarshal(payload, &cand); err != nil || cand.Engine == nil {
			continue
		}
		if cand.Seq > l.LastSeq() {
			continue
		}
		if err := s.checkFingerprint(&cand); err != nil {
			return err
		}
		snap = &cand
		break
	}

	var snapSeq uint64
	if snap != nil {
		snapSeq = snap.Seq
		s.online, err = sched.RestoreOnline(runCfg, snap.Engine)
		if err != nil {
			return err
		}
		s.tenants.restore(snap.Tenants)
		s.log.restore(snap.EventBase, snap.Events)
		s.nextID.Store(snap.NextID)
		if s.usedIDs != nil {
			for _, id := range snap.UsedIDs {
				s.usedIDs[id] = struct{}{}
			}
		}
		s.submitted.Store(snap.Counters.Submitted)
		s.arrived.Store(snap.Counters.Arrived)
		s.placed.Store(snap.Counters.Placed)
		s.completed.Store(snap.Counters.Completed)
		s.failures.Store(snap.Counters.Failures)
		s.interrupted.Store(snap.Counters.Interrupted)
	} else {
		s.online, err = sched.NewOnline(runCfg)
		if err != nil {
			return err
		}
	}
	s.recsSinceSnap = int(l.LastSeq() - snapSeq)

	// One ordered pass over the surviving records: churn records (always
	// the log's first entries, written at first boot) are verified
	// against the configured trace, and everything past the snapshot is
	// replayed. Sequence order means a tenant registered at runtime is
	// back in the registry before its first replayed arrival needs it.
	err = l.Replay(0, func(rec wal.Record) error {
		if rec.Kind == wal.KindChurn {
			idx := int(rec.Seq) - 1
			if idx >= len(churn) || *rec.Churn != churn[idx] {
				return fmt.Errorf("churn record %d does not match the configured churn trace", rec.Seq)
			}
			return nil
		}
		if rec.Seq <= uint64(len(churn)) {
			return fmt.Errorf("record %d is %q where the configured churn trace expects churn (config has more churn events than were recorded)",
				rec.Seq, rec.Kind)
		}
		if rec.Seq <= snapSeq {
			return nil
		}
		// Re-apply at the clock the record was written under. Advancing
		// first re-executes whatever engine events preceded the original
		// append (batch rounds included), so a re-submitted job lands in
		// the event queue in its original position — same arrival clamp,
		// same tie order against a batch round at the same timestamp.
		if rec.At > s.online.Now() {
			if err := s.online.AdvanceTo(rec.At); err != nil {
				return fmt.Errorf("advancing to record %d clock %v: %w", rec.Seq, rec.At, err)
			}
		}
		switch rec.Kind {
		case wal.KindTenant:
			// A duplicate means the operator promoted a runtime-created
			// tenant into the boot config (or the snapshot already carried
			// it); the existing registration wins.
			_ = s.tenants.register(*rec.Tenant)
			spec, _ := s.tenants.get(rec.Tenant.ID)
			s.online.SetTenantWeight(spec.ID, spec.Weight)
		case wal.KindArrival:
			tr := rec.Arrival
			if err := s.online.SubmitLocal(tr.Job()); err != nil {
				return fmt.Errorf("arrival record %d: %w", rec.Seq, err)
			}
			s.submitted.Add(1)
			s.tenants.addSubmitted(tr.Tenant, 1)
			if s.usedIDs != nil {
				s.usedIDs[tr.ID] = struct{}{}
			}
			if int64(tr.ID) > s.nextID.Load() {
				s.nextID.Store(int64(tr.ID))
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	// First boot (or a crash that interrupted this very step): record
	// the configured churn trace so the log is a self-contained input
	// set. Nothing else can be in the log here — any later record would
	// have tripped the position check above.
	if n := l.LastSeq(); n < uint64(len(churn)) {
		for _, ev := range churn[n:] {
			ev := ev
			if _, err := l.Append(wal.Record{Kind: wal.KindChurn, Churn: &ev}); err != nil {
				return err
			}
			s.recsSinceSnap++
		}
		if err := l.Commit(); err != nil {
			return err
		}
	}

	// The quota gate and the latency tracker resume against the
	// recovered engine's ground truth: every accepted-but-never-placed
	// job holds a queue slot and an open latency measurement. Wall-clock
	// latency across a restart is not meaningful, so measurements
	// restart at recovery time.
	now := time.Now()
	queued := make(map[string]int)
	for _, j := range s.online.NeverPlaced() {
		queued[j.Tenant]++
		s.lat.submitted(j.ID, j.Tenant, now)
	}
	s.tenants.setQueued(queued)
	return nil
}

// writeSnapshot persists the full server state at the current WAL
// position, rotates the segment and garbage-collects what the retained
// snapshots cover. A live-mode engine with buffered arrivals skips the
// attempt (the buffer drains at the next tick and the records are in
// the WAL either way). Loop goroutine (or post-loop Stop) only.
func (s *Server) writeSnapshot() error {
	if s.online.Backlog() != 0 {
		return nil
	}
	if err := s.wal.Commit(); err != nil {
		return err
	}
	eng, err := s.online.Snapshot()
	if err != nil {
		return err
	}
	snap := serverSnapshot{
		Version:       1,
		Seq:           s.wal.LastSeq(),
		Algo:          s.cfg.Algo,
		Mode:          s.cfg.Mode,
		Seed:          s.cfg.Seed,
		BatchInterval: s.cfg.BatchInterval,
		RoundBudget:   s.cfg.RoundBudget,
		Sites:         len(s.cfg.Sites),
		Manual:        s.cfg.Manual,
		Engine:        eng,
		Tenants:       s.tenants.snapshot(),
		NextID:        s.nextID.Load(),
		Counters: counterSnapshot{
			Submitted:   s.submitted.Load(),
			Arrived:     s.arrived.Load(),
			Placed:      s.placed.Load(),
			Completed:   s.completed.Load(),
			Failures:    s.failures.Load(),
			Interrupted: s.interrupted.Load(),
		},
	}
	snap.EventBase, snap.Events = s.log.snapshotState()
	if s.usedIDs != nil {
		s.idMu.Lock()
		snap.UsedIDs = make([]int, 0, len(s.usedIDs))
		for id := range s.usedIDs {
			snap.UsedIDs = append(snap.UsedIDs, id)
		}
		s.idMu.Unlock()
		sort.Ints(snap.UsedIDs)
	}
	payload, err := json.Marshal(&snap)
	if err != nil {
		return err
	}
	if err := s.wal.WriteSnapshot(snap.Seq, payload); err != nil {
		return err
	}
	if err := s.wal.Rotate(); err != nil {
		return err
	}
	if s.cfg.WALKeep > 0 {
		if err := s.wal.GC(s.cfg.WALKeep); err != nil {
			return err
		}
	}
	s.recsSinceSnap = 0
	return nil
}

// walHousekeeping runs once per loop iteration: group-commit whatever
// the iteration appended (a no-op on a clean log) and snapshot when the
// cadence says so. An error is fatal to the loop — a daemon that cannot
// make its state durable must die loudly, not serve acknowledgements it
// cannot honor.
func (s *Server) walHousekeeping() error {
	if s.wal == nil {
		return nil
	}
	if s.walBroken != nil {
		return s.walBroken
	}
	if err := s.wal.Commit(); err != nil {
		return err
	}
	if s.recsSinceSnap >= s.cfg.SnapshotEvery {
		if err := s.writeSnapshot(); err != nil {
			return err
		}
	}
	return nil
}

// walArrival appends one accepted arrival stamped with the clock it was
// ingested under (at). Loop goroutine only; durability waits for
// walCommit.
func (s *Server) walArrival(j *grid.Job, at float64) error {
	if s.wal == nil {
		return nil
	}
	_, err := s.wal.Append(wal.Record{Kind: wal.KindArrival, At: at, Arrival: &api.TraceRecord{
		ID: j.ID, Arrival: j.Arrival, Workload: j.Workload, Nodes: j.Nodes,
		SD: j.SecurityDemand, Tenant: j.Tenant, SafeOnly: j.SafeOnly,
	}})
	if err != nil {
		s.walBroken = err
		return err
	}
	s.recsSinceSnap++
	return nil
}

// walTenant appends one runtime tenant registration. Loop goroutine
// only.
func (s *Server) walTenant(spec api.TenantSpec) error {
	if s.wal == nil {
		return nil
	}
	if _, err := s.wal.Append(wal.Record{Kind: wal.KindTenant, At: s.online.Now(), Tenant: &spec}); err != nil {
		s.walBroken = err
		return err
	}
	s.recsSinceSnap++
	return nil
}

// walCommit makes everything appended so far durable — the
// commit-before-acknowledge point of the submit and tenant-create
// handlers. Loop goroutine only.
func (s *Server) walCommit() error {
	if s.wal == nil {
		return nil
	}
	if err := s.wal.Commit(); err != nil {
		s.walBroken = err
		return err
	}
	return nil
}
