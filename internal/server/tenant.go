package server

import (
	"fmt"
	"sync"

	"trustgrid/internal/api"
)

// tenantState is one tenant's registry entry: its registered spec plus
// the admission-control and accounting counters. Counters are written
// from two places — the HTTP handlers (submitted, rejected, queued
// reservations) and the loop goroutine's event hook (placed, failed,
// completed, queued releases) — so everything is guarded by the
// registry mutex.
type tenantState struct {
	spec api.TenantSpec

	queued    int // accepted, not yet first-placed (the MaxQueue quantity)
	submitted int64
	placed    int64
	failed    int64
	completed int64
	rejected  int64 // submissions turned away with 429
}

// tenantRegistry is the server's tenant table. The default tenant is
// registered at construction; POST /v2/tenants adds more at runtime.
type tenantRegistry struct {
	mu    sync.Mutex
	m     map[string]*tenantState
	order []string // registration order, for deterministic listings
}

func newTenantRegistry() *tenantRegistry {
	r := &tenantRegistry{m: make(map[string]*tenantState)}
	// The default tenant backs the /v1 shim: weight 1, no quota, no
	// policy — exactly the single-tenant service that existed before v2.
	_ = r.register(api.TenantSpec{ID: api.DefaultTenant, Weight: 1})
	return r
}

// register adds a tenant; duplicate IDs are the caller's conflict.
func (r *tenantRegistry) register(spec api.TenantSpec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if spec.Weight == 0 {
		spec.Weight = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.m[spec.ID]; dup {
		return fmt.Errorf("tenant %q already registered", spec.ID)
	}
	r.m[spec.ID] = &tenantState{spec: spec}
	r.order = append(r.order, spec.ID)
	return nil
}

// get returns a tenant's registered spec.
func (r *tenantRegistry) get(id string) (api.TenantSpec, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.m[id]
	if !ok {
		return api.TenantSpec{}, false
	}
	return t.spec, true
}

// list returns every registered spec in registration order.
func (r *tenantRegistry) list() []api.TenantSpec {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]api.TenantSpec, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, r.m[id].spec)
	}
	return out
}

// reserve atomically admits n jobs against the tenant's queue quota.
// All-or-nothing per request: a request that would push the tenant past
// MaxQueue is rejected whole (overQuota = true, counted as one 429), so
// a retry resubmits the same batch rather than an arbitrary prefix.
// Only `queued` moves here — `submitted` is a monotonic counter (it
// feeds a Prometheus counter series) and advances via addSubmitted once
// jobs have genuinely reached the engine.
func (r *tenantRegistry) reserve(id string, n int) (ok, overQuota bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, exists := r.m[id]
	if !exists {
		return false, false
	}
	if t.spec.MaxQueue > 0 && t.queued+n > t.spec.MaxQueue {
		t.rejected++
		return false, true
	}
	t.queued += n
	return true, false
}

// release undoes part of a reservation after a downstream submit
// failure: the jobs never reached the engine.
func (r *tenantRegistry) release(id string, n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t := r.m[id]; t != nil {
		t.queued -= n
	}
}

// addSubmitted advances the tenant's monotonic acceptance counter by
// the number of jobs actually handed to the engine.
func (r *tenantRegistry) addSubmitted(id string, n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t := r.m[id]; t != nil {
		t.submitted += int64(n)
	}
}

// event folds one engine transition into the tenant's counters.
// firstPlacement releases the job's queue-quota slot.
func (r *tenantRegistry) event(id, kind string, firstPlacement bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.m[id]
	if t == nil {
		// Jobs can carry tenants the registry has never seen (e.g. a
		// replayed trace naming tenants nobody re-registered). Track
		// them so accounting never silently drops a principal.
		t = &tenantState{spec: api.TenantSpec{ID: id, Weight: 1}}
		r.m[id] = t
		r.order = append(r.order, id)
	}
	switch kind {
	case "placed":
		t.placed++
		if firstPlacement {
			t.queued--
		}
	case "failed":
		t.failed++
	case "completed":
		t.completed++
	}
}

// tenantSnapshot is one tenant's durable registry state, as persisted
// in the server snapshot: the (possibly runtime-created) spec plus the
// monotonic accounting counters. The queued occupancy is snapshotted
// for inspection but recomputed from the recovered engine on restore —
// the engine's accepted-but-never-placed set is the ground truth the
// quota gate must agree with.
type tenantSnapshot struct {
	Spec      api.TenantSpec `json:"spec"`
	Queued    int            `json:"queued"`
	Submitted int64          `json:"submitted"`
	Placed    int64          `json:"placed"`
	Failed    int64          `json:"failed"`
	Completed int64          `json:"completed"`
	Rejected  int64          `json:"rejected"`
}

// snapshot captures every tenant in registration order.
func (r *tenantRegistry) snapshot() []tenantSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]tenantSnapshot, 0, len(r.order))
	for _, id := range r.order {
		t := r.m[id]
		out = append(out, tenantSnapshot{
			Spec: t.spec, Queued: t.queued, Submitted: t.submitted,
			Placed: t.placed, Failed: t.failed, Completed: t.completed,
			Rejected: t.rejected,
		})
	}
	return out
}

// restore merges snapshotted tenants into the registry. Tenants the
// boot config already registered keep their position but take the
// snapshot's spec and counters (the snapshot is the newer truth — a
// spec created or normalized at runtime); unknown tenants are appended
// in their recorded order.
func (r *tenantRegistry) restore(ts []tenantSnapshot) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range ts {
		t := r.m[s.Spec.ID]
		if t == nil {
			t = &tenantState{}
			r.m[s.Spec.ID] = t
			r.order = append(r.order, s.Spec.ID)
		}
		t.spec = s.Spec
		t.queued = s.Queued
		t.submitted = s.Submitted
		t.placed = s.Placed
		t.failed = s.Failed
		t.completed = s.Completed
		t.rejected = s.Rejected
	}
}

// setQueued overwrites every tenant's queue occupancy with the given
// per-tenant counts (absent tenants are zeroed). Recovery calls it with
// the recovered engine's accepted-but-never-placed census so the
// MaxQueue admission gate resumes against real occupancy.
func (r *tenantRegistry) setQueued(counts map[string]int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, t := range r.m {
		t.queued = 0
	}
	for id, n := range counts {
		t := r.m[id]
		if t == nil {
			// Same policy as event(): never drop a principal the engine
			// knows about.
			t = &tenantState{spec: api.TenantSpec{ID: id, Weight: 1}}
			r.m[id] = t
			r.order = append(r.order, id)
		}
		t.queued = n
	}
}

// rejectedTotal sums 429 rejections across tenants.
func (r *tenantRegistry) rejectedTotal() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var n int64
	for _, t := range r.m {
		n += t.rejected
	}
	return n
}

// metrics renders the per-tenant section of the metrics report. lat
// supplies each tenant's latency window. When only is non-empty the
// map is narrowed to that tenant.
func (r *tenantRegistry) metrics(lat *latencyTracker, only string) map[string]api.TenantMetrics {
	r.mu.Lock()
	ids := make([]string, 0, len(r.order))
	states := make([]tenantState, 0, len(r.order))
	for _, id := range r.order {
		if only != "" && id != only {
			continue
		}
		ids = append(ids, id)
		states = append(states, *r.m[id])
	}
	r.mu.Unlock()

	out := make(map[string]api.TenantMetrics, len(ids))
	for i, id := range ids {
		st := states[i]
		out[id] = api.TenantMetrics{
			Weight:    st.spec.Weight,
			MaxQueue:  st.spec.MaxQueue,
			Queued:    st.queued,
			Submitted: st.submitted,
			Placed:    st.placed,
			Failed:    st.failed,
			Completed: st.completed,
			Rejected:  st.rejected,
			Latency:   lat.tenantSummary(id),
		}
	}
	return out
}
