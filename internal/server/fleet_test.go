package server_test

import (
	"context"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"trustgrid/internal/api"
	"trustgrid/internal/client"
	"trustgrid/internal/experiments"
	"trustgrid/internal/fleet"
	"trustgrid/internal/fuzzy"
	"trustgrid/internal/grid"
	"trustgrid/internal/sched"
	"trustgrid/internal/server"
)

// testWorker is one in-test trustgrid-worker: the worker object, the
// address it serves on, and its durable directory (empty = volatile).
type testWorker struct {
	w    *fleet.Worker
	addr string
	wal  string
}

// launchWorker starts a worker. addr "" picks a fresh loopback port;
// a concrete addr re-listens there (the restart path — worker i must
// come back at the address the daemon knows).
func launchWorker(t *testing.T, wal, addr string) *testWorker {
	t.Helper()
	w, err := fleet.NewWorker(fleet.WorkerConfig{WALDir: wal, Heartbeat: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	go w.Serve(ln)
	t.Cleanup(func() { w.Close() })
	return &testWorker{w: w, addr: ln.Addr().String(), wal: wal}
}

func launchFleet(t *testing.T, n int, durable bool) []*testWorker {
	t.Helper()
	ws := make([]*testWorker, n)
	for i := range ws {
		wal := ""
		if durable {
			wal = t.TempDir()
		}
		ws[i] = launchWorker(t, wal, "")
	}
	return ws
}

func workerAddrs(ws []*testWorker) []string {
	addrs := make([]string, len(ws))
	for i, w := range ws {
		addrs[i] = w.addr
	}
	return addrs
}

// fleetParityConfig is the shared daemon configuration of the fleet
// parity tests — identical between the -shards reference and the
// -workers fleet except for where the shards live.
func fleetParityConfig(algo string, dyn *sched.DynamicsConfig, tenants []api.TenantSpec) server.Config {
	setup := experiments.TestSetup()
	setup.Population = 12
	setup.Generations = 6
	return server.Config{
		Sites: shardedSites(), Algo: algo, Mode: "frisky", BatchInterval: 300,
		Seed: 21, Setup: setup, Manual: true, Tenants: tenants,
		RoundBudget: 3, Dynamics: dyn,
	}
}

// driveFleetTraffic pushes the scripted window protocol through a
// daemon: submit each window's jobs, advance to the window boundary,
// call the hook (the crash test's injection point), and finally drain.
func driveFleetTraffic(t *testing.T, c *client.Client, jobs []shardedJob, delta float64,
	hook func(window int, target float64)) {
	t.Helper()
	ctx := context.Background()
	windows := jobs[len(jobs)-1].window + 1
	next := 0
	for w := 0; w < windows; w++ {
		target := delta * float64(w+1)
		for next < len(jobs) && jobs[next].window == w {
			j := jobs[next]
			id, arr := j.id, j.arrival
			if _, err := c.Submit(ctx, j.tenant, []api.JobSpec{
				{ID: &id, Arrival: &arr, Workload: j.workload, SD: j.sd},
			}); err != nil {
				t.Fatalf("submit job %d: %v", j.id, err)
			}
			next++
		}
		if _, err := c.Advance(ctx, api.AdvanceRequest{To: target}); err != nil {
			t.Fatalf("advance to %v: %v", target, err)
		}
		if hook != nil {
			hook(w, target)
		}
	}
	if _, err := c.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// runFleetDaemon builds a daemon from cfg, drives the scripted
// traffic, and returns the complete event stream, the tenant facts and
// the final metrics report.
func runFleetDaemon(t *testing.T, cfg server.Config, jobs []shardedJob,
	hook func(window int, target float64)) (string, string, *api.MetricsReport) {
	t.Helper()
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop(false)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL)
	driveFleetTraffic(t, c, jobs, cfg.BatchInterval, hook)
	events := fetchEvents(t, ts.URL)
	rep, err := c.Metrics(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	return events, tenantFacts(rep), rep
}

// TestFleetParity is the tentpole's acceptance gate: a daemon driving
// 3 trustgrid-worker processes over the wire produces the byte-exact
// /v2/events stream and tenant counters of the same daemon running
// -shards 3 in process. Both sides build their engines from the same
// fleet.Spec derivation, so this holds by construction — the test pins
// the whole path (framed protocol, event sequencing, remote barriers,
// admission state shipped in the spec) against it. Min-Min and STGA,
// static and churning grid.
func TestFleetParity(t *testing.T) {
	repCfg := fuzzy.DefaultReputationConfig()
	dyn := &sched.DynamicsConfig{
		Churn: []grid.ChurnEvent{
			{Time: 700, Site: 1, Kind: grid.ChurnCrash},
			{Time: 900, Site: 4, Kind: grid.ChurnDegrade, Factor: 0.5},
			{Time: 1300, Site: 1, Kind: grid.ChurnJoin},
			{Time: 1500, Site: 2, Kind: grid.ChurnDrain},
		},
		Reputation: &repCfg,
		TrueLevels: []float64{0.7, 0.5, 0.8, 0.6, 0.9, 0.55},
	}
	for _, algo := range []string{"minmin", "stga"} {
		t.Run(algo, func(t *testing.T) { runFleetParity(t, algo, nil) })
		t.Run(algo+"-churn", func(t *testing.T) { runFleetParity(t, algo, dyn) })
	}
}

func runFleetParity(t *testing.T, algo string, dyn *sched.DynamicsConfig) {
	const nShards = 3
	tenantNames := shardedTenantNames(t, nShards)
	tenantWeights := []float64{2, 1, 3}
	specs := make([]api.TenantSpec, nShards)
	for i, id := range tenantNames {
		specs[i] = api.TenantSpec{ID: id, Weight: tenantWeights[i]}
	}
	jobs := shardedJobList(36, 300, tenantNames)

	refCfg := fleetParityConfig(algo, dyn, specs)
	refCfg.Shards = nShards
	wantEvents, wantFacts, _ := runFleetDaemon(t, refCfg, jobs, nil)
	if wantEvents == "" {
		t.Fatal("reference daemon produced no events")
	}

	workers := launchFleet(t, nShards, false)
	fleetCfg := fleetParityConfig(algo, dyn, specs)
	fleetCfg.Workers = workerAddrs(workers)
	gotEvents, gotFacts, rep := runFleetDaemon(t, fleetCfg, jobs, nil)

	if gotEvents != wantEvents {
		d := firstDiff(wantEvents, gotEvents)
		t.Fatalf("fleet event stream diverges from -shards %d at byte %d\nwant: %s\ngot:  %s",
			nShards, d, excerpt(wantEvents, d), excerpt(gotEvents, d))
	}
	if gotFacts != wantFacts {
		t.Fatalf("fleet tenant facts diverge:\nwant:\n%s\ngot:\n%s", wantFacts, gotFacts)
	}
	if len(rep.Shards) != nShards {
		t.Fatalf("fleet metrics report %d shards, want %d", len(rep.Shards), nShards)
	}
	for i, sm := range rep.Shards {
		if sm.Addr != workers[i].addr {
			t.Errorf("shard %d reports addr %q, want %q", i, sm.Addr, workers[i].addr)
		}
		if sm.Down {
			t.Errorf("shard %d reported down at end of a healthy run", i)
		}
	}
}

// TestFleetWorkerCrashParity is the durability gate across the process
// boundary, in TestCrashPointParity style: kill one worker mid-run,
// verify its tenants are refused with 503 while the rest of the fleet
// keeps working, restart it from its WAL on the same address, reattach
// via the next barrier — and require the complete event stream and
// tenant counters to be byte-identical to an uninterrupted in-process
// -shards 3 run. The victim shard owns churning sites, so the replay
// also reproduces the churn prefix and reputation feedback.
func TestFleetWorkerCrashParity(t *testing.T) {
	repCfg := fuzzy.DefaultReputationConfig()
	dyn := &sched.DynamicsConfig{
		Churn: []grid.ChurnEvent{
			{Time: 700, Site: 1, Kind: grid.ChurnCrash},
			{Time: 900, Site: 4, Kind: grid.ChurnDegrade, Factor: 0.5},
			{Time: 1300, Site: 1, Kind: grid.ChurnJoin},
			{Time: 1500, Site: 2, Kind: grid.ChurnDrain},
		},
		Reputation: &repCfg,
		TrueLevels: []float64{0.7, 0.5, 0.8, 0.6, 0.9, 0.55},
	}
	for _, algo := range []string{"minmin", "stga"} {
		t.Run(algo, func(t *testing.T) { runFleetCrashParity(t, algo, dyn) })
	}
}

func runFleetCrashParity(t *testing.T, algo string, dyn *sched.DynamicsConfig) {
	const (
		nShards    = 3
		victim     = 1   // shard whose worker dies; owns churning sites 1 and 4
		crashAfter = 2   // window index after whose barrier the worker dies
		delta      = 300.0
	)
	ctx := context.Background()
	tenantNames := shardedTenantNames(t, nShards)
	tenantWeights := []float64{2, 1, 3}
	specs := make([]api.TenantSpec, nShards)
	for i, id := range tenantNames {
		specs[i] = api.TenantSpec{ID: id, Weight: tenantWeights[i]}
	}
	jobs := shardedJobList(36, delta, tenantNames)

	refCfg := fleetParityConfig(algo, dyn, specs)
	refCfg.Shards = nShards
	wantEvents, wantFacts, _ := runFleetDaemon(t, refCfg, jobs, nil)

	workers := launchFleet(t, nShards, true)
	fleetCfg := fleetParityConfig(algo, dyn, specs)
	fleetCfg.Workers = workerAddrs(workers)

	srv, err := server.New(fleetCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop(false)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL)

	shardDown := func(want bool) bool {
		rep, err := c.Metrics(ctx, "")
		if err != nil {
			t.Fatal(err)
		}
		return rep.Shards[victim].Down == want
	}
	driveFleetTraffic(t, c, jobs, delta, func(w int, target float64) {
		if w != crashAfter {
			return
		}
		// Kill the victim's worker process. Everything acknowledged is
		// already committed in its WAL.
		if err := workers[victim].w.Close(); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for !shardDown(true) {
			if time.Now().After(deadline) {
				t.Fatal("daemon never marked the dead worker down")
			}
			time.Sleep(10 * time.Millisecond)
		}
		// Its tenants are refused while it is down (a throwaway ID the
		// scripted trace never uses, so the refusal leaves no trace in
		// either run's stream).
		probeID, probeArr := 9001, target+10
		if _, err := c.Submit(ctx, tenantNames[victim], []api.JobSpec{
			{ID: &probeID, Arrival: &probeArr, Workload: 500, SD: 0.6},
		}); err == nil {
			t.Fatal("submission for a down shard's tenant was accepted")
		}
		// Restart from the WAL on the same address; re-advancing to the
		// current boundary is the barrier that reattaches it (a no-op for
		// every engine — the clock is already there).
		workers[victim] = launchWorker(t, workers[victim].wal, workers[victim].addr)
		if _, err := c.Advance(ctx, api.AdvanceRequest{To: target}); err != nil {
			t.Fatalf("reattach advance to %v: %v", target, err)
		}
		if !shardDown(false) {
			t.Fatal("worker did not reattach on the barrier after restart")
		}
	})

	gotEvents := fetchEvents(t, ts.URL)
	rep, err := c.Metrics(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	gotFacts := tenantFacts(rep)
	if gotEvents != wantEvents {
		d := firstDiff(wantEvents, gotEvents)
		t.Fatalf("event stream diverges across the worker crash at byte %d\nwant: %s\ngot:  %s",
			d, excerpt(wantEvents, d), excerpt(gotEvents, d))
	}
	if gotFacts != wantFacts {
		t.Fatalf("tenant facts diverge across the worker crash:\nwant:\n%s\ngot:\n%s", wantFacts, gotFacts)
	}
}
