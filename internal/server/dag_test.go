package server_test

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"trustgrid/internal/experiments"
	"trustgrid/internal/server"
)

func newManualDAGServer(t *testing.T) (*server.Server, *httptest.Server) {
	t.Helper()
	setup := experiments.TestSetup()
	w, err := setup.PSAWorkload(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Sites: w.Sites, Algo: "minmin", Seed: 1, Setup: setup,
		BatchInterval: 100, Manual: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Stop(false) })
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func readAllEvents(t *testing.T, base string, since int64) []server.WireEvent {
	t.Helper()
	resp, err := http.Get(base + "/v1/events")
	if since > 0 {
		resp.Body.Close()
		resp, err = http.Get(base + "/v1/events?since=" + jsonNum(since))
	}
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out []server.WireEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev server.WireEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		out = append(out, ev)
	}
	return out
}

func jsonNum(v int64) string {
	b, _ := json.Marshal(v)
	return string(b)
}

// TestManualDAGSubmitFlow submits a three-layer DAG in one manual-mode
// request, drains, and checks the event stream: every job completes, a
// blocked job's job_ready and placement never precede the completion
// of its last parent, and job_ready events carry the owning tenant.
func TestManualDAGSubmitFlow(t *testing.T) {
	_, ts := newManualDAGServer(t)

	arr := 0.0
	id0, id1, id2, id3 := 10, 11, 12, 13
	resp := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"jobs": []server.JobSpec{
			{ID: &id0, Arrival: &arr, Workload: 500, SD: 0.7},
			{ID: &id1, Arrival: &arr, Workload: 300, SD: 0.7, DependsOn: []int{10}},
			{ID: &id2, Arrival: &arr, Workload: 200, SD: 0.7, DependsOn: []int{10}},
			{ID: &id3, Arrival: &arr, Workload: 100, SD: 0.7, DependsOn: []int{11, 12}},
		},
	})
	requireStatus(t, resp, http.StatusOK)
	resp = postJSON(t, ts.URL+"/v1/drain", map[string]any{})
	requireStatus(t, resp, http.StatusOK)

	if rep := getMetrics(t, ts.URL); rep.Completed != 4 {
		t.Fatalf("completed %d jobs, want 4", rep.Completed)
	}

	deps := map[int][]int{11: {10}, 12: {10}, 13: {11, 12}}
	events := readAllEvents(t, ts.URL, 0)
	completedSeq := map[int]int64{}
	readySeen := map[int]bool{}
	for _, ev := range events {
		switch ev.Kind {
		case "job_ready":
			readySeen[ev.Job] = true
			if ev.Tenant == "" {
				t.Fatalf("job_ready for %d has no tenant", ev.Job)
			}
			fallthrough
		case "placed":
			for _, p := range deps[ev.Job] {
				seq, done := completedSeq[p]
				if !done || seq > ev.Seq {
					t.Fatalf("%s for job %d (seq %d) precedes completion of parent %d", ev.Kind, ev.Job, ev.Seq, p)
				}
			}
		case "completed":
			completedSeq[ev.Job] = ev.Seq
		}
	}
	for id := range deps {
		if !readySeen[id] {
			t.Fatalf("no job_ready event for blocked job %d", id)
		}
	}
	if readySeen[10] {
		t.Fatal("dependency-free job emitted job_ready")
	}
}

// TestSubmitDAGValidation pins every rejection class: forward and
// unknown refs, self-dependencies, duplicate edges, and cross-tenant
// references — which must be indistinguishable from unknown IDs.
func TestSubmitDAGValidation(t *testing.T) {
	_, ts := newManualDAGServer(t)
	arr := 0.0
	idA, idB := 20, 21

	post := func(specs []server.JobSpec) *http.Response {
		return postJSON(t, ts.URL+"/v1/jobs", map[string]any{"jobs": specs})
	}
	expectReject := func(resp *http.Response, substr string) {
		t.Helper()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
		var body struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if !strings.Contains(body.Error, substr) {
			t.Fatalf("error %q does not mention %q", body.Error, substr)
		}
	}

	expectReject(post([]server.JobSpec{
		{ID: &idA, Arrival: &arr, Workload: 100, SD: 0.7, DependsOn: []int{21}},
		{ID: &idB, Arrival: &arr, Workload: 100, SD: 0.7},
	}), "unknown job 21")
	expectReject(post([]server.JobSpec{
		{ID: &idA, Arrival: &arr, Workload: 100, SD: 0.7, DependsOn: []int{20}},
	}), "depends on itself")
	expectReject(post([]server.JobSpec{
		{ID: &idA, Arrival: &arr, Workload: 100, SD: 0.7},
		{ID: &idB, Arrival: &arr, Workload: 100, SD: 0.7, DependsOn: []int{20, 20}},
	}), "twice")
	expectReject(post([]server.JobSpec{
		{ID: &idA, Arrival: &arr, Workload: 100, SD: 0.7, DependsOn: []int{404}},
	}), "unknown job 404")

	// A failed request burns nothing: the same DAG resubmitted cleanly
	// goes through, and a later request may depend on it.
	requireStatus(t, post([]server.JobSpec{
		{ID: &idA, Arrival: &arr, Workload: 100, SD: 0.7},
		{ID: &idB, Arrival: &arr, Workload: 100, SD: 0.7, DependsOn: []int{20}},
	}), http.StatusOK)
	idC := 22
	requireStatus(t, post([]server.JobSpec{
		{ID: &idC, Arrival: &arr, Workload: 100, SD: 0.7, DependsOn: []int{21}},
	}), http.StatusOK)

	// Cross-tenant: register a second tenant and try to hang a job off
	// the default tenant's job 20. The error must read exactly like the
	// unknown-ID case — no cross-tenant ID probing.
	requireStatus(t, postJSON(t, ts.URL+"/v2/tenants", map[string]any{"id": "rival"}), http.StatusCreated)
	resp := postJSON(t, ts.URL+"/v2/tenants/rival/jobs", map[string]any{
		"jobs": []server.JobSpec{{Arrival: &arr, Workload: 100, SD: 0.7, DependsOn: []int{20}}},
	})
	expectReject(resp, "unknown job 20")

	resp = postJSON(t, ts.URL+"/v1/drain", map[string]any{})
	requireStatus(t, resp, http.StatusOK)
	if rep := getMetrics(t, ts.URL); rep.Completed != 3 {
		t.Fatalf("completed %d jobs, want 3", rep.Completed)
	}
}

// TestDAGOwnersSurviveRestart: the depends_on validation registry is
// durable. A parent accepted before a restart must stay referenceable
// after recovery — whether the restart found it in a snapshot or had to
// replay the WAL — and a mid-DAG crash must not strand the blocked
// child.
func TestDAGOwnersSurviveRestart(t *testing.T) {
	setup := experiments.TestSetup()
	w, err := setup.PSAWorkload(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	walDir := t.TempDir()
	cfg := func() server.Config {
		return server.Config{
			Sites: w.Sites, Algo: "minmin", Seed: 1, Setup: setup,
			BatchInterval: 100, Manual: true,
			WALDir: walDir, SnapshotEvery: 2, WALKeep: -1,
		}
	}

	srv, err := server.New(cfg())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	arr := 0.0
	parent, child := 1, 2
	requireStatus(t, postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"jobs": []server.JobSpec{
			{ID: &parent, Arrival: &arr, Workload: 500, SD: 0.7},
			{ID: &child, Arrival: &arr, Workload: 100, SD: 0.7, DependsOn: []int{1}},
		},
	}), http.StatusOK)
	// Complete the parent but crash before the child's round: the child
	// is sitting in the blocked pen at snapshot time.
	requireStatus(t, postJSON(t, ts.URL+"/v1/advance", map[string]any{"to": 100.0}), http.StatusOK)
	ts.Close()
	if _, err := srv.Stop(false); err != nil {
		t.Fatal(err)
	}

	srv2, err := server.New(cfg())
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Stop(false)
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	// Both pre-restart jobs are referenceable, recovered from snapshot
	// or WAL replay.
	grandchild := 3
	requireStatus(t, postJSON(t, ts2.URL+"/v1/jobs", map[string]any{
		"jobs": []server.JobSpec{
			{ID: &grandchild, Arrival: &arr, Workload: 50, SD: 0.7, DependsOn: []int{1, 2}},
		},
	}), http.StatusOK)
	resp := postJSON(t, ts2.URL+"/v1/drain", map[string]any{})
	requireStatus(t, resp, http.StatusOK)
	if rep := getMetrics(t, ts2.URL); rep.Completed != 3 {
		t.Fatalf("completed %d jobs after recovery, want 3", rep.Completed)
	}
}
